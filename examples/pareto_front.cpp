// Pareto-front example: when the deployment latency budget is not yet
// fixed, evolve the whole accuracy-latency front in one run (NSGA-II-style
// selection) instead of re-running the Eq. 1 search per candidate T.

#include <cstdio>

#include "core/accuracy_surrogate.h"
#include "core/pareto.h"
#include "hwsim/registry.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/string_util.h"

using namespace hsconas;

int main(int argc, char** argv) {
  util::Cli cli("Accuracy-latency Pareto front in a single search");
  cli.add_option("device", "edge", "target hardware: gpu | cpu | edge");
  cli.add_option("generations", "25", "generations");
  cli.add_option("population", "60", "population");
  cli.add_option("seed", "19", "seed");
  cli.add_option("csv", "pareto_front.csv", "output CSV path");
  if (!cli.parse(argc, argv)) return 0;

  const core::SearchSpace space(core::SearchSpaceConfig::imagenet_layout_a());
  const hwsim::DeviceSimulator device(hwsim::device_by_name(cli.get("device")));
  const core::LatencyModel latency(
      space, device,
      core::LatencyModel::Config{device.profile().default_batch, 50,
                                 static_cast<std::uint64_t>(cli.get_int("seed")),
                                 true});
  const core::AccuracySurrogate surrogate(space);

  core::ParetoSearch::Config cfg;
  cfg.generations = static_cast<int>(cli.get_int("generations"));
  cfg.population = static_cast<int>(cli.get_int("population"));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  core::ParetoSearch search(
      space, [&](const core::Arch& a) { return surrogate.accuracy(a); },
      latency, cfg);
  const auto result = search.run();

  std::printf("Pareto front on %s after %d generations (%zu points):\n\n",
              device.profile().name.c_str(), cfg.generations,
              result.front.size());
  std::printf("%12s %12s   architecture digest\n", "lat (ms)", "top-1 err");
  util::CsvWriter csv(cli.get("csv"));
  csv.row(std::vector<std::string>{"latency_ms", "top1_err", "arch"});
  for (const auto& point : result.front) {
    // Digest: operator histogram + mean channel factor.
    int kinds[5] = {0, 0, 0, 0, 0};
    double mean_factor = 0.0;
    for (int l = 0; l < point.arch.num_layers(); ++l) {
      kinds[point.arch.ops[static_cast<std::size_t>(l)]]++;
      mean_factor += space.config().channel_factors.at(
          static_cast<std::size_t>(
              point.arch.factors[static_cast<std::size_t>(l)]));
    }
    mean_factor /= point.arch.num_layers();
    const double err = (1.0 - point.accuracy) * 100.0;
    std::printf("%12.2f %11.2f%%   k3:%d k5:%d k7:%d xcep:%d skip:%d  c̄=%.2f\n",
                point.latency_ms, err, kinds[0], kinds[1], kinds[2],
                kinds[3], kinds[4], mean_factor);
    csv.row(std::vector<std::string>{
        util::format("%.3f", point.latency_ms), util::format("%.3f", err),
        point.arch.to_string(space)});
  }
  std::printf(
      "\npick any point post-hoc: e.g. the paper's T = 34 ms budget simply "
      "selects the front point closest to 34 ms.\nfront written to %s\n",
      cli.get("csv").c_str());
  return 0;
}
