// Edge-deployment scenario exercising the *real* weight-sharing mechanism
// end to end, the way §III-B/§III-C describe it — no surrogate involved:
//
//   1. train a proxy-scale supernet on the synthetic classification task
//      with single-path uniform sampling and dynamic channel masking;
//   2. progressively shrink the space using supernet accuracy in Q;
//   3. run the EA with shared-weight accuracy + the latency model;
//   4. train the discovered architecture from scratch ("for fair
//      comparison", §IV-A) and report its accuracy and simulated latency.
//
// Takes a couple of minutes with the default knobs (intended for an
// espresso-length demo; raise --epochs for better absolute accuracy).

#include <cstdio>

#include "core/lowering.h"
#include "core/pipeline.h"
#include "util/cli.h"
#include "util/logging.h"

using namespace hsconas;

int main(int argc, char** argv) {
  util::Cli cli("HSCoNAS edge deployment with a real trained supernet");
  cli.add_option("epochs", "6", "supernet pre-training epochs");
  cli.add_option("tune-epochs", "2", "tuning epochs per shrink stage");
  cli.add_option("scratch-epochs", "10", "from-scratch epochs for winner");
  cli.add_option("train-size", "480", "synthetic training images");
  cli.add_option("image-size", "16", "synthetic image resolution");
  cli.add_option("seed", "3", "seed");
  if (!cli.parse(argc, argv)) return 0;

  util::set_log_level(util::LogLevel::kInfo);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  data::SyntheticConfig data_cfg;
  data_cfg.num_classes = 10;
  data_cfg.image_size = static_cast<int>(cli.get_int("image-size"));
  data_cfg.train_size = static_cast<int>(cli.get_int("train-size"));
  data_cfg.val_size = data_cfg.train_size / 2;
  data_cfg.seed = seed ^ 0xDA7Aull;
  const data::SyntheticDataset dataset(data_cfg);

  core::PipelineConfig cfg;
  cfg.space = core::SearchSpaceConfig::proxy(10, data_cfg.image_size, 2);
  cfg.device = "edge";
  cfg.constraint_ms = 2.0;  // proxy nets are tiny; scale T accordingly
  cfg.use_surrogate = false;
  cfg.initial_epochs = static_cast<int>(cli.get_int("epochs"));
  cfg.tune_epochs = static_cast<int>(cli.get_int("tune-epochs"));
  cfg.shrink_layers_per_stage = 2;
  cfg.shrink.samples_per_subspace = 20;
  cfg.evolution.generations = 8;
  cfg.evolution.population = 24;
  cfg.evolution.parents = 8;
  cfg.train.batch_size = 48;
  cfg.train.lr = 0.08;
  cfg.seed = seed;
  cfg.verbose = true;

  core::Pipeline pipeline(cfg);
  const core::PipelineResult result = pipeline.run(&dataset);

  std::printf("\nwinner: %s\n",
              result.best_arch.to_string(pipeline.space()).c_str());
  std::printf("shared-weight val accuracy: %.3f\n", result.best_accuracy);
  std::printf("predicted / on-device latency: %.2f / %.2f ms (T = %.1f)\n",
              result.predicted_latency_ms, result.measured_latency_ms,
              result.constraint_ms);

  std::printf("\ntraining the winner from scratch (%lld epochs)...\n",
              cli.get_int("scratch-epochs"));
  core::TrainConfig scratch = cfg.train;
  scratch.epochs = static_cast<int>(cli.get_int("scratch-epochs"));
  scratch.warmup_epochs = 1;  // §IV-A: warm-up when training from scratch
  scratch.seed = seed ^ 0xF00;
  const auto from_scratch = core::train_from_scratch(
      pipeline.space(), result.best_arch, dataset, scratch);
  std::printf("from-scratch val top-1: %.3f (chance = %.3f)\n",
              from_scratch.val_top1, 1.0 / data_cfg.num_classes);

  // Extension: OFA-style weight inheritance, compared at an EQUAL short
  // budget — fine-tuning from the supernet's shared weights vs training
  // from scratch for the same few epochs. The inherited start should win;
  // the gap widens with longer supernet pre-training (--epochs).
  core::SearchSpace space2(cfg.space);
  core::Supernet supernet(space2, cfg.seed ^ 0x5e7ull);
  core::TrainConfig sup_cfg = cfg.train;
  sup_cfg.seed = cfg.seed;
  core::SupernetTrainer sup_trainer(supernet, dataset, sup_cfg);
  sup_trainer.run(cfg.initial_epochs);

  core::TrainConfig short_cfg = scratch;
  short_cfg.epochs = std::max(1, scratch.epochs / 3);
  short_cfg.lr = 0.02;
  short_cfg.warmup_epochs = 0;
  const auto inherited =
      core::fine_tune_subnet(supernet, result.best_arch, dataset, short_cfg);
  const auto short_scratch = core::train_from_scratch(
      pipeline.space(), result.best_arch, dataset, short_cfg);
  std::printf(
      "equal %d-epoch budget: inherited fine-tune %.3f vs scratch %.3f\n",
      short_cfg.epochs, inherited.val_top1, short_scratch.val_top1);
  return 0;
}
