// Quickstart: find a DNN for the Jetson-Xavier-class edge device under a
// 34 ms latency budget, in a few seconds, using the paper-scale search
// space and the calibrated ImageNet accuracy surrogate.
//
//   $ ./quickstart [--device=edge] [--constraint=34]
//
// This walks the whole HSCoNAS flow of Fig. 1: hardware performance model
// (Eq. 2-3) -> progressive space shrinking (§III-C) -> evolutionary search
// (§III-D) under the multi-objective score (Eq. 1).

#include <cstdio>

#include "core/accuracy_surrogate.h"
#include "core/lowering.h"
#include "core/pipeline.h"
#include "util/cli.h"
#include "util/string_util.h"

using namespace hsconas;

int main(int argc, char** argv) {
  util::Cli cli("HSCoNAS quickstart: hardware-aware NAS in one call");
  cli.add_option("device", "edge", "target hardware: gpu | cpu | edge");
  cli.add_option("constraint", "0",
                 "latency budget T in ms (0 = the paper's default)");
  cli.add_option("family", "shuffle",
                 "operator family: shuffle (the paper's ShuffleNetV2 "
                 "space) or mbconv (ProxylessNAS-style inverted residuals)");
  cli.add_option("seed", "1", "seed");
  if (!cli.parse(argc, argv)) return 0;

  core::PipelineConfig cfg;
  cfg.space = core::SearchSpaceConfig::imagenet_layout_a();
  if (cli.get("family") == "mbconv") {
    cfg.space = cfg.space.with_family(nn::OpFamily::kMbConv);
  } else if (cli.get("family") != "shuffle") {
    throw hsconas::InvalidArgument("--family must be shuffle or mbconv");
  }
  cfg.device = cli.get("device");
  cfg.constraint_ms = cli.get_double("constraint");
  cfg.use_surrogate = true;  // paper-scale: ImageNet surrogate accuracy
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  core::Pipeline pipeline(cfg);
  std::printf("searching %s under T = %.0f ms over a space of 10^%.0f "
              "candidates...\n",
              cfg.device.c_str(),
              cfg.constraint_ms > 0
                  ? cfg.constraint_ms
                  : hwsim::default_constraint_ms(cfg.device),
              pipeline.space().config().log10_space_size());

  const core::PipelineResult result = pipeline.run();

  std::printf("\ndiscovered architecture (op @ channel factor per layer):\n"
              "  %s\n\n",
              result.best_arch.to_string(pipeline.space()).c_str());
  const double err = (1.0 - result.best_accuracy) * 100.0;
  std::printf("estimated ImageNet top-1 error : %.1f%%\n", err);
  std::printf("estimated top-5 error          : %.1f%%\n",
              core::AccuracySurrogate::top5_from_top1(err));
  std::printf("predicted latency (Eq. 2-3)    : %.1f ms\n",
              result.predicted_latency_ms);
  std::printf("on-device latency (simulated)  : %.1f ms (T = %.0f ms)\n",
              result.measured_latency_ms, result.constraint_ms);
  std::printf("compute                        : %.0f MMacs\n",
              core::arch_macs(result.best_arch, pipeline.space()) / 1e6);
  std::printf("search-space reduction         : 10^%.1f -> 10^%.1f -> "
              "10^%.1f candidates\n",
              result.log10_space_initial, result.log10_space_after_stage1,
              result.log10_space_after_stage2);
  return 0;
}
