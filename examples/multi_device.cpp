// Multi-device example: the core claim of hardware-software co-design is
// that the *same* pipeline specializes differently per target. Search one
// architecture per device, then cross-evaluate every winner on every
// device (a miniature Table I) — each row should be fastest in its own
// column, and the operator mix should shift with the hardware.

#include <cstdio>
#include <vector>

#include "core/accuracy_surrogate.h"
#include "core/lowering.h"
#include "core/pipeline.h"
#include "hwsim/registry.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace hsconas;

int main(int argc, char** argv) {
  util::Cli cli("One search per device, cross-evaluated");
  cli.add_option("seed", "23", "seed");
  if (!cli.parse(argc, argv)) return 0;

  struct Winner {
    std::string device;
    core::Arch arch;
    double top1_err;
    double gmacs;
  };
  std::vector<Winner> winners;

  core::SearchSpace reference_space(
      core::SearchSpaceConfig::imagenet_layout_a());

  for (const std::string& device : hwsim::device_names()) {
    core::PipelineConfig cfg;
    cfg.space = core::SearchSpaceConfig::imagenet_layout_a();
    cfg.device = device;
    cfg.use_surrogate = true;
    cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    core::Pipeline pipeline(cfg);
    const auto result = pipeline.run();
    const core::AccuracySurrogate surrogate(pipeline.space());
    winners.push_back(
        {device, result.best_arch,
         surrogate.top1_error(result.best_arch),
         core::arch_macs(result.best_arch, pipeline.space()) / 1e9});
    std::printf("searched for %-9s -> T=%.0fms, predicted %.1fms\n",
                device.c_str(), result.constraint_ms,
                result.predicted_latency_ms);
  }

  util::Table table({"winner \\ measured on", "gv100 (ms)", "xeon6136 (ms)",
                     "xavier (ms)", "top-1 err", "GMacs", "op mix"});
  for (const Winner& w : winners) {
    std::vector<std::string> row{"HSCoNet-" + w.device};
    for (const std::string& device : hwsim::device_names()) {
      const hwsim::DeviceSimulator sim(hwsim::device_by_name(device));
      const double ms = sim.network_latency_ms(
          core::lower_network(w.arch, reference_space),
          sim.profile().default_batch);
      const bool is_target = device == w.device;
      row.push_back(util::format(is_target ? "[%.1f]" : "%.1f", ms));
    }
    int kinds[5] = {0, 0, 0, 0, 0};
    for (int op : w.arch.ops) kinds[op]++;
    row.push_back(util::format("%.1f", w.top1_err));
    row.push_back(util::format("%.2f", w.gmacs));
    row.push_back(util::format("k3:%d k5:%d k7:%d x:%d s:%d", kinds[0],
                               kinds[1], kinds[2], kinds[3], kinds[4]));
    table.add_row(row);
  }

  std::printf(
      "\ncross-device evaluation ([target] = the device each net was "
      "searched for; compare with Table I's HSCoNet rows):\n%s\n"
      "each winner should be at-or-under its constraint in its own "
      "bracketed column; nets tuned for other devices overshoot or waste "
      "headroom there — hardware-awareness is not transferable.\n",
      table.render().c_str());
  return 0;
}
