// Custom-hardware example: the paper's co-design loop is device-agnostic —
// anything that can price an operator can drive the search. Here we define
// a hypothetical low-power NPU profile (strong dense-conv engines, weak
// depthwise support, expensive kernel launches), build the Eq. 2-3 latency
// model for it, and search. The discovered net should visibly avoid the
// operators the NPU is bad at.

#include <cstdio>
#include <map>

#include "core/accuracy_surrogate.h"
#include "core/evolution.h"
#include "core/latency_model.h"
#include "core/search_space.h"
#include "hwsim/device.h"
#include "hwsim/registry.h"
#include "util/cli.h"
#include "util/string_util.h"

using namespace hsconas;

namespace {

hwsim::DeviceProfile make_npu_profile() {
  hwsim::DeviceProfile p;
  p.name = "hypothetical-npu";
  p.peak_gflops = 4000.0;       // beefy MAC array...
  p.mem_bandwidth_gbs = 40.0;   // ...behind a narrow LPDDR interface
  p.launch_overhead_us = 40.0;  // command-queue round trips hurt
  p.sat_concurrency = 3.0e5;
  p.base_eff_conv = 0.7;        // dense convs map straight onto the array
  p.base_eff_depthwise = 0.05;  // depthwise wastes almost the whole array
  p.base_eff_linear = 0.5;
  p.eltwise_fusion = 0.9;       // aggressive compiler fusion
  p.link_bandwidth_gbs = 8.0;
  p.sync_overhead_us = 25.0;
  p.noise_sigma = 0.01;
  p.default_batch = 1;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("Searching for a user-defined accelerator profile");
  cli.add_option("constraint", "12", "latency budget T in ms");
  cli.add_option("seed", "11", "seed");
  if (!cli.parse(argc, argv)) return 0;

  const core::SearchSpace space(core::SearchSpaceConfig::imagenet_layout_a());
  const hwsim::DeviceSimulator npu(make_npu_profile());

  core::LatencyModel::Config lat_cfg;
  lat_cfg.batch = npu.profile().default_batch;
  lat_cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  core::LatencyModel model(space, npu, lat_cfg);
  std::printf("profiled %d layers x 5 ops x 10 factors on '%s'; "
              "communication bias B = %.2f ms\n",
              space.num_layers(), npu.profile().name.c_str(),
              model.bias_ms());

  // Peek at the LUT the way a deployment engineer would: what does each
  // operator cost in an early (large feature map) vs late layer?
  std::printf("\nLUT excerpt (full width), ms:\n%8s %12s %12s\n", "op",
              "layer 1", "layer 18");
  for (int op = 0; op < 5; ++op) {
    std::printf("%8s %12.3f %12.3f\n",
                nn::block_kind_name(static_cast<nn::BlockKind>(op)),
                model.lut_ms(1, op, 9), model.lut_ms(18, op, 9));
  }

  const core::AccuracySurrogate surrogate(space);
  const core::Objective objective{-0.3, cli.get_double("constraint")};
  core::EvolutionSearch::Config evo;
  evo.seed = lat_cfg.seed;
  core::EvolutionSearch search(
      space, [&](const core::Arch& a) { return surrogate.accuracy(a); },
      model, objective, evo);
  const auto result = search.run();

  std::printf("\nwinner under T = %.0f ms: predicted %.1f ms, top-1 err "
              "%.1f%%\n  %s\n",
              objective.constraint_ms, result.best.latency_ms,
              (1.0 - result.best.accuracy) * 100.0,
              result.best.arch.to_string(space).c_str());

  // Operator census: on this NPU depthwise compute is nearly free to skip
  // past (memory bound at 5%% efficiency) while dense 1x1 convs are cheap
  // per MAC, so the search shifts width and operator choices toward
  // pointwise-conv-rich blocks instead of large depthwise kernels.
  std::map<int, int> census;
  for (int op : result.best.arch.ops) census[op]++;
  std::printf("\noperator census of the winner:\n");
  for (const auto& [op, count] : census) {
    std::printf("  %-12s x%d\n",
                nn::block_kind_name(static_cast<nn::BlockKind>(op)), count);
  }
  return 0;
}
