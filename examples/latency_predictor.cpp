// Standalone use of the hardware performance model (§III-A): build the
// per-operator LUT on a target device, calibrate the communication bias B
// from M end-to-end measurements (Eq. 3), then predict latency for fresh
// architectures in O(L) — no device in the loop — and validate against
// simulated on-device runs.

#include <cstdio>

#include "core/latency_model.h"
#include "core/lowering.h"
#include "core/search_space.h"
#include "eval/latency_eval.h"
#include "hwsim/registry.h"
#include "util/cli.h"

using namespace hsconas;

int main(int argc, char** argv) {
  util::Cli cli("Eq. 2-3 latency predictor, standalone");
  cli.add_option("device", "gpu", "target hardware: gpu | cpu | edge");
  cli.add_option("bias-samples", "50", "M end-to-end calibration runs");
  cli.add_option("check-archs", "10", "architectures to validate");
  cli.add_option("arch", "",
                 "predict a specific architecture, given in the "
                 "\"shuffle_k3@0.5 | skip@1.0 | ...\" format (20 layers)");
  cli.add_option("seed", "21", "seed");
  if (!cli.parse(argc, argv)) return 0;

  const core::SearchSpace space(core::SearchSpaceConfig::imagenet_layout_a());
  const hwsim::DeviceSimulator device(hwsim::device_by_name(cli.get("device")));

  core::LatencyModel::Config cfg;
  cfg.batch = device.profile().default_batch;
  cfg.bias_samples = static_cast<int>(cli.get_int("bias-samples"));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  core::LatencyModel model(space, device, cfg);

  std::printf("device: %s (batch %d)\n", device.profile().name.c_str(),
              cfg.batch);
  std::printf("LUT built: stem %.3f ms + %d x 5 x 10 entries + head %.3f "
              "ms; bias B = %.3f ms from %d runs\n\n",
              model.stem_ms(), space.num_layers(), model.head_ms(),
              model.bias_ms(), cfg.bias_samples);

  if (!cli.get("arch").empty()) {
    const core::Arch arch = core::Arch::from_string(space, cli.get("arch"));
    std::printf("user-specified architecture:\n  %s\n",
                arch.to_string(space).c_str());
    std::printf("  predicted: %.2f ms | on-device: %.2f ms | %.0f MMacs\n\n",
                model.predict_ms(arch), model.measure_ms(arch),
                core::arch_macs(arch, space) / 1e6);
  }

  std::printf("%6s %12s %12s %12s %10s\n", "arch", "LUT sum", "+B (Eq.2)",
              "on-device", "error");
  util::Rng rng(cfg.seed ^ 0xC0FFEEull);
  double worst = 0.0;
  for (int i = 0; i < cli.get_int("check-archs"); ++i) {
    const core::Arch arch = core::Arch::random(space, rng);
    const double raw = model.predict_uncorrected_ms(arch);
    const double pred = model.predict_ms(arch);
    const double real = model.measure_ms(arch);
    const double err = std::abs(pred - real);
    worst = std::max(worst, err);
    std::printf("%6d %10.2fms %10.2fms %10.2fms %8.2fms\n", i, raw, pred,
                real, err);
  }
  std::printf("\nworst absolute error: %.2f ms "
              "(paper reports RMSE 0.5/0.1/1.7 ms on GPU/CPU/edge)\n",
              worst);

  const auto report = eval::evaluate_latency_model(model, 100, cfg.seed);
  std::printf("over 100 fresh archs: RMSE %.2f ms (%.2f without B), "
              "pearson %.3f, kendall %.3f\n",
              report.rmse_ms, report.rmse_uncorrected_ms, report.pearson,
              report.kendall_tau);
  return 0;
}
