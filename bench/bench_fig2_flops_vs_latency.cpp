// Fig. 2 reproduction: runtime latency vs FLOPs (left) and vs parameter
// count (right). The paper's point: architectures with identical FLOPs or
// Params differ widely in latency, so hardware-agnostic proxies are
// inadequate — motivating the hardware performance model of §III-A.
//
// Prints the correlation table and the within-FLOPs-bin latency spread,
// and dumps every sample to fig2.csv for external plotting.

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "core/lowering.h"
#include "core/search_space.h"
#include "hwsim/registry.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace hsconas;

int main(int argc, char** argv) {
  util::Cli cli("Fig. 2: latency vs FLOPs / Params scatter");
  cli.add_option("samples", "300", "architectures sampled uniformly from A");
  cli.add_option("device", "gv100", "target device (gv100|xeon6136|xavier)");
  cli.add_option("seed", "2", "sampling seed");
  cli.add_option("csv", "fig2.csv", "output CSV path");
  if (!cli.parse(argc, argv)) return 0;

  const core::SearchSpace space(core::SearchSpaceConfig::imagenet_layout_a());
  const hwsim::DeviceSimulator device(hwsim::device_by_name(cli.get("device")));
  const int batch = device.profile().default_batch;
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

  const int n = static_cast<int>(cli.get_int("samples"));
  std::vector<double> gflops, mparams, latency;
  util::CsvWriter csv(cli.get("csv"));
  csv.row(std::vector<std::string>{"gflops", "mparams", "latency_ms"});
  for (int i = 0; i < n; ++i) {
    const core::Arch arch = core::Arch::random(space, rng);
    const auto net = core::lower_network(arch, space);
    const double fl = 2.0 * hwsim::network_macs(net) / 1e9;
    const double pa = hwsim::network_params(net) / 1e6;
    const double lat = device.network_latency_ms(net, batch);
    gflops.push_back(fl);
    mparams.push_back(pa);
    latency.push_back(lat);
    csv.row(std::vector<double>{fl, pa, lat});
  }

  util::Table table({"proxy", "pearson", "spearman", "kendall"});
  table.add_row({"FLOPs", util::format("%.3f", util::pearson(gflops, latency)),
                 util::format("%.3f", util::spearman(gflops, latency)),
                 util::format("%.3f", util::kendall_tau(gflops, latency))});
  table.add_row({"Params",
                 util::format("%.3f", util::pearson(mparams, latency)),
                 util::format("%.3f", util::spearman(mparams, latency)),
                 util::format("%.3f", util::kendall_tau(mparams, latency))});
  std::printf(
      "FIG 2: FLOPs/Params are weak latency proxies on %s (batch %d)\n%s\n",
      device.profile().name.c_str(), batch, table.render().c_str());

  // Within-bin latency spread: group archs into FLOPs deciles and report
  // the latency range inside each — "same FLOPs, very different latency".
  std::vector<std::size_t> order(gflops.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return gflops[a] < gflops[b];
  });
  std::printf("latency spread within equal-FLOPs deciles:\n");
  std::printf("%8s %10s %12s %12s %9s\n", "decile", "GFLOPs", "lat min(ms)",
              "lat max(ms)", "spread");
  const std::size_t per = order.size() / 10;
  for (int d = 0; d < 10 && per > 1; ++d) {
    std::vector<double> bin;
    double fsum = 0.0;
    for (std::size_t i = d * per; i < (d + 1) * per; ++i) {
      bin.push_back(latency[order[i]]);
      fsum += gflops[order[i]];
    }
    const double lo = util::min_of(bin), hi = util::max_of(bin);
    std::printf("%8d %10.3f %12.2f %12.2f %8.1f%%\n", d,
                fsum / static_cast<double>(per), lo, hi,
                (hi / lo - 1.0) * 100.0);
  }
  std::printf("\nraw samples written to %s\n", cli.get("csv").c_str());
  return 0;
}
