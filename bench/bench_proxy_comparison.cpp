// Proxy-scale end-to-end comparison with REAL training throughout — no
// accuracy surrogate anywhere. This is the miniature, fully-honest version
// of Table I's protocol:
//
//   1. train a weight-sharing supernet on the synthetic task;
//   2. search architectures under tight / medium / loose latency budgets
//      (shared-weight accuracy + Eq. 2-3 latency model);
//   3. train every winner FROM SCRATCH (§IV-A protocol), alongside two
//      controls: a random architecture and the all-max-width network;
//   4. report trained validation accuracy vs simulated edge latency.
//
// Two things are measured: (a) the latency model's predictions hold up
// after real training (they do, tightly); (b) how well one-shot
// shared-weight ranking agrees with from-scratch training at this toy
// scale. The second is reported honestly: with seconds of supernet
// training, rank fidelity is partial — the well-documented one-shot-NAS
// gap, which the paper addresses with 100-epoch supernet training and
// progressive shrinking at full scale.

#include <cstdio>
#include <vector>

#include "core/pipeline.h"
#include "hwsim/registry.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace hsconas;

int main(int argc, char** argv) {
  util::Cli cli("Proxy-scale Table I analogue with real training");
  cli.add_option("supernet-epochs", "5", "supernet pre-training epochs");
  cli.add_option("scratch-epochs", "8", "from-scratch epochs per winner");
  cli.add_option("train-size", "420", "synthetic training images");
  cli.add_option("image-size", "16", "image resolution");
  cli.add_option("seed", "29", "seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  data::SyntheticConfig dc;
  dc.num_classes = 10;
  dc.image_size = static_cast<int>(cli.get_int("image-size"));
  dc.train_size = static_cast<int>(cli.get_int("train-size"));
  dc.val_size = dc.train_size / 2;
  dc.seed = seed ^ 0xDA7Aull;
  const data::SyntheticDataset dataset(dc);

  const auto space_cfg =
      core::SearchSpaceConfig::proxy(10, dc.image_size, 2);
  const core::SearchSpace reference(space_cfg);
  // Proxy nets are ~100x smaller than ImageNet ones, so on the stock
  // xavier profile the fixed per-layer sync would dominate and every arch
  // would cost the same. Scale the profile so compute dominates again —
  // the experiment is about the search mechanism, not the absolute device.
  hwsim::DeviceProfile profile = hwsim::device_by_name("edge");
  profile.name = "proxy-edge (scaled)";
  profile.peak_gflops /= 30.0;
  profile.mem_bandwidth_gbs /= 10.0;
  profile.launch_overhead_us = 1.0;
  profile.sync_overhead_us = 2.0;
  profile.link_bandwidth_gbs /= 10.0;
  const hwsim::DeviceSimulator device(profile);
  const core::LatencyModel latency(
      reference, device,
      core::LatencyModel::Config{device.profile().default_batch, 30, seed,
                                 true});

  // Budget points: tight / medium / loose relative to the space's range.
  util::Rng probe_rng(seed);
  std::vector<double> sample_lat;
  for (int i = 0; i < 40; ++i) {
    sample_lat.push_back(
        latency.predict_ms(core::Arch::random(reference, probe_rng)));
  }
  std::sort(sample_lat.begin(), sample_lat.end());
  const std::vector<double> budgets = {sample_lat[4], sample_lat[20],
                                       sample_lat[36]};

  core::TrainConfig scratch;
  scratch.epochs = static_cast<int>(cli.get_int("scratch-epochs"));
  scratch.batch_size = 48;
  scratch.lr = 0.08;
  scratch.warmup_epochs = 1;
  scratch.seed = seed ^ 0xF00ull;

  struct Row {
    std::string name;
    double shared_weight_acc;  // what the search believed
    double trained_acc;        // ground truth after from-scratch training
    double latency_ms;
  };
  std::vector<Row> rows;

  for (std::size_t b = 0; b < budgets.size(); ++b) {
    core::PipelineConfig cfg;
    cfg.space = space_cfg;
    cfg.custom_device = profile;  // the scaled proxy-edge profile above
    cfg.constraint_ms = budgets[b];
    cfg.use_surrogate = false;
    cfg.initial_epochs = static_cast<int>(cli.get_int("supernet-epochs"));
    cfg.tune_epochs = 1;
    cfg.shrink_layers_per_stage = 2;
    cfg.shrink.samples_per_subspace = 15;
    cfg.evolution.generations = 6;
    cfg.evolution.population = 20;
    cfg.evolution.parents = 8;
    cfg.train.batch_size = 48;
    cfg.train.lr = 0.08;
    cfg.seed = seed + b;
    core::Pipeline pipeline(cfg);
    std::fprintf(stderr, "searching at T = %.2f ms...\n", budgets[b]);
    const auto result = pipeline.run(&dataset);

    const auto trained = core::train_from_scratch(
        pipeline.space(), result.best_arch, dataset, scratch);
    rows.push_back({util::format("HSCoNAS @ T=%.1fms", budgets[b]),
                    result.best_accuracy, trained.val_top1,
                    result.measured_latency_ms});
  }

  // Controls.
  {
    util::Rng rng(seed ^ 0xC0ull);
    const core::Arch random_arch = core::Arch::random(reference, rng);
    const auto trained =
        core::train_from_scratch(reference, random_arch, dataset, scratch);
    rows.push_back({"random arch", -1.0, trained.val_top1,
                    latency.true_ms(random_arch)});
  }
  {
    core::Arch full;
    full.ops.assign(static_cast<std::size_t>(reference.num_layers()), 0);
    full.factors.assign(static_cast<std::size_t>(reference.num_layers()), 9);
    const auto trained =
        core::train_from_scratch(reference, full, dataset, scratch);
    rows.push_back({"all k3 @ full width", -1.0, trained.val_top1,
                    latency.true_ms(full)});
  }

  util::Table table({"network", "shared-weight top-1",
                     "from-scratch top-1", "latency (ms) vs T"});
  for (const Row& row : rows) {
    table.add_row(
        {row.name,
         row.shared_weight_acc < 0
             ? "-"
             : util::format("%.3f", row.shared_weight_acc),
         util::format("%.3f", row.trained_acc),
         util::format("%.2f", row.latency_ms)});
  }
  std::printf(
      "PROXY-SCALE COMPARISON (real supernet, real from-scratch training, "
      "%d classes, chance %.2f)\n%s\n"
      "reading guide: (a) every searched net lands on its latency budget "
      "after real training — the co-design half works end to end; (b) the "
      "shared-weight vs from-scratch columns expose the one-shot ranking "
      "gap at this toy scale (seconds of supernet training vs the paper's "
      "100 epochs) — the capacity axis of the synthetic task saturates, so "
      "trained accuracy differences reflect trainability noise more than "
      "capacity. This is the known one-shot-NAS fidelity limit, reported "
      "honestly rather than hidden by the surrogate.\n",
      dc.num_classes, 1.0 / dc.num_classes, table.render().c_str());
  return 0;
}
