// Ablation bench (ours, motivated by DESIGN.md): which HSCoNAS components
// actually pay their way? Same evaluation budget throughout.
//
//   1. EA (full HSCoNAS search) vs uniform random search;
//   2. latency-aware objective (beta < 0) vs latency-blind (beta = 0);
//   3. bias term B on vs off — does Eq. 3 matter for hitting T on device;
//   4. progressive space shrinking on vs off at fixed total budget.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/accuracy_surrogate.h"
#include "core/evolution.h"
#include "core/latency_model.h"
#include "core/pipeline.h"
#include "core/searchers.h"
#include "core/space_shrinking.h"
#include "hwsim/registry.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace hsconas;

namespace {

struct Env {
  core::SearchSpace space{core::SearchSpaceConfig::imagenet_layout_a()};
  hwsim::DeviceSimulator device;
  core::LatencyModel model;
  core::AccuracySurrogate surrogate{space};
  double T;

  explicit Env(const std::string& device_name, std::uint64_t seed)
      : device(hwsim::device_by_name(device_name)),
        model(space, device,
              core::LatencyModel::Config{
                  hwsim::device_by_name(device_name).default_batch, 50, seed,
                  true}),
        T(hwsim::default_constraint_ms(device_name)) {}

  core::AccuracyFn accuracy_fn() {
    return [this](const core::Arch& a) { return surrogate.accuracy(a); };
  }
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("Search ablations: EA, beta, bias B, shrinking");
  cli.add_option("device", "xavier", "target device");
  cli.add_option("generations", "20", "EA generations");
  cli.add_option("population", "50", "EA population");
  cli.add_option("seed", "8", "seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  Env env(cli.get("device"), seed);

  core::EvolutionSearch::Config evo;
  evo.generations = static_cast<int>(cli.get_int("generations"));
  evo.population = static_cast<int>(cli.get_int("population"));
  evo.parents = evo.population * 2 / 5;
  evo.seed = seed;

  util::Table table({"variant", "top-1 err", "pred lat (ms)",
                     "on-device (ms)", "|lat/T - 1|", "F score"});
  const auto add_row = [&](const std::string& name, const core::Arch& arch,
                           double score) {
    const double err = env.surrogate.top1_error(arch);
    const double lat = env.model.predict_ms(arch);
    const double real = env.model.true_ms(arch);
    table.add_row({name, util::format("%.2f", err),
                   util::format("%.2f", lat), util::format("%.2f", real),
                   util::format("%.3f", std::abs(real / env.T - 1.0)),
                   util::format("%.4f", score)});
  };

  // 1. Full EA.
  {
    core::EvolutionSearch search(env.space, env.accuracy_fn(), env.model,
                                 core::Objective{-0.3, env.T}, evo);
    const auto result = search.run();
    add_row("HSCoNAS EA (full)", result.best.arch, result.best.score);

    // 2. Random search at the same evaluation budget.
    core::RandomSearch random(
        env.space, env.accuracy_fn(), env.model,
        core::Objective{-0.3, env.T},
        core::RandomSearch::Config{
            static_cast<int>(result.evaluated.size()), seed ^ 0xF00Dull});
    const auto random_result = random.run();
    add_row("random search (same budget)", random_result.best.arch,
            random_result.best.score);

    // 2b. Aging evolution (Real et al., the paper's EA reference [12]).
    core::AgingEvolution::Config aging_cfg;
    aging_cfg.evaluations = static_cast<int>(result.evaluated.size());
    aging_cfg.population = evo.population;
    aging_cfg.tournament = 10;
    aging_cfg.seed = seed ^ 0xA61ull;
    core::AgingEvolution aging(env.space, env.accuracy_fn(), env.model,
                               core::Objective{-0.3, env.T}, aging_cfg);
    const auto aging_result = aging.run();
    add_row("aging evolution (same budget)", aging_result.best.arch,
            aging_result.best.score);
  }

  // 3. Latency-blind EA (beta = 0): picks big nets, blows the budget.
  {
    core::EvolutionSearch search(env.space, env.accuracy_fn(), env.model,
                                 core::Objective{0.0, env.T}, evo);
    const auto result = search.run();
    add_row("latency-blind EA (beta=0)", result.best.arch,
            result.best.score);
  }

  // 4. EA steered by the *uncorrected* LUT sum (no Eq. 3 bias): it believes
  // nets are faster than they are, so the winner overshoots T on device.
  {
    core::EvolutionSearch::Config cfg = evo;
    cfg.seed = seed ^ 0x9;
    // Cheapest correct approach: wrap via a latency model clone with a
    // dedicated Objective comparing uncorrected predictions. We emulate by
    // shifting the constraint: steering on uncorrected(lat) against T is
    // the same as steering on corrected(lat) against T + B.
    core::EvolutionSearch search(
        env.space, env.accuracy_fn(), env.model,
        core::Objective{-0.3, env.T + env.model.bias_ms()}, cfg);
    const auto result = search.run();
    add_row("no bias term B (Eq.3 off)", result.best.arch,
            result.best.score);
  }

  // 5. Shrinking on vs off at a *reduced* EA budget (where the cheaper
  // exploration of a pruned space shows up).
  {
    core::EvolutionSearch::Config small = evo;
    small.generations = std::max(3, evo.generations / 4);
    small.seed = seed ^ 0x10;

    core::EvolutionSearch flat(env.space, env.accuracy_fn(), env.model,
                               core::Objective{-0.3, env.T}, small);
    const auto flat_result = flat.run();
    add_row("small EA, no shrinking", flat_result.best.arch,
            flat_result.best.score);

    core::SearchSpace shrunk(env.space.config());
    core::LatencyModel model2(
        shrunk, env.device,
        core::LatencyModel::Config{env.device.profile().default_batch, 50,
                                   seed, true});
    core::AccuracySurrogate surrogate2(shrunk);
    const auto acc2 = [&](const core::Arch& a) {
      return surrogate2.accuracy(a);
    };
    core::SpaceShrinker shrinker(shrunk, acc2, model2,
                                 core::Objective{-0.3, env.T},
                                 core::SpaceShrinker::Config{100, seed ^ 0x11});
    shrinker.shrink_stage(shrunk.num_layers() - 1, 4);
    shrinker.shrink_stage(shrunk.num_layers() - 5, 4);
    core::EvolutionSearch pruned(shrunk, acc2, model2,
                                 core::Objective{-0.3, env.T}, small);
    const auto pruned_result = pruned.run();
    add_row("small EA, after 2-stage shrink", pruned_result.best.arch,
            pruned_result.best.score);
  }

  std::printf(
      "SEARCH ABLATIONS on %s (T = %.0f ms)\n%s\n"
      "reading guide: the full EA should dominate random search; beta=0 "
      "ignores T entirely; disabling B makes the winner overshoot T "
      "on device; shrinking helps most when the EA budget is tight.\n",
      cli.get("device").c_str(), env.T, table.render().c_str());
  return 0;
}
