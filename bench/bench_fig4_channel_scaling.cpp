// Fig. 4 reproduction (quantified): conventional *uniform* channel scaling
// (one factor for every layer, applied post-hoc) vs the paper's *dynamic*
// per-layer channel scaling searched jointly with the operators (§III-B).
//
// For a sweep of latency budgets we report the best achievable accuracy
// under each scheme; dynamic scaling must dominate, because it can spend
// width where it matters (late, low-resolution layers are cheap per
// channel) instead of scaling every layer equally.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/accuracy_surrogate.h"
#include "core/evolution.h"
#include "core/latency_model.h"
#include "core/search_space.h"
#include "hwsim/registry.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace hsconas;

int main(int argc, char** argv) {
  util::Cli cli("Fig. 4: conventional vs dynamic channel scaling");
  cli.add_option("device", "xavier", "target device");
  cli.add_option("generations", "15", "EA generations per budget");
  cli.add_option("population", "40", "EA population");
  cli.add_option("seed", "4", "seed");
  cli.add_option("csv", "fig4.csv", "output CSV path");
  if (!cli.parse(argc, argv)) return 0;

  const core::SearchSpace space(core::SearchSpaceConfig::imagenet_layout_a());
  const hwsim::DeviceSimulator device(
      hwsim::device_by_name(cli.get("device")));
  core::LatencyModel::Config lat_cfg;
  lat_cfg.batch = device.profile().default_batch;
  lat_cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const core::LatencyModel model(space, device, lat_cfg);
  const core::AccuracySurrogate surrogate(space);

  // --- conventional: fixed operator assignment, one uniform factor -------
  // (the usual post-NAS width-multiplier sweep, e.g. MobileNet 0.5x/0.75x).
  struct Point {
    double latency_ms, top1_err;
    double factor = 0.0;
  };
  std::vector<Point> uniform_points;
  core::Arch base;
  base.ops.assign(static_cast<std::size_t>(space.num_layers()), 0);  // k3
  base.factors.assign(static_cast<std::size_t>(space.num_layers()), 0);
  for (int f = 0; f < 10; ++f) {
    core::Arch arch = base;
    std::fill(arch.factors.begin(), arch.factors.end(), f);
    uniform_points.push_back(
        {model.predict_ms(arch), surrogate.top1_error(arch),
         space.config().channel_factors[static_cast<std::size_t>(f)]});
  }

  // --- dynamic: EA over {op, c} under the same latency budgets ------------
  util::Table table({"budget T (ms)", "uniform best top-1 err",
                     "dynamic best top-1 err", "gain", "dynamic lat (ms)"});
  util::CsvWriter csv(cli.get("csv"));
  csv.row(std::vector<std::string>{"budget_ms", "uniform_err", "dynamic_err",
                                   "dynamic_latency_ms"});

  for (const Point& target : uniform_points) {
    if (target.factor < 0.25) continue;  // degenerate budgets
    const double T = target.latency_ms;
    // Best uniform point that fits the budget.
    double uniform_best = 100.0;
    for (const Point& p : uniform_points) {
      if (p.latency_ms <= T * 1.001) {
        uniform_best = std::min(uniform_best, p.top1_err);
      }
    }

    core::SearchSpace search_space(space.config());
    const core::Objective objective{-0.3, T};
    core::EvolutionSearch::Config evo;
    evo.generations = static_cast<int>(cli.get_int("generations"));
    evo.population = static_cast<int>(cli.get_int("population"));
    evo.parents = evo.population / 3;
    evo.seed = static_cast<std::uint64_t>(cli.get_int("seed")) ^
               static_cast<std::uint64_t>(T * 100);
    core::AccuracySurrogate dyn_surrogate(search_space);
    core::LatencyModel dyn_model(search_space, device, lat_cfg);
    core::EvolutionSearch search(
        search_space,
        [&](const core::Arch& a) { return dyn_surrogate.accuracy(a); },
        dyn_model, objective, evo);
    const auto result = search.run();
    // Best candidate that actually fits the budget.
    double dynamic_best = 100.0, dynamic_lat = 0.0;
    for (const auto& cand : result.evaluated) {
      if (cand.latency_ms <= T * 1.001) {
        const double err = (1.0 - cand.accuracy) * 100.0;
        if (err < dynamic_best) {
          dynamic_best = err;
          dynamic_lat = cand.latency_ms;
        }
      }
    }

    table.add_row({util::format("%.1f", T),
                   util::format("%.2f  (c=%.1f)", uniform_best,
                                target.factor),
                   util::format("%.2f", dynamic_best),
                   util::format("%+.2f", uniform_best - dynamic_best),
                   util::format("%.1f", dynamic_lat)});
    csv.row(std::vector<double>{T, uniform_best, dynamic_best, dynamic_lat});
  }

  std::printf(
      "FIG 4: uniform vs dynamic channel scaling on %s\n"
      "(budgets are the latencies of the uniform-factor sweep; 'gain' is "
      "the top-1 error reduction from per-layer scaling)\n%s\n"
      "raw rows written to %s\n",
      device.profile().name.c_str(), table.render().c_str(),
      cli.get("csv").c_str());
  return 0;
}
