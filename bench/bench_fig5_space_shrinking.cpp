// Fig. 5 / Fig. 6-left reproduction: progressive space shrinking (§III-C)
// at proxy scale with a *real* weight-sharing supernet trained on the
// synthetic dataset.
//
// Two identically-seeded supernets run side by side:
//   * "shrunk": initial training → shrink stage 1 (back-to-front, Q of
//     Definition 1) → tune → shrink stage 2 → tune;
//   * "naive": the same total epochs of continued training in the full
//     space (the paper's 'naive training' control).
// After each phase we report the mean supernet accuracy over N candidate
// archs sampled from each net's current space — the paper's observation is
// that the shrunk supernet's accuracy is higher after each stage. We also
// print the space-size ledger (~3 orders of magnitude per stage) and the
// subspace-evaluation count (K×layers, not K^layers).

#include <cstdio>
#include <vector>

#include "core/latency_model.h"
#include "core/space_shrinking.h"
#include "core/supernet.h"
#include "core/trainer.h"
#include "hwsim/registry.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace hsconas;

namespace {

double mean_candidate_accuracy(core::SupernetTrainer& trainer,
                               const core::SearchSpace& space, int n,
                               std::uint64_t seed, std::size_t batches) {
  util::Rng rng(seed);
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    total += trainer.evaluate(core::Arch::random(space, rng), batches);
  }
  return total / n;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("Fig. 5 / Fig. 6-left: progressive space shrinking");
  cli.add_option("initial-epochs", "6",
                 "supernet pre-training epochs (paper: 100)");
  cli.add_option("tune-epochs", "3",
                 "tuning epochs after each shrink (paper: 15)");
  cli.add_option("blocks-per-stage", "2", "proxy supernet depth knob");
  cli.add_option("image-size", "16", "proxy image size");
  cli.add_option("train-size", "480", "proxy training set size");
  cli.add_option("eval-archs", "8", "candidate archs per accuracy probe");
  cli.add_option("shrink-samples", "25", "N of Definition 1");
  cli.add_flag("fair-sampling",
               "use strict-fair operator sampling (FairNAS-style) instead "
               "of uniform single-path sampling for both supernets");
  cli.add_option("seed", "5", "seed");
  cli.add_option("csv", "fig5.csv", "output CSV path");
  if (!cli.parse(argc, argv)) return 0;

  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto space_cfg = core::SearchSpaceConfig::proxy(
      10, cli.get_int("image-size"),
      static_cast<int>(cli.get_int("blocks-per-stage")));

  data::SyntheticConfig data_cfg;
  data_cfg.num_classes = 10;
  data_cfg.image_size = static_cast<int>(cli.get_int("image-size"));
  data_cfg.train_size = static_cast<int>(cli.get_int("train-size"));
  data_cfg.val_size = data_cfg.train_size / 2;
  data_cfg.seed = seed ^ 0xDA7Aull;
  const data::SyntheticDataset dataset(data_cfg);

  core::TrainConfig train_cfg;
  train_cfg.batch_size = 48;
  train_cfg.lr = 0.08;
  train_cfg.seed = seed;
  train_cfg.fair_sampling = cli.get_bool("fair-sampling");

  // Two supernets, identical init.
  core::SearchSpace shrunk_space(space_cfg);
  core::SearchSpace naive_space(space_cfg);
  core::Supernet shrunk_net(shrunk_space, seed ^ 0x5e7ull);
  core::Supernet naive_net(naive_space, seed ^ 0x5e7ull);
  core::SupernetTrainer shrunk(shrunk_net, dataset, train_cfg);
  core::SupernetTrainer naive(naive_net, dataset, train_cfg);

  const hwsim::DeviceSimulator device(hwsim::device_by_name("xavier"));
  core::LatencyModel::Config lat_cfg;
  lat_cfg.batch = device.profile().default_batch;
  lat_cfg.seed = seed;
  const core::LatencyModel latency(shrunk_space, device, lat_cfg);

  // Mid-range constraint so F's latency term discriminates.
  double constraint;
  {
    util::Rng rng(seed ^ 1);
    double sum = 0.0;
    for (int i = 0; i < 20; ++i) {
      sum += latency.predict_ms(core::Arch::random(shrunk_space, rng));
    }
    constraint = sum / 20.0;
  }
  const core::Objective objective{-0.3, constraint};

  const int eval_archs = static_cast<int>(cli.get_int("eval-archs"));
  const int initial_epochs = static_cast<int>(cli.get_int("initial-epochs"));
  const int tune_epochs = static_cast<int>(cli.get_int("tune-epochs"));
  const int L = shrunk_space.num_layers();
  const int per_stage = std::min(4, L / 2);

  util::Table table({"phase", "shrunk supernet acc", "naive acc",
                     "log10 |A| (shrunk)", "log10 |A| (naive)"});
  util::CsvWriter csv(cli.get("csv"));
  csv.row(std::vector<std::string>{"phase", "shrunk_acc", "naive_acc",
                                   "shrunk_log10", "naive_log10"});
  const auto record = [&](const std::string& phase) {
    const double sa = mean_candidate_accuracy(shrunk, shrunk_space,
                                              eval_archs, seed ^ 0xE, 3);
    const double na = mean_candidate_accuracy(naive, naive_space, eval_archs,
                                              seed ^ 0xE, 3);
    table.add_row({phase, util::format("%.3f", sa), util::format("%.3f", na),
                   util::format("%.1f", shrunk_space.log10_size()),
                   util::format("%.1f", naive_space.log10_size())});
    csv.row(std::vector<std::string>{
        phase, util::format("%.4f", sa), util::format("%.4f", na),
        util::format("%.2f", shrunk_space.log10_size()),
        util::format("%.2f", naive_space.log10_size())});
  };

  std::fprintf(stderr, "training both supernets for %d epochs...\n",
               initial_epochs);
  shrunk.run(initial_epochs);
  naive.run(initial_epochs);
  record("after initial training");

  core::SpaceShrinker shrinker(
      shrunk_space,
      [&](const core::Arch& a) { return shrunk.evaluate(a, 2); }, latency,
      objective,
      core::SpaceShrinker::Config{
          static_cast<int>(cli.get_int("shrink-samples")), seed ^ 0x51});

  std::fprintf(stderr, "stage 1: shrinking layers %d..%d\n", L - 1,
               L - per_stage);
  shrinker.shrink_stage(L - 1, per_stage);
  shrunk.run(tune_epochs, 0.01);
  naive.run(tune_epochs, 0.01);
  record("after 1st shrink + tune");

  std::fprintf(stderr, "stage 2: shrinking layers %d..%d\n",
               L - 1 - per_stage, L - 2 * per_stage);
  shrinker.shrink_stage(L - 1 - per_stage, per_stage);
  shrunk.run(tune_epochs, 0.0035);
  naive.run(tune_epochs, 0.0035);
  record("after 2nd shrink + tune");

  std::printf(
      "FIG 5 / FIG 6-left: progressive space shrinking vs naive training\n"
      "(proxy supernet, %d layers, latency constraint %.1f ms on xavier)\n"
      "%s\n"
      "subspace evaluations: %d (= K x layers per stage; joint evaluation "
      "of one 4-layer stage would need 5^4 = 625)\n"
      "raw rows written to %s\n",
      L, constraint, table.render().c_str(),
      shrinker.total_subspaces_evaluated(), cli.get("csv").c_str());
  return 0;
}
