// Fig. 3 + §III-A RMSE reproduction: estimated latency (Eq. 2 LUT sum +
// Eq. 3 bias B) vs "on-device" latency from the device simulator, for all
// three target platforms. The paper reports RMSE 0.5 / 0.1 / 1.7 ms on
// GPU / CPU / edge and a strong visual correlation; we report the same
// statistics with and without the bias correction.

#include <cstdio>
#include <map>

#include "core/latency_model.h"
#include "core/search_space.h"
#include "eval/latency_eval.h"
#include "hwsim/registry.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace hsconas;

int main(int argc, char** argv) {
  util::Cli cli("Fig. 3: hardware performance model accuracy");
  cli.add_option("eval-archs", "200", "architectures evaluated per device");
  cli.add_option("bias-samples", "50", "M of Eq. 3");
  cli.add_option("seed", "3", "seed");
  cli.add_option("csv", "fig3.csv", "output CSV path");
  if (!cli.parse(argc, argv)) return 0;

  const core::SearchSpace space(core::SearchSpaceConfig::imagenet_layout_a());
  util::CsvWriter csv(cli.get("csv"));
  csv.row(std::vector<std::string>{"device", "predicted_ms",
                                   "predicted_uncorrected_ms", "measured_ms"});

  util::Table table({"device", "batch", "bias B (ms)", "RMSE (ms)",
                     "RMSE w/o B", "paper RMSE", "pearson", "spearman",
                     "kendall"});
  const std::map<std::string, double> paper_rmse = {
      {"gv100", 0.5}, {"xeon6136", 0.1}, {"xavier", 1.7}};

  for (const std::string& name : hwsim::device_names()) {
    const hwsim::DeviceSimulator device(hwsim::device_by_name(name));
    core::LatencyModel::Config cfg;
    cfg.batch = device.profile().default_batch;
    cfg.bias_samples = static_cast<int>(cli.get_int("bias-samples"));
    cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    core::LatencyModel model(space, device, cfg);

    const auto report = eval::evaluate_latency_model(
        model, static_cast<int>(cli.get_int("eval-archs")),
        cfg.seed ^ 0xF16u);
    for (const auto& p : report.points) {
      csv.row(std::vector<std::string>{
          name, util::format("%.4f", p.predicted_ms),
          util::format("%.4f", p.predicted_uncorrected_ms),
          util::format("%.4f", p.measured_ms)});
    }
    table.add_row({name, util::format("%d", cfg.batch),
                   util::format("%.2f", report.bias_ms),
                   util::format("%.2f", report.rmse_ms),
                   util::format("%.2f", report.rmse_uncorrected_ms),
                   util::format("%.1f", paper_rmse.at(name)),
                   util::format("%.3f", report.pearson),
                   util::format("%.3f", report.spearman),
                   util::format("%.3f", report.kendall_tau)});
  }

  std::printf(
      "FIG 3: estimated (Eq.2 + Eq.3 bias) vs on-device latency\n%s\n"
      "raw pairs written to %s\n",
      table.render().c_str(), cli.get("csv").c_str());
  return 0;
}
