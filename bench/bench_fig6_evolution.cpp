// Fig. 6 (top & bottom) reproduction: the evolutionary search on the edge
// device under the paper's 34 ms constraint.
//
//  * top:    best objective / best-candidate latency per generation — the
//            paper's run converges to 34.3 ms against T = 34 ms;
//  * bottom: histogram of the latencies of every candidate the EA
//            evaluated, concentrated around T, against a uniform-random
//            sample of the space for contrast.

#include <cstdio>
#include <vector>

#include "core/accuracy_surrogate.h"
#include "core/analysis.h"
#include "core/evolution.h"
#include "core/latency_model.h"
#include "core/search_space.h"
#include "hwsim/registry.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/string_util.h"

using namespace hsconas;

int main(int argc, char** argv) {
  util::Cli cli("Fig. 6: evolutionary search under the 34 ms edge budget");
  cli.add_option("device", "xavier", "target device");
  cli.add_option("constraint", "34", "latency constraint T in ms");
  cli.add_option("generations", "20", "EA generations (paper: 20)");
  cli.add_option("population", "50", "population size (paper: 50)");
  cli.add_option("parents", "20", "parent pool size (paper: 20)");
  cli.add_option("seed", "6", "seed");
  cli.add_option("csv", "fig6.csv", "output CSV path");
  if (!cli.parse(argc, argv)) return 0;

  const core::SearchSpace space(core::SearchSpaceConfig::imagenet_layout_a());
  const hwsim::DeviceSimulator device(
      hwsim::device_by_name(cli.get("device")));
  core::LatencyModel::Config lat_cfg;
  lat_cfg.batch = device.profile().default_batch;
  lat_cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  core::LatencyModel model(space, device, lat_cfg);
  const core::AccuracySurrogate surrogate(space);
  const double T = cli.get_double("constraint");
  const core::Objective objective{-0.3, T};

  core::EvolutionSearch::Config evo;
  evo.generations = static_cast<int>(cli.get_int("generations"));
  evo.population = static_cast<int>(cli.get_int("population"));
  evo.parents = static_cast<int>(cli.get_int("parents"));
  evo.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  core::EvolutionSearch search(
      space, [&](const core::Arch& a) { return surrogate.accuracy(a); },
      model, objective, evo);
  const auto result = search.run();

  // ---- top: per-generation trajectory -------------------------------------
  std::printf(
      "FIG 6 (top): best candidate per generation (T = %.0f ms on %s)\n",
      T, device.profile().name.c_str());
  std::printf("%4s %12s %12s %14s %12s\n", "gen", "best score", "mean score",
              "best lat (ms)", "best top-1");
  for (const auto& g : result.per_generation) {
    std::printf("%4d %12.4f %12.4f %14.2f %11.1f%%\n", g.generation,
                g.best_score, g.mean_score, g.best_latency_ms,
                (1.0 - g.best_accuracy) * 100.0);
  }
  const double measured = model.measure_ms(result.best.arch);
  std::printf(
      "\nwinner: predicted %.1f ms, on-device %.1f ms vs T = %.0f ms "
      "(paper: 34.3 ms vs 34 ms); top-1 err %.1f%%\n",
      result.best.latency_ms, measured, T,
      (1.0 - result.best.accuracy) * 100.0);
  std::printf("winner arch: %s\n\n",
              result.best.arch.to_string(space).c_str());

  // ---- bottom: latency histogram of EA candidates vs uniform sampling -----
  std::vector<double> ea_latencies;
  for (const auto& cand : result.evaluated) {
    ea_latencies.push_back(cand.latency_ms);
  }
  util::Rng rng(evo.seed ^ 0xBADA55ull);
  std::vector<double> random_latencies;
  for (std::size_t i = 0; i < ea_latencies.size(); ++i) {
    random_latencies.push_back(
        model.predict_ms(core::Arch::random(space, rng)));
  }
  const double lo = std::min(util::min_of(ea_latencies),
                             util::min_of(random_latencies));
  const double hi = std::max(util::max_of(ea_latencies),
                             util::max_of(random_latencies));
  util::Histogram ea_hist(lo, hi, 18), random_hist(lo, hi, 18);
  ea_hist.add_all(ea_latencies);
  random_hist.add_all(random_latencies);

  std::printf(
      "FIG 6 (bottom): latency of all %zu EA-evaluated candidates "
      "(red dashed line of the paper = T at %.0f ms)\n%s\n",
      ea_latencies.size(), T, ea_hist.render().c_str());
  std::printf("uniform-random sample of A for contrast:\n%s\n",
              random_hist.render().c_str());
  const auto within = [&](const std::vector<double>& xs, double band) {
    return 100.0 *
           static_cast<double>(std::count_if(
               xs.begin(), xs.end(),
               [&](double v) { return std::abs(v / T - 1) < band; })) /
           static_cast<double>(xs.size());
  };
  std::printf(
      "EA concentration: %.0f%% of evaluated candidates within +/-5%% of T, "
      "%.0f%% within +/-2%% (uniform random: %.0f%% / %.0f%%)\n",
      within(ea_latencies, 0.05), within(ea_latencies, 0.02),
      within(random_latencies, 0.05), within(random_latencies, 0.02));

  // Paper-style qualitative reading: which operators/widths survive per
  // layer among the best 10% of everything the EA evaluated.
  const auto stats = core::analyze_population(
      result.evaluated, space, result.evaluated.size() / 10);
  std::printf(
      "\nper-layer operator survival among the top 10%% of candidates:\n%s\n",
      core::render_layer_statistics(stats, space).c_str());

  util::CsvWriter csv(cli.get("csv"));
  csv.row(std::vector<std::string>{"kind", "latency_ms", "score"});
  for (const auto& cand : result.evaluated) {
    csv.row(std::vector<std::string>{"ea", util::format("%.4f", cand.latency_ms),
                                     util::format("%.5f", cand.score)});
  }
  for (double v : random_latencies) {
    csv.row(std::vector<std::string>{"random", util::format("%.4f", v), ""});
  }
  std::printf("raw candidates written to %s\n", cli.get("csv").c_str());
  return 0;
}
