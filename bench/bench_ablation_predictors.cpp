// Predictor ablation: the paper's LUT + bias model (Eq. 2-3) against a
// learned layer-wise ridge regressor and a FLOPs-proportional baseline, at
// matched measurement budgets. The interesting axis is data efficiency:
// the LUT needs L·K·|C| isolated op profiles plus M end-to-end runs, while
// the regressor needs end-to-end runs only — how many before it catches up?

#include <cstdio>
#include <vector>

#include "core/latency_model.h"
#include "core/latency_regression.h"
#include "core/lowering.h"
#include "core/search_space.h"
#include "hwsim/registry.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace hsconas;

int main(int argc, char** argv) {
  util::Cli cli("Latency predictor ablation: LUT+B vs regression vs FLOPs");
  cli.add_option("device", "gv100", "target device");
  cli.add_option("eval-archs", "150", "held-out architectures");
  cli.add_option("seed", "17", "seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const core::SearchSpace space(core::SearchSpaceConfig::imagenet_layout_a());
  const hwsim::DeviceSimulator device(
      hwsim::device_by_name(cli.get("device")));
  const int batch = device.profile().default_batch;

  // Held-out evaluation set (noise-free ground truth).
  util::Rng rng(seed ^ 0xEEull);
  std::vector<core::Arch> eval_archs;
  std::vector<double> truth;
  for (int i = 0; i < cli.get_int("eval-archs"); ++i) {
    eval_archs.push_back(core::Arch::random(space, rng));
    truth.push_back(device.network_latency_ms(
        core::lower_network(eval_archs.back(), space), batch));
  }

  const auto evaluate = [&](const std::vector<double>& pred) {
    struct Metrics {
      double rmse, pearson, kendall;
    };
    return Metrics{util::rmse(pred, truth), util::pearson(pred, truth),
                   util::kendall_tau(pred, truth)};
  };

  util::Table table({"predictor", "measurements", "RMSE (ms)", "pearson",
                     "kendall tau"});

  // (a) Eq. 2-3 LUT + bias.
  {
    core::LatencyModel model(space, device,
                             core::LatencyModel::Config{batch, 50, seed,
                                                        true});
    std::vector<double> pred;
    for (const auto& arch : eval_archs) pred.push_back(model.predict_ms(arch));
    const auto m = evaluate(pred);
    const int lut_entries = space.num_layers() * space.config().num_ops *
                            static_cast<int>(
                                space.config().channel_factors.size());
    table.add_row({"LUT + bias (Eq. 2-3)",
                   util::format("%d op profiles + 50 runs", lut_entries),
                   util::format("%.3f", m.rmse),
                   util::format("%.4f", m.pearson),
                   util::format("%.4f", m.kendall)});
  }

  // (b) Ridge regression at several measurement budgets.
  for (const int budget : {50, 100, 200, 400, 800}) {
    core::LatencyRegressor::Config cfg;
    cfg.train_samples = budget;
    cfg.batch = batch;
    cfg.seed = seed;
    const core::LatencyRegressor regressor(space, device, cfg);
    std::vector<double> pred;
    for (const auto& arch : eval_archs) {
      pred.push_back(regressor.predict_ms(arch));
    }
    const auto m = evaluate(pred);
    table.add_row({"layer-wise regression",
                   util::format("%d end-to-end runs", budget),
                   util::format("%.3f", m.rmse),
                   util::format("%.4f", m.pearson),
                   util::format("%.4f", m.kendall)});
  }

  // (c) FLOPs-proportional baseline (scale fitted on 50 runs).
  {
    util::Rng fit_rng(seed ^ 0xF1ull);
    std::vector<double> gf, lat;
    for (int i = 0; i < 50; ++i) {
      const core::Arch arch = core::Arch::random(space, fit_rng);
      gf.push_back(core::arch_macs(arch, space) / 1e9);
      lat.push_back(device.network_latency_ms(
          core::lower_network(arch, space), batch, &fit_rng));
    }
    const util::LinearFit fit = util::linear_fit(gf, lat);
    std::vector<double> pred;
    for (const auto& arch : eval_archs) {
      pred.push_back(fit.intercept +
                     fit.slope * core::arch_macs(arch, space) / 1e9);
    }
    const auto m = evaluate(pred);
    table.add_row({"FLOPs-linear baseline", "50 end-to-end runs",
                   util::format("%.3f", m.rmse),
                   util::format("%.4f", m.pearson),
                   util::format("%.4f", m.kendall)});
  }

  std::printf(
      "LATENCY PREDICTOR ABLATION on %s (batch %d, %zu held-out archs)\n%s\n"
      "reading guide: Eq. 2-3 is near-exact because per-op costs compose "
      "additively on real runtimes too; the regressor needs hundreds of "
      "end-to-end runs to approach it; FLOPs alone misranks heavily "
      "(cf. Fig. 2).\n",
      cli.get("device").c_str(), batch, eval_archs.size(),
      table.render().c_str());
  return 0;
}
