// Extension bench (§V future work): energy/power-constrained co-design.
//
// Three searches on the same device and latency budget:
//   (a) the paper's Eq. 1 objective (latency only);
//   (b) energy-aware objective with a tight energy budget (γ < 0);
//   (c) energy-aware with a loose budget (sanity: should match (a)).
// Reported: top-1 error, latency, energy and mean power of each winner —
// the tight-budget search must trade a little accuracy for a real energy
// reduction, not just ride the latency constraint.

#include <cstdio>

#include "core/accuracy_surrogate.h"
#include "core/energy_model.h"
#include "core/evolution.h"
#include "core/lowering.h"
#include "hwsim/registry.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace hsconas;

int main(int argc, char** argv) {
  util::Cli cli("Energy-constrained NAS (paper §V extension)");
  cli.add_option("device", "xavier", "target device");
  cli.add_option("generations", "20", "EA generations");
  cli.add_option("population", "50", "EA population");
  cli.add_option("seed", "13", "seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const core::SearchSpace space(core::SearchSpaceConfig::imagenet_layout_a());
  const hwsim::DeviceSimulator device(
      hwsim::device_by_name(cli.get("device")));
  const hwsim::EnergySimulator energy_sim(
      hwsim::energy_by_name(cli.get("device")), device);
  const int batch = device.profile().default_batch;

  const core::LatencyModel latency(
      space, device, core::LatencyModel::Config{batch, 50, seed, true});
  const core::EnergyModel energy(
      space, energy_sim, core::EnergyModel::Config{batch, 50, seed, true},
      &latency);
  const core::AccuracySurrogate surrogate(space);
  const auto accuracy = [&](const core::Arch& a) {
    return surrogate.accuracy(a);
  };

  const double T = hwsim::default_constraint_ms(cli.get("device"));

  // Reference energy distribution at the latency constraint: sample archs,
  // keep those near T, and take percentiles for the budgets.
  util::Rng rng(seed ^ 0xE0ull);
  std::vector<double> energies_near_t;
  while (energies_near_t.size() < 60) {
    const core::Arch arch = core::Arch::random(space, rng);
    if (std::abs(latency.predict_ms(arch) / T - 1.0) < 0.25) {
      energies_near_t.push_back(energy.predict_mj(arch));
    }
  }
  const double tight_budget = util::percentile(energies_near_t, 15.0);
  const double loose_budget = util::percentile(energies_near_t, 95.0);

  core::EvolutionSearch::Config evo;
  evo.generations = static_cast<int>(cli.get_int("generations"));
  evo.population = static_cast<int>(cli.get_int("population"));
  evo.parents = evo.population * 2 / 5;
  evo.seed = seed;

  util::Table table({"objective", "top-1 err", "lat (ms)", "energy (mJ)",
                     "mean power (W)", "mJ/inference/img"});
  const auto add_row = [&](const std::string& name,
                           const core::EvolutionSearch::Candidate& best) {
    const auto net = core::lower_network(best.arch, space);
    const double e = energy_sim.network_energy_mj(net, batch);
    const double lat = device.network_latency_ms(net, batch);
    table.add_row({name, util::format("%.2f", (1.0 - best.accuracy) * 100.0),
                   util::format("%.2f", lat), util::format("%.1f", e),
                   util::format("%.1f", e / lat),
                   util::format("%.2f", e / batch)});
  };

  {
    core::EvolutionSearch search(space, accuracy, latency,
                                 core::Objective{-0.3, T}, evo);
    add_row("Eq.1 (latency only)", search.run().best);
  }
  {
    core::Objective obj{-0.3, T};
    obj.gamma = -0.3;
    obj.energy_budget_mj = tight_budget;
    core::EvolutionSearch search(space, accuracy, latency, energy, obj, evo);
    add_row(util::format("+ energy, tight (%.0f mJ)", tight_budget),
            search.run().best);
  }
  {
    core::Objective obj{-0.3, T};
    obj.gamma = -0.3;
    obj.energy_budget_mj = loose_budget;
    core::EvolutionSearch search(space, accuracy, latency, energy, obj, evo);
    add_row(util::format("+ energy, loose (%.0f mJ)", loose_budget),
            search.run().best);
  }

  std::printf(
      "ENERGY-CONSTRAINED SEARCH on %s (T = %.0f ms, batch %d)\n%s\n"
      "reading guide: the tight energy budget should pull the winner's "
      "energy down toward its budget at a small accuracy cost; the loose "
      "budget behaves like plain Eq. 1.\n",
      cli.get("device").c_str(), T, batch, table.render().c_str());
  return 0;
}
