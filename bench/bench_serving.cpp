// Closed-loop serving benchmark: stand up the batch-scheduled server on a
// proxy-scale arch and drive it with the load generator across a small
// sweep of (workers, batch_max) points. Emits BENCH_serving.json (schema
// hsconas.serving.v1 runs) for the performance ledger; ci_checks.sh runs
// a reduced smoke configuration.

#include <cstdio>
#include <string>
#include <vector>

#include "core/arch.h"
#include "core/search_space.h"
#include "nn/quantize.h"
#include "serve/batch_server.h"
#include "serve/load_gen.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace hsconas;

int main(int argc, char** argv) {
  util::Cli cli(
      "bench_serving: closed-loop load generation against the batch "
      "server; one row per (workers, batch_max) sweep point");
  cli.add_option("clients", "8", "closed-loop clients");
  cli.add_option("requests", "40", "measured requests per client");
  cli.add_option("warmup", "5", "warm-up requests per client");
  cli.add_option("deadline-us", "2000", "batching window");
  cli.add_option("workers", "1,2", "comma-separated lane counts to sweep");
  cli.add_option("batch-max", "1,8", "comma-separated batch sizes to sweep");
  cli.add_option("dtype", "f32,int8",
                 "comma-separated lane datapaths to sweep (f32 | int8)");
  cli.add_option("seed", "42", "weight/arch/input seed");
  cli.add_option("out", "BENCH_serving.json", "report path");
  if (!cli.parse(argc, argv)) return 0;

  const core::SearchSpace space(core::SearchSpaceConfig::proxy());
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  util::Rng rng(seed);
  const core::Arch arch = core::Arch::random(space, rng);

  serve::LoadGenConfig load_cfg;
  load_cfg.clients = static_cast<std::size_t>(cli.get_int("clients"));
  load_cfg.requests_per_client =
      static_cast<std::size_t>(cli.get_int("requests"));
  load_cfg.warmup_per_client =
      static_cast<std::size_t>(cli.get_int("warmup"));
  load_cfg.seed = seed;

  std::vector<std::size_t> workers_sweep, batch_sweep;
  for (const std::string& tok : util::split(cli.get("workers"), ',')) {
    workers_sweep.push_back(static_cast<std::size_t>(std::stoul(tok)));
  }
  for (const std::string& tok : util::split(cli.get("batch-max"), ',')) {
    batch_sweep.push_back(static_cast<std::size_t>(std::stoul(tok)));
  }
  std::vector<nn::InferenceDType> dtype_sweep;
  for (const std::string& tok : util::split(cli.get("dtype"), ',')) {
    dtype_sweep.push_back(nn::parse_inference_dtype(util::trim(tok)));
  }

  util::Table table({"dtype", "workers", "batch_max", "req/s", "p50 ms",
                     "p95 ms", "p99 ms", "occupancy", "heap allocs"});
  util::Json runs = util::Json::array();
  int errors = 0;
  for (nn::InferenceDType dtype : dtype_sweep) {
    for (std::size_t workers : workers_sweep) {
      for (std::size_t batch_max : batch_sweep) {
        serve::ServerConfig server_cfg;
        server_cfg.batch_max = batch_max;
        server_cfg.deadline_us =
            static_cast<std::uint64_t>(cli.get_int("deadline-us"));
        server_cfg.workers = workers;
        server_cfg.seed = seed;
        server_cfg.dtype = dtype;

        serve::BatchServer server(space, arch, server_cfg);
        const serve::LoadGenReport report = serve::run_load(server, load_cfg);
        server.shutdown();

        errors += static_cast<int>(report.errors);
        table.add_row({nn::inference_dtype_name(dtype),
                       util::format("%zu", workers),
                       util::format("%zu", batch_max),
                       util::format("%.1f", report.throughput_rps),
                       util::format("%.3f", report.latency_p50_ms),
                       util::format("%.3f", report.latency_p95_ms),
                       util::format("%.3f", report.latency_p99_ms),
                       util::format("%.2f", report.batch_occupancy_mean),
                       util::format("%.0f", report.pool_heap_allocs)});
        util::Json run = report.to_json();
        run["dtype"] = std::string(nn::inference_dtype_name(dtype));
        runs.push_back(std::move(run));
      }
    }
  }
  std::fputs(table.render().c_str(), stdout);

  util::Json doc = util::Json::object();
  doc["schema"] = "hsconas.serving.v1";
  doc["arch"] = arch.to_string(space);
  doc["runs"] = std::move(runs);
  const std::string out = cli.get("out");
  doc.save(out);
  std::printf("serving benchmark written to %s\n", out.c_str());
  return errors == 0 ? 0 : 1;
}
