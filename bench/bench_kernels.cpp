// Micro-benchmarks (google-benchmark) for the compute substrate: GEMM,
// im2col convolutions (fwd/bwd), choice blocks, one supernet training step
// and the latency model's prediction path. These guard against performance
// regressions in the kernels everything else sits on.
//
// Pass `--json <path>` (in addition to the usual --benchmark_* flags) to
// also dump a machine-readable summary for the perf trajectory tooling:
// {"results": [{"op", "shape", "ns_per_iter", "gflops"}, ...],
//  "metrics": <obs metrics snapshot>}. The snapshot carries the kernel
// entry counters (GEMM/im2col calls, accumulated FLOPs) and the workspace
// high-water mark accumulated over the benchmark session, so a saved run
// records not just how fast the kernels were but how often each path ran.
//
// Pass `--threads N` to size the global ThreadPool for the whole session
// (recorded in the JSON as "threads"); BM_GemmThreads additionally sweeps
// 1/2/4/8 workers in-process via ThreadPool::configure_global to expose
// the macro-kernel's scaling curve in a single run.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/latency_model.h"
#include "core/supernet.h"
#include "core/trainer.h"
#include "hwsim/registry.h"
#include "nn/activation.h"
#include "nn/blocks.h"
#include "nn/conv2d.h"
#include "nn/fused_conv.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "tensor/gemm.h"
#include "tensor/gemm_i8.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace {

using namespace hsconas;
using tensor::Tensor;

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  const Tensor a = Tensor::uniform({static_cast<long>(n), static_cast<long>(n)}, -1, 1, rng);
  const Tensor b = Tensor::uniform({static_cast<long>(n), static_cast<long>(n)}, -1, 1, rng);
  Tensor c({static_cast<long>(n), static_cast<long>(n)});
  for (auto _ : state) {
    tensor::gemm(n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * static_cast<long>(n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// The quantized twin of BM_Gemm at the same square sizes: int8×uint8 →
// int32 with the requantize epilogue folded into the C writeback — the
// exact kernel the int8 inference path runs. The (op, shape) keys mirror
// BM_Gemm so the ledger's dtype column prices the fp32 → int8 step
// directly (target >= 1.5x; see docs/QUANTIZATION.md).
void BM_GemmInt8(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<std::int8_t> a(n * n);
  std::vector<std::uint8_t> b(n * n);
  for (auto& v : a) v = static_cast<std::int8_t>(rng.randint(-127, 127));
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.randint(0, 255));
  std::vector<float> scales(n, 0.02f);
  std::vector<std::int32_t> bias(n, 0);
  tensor::QuantEpilogue ep;
  ep.scale = scales.data();
  ep.acc_bias = bias.data();
  Tensor c({static_cast<long>(n), static_cast<long>(n)});
  for (auto _ : state) {
    tensor::gemm_i8_requant(n, n, n, a.data(), b.data(), c.data(), ep);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 *
                          static_cast<long>(n * n * n));
}
BENCHMARK(BM_GemmInt8)->Arg(64)->Arg(128)->Arg(256);

// Same kernel, explicit worker-count sweep: range(0) is the square size,
// range(1) the pool width. The global pool is resized for the duration of
// the run and restored afterwards so the remaining benchmarks keep the
// session-level --threads setting.
void BM_GemmThreads(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const std::size_t prev = util::ThreadPool::global().size();
  util::ThreadPool::configure_global(threads);
  util::Rng rng(1);
  const Tensor a = Tensor::uniform({static_cast<long>(n), static_cast<long>(n)}, -1, 1, rng);
  const Tensor b = Tensor::uniform({static_cast<long>(n), static_cast<long>(n)}, -1, 1, rng);
  Tensor c({static_cast<long>(n), static_cast<long>(n)});
  for (auto _ : state) {
    tensor::gemm(n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * static_cast<long>(n * n * n));
  util::ThreadPool::configure_global(prev);
}
BENCHMARK(BM_GemmThreads)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({256, 8});

void BM_ConvForward(benchmark::State& state) {
  util::Rng rng(2);
  nn::Conv2d conv(16, 32, 3, 1, 1, 1, false, rng);
  const Tensor x = Tensor::uniform({4, 16, 16, 16}, -1, 1, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ConvForward);

void BM_ConvBackward(benchmark::State& state) {
  util::Rng rng(3);
  nn::Conv2d conv(16, 32, 3, 1, 1, 1, false, rng);
  const Tensor x = Tensor::uniform({4, 16, 16, 16}, -1, 1, rng);
  const Tensor y = conv.forward(x);
  const Tensor dy = Tensor::uniform(y.shape(), -1, 1, rng);
  for (auto _ : state) {
    Tensor dx = conv.backward(dy);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_ConvBackward);

// conv → BN → ReLU priced as three composed eval-mode module passes —
// the pre-fusion baseline for BM_ConvBnReluFused below.
void BM_ConvBnReluUnfused(benchmark::State& state) {
  util::Rng rng(2);
  nn::Conv2d conv(16, 32, 3, 1, 1, 1, false, rng);
  nn::BatchNorm2d bn(32);
  nn::ReLU relu;
  conv.set_training(false);
  bn.set_training(false);
  relu.set_training(false);
  const Tensor x = Tensor::uniform({4, 16, 16, 16}, -1, 1, rng);
  for (auto _ : state) {
    Tensor y = relu.forward(bn.forward(conv.forward(x)));
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ConvBnReluUnfused);

// Same computation, bias/BN/ReLU folded into the GEMM writeback epilogue.
void BM_ConvBnReluFused(benchmark::State& state) {
  util::Rng rng(2);
  nn::Conv2d conv(16, 32, 3, 1, 1, 1, false, rng);
  nn::BatchNorm2d bn(32);
  conv.set_training(false);
  bn.set_training(false);
  const Tensor x = Tensor::uniform({4, 16, 16, 16}, -1, 1, rng);
  for (auto _ : state) {
    Tensor y = nn::fused_conv_bn_act(conv, bn, tensor::EpilogueAct::kReLU, x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ConvBnReluFused);

void BM_DepthwiseConvForward(benchmark::State& state) {
  util::Rng rng(4);
  nn::Conv2d conv(32, 32, 5, 1, 2, 32, false, rng);
  const Tensor x = Tensor::uniform({4, 32, 16, 16}, -1, 1, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_DepthwiseConvForward);

void BM_ChoiceBlockForward(benchmark::State& state) {
  util::Rng rng(5);
  const auto kind = static_cast<nn::BlockKind>(state.range(0));
  nn::ShuffleChoiceBlock block(kind, 32, 32, 1, rng);
  const Tensor x = Tensor::uniform({4, 32, 12, 12}, -1, 1, rng);
  for (auto _ : state) {
    Tensor y = block.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ChoiceBlockForward)->Arg(0)->Arg(2)->Arg(3)->Arg(4);

void BM_SupernetTrainStep(benchmark::State& state) {
  const core::SearchSpace space(core::SearchSpaceConfig::proxy(10, 16, 1));
  core::Supernet net(space, 6);
  data::SyntheticConfig dc;
  dc.num_classes = 10;
  dc.train_size = 64;
  dc.val_size = 16;
  dc.image_size = 16;
  const data::SyntheticDataset dataset(dc);
  core::TrainConfig tc;
  tc.batch_size = 32;
  core::SupernetTrainer trainer(net, dataset, tc);
  data::DataLoader loader(dataset, 32, true, 1);
  const data::Batch batch = loader.batch(0);
  util::Rng rng(7);
  for (auto _ : state) {
    const core::Arch arch = core::Arch::random(space, rng);
    benchmark::DoNotOptimize(trainer.step(batch, arch, 0.05));
  }
}
BENCHMARK(BM_SupernetTrainStep);

void BM_LatencyModelBuild(benchmark::State& state) {
  const core::SearchSpace space(
      core::SearchSpaceConfig::imagenet_layout_a());
  const hwsim::DeviceSimulator device(hwsim::device_by_name("xavier"));
  for (auto _ : state) {
    core::LatencyModel model(space, device,
                             core::LatencyModel::Config{16, 20, 1, true});
    benchmark::DoNotOptimize(model.bias_ms());
  }
}
BENCHMARK(BM_LatencyModelBuild);

void BM_LatencyPredict(benchmark::State& state) {
  const core::SearchSpace space(
      core::SearchSpaceConfig::imagenet_layout_a());
  const hwsim::DeviceSimulator device(hwsim::device_by_name("xavier"));
  core::LatencyModel model(space, device,
                           core::LatencyModel::Config{16, 20, 1, true});
  util::Rng rng(8);
  const core::Arch arch = core::Arch::random(space, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_ms(arch));
  }
}
BENCHMARK(BM_LatencyPredict);

void BM_DeviceSimulatorNetwork(benchmark::State& state) {
  const core::SearchSpace space(
      core::SearchSpaceConfig::imagenet_layout_a());
  const hwsim::DeviceSimulator device(hwsim::device_by_name("gv100"));
  util::Rng rng(9);
  const auto net =
      core::lower_network(core::Arch::random(space, rng), space);
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.network_latency_ms(net, 32));
  }
}
BENCHMARK(BM_DeviceSimulatorNetwork);

// Console output plus a collected record per run, written as JSON after
// the session (see the file comment for the document shape).
class JsonDumpReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      const std::size_t slash = name.find('/');
      hsconas::util::Json rec = hsconas::util::Json::object();
      const std::string op =
          slash == std::string::npos ? name : name.substr(0, slash);
      rec["op"] = op;
      rec["shape"] = slash == std::string::npos ? "" : name.substr(slash + 1);
      // Benchmarks of quantized kernels carry the dtype axis of their key
      // (bench_compare matches on (op, shape, dtype); absent means f32).
      rec["dtype"] = std::string(
          op.find("Int8") != std::string::npos ? "int8" : "f32");
      rec["ns_per_iter"] = run.GetAdjustedRealTime();  // ns: the unit set below
      const auto items = run.counters.find("items_per_second");
      rec["gflops"] =
          items != run.counters.end() ? items->second.value / 1e9 : 0.0;
      records_.push_back(std::move(rec));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  void save(const std::string& path, std::size_t threads) const {
    hsconas::util::Json results = hsconas::util::Json::array();
    for (const auto& r : records_) results.push_back(r);
    hsconas::util::Json doc = hsconas::util::Json::object();
    doc["results"] = std::move(results);
    doc["threads"] = static_cast<double>(threads);
    doc["metrics"] =
        hsconas::obs::metrics_to_json(hsconas::obs::metrics_snapshot());
    doc.save(path);
  }

 private:
  std::vector<hsconas::util::Json> records_;
};

}  // namespace

int main(int argc, char** argv) {
  // Peel off our --json / --threads flags before google-benchmark sees the
  // arguments. --threads sizes the global pool for the whole session (the
  // in-process BM_GemmThreads sweep overrides it temporarily per run).
  std::string json_path;
  long threads = 0;
  std::vector<char*> args(argv, argv + argc);
  for (auto it = args.begin(); it != args.end();) {
    if (std::strcmp(*it, "--json") == 0 && it + 1 != args.end()) {
      json_path = *(it + 1);
      it = args.erase(it, it + 2);
    } else if (std::strcmp(*it, "--threads") == 0 && it + 1 != args.end()) {
      threads = std::strtol(*(it + 1), nullptr, 10);
      it = args.erase(it, it + 2);
    } else {
      ++it;
    }
  }
  if (threads > 0) {
    hsconas::util::ThreadPool::configure_global(
        static_cast<std::size_t>(threads));
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  JsonDumpReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) {
    try {
      reporter.save(json_path, hsconas::util::ThreadPool::global().size());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench_kernels: --json: %s\n", e.what());
      return 1;
    }
  }
  return 0;
}
