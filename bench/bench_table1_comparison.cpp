// Table I reproduction: HSCoNets (searched by the full HSCoNAS pipeline in
// surrogate mode at paper scale) vs the 11 published baselines, with
// latency on all three simulated devices and ImageNet error from the
// published values (baselines) / calibrated surrogate (HSCoNets).
//
// Output: the paper-style table with our measured values next to the
// paper's, plus table1.csv with the raw rows.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "baselines/zoo.h"
#include "core/accuracy_surrogate.h"
#include "core/lowering.h"
#include "core/pipeline.h"
#include "hwsim/registry.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using namespace hsconas;

struct Row {
  std::string name;
  std::string section;
  double top1 = 0, top5 = -1;
  double gpu = 0, cpu = 0, edge = 0;                   // ours
  double p_top1 = -1, p_top5 = -1;                     // paper
  double p_gpu = -1, p_cpu = -1, p_edge = -1;
  double gmacs = 0;
};

std::string fmt(double v, const char* f = "%.1f") {
  return v < 0 ? "-" : util::format(f, v);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(
      "Table I: comparison with state-of-the-art approaches "
      "(paper values in parentheses)");
  cli.add_option("generations", "20", "EA generations per search");
  cli.add_option("population", "50", "EA population size");
  cli.add_option("shrink-samples", "100", "N per subspace (Definition 1)");
  cli.add_option("seed", "7", "global seed");
  cli.add_option("csv", "table1.csv", "output CSV path");
  if (!cli.parse(argc, argv)) return 0;

  util::set_log_level(util::LogLevel::kWarn);

  // ---- device simulators ---------------------------------------------------
  struct Device {
    std::string name;
    hwsim::DeviceSimulator sim;
    int batch;
  };
  std::vector<Device> devices;
  for (const std::string& name : hwsim::device_names()) {
    const auto profile = hwsim::device_by_name(name);
    devices.push_back({name, hwsim::DeviceSimulator(profile),
                       profile.default_batch});
  }
  const auto measure_all = [&](const hwsim::NetworkDesc& net, Row& row) {
    row.gpu = devices[0].sim.network_latency_ms(net, devices[0].batch);
    row.cpu = devices[1].sim.network_latency_ms(net, devices[1].batch);
    row.edge = devices[2].sim.network_latency_ms(net, devices[2].batch);
  };

  std::vector<Row> rows;

  // ---- baselines -----------------------------------------------------------
  for (const auto& baseline : baselines::baseline_zoo()) {
    Row row;
    row.name = baseline.name;
    row.section = baseline.group == "manual"
                      ? "Manually-Designed Models"
                      : "State-of-the-art NAS Models";
    row.top1 = baseline.paper_top1_err;  // published ImageNet results
    row.top5 = baseline.paper_top5_err;
    row.p_top1 = baseline.paper_top1_err;
    row.p_top5 = baseline.paper_top5_err;
    row.p_gpu = baseline.paper_gpu_ms;
    row.p_cpu = baseline.paper_cpu_ms;
    row.p_edge = baseline.paper_edge_ms;
    row.gmacs = hwsim::network_macs(baseline.network) / 1e9;
    measure_all(baseline.network, row);
    rows.push_back(row);
  }

  // ---- HSCoNets: search per device × layout --------------------------------
  // Paper HSCoNet results for side-by-side comparison.
  const std::map<std::string, std::vector<double>> paper_hsconets = {
      {"HSCoNet-GPU-A", {25.1, 7.7, 9.0, 26.5, 43.4}},
      {"HSCoNet-CPU-A", {25.3, 7.6, 10.1, 22.8, 43.1}},
      {"HSCoNet-Edge-A", {25.7, 8.1, 9.9, 25.8, 34.9}},
      {"HSCoNet-GPU-B", {23.6, 6.9, 12.0, 31.6, 76.9}},
      {"HSCoNet-CPU-B", {23.5, 6.8, 13.4, 26.4, 69.1}},
      {"HSCoNet-Edge-B", {23.8, 6.9, 12.9, 31.8, 52.7}}};
  const std::map<std::string, std::string> device_tag = {
      {"gv100", "GPU"}, {"xeon6136", "CPU"}, {"xavier", "Edge"}};

  // The B-layout HSCoNets in Table I exceed the stated 9/24/34 ms
  // constraints on their own target devices (12.0/26.4/52.7 ms), so the
  // paper's B runs clearly used relaxed targets; we search layout B under
  // those measured operating points.
  const std::map<std::string, double> constraint_b = {
      {"gv100", 12.0}, {"xeon6136", 26.0}, {"xavier", 52.0}};

  for (const char layout : {'A', 'B'}) {
    for (const auto& device : devices) {
      core::PipelineConfig cfg;
      cfg.space = layout == 'A'
                      ? core::SearchSpaceConfig::imagenet_layout_a()
                      : core::SearchSpaceConfig::imagenet_layout_b();
      cfg.device = device.name;
      if (layout == 'B') cfg.constraint_ms = constraint_b.at(device.name);
      cfg.use_surrogate = true;
      cfg.evolution.generations = static_cast<int>(cli.get_int("generations"));
      cfg.evolution.population = static_cast<int>(cli.get_int("population"));
      cfg.shrink.samples_per_subspace =
          static_cast<int>(cli.get_int("shrink-samples"));
      cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed")) ^
                 (layout == 'A' ? 0xA : 0xB);
      core::Pipeline pipeline(cfg);
      const core::PipelineResult result = pipeline.run();

      Row row;
      row.name = util::format("HSCoNet-%s-%c",
                              device_tag.at(device.name).c_str(), layout);
      row.section = "Hardware-Aware Models Discovered by HSCoNAS (ours)";
      const core::AccuracySurrogate surrogate(pipeline.space());
      row.top1 = surrogate.top1_error(result.best_arch);
      row.top5 = core::AccuracySurrogate::top5_from_top1(row.top1);
      row.gmacs =
          core::arch_macs(result.best_arch, pipeline.space()) / 1e9;
      measure_all(core::lower_network(result.best_arch, pipeline.space()),
                  row);
      if (const auto it = paper_hsconets.find(row.name);
          it != paper_hsconets.end()) {
        row.p_top1 = it->second[0];
        row.p_top5 = it->second[1];
        row.p_gpu = it->second[2];
        row.p_cpu = it->second[3];
        row.p_edge = it->second[4];
      }
      rows.push_back(row);
      std::fprintf(stderr, "searched %s: T=%.0fms predicted=%.1fms\n",
                   row.name.c_str(), result.constraint_ms,
                   result.predicted_latency_ms);
    }
  }

  // ---- render ----------------------------------------------------------------
  util::Table table({"Model", "Top-1 (paper)", "Top-5 (paper)",
                     "GPU ms (paper)", "CPU ms (paper)", "Edge ms (paper)",
                     "GMacs"});
  std::string section;
  for (const Row& row : rows) {
    if (row.section != section) {
      section = row.section;
      table.add_section(section);
    }
    table.add_row({row.name,
                   fmt(row.top1) + " (" + fmt(row.p_top1) + ")",
                   fmt(row.top5) + " (" + fmt(row.p_top5) + ")",
                   fmt(row.gpu) + " (" + fmt(row.p_gpu) + ")",
                   fmt(row.cpu) + " (" + fmt(row.p_cpu) + ")",
                   fmt(row.edge) + " (" + fmt(row.p_edge) + ")",
                   util::format("%.2f", row.gmacs)});
  }
  std::printf("TABLE I: Comparisons with state-of-the-art approaches\n%s\n",
              table.render().c_str());

  util::CsvWriter csv(cli.get("csv"));
  csv.row(std::vector<std::string>{
      "model", "top1", "top5", "gpu_ms", "cpu_ms", "edge_ms", "gmacs",
      "paper_top1", "paper_top5", "paper_gpu_ms", "paper_cpu_ms",
      "paper_edge_ms"});
  for (const Row& row : rows) {
    csv.row(std::vector<std::string>{
        row.name, fmt(row.top1, "%.2f"), fmt(row.top5, "%.2f"),
        fmt(row.gpu, "%.2f"), fmt(row.cpu, "%.2f"), fmt(row.edge, "%.2f"),
        util::format("%.3f", row.gmacs), fmt(row.p_top1, "%.2f"),
        fmt(row.p_top5, "%.2f"), fmt(row.p_gpu, "%.2f"),
        fmt(row.p_cpu, "%.2f"), fmt(row.p_edge, "%.2f")});
  }
  std::printf("raw rows written to %s\n", cli.get("csv").c_str());
  return 0;
}
