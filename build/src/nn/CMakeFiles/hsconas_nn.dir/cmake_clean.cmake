file(REMOVE_RECURSE
  "CMakeFiles/hsconas_nn.dir/activation.cpp.o"
  "CMakeFiles/hsconas_nn.dir/activation.cpp.o.d"
  "CMakeFiles/hsconas_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/hsconas_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/hsconas_nn.dir/blocks.cpp.o"
  "CMakeFiles/hsconas_nn.dir/blocks.cpp.o.d"
  "CMakeFiles/hsconas_nn.dir/choice_block.cpp.o"
  "CMakeFiles/hsconas_nn.dir/choice_block.cpp.o.d"
  "CMakeFiles/hsconas_nn.dir/conv2d.cpp.o"
  "CMakeFiles/hsconas_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/hsconas_nn.dir/dropout.cpp.o"
  "CMakeFiles/hsconas_nn.dir/dropout.cpp.o.d"
  "CMakeFiles/hsconas_nn.dir/linear.cpp.o"
  "CMakeFiles/hsconas_nn.dir/linear.cpp.o.d"
  "CMakeFiles/hsconas_nn.dir/loss.cpp.o"
  "CMakeFiles/hsconas_nn.dir/loss.cpp.o.d"
  "CMakeFiles/hsconas_nn.dir/mask.cpp.o"
  "CMakeFiles/hsconas_nn.dir/mask.cpp.o.d"
  "CMakeFiles/hsconas_nn.dir/mbconv_block.cpp.o"
  "CMakeFiles/hsconas_nn.dir/mbconv_block.cpp.o.d"
  "CMakeFiles/hsconas_nn.dir/module.cpp.o"
  "CMakeFiles/hsconas_nn.dir/module.cpp.o.d"
  "CMakeFiles/hsconas_nn.dir/optimizer.cpp.o"
  "CMakeFiles/hsconas_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/hsconas_nn.dir/pooling.cpp.o"
  "CMakeFiles/hsconas_nn.dir/pooling.cpp.o.d"
  "CMakeFiles/hsconas_nn.dir/shuffle.cpp.o"
  "CMakeFiles/hsconas_nn.dir/shuffle.cpp.o.d"
  "libhsconas_nn.a"
  "libhsconas_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsconas_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
