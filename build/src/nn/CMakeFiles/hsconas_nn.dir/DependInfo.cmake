
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cpp" "src/nn/CMakeFiles/hsconas_nn.dir/activation.cpp.o" "gcc" "src/nn/CMakeFiles/hsconas_nn.dir/activation.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/nn/CMakeFiles/hsconas_nn.dir/batchnorm.cpp.o" "gcc" "src/nn/CMakeFiles/hsconas_nn.dir/batchnorm.cpp.o.d"
  "/root/repo/src/nn/blocks.cpp" "src/nn/CMakeFiles/hsconas_nn.dir/blocks.cpp.o" "gcc" "src/nn/CMakeFiles/hsconas_nn.dir/blocks.cpp.o.d"
  "/root/repo/src/nn/choice_block.cpp" "src/nn/CMakeFiles/hsconas_nn.dir/choice_block.cpp.o" "gcc" "src/nn/CMakeFiles/hsconas_nn.dir/choice_block.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/nn/CMakeFiles/hsconas_nn.dir/conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/hsconas_nn.dir/conv2d.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/nn/CMakeFiles/hsconas_nn.dir/dropout.cpp.o" "gcc" "src/nn/CMakeFiles/hsconas_nn.dir/dropout.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/hsconas_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/hsconas_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/hsconas_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/hsconas_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/mask.cpp" "src/nn/CMakeFiles/hsconas_nn.dir/mask.cpp.o" "gcc" "src/nn/CMakeFiles/hsconas_nn.dir/mask.cpp.o.d"
  "/root/repo/src/nn/mbconv_block.cpp" "src/nn/CMakeFiles/hsconas_nn.dir/mbconv_block.cpp.o" "gcc" "src/nn/CMakeFiles/hsconas_nn.dir/mbconv_block.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/nn/CMakeFiles/hsconas_nn.dir/module.cpp.o" "gcc" "src/nn/CMakeFiles/hsconas_nn.dir/module.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/hsconas_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/hsconas_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "src/nn/CMakeFiles/hsconas_nn.dir/pooling.cpp.o" "gcc" "src/nn/CMakeFiles/hsconas_nn.dir/pooling.cpp.o.d"
  "/root/repo/src/nn/shuffle.cpp" "src/nn/CMakeFiles/hsconas_nn.dir/shuffle.cpp.o" "gcc" "src/nn/CMakeFiles/hsconas_nn.dir/shuffle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/hsconas_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hsconas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
