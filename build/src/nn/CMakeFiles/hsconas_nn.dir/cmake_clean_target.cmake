file(REMOVE_RECURSE
  "libhsconas_nn.a"
)
