# Empty compiler generated dependencies file for hsconas_nn.
# This may be replaced when dependencies are built.
