# Empty dependencies file for hsconas_eval.
# This may be replaced when dependencies are built.
