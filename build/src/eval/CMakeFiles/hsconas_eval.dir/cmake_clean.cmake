file(REMOVE_RECURSE
  "CMakeFiles/hsconas_eval.dir/latency_eval.cpp.o"
  "CMakeFiles/hsconas_eval.dir/latency_eval.cpp.o.d"
  "libhsconas_eval.a"
  "libhsconas_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsconas_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
