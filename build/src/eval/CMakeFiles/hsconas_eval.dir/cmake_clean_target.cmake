file(REMOVE_RECURSE
  "libhsconas_eval.a"
)
