file(REMOVE_RECURSE
  "libhsconas_core.a"
)
