
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accuracy_surrogate.cpp" "src/core/CMakeFiles/hsconas_core.dir/accuracy_surrogate.cpp.o" "gcc" "src/core/CMakeFiles/hsconas_core.dir/accuracy_surrogate.cpp.o.d"
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/hsconas_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/hsconas_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/arch.cpp" "src/core/CMakeFiles/hsconas_core.dir/arch.cpp.o" "gcc" "src/core/CMakeFiles/hsconas_core.dir/arch.cpp.o.d"
  "/root/repo/src/core/checkpoint.cpp" "src/core/CMakeFiles/hsconas_core.dir/checkpoint.cpp.o" "gcc" "src/core/CMakeFiles/hsconas_core.dir/checkpoint.cpp.o.d"
  "/root/repo/src/core/energy_model.cpp" "src/core/CMakeFiles/hsconas_core.dir/energy_model.cpp.o" "gcc" "src/core/CMakeFiles/hsconas_core.dir/energy_model.cpp.o.d"
  "/root/repo/src/core/evolution.cpp" "src/core/CMakeFiles/hsconas_core.dir/evolution.cpp.o" "gcc" "src/core/CMakeFiles/hsconas_core.dir/evolution.cpp.o.d"
  "/root/repo/src/core/latency_model.cpp" "src/core/CMakeFiles/hsconas_core.dir/latency_model.cpp.o" "gcc" "src/core/CMakeFiles/hsconas_core.dir/latency_model.cpp.o.d"
  "/root/repo/src/core/latency_regression.cpp" "src/core/CMakeFiles/hsconas_core.dir/latency_regression.cpp.o" "gcc" "src/core/CMakeFiles/hsconas_core.dir/latency_regression.cpp.o.d"
  "/root/repo/src/core/lowering.cpp" "src/core/CMakeFiles/hsconas_core.dir/lowering.cpp.o" "gcc" "src/core/CMakeFiles/hsconas_core.dir/lowering.cpp.o.d"
  "/root/repo/src/core/pareto.cpp" "src/core/CMakeFiles/hsconas_core.dir/pareto.cpp.o" "gcc" "src/core/CMakeFiles/hsconas_core.dir/pareto.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/hsconas_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/hsconas_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/search_space.cpp" "src/core/CMakeFiles/hsconas_core.dir/search_space.cpp.o" "gcc" "src/core/CMakeFiles/hsconas_core.dir/search_space.cpp.o.d"
  "/root/repo/src/core/searchers.cpp" "src/core/CMakeFiles/hsconas_core.dir/searchers.cpp.o" "gcc" "src/core/CMakeFiles/hsconas_core.dir/searchers.cpp.o.d"
  "/root/repo/src/core/space_shrinking.cpp" "src/core/CMakeFiles/hsconas_core.dir/space_shrinking.cpp.o" "gcc" "src/core/CMakeFiles/hsconas_core.dir/space_shrinking.cpp.o.d"
  "/root/repo/src/core/supernet.cpp" "src/core/CMakeFiles/hsconas_core.dir/supernet.cpp.o" "gcc" "src/core/CMakeFiles/hsconas_core.dir/supernet.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/core/CMakeFiles/hsconas_core.dir/trainer.cpp.o" "gcc" "src/core/CMakeFiles/hsconas_core.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/hsconas_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/hwsim/CMakeFiles/hsconas_hwsim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hsconas_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hsconas_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hsconas_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
