# Empty dependencies file for hsconas_core.
# This may be replaced when dependencies are built.
