file(REMOVE_RECURSE
  "libhsconas_tensor.a"
)
