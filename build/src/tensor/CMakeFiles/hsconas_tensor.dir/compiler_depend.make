# Empty compiler generated dependencies file for hsconas_tensor.
# This may be replaced when dependencies are built.
