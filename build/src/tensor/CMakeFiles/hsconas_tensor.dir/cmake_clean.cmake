file(REMOVE_RECURSE
  "CMakeFiles/hsconas_tensor.dir/gemm.cpp.o"
  "CMakeFiles/hsconas_tensor.dir/gemm.cpp.o.d"
  "CMakeFiles/hsconas_tensor.dir/im2col.cpp.o"
  "CMakeFiles/hsconas_tensor.dir/im2col.cpp.o.d"
  "CMakeFiles/hsconas_tensor.dir/tensor.cpp.o"
  "CMakeFiles/hsconas_tensor.dir/tensor.cpp.o.d"
  "libhsconas_tensor.a"
  "libhsconas_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsconas_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
