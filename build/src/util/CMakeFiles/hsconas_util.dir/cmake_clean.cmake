file(REMOVE_RECURSE
  "CMakeFiles/hsconas_util.dir/cli.cpp.o"
  "CMakeFiles/hsconas_util.dir/cli.cpp.o.d"
  "CMakeFiles/hsconas_util.dir/csv.cpp.o"
  "CMakeFiles/hsconas_util.dir/csv.cpp.o.d"
  "CMakeFiles/hsconas_util.dir/json.cpp.o"
  "CMakeFiles/hsconas_util.dir/json.cpp.o.d"
  "CMakeFiles/hsconas_util.dir/logging.cpp.o"
  "CMakeFiles/hsconas_util.dir/logging.cpp.o.d"
  "CMakeFiles/hsconas_util.dir/rng.cpp.o"
  "CMakeFiles/hsconas_util.dir/rng.cpp.o.d"
  "CMakeFiles/hsconas_util.dir/stats.cpp.o"
  "CMakeFiles/hsconas_util.dir/stats.cpp.o.d"
  "CMakeFiles/hsconas_util.dir/string_util.cpp.o"
  "CMakeFiles/hsconas_util.dir/string_util.cpp.o.d"
  "CMakeFiles/hsconas_util.dir/table.cpp.o"
  "CMakeFiles/hsconas_util.dir/table.cpp.o.d"
  "CMakeFiles/hsconas_util.dir/thread_pool.cpp.o"
  "CMakeFiles/hsconas_util.dir/thread_pool.cpp.o.d"
  "libhsconas_util.a"
  "libhsconas_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsconas_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
