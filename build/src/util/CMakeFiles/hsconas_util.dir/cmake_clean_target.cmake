file(REMOVE_RECURSE
  "libhsconas_util.a"
)
