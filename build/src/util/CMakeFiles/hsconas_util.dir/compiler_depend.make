# Empty compiler generated dependencies file for hsconas_util.
# This may be replaced when dependencies are built.
