file(REMOVE_RECURSE
  "libhsconas_data.a"
)
