# Empty compiler generated dependencies file for hsconas_data.
# This may be replaced when dependencies are built.
