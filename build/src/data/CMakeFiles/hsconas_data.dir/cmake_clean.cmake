file(REMOVE_RECURSE
  "CMakeFiles/hsconas_data.dir/augment.cpp.o"
  "CMakeFiles/hsconas_data.dir/augment.cpp.o.d"
  "CMakeFiles/hsconas_data.dir/loader.cpp.o"
  "CMakeFiles/hsconas_data.dir/loader.cpp.o.d"
  "CMakeFiles/hsconas_data.dir/synthetic.cpp.o"
  "CMakeFiles/hsconas_data.dir/synthetic.cpp.o.d"
  "libhsconas_data.a"
  "libhsconas_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsconas_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
