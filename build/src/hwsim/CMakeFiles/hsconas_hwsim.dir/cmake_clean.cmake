file(REMOVE_RECURSE
  "CMakeFiles/hsconas_hwsim.dir/device.cpp.o"
  "CMakeFiles/hsconas_hwsim.dir/device.cpp.o.d"
  "CMakeFiles/hsconas_hwsim.dir/energy.cpp.o"
  "CMakeFiles/hsconas_hwsim.dir/energy.cpp.o.d"
  "CMakeFiles/hsconas_hwsim.dir/op_descriptor.cpp.o"
  "CMakeFiles/hsconas_hwsim.dir/op_descriptor.cpp.o.d"
  "CMakeFiles/hsconas_hwsim.dir/registry.cpp.o"
  "CMakeFiles/hsconas_hwsim.dir/registry.cpp.o.d"
  "libhsconas_hwsim.a"
  "libhsconas_hwsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsconas_hwsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
