file(REMOVE_RECURSE
  "libhsconas_hwsim.a"
)
