# Empty dependencies file for hsconas_hwsim.
# This may be replaced when dependencies are built.
