
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hwsim/device.cpp" "src/hwsim/CMakeFiles/hsconas_hwsim.dir/device.cpp.o" "gcc" "src/hwsim/CMakeFiles/hsconas_hwsim.dir/device.cpp.o.d"
  "/root/repo/src/hwsim/energy.cpp" "src/hwsim/CMakeFiles/hsconas_hwsim.dir/energy.cpp.o" "gcc" "src/hwsim/CMakeFiles/hsconas_hwsim.dir/energy.cpp.o.d"
  "/root/repo/src/hwsim/op_descriptor.cpp" "src/hwsim/CMakeFiles/hsconas_hwsim.dir/op_descriptor.cpp.o" "gcc" "src/hwsim/CMakeFiles/hsconas_hwsim.dir/op_descriptor.cpp.o.d"
  "/root/repo/src/hwsim/registry.cpp" "src/hwsim/CMakeFiles/hsconas_hwsim.dir/registry.cpp.o" "gcc" "src/hwsim/CMakeFiles/hsconas_hwsim.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hsconas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
