# Empty compiler generated dependencies file for hsconas_baselines.
# This may be replaced when dependencies are built.
