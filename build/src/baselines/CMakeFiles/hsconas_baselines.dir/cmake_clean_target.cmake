file(REMOVE_RECURSE
  "libhsconas_baselines.a"
)
