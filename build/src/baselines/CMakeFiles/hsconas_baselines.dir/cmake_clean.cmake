file(REMOVE_RECURSE
  "CMakeFiles/hsconas_baselines.dir/mbconv.cpp.o"
  "CMakeFiles/hsconas_baselines.dir/mbconv.cpp.o.d"
  "CMakeFiles/hsconas_baselines.dir/zoo.cpp.o"
  "CMakeFiles/hsconas_baselines.dir/zoo.cpp.o.d"
  "libhsconas_baselines.a"
  "libhsconas_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsconas_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
