# Empty dependencies file for bench_proxy_comparison.
# This may be replaced when dependencies are built.
