file(REMOVE_RECURSE
  "CMakeFiles/bench_proxy_comparison.dir/bench_proxy_comparison.cpp.o"
  "CMakeFiles/bench_proxy_comparison.dir/bench_proxy_comparison.cpp.o.d"
  "bench_proxy_comparison"
  "bench_proxy_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_proxy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
