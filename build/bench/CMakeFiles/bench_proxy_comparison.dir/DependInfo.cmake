
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_proxy_comparison.cpp" "bench/CMakeFiles/bench_proxy_comparison.dir/bench_proxy_comparison.cpp.o" "gcc" "bench/CMakeFiles/bench_proxy_comparison.dir/bench_proxy_comparison.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/hsconas_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/hsconas_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hsconas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hsconas_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hsconas_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hsconas_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/hwsim/CMakeFiles/hsconas_hwsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hsconas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
