# Empty compiler generated dependencies file for bench_fig2_flops_vs_latency.
# This may be replaced when dependencies are built.
