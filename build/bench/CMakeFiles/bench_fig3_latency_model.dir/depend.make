# Empty dependencies file for bench_fig3_latency_model.
# This may be replaced when dependencies are built.
