# Empty dependencies file for bench_fig4_channel_scaling.
# This may be replaced when dependencies are built.
