# Empty compiler generated dependencies file for bench_fig5_space_shrinking.
# This may be replaced when dependencies are built.
