file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_space_shrinking.dir/bench_fig5_space_shrinking.cpp.o"
  "CMakeFiles/bench_fig5_space_shrinking.dir/bench_fig5_space_shrinking.cpp.o.d"
  "bench_fig5_space_shrinking"
  "bench_fig5_space_shrinking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_space_shrinking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
