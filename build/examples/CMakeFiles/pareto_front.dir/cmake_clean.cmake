file(REMOVE_RECURSE
  "CMakeFiles/pareto_front.dir/pareto_front.cpp.o"
  "CMakeFiles/pareto_front.dir/pareto_front.cpp.o.d"
  "pareto_front"
  "pareto_front.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pareto_front.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
