file(REMOVE_RECURSE
  "CMakeFiles/test_hwsim.dir/hwsim/device_sweep_test.cpp.o"
  "CMakeFiles/test_hwsim.dir/hwsim/device_sweep_test.cpp.o.d"
  "CMakeFiles/test_hwsim.dir/hwsim/energy_test.cpp.o"
  "CMakeFiles/test_hwsim.dir/hwsim/energy_test.cpp.o.d"
  "CMakeFiles/test_hwsim.dir/hwsim/hwsim_test.cpp.o"
  "CMakeFiles/test_hwsim.dir/hwsim/hwsim_test.cpp.o.d"
  "test_hwsim"
  "test_hwsim.pdb"
  "test_hwsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hwsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
