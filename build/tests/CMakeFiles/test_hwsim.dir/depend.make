# Empty dependencies file for test_hwsim.
# This may be replaced when dependencies are built.
