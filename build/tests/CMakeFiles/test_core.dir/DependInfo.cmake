
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/analysis_test.cpp" "tests/CMakeFiles/test_core.dir/core/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/analysis_test.cpp.o.d"
  "/root/repo/tests/core/arch_test.cpp" "tests/CMakeFiles/test_core.dir/core/arch_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/arch_test.cpp.o.d"
  "/root/repo/tests/core/custom_device_pipeline_test.cpp" "tests/CMakeFiles/test_core.dir/core/custom_device_pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/custom_device_pipeline_test.cpp.o.d"
  "/root/repo/tests/core/extensions_test.cpp" "tests/CMakeFiles/test_core.dir/core/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/extensions_test.cpp.o.d"
  "/root/repo/tests/core/family_device_sweep_test.cpp" "tests/CMakeFiles/test_core.dir/core/family_device_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/family_device_sweep_test.cpp.o.d"
  "/root/repo/tests/core/inheritance_test.cpp" "tests/CMakeFiles/test_core.dir/core/inheritance_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/inheritance_test.cpp.o.d"
  "/root/repo/tests/core/latency_model_test.cpp" "tests/CMakeFiles/test_core.dir/core/latency_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/latency_model_test.cpp.o.d"
  "/root/repo/tests/core/lowering_test.cpp" "tests/CMakeFiles/test_core.dir/core/lowering_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/lowering_test.cpp.o.d"
  "/root/repo/tests/core/mbconv_space_test.cpp" "tests/CMakeFiles/test_core.dir/core/mbconv_space_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/mbconv_space_test.cpp.o.d"
  "/root/repo/tests/core/search_space_test.cpp" "tests/CMakeFiles/test_core.dir/core/search_space_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/search_space_test.cpp.o.d"
  "/root/repo/tests/core/search_test.cpp" "tests/CMakeFiles/test_core.dir/core/search_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/search_test.cpp.o.d"
  "/root/repo/tests/core/searchers_test.cpp" "tests/CMakeFiles/test_core.dir/core/searchers_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/searchers_test.cpp.o.d"
  "/root/repo/tests/core/supernet_test.cpp" "tests/CMakeFiles/test_core.dir/core/supernet_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/supernet_test.cpp.o.d"
  "/root/repo/tests/core/surrogate_objective_test.cpp" "tests/CMakeFiles/test_core.dir/core/surrogate_objective_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/surrogate_objective_test.cpp.o.d"
  "/root/repo/tests/core/trainer_schedule_test.cpp" "tests/CMakeFiles/test_core.dir/core/trainer_schedule_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/trainer_schedule_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/hsconas_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/hsconas_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hsconas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hsconas_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hsconas_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hsconas_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/hwsim/CMakeFiles/hsconas_hwsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hsconas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
