file(REMOVE_RECURSE
  "CMakeFiles/hsconas_cli.dir/hsconas_cli.cpp.o"
  "CMakeFiles/hsconas_cli.dir/hsconas_cli.cpp.o.d"
  "hsconas"
  "hsconas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsconas_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
