# Empty dependencies file for hsconas_cli.
# This may be replaced when dependencies are built.
