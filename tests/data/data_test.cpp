#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/loader.h"
#include "data/synthetic.h"
#include "util/error.h"
#include "util/stats.h"

namespace hsconas::data {
namespace {

SyntheticConfig small_config() {
  SyntheticConfig cfg;
  cfg.num_classes = 4;
  cfg.train_size = 64;
  cfg.val_size = 32;
  cfg.image_size = 8;
  cfg.seed = 9;
  return cfg;
}

TEST(SyntheticDataset, SizesAndShapes) {
  const SyntheticDataset ds(small_config());
  EXPECT_EQ(ds.train_size(), 64u);
  EXPECT_EQ(ds.val_size(), 32u);
  const auto img = ds.train_image(0);
  EXPECT_EQ(img.shape(), (std::vector<long>{3, 8, 8}));
}

TEST(SyntheticDataset, LabelsCoverAllClasses) {
  const SyntheticDataset ds(small_config());
  std::set<int> labels;
  for (std::size_t i = 0; i < ds.train_size(); ++i) {
    labels.insert(ds.train_label(i));
  }
  EXPECT_EQ(labels.size(), 4u);
  EXPECT_EQ(*labels.begin(), 0);
  EXPECT_EQ(*labels.rbegin(), 3);
}

TEST(SyntheticDataset, DeterministicForSameSeed) {
  const SyntheticDataset a(small_config());
  const SyntheticDataset b(small_config());
  const auto ia = a.train_image(5), ib = b.train_image(5);
  for (long i = 0; i < ia.numel(); ++i) {
    EXPECT_EQ(ia.flat()[static_cast<std::size_t>(i)],
              ib.flat()[static_cast<std::size_t>(i)]);
  }
}

TEST(SyntheticDataset, DifferentSeedsDiffer) {
  auto cfg = small_config();
  const SyntheticDataset a(cfg);
  cfg.seed = 10;
  const SyntheticDataset b(cfg);
  const auto ia = a.train_image(0), ib = b.train_image(0);
  double diff = 0.0;
  for (long i = 0; i < ia.numel(); ++i) {
    diff += std::abs(ia.flat()[static_cast<std::size_t>(i)] -
                     ib.flat()[static_cast<std::size_t>(i)]);
  }
  EXPECT_GT(diff, 1.0);
}

TEST(SyntheticDataset, PixelsBoundedByTanh) {
  const SyntheticDataset ds(small_config());
  for (std::size_t i = 0; i < 8; ++i) {
    // Bind the tensor: flat() is a span into it, so iterating a temporary's
    // span would dangle.
    const tensor::Tensor img = ds.train_image(i);
    for (float v : img.flat()) {
      EXPECT_GE(v, -1.0f);
      EXPECT_LE(v, 1.0f);
    }
  }
}

TEST(SyntheticDataset, ClassesAreStatisticallySeparable) {
  // Same-class images must correlate more with each other than with other
  // classes' images — the property that makes the task learnable.
  auto cfg = small_config();
  cfg.pixel_noise = 0.05;
  const SyntheticDataset ds(cfg);
  const auto correlation = [](const tensor::Tensor& a,
                              const tensor::Tensor& b) {
    std::vector<double> va(a.flat().begin(), a.flat().end());
    std::vector<double> vb(b.flat().begin(), b.flat().end());
    return util::pearson(va, vb);
  };
  // Images i and i+num_classes share a class (labels cycle round-robin).
  double same = 0.0, cross = 0.0;
  int n = 0;
  for (std::size_t i = 0; i < 8; ++i, ++n) {
    same += correlation(ds.train_image(i), ds.train_image(i + 4));
    cross += correlation(ds.train_image(i), ds.train_image(i + 1));
  }
  EXPECT_GT(same / n, cross / n + 0.2);
}

TEST(SyntheticDataset, StackBatches) {
  const SyntheticDataset ds(small_config());
  const auto batch = ds.stack_train({0, 3, 5});
  EXPECT_EQ(batch.shape(), (std::vector<long>{3, 3, 8, 8}));
  const auto img = ds.train_image(3);
  for (long i = 0; i < img.numel(); ++i) {
    EXPECT_EQ(batch.flat()[static_cast<std::size_t>(img.numel() + i)],
              img.flat()[static_cast<std::size_t>(i)]);
  }
  const auto labels = ds.labels_train({0, 3, 5});
  EXPECT_EQ(labels, (std::vector<int>{0, 3, 1}));
}

TEST(SyntheticDataset, RejectsDegenerateConfig) {
  SyntheticConfig cfg;
  cfg.num_classes = 1;
  EXPECT_THROW(SyntheticDataset{cfg}, InvalidArgument);
  cfg = SyntheticConfig{};
  cfg.image_size = 2;
  EXPECT_THROW(SyntheticDataset{cfg}, InvalidArgument);
}

TEST(Augment, FlipIsInvolution) {
  util::Rng rng(1);
  tensor::Tensor img = tensor::Tensor::uniform({3, 6, 6}, -1, 1, rng);
  tensor::Tensor copy = img;
  AugmentConfig cfg;
  cfg.horizontal_flip = true;
  cfg.max_shift = 0;
  cfg.brightness_jitter = 0.0;
  // Force two flips by augmenting until two flips happened: instead test
  // the primitive via double application with a deterministic rng state.
  util::Rng flip_rng(0);
  // Find a seed state where bernoulli(0.5) is true twice in a row.
  augment_image(img, cfg, flip_rng);
  augment_image(img, cfg, flip_rng);
  augment_image(img, cfg, flip_rng);
  augment_image(img, cfg, flip_rng);
  // After an even number of flips total, image equals the original.
  int flips = 0;
  util::Rng replay(0);
  for (int i = 0; i < 4; ++i) flips += replay.bernoulli(0.5);
  if (flips % 2 == 0) {
    for (long i = 0; i < img.numel(); ++i) {
      EXPECT_EQ(img.flat()[static_cast<std::size_t>(i)],
                copy.flat()[static_cast<std::size_t>(i)]);
    }
  } else {
    SUCCEED();  // odd flip count: nothing to assert structurally
  }
}

TEST(Augment, ShiftPadsWithZeros) {
  tensor::Tensor img = tensor::Tensor::ones({1, 4, 4});
  AugmentConfig cfg;
  cfg.horizontal_flip = false;
  cfg.max_shift = 2;
  cfg.brightness_jitter = 0.0;
  // Run until some shift happens; zero rows/cols must appear at an edge.
  util::Rng rng(3);
  bool saw_zero = false;
  for (int attempt = 0; attempt < 10 && !saw_zero; ++attempt) {
    tensor::Tensor work = img;
    augment_image(work, cfg, rng);
    for (float v : work.flat()) {
      if (v == 0.0f) saw_zero = true;
    }
  }
  EXPECT_TRUE(saw_zero);
}

TEST(Augment, BrightnessScalesUniformly) {
  tensor::Tensor img = tensor::Tensor::full({1, 2, 2}, 0.5f);
  AugmentConfig cfg;
  cfg.horizontal_flip = false;
  cfg.max_shift = 0;
  cfg.brightness_jitter = 0.2;
  util::Rng rng(7);
  augment_image(img, cfg, rng);
  const float v = img.flat()[0];
  EXPECT_GE(v, 0.5f * 0.8f);
  EXPECT_LE(v, 0.5f * 1.2f);
  for (float u : img.flat()) EXPECT_EQ(u, v);
}

TEST(Augment, RejectsBadShapes) {
  AugmentConfig cfg;
  util::Rng rng(1);
  tensor::Tensor wrong({2, 3});
  EXPECT_THROW(augment_image(wrong, cfg, rng), InvalidArgument);
  EXPECT_THROW(augment_batch(wrong, cfg, rng), InvalidArgument);
}

TEST(DataLoader, CoversEveryTrainSampleOncePerEpoch) {
  const SyntheticDataset ds(small_config());
  DataLoader loader(ds, 10, /*train=*/true, 5);
  EXPECT_EQ(loader.num_batches(), 7u);  // 64 = 6*10 + 4
  std::size_t total = 0;
  for (std::size_t b = 0; b < loader.num_batches(); ++b) {
    total += loader.batch(b).labels.size();
  }
  EXPECT_EQ(total, 64u);
}

TEST(DataLoader, ValDeterministicOrderNoAugment) {
  const SyntheticDataset ds(small_config());
  DataLoader loader(ds, 8, /*train=*/false, 5);
  const Batch b0 = loader.batch(0);
  EXPECT_EQ(b0.labels[0], ds.val_label(0));
  const auto img = ds.val_image(0);
  for (long i = 0; i < img.numel(); ++i) {
    EXPECT_EQ(b0.images.flat()[static_cast<std::size_t>(i)],
              img.flat()[static_cast<std::size_t>(i)]);
  }
}

TEST(DataLoader, ShuffleChangesAcrossEpochs) {
  const SyntheticDataset ds(small_config());
  DataLoader loader(ds, 64, /*train=*/true, 5);
  const auto labels1 = loader.batch(0).labels;
  loader.start_epoch();
  const auto labels2 = loader.batch(0).labels;
  EXPECT_NE(labels1, labels2);
}

TEST(DataLoader, Validation) {
  const SyntheticDataset ds(small_config());
  EXPECT_THROW(DataLoader(ds, 0, true, 1), InvalidArgument);
  DataLoader loader(ds, 16, true, 1);
  EXPECT_THROW(loader.batch(99), InternalError);
}

}  // namespace
}  // namespace hsconas::data
