#include "core/analysis.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace hsconas::core {
namespace {

SearchSpace proxy_space() { return SearchSpace(SearchSpaceConfig::proxy()); }

EvolutionSearch::Candidate make_candidate(const SearchSpace& space, int op,
                                          int factor, double score) {
  EvolutionSearch::Candidate c;
  c.arch.ops.assign(static_cast<std::size_t>(space.num_layers()), op);
  c.arch.factors.assign(static_cast<std::size_t>(space.num_layers()),
                        factor);
  c.score = score;
  return c;
}

TEST(Analysis, FrequenciesSumToOnePerLayer) {
  const SearchSpace space = proxy_space();
  std::vector<EvolutionSearch::Candidate> pop{
      make_candidate(space, 0, 9, 1.0), make_candidate(space, 1, 4, 0.9),
      make_candidate(space, 0, 0, 0.8)};
  const auto stats = analyze_population(pop, space);
  ASSERT_EQ(stats.size(), static_cast<std::size_t>(space.num_layers()));
  for (const auto& s : stats) {
    double sum = 0.0;
    for (double f : s.op_frequency) sum += f;
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_NEAR(s.op_frequency[0], 2.0 / 3.0, 1e-12);
    EXPECT_EQ(s.dominant_op, 0);
  }
}

TEST(Analysis, MeanChannelFactor) {
  const SearchSpace space = proxy_space();
  std::vector<EvolutionSearch::Candidate> pop{
      make_candidate(space, 0, 9, 1.0),   // factor 1.0
      make_candidate(space, 0, 4, 0.5)};  // factor 0.5
  const auto stats = analyze_population(pop, space);
  EXPECT_NEAR(stats[0].mean_channel_factor, 0.75, 1e-12);
}

TEST(Analysis, TopKFiltersByScore) {
  const SearchSpace space = proxy_space();
  std::vector<EvolutionSearch::Candidate> pop{
      make_candidate(space, 0, 9, 0.1),   // low score, op 0
      make_candidate(space, 2, 9, 0.9),   // high score, op 2
      make_candidate(space, 2, 9, 0.8)};
  const auto stats = analyze_population(pop, space, 2);
  EXPECT_EQ(stats[0].dominant_op, 2);
  EXPECT_NEAR(stats[0].op_frequency[2], 1.0, 1e-12);
}

TEST(Analysis, RenderIncludesEveryLayerAndOpName) {
  const SearchSpace space = proxy_space();
  std::vector<EvolutionSearch::Candidate> pop{
      make_candidate(space, 3, 5, 1.0)};
  const auto stats = analyze_population(pop, space);
  const std::string out = render_layer_statistics(stats, space);
  EXPECT_NE(out.find("xception"), std::string::npos);
  EXPECT_NE(out.find("mean c"), std::string::npos);
  // One data row per layer.
  const std::string needle = "| 5 ";
  EXPECT_NE(out.find(needle), std::string::npos);
}

TEST(Analysis, EmptyPopulationThrows) {
  const SearchSpace space = proxy_space();
  EXPECT_THROW(analyze_population({}, space), InvalidArgument);
}

}  // namespace
}  // namespace hsconas::core
