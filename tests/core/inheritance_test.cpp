// Tests for OFA-style weight inheritance (Supernet::extract_subnet +
// fine_tune_subnet).

#include <gtest/gtest.h>

#include "core/supernet.h"
#include "core/trainer.h"
#include "util/error.h"

namespace hsconas::core {
namespace {

SearchSpaceConfig tiny_config() { return SearchSpaceConfig::proxy(4, 8, 1); }

data::SyntheticDataset tiny_dataset() {
  data::SyntheticConfig cfg;
  cfg.num_classes = 4;
  cfg.train_size = 96;
  cfg.val_size = 48;
  cfg.image_size = 8;
  cfg.seed = 55;
  return data::SyntheticDataset(cfg);
}

TEST(WeightInheritance, SubnetReproducesSupernetForward) {
  const SearchSpace space(tiny_config());
  Supernet supernet(space, 3);
  util::Rng rng(1);
  const Arch arch = Arch::random(space, rng);

  auto subnet = supernet.extract_subnet(arch);
  ASSERT_TRUE(subnet->is_standalone());

  // Training-mode forward uses batch statistics, so identical weights give
  // bit-identical outputs.
  util::Rng xrng(2);
  const tensor::Tensor x =
      tensor::Tensor::uniform({2, 3, 8, 8}, -1.0f, 1.0f, xrng);
  supernet.set_training(true);
  subnet->set_training(true);
  const tensor::Tensor ya = supernet.forward(x, arch);
  const tensor::Tensor yb = subnet->forward(x);
  for (long i = 0; i < ya.numel(); ++i) {
    ASSERT_EQ(ya.flat()[static_cast<std::size_t>(i)],
              yb.flat()[static_cast<std::size_t>(i)]);
  }
}

TEST(WeightInheritance, CopyIsDeepNotAliased) {
  const SearchSpace space(tiny_config());
  Supernet supernet(space, 3);
  util::Rng rng(4);
  const Arch arch = Arch::random(space, rng);
  auto subnet = supernet.extract_subnet(arch);

  // Mutating the subnet must not touch the supernet.
  const auto src = supernet.path_parameters(arch);
  const auto dst = subnet->parameters();
  const float before = src[0]->value.flat()[0];
  dst[0]->value.flat()[0] += 1.0f;
  EXPECT_EQ(src[0]->value.flat()[0], before);
}

TEST(WeightInheritance, RespectsFixedArchContract) {
  const SearchSpace space(tiny_config());
  Supernet supernet(space, 3);
  util::Rng rng(5);
  const Arch arch = Arch::random(space, rng);
  auto subnet = supernet.extract_subnet(arch);
  Arch other = arch;
  other.ops[0] = (other.ops[0] + 1) % 5;
  tensor::Tensor x({1, 3, 8, 8});
  EXPECT_THROW(subnet->forward(x, other), InvalidArgument);
}

TEST(WeightInheritance, FineTuneBeatsScratchAtTinyBudget) {
  const SearchSpace space(tiny_config());
  const auto dataset = tiny_dataset();

  // Train the supernet long enough that its shared weights carry signal.
  Supernet supernet(space, 17);
  TrainConfig sup_cfg;
  sup_cfg.batch_size = 24;
  sup_cfg.lr = 0.08;
  sup_cfg.seed = 6;
  SupernetTrainer trainer(supernet, dataset, sup_cfg);
  trainer.run(8);

  Arch arch;
  arch.ops.assign(static_cast<std::size_t>(space.num_layers()), 0);
  arch.factors.assign(static_cast<std::size_t>(space.num_layers()), 9);

  TrainConfig short_cfg;
  short_cfg.epochs = 2;  // far too short for from-scratch convergence
  short_cfg.batch_size = 24;
  short_cfg.lr = 0.02;
  short_cfg.seed = 7;

  const auto inherited = fine_tune_subnet(supernet, arch, dataset, short_cfg);
  const auto scratch = train_from_scratch(space, arch, dataset, short_cfg);
  EXPECT_GE(inherited.val_top1, scratch.val_top1);
}

}  // namespace
}  // namespace hsconas::core
