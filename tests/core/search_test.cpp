// Tests for progressive space shrinking, evolutionary search and the
// end-to-end pipeline (surrogate mode for speed; the proxy-mode pipeline is
// exercised in the integration test binary).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/accuracy_surrogate.h"
#include "core/evolution.h"
#include "core/pipeline.h"
#include "core/space_shrinking.h"
#include "hwsim/registry.h"
#include "util/error.h"

namespace hsconas::core {
namespace {

struct Fixture {
  SearchSpace space{SearchSpaceConfig::proxy(10, 16, 2)};  // 6 layers
  hwsim::DeviceSimulator device{hwsim::device_by_name("xavier")};
  AccuracySurrogate surrogate{space};
  LatencyModel model{space, device,
                     LatencyModel::Config{4, 20, 17, true}};
  Objective objective{-0.3, 0.0};

  Fixture() {
    // Mid-range constraint: reachable from both sides in the proxy space.
    util::Rng rng(5);
    double sum = 0.0;
    for (int i = 0; i < 20; ++i) {
      sum += model.predict_ms(Arch::random(space, rng));
    }
    objective.constraint_ms = sum / 20.0;
  }

  AccuracyFn accuracy_fn() {
    return [this](const Arch& a) { return surrogate.accuracy(a); };
  }
};

TEST(SpaceShrinker, FixesChosenOperator) {
  Fixture f;
  SpaceShrinker shrinker(f.space, f.accuracy_fn(), f.model, f.objective,
                         SpaceShrinker::Config{30, 7});
  const auto decision = shrinker.shrink_layer(5);
  EXPECT_TRUE(f.space.is_fixed(5));
  EXPECT_EQ(f.space.allowed_ops(5)[0], decision.chosen_op);
  EXPECT_EQ(decision.quality.size(), 5u);
  EXPECT_EQ(decision.subspaces_evaluated, 5);
}

TEST(SpaceShrinker, ChosenOpMaximizesQuality) {
  Fixture f;
  SpaceShrinker shrinker(f.space, f.accuracy_fn(), f.model, f.objective,
                         SpaceShrinker::Config{50, 7});
  const auto decision = shrinker.shrink_layer(4);
  double best = -1e300;
  int best_op = -1;
  for (std::size_t i = 0; i < decision.quality.size(); ++i) {
    if (decision.quality[i] > best) {
      best = decision.quality[i];
      best_op = static_cast<int>(i);
    }
  }
  EXPECT_EQ(decision.chosen_op, best_op);
}

TEST(SpaceShrinker, StageComplexityIsKTimesLayers) {
  // §III-C: a 4-layer stage costs 5 × 4 subspace evaluations, not 5^4.
  Fixture f;
  SpaceShrinker shrinker(f.space, f.accuracy_fn(), f.model, f.objective,
                         SpaceShrinker::Config{10, 7});
  const auto decisions = shrinker.shrink_stage(5, 4);
  EXPECT_EQ(decisions.size(), 4u);
  EXPECT_EQ(shrinker.total_subspaces_evaluated(), 20);  // 5 ops × 4 layers
  // Back-to-front order.
  EXPECT_EQ(decisions[0].layer, 5);
  EXPECT_EQ(decisions[3].layer, 2);
}

TEST(SpaceShrinker, StageShrinksSpaceByLog10KPerLayer) {
  Fixture f;
  const double before = f.space.log10_size();
  SpaceShrinker shrinker(f.space, f.accuracy_fn(), f.model, f.objective,
                         SpaceShrinker::Config{10, 7});
  shrinker.shrink_stage(5, 3);
  EXPECT_NEAR(before - f.space.log10_size(), 3 * std::log10(5.0), 1e-9);
}

TEST(SpaceShrinker, BadRangeThrows) {
  Fixture f;
  SpaceShrinker shrinker(f.space, f.accuracy_fn(), f.model, f.objective,
                         SpaceShrinker::Config{10, 7});
  EXPECT_THROW(shrinker.shrink_stage(5, 7), InvalidArgument);
  EXPECT_THROW(shrinker.shrink_stage(9, 1), InvalidArgument);
}

TEST(SpaceShrinker, DeterministicGivenSeed) {
  Fixture f1, f2;
  SpaceShrinker s1(f1.space, f1.accuracy_fn(), f1.model, f1.objective,
                   SpaceShrinker::Config{30, 99});
  SpaceShrinker s2(f2.space, f2.accuracy_fn(), f2.model, f2.objective,
                   SpaceShrinker::Config{30, 99});
  EXPECT_EQ(s1.shrink_layer(5).chosen_op, s2.shrink_layer(5).chosen_op);
}

TEST(EvolutionSearch, FindsArchNearConstraint) {
  Fixture f;
  EvolutionSearch::Config cfg;
  cfg.generations = 10;
  cfg.population = 30;
  cfg.parents = 10;
  cfg.seed = 21;
  EvolutionSearch search(f.space, f.accuracy_fn(), f.model, f.objective,
                         cfg);
  const auto result = search.run();
  EXPECT_NEAR(result.best.latency_ms, f.objective.constraint_ms,
              f.objective.constraint_ms * 0.10);
  EXPECT_EQ(result.per_generation.size(), 10u);
}

TEST(EvolutionSearch, BestScoreNeverDecreases) {
  Fixture f;
  EvolutionSearch::Config cfg;
  cfg.generations = 8;
  cfg.population = 20;
  cfg.parents = 8;
  cfg.seed = 22;
  EvolutionSearch search(f.space, f.accuracy_fn(), f.model, f.objective,
                         cfg);
  const auto result = search.run();
  for (std::size_t g = 1; g < result.per_generation.size(); ++g) {
    EXPECT_GE(result.per_generation[g].best_score,
              result.per_generation[g - 1].best_score - 1e-12);
  }
}

TEST(EvolutionSearch, BeatsRandomSearchAtEqualBudget) {
  Fixture f;
  EvolutionSearch::Config cfg;
  cfg.generations = 10;
  cfg.population = 25;
  cfg.parents = 10;
  cfg.seed = 23;
  EvolutionSearch search(f.space, f.accuracy_fn(), f.model, f.objective,
                         cfg);
  const auto ea = search.run();
  const std::size_t budget = ea.evaluated.size();

  util::Rng rng(23);
  double best_random = -1e300;
  for (std::size_t i = 0; i < budget; ++i) {
    const Arch arch = Arch::random(f.space, rng);
    best_random = std::max(
        best_random, f.objective.score(f.surrogate.accuracy(arch),
                                       f.model.predict_ms(arch)));
  }
  EXPECT_GE(ea.best.score, best_random);
}

TEST(EvolutionSearch, RespectsShrunkSpace) {
  Fixture f;
  f.space.fix_op(5, 2);
  f.space.fix_op(4, 0);
  EvolutionSearch::Config cfg;
  cfg.generations = 4;
  cfg.population = 15;
  cfg.parents = 5;
  cfg.seed = 24;
  EvolutionSearch search(f.space, f.accuracy_fn(), f.model, f.objective,
                         cfg);
  const auto result = search.run();
  for (const auto& cand : result.evaluated) {
    EXPECT_EQ(cand.arch.ops[5], 2);
    EXPECT_EQ(cand.arch.ops[4], 0);
  }
}

TEST(EvolutionSearch, EvaluatedCandidatesMostlyUnique) {
  Fixture f;
  EvolutionSearch::Config cfg;
  cfg.generations = 6;
  cfg.population = 20;
  cfg.parents = 8;
  cfg.seed = 25;
  EvolutionSearch search(f.space, f.accuracy_fn(), f.model, f.objective,
                         cfg);
  const auto result = search.run();
  std::set<std::uint64_t> hashes;
  for (const auto& cand : result.evaluated) hashes.insert(cand.arch.hash());
  EXPECT_EQ(hashes.size(), result.evaluated.size());
}

TEST(EvolutionSearch, DeterministicGivenSeed) {
  Fixture f1, f2;
  EvolutionSearch::Config cfg;
  cfg.generations = 5;
  cfg.population = 15;
  cfg.parents = 6;
  cfg.seed = 26;
  EvolutionSearch s1(f1.space, f1.accuracy_fn(), f1.model, f1.objective, cfg);
  EvolutionSearch s2(f2.space, f2.accuracy_fn(), f2.model, f2.objective, cfg);
  const auto r1 = s1.run();
  const auto r2 = s2.run();
  EXPECT_TRUE(r1.best.arch == r2.best.arch);
  EXPECT_DOUBLE_EQ(r1.best.score, r2.best.score);
}

TEST(EvolutionSearch, ConfigValidation) {
  Fixture f;
  EvolutionSearch::Config cfg;
  cfg.population = 1;
  EXPECT_THROW(
      EvolutionSearch(f.space, f.accuracy_fn(), f.model, f.objective, cfg),
      InvalidArgument);
  cfg = EvolutionSearch::Config{};
  cfg.parents = 99;
  EXPECT_THROW(
      EvolutionSearch(f.space, f.accuracy_fn(), f.model, f.objective, cfg),
      InvalidArgument);
}

TEST(Pipeline, SurrogateModeEndToEnd) {
  PipelineConfig cfg;
  cfg.space = SearchSpaceConfig::imagenet_layout_a();
  cfg.device = "gpu";
  cfg.use_surrogate = true;
  cfg.evolution.generations = 6;
  cfg.evolution.population = 20;
  cfg.evolution.parents = 8;
  cfg.shrink.samples_per_subspace = 20;
  cfg.seed = 77;
  Pipeline pipeline(cfg);
  const auto result = pipeline.run();

  EXPECT_EQ(result.constraint_ms, 9.0);  // paper GPU constraint
  EXPECT_NEAR(result.predicted_latency_ms, 9.0, 1.8);
  EXPECT_GT(result.best_accuracy, 0.70);
  // Two stages of 4 layers: 2 * 4 * log10(5) less space.
  EXPECT_NEAR(result.log10_space_initial - result.log10_space_after_stage2,
              8 * std::log10(5.0), 1e-9);
  EXPECT_EQ(result.stage1_decisions.size(), 4u);
  EXPECT_EQ(result.stage2_decisions.size(), 4u);
  // The winner respects the shrunk layers.
  for (const auto& d : result.stage1_decisions) {
    EXPECT_EQ(result.best_arch.ops[static_cast<std::size_t>(d.layer)],
              d.chosen_op);
  }
  // Measured latency close to predicted (B does its job).
  EXPECT_NEAR(result.measured_latency_ms, result.predicted_latency_ms,
              result.predicted_latency_ms * 0.15);
}

TEST(Pipeline, ProxyModeRequiresDataset) {
  PipelineConfig cfg;
  cfg.use_surrogate = false;
  Pipeline pipeline(cfg);
  EXPECT_THROW(pipeline.run(nullptr), InvalidArgument);
}

TEST(Pipeline, UnknownDeviceThrows) {
  PipelineConfig cfg;
  cfg.device = "asic9000";
  EXPECT_THROW(Pipeline{cfg}, InvalidArgument);
}

}  // namespace
}  // namespace hsconas::core
