// End-to-end tests of the MBConv search space: the whole HSCoNAS machinery
// (lowering, latency model, surrogate, EA, supernet training) must work
// unchanged when the operator family is swapped.

#include <gtest/gtest.h>

#include "core/accuracy_surrogate.h"
#include "core/evolution.h"
#include "core/lowering.h"
#include "core/pipeline.h"
#include "core/supernet.h"
#include "core/trainer.h"
#include "hwsim/registry.h"

namespace hsconas::core {
namespace {

SearchSpaceConfig mbconv_imagenet() {
  return SearchSpaceConfig::imagenet_layout_a().with_family(
      nn::OpFamily::kMbConv);
}

TEST(MbConvSpace, SameSpaceSizeArithmetic) {
  const SearchSpaceConfig cfg = mbconv_imagenet();
  EXPECT_EQ(cfg.num_ops, 5);
  const SearchSpace space(cfg);
  EXPECT_NEAR(space.log10_size(), 20.0 * std::log10(50.0), 1e-9);
  EXPECT_STREQ(space.op_name(0), "mb_e3k3");
  EXPECT_STREQ(space.op_name(4), "skip");
}

TEST(MbConvSpace, ArchStringRoundTrip) {
  const SearchSpace space(mbconv_imagenet());
  util::Rng rng(1);
  const Arch arch = Arch::random(space, rng);
  const std::string s = arch.to_string(space);
  EXPECT_NE(s.find("mb_e"), std::string::npos);
  const Arch parsed = Arch::from_string(space, s);
  EXPECT_TRUE(parsed == arch);
}

TEST(MbConvSpace, LoweringGeometryChains) {
  const SearchSpace space(mbconv_imagenet());
  util::Rng rng(2);
  const auto net = lower_network(Arch::random(space, rng), space);
  long h = net.front().out_h;
  long ch = net.front().out_channels;
  for (std::size_t i = 1; i + 1 < net.size(); ++i) {
    if (!net[i].ops.empty()) {
      EXPECT_EQ(net[i].ops.front().in_h, h) << "layer " << i;
      EXPECT_EQ(net[i].ops.front().in_channels, ch) << "layer " << i;
    }
    h = net[i].out_h;
    ch = net[i].out_channels;
  }
}

TEST(MbConvSpace, ParamsMatchTrainingSubstrateAtFullWidth) {
  const SearchSpace space(
      SearchSpaceConfig::proxy(4, 8, 1).with_family(nn::OpFamily::kMbConv));
  for (int op = 0; op < 5; ++op) {
    Arch arch;
    arch.ops.assign(static_cast<std::size_t>(space.num_layers()), op);
    arch.factors.assign(static_cast<std::size_t>(space.num_layers()), 9);
    const double desc_params = arch_params(arch, space);
    Supernet net(space, 7, arch);
    long nn_params = 0;
    for (nn::Parameter* p : net.parameters()) {
      if (p->name.find("gamma") == std::string::npos &&
          p->name.find("beta") == std::string::npos) {
        nn_params += p->numel();
      }
    }
    EXPECT_DOUBLE_EQ(desc_params, static_cast<double>(nn_params))
        << "op " << op;
  }
}

TEST(MbConvSpace, ExpansionSixCostsMoreThanThree) {
  const SearchSpace space(mbconv_imagenet());
  const LayerInfo& info = space.layer(1);
  const double e3 =
      lower_layer(info, nn::OpFamily::kMbConv, 0, 1.0).macs();
  const double e6 =
      lower_layer(info, nn::OpFamily::kMbConv, 1, 1.0).macs();
  EXPECT_GT(e6, 1.5 * e3);
}

TEST(MbConvSpace, SupernetTrainsOnProxyTask) {
  const SearchSpace space(
      SearchSpaceConfig::proxy(4, 8, 1).with_family(nn::OpFamily::kMbConv));
  data::SyntheticConfig dc;
  dc.num_classes = 4;
  dc.train_size = 64;
  dc.val_size = 32;
  dc.image_size = 8;
  const data::SyntheticDataset dataset(dc);
  Supernet net(space, 21);
  TrainConfig tc;
  tc.batch_size = 16;
  tc.lr = 0.05;
  SupernetTrainer trainer(net, dataset, tc);
  const auto history = trainer.run(4);
  EXPECT_LT(history.back().loss, history.front().loss);
}

TEST(MbConvSpace, FullPipelineSurrogateMode) {
  PipelineConfig cfg;
  cfg.space = mbconv_imagenet();
  cfg.device = "edge";
  // MBConv nets are compute-heavier than shuffle nets at the same layout
  // (expanded-width depthwise), so the paper's 34 ms shuffle-space budget
  // is out of reach; use a constraint this family can actually meet.
  cfg.constraint_ms = 55.0;
  cfg.use_surrogate = true;
  cfg.evolution.generations = 5;
  cfg.evolution.population = 16;
  cfg.evolution.parents = 6;
  cfg.shrink.samples_per_subspace = 15;
  cfg.seed = 31;
  Pipeline pipeline(cfg);
  const auto result = pipeline.run();
  EXPECT_NEAR(result.predicted_latency_ms, 55.0, 55.0 * 0.15);
  EXPECT_GT(result.best_accuracy, 0.70);
  // Winner belongs to the MBConv family in its printable form.
  EXPECT_NE(result.best_arch.to_string(pipeline.space()).find("mb_e"),
            std::string::npos);
}

TEST(MbConvSpace, MbConvNetsAreComputeHeavierThanShuffleAtEqualLayout) {
  // Inverted residuals run their depthwise at the *expanded* width, so at
  // the same macro-layout the MBConv space sits higher on the compute
  // axis — the structural difference between the two families.
  const SearchSpace shuffle(SearchSpaceConfig::imagenet_layout_a());
  const SearchSpace mbconv(mbconv_imagenet());
  Arch full;
  full.ops.assign(20, 1);  // shuffle_k5 vs mb_e6k3 — both mid-table ops
  full.factors.assign(20, 9);
  EXPECT_GT(arch_macs(full, mbconv), arch_macs(full, shuffle));
}

}  // namespace
}  // namespace hsconas::core
