// Corruption/interruption torture tests for the sectioned checkpoint
// container and the serial codec: truncation at every byte offset, bit
// flips at every position, header bombs, stale tmp files, trailing
// garbage. The invariant under test: no on-disk state — however mangled —
// may crash the loader, drive a huge allocation, or load silently wrong;
// every failure is a clean Error.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/checkpoint.h"
#include "core/evolution.h"
#include "core/search_space.h"
#include "util/error.h"
#include "util/serial.h"

namespace hsconas::core {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void spew(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// A small two-section checkpoint whose full image fits torture loops.
std::string write_sample(const std::string& path) {
  CheckpointWriter writer;
  util::ByteWriter alpha;
  alpha.u32(7);
  alpha.str("hello");
  alpha.vec_f64({1.5, -2.5, 3.25});
  writer.add_section("alpha", alpha.take());
  util::ByteWriter beta;
  beta.f64(3.5);
  beta.vec_i32({1, 2, 3});
  writer.add_section("beta", beta.take());
  writer.save(path);
  return slurp(path);
}

TEST(CheckpointRobustness, RoundTripsSections) {
  const std::string path = testing::TempDir() + "/ckpt_roundtrip.bin";
  write_sample(path);
  CheckpointReader reader(path);
  EXPECT_TRUE(reader.has("alpha"));
  EXPECT_TRUE(reader.has("beta"));
  EXPECT_FALSE(reader.has("gamma"));
  EXPECT_THROW(reader.section("gamma"), Error);

  util::ByteReader alpha(reader.section("alpha"));
  EXPECT_EQ(alpha.u32(), 7u);
  EXPECT_EQ(alpha.str(), "hello");
  EXPECT_EQ(alpha.vec_f64(), (std::vector<double>{1.5, -2.5, 3.25}));
  alpha.expect_done();

  util::ByteReader beta(reader.section("beta"));
  EXPECT_EQ(beta.f64(), 3.5);
  EXPECT_EQ(beta.vec_i32(), (std::vector<int>{1, 2, 3}));
  beta.expect_done();
  std::remove(path.c_str());
}

TEST(CheckpointRobustness, TruncationAtEveryOffsetFailsCleanly) {
  const std::string path = testing::TempDir() + "/ckpt_trunc_src.bin";
  const std::string full = write_sample(path);
  ASSERT_GT(full.size(), 8u);

  const std::string mangled = testing::TempDir() + "/ckpt_trunc.bin";
  for (std::size_t n = 0; n < full.size(); ++n) {
    spew(mangled, full.substr(0, n));
    EXPECT_THROW(CheckpointReader r(mangled), Error)
        << "truncated to " << n << " of " << full.size() << " bytes";
  }
  std::remove(path.c_str());
  std::remove(mangled.c_str());
}

TEST(CheckpointRobustness, BitFlipAtEveryPositionIsDetected) {
  const std::string path = testing::TempDir() + "/ckpt_flip_src.bin";
  const std::string full = write_sample(path);

  const std::string mangled = testing::TempDir() + "/ckpt_flip.bin";
  for (std::size_t byte = 0; byte < full.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = full;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      spew(mangled, corrupt);
      EXPECT_THROW(CheckpointReader r(mangled), Error)
          << "flip byte " << byte << " bit " << bit << " undetected";
    }
  }
  std::remove(path.c_str());
  std::remove(mangled.c_str());
}

TEST(CheckpointRobustness, TrailingGarbageIsRejected) {
  const std::string path = testing::TempDir() + "/ckpt_tail.bin";
  const std::string full = write_sample(path);
  spew(path, full + std::string(16, '\x5a'));
  EXPECT_THROW(CheckpointReader r(path), Error);
  std::remove(path.c_str());
}

TEST(CheckpointRobustness, HeaderBombsFailBeforeAllocating) {
  // Hand-crafted headers claiming absurd name/section/payload sizes must be
  // rejected by bounds checks, not by an out-of-memory crash.
  const std::string path = testing::TempDir() + "/ckpt_bomb.bin";

  {  // name_len = 0xFFFFFFFF
    util::ByteWriter w;
    w.bytes("HSCK", 4);
    w.u32(kCheckpointVersion);
    w.u32(1);           // one section
    w.u32(0xFFFFFFFFu); // name_len bomb
    spew(path, w.take());
    EXPECT_THROW(CheckpointReader r(path), Error);
  }
  {  // payload_size far beyond the file
    util::ByteWriter w;
    w.bytes("HSCK", 4);
    w.u32(kCheckpointVersion);
    w.u32(1);
    w.u32(1);
    w.bytes("a", 1);
    w.u64(0x7FFFFFFFFFFFull);  // payload_size bomb
    w.u32(0);                  // crc (never reached)
    spew(path, w.take());
    EXPECT_THROW(CheckpointReader r(path), Error);
  }
  {  // section_count bomb
    util::ByteWriter w;
    w.bytes("HSCK", 4);
    w.u32(kCheckpointVersion);
    w.u32(0xFFFFFFFFu);
    spew(path, w.take());
    EXPECT_THROW(CheckpointReader r(path), Error);
  }
  {  // wrong magic / wrong version
    util::ByteWriter w;
    w.bytes("NOPE", 4);
    w.u32(kCheckpointVersion);
    w.u32(0);
    spew(path, w.take());
    EXPECT_THROW(CheckpointReader r(path), Error);
    util::ByteWriter v;
    v.bytes("HSCK", 4);
    v.u32(kCheckpointVersion + 7);
    v.u32(0);
    spew(path, v.take());
    EXPECT_THROW(CheckpointReader r(path), Error);
  }
  std::remove(path.c_str());
}

TEST(CheckpointRobustness, StaleTmpFromKilledWriterIsHarmless) {
  // A writer killed between the tmp write and the rename leaves path.tmp
  // behind. The real path must still load (previous complete snapshot),
  // and the next save must succeed and clean up.
  const std::string path = testing::TempDir() + "/ckpt_stale.bin";
  write_sample(path);
  spew(path + ".tmp", "torn half-written garbage");

  EXPECT_NO_THROW(CheckpointReader r(path));  // .tmp never read

  CheckpointWriter writer;
  writer.add_section("only", std::string("payload"));
  writer.save(path);
  CheckpointReader reader(path);
  EXPECT_TRUE(reader.has("only"));
  EXPECT_FALSE(reader.has("alpha"));  // fully replaced, not merged
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good()) << "save left its .tmp behind";
  std::remove(path.c_str());
}

TEST(CheckpointRobustness, SaveToUnwritablePathThrowsAndLeavesNoTmp) {
  CheckpointWriter writer;
  writer.add_section("s", std::string("x"));
  EXPECT_THROW(writer.save("/no/such/dir/ckpt.bin"), Error);
}

// ------------------------------------------------------------ serial codec --

TEST(SerialCodec, ReaderCapsRejectOversizedClaimsBeforeAllocation) {
  util::ByteWriter w;
  w.u32(0x40000000u);  // vector "count" with no elements behind it
  const std::string buf = w.take();
  {
    util::ByteReader r(buf);
    EXPECT_THROW(r.vec_i32(), Error);
  }
  {
    util::ByteReader r(buf);
    EXPECT_THROW(r.vec_f64(), Error);
  }
  {
    util::ByteReader r(buf);
    EXPECT_THROW(r.str(), Error);
  }
  {  // explicit cap tighter than the claim
    util::ByteWriter small;
    small.vec_i32({1, 2, 3, 4});
    util::ByteReader r(small.data());
    EXPECT_THROW(r.vec_i32(2), Error);
  }
  {  // reading past the end of a POD
    util::ByteReader r(std::string_view("ab", 2));
    EXPECT_THROW(r.u64(), Error);
  }
}

TEST(SerialCodec, ExpectDoneCatchesUnderAndOverConsumption) {
  util::ByteWriter w;
  w.u32(1);
  w.u32(2);
  util::ByteReader r(w.data());
  EXPECT_EQ(r.u32(), 1u);
  EXPECT_THROW(r.expect_done(), Error);
  EXPECT_EQ(r.u32(), 2u);
  EXPECT_NO_THROW(r.expect_done());
  EXPECT_THROW(r.u8(), Error);
}

// ----------------------------------------------------------- latency memo --

TEST(ArchLatencyMemo, HashCollisionFallsThroughInsteadOfAliasing) {
  const SearchSpace space(SearchSpaceConfig::proxy(4, 8, 1));
  util::Rng rng(5);
  Arch a = Arch::random(space, rng);
  Arch b = Arch::random(space, rng);
  while (b == a) b = Arch::random(space, rng);

  ArchLatencyMemo memo;
  const std::uint64_t key = 42;  // force both archs onto one slot
  memo.store(key, a, 1.25);

  double ms = 0.0;
  EXPECT_TRUE(memo.lookup(key, a, &ms));
  EXPECT_EQ(ms, 1.25);
  // The colliding arch must MISS (old behavior: silently returned 1.25).
  EXPECT_FALSE(memo.lookup(key, b, &ms));

  // First writer wins; the original mapping survives a colliding store.
  memo.store(key, b, 9.75);
  EXPECT_TRUE(memo.lookup(key, a, &ms));
  EXPECT_EQ(ms, 1.25);
  EXPECT_EQ(memo.size(), 1u);
}

}  // namespace
}  // namespace hsconas::core
