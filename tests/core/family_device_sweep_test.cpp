// Cross-product property sweep: every (device × operator family) pair must
// satisfy the invariants the search relies on. This is the broadest net in
// the suite — a regression anywhere in lowering, the device model, or the
// family tables shows up here first.

#include <gtest/gtest.h>

#include <tuple>

#include "core/accuracy_surrogate.h"
#include "core/evolution.h"
#include "core/latency_model.h"
#include "core/lowering.h"
#include "eval/latency_eval.h"
#include "hwsim/registry.h"

namespace hsconas::core {
namespace {

using Combo = std::tuple<std::string, nn::OpFamily>;

class FamilyDeviceSweep : public ::testing::TestWithParam<Combo> {
 protected:
  SearchSpace make_space() const {
    return SearchSpace(SearchSpaceConfig::imagenet_layout_a().with_family(
        std::get<1>(GetParam())));
  }
  hwsim::DeviceSimulator make_device() const {
    return hwsim::DeviceSimulator(
        hwsim::device_by_name(std::get<0>(GetParam())));
  }
};

TEST_P(FamilyDeviceSweep, LatencyModelTracksGroundTruth) {
  const SearchSpace space = make_space();
  const hwsim::DeviceSimulator device = make_device();
  LatencyModel model(space, device,
                     LatencyModel::Config{
                         device.profile().default_batch, 30, 61, true});
  const auto report = eval::evaluate_latency_model(model, 60, 62);
  EXPECT_GT(report.pearson, 0.95) << "bias " << report.bias_ms;
  EXPECT_LT(report.rmse_ms, report.rmse_uncorrected_ms);
  double mean_measured = 0.0;
  for (const auto& p : report.points) mean_measured += p.measured_ms;
  mean_measured /= static_cast<double>(report.points.size());
  EXPECT_LT(report.rmse_ms / mean_measured, 0.1);
}

TEST_P(FamilyDeviceSweep, ChannelFactorMonotoneInLut) {
  const SearchSpace space = make_space();
  const hwsim::DeviceSimulator device = make_device();
  const LatencyModel model(
      space, device,
      LatencyModel::Config{device.profile().default_batch, 10, 63, true});
  for (int l = 0; l < space.num_layers(); l += 5) {
    for (int op = 0; op < space.config().num_ops; ++op) {
      if (nn::family_op_is_skip(space.config().family, op)) continue;
      EXPECT_LE(model.lut_ms(l, op, 0), model.lut_ms(l, op, 9) + 1e-12)
          << "layer " << l << " op " << op;
    }
  }
}

TEST_P(FamilyDeviceSweep, SkipIsCheapestAtEveryLayer) {
  const SearchSpace space = make_space();
  const hwsim::DeviceSimulator device = make_device();
  const LatencyModel model(
      space, device,
      LatencyModel::Config{device.profile().default_batch, 10, 64, true});
  int skip_op = -1;
  for (int op = 0; op < space.config().num_ops; ++op) {
    if (nn::family_op_is_skip(space.config().family, op)) skip_op = op;
  }
  ASSERT_GE(skip_op, 0);
  for (int l = 0; l < space.num_layers(); ++l) {
    for (int op = 0; op < space.config().num_ops; ++op) {
      EXPECT_LE(model.lut_ms(l, skip_op, 9), model.lut_ms(l, op, 9) + 1e-12)
          << "layer " << l << " op " << op;
    }
  }
}

TEST_P(FamilyDeviceSweep, EvolutionHitsMidRangeConstraint) {
  const SearchSpace space = make_space();
  const hwsim::DeviceSimulator device = make_device();
  const LatencyModel model(
      space, device,
      LatencyModel::Config{device.profile().default_batch, 20, 65, true});
  const AccuracySurrogate surrogate(space);

  util::Rng rng(66);
  double sum = 0.0;
  for (int i = 0; i < 20; ++i) {
    sum += model.predict_ms(Arch::random(space, rng));
  }
  const double T = sum / 20.0;

  EvolutionSearch::Config cfg;
  cfg.generations = 6;
  cfg.population = 20;
  cfg.parents = 8;
  cfg.seed = 67;
  EvolutionSearch search(
      space, [&](const Arch& a) { return surrogate.accuracy(a); }, model,
      Objective{-0.3, T}, cfg);
  const auto result = search.run();
  EXPECT_NEAR(result.best.latency_ms, T, T * 0.08);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, FamilyDeviceSweep,
    ::testing::Combine(::testing::Values("gv100", "xeon6136", "xavier"),
                       ::testing::Values(nn::OpFamily::kShuffleV2,
                                         nn::OpFamily::kMbConv)),
    [](const auto& param_info) {
      return std::get<0>(param_info.param) + "_" +
             nn::family_name(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace hsconas::core
