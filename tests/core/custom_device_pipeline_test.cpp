// Pipeline with a user-supplied device profile (PipelineConfig::
// custom_device) — the path custom-hardware users and the proxy-comparison
// bench take.

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "util/error.h"

namespace hsconas::core {
namespace {

hwsim::DeviceProfile tiny_npu() {
  hwsim::DeviceProfile p = hwsim::device_by_name("edge");
  p.name = "test-npu";
  p.peak_gflops /= 10.0;
  p.sync_overhead_us = 5.0;
  return p;
}

TEST(PipelineCustomDevice, SearchesAgainstTheSuppliedProfile) {
  PipelineConfig cfg;
  cfg.space = SearchSpaceConfig::imagenet_layout_a();
  cfg.custom_device = tiny_npu();
  cfg.constraint_ms = 120.0;  // the 10x slower profile needs a looser T
  cfg.use_surrogate = true;
  cfg.evolution.generations = 4;
  cfg.evolution.population = 14;
  cfg.evolution.parents = 5;
  cfg.shrink_layers_per_stage = 0;
  cfg.seed = 41;
  Pipeline pipeline(cfg);
  const auto result = pipeline.run();
  EXPECT_NEAR(result.predicted_latency_ms, 120.0, 120.0 * 0.2);
  // The latency model must have been built on the custom profile.
  EXPECT_EQ(pipeline.latency_model().device().profile().name, "test-npu");
}

TEST(PipelineCustomDevice, RequiresExplicitConstraint) {
  PipelineConfig cfg;
  cfg.custom_device = tiny_npu();
  cfg.constraint_ms = 0.0;  // no paper default exists for a custom device
  EXPECT_THROW(Pipeline{cfg}, InvalidArgument);
}

}  // namespace
}  // namespace hsconas::core
