// Determinism contract for parallel candidate evaluation: EvolutionSearch
// and SpaceShrinker breed/draw genomes serially and score them into
// index-ordered slots, so a run with Config::parallel_eval on a pool of N
// workers must be BIT-identical — not merely statistically close — to the
// serial run for the same seed. These tests pin that guarantee.

#include <gtest/gtest.h>

#include "core/accuracy_surrogate.h"
#include "core/evolution.h"
#include "core/space_shrinking.h"
#include "hwsim/registry.h"
#include "util/thread_pool.h"

namespace hsconas::core {
namespace {

struct Fixture {
  SearchSpace space{SearchSpaceConfig::proxy(10, 16, 2)};  // 6 layers
  hwsim::DeviceSimulator device{hwsim::device_by_name("xavier")};
  AccuracySurrogate surrogate{space};
  LatencyModel model{space, device, LatencyModel::Config{4, 20, 17, true}};
  Objective objective{-0.3, 0.0};

  Fixture() {
    util::Rng rng(5);
    double sum = 0.0;
    for (int i = 0; i < 20; ++i) {
      sum += model.predict_ms(Arch::random(space, rng));
    }
    objective.constraint_ms = sum / 20.0;
  }

  AccuracyFn accuracy_fn() {
    return [this](const Arch& a) { return surrogate.accuracy(a); };
  }

  EvolutionSearch::Result run_evolution(bool parallel,
                                        util::ThreadPool* pool) {
    EvolutionSearch::Config cfg;
    cfg.generations = 6;
    cfg.population = 24;
    cfg.parents = 8;
    cfg.seed = 4242;
    cfg.parallel_eval = parallel;
    cfg.pool = pool;
    EvolutionSearch search(space, accuracy_fn(), model, objective, cfg);
    return search.run();
  }
};

void expect_identical(const EvolutionSearch::Result& serial,
                      const EvolutionSearch::Result& parallel) {
  EXPECT_EQ(serial.best.arch, parallel.best.arch);
  EXPECT_EQ(serial.best.score, parallel.best.score);          // exact
  EXPECT_EQ(serial.best.accuracy, parallel.best.accuracy);    // exact
  EXPECT_EQ(serial.best.latency_ms, parallel.best.latency_ms);

  ASSERT_EQ(serial.per_generation.size(), parallel.per_generation.size());
  for (std::size_t g = 0; g < serial.per_generation.size(); ++g) {
    const auto& a = serial.per_generation[g];
    const auto& b = parallel.per_generation[g];
    EXPECT_EQ(a.generation, b.generation);
    EXPECT_EQ(a.best_score, b.best_score) << "generation " << g;
    EXPECT_EQ(a.mean_score, b.mean_score) << "generation " << g;
    EXPECT_EQ(a.best_latency_ms, b.best_latency_ms) << "generation " << g;
    EXPECT_EQ(a.best_accuracy, b.best_accuracy) << "generation " << g;
  }

  ASSERT_EQ(serial.evaluated.size(), parallel.evaluated.size());
  for (std::size_t i = 0; i < serial.evaluated.size(); ++i) {
    EXPECT_EQ(serial.evaluated[i].arch, parallel.evaluated[i].arch)
        << "evaluated " << i;
    EXPECT_EQ(serial.evaluated[i].score, parallel.evaluated[i].score)
        << "evaluated " << i;
  }
}

TEST(EvolutionParallel, ParallelEvalBitIdenticalToSerial) {
  Fixture f;
  const auto serial = f.run_evolution(false, nullptr);

  util::ThreadPool pool(4);
  Fixture f2;  // fresh space/model: identical construction inputs
  const auto parallel = f2.run_evolution(true, &pool);
  expect_identical(serial, parallel);
}

TEST(EvolutionParallel, WorkerCountDoesNotChangeResult) {
  Fixture f;
  util::ThreadPool pool1(1);
  const auto one = f.run_evolution(true, &pool1);  // pool of 1 => serial path

  Fixture f2;
  util::ThreadPool pool7(7);
  const auto seven = f2.run_evolution(true, &pool7);
  expect_identical(one, seven);
}

TEST(EvolutionParallel, RepeatedSerialRunsAreIdentical) {
  // Sanity: the comparison above is meaningful only if the search itself
  // is deterministic for a fixed seed.
  Fixture f1, f2;
  expect_identical(f1.run_evolution(false, nullptr),
                   f2.run_evolution(false, nullptr));
}

TEST(ShrinkerParallel, SubspaceQualityBitIdenticalToSerial) {
  Fixture f1, f2;
  SpaceShrinker::Config serial_cfg{40, 7};
  SpaceShrinker serial(f1.space, f1.accuracy_fn(), f1.model, f1.objective,
                       serial_cfg);

  util::ThreadPool pool(5);
  SpaceShrinker::Config par_cfg{40, 7};
  par_cfg.parallel_eval = true;
  par_cfg.pool = &pool;
  SpaceShrinker parallel(f2.space, f2.accuracy_fn(), f2.model, f2.objective,
                         par_cfg);

  for (int layer : {5, 4}) {
    const auto a = serial.shrink_layer(layer);
    const auto b = parallel.shrink_layer(layer);
    EXPECT_EQ(a.chosen_op, b.chosen_op) << "layer " << layer;
    ASSERT_EQ(a.quality.size(), b.quality.size());
    for (std::size_t i = 0; i < a.quality.size(); ++i) {
      EXPECT_EQ(a.quality[i], b.quality[i])
          << "layer " << layer << " op " << i;
    }
  }
}

}  // namespace
}  // namespace hsconas::core
