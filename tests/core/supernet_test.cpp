#include "core/supernet.h"

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "util/error.h"

namespace hsconas::core {
namespace {

SearchSpaceConfig tiny_config() {
  auto cfg = SearchSpaceConfig::proxy(4, 8, 1);  // 3 layers, 8x8 images
  return cfg;
}

data::SyntheticDataset tiny_dataset() {
  data::SyntheticConfig cfg;
  cfg.num_classes = 4;
  cfg.train_size = 64;
  cfg.val_size = 32;
  cfg.image_size = 8;
  cfg.seed = 33;
  return data::SyntheticDataset(cfg);
}

Arch uniform_arch(const SearchSpace& space, int op, int factor) {
  Arch arch;
  arch.ops.assign(static_cast<std::size_t>(space.num_layers()), op);
  arch.factors.assign(static_cast<std::size_t>(space.num_layers()), factor);
  return arch;
}

TEST(Supernet, ForwardShapeForAnyArch) {
  const SearchSpace space(tiny_config());
  Supernet net(space, 1);
  util::Rng rng(2);
  tensor::Tensor x({2, 3, 8, 8});
  for (int i = 0; i < 5; ++i) {
    const Arch arch = Arch::random(space, rng);
    const tensor::Tensor logits = net.forward(x, arch);
    EXPECT_EQ(logits.shape(), (std::vector<long>{2, 4}));
    EXPECT_TRUE(logits.all_finite());
  }
}

TEST(Supernet, WeightSharingByIdentity) {
  // Two archs that agree on layer 0 must read/write the same parameters:
  // training one must change the other's output.
  const SearchSpace space(tiny_config());
  Supernet net(space, 3);
  const Arch a = uniform_arch(space, 0, 9);
  Arch b = a;
  b.ops[1] = 1;  // differ elsewhere

  tensor::Tensor x({1, 3, 8, 8});
  x.fill(0.3f);
  net.set_training(false);

  // Evaluate b, then perturb a's layer-0 parameters via a training step on
  // a; b's output must change because layer 0 is shared.
  const tensor::Tensor before = net.forward(x, b);
  std::vector<nn::Parameter*> params = net.path_parameters(a);
  for (nn::Parameter* p : params) {
    if (p->name.find("layer0") != std::string::npos) {
      p->value.mul_(1.5f);
    }
  }
  const tensor::Tensor after = net.forward(x, b);
  double diff = 0.0;
  for (long i = 0; i < before.numel(); ++i) {
    diff += std::abs(before.flat()[static_cast<std::size_t>(i)] -
                     after.flat()[static_cast<std::size_t>(i)]);
  }
  EXPECT_GT(diff, 1e-6);
}

TEST(Supernet, ParameterCountCoversAllChoices) {
  const SearchSpace space(tiny_config());
  Supernet full(space, 1);
  Supernet standalone(space, 1, uniform_arch(space, 0, 9));
  // The full supernet holds K operator copies per layer, so strictly more
  // parameters than any standalone subnet.
  EXPECT_GT(full.param_count(), standalone.param_count());
  EXPECT_GT(full.parameters().size(), standalone.parameters().size());
}

TEST(Supernet, PathParametersSubset) {
  const SearchSpace space(tiny_config());
  Supernet net(space, 1);
  util::Rng rng(5);
  const Arch arch = Arch::random(space, rng);
  const auto path = net.path_parameters(arch);
  const auto all = net.parameters();
  EXPECT_LT(path.size(), all.size());
  for (nn::Parameter* p : path) {
    EXPECT_NE(std::find(all.begin(), all.end(), p), all.end());
  }
}

TEST(Supernet, StandaloneRejectsOtherArchs) {
  const SearchSpace space(tiny_config());
  const Arch fixed = uniform_arch(space, 1, 5);
  Supernet net(space, 2, fixed);
  EXPECT_TRUE(net.is_standalone());
  Arch other = fixed;
  other.ops[0] = 2;
  tensor::Tensor x({1, 3, 8, 8});
  EXPECT_THROW(net.forward(x, other), InvalidArgument);
  EXPECT_NO_THROW(net.forward(x));
}

TEST(Supernet, FullSupernetHasNoFixedArch) {
  const SearchSpace space(tiny_config());
  Supernet net(space, 1);
  EXPECT_FALSE(net.is_standalone());
  EXPECT_THROW(net.fixed_arch(), InternalError);
}

TEST(Supernet, BackwardBeforeForwardThrows) {
  const SearchSpace space(tiny_config());
  Supernet net(space, 1);
  tensor::Tensor g({2, 4});
  EXPECT_THROW(net.backward(g), InternalError);
}

TEST(Supernet, EvaluateReturnsFraction) {
  const SearchSpace space(tiny_config());
  Supernet net(space, 1);
  const auto dataset = tiny_dataset();
  util::Rng rng(6);
  const double acc =
      net.evaluate(dataset, Arch::random(space, rng), 16);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(SupernetTrainer, LossDecreasesOnTinyTask) {
  const SearchSpace space(tiny_config());
  Supernet net(space, 11);
  const auto dataset = tiny_dataset();
  TrainConfig cfg;
  cfg.batch_size = 16;
  cfg.lr = 0.05;
  cfg.seed = 4;
  SupernetTrainer trainer(net, dataset, cfg);
  const auto history = trainer.run(6);
  ASSERT_EQ(history.size(), 6u);
  EXPECT_LT(history.back().loss, history.front().loss);
  EXPECT_TRUE(std::isfinite(history.back().loss));
}

TEST(SupernetTrainer, HistoryAccumulatesAcrossRuns) {
  const SearchSpace space(tiny_config());
  Supernet net(space, 11);
  const auto dataset = tiny_dataset();
  TrainConfig cfg;
  cfg.batch_size = 16;
  cfg.lr = 0.05;
  SupernetTrainer trainer(net, dataset, cfg);
  trainer.run(2);
  trainer.run(3, 0.01);
  EXPECT_EQ(trainer.history().size(), 5u);
  EXPECT_EQ(trainer.history().back().epoch, 4);
}

TEST(TrainFromScratch, StandaloneLearnsAboveChance) {
  const SearchSpace space(tiny_config());
  const Arch arch = uniform_arch(space, 0, 9);
  const auto dataset = tiny_dataset();
  TrainConfig cfg;
  cfg.epochs = 12;
  cfg.batch_size = 16;
  cfg.lr = 0.08;
  cfg.seed = 9;
  const auto result = train_from_scratch(space, arch, dataset, cfg);
  // 4 classes -> chance is 0.25; the tiny net must clearly beat it.
  EXPECT_GT(result.val_top1, 0.45);
  EXPECT_EQ(result.history.size(), 12u);
}

TEST(Supernet, MaskedEvaluationDiffersByChannelFactor) {
  const SearchSpace space(tiny_config());
  Supernet net(space, 13);
  tensor::Tensor x({1, 3, 8, 8});
  x.fill(0.4f);
  net.set_training(false);
  const Arch wide = uniform_arch(space, 0, 9);
  const Arch thin = uniform_arch(space, 0, 0);
  const tensor::Tensor yw = net.forward(x, wide);
  const tensor::Tensor yt = net.forward(x, thin);
  double diff = 0.0;
  for (long i = 0; i < yw.numel(); ++i) {
    diff += std::abs(yw.flat()[static_cast<std::size_t>(i)] -
                     yt.flat()[static_cast<std::size_t>(i)]);
  }
  EXPECT_GT(diff, 1e-6);
}

}  // namespace
}  // namespace hsconas::core
