#include "core/arch.h"

#include <gtest/gtest.h>

#include <set>

#include "util/error.h"

namespace hsconas::core {
namespace {

SearchSpace proxy_space() { return SearchSpace(SearchSpaceConfig::proxy()); }

TEST(Arch, RandomIsWellFormed) {
  const SearchSpace space = proxy_space();
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const Arch arch = Arch::random(space, rng);
    EXPECT_NO_THROW(arch.validate(space));
    EXPECT_TRUE(arch.in_space(space));
    EXPECT_EQ(arch.num_layers(), space.num_layers());
  }
}

TEST(Arch, RandomCoversAllGenes) {
  const SearchSpace space = proxy_space();
  util::Rng rng(2);
  std::set<int> ops_seen, factors_seen;
  for (int i = 0; i < 300; ++i) {
    const Arch arch = Arch::random(space, rng);
    ops_seen.insert(arch.ops[0]);
    factors_seen.insert(arch.factors[0]);
  }
  EXPECT_EQ(ops_seen.size(), 5u);
  EXPECT_EQ(factors_seen.size(), 10u);
}

TEST(Arch, RandomRespectsShrunkSpace) {
  SearchSpace space = proxy_space();
  space.fix_op(2, 3);
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const Arch arch = Arch::random(space, rng);
    EXPECT_EQ(arch.ops[2], 3);
  }
}

TEST(Arch, RandomWithFixedOp) {
  const SearchSpace space = proxy_space();
  util::Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const Arch arch = Arch::random_with_fixed_op(space, rng, 1, 4);
    EXPECT_EQ(arch.ops[1], 4);
  }
}

TEST(Arch, HashDistinguishesAndIsStable) {
  const SearchSpace space = proxy_space();
  util::Rng rng(5);
  const Arch a = Arch::random(space, rng);
  Arch b = a;
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_TRUE(a == b);
  b.ops[0] = (b.ops[0] + 1) % 5;
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_FALSE(a == b);
  // Swapping op and factor fields must not collide trivially.
  Arch c = a;
  std::swap(c.ops[0], c.factors[0]);
  if (!(c == a)) {
    EXPECT_NE(c.hash(), a.hash());
  }
}

TEST(Arch, HashCollisionRateLow) {
  const SearchSpace space = proxy_space();
  util::Rng rng(6);
  std::set<std::uint64_t> hashes;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    hashes.insert(Arch::random(space, rng).hash());
  }
  // Some duplicate *archs* can occur; hash count must track arch count.
  EXPECT_GT(hashes.size(), static_cast<std::size_t>(n * 0.95));
}

TEST(Arch, ValidateCatchesCorruption) {
  const SearchSpace space = proxy_space();
  util::Rng rng(7);
  Arch arch = Arch::random(space, rng);
  Arch short_arch = arch;
  short_arch.ops.pop_back();
  EXPECT_THROW(short_arch.validate(space), InvalidArgument);
  Arch bad_op = arch;
  bad_op.ops[0] = 9;
  EXPECT_THROW(bad_op.validate(space), InvalidArgument);
  Arch bad_factor = arch;
  bad_factor.factors[0] = -1;
  EXPECT_THROW(bad_factor.validate(space), InvalidArgument);
}

TEST(Arch, InSpaceReflectsShrinking) {
  SearchSpace space = proxy_space();
  util::Rng rng(8);
  Arch arch = Arch::random(space, rng);
  arch.ops[4] = 1;
  EXPECT_TRUE(arch.in_space(space));
  space.fix_op(4, 2);
  EXPECT_FALSE(arch.in_space(space));
  EXPECT_NO_THROW(arch.validate(space));  // still representable
}

TEST(Arch, ToStringListsEveryLayer) {
  const SearchSpace space = proxy_space();
  Arch arch;
  arch.ops.assign(6, 0);
  arch.factors.assign(6, 9);
  arch.ops[1] = 4;
  const std::string s = arch.to_string(space);
  EXPECT_NE(s.find("shuffle_k3@1.0"), std::string::npos);
  EXPECT_NE(s.find("skip@1.0"), std::string::npos);
  EXPECT_EQ(static_cast<int>(std::count(s.begin(), s.end(), '|')), 5);
}

TEST(Arch, FromStringRoundTrip) {
  const SearchSpace space = proxy_space();
  util::Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    const Arch arch = Arch::random(space, rng);
    const Arch parsed = Arch::from_string(space, arch.to_string(space));
    EXPECT_TRUE(parsed == arch);
  }
}

TEST(Arch, FromStringRejectsMalformedInput) {
  const SearchSpace space = proxy_space();
  EXPECT_THROW(Arch::from_string(space, "bogus@0.5"), InvalidArgument);
  EXPECT_THROW(Arch::from_string(space, "shuffle_k3"), InvalidArgument);
  EXPECT_THROW(Arch::from_string(space, "shuffle_k3@0.55"),
               InvalidArgument);  // factor not in C
  EXPECT_THROW(Arch::from_string(space, "shuffle_k3@abc"), InvalidArgument);
  EXPECT_THROW(Arch::from_string(space, ""), InvalidArgument);
  // Right tokens, wrong layer count.
  EXPECT_THROW(Arch::from_string(space, "shuffle_k3@0.5 | skip@1.0"),
               InvalidArgument);
}

TEST(Arch, JsonSerialization) {
  const SearchSpace space = proxy_space();
  Arch arch;
  arch.ops.assign(6, 2);
  arch.factors.assign(6, 4);
  const std::string json = arch.to_json(space).dump();
  EXPECT_NE(json.find("\"op\": \"shuffle_k7\""), std::string::npos);
  EXPECT_NE(json.find("\"channel_factor\": 0.5"), std::string::npos);
}

}  // namespace
}  // namespace hsconas::core
