#include <gtest/gtest.h>

#include "core/accuracy_surrogate.h"
#include "core/lowering.h"
#include "core/objective.h"

namespace hsconas::core {
namespace {

Arch uniform_arch(const SearchSpace& space, int op, int factor) {
  Arch arch;
  arch.ops.assign(static_cast<std::size_t>(space.num_layers()), op);
  arch.factors.assign(static_cast<std::size_t>(space.num_layers()), factor);
  return arch;
}

TEST(Objective, ScoresExactlyEq1) {
  const Objective obj{-0.3, 34.0};
  // On the constraint: no penalty at all.
  EXPECT_DOUBLE_EQ(obj.score(0.75, 34.0), 0.75);
  // Above T by 50%: acc + beta*0.5.
  EXPECT_DOUBLE_EQ(obj.score(0.75, 51.0), 0.75 - 0.3 * 0.5);
  // Below T penalizes too (the paper's absolute value).
  EXPECT_DOUBLE_EQ(obj.score(0.75, 17.0), 0.75 - 0.3 * 0.5);
}

TEST(Objective, NegativeBetaTradesAccuracyForLatency) {
  const Objective obj{-0.3, 10.0};
  // A slightly less accurate arch at the constraint beats a more accurate
  // one far from it.
  EXPECT_GT(obj.score(0.70, 10.0), obj.score(0.74, 14.0));
}

TEST(AccuracySurrogate, MoreComputeIsMoreAccurate) {
  const SearchSpace space(SearchSpaceConfig::imagenet_layout_a());
  const AccuracySurrogate surrogate(space);
  const double err_narrow =
      surrogate.top1_error(uniform_arch(space, 0, 3));
  const double err_full = surrogate.top1_error(uniform_arch(space, 0, 9));
  EXPECT_GT(err_narrow, err_full);
}

TEST(AccuracySurrogate, DeterministicPerArch) {
  const SearchSpace space(SearchSpaceConfig::imagenet_layout_a());
  const AccuracySurrogate surrogate(space);
  util::Rng rng(1);
  const Arch arch = Arch::random(space, rng);
  EXPECT_DOUBLE_EQ(surrogate.top1_error(arch), surrogate.top1_error(arch));
}

TEST(AccuracySurrogate, CalibratedRange) {
  // Full-width layout A/B candidates must land in the paper's error bands
  // (Table I: HSCoNets are 23.5-25.7 top-1, baselines 24.7-28.0).
  const SearchSpace space_a(SearchSpaceConfig::imagenet_layout_a());
  const AccuracySurrogate sa(space_a);
  const double err_a = sa.top1_error(uniform_arch(space_a, 0, 9));
  EXPECT_GT(err_a, 22.0);
  EXPECT_LT(err_a, 27.0);

  const SearchSpace space_b(SearchSpaceConfig::imagenet_layout_b());
  const AccuracySurrogate sb(space_b);
  const double err_b = sb.top1_error(uniform_arch(space_b, 1, 9));
  EXPECT_GT(err_b, 21.0);
  EXPECT_LT(err_b, 25.0);
  EXPECT_LT(err_b, err_a);  // layout B is bigger and better
}

TEST(AccuracySurrogate, BottleneckPenaltyBitesBelowKnee) {
  const SearchSpace space(SearchSpaceConfig::imagenet_layout_a());
  AccuracySurrogate::Config cfg;
  cfg.noise_sigma = 0.0;
  const AccuracySurrogate surrogate(space, cfg);
  // Factor 0.1 (index 0) vs 0.3 (index 2): beyond the pure-compute trend
  // the sub-knee arch pays the bottleneck penalty on every layer.
  const double err_01 = surrogate.top1_error(uniform_arch(space, 0, 0));
  const double err_03 = surrogate.top1_error(uniform_arch(space, 0, 2));
  const double macs_01 =
      arch_macs(uniform_arch(space, 0, 0), space) / 1e9;
  const double macs_03 =
      arch_macs(uniform_arch(space, 0, 2), space) / 1e9;
  const double compute_only_gap =
      cfg.scale / std::pow(macs_01, cfg.exponent) -
      cfg.scale / std::pow(macs_03, cfg.exponent);
  EXPECT_GT(err_01 - err_03, compute_only_gap + 3.0);
}

TEST(AccuracySurrogate, SkipHeavyArchsPenalized) {
  const SearchSpace space(SearchSpaceConfig::imagenet_layout_a());
  AccuracySurrogate::Config cfg;
  cfg.noise_sigma = 0.0;
  const AccuracySurrogate surrogate(space, cfg);
  const Arch all_skip = uniform_arch(space, 4, 9);
  // 20 skips, 16 beyond budget: at least 16 * skip_penalty extra error on
  // top of the (already severe) compute loss.
  const double err = surrogate.top1_error(all_skip);
  EXPECT_GT(err, 30.0);
}

TEST(AccuracySurrogate, Top5LineMatchesPaperPairs) {
  // (top1, top5) pairs straight from Table I.
  EXPECT_NEAR(AccuracySurrogate::top5_from_top1(25.1), 7.7, 0.35);
  EXPECT_NEAR(AccuracySurrogate::top5_from_top1(23.5), 6.8, 0.35);
  EXPECT_NEAR(AccuracySurrogate::top5_from_top1(26.7), 8.7, 0.35);
  EXPECT_NEAR(AccuracySurrogate::top5_from_top1(24.8), 7.5, 0.35);
}

TEST(AccuracySurrogate, AccuracyIsOneMinusError) {
  const SearchSpace space(SearchSpaceConfig::imagenet_layout_a());
  const AccuracySurrogate surrogate(space);
  util::Rng rng(2);
  const Arch arch = Arch::random(space, rng);
  EXPECT_DOUBLE_EQ(surrogate.accuracy(arch),
                   1.0 - surrogate.top1_error(arch) / 100.0);
}

}  // namespace
}  // namespace hsconas::core
