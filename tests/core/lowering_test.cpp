#include "core/lowering.h"

#include <gtest/gtest.h>

#include "core/supernet.h"
#include "nn/conv2d.h"
#include "util/error.h"

namespace hsconas::core {
namespace {

SearchSpace proxy_space() { return SearchSpace(SearchSpaceConfig::proxy()); }

Arch uniform_arch(const SearchSpace& space, int op, int factor) {
  Arch arch;
  arch.ops.assign(static_cast<std::size_t>(space.num_layers()), op);
  arch.factors.assign(static_cast<std::size_t>(space.num_layers()), factor);
  return arch;
}

TEST(Lowering, NetworkHasStemBodyHead) {
  const SearchSpace space = proxy_space();
  util::Rng rng(1);
  const auto net = lower_network(Arch::random(space, rng), space);
  ASSERT_EQ(net.size(), static_cast<std::size_t>(space.num_layers()) + 2);
  EXPECT_EQ(net.front().name, "stem");
  EXPECT_EQ(net.back().name, "head");
  EXPECT_EQ(net.back().out_channels, space.config().num_classes);
}

TEST(Lowering, GeometryChainsAcrossLayers) {
  const SearchSpace space(SearchSpaceConfig::imagenet_layout_a());
  util::Rng rng(2);
  const auto net = lower_network(Arch::random(space, rng), space);
  // Every layer's first op input spatial dims must match the previous
  // layer's output (skip layers have no ops; track through LayerDesc).
  long h = net.front().out_h;
  long ch = net.front().out_channels;
  for (std::size_t i = 1; i + 1 < net.size(); ++i) {
    if (!net[i].ops.empty()) {
      EXPECT_EQ(net[i].ops.front().in_h, h) << "layer " << i;
      // Stride-1 shuffle blocks split the input and run their branch on
      // half of it; stride-2 branches and stems see the full width.
      const long first_in = net[i].ops.front().in_channels;
      EXPECT_TRUE(first_in == ch || first_in == ch / 2)
          << "layer " << i << ": first op reads " << first_in
          << " channels, previous layer wrote " << ch;
    }
    h = net[i].out_h;
    ch = net[i].out_channels;
  }
}

TEST(Lowering, SkipStride1IsEmptyLayer) {
  const SearchSpace space = proxy_space();
  const LayerInfo& info = space.layer(1);  // stride-1 layer
  ASSERT_EQ(info.stride, 1);
  const auto layer = lower_layer(info, nn::BlockKind::kSkip, 1.0);
  EXPECT_TRUE(layer.ops.empty());
  EXPECT_EQ(layer.out_channels, info.out_channels);
  EXPECT_DOUBLE_EQ(layer.macs(), 0.0);
}

TEST(Lowering, SkipStride2HasProjection) {
  const SearchSpace space = proxy_space();
  const LayerInfo& info = space.layer(2);  // stride-2 layer
  ASSERT_EQ(info.stride, 2);
  const auto layer = lower_layer(info, nn::BlockKind::kSkip, 1.0);
  EXPECT_FALSE(layer.ops.empty());
  EXPECT_GT(layer.macs(), 0.0);
  EXPECT_EQ(layer.out_h, (info.in_h + 1) / 2);
}

TEST(Lowering, ChannelFactorScalesMacsMonotonically) {
  const SearchSpace space = proxy_space();
  const LayerInfo& info = space.layer(1);
  double prev = 0.0;
  for (double c : {0.1, 0.3, 0.5, 0.8, 1.0}) {
    const double macs =
        lower_layer(info, nn::BlockKind::kShuffleK3, c).macs();
    EXPECT_GT(macs, prev);
    prev = macs;
  }
}

TEST(Lowering, KernelSizeIncreasesDepthwiseMacs) {
  const SearchSpace space = proxy_space();
  const LayerInfo& info = space.layer(1);
  const double k3 = lower_layer(info, nn::BlockKind::kShuffleK3, 1.0).macs();
  const double k5 = lower_layer(info, nn::BlockKind::kShuffleK5, 1.0).macs();
  const double k7 = lower_layer(info, nn::BlockKind::kShuffleK7, 1.0).macs();
  EXPECT_GT(k5, k3);
  EXPECT_GT(k7, k5);
}

TEST(Lowering, XceptionHasMoreOpsThanShuffleK3) {
  const SearchSpace space = proxy_space();
  const LayerInfo& info = space.layer(1);
  EXPECT_GT(lower_layer(info, nn::BlockKind::kXception, 1.0).ops.size(),
            lower_layer(info, nn::BlockKind::kShuffleK3, 1.0).ops.size());
}

TEST(Lowering, ParamsMatchTrainingSubstrateAtFullWidth) {
  // The descriptor path (latency/FLOPs) and the nn path (training) must
  // describe the same network: at channel factor 1.0 the conv/linear
  // parameter counts agree exactly. (BN affine params are excluded from
  // descriptor counts by FLOPs-counter convention.)
  const SearchSpace space = proxy_space();
  for (int op = 0; op < 5; ++op) {
    const Arch arch = uniform_arch(space, op, /*factor=*/9);  // 1.0
    const double desc_params = arch_params(arch, space);

    Supernet net(space, 7, arch);
    std::vector<nn::Parameter*> params;
    long nn_params = 0;
    Supernet* raw = &net;
    for (nn::Parameter* p : raw->parameters()) {
      if (p->name.find("gamma") == std::string::npos &&
          p->name.find("beta") == std::string::npos) {
        nn_params += p->numel();
      }
    }
    (void)params;
    EXPECT_DOUBLE_EQ(desc_params, static_cast<double>(nn_params))
        << "op " << op;
  }
}

TEST(Lowering, MacsMatchConvLayerAnalytics) {
  // Cross-check a single lowered conv against nn::Conv2d::macs.
  util::Rng rng(3);
  nn::Conv2d conv(8, 16, 3, 2, 1, 1, false, rng);
  const auto desc = hwsim::OpDescriptor::conv(8, 16, 10, 10, 3, 2);
  EXPECT_DOUBLE_EQ(desc.macs(), static_cast<double>(conv.macs(10, 10)));
}

TEST(Lowering, ArchMacsOrdersArchitecturesSensibly) {
  const SearchSpace space = proxy_space();
  const Arch all_skip = uniform_arch(space, 4, 9);
  const Arch all_k3_narrow = uniform_arch(space, 0, 0);
  const Arch all_k3_full = uniform_arch(space, 0, 9);
  const Arch all_xception = uniform_arch(space, 3, 9);
  const double skip = arch_macs(all_skip, space);
  const double narrow = arch_macs(all_k3_narrow, space);
  const double full = arch_macs(all_k3_full, space);
  const double xcep = arch_macs(all_xception, space);
  EXPECT_LT(skip, narrow);
  EXPECT_LT(narrow, full);
  EXPECT_LT(full, xcep);
}

TEST(Lowering, RejectsForeignArch) {
  const SearchSpace space = proxy_space();
  Arch arch;
  arch.ops.assign(3, 0);  // wrong length
  arch.factors.assign(3, 0);
  EXPECT_THROW(lower_network(arch, space), InvalidArgument);
}

}  // namespace
}  // namespace hsconas::core
