// Tests for the alternative searchers (random, aging evolution) and the
// strict-fair supernet sampling mode.

#include <gtest/gtest.h>

#include <map>

#include "core/accuracy_surrogate.h"
#include "core/searchers.h"
#include "core/supernet.h"
#include "core/trainer.h"
#include "hwsim/registry.h"
#include "util/error.h"

namespace hsconas::core {
namespace {

struct Fixture {
  SearchSpace space{SearchSpaceConfig::imagenet_layout_a()};
  hwsim::DeviceSimulator device{hwsim::device_by_name("xavier")};
  LatencyModel latency{space, device,
                       LatencyModel::Config{16, 20, 41, true}};
  AccuracySurrogate surrogate{space};
  Objective objective{-0.3, 34.0};

  AccuracyFn accuracy_fn() {
    return [this](const Arch& a) { return surrogate.accuracy(a); };
  }
};

TEST(RandomSearch, BestCurveIsMonotone) {
  Fixture f;
  RandomSearch search(f.space, f.accuracy_fn(), f.latency, f.objective,
                      RandomSearch::Config{200, 1});
  const auto result = search.run();
  EXPECT_EQ(result.evaluated.size(), 200u);
  ASSERT_EQ(result.best_curve.size(), 200u);
  for (std::size_t i = 1; i < result.best_curve.size(); ++i) {
    EXPECT_GE(result.best_curve[i], result.best_curve[i - 1]);
  }
  EXPECT_DOUBLE_EQ(result.best_curve.back(), result.best.score);
}

TEST(RandomSearch, Validation) {
  Fixture f;
  EXPECT_THROW(RandomSearch(f.space, f.accuracy_fn(), f.latency, f.objective,
                            RandomSearch::Config{0, 1}),
               InvalidArgument);
}

TEST(AgingEvolution, ImprovesOverItsOwnInitialPopulation) {
  Fixture f;
  AgingEvolution::Config cfg;
  cfg.evaluations = 600;
  cfg.population = 40;
  cfg.tournament = 8;
  cfg.seed = 2;
  AgingEvolution search(f.space, f.accuracy_fn(), f.latency, f.objective,
                        cfg);
  const auto result = search.run();
  EXPECT_EQ(result.evaluated.size(), 600u);
  // Score after the full run must beat the best of the random init.
  EXPECT_GT(result.best.score,
            result.best_curve[static_cast<std::size_t>(cfg.population) - 1]);
}

TEST(AgingEvolution, BeatsRandomAtEqualBudget) {
  Fixture f;
  const int budget = 500;
  AgingEvolution::Config cfg;
  cfg.evaluations = budget;
  cfg.population = 40;
  cfg.tournament = 8;
  cfg.seed = 3;
  AgingEvolution aging(f.space, f.accuracy_fn(), f.latency, f.objective,
                       cfg);
  RandomSearch random(f.space, f.accuracy_fn(), f.latency, f.objective,
                      RandomSearch::Config{budget, 3});
  EXPECT_GE(aging.run().best.score, random.run().best.score);
}

TEST(AgingEvolution, MutationChangesExactlyOneGene) {
  Fixture f;
  AgingEvolution::Config cfg;
  cfg.evaluations = 60;
  cfg.population = 50;
  cfg.tournament = 50;  // parent is always the current best
  cfg.seed = 4;
  AgingEvolution search(f.space, f.accuracy_fn(), f.latency, f.objective,
                        cfg);
  const auto result = search.run();
  // Children after the init phase differ from *some* member in at most one
  // gene slot (op or factor at one layer); verify against their parent by
  // hamming distance over the evaluated log — parent of child i is the
  // best-scoring member among the previous `population` entries.
  for (std::size_t i = 50; i < result.evaluated.size(); ++i) {
    const Arch& child = result.evaluated[i].arch;
    int min_distance = 1 << 20;
    for (std::size_t j = i - 50; j < i; ++j) {
      const Arch& other = result.evaluated[j].arch;
      int d = 0;
      for (int l = 0; l < child.num_layers(); ++l) {
        if (child.ops[static_cast<std::size_t>(l)] !=
            other.ops[static_cast<std::size_t>(l)]) {
          ++d;
        }
        if (child.factors[static_cast<std::size_t>(l)] !=
            other.factors[static_cast<std::size_t>(l)]) {
          ++d;
        }
      }
      min_distance = std::min(min_distance, d);
    }
    EXPECT_LE(min_distance, 1) << "child " << i;
  }
}

TEST(AgingEvolution, RespectsShrunkSpace) {
  Fixture f;
  f.space.fix_op(19, 1);
  AgingEvolution::Config cfg;
  cfg.evaluations = 150;
  cfg.population = 20;
  cfg.tournament = 5;
  cfg.seed = 5;
  AgingEvolution search(f.space, f.accuracy_fn(), f.latency, f.objective,
                        cfg);
  const auto result = search.run();
  for (const auto& c : result.evaluated) {
    EXPECT_EQ(c.arch.ops[19], 1);
  }
}

TEST(AgingEvolution, Validation) {
  Fixture f;
  AgingEvolution::Config cfg;
  cfg.population = 100;
  cfg.evaluations = 50;  // fewer than population
  EXPECT_THROW(
      AgingEvolution(f.space, f.accuracy_fn(), f.latency, f.objective, cfg),
      InvalidArgument);
}

// ------------------------------------------------------ fair sampling ----

TEST(FairSampling, EveryOperatorTrainedOncePerStep) {
  const SearchSpace space(SearchSpaceConfig::proxy(4, 8, 1));
  data::SyntheticConfig dc;
  dc.num_classes = 4;
  dc.train_size = 48;
  dc.val_size = 24;
  dc.image_size = 8;
  const data::SyntheticDataset dataset(dc);

  Supernet net(space, 7);
  TrainConfig tc;
  tc.batch_size = 16;
  tc.fair_sampling = true;
  SupernetTrainer trainer(net, dataset, tc);

  data::DataLoader loader(dataset, 16, true, 2);
  std::vector<Arch> sampled;
  trainer.step_fair(loader.batch(0), 0.05, &sampled);

  const int K = space.config().num_ops;
  ASSERT_EQ(static_cast<int>(sampled.size()), K);
  for (int l = 0; l < space.num_layers(); ++l) {
    std::map<int, int> census;
    for (const Arch& arch : sampled) {
      census[arch.ops[static_cast<std::size_t>(l)]]++;
    }
    // A permutation: every op exactly once.
    EXPECT_EQ(census.size(), static_cast<std::size_t>(K)) << "layer " << l;
    for (const auto& [op, count] : census) EXPECT_EQ(count, 1);
  }
}

TEST(FairSampling, GradientsAccumulateAcrossAllOps) {
  const SearchSpace space(SearchSpaceConfig::proxy(4, 8, 1));
  data::SyntheticConfig dc;
  dc.num_classes = 4;
  dc.train_size = 48;
  dc.val_size = 24;
  dc.image_size = 8;
  const data::SyntheticDataset dataset(dc);

  Supernet net(space, 7);
  TrainConfig tc;
  tc.batch_size = 16;
  SupernetTrainer trainer(net, dataset, tc);
  data::DataLoader loader(dataset, 16, true, 3);

  // Snapshot one weight from every candidate block at one layer; after one
  // fair step, all of them moved (each op got a gradient).
  std::vector<nn::Parameter*> params = net.parameters();
  std::map<std::string, float> before;
  for (nn::Parameter* p : params) {
    if (p->name.rfind("layer1.op", 0) == 0 &&
        p->name.find("weight") != std::string::npos) {
      before[p->name] = p->value.flat()[0];
    }
  }
  ASSERT_GE(before.size(), 4u);  // ops 0-3 have weights; skip has none

  trainer.step_fair(loader.batch(0), 0.1, nullptr);

  for (nn::Parameter* p : params) {
    const auto it = before.find(p->name);
    if (it != before.end()) {
      EXPECT_NE(p->value.flat()[0], it->second) << p->name;
    }
  }
}

TEST(FairSampling, EpochRunsAndLossIsFinite) {
  const SearchSpace space(SearchSpaceConfig::proxy(4, 8, 1));
  data::SyntheticConfig dc;
  dc.num_classes = 4;
  dc.train_size = 48;
  dc.val_size = 24;
  dc.image_size = 8;
  const data::SyntheticDataset dataset(dc);

  Supernet net(space, 9);
  TrainConfig tc;
  tc.batch_size = 16;
  tc.lr = 0.05;
  tc.fair_sampling = true;
  SupernetTrainer trainer(net, dataset, tc);
  const auto history = trainer.run(2);
  ASSERT_EQ(history.size(), 2u);
  for (const auto& e : history) EXPECT_TRUE(std::isfinite(e.loss));
}

TEST(FairSampling, RejectedForStandaloneNetworks) {
  const SearchSpace space(SearchSpaceConfig::proxy(4, 8, 1));
  util::Rng rng(1);
  const Arch arch = Arch::random(space, rng);
  data::SyntheticConfig dc;
  dc.num_classes = 4;
  dc.train_size = 48;
  dc.val_size = 24;
  dc.image_size = 8;
  const data::SyntheticDataset dataset(dc);

  Supernet net(space, 9, arch);
  TrainConfig tc;
  tc.batch_size = 16;
  SupernetTrainer trainer(net, dataset, tc);
  data::DataLoader loader(dataset, 16, true, 4);
  EXPECT_THROW(trainer.step_fair(loader.batch(0), 0.05), InternalError);
}

}  // namespace
}  // namespace hsconas::core
