// Search-core coverage of the int8 quantization axis: the Arch::quant gene,
// dtype-aware hwsim pricing, the latency model's dual LUT, EA/Pareto gene
// handling, and the calibration section of the v3 checkpoint container.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/accuracy_surrogate.h"
#include "core/checkpoint.h"
#include "core/evolution.h"
#include "core/latency_model.h"
#include "core/lowering.h"
#include "core/pareto.h"
#include "hwsim/registry.h"
#include "nn/conv2d.h"
#include "nn/quantize.h"
#include "util/error.h"
#include "util/serial.h"

namespace hsconas::core {
namespace {

SearchSpaceConfig quant_proxy_config() {
  SearchSpaceConfig config = SearchSpaceConfig::proxy();
  config.search_quantization = true;
  return config;
}

/// Full ImageNet-scale space for the accuracy-sensitive tests: proxy archs
/// are so small the surrogate clamps at its 95% error ceiling, flattening
/// the accuracy axis the EA / Pareto assertions depend on.
SearchSpaceConfig quant_imagenet_config() {
  SearchSpaceConfig config = SearchSpaceConfig::imagenet_layout_a();
  config.search_quantization = true;
  return config;
}

struct QuantFixture {
  SearchSpace space{quant_proxy_config()};
  hwsim::DeviceSimulator device{hwsim::device_by_name("xavier")};

  LatencyModel make_model(int bias_samples = 10) {
    LatencyModel::Config cfg;
    cfg.batch = 4;
    cfg.bias_samples = bias_samples;
    cfg.seed = 11;
    return LatencyModel(space, device, cfg);
  }
};

TEST(ArchQuantGene, StringAndJsonRoundTrip) {
  QuantFixture f;
  util::Rng rng(7);
  Arch arch = Arch::random(f.space, rng);
  arch.quant = 1;

  const std::string s = arch.to_string(f.space);
  EXPECT_EQ(s.rfind("int8:: ", 0), 0u) << s;
  const Arch back = Arch::from_string(f.space, s);
  EXPECT_EQ(back, arch);

  Arch fp32 = arch;
  fp32.quant = 0;
  const std::string s32 = fp32.to_string(f.space);
  EXPECT_EQ(s32.find("int8"), std::string::npos);
  EXPECT_EQ(Arch::from_string(f.space, s32), fp32);

  EXPECT_EQ(arch.to_json(f.space)["dtype"].as_string(), "int8");
  EXPECT_EQ(fp32.to_json(f.space)["dtype"].as_string(), "f32");
}

TEST(ArchQuantGene, HashSeparatesDtypesAndPreservesFp32) {
  QuantFixture f;
  util::Rng rng(3);
  Arch arch = Arch::random(f.space, rng);
  arch.quant = 0;
  Arch int8 = arch;
  int8.quant = 1;
  EXPECT_NE(arch.hash(), int8.hash());

  // quant == 0 must hash identically to an arch that never had the gene
  // touched — dedup sets and surrogate residuals of fp32 archs are stable
  // across the quantization feature's introduction.
  Arch untouched;
  untouched.ops = arch.ops;
  untouched.factors = arch.factors;
  EXPECT_EQ(arch.hash(), untouched.hash());
}

TEST(ArchQuantGene, ValidateBoundsAndInSpaceGating) {
  QuantFixture f;
  SearchSpace plain(SearchSpaceConfig::proxy());
  util::Rng rng(5);
  Arch arch = Arch::random(plain, rng);
  EXPECT_EQ(arch.quant, 0);

  arch.quant = 2;
  EXPECT_THROW(arch.validate(plain), InvalidArgument);
  arch.quant = 1;
  EXPECT_NO_THROW(arch.validate(plain));  // representable anywhere...
  EXPECT_FALSE(arch.in_space(plain));     // ...but outside a classic space
  EXPECT_TRUE(arch.in_space(f.space));
}

TEST(ArchQuantGene, RandomDrawsGeneOnlyWhenEnabled) {
  SearchSpace plain(SearchSpaceConfig::proxy());
  QuantFixture f;

  util::Rng rng_plain(42);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(Arch::random(plain, rng_plain).quant, 0);
  }

  util::Rng rng_quant(42);
  int int8_count = 0;
  for (int i = 0; i < 40; ++i) {
    int8_count += Arch::random(f.space, rng_quant).quant;
  }
  EXPECT_GT(int8_count, 5);
  EXPECT_LT(int8_count, 35);

  // The gene is drawn *after* the per-layer genes, so the first sample's
  // layer genes agree across the two spaces under the same seed.
  util::Rng a(99), b(99);
  const Arch from_plain = Arch::random(plain, a);
  const Arch from_quant = Arch::random(f.space, b);
  EXPECT_EQ(from_plain.ops, from_quant.ops);
  EXPECT_EQ(from_plain.factors, from_quant.factors);
}

TEST(HwsimDtype, Int8ShrinksBytesNotMacs) {
  hwsim::OpDescriptor conv =
      hwsim::OpDescriptor::conv(32, 64, 14, 14, 3, 1);
  hwsim::OpDescriptor conv_i8 = conv;
  conv_i8.dtype = hwsim::DataType::kI8;

  EXPECT_DOUBLE_EQ(conv.macs(), conv_i8.macs());
  EXPECT_DOUBLE_EQ(conv.params(), conv_i8.params());
  EXPECT_DOUBLE_EQ(conv.input_bytes(), 4.0 * conv_i8.input_bytes());
  EXPECT_DOUBLE_EQ(conv.output_bytes(), 4.0 * conv_i8.output_bytes());
  EXPECT_DOUBLE_EQ(conv.weight_bytes(), 4.0 * conv_i8.weight_bytes());
  EXPECT_NE(conv_i8.to_string().find("int8"), std::string::npos);
}

TEST(HwsimDtype, DeviceSimulatorPricesInt8Faster) {
  const hwsim::DeviceSimulator device(hwsim::device_by_name("gv100"));
  hwsim::OpDescriptor conv =
      hwsim::OpDescriptor::conv(256, 256, 56, 56, 3, 1);
  hwsim::OpDescriptor conv_i8 = conv;
  conv_i8.dtype = hwsim::DataType::kI8;
  EXPECT_LT(device.op_latency_ms(conv_i8, 32),
            device.op_latency_ms(conv, 32));
}

TEST(HwsimDtype, LoweredQuantArchCarriesInt8Descriptors) {
  QuantFixture f;
  util::Rng rng(13);
  Arch arch = Arch::random(f.space, rng);
  arch.quant = 1;
  const hwsim::NetworkDesc net = lower_network(arch, f.space);
  for (const hwsim::LayerDesc& layer : net) {
    EXPECT_EQ(layer.dtype, hwsim::DataType::kI8);
    for (const hwsim::OpDescriptor& op : layer.ops) {
      EXPECT_EQ(op.dtype, hwsim::DataType::kI8);
    }
  }
  arch.quant = 0;
  const hwsim::NetworkDesc net32 = lower_network(arch, f.space);
  for (const hwsim::LayerDesc& layer : net32) {
    EXPECT_EQ(layer.dtype, hwsim::DataType::kF32);
  }
  // MAC counters are dtype-invariant.
  arch.quant = 1;
  EXPECT_DOUBLE_EQ(arch_macs(arch, f.space),
                   hwsim::network_macs(net32));
}

TEST(LatencyModelQuant, Int8LutIsUniformlyCheaper) {
  QuantFixture f;
  const LatencyModel model = f.make_model();
  ASSERT_TRUE(model.quantized());
  const int K = f.space.config().num_ops;
  const int F =
      static_cast<int>(f.space.config().channel_factors.size());
  for (int l = 0; l < f.space.num_layers(); ++l) {
    for (int op = 0; op < K; ++op) {
      for (int c = 0; c < F; ++c) {
        EXPECT_LE(model.lut_i8_ms(l, op, c), model.lut_ms(l, op, c));
      }
    }
  }
}

TEST(LatencyModelQuant, QuantGeneLowersPrediction) {
  QuantFixture f;
  const LatencyModel model = f.make_model();
  util::Rng rng(21);
  for (int i = 0; i < 10; ++i) {
    Arch arch = Arch::random(f.space, rng);
    arch.quant = 0;
    const double f32_ms = model.predict_ms(arch);
    arch.quant = 1;
    const double i8_ms = model.predict_ms(arch);
    EXPECT_LT(i8_ms, f32_ms);
    // Ground truth agrees: the simulator prices the lowered int8 net.
    EXPECT_LT(model.true_ms(arch), [&] {
      Arch fp = arch;
      fp.quant = 0;
      return model.true_ms(fp);
    }());
  }
}

TEST(LatencyModelQuant, ClassicModelRejectsInt8Archs) {
  SearchSpace plain(SearchSpaceConfig::proxy());
  hwsim::DeviceSimulator device(hwsim::device_by_name("xavier"));
  LatencyModel::Config cfg;
  cfg.batch = 4;
  cfg.bias_samples = 5;
  LatencyModel model(plain, device, cfg);
  EXPECT_FALSE(model.quantized());
  util::Rng rng(2);
  Arch arch = Arch::random(plain, rng);
  arch.quant = 1;
  EXPECT_THROW(model.predict_ms(arch), Error);
  EXPECT_THROW(model.lut_i8_ms(0, 0, 0), Error);
}

TEST(LatencyModelQuant, ExportRestoreRoundTripsBothLuts) {
  QuantFixture f;
  LatencyModel::Config cfg;
  cfg.batch = 4;
  cfg.bias_samples = 10;
  cfg.seed = 11;
  LatencyModel model(f.space, f.device, cfg);

  util::ByteWriter out;
  model.export_state(out);
  util::ByteReader in(out.data());
  const auto restored = LatencyModel::restore(f.space, f.device, cfg, in);
  in.expect_done();

  ASSERT_TRUE(restored->quantized());
  util::Rng rng(17);
  for (int i = 0; i < 8; ++i) {
    Arch arch = Arch::random(f.space, rng);
    EXPECT_DOUBLE_EQ(model.predict_ms(arch), restored->predict_ms(arch));
    arch.quant ^= 1;
    EXPECT_DOUBLE_EQ(model.predict_ms(arch), restored->predict_ms(arch));
  }
}

TEST(LatencyModelQuant, RestoreRejectsQuantMismatch) {
  QuantFixture f;
  LatencyModel::Config cfg;
  cfg.batch = 4;
  cfg.bias_samples = 5;
  cfg.seed = 11;
  const LatencyModel model = f.make_model(5);
  util::ByteWriter out;
  model.export_state(out);

  SearchSpace plain(SearchSpaceConfig::proxy());
  util::ByteReader in(out.data());
  EXPECT_THROW(LatencyModel::restore(plain, f.device, cfg, in), Error);
}

TEST(SurrogateQuant, Int8CostsAccuracy) {
  SearchSpace space(quant_imagenet_config());
  const AccuracySurrogate surrogate(space);
  util::Rng rng(31);
  for (int i = 0; i < 10; ++i) {
    Arch arch = Arch::random(space, rng);
    arch.quant = 0;
    const double acc32 = surrogate.accuracy(arch);
    arch.quant = 1;
    // The residual noise is re-seeded by the (different) int8 hash, so
    // compare against drop ± 2 * noise envelope rather than exactly.
    EXPECT_LT(surrogate.accuracy(arch), acc32);
  }
}

AccuracyFn surrogate_fn(const AccuracySurrogate& s) {
  return [&s](const Arch& arch) { return s.accuracy(arch); };
}

TEST(EvolutionQuant, SearchesBothDtypesAndResumesExactly) {
  SearchSpace f_space(quant_imagenet_config());
  hwsim::DeviceSimulator device(hwsim::device_by_name("xavier"));
  LatencyModel::Config lat_cfg;
  lat_cfg.batch = 4;
  lat_cfg.bias_samples = 10;
  lat_cfg.seed = 11;
  const LatencyModel model(f_space, device, lat_cfg);
  const AccuracySurrogate surrogate(f_space);
  // Anchor the latency constraint at a real operating point of this space
  // so neither dtype is trivially dominant.
  util::Rng probe(1);
  const Objective objective{-0.3,
                            model.predict_ms(Arch::random(f_space, probe))};
  EvolutionSearch::Config cfg;
  cfg.generations = 4;
  cfg.population = 16;
  cfg.parents = 6;
  cfg.seed = 77;

  EvolutionSearch search(f_space, surrogate_fn(surrogate), model,
                         objective, cfg);
  const auto result = search.run();

  int evaluated_i8 = 0;
  for (const auto& c : result.evaluated) evaluated_i8 += c.arch.quant;
  EXPECT_GT(evaluated_i8, 0);
  EXPECT_LT(evaluated_i8, static_cast<int>(result.evaluated.size()));

  // Interrupt/resume: export after generation 1, import into a fresh
  // search, finish — bit-identical winner and trajectory.
  EvolutionSearch first(f_space, surrogate_fn(surrogate), model, objective,
                        cfg);
  util::ByteWriter snapshot;
  bool exported = false;
  first.run([&](int generation) {
    if (generation == 1 && !exported) {
      first.export_state(snapshot);
      exported = true;
    }
  });
  ASSERT_TRUE(exported);

  EvolutionSearch resumed(f_space, surrogate_fn(surrogate), model,
                          objective, cfg);
  util::ByteReader in(snapshot.data());
  resumed.import_state(in);
  in.expect_done();
  const auto resumed_result = resumed.run();
  EXPECT_EQ(resumed_result.best.arch, result.best.arch);
  EXPECT_DOUBLE_EQ(resumed_result.best.score, result.best.score);
}

TEST(ParetoQuant, FrontMixesDtypesWithInt8Cheaper) {
  SearchSpace space(quant_imagenet_config());
  hwsim::DeviceSimulator device(hwsim::device_by_name("xavier"));
  LatencyModel::Config lat_cfg;
  lat_cfg.batch = 4;
  lat_cfg.bias_samples = 10;
  lat_cfg.seed = 11;
  const LatencyModel model(space, device, lat_cfg);
  const AccuracySurrogate surrogate(space);

  ParetoSearch::Config cfg;
  cfg.generations = 6;
  cfg.population = 24;
  cfg.seed = 5150;
  ParetoSearch search(space, surrogate_fn(surrogate), model, cfg);
  const auto result = search.run();

  ASSERT_GE(result.front.size(), 2u);
  int front_i8 = 0;
  for (const auto& c : result.front) {
    front_i8 += c.arch.quant;
    // Every front member's int8 twin is strictly cheaper in latency —
    // the axis the EA exploits.
    Arch twin = c.arch;
    twin.quant = 1;
    Arch fp = c.arch;
    fp.quant = 0;
    EXPECT_LT(model.predict_ms(twin), model.predict_ms(fp));
  }
  // The low-latency end of a mixed front is int8 territory.
  EXPECT_GT(front_i8, 0);
  EXPECT_EQ(result.front.front().arch.quant, 1);
}

TEST(CheckpointQuant, WriterEmitsV3ReaderAcceptsV2) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "hsconas_quant_ckpt")
          .string();
  std::filesystem::create_directories(dir);
  const std::string v3_path = dir + "/v3.ckpt";
  const std::string v2_path = dir + "/v2.ckpt";

  CheckpointWriter writer;
  writer.add_section("payload", std::string("hello"));
  writer.save(v3_path);

  {
    std::ifstream in(v3_path, std::ios::binary);
    std::string file((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    util::ByteReader r(file);
    char magic[4];
    r.bytes(magic, sizeof(magic));
    EXPECT_EQ(r.u32(), 3u);
  }
  EXPECT_EQ(CheckpointReader(v3_path).section("payload"), "hello");

  // Hand-build a version-2 image (unseeded CRCs, the PR-3 format): the
  // reader must still accept it.
  {
    util::ByteWriter image;
    image.bytes("HSCK", 4);
    image.u32(2);
    image.u32(1);
    const std::string name = "payload";
    const std::string payload = "legacy";
    image.str(name);
    image.u64(payload.size());
    image.u32(util::crc32(payload.data(), payload.size(),
                          util::crc32(name.data(), name.size())));
    image.bytes(payload.data(), payload.size());
    std::ofstream out(v2_path, std::ios::binary);
    out.write(image.data().data(),
              static_cast<std::streamsize>(image.data().size()));
  }
  EXPECT_EQ(CheckpointReader(v2_path).section("payload"), "legacy");

  // A v3 file whose version byte is flipped to 2 must fail its CRCs.
  {
    std::ifstream in(v3_path, std::ios::binary);
    std::string file((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    file[4] = 2;
    const std::string mangled = dir + "/mangled.ckpt";
    std::ofstream out(mangled, std::ios::binary);
    out.write(file.data(), static_cast<std::streamsize>(file.size()));
    out.close();
    EXPECT_THROW(CheckpointReader{mangled}, Error);
  }
  std::filesystem::remove_all(dir);
}

TEST(CheckpointQuant, CalibrationSectionRoundTripsThroughContainer) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "hsconas_quant_calib")
          .string();
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/model.ckpt";

  util::Rng rng(7);
  nn::Conv2d conv(8, 12, 3, 1, 1, 1, true, rng, "conv");
  conv.set_training(false);
  const tensor::Tensor batch = tensor::Tensor::normal({2, 8, 9, 9}, 0.0f,
                                                      1.0f, rng);
  ASSERT_EQ(nn::calibrate(conv, {batch}), 1u);

  nn::set_inference_dtype(nn::InferenceDType::kI8);
  const tensor::Tensor y_ref = conv.forward(batch);
  nn::set_inference_dtype(nn::InferenceDType::kF32);

  // Persist params + calibration as sections of one container.
  std::vector<nn::Parameter*> params;
  conv.collect_params(params);
  CheckpointWriter writer;
  writer.add_section("params", write_parameters_payload(params));
  writer.add_section(kCalibrationSection, write_calibration_payload(conv));
  writer.save(path);

  // A fresh model restored from the container reproduces the quantized
  // outputs bit-exactly — weights are re-quantized from the stored scales.
  util::Rng rng2(1234);
  nn::Conv2d restored(8, 12, 3, 1, 1, 1, true, rng2, "conv");
  restored.set_training(false);
  std::vector<nn::Parameter*> restored_params;
  restored.collect_params(restored_params);
  const CheckpointReader reader(path);
  ASSERT_TRUE(reader.has(kCalibrationSection));
  util::ByteReader pin(reader.section("params"));
  read_parameters_payload(restored_params, pin);
  pin.expect_done();
  read_calibration_payload(restored, reader.section(kCalibrationSection));

  nn::set_inference_dtype(nn::InferenceDType::kI8);
  const tensor::Tensor y_restored = restored.forward(batch);
  nn::set_inference_dtype(nn::InferenceDType::kF32);

  ASSERT_EQ(y_restored.numel(), y_ref.numel());
  for (long i = 0; i < y_ref.numel(); ++i) {
    ASSERT_EQ(y_restored.data()[i], y_ref.data()[i]) << "i=" << i;
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace hsconas::core
