#include "core/search_space.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"

namespace hsconas::core {
namespace {

TEST(SearchSpaceConfig, PaperSpaceSizeIs95e33) {
  // |A| = (K · |C|)^L = 50^20 ≈ 9.5 × 10^33 — the §III-A figure.
  const SearchSpaceConfig cfg = SearchSpaceConfig::imagenet_layout_a();
  EXPECT_EQ(cfg.num_layers(), 20);
  EXPECT_EQ(cfg.num_ops, 5);
  EXPECT_EQ(cfg.channel_factors.size(), 10u);
  const double size = std::pow(10.0, cfg.log10_space_size());
  EXPECT_NEAR(size / 9.5e33, 1.0, 0.01);
}

TEST(SearchSpaceConfig, LayoutChannels) {
  const auto a = SearchSpaceConfig::imagenet_layout_a();
  EXPECT_EQ(a.stage_channels, (std::vector<long>{48, 128, 256, 512}));
  const auto b = SearchSpaceConfig::imagenet_layout_b();
  EXPECT_EQ(b.stage_channels, (std::vector<long>{68, 168, 336, 672}));
}

TEST(SearchSpaceConfig, ValidationCatchesNonsense) {
  SearchSpaceConfig cfg;
  cfg.stage_blocks = {4, 4};  // mismatched with channels
  EXPECT_THROW(cfg.validate(), InvalidArgument);

  cfg = SearchSpaceConfig{};
  cfg.stage_channels[0] = 47;  // odd
  EXPECT_THROW(cfg.validate(), InvalidArgument);

  cfg = SearchSpaceConfig{};
  cfg.channel_factors = {0.5, 1.2};  // > 1
  EXPECT_THROW(cfg.validate(), InvalidArgument);

  cfg = SearchSpaceConfig{};
  cfg.num_ops = 99;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

TEST(SearchSpace, LayerGeometryImagenet) {
  const SearchSpace space(SearchSpaceConfig::imagenet_layout_a());
  EXPECT_EQ(space.num_layers(), 20);
  EXPECT_EQ(space.body_input_size(), 112);

  // Layer 0: first block of stage 0, downsampling from the stem.
  EXPECT_EQ(space.layer(0).stride, 2);
  EXPECT_EQ(space.layer(0).in_channels, 16);
  EXPECT_EQ(space.layer(0).out_channels, 48);
  EXPECT_EQ(space.layer(0).in_h, 112);

  // Layer 1: inside stage 0.
  EXPECT_EQ(space.layer(1).stride, 1);
  EXPECT_EQ(space.layer(1).in_channels, 48);
  EXPECT_EQ(space.layer(1).in_h, 56);

  // Stage boundaries: 4, 8, 16 start stages 1..3.
  EXPECT_EQ(space.layer(4).stride, 2);
  EXPECT_EQ(space.layer(4).in_channels, 48);
  EXPECT_EQ(space.layer(4).out_channels, 128);
  EXPECT_EQ(space.layer(8).out_channels, 256);
  EXPECT_EQ(space.layer(16).out_channels, 512);
  // Final feature map: 112 -> 56 -> 28 -> 14 -> 7.
  EXPECT_EQ(space.layer(19).in_h, 7);
}

TEST(SearchSpace, ProxyConfigRunsSmall) {
  const SearchSpace space(SearchSpaceConfig::proxy(10, 16, 2));
  EXPECT_EQ(space.num_layers(), 6);
  EXPECT_EQ(space.body_input_size(), 16);
  EXPECT_EQ(space.layer(0).stride, 1);  // stage 0 keeps resolution
  EXPECT_EQ(space.layer(2).stride, 2);
  EXPECT_EQ(space.config().num_classes, 10);
}

TEST(SearchSpace, TooManyDownsamplesThrows) {
  auto cfg = SearchSpaceConfig::proxy(10, 4, 1);
  cfg.stage_blocks = {1, 1, 1, 1, 1};
  cfg.stage_channels = {8, 8, 8, 8, 8};
  cfg.stage_downsample = {true, true, true, true, true};
  EXPECT_THROW(SearchSpace{cfg}, InvalidArgument);
}

TEST(SearchSpace, FixOpShrinksSize) {
  SearchSpace space(SearchSpaceConfig::proxy());
  const double before = space.log10_size();
  EXPECT_FALSE(space.is_fixed(3));
  space.fix_op(3, 2);
  EXPECT_TRUE(space.is_fixed(3));
  EXPECT_EQ(space.allowed_ops(3), std::vector<int>{2});
  // Fixing one of 5 ops removes log10(5) from the size.
  EXPECT_NEAR(before - space.log10_size(), std::log10(5.0), 1e-9);
}

TEST(SearchSpace, FixOpValidation) {
  SearchSpace space(SearchSpaceConfig::proxy());
  EXPECT_THROW(space.fix_op(0, 7), InvalidArgument);
  EXPECT_THROW(space.fix_op(99, 0), InvalidArgument);
}

TEST(SearchSpace, PaperShrinkRemovesThreeOrdersPerStage) {
  // §III-C: fixing 4 layers' operators removes 5^4 ≈ 3 orders of magnitude.
  SearchSpace space(SearchSpaceConfig::imagenet_layout_a());
  const double initial = space.log10_size();
  for (int l = 19; l >= 16; --l) space.fix_op(l, 0);
  EXPECT_NEAR(initial - space.log10_size(), 4.0 * std::log10(5.0), 1e-9);
  EXPECT_NEAR(4.0 * std::log10(5.0), 2.8, 0.05);  // ~ "three orders"
}

}  // namespace
}  // namespace hsconas::core
