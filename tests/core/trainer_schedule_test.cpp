// Focused tests for the trainer's learning-rate plumbing and epoch
// bookkeeping (the §IV-A recipe details: cosine annealing across runs,
// warm-up, per-stage tuning learning rates).

#include <gtest/gtest.h>

#include "core/supernet.h"
#include "core/trainer.h"

namespace hsconas::core {
namespace {

struct Fixture {
  SearchSpace space{SearchSpaceConfig::proxy(4, 8, 1)};
  data::SyntheticDataset dataset;
  Fixture() : dataset(make_data()) {}
  static data::SyntheticDataset make_data() {
    data::SyntheticConfig cfg;
    cfg.num_classes = 4;
    cfg.train_size = 48;
    cfg.val_size = 24;
    cfg.image_size = 8;
    return data::SyntheticDataset(cfg);
  }
};

TEST(SupernetTrainer, EpochLrFollowsCosineWithinARun) {
  Fixture f;
  Supernet net(f.space, 5);
  TrainConfig tc;
  tc.batch_size = 16;
  tc.lr = 0.4;
  SupernetTrainer trainer(net, f.dataset, tc);
  const auto history = trainer.run(4);
  ASSERT_EQ(history.size(), 4u);
  // Reported per-epoch LR decays monotonically under cosine annealing.
  for (std::size_t e = 1; e < history.size(); ++e) {
    EXPECT_LT(history[e].lr, history[e - 1].lr);
  }
  EXPECT_LT(history.back().lr, 0.1);  // near the end of the cosine
}

TEST(SupernetTrainer, TuningRunUsesItsOwnBaseLr) {
  // The §III-C protocol tunes at 0.01 after stage 1 — run(epochs, lr)
  // must restart the schedule from the given lr, not continue the old one.
  Fixture f;
  Supernet net(f.space, 5);
  TrainConfig tc;
  tc.batch_size = 16;
  tc.lr = 0.4;
  SupernetTrainer trainer(net, f.dataset, tc);
  trainer.run(2);
  const auto tune = trainer.run(2, 0.01);
  EXPECT_LE(tune.front().lr, 0.01 + 1e-12);
}

TEST(SupernetTrainer, EpochIndicesAreGlobal) {
  Fixture f;
  Supernet net(f.space, 5);
  TrainConfig tc;
  tc.batch_size = 16;
  SupernetTrainer trainer(net, f.dataset, tc);
  trainer.run(3);
  const auto more = trainer.run(2, 0.01);
  EXPECT_EQ(more.front().epoch, 3);
  EXPECT_EQ(more.back().epoch, 4);
  EXPECT_EQ(trainer.history().size(), 5u);
}

TEST(SupernetTrainer, WarmupRampsFirstEpochs) {
  Fixture f;
  const Arch arch = [&] {
    util::Rng rng(1);
    return Arch::random(f.space, rng);
  }();
  Supernet net(f.space, 5, arch);
  TrainConfig tc;
  tc.batch_size = 16;
  tc.lr = 0.4;
  tc.warmup_epochs = 2;
  SupernetTrainer trainer(net, f.dataset, tc);
  const auto history = trainer.run(4);
  // Warm-up: epoch 0's final LR is below the base (still ramping).
  EXPECT_LT(history[0].lr, 0.4);
  // After warm-up the cosine phase decays from ~base.
  EXPECT_GT(history[2].lr, history[3].lr);
}

}  // namespace
}  // namespace hsconas::core
