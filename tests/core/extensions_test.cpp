// Tests for the extension modules: energy model (§V future work),
// energy-aware objective & EA, learned latency regressor, Pareto search,
// checkpointing and BN recalibration.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/accuracy_surrogate.h"
#include "core/checkpoint.h"
#include "core/energy_model.h"
#include "core/evolution.h"
#include "core/latency_regression.h"
#include "core/pareto.h"
#include "core/supernet.h"
#include "core/trainer.h"
#include "eval/latency_eval.h"
#include "hwsim/registry.h"
#include "util/error.h"
#include "util/stats.h"

namespace hsconas::core {
namespace {

// NOTE: the fixture uses the ImageNet layout-A space, not the proxy one —
// the accuracy surrogate is calibrated for ImageNet-scale compute and
// saturates on proxy-sized networks (documented contract), which would
// degenerate the accuracy axis of the Pareto tests.
struct Fixture {
  SearchSpace space{SearchSpaceConfig::imagenet_layout_a()};
  hwsim::DeviceSimulator device{hwsim::device_by_name("xavier")};
  hwsim::EnergySimulator energy{hwsim::xavier_energy(), device};
  LatencyModel latency{space, device, LatencyModel::Config{16, 20, 31, true}};
  EnergyModel energy_model{space, energy,
                           EnergyModel::Config{16, 20, 31, true}, &latency};
  AccuracySurrogate surrogate{space};

  AccuracyFn accuracy_fn() {
    return [this](const Arch& a) { return surrogate.accuracy(a); };
  }
};

// ------------------------------------------------------------ EnergyModel --

TEST(EnergyModel, PredictionIsLutSumPlusBias) {
  Fixture f;
  util::Rng rng(1);
  const Arch arch = Arch::random(f.space, rng);
  const double uncorrected = f.energy_model.predict_uncorrected_mj(arch);
  EXPECT_NEAR(f.energy_model.predict_mj(arch),
              uncorrected + f.energy_model.bias_mj(), 1e-12);
}

TEST(EnergyModel, BiasCoversStaticPowerAndLinkTraffic) {
  Fixture f;
  EXPECT_GT(f.energy_model.bias_mj(), 0.0);
}

TEST(EnergyModel, TracksSimulatedMeasurements) {
  Fixture f;
  util::Rng rng(2);
  std::vector<double> predicted, measured;
  for (int i = 0; i < 40; ++i) {
    const Arch arch = Arch::random(f.space, rng);
    predicted.push_back(f.energy_model.predict_mj(arch));
    measured.push_back(f.energy_model.true_mj(arch));
  }
  EXPECT_GT(util::pearson(predicted, measured), 0.95);
  EXPECT_LT(util::rmse(predicted, measured) / util::mean(measured), 0.1);
}

TEST(EnergyModel, MonotoneInChannelFactor) {
  Fixture f;
  for (int l = 0; l < f.space.num_layers(); ++l) {
    for (int op = 0; op < 4; ++op) {
      EXPECT_LE(f.energy_model.lut_mj(l, op, 0),
                f.energy_model.lut_mj(l, op, 9));
    }
  }
}

TEST(EnergyModel, ConfigValidation) {
  Fixture f;
  EnergyModel::Config cfg;
  cfg.batch = 0;
  EXPECT_THROW(EnergyModel(f.space, f.energy, cfg), InvalidArgument);
}

// ------------------------------------------------- energy-aware objective --

TEST(Objective, EnergyTermReducesToEq1WhenDisabled) {
  const Objective obj{-0.3, 34.0};
  EXPECT_FALSE(obj.energy_aware());
  EXPECT_DOUBLE_EQ(obj.score(0.75, 30.0, 999.0), obj.score(0.75, 30.0));
}

TEST(Objective, EnergyTermPenalizesDeviation) {
  Objective obj{-0.3, 34.0};
  obj.gamma = -0.2;
  obj.energy_budget_mj = 100.0;
  EXPECT_TRUE(obj.energy_aware());
  EXPECT_DOUBLE_EQ(obj.score(0.75, 34.0, 100.0), 0.75);
  EXPECT_DOUBLE_EQ(obj.score(0.75, 34.0, 150.0), 0.75 - 0.2 * 0.5);
}

TEST(EvolutionSearch, EnergyAwareSearchRespectsEnergyBudget) {
  Fixture f;
  // Budget set to the median energy of random archs so it binds.
  util::Rng rng(3);
  std::vector<double> energies, latencies;
  for (int i = 0; i < 30; ++i) {
    const Arch arch = Arch::random(f.space, rng);
    energies.push_back(f.energy_model.predict_mj(arch));
    latencies.push_back(f.latency.predict_ms(arch));
  }
  Objective obj;
  obj.beta = -0.3;
  obj.constraint_ms = util::percentile(latencies, 50.0);
  obj.gamma = -0.3;
  obj.energy_budget_mj = util::percentile(energies, 35.0);

  EvolutionSearch::Config cfg;
  cfg.generations = 8;
  cfg.population = 24;
  cfg.parents = 8;
  cfg.seed = 4;
  EvolutionSearch search(f.space, f.accuracy_fn(), f.latency,
                         f.energy_model, obj, cfg);
  const auto result = search.run();
  EXPECT_GT(result.best.energy_mj, 0.0);
  EXPECT_NEAR(result.best.energy_mj, obj.energy_budget_mj,
              obj.energy_budget_mj * 0.15);
}

TEST(EvolutionSearch, EnergyModelWithoutGammaThrows) {
  Fixture f;
  const Objective obj{-0.3, 10.0};  // gamma defaults to 0
  EvolutionSearch::Config cfg;
  EXPECT_THROW(EvolutionSearch(f.space, f.accuracy_fn(), f.latency,
                               f.energy_model, obj, cfg),
               InvalidArgument);
}

// -------------------------------------------------------- LatencyRegressor --

TEST(SolveRidge, RecoversExactSolution) {
  // A = [[2,1],[1,3]], b = A·[1,-2]ᵀ = [0,-5]ᵀ.
  const auto x = solve_ridge({{2, 1}, {1, 3}}, {0, -5}, 0.0);
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], -2.0, 1e-9);
}

TEST(SolveRidge, LambdaShrinksSolution) {
  const auto x0 = solve_ridge({{1, 0}, {0, 1}}, {10, 10}, 0.0);
  const auto x1 = solve_ridge({{1, 0}, {0, 1}}, {10, 10}, 1.0);
  EXPECT_NEAR(x0[0], 10.0, 1e-9);
  EXPECT_NEAR(x1[0], 5.0, 1e-9);
}

TEST(SolveRidge, SingularWithoutLambdaThrows) {
  EXPECT_THROW(solve_ridge({{1, 1}, {1, 1}}, {1, 1}, 0.0), InvalidArgument);
  EXPECT_NO_THROW(solve_ridge({{1, 1}, {1, 1}}, {1, 1}, 0.1));
}

TEST(LatencyRegressor, LearnsTheSimulator) {
  Fixture f;
  LatencyRegressor::Config cfg;
  cfg.train_samples = 400;
  cfg.batch = 16;
  cfg.seed = 7;
  const LatencyRegressor regressor(f.space, f.device, cfg);
  EXPECT_EQ(regressor.num_features(),
            1 + 2 * f.space.num_layers() * f.space.config().num_ops);

  util::Rng rng(8);
  std::vector<double> predicted, measured;
  for (int i = 0; i < 50; ++i) {
    const Arch arch = Arch::random(f.space, rng);
    predicted.push_back(regressor.predict_ms(arch));
    measured.push_back(f.device.network_latency_ms(
        lower_network(arch, f.space), cfg.batch));
  }
  EXPECT_GT(util::pearson(predicted, measured), 0.95);
  EXPECT_LT(util::rmse(predicted, measured) / util::mean(measured), 0.1);
}

TEST(LatencyRegressor, Validation) {
  Fixture f;
  LatencyRegressor::Config cfg;
  cfg.train_samples = 1;
  EXPECT_THROW(LatencyRegressor(f.space, f.device, cfg), InvalidArgument);
}

// ------------------------------------------------------------ ParetoSearch --

TEST(ParetoSearch, DominanceDefinition) {
  ParetoSearch::Candidate a, b;
  a.accuracy = 0.8;
  a.latency_ms = 10;
  b.accuracy = 0.7;
  b.latency_ms = 12;
  EXPECT_TRUE(ParetoSearch::dominates(a, b));
  EXPECT_FALSE(ParetoSearch::dominates(b, a));
  b.accuracy = 0.9;  // now a trade-off pair
  EXPECT_FALSE(ParetoSearch::dominates(a, b));
  EXPECT_FALSE(ParetoSearch::dominates(b, a));
  ParetoSearch::Candidate equal = a;
  EXPECT_FALSE(ParetoSearch::dominates(a, equal));
}

TEST(ParetoSearch, NonDominatedFilter) {
  std::vector<ParetoSearch::Candidate> pop(3);
  pop[0].accuracy = 0.8;
  pop[0].latency_ms = 10;
  pop[1].accuracy = 0.9;
  pop[1].latency_ms = 20;
  pop[2].accuracy = 0.7;
  pop[2].latency_ms = 15;  // dominated by pop[0]
  const auto nd = ParetoSearch::non_dominated(pop);
  EXPECT_EQ(nd, (std::vector<std::size_t>{0, 1}));
}

TEST(ParetoSearch, FrontIsMutuallyNonDominatedAndSorted) {
  Fixture f;
  ParetoSearch::Config cfg;
  cfg.generations = 8;
  cfg.population = 30;
  cfg.seed = 9;
  ParetoSearch search(f.space, f.accuracy_fn(), f.latency, cfg);
  const auto result = search.run();
  ASSERT_GE(result.front.size(), 3u);
  for (std::size_t i = 0; i < result.front.size(); ++i) {
    for (std::size_t j = 0; j < result.front.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(
            ParetoSearch::dominates(result.front[i], result.front[j]));
      }
    }
  }
  for (std::size_t i = 1; i < result.front.size(); ++i) {
    EXPECT_GE(result.front[i].latency_ms, result.front[i - 1].latency_ms);
    // Sorted by latency, accuracy must also be non-decreasing on a front.
    EXPECT_GE(result.front[i].accuracy, result.front[i - 1].accuracy);
  }
}

TEST(ParetoSearch, CoversWiderLatencyRangeThanSingleT) {
  Fixture f;
  ParetoSearch::Config cfg;
  cfg.generations = 8;
  cfg.population = 30;
  cfg.seed = 10;
  ParetoSearch search(f.space, f.accuracy_fn(), f.latency, cfg);
  const auto result = search.run();
  const double span = result.front.back().latency_ms -
                      result.front.front().latency_ms;
  EXPECT_GT(span, result.front.front().latency_ms * 0.3);
  EXPECT_EQ(result.front_size_history.size(), 8u);
}

TEST(ParetoSearch, Validation) {
  Fixture f;
  ParetoSearch::Config cfg;
  cfg.population = 2;
  EXPECT_THROW(ParetoSearch(f.space, f.accuracy_fn(), f.latency, cfg),
               InvalidArgument);
}

// -------------------------------------------------------------- Checkpoint --

TEST(Checkpoint, RoundTripsSupernetWeights) {
  const SearchSpace space(SearchSpaceConfig::proxy(4, 8, 1));
  Supernet original(space, 11);
  Supernet other(space, 99);  // different init

  const std::string path = testing::TempDir() + "/hsconas_ckpt_test.bin";
  save_parameters(original.parameters(), path);
  load_parameters(other.parameters(), path);

  const auto pa = original.parameters();
  const auto pb = other.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->name, pb[i]->name);
    for (long j = 0; j < pa[i]->value.numel(); ++j) {
      ASSERT_EQ(pa[i]->value.flat()[static_cast<std::size_t>(j)],
                pb[i]->value.flat()[static_cast<std::size_t>(j)]);
    }
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, LoadedNetworkReproducesOutputs) {
  const SearchSpace space(SearchSpaceConfig::proxy(4, 8, 1));
  util::Rng rng(12);
  Arch arch = Arch::random(space, rng);
  Supernet a(space, 21, arch);
  Supernet b(space, 77, arch);
  const std::string path = testing::TempDir() + "/hsconas_ckpt_test2.bin";
  save_parameters(a.parameters(), path);
  load_parameters(b.parameters(), path);

  tensor::Tensor x({1, 3, 8, 8});
  x.fill(0.3f);
  a.set_training(false);
  b.set_training(false);
  const tensor::Tensor ya = a.forward(x);
  const tensor::Tensor yb = b.forward(x);
  for (long i = 0; i < ya.numel(); ++i) {
    // BN running stats are not parameters, so outputs agree only through
    // the eval-mode statistics both nets share by construction (fresh 0/1).
    EXPECT_FLOAT_EQ(ya.flat()[static_cast<std::size_t>(i)],
                    yb.flat()[static_cast<std::size_t>(i)]);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, MismatchesFailLoudly) {
  const SearchSpace small(SearchSpaceConfig::proxy(4, 8, 1));
  const SearchSpace big(SearchSpaceConfig::proxy(4, 8, 2));
  Supernet a(small, 1);
  Supernet b(big, 1);
  const std::string path = testing::TempDir() + "/hsconas_ckpt_test3.bin";
  save_parameters(a.parameters(), path);
  EXPECT_THROW(load_parameters(b.parameters(), path), Error);
  EXPECT_THROW(load_parameters(a.parameters(), "/no/such/file"), Error);
  std::remove(path.c_str());
}

// -------------------------------------------------------- BN recalibration --

TEST(Supernet, BnRecalibrationEnablesEvalMode) {
  const SearchSpace space(SearchSpaceConfig::proxy(4, 8, 1));
  data::SyntheticConfig dc;
  dc.num_classes = 4;
  dc.train_size = 96;
  dc.val_size = 48;
  dc.image_size = 8;
  const data::SyntheticDataset dataset(dc);

  Supernet net(space, 31);
  TrainConfig tc;
  tc.batch_size = 24;
  tc.lr = 0.05;
  SupernetTrainer trainer(net, dataset, tc);
  trainer.run(4);

  util::Rng rng(13);
  const Arch arch = Arch::random(space, rng);

  // Without calibration, eval-mode stats are a mixture over all sampled
  // paths; after calibration on this arch's path, eval-mode accuracy must
  // be close to batch-stats accuracy (the sanity bound is loose: tiny net).
  net.calibrate_bn(dataset, arch, 24, 4, 17);
  const double calibrated = net.evaluate_calibrated(dataset, arch, 24);
  const double batch_stats = net.evaluate(dataset, arch, 24);
  EXPECT_GE(calibrated, 0.0);
  EXPECT_LE(calibrated, 1.0);
  EXPECT_NEAR(calibrated, batch_stats, 0.35);
}

TEST(Supernet, VisitReachesBatchNorms) {
  const SearchSpace space(SearchSpaceConfig::proxy(4, 8, 1));
  Supernet net(space, 1);
  int bn_count = 0;
  net.visit([&](nn::Module& m) {
    if (dynamic_cast<nn::BatchNorm2d*>(&m) != nullptr) ++bn_count;
  });
  // stem BN + head BN + every choice block's BNs.
  EXPECT_GT(bn_count, 10);
}

}  // namespace
}  // namespace hsconas::core
