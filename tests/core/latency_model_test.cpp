#include "core/latency_model.h"

#include <gtest/gtest.h>

#include "eval/latency_eval.h"
#include "hwsim/registry.h"
#include "util/error.h"

namespace hsconas::core {
namespace {

struct Fixture {
  SearchSpace space{SearchSpaceConfig::proxy()};
  hwsim::DeviceSimulator device{hwsim::device_by_name("xavier")};

  LatencyModel make_model(int bias_samples = 20) {
    LatencyModel::Config cfg;
    cfg.batch = 4;
    cfg.bias_samples = bias_samples;
    cfg.seed = 11;
    return LatencyModel(space, device, cfg);
  }
};

TEST(LatencyModel, PredictionIsLutSumPlusBias) {
  Fixture f;
  LatencyModel model = f.make_model();
  util::Rng rng(1);
  const Arch arch = Arch::random(f.space, rng);

  double expected = model.stem_ms() + model.head_ms();
  for (int l = 0; l < f.space.num_layers(); ++l) {
    expected += model.lut_ms(l, arch.ops[static_cast<std::size_t>(l)],
                             arch.factors[static_cast<std::size_t>(l)]);
  }
  EXPECT_NEAR(model.predict_uncorrected_ms(arch), expected, 1e-12);
  EXPECT_NEAR(model.predict_ms(arch), expected + model.bias_ms(), 1e-12);
}

TEST(LatencyModel, BiasIsPositiveCommunicationCost) {
  // The simulator charges communication on whole-network runs only, so the
  // Eq. 3 bias must come out positive.
  Fixture f;
  const LatencyModel model = f.make_model();
  EXPECT_GT(model.bias_ms(), 0.0);
}

TEST(LatencyModel, BiasCorrectionShrinksRmse) {
  // Fig. 3's message: with B the estimate tracks on-device latency.
  Fixture f;
  LatencyModel model = f.make_model(40);
  const auto report = eval::evaluate_latency_model(model, 60, 3);
  EXPECT_LT(report.rmse_ms, report.rmse_uncorrected_ms);
  EXPECT_GT(report.pearson, 0.95);
  EXPECT_GT(report.spearman, 0.9);
}

TEST(LatencyModel, RelativeRmseIsSmall) {
  // The paper reports sub-ms RMSE on 10-70 ms networks; our simulator
  // should reproduce the same "B recovers nearly everything" behaviour.
  Fixture f;
  LatencyModel model = f.make_model(40);
  const auto report = eval::evaluate_latency_model(model, 60, 4);
  double mean_measured = 0.0;
  for (const auto& p : report.points) mean_measured += p.measured_ms;
  mean_measured /= static_cast<double>(report.points.size());
  EXPECT_LT(report.rmse_ms / mean_measured, 0.08);
}

TEST(LatencyModel, MeasurementNoiseCanBeDisabled) {
  Fixture f;
  LatencyModel::Config cfg;
  cfg.batch = 4;
  cfg.bias_samples = 5;
  cfg.measurement_noise = false;
  LatencyModel model(f.space, f.device, cfg);
  util::Rng rng(2);
  const Arch arch = Arch::random(f.space, rng);
  const double a = model.measure_ms(arch);
  const double b = model.measure_ms(arch);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, model.true_ms(arch));
}

TEST(LatencyModel, NoisyMeasurementsJitter) {
  Fixture f;
  LatencyModel model = f.make_model();
  util::Rng rng(3);
  const Arch arch = Arch::random(f.space, rng);
  const double a = model.measure_ms(arch);
  const double b = model.measure_ms(arch);
  EXPECT_NE(a, b);
  EXPECT_NEAR(a, model.true_ms(arch), model.true_ms(arch) * 0.2);
}

TEST(LatencyModel, MonotoneInChannelFactorPerLayer) {
  Fixture f;
  const LatencyModel model = f.make_model();
  for (int l = 0; l < f.space.num_layers(); ++l) {
    for (int op = 0; op < 4; ++op) {  // skip (op 4) has flat latency
      EXPECT_LE(model.lut_ms(l, op, 0), model.lut_ms(l, op, 9))
          << "layer " << l << " op " << op;
    }
  }
}

TEST(LatencyModel, SkipIsCheapestOperator) {
  Fixture f;
  const LatencyModel model = f.make_model();
  for (int l = 0; l < f.space.num_layers(); ++l) {
    for (int op = 0; op < 4; ++op) {
      EXPECT_LE(model.lut_ms(l, 4, 9), model.lut_ms(l, op, 9));
    }
  }
}

TEST(LatencyModel, LutIndexValidation) {
  Fixture f;
  const LatencyModel model = f.make_model();
  EXPECT_THROW(model.lut_ms(99, 0, 0), InternalError);
  EXPECT_THROW(model.lut_ms(0, 9, 0), InternalError);
  EXPECT_THROW(model.lut_ms(0, 0, 99), InternalError);
}

TEST(LatencyModel, ConfigValidation) {
  Fixture f;
  LatencyModel::Config cfg;
  cfg.batch = -1;
  EXPECT_THROW(LatencyModel(f.space, f.device, cfg), InvalidArgument);
  cfg.batch = 4;
  cfg.bias_samples = 0;
  EXPECT_THROW(LatencyModel(f.space, f.device, cfg), InvalidArgument);
}

TEST(LatencyModel, BatchZeroMeansDeviceDefaultAndOneIsHonored) {
  // batch == 0 is the "unset" sentinel (resolved to the device profile's
  // default); an explicit batch — 1 included — is used as given.
  Fixture f;
  LatencyModel::Config cfg;
  cfg.bias_samples = 4;
  cfg.batch = 0;
  const LatencyModel defaulted(f.space, f.device, cfg);
  EXPECT_EQ(defaulted.batch(), f.device.profile().default_batch);
  cfg.batch = 1;
  const LatencyModel single(f.space, f.device, cfg);
  EXPECT_EQ(single.batch(), 1);
}

TEST(LatencyModel, KendallTauHighOnProxySpace) {
  // Ranking quality matters more than absolute error for NAS decisions.
  Fixture f;
  LatencyModel model = f.make_model(40);
  const auto report = eval::evaluate_latency_model(model, 50, 5);
  EXPECT_GT(report.kendall_tau, 0.75);
}

}  // namespace
}  // namespace hsconas::core
