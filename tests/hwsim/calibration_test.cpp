// Calibration bridge tests: obs::OpKey -> hwsim::OpDescriptor mapping and
// the profile-vs-simulator comparison report (ratios, drift, rank
// correlation, worst offenders) over synthetic profiler snapshots.

#include "hwsim/calibration.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "hwsim/device.h"
#include "hwsim/registry.h"

namespace hwsim = hsconas::hwsim;
namespace obs = hsconas::obs;

namespace {

obs::OpKey key(const std::string& op, const std::string& kind, long cin,
               long cout, long hw, long kernel = 3, long stride = 1,
               long groups = 1) {
  obs::OpKey k;
  k.op = op;
  k.kind = kind;
  k.batch = 1;
  k.in_ch = cin;
  k.out_ch = cout;
  k.in_h = hw;
  k.in_w = hw;
  k.kernel = kernel;
  k.stride = stride;
  k.groups = groups;
  return k;
}

obs::OpStats stats_for(const obs::OpKey& k, double wall_ms, double flops,
                       double bytes) {
  obs::OpStats st;
  st.key = k;
  st.signature = k.signature();
  st.calls = 4;
  st.flops_per_call = flops;
  st.bytes_per_call = bytes;
  st.wall_ms_total = wall_ms * 4.0;
  st.wall_ms_min = wall_ms;
  st.wall_ms_max = wall_ms;
  st.wall_ms_samples = {wall_ms, wall_ms, wall_ms, wall_ms};
  return st;
}

TEST(OpFromKey, MapsEveryPricedKind) {
  hwsim::OpDescriptor desc;

  ASSERT_TRUE(hwsim::op_from_key(key("conv2d", "conv", 16, 32, 14), &desc));
  EXPECT_EQ(desc.kind, hwsim::OpKind::kConv);
  EXPECT_EQ(desc.in_channels, 16);
  EXPECT_EQ(desc.out_channels, 32);
  EXPECT_EQ(desc.kernel, 3);

  ASSERT_TRUE(hwsim::op_from_key(
      key("conv2d", "dwconv", 32, 32, 14, 5, 2, 32), &desc));
  EXPECT_EQ(desc.kind, hwsim::OpKind::kDepthwiseConv);
  EXPECT_EQ(desc.kernel, 5);
  EXPECT_EQ(desc.stride, 2);

  ASSERT_TRUE(hwsim::op_from_key(key("linear", "linear", 128, 10, 1), &desc));
  EXPECT_EQ(desc.kind, hwsim::OpKind::kLinear);
  EXPECT_EQ(desc.in_channels, 128);
  EXPECT_EQ(desc.out_channels, 10);

  ASSERT_TRUE(hwsim::op_from_key(key("gap", "pool", 64, 64, 7, 7, 7), &desc));
  EXPECT_EQ(desc.kind, hwsim::OpKind::kPool);

  ASSERT_TRUE(hwsim::op_from_key(key("relu", "eltwise", 64, 64, 7), &desc));
  EXPECT_EQ(desc.kind, hwsim::OpKind::kElementwise);

  ASSERT_TRUE(
      hwsim::op_from_key(key("channel_shuffle", "shuffle", 64, 64, 7), &desc));
  EXPECT_EQ(desc.kind, hwsim::OpKind::kShuffle);
}

TEST(OpFromKey, BackwardAndMalformedOpsAreUnpriced) {
  hwsim::OpDescriptor desc;
  // Training-only ops: the device model prices inference.
  EXPECT_FALSE(
      hwsim::op_from_key(key("conv2d.bwd", "conv", 16, 32, 14), &desc));
  EXPECT_FALSE(hwsim::op_from_key(key("relu.bwd", "eltwise", 64, 64, 7),
                                  &desc));
  // Unknown pricing category.
  EXPECT_FALSE(hwsim::op_from_key(key("mystery", "other", 16, 16, 8), &desc));
  // Degenerate geometry.
  EXPECT_FALSE(hwsim::op_from_key(key("conv2d", "conv", 0, 32, 14), &desc));
  EXPECT_FALSE(hwsim::op_from_key(key("conv2d", "conv", 16, 32, 0), &desc));
}

TEST(CompareProfile, PerfectRankingGivesUnitTau) {
  const hwsim::DeviceSimulator device(hwsim::device_by_name("xavier"));
  // Three convs whose measured times follow their true cost ordering; the
  // measured scale (host ms) is far off the simulated-device scale, which
  // must not matter for rank correlation.
  std::vector<obs::OpStats> stats;
  stats.push_back(
      stats_for(key("conv2d", "conv", 8, 8, 8), 0.02, 1e6, 1e5));
  stats.push_back(
      stats_for(key("conv2d", "conv", 32, 32, 16), 0.5, 6e7, 2e6));
  stats.push_back(
      stats_for(key("conv2d", "conv", 64, 64, 32), 7.0, 1e9, 1e7));

  const hwsim::CalibrationReport report =
      hwsim::compare_profile(stats, device);
  EXPECT_EQ(report.priced_ops, 3u);
  EXPECT_EQ(report.unpriced_ops, 0u);
  EXPECT_DOUBLE_EQ(report.kendall_tau, 1.0);
  EXPECT_DOUBLE_EQ(report.spearman_rho, 1.0);
  EXPECT_GT(report.median_ratio, 0.0);
  for (const auto& cmp : report.ops) {
    EXPECT_TRUE(cmp.priced);
    EXPECT_GT(cmp.predicted_ms, 0.0);
    EXPECT_GT(cmp.ratio, 0.0);
  }
}

TEST(CompareProfile, InvertedRankingGivesNegativeTau) {
  const hwsim::DeviceSimulator device(hwsim::device_by_name("xavier"));
  // Same ops, measured times reversed: the cheapest op "measures" slowest.
  std::vector<obs::OpStats> stats;
  stats.push_back(
      stats_for(key("conv2d", "conv", 8, 8, 8), 7.0, 1e6, 1e5));
  stats.push_back(
      stats_for(key("conv2d", "conv", 32, 32, 16), 0.5, 6e7, 2e6));
  stats.push_back(
      stats_for(key("conv2d", "conv", 64, 64, 32), 0.02, 1e9, 1e7));
  const hwsim::CalibrationReport report =
      hwsim::compare_profile(stats, device);
  EXPECT_DOUBLE_EQ(report.kendall_tau, -1.0);
}

TEST(CompareProfile, UnpricedOpsAreKeptButExcludedFromCorrelation) {
  const hwsim::DeviceSimulator device(hwsim::device_by_name("xavier"));
  std::vector<obs::OpStats> stats;
  stats.push_back(stats_for(key("conv2d", "conv", 8, 8, 8), 0.02, 1e6, 1e5));
  stats.push_back(
      stats_for(key("conv2d", "conv", 32, 32, 16), 0.5, 6e7, 2e6));
  stats.push_back(
      stats_for(key("conv2d.bwd", "conv", 32, 32, 16), 1.5, 1e8, 4e6));

  const hwsim::CalibrationReport report =
      hwsim::compare_profile(stats, device);
  EXPECT_EQ(report.priced_ops, 2u);
  EXPECT_EQ(report.unpriced_ops, 1u);
  EXPECT_EQ(report.ops.size(), 3u);
  // Priced rows sort first; the backward op survives for attribution.
  EXPECT_TRUE(report.ops[0].priced);
  EXPECT_TRUE(report.ops[1].priced);
  EXPECT_FALSE(report.ops[2].priced);
}

TEST(CompareProfile, WorstOffendersRankByDriftFromMedianRatio) {
  const hwsim::DeviceSimulator device(hwsim::device_by_name("xavier"));
  std::vector<obs::OpStats> stats;
  // Five ops measuring exactly at prediction except one 50x outlier.
  const long sizes[] = {8, 12, 16, 24, 32};
  for (long c : sizes) {
    hwsim::OpDescriptor desc;
    obs::OpKey k = key("conv2d", "conv", c, c, 14);
    ASSERT_TRUE(hwsim::op_from_key(k, &desc));
    double ms = device.op_latency_ms(desc, 1);
    if (c == 16) ms *= 50.0;
    stats.push_back(stats_for(k, ms, 1e6, 1e5));
  }
  const hwsim::CalibrationReport report =
      hwsim::compare_profile(stats, device);
  const auto worst = report.worst_offenders(2);
  ASSERT_EQ(worst.size(), 2u);
  EXPECT_EQ(worst[0].measured.key.in_ch, 16);
  EXPECT_GT(worst[0].drift, worst[1].drift);
}

TEST(CompareProfile, ComputeBoundFlagFollowsRidgePoint) {
  const hwsim::DeviceProfile profile = hwsim::device_by_name("xavier");
  const hwsim::DeviceSimulator device(profile);
  const double ridge = profile.peak_gflops / profile.mem_bandwidth_gbs;

  std::vector<obs::OpStats> stats;
  stats.push_back(stats_for(key("conv2d", "conv", 8, 8, 8), 0.1,
                            ridge * 2.0 * 1e6, 1e6));  // AI = 2*ridge
  stats.push_back(stats_for(key("conv2d", "conv", 16, 16, 8), 0.1,
                            ridge * 0.5 * 1e6, 1e6));  // AI = ridge/2
  const hwsim::CalibrationReport report =
      hwsim::compare_profile(stats, device);
  ASSERT_EQ(report.ops.size(), 2u);
  bool saw_compute = false, saw_memory = false;
  for (const auto& cmp : report.ops) {
    if (cmp.measured.key.in_ch == 8) {
      saw_compute = cmp.compute_bound;
    } else {
      saw_memory = !cmp.compute_bound;
    }
  }
  EXPECT_TRUE(saw_compute);
  EXPECT_TRUE(saw_memory);
}

TEST(CompareProfile, EmptySnapshotYieldsEmptyReport) {
  const hwsim::DeviceSimulator device(hwsim::device_by_name("xavier"));
  const hwsim::CalibrationReport report = hwsim::compare_profile({}, device);
  EXPECT_TRUE(report.ops.empty());
  EXPECT_EQ(report.priced_ops, 0u);
  EXPECT_DOUBLE_EQ(report.kendall_tau, 0.0);
}

}  // namespace
