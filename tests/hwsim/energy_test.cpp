#include "hwsim/energy.h"

#include <gtest/gtest.h>

#include "hwsim/registry.h"
#include "util/error.h"

namespace hsconas::hwsim {
namespace {

struct Fixture {
  DeviceSimulator device{device_by_name("xavier")};
  EnergySimulator energy{xavier_energy(), device};
};

LayerDesc conv_layer(long ch, long size) {
  LayerDesc layer;
  layer.ops.push_back(OpDescriptor::conv(ch, ch, size, size, 3, 1));
  layer.out_channels = ch;
  layer.out_h = size;
  layer.out_w = size;
  return layer;
}

TEST(EnergySimulator, OpEnergyScalesWithComputeAndBatch) {
  Fixture f;
  const auto small = OpDescriptor::conv(16, 16, 14, 14, 3, 1);
  auto big = small;
  big.kernel = 5;
  EXPECT_GT(f.energy.op_energy_mj(big, 1), f.energy.op_energy_mj(small, 1));
  // Energy is ~linear in batch (no occupancy effects, unlike latency).
  const double e1 = f.energy.op_energy_mj(small, 1);
  const double e8 = f.energy.op_energy_mj(small, 8);
  EXPECT_GT(e8, 6.0 * e1);
  EXPECT_LT(e8, 8.5 * e1);
}

TEST(EnergySimulator, NetworkIncludesStaticPower) {
  Fixture f;
  const NetworkDesc net{conv_layer(32, 14), conv_layer(32, 14)};
  double dynamic = 0.0;
  for (const auto& layer : net) {
    dynamic += f.energy.layer_energy_mj(layer, 1);
  }
  const double total = f.energy.network_energy_mj(net, 1);
  // Static power over the run makes whole-network energy exceed the
  // dynamic LUT sum — the gap the core EnergyModel's bias recovers.
  EXPECT_GT(total, dynamic);
}

TEST(EnergySimulator, PowerIsEnergyOverLatency) {
  Fixture f;
  const NetworkDesc net{conv_layer(64, 28)};
  const double power = f.energy.network_power_w(net, 4);
  EXPECT_GT(power, f.energy.profile().static_watts);  // adds dynamic draw
  EXPECT_LT(power, 200.0);                            // sane magnitude
}

TEST(EnergySimulator, NoiseJittersMeasurement) {
  Fixture f;
  const NetworkDesc net{conv_layer(16, 14)};
  util::Rng rng(1);
  const double clean = f.energy.network_energy_mj(net, 1);
  const double noisy = f.energy.network_energy_mj(net, 1, &rng);
  EXPECT_NE(clean, noisy);
  EXPECT_NEAR(noisy, clean, clean * 0.3);
}

TEST(EnergySimulator, RegistryProfilesResolve) {
  EXPECT_EQ(energy_by_name("gpu").name, "gv100");
  EXPECT_EQ(energy_by_name("CPU").name, "xeon6136");
  EXPECT_EQ(energy_by_name("xavier").name, "xavier");
  EXPECT_THROW(energy_by_name("abacus"), InvalidArgument);
}

TEST(EnergySimulator, EdgeSiliconIsMostEfficientPerFlop) {
  // The Jetson-class profile should burn fewer pJ/flop than the server CPU
  // (that is its reason to exist).
  EXPECT_LT(xavier_energy().pj_per_flop, xeon6136_energy().pj_per_flop);
}

TEST(EnergySimulator, InvalidProfileThrows) {
  Fixture f;
  EnergyProfile bad = xavier_energy();
  bad.pj_per_flop = 0.0;
  EXPECT_THROW(EnergySimulator(bad, f.device), InvalidArgument);
}

TEST(EnergySimulator, BatchValidation) {
  Fixture f;
  EXPECT_THROW(f.energy.op_energy_mj(OpDescriptor::elementwise(1, 1, 1), 0),
               InternalError);
}

}  // namespace
}  // namespace hsconas::hwsim
