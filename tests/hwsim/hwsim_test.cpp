#include <gtest/gtest.h>

#include "hwsim/device.h"
#include "hwsim/op_descriptor.h"
#include "hwsim/registry.h"
#include "util/error.h"

namespace hsconas::hwsim {
namespace {

TEST(OpDescriptor, ConvGeometryAndCounts) {
  const auto conv = OpDescriptor::conv(16, 32, 28, 28, 3, 1);
  EXPECT_EQ(conv.out_h(), 28);
  EXPECT_EQ(conv.out_w(), 28);
  EXPECT_DOUBLE_EQ(conv.macs(), 32.0 * 16 * 9 * 28 * 28);
  EXPECT_DOUBLE_EQ(conv.params(), 32.0 * 16 * 9);
  EXPECT_DOUBLE_EQ(conv.input_bytes(), 4.0 * 16 * 28 * 28);
  EXPECT_DOUBLE_EQ(conv.output_bytes(), 4.0 * 32 * 28 * 28);
}

TEST(OpDescriptor, StrideHalvesOutput) {
  const auto conv = OpDescriptor::conv(8, 8, 28, 28, 3, 2);
  EXPECT_EQ(conv.out_h(), 14);
}

TEST(OpDescriptor, DepthwiseCounts) {
  const auto dw = OpDescriptor::depthwise(32, 14, 14, 5, 1);
  EXPECT_DOUBLE_EQ(dw.macs(), 32.0 * 25 * 14 * 14);
  EXPECT_DOUBLE_EQ(dw.params(), 32.0 * 25);
  EXPECT_EQ(dw.groups, 32);
}

TEST(OpDescriptor, GroupedConvDividesMacs) {
  const auto dense = OpDescriptor::conv(16, 16, 8, 8, 3, 1, 1);
  const auto grouped = OpDescriptor::conv(16, 16, 8, 8, 3, 1, 4);
  EXPECT_DOUBLE_EQ(grouped.macs(), dense.macs() / 4.0);
}

TEST(OpDescriptor, LinearCounts) {
  const auto fc = OpDescriptor::linear(512, 1000);
  EXPECT_DOUBLE_EQ(fc.macs(), 512.0 * 1000);
  EXPECT_DOUBLE_EQ(fc.params(), 512.0 * 1000 + 1000);
  EXPECT_EQ(fc.out_h(), 1);
}

TEST(OpDescriptor, DataMovementOpsHaveNoMacs) {
  EXPECT_DOUBLE_EQ(OpDescriptor::pool(8, 8, 8, 2, 2).macs(), 0.0);
  EXPECT_DOUBLE_EQ(OpDescriptor::elementwise(8, 8, 8).macs(), 0.0);
  EXPECT_DOUBLE_EQ(OpDescriptor::shuffle(8, 8, 8).macs(), 0.0);
  EXPECT_DOUBLE_EQ(OpDescriptor::shuffle(8, 8, 8).params(), 0.0);
}

TEST(OpDescriptor, ExplicitPadOverride) {
  auto gap = OpDescriptor::pool(64, 7, 7, 7, 7);
  gap.pad = 0;
  EXPECT_EQ(gap.out_h(), 1);  // true global pool
  auto same = OpDescriptor::pool(64, 8, 8, 3, 2);
  EXPECT_EQ(same.out_h(), 4);  // default same-padding
}

TEST(LayerDesc, AggregatesOps) {
  LayerDesc layer;
  layer.ops.push_back(OpDescriptor::conv(4, 8, 8, 8, 3, 1));
  layer.ops.push_back(OpDescriptor::depthwise(8, 8, 8, 3, 1));
  layer.out_channels = 8;
  layer.out_h = 8;
  layer.out_w = 8;
  EXPECT_DOUBLE_EQ(layer.macs(),
                   layer.ops[0].macs() + layer.ops[1].macs());
  EXPECT_DOUBLE_EQ(layer.output_bytes(), 4.0 * 8 * 8 * 8);
  NetworkDesc net{layer, layer};
  EXPECT_DOUBLE_EQ(network_macs(net), 2 * layer.macs());
}

// ---------------------------------------------------------------- Device --

DeviceProfile test_profile() {
  DeviceProfile p;
  p.name = "test";
  p.peak_gflops = 1000.0;
  p.mem_bandwidth_gbs = 100.0;
  p.launch_overhead_us = 10.0;
  p.sat_concurrency = 1e4;
  p.base_eff_conv = 0.5;
  p.base_eff_depthwise = 0.25;
  p.link_bandwidth_gbs = 10.0;
  p.sync_overhead_us = 20.0;
  p.noise_sigma = 0.05;
  p.default_batch = 1;
  return p;
}

TEST(DeviceSimulator, LatencyPositiveAndIncludesLaunch) {
  const DeviceSimulator sim(test_profile());
  const auto tiny = OpDescriptor::elementwise(1, 1, 1);
  // Even a trivial op pays the launch overhead.
  EXPECT_GE(sim.op_latency_ms(tiny, 1), 0.01);
}

TEST(DeviceSimulator, ComputeBoundScalesWithMacs) {
  const DeviceSimulator sim(test_profile());
  const auto small = OpDescriptor::conv(64, 64, 28, 28, 3, 1);
  auto big = small;
  big.kernel = 5;  // ~2.8x macs, roughly same bytes
  const double t_small = sim.op_latency_ms(small, 8);
  const double t_big = sim.op_latency_ms(big, 8);
  EXPECT_GT(t_big, t_small * 1.5);
}

TEST(DeviceSimulator, BatchImprovesOccupancy) {
  // Latency per sample must drop with batch size (the §III-A batch note).
  const DeviceSimulator sim(test_profile());
  const auto conv = OpDescriptor::conv(32, 32, 7, 7, 3, 1);
  const double t1 = sim.op_latency_ms(conv, 1);
  const double t32 = sim.op_latency_ms(conv, 32) / 32.0;
  EXPECT_LT(t32, t1);
}

TEST(DeviceSimulator, DepthwiseLessEfficientThanDense) {
  const DeviceSimulator sim(test_profile());
  // Same MAC count: dense 16->16 vs depthwise with 16x the channels.
  const auto dense = OpDescriptor::conv(16, 16, 28, 28, 3, 1);
  const auto dw = OpDescriptor::depthwise(256, 28, 28, 3, 1);
  EXPECT_DOUBLE_EQ(dense.macs(), dw.macs());
  EXPECT_GT(sim.op_latency_ms(dw, 8), sim.op_latency_ms(dense, 8));
}

TEST(DeviceSimulator, NetworkLatencyExceedsLayerSum) {
  // The gap between whole-network and summed isolated layers is exactly
  // the communication cost the paper's bias B recovers.
  const DeviceSimulator sim(test_profile());
  LayerDesc layer;
  layer.ops.push_back(OpDescriptor::conv(16, 16, 28, 28, 3, 1));
  layer.out_channels = 16;
  layer.out_h = 28;
  layer.out_w = 28;
  const NetworkDesc net{layer, layer, layer};
  double lut_sum = 0.0;
  for (const auto& l : net) lut_sum += sim.layer_latency_ms(l, 1);
  const double on_device = sim.network_latency_ms(net, 1);
  EXPECT_GT(on_device, lut_sum);
  EXPECT_NEAR(on_device - lut_sum, sim.communication_ms(net, 1), 1e-12);
}

TEST(DeviceSimulator, NoiseIsMultiplicativeAndBounded) {
  const DeviceSimulator sim(test_profile());
  LayerDesc layer;
  layer.ops.push_back(OpDescriptor::conv(16, 16, 14, 14, 3, 1));
  layer.out_channels = 16;
  layer.out_h = 14;
  layer.out_w = 14;
  const NetworkDesc net{layer};
  const double clean = sim.network_latency_ms(net, 1);
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const double noisy = sim.network_latency_ms(net, 1, &rng);
    EXPECT_GT(noisy, clean * 0.7);
    EXPECT_LT(noisy, clean * 1.3);
    EXPECT_NE(noisy, clean);
  }
}

TEST(DeviceSimulator, InvalidInputs) {
  DeviceProfile bad = test_profile();
  bad.peak_gflops = -1.0;
  EXPECT_THROW(DeviceSimulator{bad}, InvalidArgument);
  bad = test_profile();
  bad.default_batch = 0;
  EXPECT_THROW(DeviceSimulator{bad}, InvalidArgument);
  const DeviceSimulator sim(test_profile());
  EXPECT_THROW(sim.op_latency_ms(OpDescriptor::elementwise(1, 1, 1), 0),
               InternalError);
}

TEST(DeviceSimulator, EltwiseFusionReducesCost) {
  auto profile = test_profile();
  profile.launch_overhead_us = 0.0;
  const DeviceSimulator unfused(profile);
  profile.eltwise_fusion = 0.9;
  const DeviceSimulator fused(profile);
  const auto relu = OpDescriptor::elementwise(256, 56, 56);
  EXPECT_LT(fused.op_latency_ms(relu, 8),
            unfused.op_latency_ms(relu, 8) * 0.2);
}

// -------------------------------------------------------------- Registry --

TEST(Registry, AllDevicesResolve) {
  for (const auto& name : device_names()) {
    const DeviceProfile p = device_by_name(name);
    EXPECT_EQ(p.name, name);
    EXPECT_GT(p.peak_gflops, 0.0);
    EXPECT_GT(default_constraint_ms(name), 0.0);
  }
}

TEST(Registry, AliasesAndCase) {
  EXPECT_EQ(device_by_name("GPU").name, "gv100");
  EXPECT_EQ(device_by_name("cpu").name, "xeon6136");
  EXPECT_EQ(device_by_name("Edge").name, "xavier");
}

TEST(Registry, PaperConstraints) {
  EXPECT_DOUBLE_EQ(default_constraint_ms("gpu"), 9.0);
  EXPECT_DOUBLE_EQ(default_constraint_ms("cpu"), 24.0);
  EXPECT_DOUBLE_EQ(default_constraint_ms("edge"), 34.0);
}

TEST(Registry, PaperBatchSizes) {
  EXPECT_EQ(gv100_profile().default_batch, 32);
  EXPECT_EQ(xeon6136_profile().default_batch, 1);
  EXPECT_EQ(xavier_profile().default_batch, 16);
}

TEST(Registry, UnknownDeviceThrows) {
  EXPECT_THROW(device_by_name("tpu"), InvalidArgument);
  EXPECT_THROW(default_constraint_ms("tpu"), InvalidArgument);
}

}  // namespace
}  // namespace hsconas::hwsim
