// Parameterized invariant sweep across all calibrated device profiles:
// properties that must hold for ANY sane device model, checked on each.

#include <gtest/gtest.h>

#include "baselines/zoo.h"
#include "hwsim/device.h"
#include "hwsim/energy.h"
#include "hwsim/registry.h"

namespace hsconas::hwsim {
namespace {

class DeviceSweep : public ::testing::TestWithParam<std::string> {
 protected:
  DeviceProfile profile() const { return device_by_name(GetParam()); }
};

TEST_P(DeviceSweep, ProfileFieldsAreSane) {
  const DeviceProfile p = profile();
  EXPECT_GT(p.peak_gflops, 0.0);
  EXPECT_GT(p.mem_bandwidth_gbs, 0.0);
  EXPECT_GT(p.link_bandwidth_gbs, 0.0);
  EXPECT_LT(p.link_bandwidth_gbs, p.mem_bandwidth_gbs);
  EXPECT_GE(p.eltwise_fusion, 0.0);
  EXPECT_LE(p.eltwise_fusion, 1.0);
  EXPECT_GT(p.launch_overhead_us, 0.0);
  EXPECT_GE(p.default_batch, 1);
  EXPECT_GT(p.noise_sigma, 0.0);
  EXPECT_LT(p.noise_sigma, 0.1);
}

TEST_P(DeviceSweep, PerSampleLatencyImprovesWithBatch) {
  const DeviceSimulator sim(profile());
  const auto conv = OpDescriptor::conv(64, 64, 14, 14, 3, 1);
  const double t1 = sim.op_latency_ms(conv, 1);
  const double t16 = sim.op_latency_ms(conv, 16) / 16.0;
  EXPECT_LT(t16, t1);
}

TEST_P(DeviceSweep, LatencyMonotoneInBatch) {
  const DeviceSimulator sim(profile());
  const auto conv = OpDescriptor::conv(32, 32, 28, 28, 3, 1);
  double prev = 0.0;
  for (int batch : {1, 2, 4, 8, 16, 32}) {
    const double t = sim.op_latency_ms(conv, batch);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST_P(DeviceSweep, DepthwiseCostsMorePerMacThanDense) {
  // At matched geometry, depthwise work is C× smaller but must not be C×
  // faster — its arithmetic intensity and mapping efficiency are worse on
  // every platform here.
  const DeviceSimulator sim(profile());
  const auto dense = OpDescriptor::conv(64, 64, 14, 14, 3, 1);
  const auto dw = OpDescriptor::depthwise(64, 14, 14, 3, 1);
  const int batch = profile().default_batch;
  const double dense_per_mac =
      sim.op_latency_ms(dense, batch) / dense.macs();
  const double dw_per_mac = sim.op_latency_ms(dw, batch) / dw.macs();
  EXPECT_GT(dw_per_mac, dense_per_mac);
}

TEST_P(DeviceSweep, CommunicationIsPositiveAndSkipFree) {
  const DeviceSimulator sim(profile());
  LayerDesc conv_layer;
  conv_layer.ops.push_back(OpDescriptor::conv(16, 16, 14, 14, 3, 1));
  conv_layer.out_channels = 16;
  conv_layer.out_h = 14;
  conv_layer.out_w = 14;
  LayerDesc skip_layer;  // no ops
  skip_layer.out_channels = 16;
  skip_layer.out_h = 14;
  skip_layer.out_w = 14;

  const NetworkDesc with_skip{conv_layer, skip_layer};
  const NetworkDesc without{conv_layer};
  EXPECT_GT(sim.communication_ms(without, 1), 0.0);
  // The empty (skip) layer adds zero communication.
  EXPECT_DOUBLE_EQ(sim.communication_ms(with_skip, 1),
                   sim.communication_ms(without, 1));
}

TEST_P(DeviceSweep, MobileNetV2LatencyInTableIBallpark) {
  // Coarse sanity band: each profile must put MobileNetV2 within 3x of the
  // paper's measured value on that device (tight agreement is checked by
  // the Table I bench; this guards against calibration regressions).
  const DeviceSimulator sim(profile());
  const auto net = baselines::mobilenet_v2();
  const double ms =
      sim.network_latency_ms(net, profile().default_batch);
  const double paper = GetParam() == "gv100"      ? 11.5
                       : GetParam() == "xeon6136" ? 25.2
                                                  : 61.9;
  EXPECT_GT(ms, paper / 3.0);
  EXPECT_LT(ms, paper * 3.0);
}

TEST_P(DeviceSweep, EnergyProfilesPairUp) {
  const EnergyProfile e = energy_by_name(GetParam());
  EXPECT_EQ(e.name, GetParam());
  const DeviceSimulator device(profile());
  const EnergySimulator energy(e, device);
  const auto net = baselines::mobilenet_v2();
  const double mj =
      energy.network_energy_mj(net, profile().default_batch);
  EXPECT_GT(mj, 0.1);
  EXPECT_LT(mj, 1e5);
  // Mean power must exceed the static floor and stay physically plausible.
  const double watts = energy.network_power_w(net, profile().default_batch);
  EXPECT_GT(watts, e.static_watts);
  EXPECT_LT(watts, 400.0);
}

INSTANTIATE_TEST_SUITE_P(AllDevices, DeviceSweep,
                         ::testing::Values("gv100", "xeon6136", "xavier"),
                         [](const auto& param_info) {
                           return param_info.param;
                         });

}  // namespace
}  // namespace hsconas::hwsim
