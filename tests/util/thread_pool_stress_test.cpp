// ThreadPool / obs concurrency stress tests. These exist primarily for
// the -DHSCONAS_SANITIZE=thread configuration (docs/STATIC_ANALYSIS.md):
// they force real multi-thread interleavings over the pool queue, the
// metrics registry and the per-thread trace rings even on single-core
// CI machines (every pool here is constructed with an explicit thread
// count, never hardware_concurrency).

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace hsconas {
namespace {

TEST(ThreadPoolStress, ParallelForCoversEveryIndexUnderContention) {
  util::ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 257;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " round " << round;
    }
  }
}

TEST(ThreadPoolStress, NestedParallelForUnderContention) {
  util::ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(16, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 8u * 16u);
}

TEST(ThreadPoolStress, WorkerExceptionPropagatesToCaller) {
  util::ThreadPool pool(4);
  // Repeat: the throwing index lands on different threads across rounds.
  for (int round = 0; round < 10; ++round) {
    std::atomic<std::size_t> ran{0};
    try {
      pool.parallel_for(64, [&](std::size_t i) {
        if (i == 31) throw std::runtime_error("iteration 31 failed");
        ran.fetch_add(1, std::memory_order_relaxed);
      });
      FAIL() << "parallel_for swallowed the exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "iteration 31 failed");
    }
    // No iteration ran twice, and the loop quiesced before rethrow.
    EXPECT_LE(ran.load(), 63u);
  }
  // The pool is still healthy after every failed loop.
  std::atomic<std::size_t> ok{0};
  pool.parallel_for(32, [&](std::size_t) {
    ok.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ok.load(), 32u);
}

TEST(ThreadPoolStress, EveryIterationThrowingStillRethrowsOnce) {
  util::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(
                   128, [](std::size_t) { throw std::runtime_error("all"); }),
               std::runtime_error);
}

TEST(ThreadPoolStress, ExplicitShutdownThenDestructorJoinsOnce) {
  util::ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  pool.shutdown();
  pool.shutdown();  // idempotent
  EXPECT_EQ(done.load(), 16);
  // Destructor runs next and must not join again (would terminate).
}

TEST(ThreadPoolStress, MetricsHammeredFromManyThreads) {
  util::ThreadPool pool(4);
  obs::Counter& c = obs::counter("test.stress.counter");
  obs::Gauge& g = obs::gauge("test.stress.gauge");
  obs::Histogram& h = obs::histogram("test.stress.histogram");
  c.reset();
  h.reset();
  pool.parallel_for(4096, [&](std::size_t i) {
    c.add();
    g.set(static_cast<double>(i));
    g.update_max(static_cast<double>(i));
    h.record(static_cast<double>(i % 7) * 0.01);
    // Registration racing against updates must also be clean.
    obs::counter("test.stress.registered." + std::to_string(i % 16)).add();
  });
  EXPECT_EQ(c.value(), 4096u);
  EXPECT_EQ(h.count(), 4096u);
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  EXPECT_EQ(snap.counter_value("test.stress.counter"), 4096u);
}

#if !defined(HSCONAS_TRACING_DISABLED)
TEST(ThreadPoolStress, TraceRingsWithConcurrentSnapshotAndClear) {
  util::ThreadPool pool(4);
  obs::Tracer::clear();
  obs::Tracer::enable();
  // Writers fill per-thread rings past capacity (forcing wraparound)
  // while other iterations snapshot and clear concurrently.
  pool.parallel_for(512, [&](std::size_t i) {
    if (i % 97 == 0) {
      (void)obs::Tracer::snapshot();
      (void)obs::Tracer::dropped();
    } else if (i % 131 == 0) {
      obs::Tracer::clear();
    } else {
      HSCONAS_TRACE_SCOPE("stress.outer");
      HSCONAS_TRACE_SCOPE("stress.inner");
    }
  });
  obs::Tracer::disable();
  // Post-quiesce snapshot must be internally consistent.
  for (const obs::TraceEvent& ev : obs::Tracer::snapshot()) {
    EXPECT_GT(ev.tid, 0u);
    EXPECT_LT(ev.depth, 3u);
  }
  obs::Tracer::clear();
}
#endif

}  // namespace
}  // namespace hsconas
