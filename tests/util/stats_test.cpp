#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace hsconas::util {
namespace {

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(variance(xs), 2.5);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(2.5));
}

TEST(Stats, EmptyAndSingleton) {
  const std::vector<double> empty;
  const std::vector<double> one{42.0};
  EXPECT_DOUBLE_EQ(mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
}

TEST(Stats, RmseOfIdenticalSeriesIsZero) {
  const std::vector<double> xs{1, 2, 3};
  EXPECT_DOUBLE_EQ(rmse(xs, xs), 0.0);
}

TEST(Stats, RmseKnownValue) {
  const std::vector<double> a{0, 0, 0, 0};
  const std::vector<double> b{1, -1, 1, -1};
  EXPECT_DOUBLE_EQ(rmse(a, b), 1.0);
  EXPECT_DOUBLE_EQ(mae(a, b), 1.0);
}

TEST(Stats, RmseSizeMismatchThrows) {
  const std::vector<double> a{1, 2};
  const std::vector<double> b{1};
  EXPECT_THROW(rmse(a, b), hsconas::InternalError);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const std::vector<double> z{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerateIsZero) {
  const std::vector<double> x{1, 1, 1};
  const std::vector<double> y{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(Stats, SpearmanMonotoneNonlinear) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{1, 8, 27, 64, 125};  // x^3, monotone
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Stats, RanksHandleTies) {
  const std::vector<double> xs{10, 20, 20, 30};
  const auto r = ranks(xs);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Stats, KendallTauPerfectAndInverted) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(kendall_tau(x, y), 1.0);
  const std::vector<double> z{40, 30, 20, 10};
  EXPECT_DOUBLE_EQ(kendall_tau(x, z), -1.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
}

TEST(Stats, PercentileValidation) {
  const std::vector<double> xs{1.0};
  // Empty windows are a normal runtime condition on serving/metrics paths
  // (no samples yet) — quiet NaN, never an abort that kills a server.
  EXPECT_TRUE(std::isnan(percentile({}, 50)));
  EXPECT_TRUE(std::isnan(percentile({}, 0)));
  EXPECT_TRUE(std::isnan(percentile({}, 100)));
  // A p outside [0,100] is still a caller bug.
  EXPECT_THROW(percentile(xs, 101), hsconas::InternalError);
  EXPECT_THROW(percentile(xs, -1), hsconas::InternalError);
  EXPECT_THROW(percentile({}, 101), hsconas::InternalError);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i - 7.0);
  }
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, HistogramBinning) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-3.0);  // clamped to bin 0
  h.add(42.0);  // clamped to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_center(1), 3.0);
}

TEST(Stats, HistogramRenderShowsBars) {
  Histogram h(0.0, 1.0, 2);
  for (int i = 0; i < 10; ++i) h.add(0.1);
  h.add(0.9);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("##########"), std::string::npos);
}

TEST(Stats, HistogramInvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 5), hsconas::InternalError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), hsconas::InternalError);
}

TEST(Stats, RunningStatsMatchesBatch) {
  Rng rng(5);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-6);
  EXPECT_DOUBLE_EQ(rs.min(), min_of(xs));
  EXPECT_DOUBLE_EQ(rs.max(), max_of(xs));
}

}  // namespace
}  // namespace hsconas::util
