#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/cli.h"
#include "util/error.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace hsconas::util {
namespace {

TEST(StringUtil, Format) {
  EXPECT_EQ(format("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(format("%.2f", 1.2345), "1.23");
}

TEST(StringUtil, SplitJoin) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join(parts, "/"), "a/b//c");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtil, LowerAndPrefix) {
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_TRUE(starts_with("hsconas", "hsco"));
  EXPECT_FALSE(starts_with("hs", "hsco"));
}

TEST(StringUtil, HumanCount) {
  EXPECT_EQ(human_count(123), "123.00");
  EXPECT_EQ(human_count(1234), "1.23K");
  EXPECT_EQ(human_count(1.5e6), "1.50M");
  EXPECT_EQ(human_count(2.5e9), "2.50G");
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyAndSingle) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(0, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 0);
  pool.parallel_for(1, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, SubmitAndWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&count] { count++; });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 50);
}

// Regression: parallel_for from inside a parallel_for body on the SAME
// pool (the GEMM-inside-parallel-candidate-eval pattern). The old
// implementation had the outer caller block on a pool-wide completion
// count that included its own queued tasks, deadlocking as soon as every
// worker sat inside an outer iteration. Must both terminate and cover
// every (outer, inner) pair exactly once.
TEST(ThreadPool, NestedParallelForFromPoolThreads) {
  ThreadPool pool(4);
  constexpr std::size_t kOuter = 8, kInner = 33;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.parallel_for(kOuter, [&](std::size_t o) {
    pool.parallel_for(kInner, [&](std::size_t i) {
      hits[o * kInner + i]++;
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, TripleNestedParallelFor) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) {
      pool.parallel_for(4, [&](std::size_t) { count++; });
    });
  });
  EXPECT_EQ(count.load(), 64);
}

// Concurrent parallel_for calls issued from independent external threads
// against one shared pool: each loop must see exactly its own indices.
TEST(ThreadPool, ConcurrentParallelForFromExternalThreads) {
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr std::size_t kN = 200;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& v : hits) {
    v = std::vector<std::atomic<int>>(kN);
  }
  std::vector<std::thread> callers;
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&pool, &hits, t] {
      for (int rep = 0; rep < 5; ++rep) {
        pool.parallel_for(kN, [&hits, t](std::size_t i) {
          hits[static_cast<std::size_t>(t)][i]++;
        });
      }
    });
  }
  for (auto& c : callers) c.join();
  for (auto& v : hits) {
    for (auto& h : v) EXPECT_EQ(h.load(), 5);
  }
}

TEST(Table, RendersHeaderRowsAndSections) {
  Table t({"name", "value"});
  t.add_section("group A");
  t.add_row({"alpha", "1"});
  t.add_row({"beta"});  // short row padded
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("group A"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
}

TEST(Cli, ParsesOptionsAndDefaults) {
  Cli cli("test");
  cli.add_option("epochs", "10", "number of epochs");
  cli.add_option("lr", "0.5", "learning rate");
  cli.add_flag("verbose", "chatty output");
  const char* argv[] = {"prog", "--epochs=20", "--verbose"};
  ASSERT_TRUE(cli.parse(3, const_cast<char**>(argv)));
  EXPECT_EQ(cli.get_int("epochs"), 20);
  EXPECT_DOUBLE_EQ(cli.get_double("lr"), 0.5);
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(Cli, SpaceSeparatedValue) {
  Cli cli("test");
  cli.add_option("device", "gpu", "target device");
  const char* argv[] = {"prog", "--device", "cpu"};
  ASSERT_TRUE(cli.parse(3, const_cast<char**>(argv)));
  EXPECT_EQ(cli.get("device"), "cpu");
}

TEST(Cli, UnknownOptionThrows) {
  Cli cli("test");
  cli.add_option("a", "1", "a");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(cli.parse(2, const_cast<char**>(argv)),
               hsconas::InvalidArgument);
}

TEST(Cli, MalformedNumberThrows) {
  Cli cli("test");
  cli.add_option("n", "x", "not a number by default");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, const_cast<char**>(argv)));
  EXPECT_THROW(cli.get_int("n"), hsconas::InvalidArgument);
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli("test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, const_cast<char**>(argv)));
}

}  // namespace
}  // namespace hsconas::util
