#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace hsconas::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, IndexCoversAllValues) {
  Rng rng(3);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, IndexThrowsOnZero) {
  Rng rng(3);
  EXPECT_THROW(rng.index(0), hsconas::InternalError);
}

TEST(Rng, RandintInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.randint(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(sq / n - mean * mean, 1.0, 0.03);
}

TEST(Rng, LognormalJitterMedianNearOne) {
  Rng rng(17);
  std::vector<double> xs;
  for (int i = 0; i < 10001; ++i) xs.push_back(rng.lognormal_jitter(0.05));
  std::nth_element(xs.begin(), xs.begin() + 5000, xs.end());
  EXPECT_NEAR(xs[5000], 1.0, 0.01);
}

TEST(Rng, LognormalJitterZeroSigmaIsExactlyOne) {
  Rng rng(17);
  EXPECT_EQ(rng.lognormal_jitter(0.0), 1.0);
  EXPECT_EQ(rng.lognormal_jitter(-1.0), 1.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(29);
  const auto sample = rng.sample_indices(100, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (std::size_t i : sample) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesFullPermutation) {
  Rng rng(31);
  const auto sample = rng.sample_indices(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(37);
  Rng child = a.fork();
  // The fork must not replay the parent's stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ChoiceThrowsOnEmpty) {
  Rng rng(1);
  std::vector<int> empty;
  EXPECT_THROW(rng.choice(empty), hsconas::InternalError);
}

}  // namespace
}  // namespace hsconas::util
