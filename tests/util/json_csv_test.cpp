#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/csv.h"
#include "util/error.h"
#include "util/json.h"

namespace hsconas::util {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

TEST(Json, Scalars) {
  EXPECT_EQ(Json(nullptr).dump(0), "null");
  EXPECT_EQ(Json(true).dump(0), "true");
  EXPECT_EQ(Json(false).dump(0), "false");
  EXPECT_EQ(Json(42).dump(0), "42");
  EXPECT_EQ(Json(2.5).dump(0), "2.5");
  EXPECT_EQ(Json("hi").dump(0), "\"hi\"");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b\\c\nd").dump(0), "\"a\\\"b\\\\c\\nd\"");
}

TEST(Json, ObjectAndArrayComposition) {
  Json j = Json::object();
  j["name"] = "hsconas";
  j["layers"] = Json::array();
  j["layers"].push_back(1);
  j["layers"].push_back(2);
  const std::string compact = j.dump(0);
  EXPECT_NE(compact.find("\"name\": \"hsconas\""), std::string::npos);
  EXPECT_NE(compact.find("[1,2]") != std::string::npos ||
                compact.find("[ 1, 2 ]") != std::string::npos ||
                compact.find("[12]") != std::string::npos,
            false);
}

TEST(Json, AutoVivifyNullToObjectAndArray) {
  Json j;
  j["k"] = 1;  // null -> object
  EXPECT_TRUE(j.is_object());
  Json a;
  a.push_back(1);  // null -> array
  EXPECT_TRUE(a.is_array());
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::array().dump(2), "[]");
  EXPECT_EQ(Json::object().dump(2), "{}");
}

TEST(Json, SaveWritesFile) {
  const std::string path = testing::TempDir() + "/hsconas_json_test.json";
  Json j = Json::object();
  j["x"] = 7;
  j.save(path);
  const std::string content = read_file(path);
  EXPECT_NE(content.find("\"x\": 7"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Json, SaveToBadPathThrows) {
  Json j = Json::object();
  EXPECT_THROW(j.save("/nonexistent_dir_zz/x.json"), Error);
}

TEST(Csv, WritesQuotedFields) {
  const std::string path = testing::TempDir() + "/hsconas_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.row(std::vector<std::string>{"plain", "with,comma", "with\"quote"});
    csv.row(std::vector<double>{1.0, 2.5});
  }
  const std::string content = read_file(path);
  EXPECT_NE(content.find("plain,\"with,comma\",\"with\"\"quote\""),
            std::string::npos);
  EXPECT_NE(content.find("1,2.5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Csv, BadPathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_zz/x.csv"), Error);
}

// ---- parser (added with the obs subsystem: obs_report re-reads saved
// metrics/trace files, so Json gained a real recursive-descent parser) ----

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("42").as_double(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-2.5e2").as_double(), -250.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, EscapesAndWhitespace) {
  EXPECT_EQ(Json::parse("  \"a\\n\\t\\\"b\\\\\"  ").as_string(),
            "a\n\t\"b\\");
  const Json doc = Json::parse("{ \"k\" : [ 1 , 2 ] }");
  ASSERT_NE(doc.find("k"), nullptr);
  EXPECT_EQ(doc.find("k")->items().size(), 2u);
}

TEST(JsonParse, RoundTripsDumpedDocuments) {
  Json doc = Json::object();
  doc["name"] = "hsconas";
  doc["pi"] = 3.14159;
  doc["flag"] = true;
  doc["none"] = Json(nullptr);
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  Json nested = Json::object();
  nested["deep"] = -7;
  arr.push_back(std::move(nested));
  doc["items"] = std::move(arr);

  // indent 2 and indent 0 must parse back to the same document
  for (int indent : {0, 2}) {
    const Json back = Json::parse(doc.dump(indent));
    EXPECT_EQ(back.find("name")->as_string(), "hsconas");
    EXPECT_DOUBLE_EQ(back.find("pi")->as_double(), 3.14159);
    EXPECT_EQ(back.find("flag")->as_bool(), true);
    EXPECT_TRUE(back.find("none")->is_null());
    const auto& items = back.find("items")->items();
    ASSERT_EQ(items.size(), 3u);
    EXPECT_DOUBLE_EQ(items[0].as_double(), 1.0);
    EXPECT_EQ(items[1].as_string(), "two");
    EXPECT_DOUBLE_EQ(items[2].find("deep")->as_double(), -7.0);
  }
}

TEST(JsonParse, MalformedInputThrows) {
  EXPECT_THROW(Json::parse(""), Error);
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("[1, 2"), Error);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), Error);
  EXPECT_THROW(Json::parse("\"unterminated"), Error);
  EXPECT_THROW(Json::parse("nul"), Error);
  EXPECT_THROW(Json::parse("1 trailing"), Error);
}

TEST(JsonParse, UnicodeEscapesDecodeToUtf8) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");      // é
  EXPECT_EQ(Json::parse("\"\\u20AC\"").as_string(), "\xe2\x82\xac");  // €
  EXPECT_EQ(Json::parse("\"\\u0000\"").as_string(), std::string(1, '\0'));
  // Surrogate pair: U+1F600 as \uD83D\uDE00 -> 4-byte UTF-8.
  EXPECT_EQ(Json::parse("\"\\ud83d\\ude00\"").as_string(),
            "\xf0\x9f\x98\x80");
  // Escapes mix freely with literal text and other escapes.
  EXPECT_EQ(Json::parse("\"a\\u0042c\\n\"").as_string(), "aBc\n");
  // Both hex cases are legal.
  EXPECT_EQ(Json::parse("\"\\u20ac\"").as_string(),
            Json::parse("\"\\u20AC\"").as_string());
}

TEST(JsonParse, MalformedUnicodeEscapesThrow) {
  // Lone surrogates (either half) and broken pairs.
  EXPECT_THROW(Json::parse("\"\\ud83d\""), Error);        // lone high
  EXPECT_THROW(Json::parse("\"\\ude00\""), Error);        // lone low
  EXPECT_THROW(Json::parse("\"\\ud83d x\""), Error);      // high then text
  EXPECT_THROW(Json::parse("\"\\ud83d\\n\""), Error);     // high then escape
  EXPECT_THROW(Json::parse("\"\\ud83d\\u0041\""), Error); // high then BMP
  EXPECT_THROW(Json::parse("\"\\ud83d\\ud83d\""), Error); // high then high
  // Short or non-hex digit runs.
  EXPECT_THROW(Json::parse("\"\\u12\""), Error);
  EXPECT_THROW(Json::parse("\"\\u12g4\""), Error);
  EXPECT_THROW(Json::parse("\"\\u 123\""), Error);
  EXPECT_THROW(Json::parse("\"\\u-123\""), Error);
  EXPECT_THROW(Json::parse("\"\\u123\""), Error);  // closing quote eats slot
}

TEST(JsonParse, DumpedControlCharactersRoundTrip) {
  // dump() emits control characters as \u00XX; parse must invert that.
  Json doc = Json::object();
  doc["ctl"] = std::string("a\x01\x1f") + "b";
  const Json back = Json::parse(doc.dump());
  EXPECT_EQ(back.find("ctl")->as_string(), std::string("a\x01\x1f") + "b");
}

// obs_report and the latency-LUT tooling feed every parsed number into
// arithmetic without re-checking it, so the parser is the line of defense
// against NaN/Inf and lookalike tokens strtod would happily accept.
TEST(JsonParse, RejectsNaNAndInfSpellings) {
  for (const char* bad :
       {"nan", "NaN", "-nan", "inf", "-inf", "Infinity", "-Infinity",
        "[1, nan]", "{\"v\": inf}"}) {
    EXPECT_THROW(Json::parse(bad), Error) << bad;
  }
}

TEST(JsonParse, RejectsOverflowToInfinity) {
  EXPECT_THROW(Json::parse("1e999"), Error);
  EXPECT_THROW(Json::parse("-1e999"), Error);
  EXPECT_THROW(Json::parse("{\"sum_ms\": 2e308}"), Error);
  // Underflow to zero is representable and fine.
  EXPECT_DOUBLE_EQ(Json::parse("1e-999").as_double(), 0.0);
}

TEST(JsonParse, EnforcesStrictNumberGrammar) {
  for (const char* bad : {"+1", "-", ".5", "1.", "01", "0x10", "1e",
                          "1e+", "--2", "1.2.3", "2e3e4"}) {
    EXPECT_THROW(Json::parse(bad), Error) << bad;
  }
  // The awkward-but-legal corners stay accepted.
  EXPECT_DOUBLE_EQ(Json::parse("0").as_double(), 0.0);
  EXPECT_DOUBLE_EQ(Json::parse("-0.5").as_double(), -0.5);
  EXPECT_DOUBLE_EQ(Json::parse("0.25e+2").as_double(), 25.0);
  EXPECT_DOUBLE_EQ(Json::parse("9e-2").as_double(), 0.09);
}

TEST(JsonParse, RejectsTrailingGarbageEverywhere) {
  for (const char* bad : {"1 trailing", "{} x", "[] []", "42,",
                          "\"s\" \"t\"", "null null", "3.5e2 7"}) {
    EXPECT_THROW(Json::parse(bad), Error) << bad;
  }
  // Pure trailing whitespace is not garbage.
  EXPECT_DOUBLE_EQ(Json::parse(" 42 \n\t").as_double(), 42.0);
}

TEST(JsonDump, NonFiniteValuesSerializeAsNull) {
  Json doc = Json::object();
  doc["bad"] = std::numeric_limits<double>::quiet_NaN();
  doc["worse"] = std::numeric_limits<double>::infinity();
  doc["fine"] = 1.5;
  const Json back = Json::parse(doc.dump());  // must not throw
  EXPECT_TRUE(back.find("bad")->is_null());
  EXPECT_TRUE(back.find("worse")->is_null());
  EXPECT_DOUBLE_EQ(back.find("fine")->as_double(), 1.5);
}

TEST(JsonParse, TypedAccessorsThrowOnWrongType) {
  const Json n(1.5);
  EXPECT_THROW(n.as_string(), Error);
  EXPECT_THROW(n.as_bool(), Error);
  EXPECT_EQ(n.find("k"), nullptr);  // find on a non-object: absent, no throw
}

TEST(JsonParse, LoadReadsSavedFile) {
  const std::string path = testing::TempDir() + "/hsconas_json_load.json";
  Json doc = Json::object();
  doc["answer"] = 42;
  doc.save(path);
  const Json back = Json::load(path);
  EXPECT_DOUBLE_EQ(back.find("answer")->as_double(), 42.0);
  std::remove(path.c_str());
  EXPECT_THROW(Json::load(path), Error);  // gone now
}

}  // namespace
}  // namespace hsconas::util
