#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/error.h"
#include "util/json.h"

namespace hsconas::util {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

TEST(Json, Scalars) {
  EXPECT_EQ(Json(nullptr).dump(0), "null");
  EXPECT_EQ(Json(true).dump(0), "true");
  EXPECT_EQ(Json(false).dump(0), "false");
  EXPECT_EQ(Json(42).dump(0), "42");
  EXPECT_EQ(Json(2.5).dump(0), "2.5");
  EXPECT_EQ(Json("hi").dump(0), "\"hi\"");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b\\c\nd").dump(0), "\"a\\\"b\\\\c\\nd\"");
}

TEST(Json, ObjectAndArrayComposition) {
  Json j = Json::object();
  j["name"] = "hsconas";
  j["layers"] = Json::array();
  j["layers"].push_back(1);
  j["layers"].push_back(2);
  const std::string compact = j.dump(0);
  EXPECT_NE(compact.find("\"name\": \"hsconas\""), std::string::npos);
  EXPECT_NE(compact.find("[1,2]") != std::string::npos ||
                compact.find("[ 1, 2 ]") != std::string::npos ||
                compact.find("[12]") != std::string::npos,
            false);
}

TEST(Json, AutoVivifyNullToObjectAndArray) {
  Json j;
  j["k"] = 1;  // null -> object
  EXPECT_TRUE(j.is_object());
  Json a;
  a.push_back(1);  // null -> array
  EXPECT_TRUE(a.is_array());
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::array().dump(2), "[]");
  EXPECT_EQ(Json::object().dump(2), "{}");
}

TEST(Json, SaveWritesFile) {
  const std::string path = testing::TempDir() + "/hsconas_json_test.json";
  Json j = Json::object();
  j["x"] = 7;
  j.save(path);
  const std::string content = read_file(path);
  EXPECT_NE(content.find("\"x\": 7"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Json, SaveToBadPathThrows) {
  Json j = Json::object();
  EXPECT_THROW(j.save("/nonexistent_dir_zz/x.json"), Error);
}

TEST(Csv, WritesQuotedFields) {
  const std::string path = testing::TempDir() + "/hsconas_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.row(std::vector<std::string>{"plain", "with,comma", "with\"quote"});
    csv.row(std::vector<double>{1.0, 2.5});
  }
  const std::string content = read_file(path);
  EXPECT_NE(content.find("plain,\"with,comma\",\"with\"\"quote\""),
            std::string::npos);
  EXPECT_NE(content.find("1,2.5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Csv, BadPathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_zz/x.csv"), Error);
}

}  // namespace
}  // namespace hsconas::util
