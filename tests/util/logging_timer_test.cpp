#include <gtest/gtest.h>

#include <thread>

#include "util/logging.h"
#include "util/timer.h"

namespace hsconas::util {
namespace {

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.millis(), 15.0);
  EXPECT_LT(timer.seconds(), 5.0);
  timer.reset();
  EXPECT_LT(timer.millis(), 15.0);
}

TEST(Logging, LevelThresholdFilters) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold messages must be dropped silently (no crash, no way to
  // observe stderr here — this pins the API contract).
  log_message(LogLevel::kDebug, "dropped");
  log_message(LogLevel::kInfo, "dropped");
  set_log_level(LogLevel::kOff);
  log_message(LogLevel::kError, "dropped too");
  set_log_level(saved);
}

TEST(Logging, StreamMacroBuildsMessage) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kOff);  // keep test output clean
  HSCONAS_LOG_INFO << "x = " << 42 << ", y = " << 1.5;
  set_log_level(saved);
  SUCCEED();
}

}  // namespace
}  // namespace hsconas::util
