#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/error.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/timer.h"

namespace hsconas::util {
namespace {

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.millis(), 15.0);
  EXPECT_LT(timer.seconds(), 5.0);
  timer.reset();
  EXPECT_LT(timer.millis(), 15.0);
}

TEST(Logging, LevelThresholdFilters) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold messages must be dropped silently (no crash, no way to
  // observe stderr here — this pins the API contract).
  log_message(LogLevel::kDebug, "dropped");
  log_message(LogLevel::kInfo, "dropped");
  set_log_level(LogLevel::kOff);
  log_message(LogLevel::kError, "dropped too");
  set_log_level(saved);
}

TEST(Logging, StreamMacroBuildsMessage) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kOff);  // keep test output clean
  HSCONAS_LOG_INFO << "x = " << 42 << ", y = " << 1.5;
  set_log_level(saved);
  SUCCEED();
}

TEST(Timer, LapReturnsElapsedAndRestarts) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double lap1 = timer.reset_and_lap();
  EXPECT_GE(lap1, 0.015);
  // The lap restarted the clock: immediately after, almost nothing elapsed.
  EXPECT_LT(timer.millis(), 15.0);
  const double lap2_ms = timer.lap_millis();
  EXPECT_GE(lap2_ms, 0.0);
  EXPECT_LT(lap2_ms, 15.0);
}

TEST(Logging, ParseLogLevel) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_THROW(parse_log_level("verbose"), Error);
}

namespace {
std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream f(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(f, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}
}  // namespace

TEST(Logging, JsonlSinkRecordsStructuredFields) {
  const std::string path = testing::TempDir() + "/hsconas_log_sink.jsonl";
  std::remove(path.c_str());
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kInfo);
  set_log_sink(path);

  log_message(LogLevel::kInfo, "plain record");
  log_message(LogLevel::kWarn, "with fields",
              {{"epoch", "3"}, {"loss", "0.42"}});
  (HSCONAS_LOG_INFO << "stream record").kv("layer", 7).kv("op", "mb_k3");
  log_message(LogLevel::kDebug, "below threshold, not sunk");

  clear_log_sink();
  set_log_level(saved);

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);  // the debug record was filtered

  // Every line is one standalone JSON object with the expected schema.
  const Json first = Json::parse(lines[0]);
  EXPECT_EQ(first.find("msg")->as_string(), "plain record");
  EXPECT_EQ(first.find("level")->as_string(), "info");
  EXPECT_GE(first.find("ts_s")->as_double(), 0.0);

  const Json second = Json::parse(lines[1]);
  EXPECT_EQ(second.find("level")->as_string(), "warn");
  ASSERT_NE(second.find("fields"), nullptr);
  EXPECT_EQ(second.find("fields")->find("epoch")->as_string(), "3");
  EXPECT_EQ(second.find("fields")->find("loss")->as_string(), "0.42");

  const Json third = Json::parse(lines[2]);
  EXPECT_EQ(third.find("msg")->as_string(), "stream record");
  EXPECT_EQ(third.find("fields")->find("layer")->as_string(), "7");
  EXPECT_EQ(third.find("fields")->find("op")->as_string(), "mb_k3");

  std::remove(path.c_str());
}

TEST(Logging, ConcurrentWritersNeverInterleaveRecords) {
  const std::string path = testing::TempDir() + "/hsconas_log_mt.jsonl";
  std::remove(path.c_str());
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kInfo);
  set_log_sink(path);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        log_message(LogLevel::kInfo, "concurrent",
                    {{"thread", std::to_string(t)},
                     {"i", std::to_string(i)}});
      }
    });
  }
  for (auto& t : threads) t.join();
  clear_log_sink();
  set_log_level(saved);

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  for (const std::string& line : lines) {
    const Json record = Json::parse(line);  // throws if torn/interleaved
    EXPECT_EQ(record.find("msg")->as_string(), "concurrent");
  }
  std::remove(path.c_str());
}

TEST(Logging, SinkBadPathThrows) {
  EXPECT_THROW(set_log_sink("/nonexistent_dir_zz/log.jsonl"), Error);
}

}  // namespace
}  // namespace hsconas::util
