// Contracts for the int8 GEMM microkernel (tensor/gemm_i8.h): exact
// agreement with a naive integer reference at every shape class (small
// direct path, blocked path, ragged tile edges), requantize-epilogue
// parity with the scalar dequantization formula, int32-accumulator
// safety at the +-127 x 255 saturation extremes, the k-depth overflow
// guard, and bit-identical results at any thread count. Integer
// accumulation is exact, so every comparison here is memcmp/EQ — no
// tolerances.

#include "tensor/gemm_i8.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/error.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace hsconas::tensor {
namespace {

/// Resize the global pool for one scope, restoring the prior width on
/// exit so later tests (and other suites in this binary) are unaffected.
class PoolGuard {
 public:
  explicit PoolGuard(std::size_t threads)
      : prev_(util::ThreadPool::global().size()) {
    util::ThreadPool::configure_global(threads);
  }
  ~PoolGuard() { util::ThreadPool::configure_global(prev_); }
  PoolGuard(const PoolGuard&) = delete;
  PoolGuard& operator=(const PoolGuard&) = delete;

 private:
  std::size_t prev_;
};

std::vector<std::int8_t> random_weights(std::size_t size, util::Rng& rng) {
  std::vector<std::int8_t> m(size);
  for (auto& v : m) v = static_cast<std::int8_t>(rng.randint(-127, 127));
  return m;
}

std::vector<std::uint8_t> random_activations(std::size_t size,
                                             util::Rng& rng) {
  std::vector<std::uint8_t> m(size);
  for (auto& v : m) v = static_cast<std::uint8_t>(rng.randint(0, 255));
  return m;
}

std::vector<std::int32_t> reference_gemm(std::size_t m, std::size_t n,
                                         std::size_t k,
                                         const std::int8_t* a,
                                         const std::uint8_t* b) {
  std::vector<std::int32_t> c(m * n, 0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t t = 0; t < k; ++t) {
      const std::int32_t av = a[i * k + t];
      for (std::size_t j = 0; j < n; ++j) {
        c[i * n + j] += av * static_cast<std::int32_t>(b[t * n + j]);
      }
    }
  }
  return c;
}

TEST(GemmI8, MatchesReferenceAcrossShapeClasses) {
  util::Rng rng(21);
  // Shapes chosen to hit: the small direct path, ragged M (non-multiple
  // of MR=6), ragged N (non-multiple of NR=16), ragged K (non-multiple
  // of the 4-wide VNNI quad), single row/column, and the blocked path
  // crossing the NC=512 stripe boundary.
  const struct {
    std::size_t m, n, k;
  } shapes[] = {{1, 1, 1},   {3, 5, 7},    {6, 16, 4},   {7, 17, 5},
                {13, 33, 9}, {24, 64, 96}, {50, 530, 37}, {64, 64, 64}};
  for (const auto& s : shapes) {
    const auto a = random_weights(s.m * s.k, rng);
    const auto b = random_activations(s.k * s.n, rng);
    const auto want = reference_gemm(s.m, s.n, s.k, a.data(), b.data());
    std::vector<std::int32_t> got(s.m * s.n, -1);
    gemm_i8(s.m, s.n, s.k, a.data(), b.data(), got.data());
    ASSERT_EQ(want, got) << "shape " << s.m << "x" << s.n << "x" << s.k;
  }
}

TEST(GemmI8, OverwritesStaleOutput) {
  util::Rng rng(22);
  const std::size_t m = 9, n = 20, k = 12;
  const auto a = random_weights(m * k, rng);
  const auto b = random_activations(k * n, rng);
  std::vector<std::int32_t> got(m * n, 0x7fffffff);  // poisoned, not zero
  gemm_i8(m, n, k, a.data(), b.data(), got.data());
  EXPECT_EQ(reference_gemm(m, n, k, a.data(), b.data()), got);
}

TEST(GemmI8, SaturationExtremesStayExact) {
  // Worst-case magnitudes: every weight at -127/+127 and every activation
  // at 255 with k at the documented bound. 127 * 255 * 65536 < 2^31, so
  // the int32 accumulators must not wrap; an implementation that
  // saturates intermediate pairs (e.g. 16-bit maddubs without widening)
  // fails this immediately.
  const std::size_t m = 2, n = 16, k = kGemmI8MaxK;
  std::vector<std::int8_t> a(m * k);
  for (std::size_t t = 0; t < k; ++t) {
    a[t] = 127;
    a[k + t] = -127;
  }
  std::vector<std::uint8_t> b(k * n, 255);
  std::vector<std::int32_t> got(m * n, 0);
  gemm_i8(m, n, k, a.data(), b.data(), got.data());
  const std::int32_t want = 127 * 255 * static_cast<std::int32_t>(k);
  for (std::size_t j = 0; j < n; ++j) {
    ASSERT_EQ(want, got[j]);
    ASSERT_EQ(-want, got[n + j]);
  }
}

TEST(GemmI8, RejectsOverflowUnsafeDepth) {
  std::vector<std::int8_t> a(kGemmI8MaxK + 1);
  std::vector<std::uint8_t> b(kGemmI8MaxK + 1);
  std::int32_t c = 0;
  EXPECT_THROW(gemm_i8(1, 1, kGemmI8MaxK + 1, a.data(), b.data(), &c),
               InvalidArgument);
  float cf = 0.0f;
  EXPECT_THROW(
      gemm_i8_requant(1, 1, kGemmI8MaxK + 1, a.data(), b.data(), &cf, {}),
      InvalidArgument);
}

TEST(GemmI8, ZeroDepthAppliesEpilogueToZeroAccumulator) {
  const QuantEpilogue ep{nullptr, nullptr, nullptr, EpilogueAct::kNone};
  std::vector<std::int32_t> ci(4, 99);
  gemm_i8(2, 2, 0, nullptr, nullptr, ci.data());
  EXPECT_EQ(std::vector<std::int32_t>(4, 0), ci);

  const float shift[2] = {1.5f, -2.0f};
  QuantEpilogue ep2 = ep;
  ep2.shift = shift;
  ep2.act = EpilogueAct::kReLU;
  std::vector<float> cf(4, 99.0f);
  gemm_i8_requant(2, 2, 0, nullptr, nullptr, cf.data(), ep2);
  EXPECT_EQ((std::vector<float>{1.5f, 1.5f, 0.0f, 0.0f}), cf);
}

TEST(GemmI8Requant, MatchesScalarDequantFormula) {
  util::Rng rng(23);
  const std::size_t m = 11, n = 29, k = 18;
  const auto a = random_weights(m * k, rng);
  const auto b = random_activations(k * n, rng);
  std::vector<float> scale(m), shift(m);
  std::vector<std::int32_t> acc_bias(m);
  for (std::size_t i = 0; i < m; ++i) {
    scale[i] = static_cast<float>(rng.uniform(0.001, 0.05));
    shift[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    acc_bias[i] = static_cast<std::int32_t>(rng.randint(-5000, 5000));
  }
  const auto acc = reference_gemm(m, n, k, a.data(), b.data());
  for (const EpilogueAct act :
       {EpilogueAct::kNone, EpilogueAct::kReLU, EpilogueAct::kHSwish}) {
    QuantEpilogue ep;
    ep.scale = scale.data();
    ep.shift = shift.data();
    ep.acc_bias = acc_bias.data();
    ep.act = act;
    std::vector<float> got(m * n, 99.0f);
    gemm_i8_requant(m, n, k, a.data(), b.data(), got.data(), ep);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const float want = epilogue_apply(
            act, epilogue_affine(
                     scale[i],
                     static_cast<float>(acc[i * n + j] + acc_bias[i]),
                     shift[i]));
        ASSERT_EQ(want, got[i * n + j]) << "act=" << static_cast<int>(act)
                                        << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST(GemmI8Requant, NullEpilogueFieldsDefaultToIdentity) {
  util::Rng rng(24);
  const std::size_t m = 4, n = 8, k = 6;
  const auto a = random_weights(m * k, rng);
  const auto b = random_activations(k * n, rng);
  const auto acc = reference_gemm(m, n, k, a.data(), b.data());
  std::vector<float> got(m * n, 0.0f);
  gemm_i8_requant(m, n, k, a.data(), b.data(), got.data(), QuantEpilogue{});
  for (std::size_t i = 0; i < m * n; ++i) {
    ASSERT_EQ(static_cast<float>(acc[i]), got[i]);
  }
}

// Big enough to take the parallel blocked path and cross the NC=512
// stripe boundary, so the per-thread A panels and shared B stripes are
// genuinely exercised.
constexpr std::size_t kM = 100, kN = 530, kK = 300;

TEST(GemmI8Threads, BitIdenticalAcrossThreadCounts) {
  util::Rng rng(25);
  const auto a = random_weights(kM * kK, rng);
  const auto b = random_activations(kK * kN, rng);
  std::vector<float> scale(kM), shift(kM);
  std::vector<std::int32_t> acc_bias(kM);
  for (std::size_t i = 0; i < kM; ++i) {
    scale[i] = static_cast<float>(rng.uniform(0.001, 0.05));
    shift[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    acc_bias[i] = static_cast<std::int32_t>(rng.randint(-5000, 5000));
  }
  QuantEpilogue ep;
  ep.scale = scale.data();
  ep.shift = shift.data();
  ep.acc_bias = acc_bias.data();
  ep.act = EpilogueAct::kReLU;

  std::vector<std::int32_t> ci1;
  std::vector<float> cf1;
  {
    PoolGuard guard(1);
    ci1.assign(kM * kN, 0);
    cf1.assign(kM * kN, 0.0f);
    gemm_i8(kM, kN, kK, a.data(), b.data(), ci1.data());
    gemm_i8_requant(kM, kN, kK, a.data(), b.data(), cf1.data(), ep);
  }
  EXPECT_EQ(reference_gemm(kM, kN, kK, a.data(), b.data()), ci1);
  for (const std::size_t threads : {2u, 8u}) {
    PoolGuard guard(threads);
    std::vector<std::int32_t> ci(kM * kN, 0);
    std::vector<float> cf(kM * kN, 0.0f);
    gemm_i8(kM, kN, kK, a.data(), b.data(), ci.data());
    gemm_i8_requant(kM, kN, kK, a.data(), b.data(), cf.data(), ep);
    ASSERT_EQ(0, std::memcmp(ci1.data(), ci.data(),
                             ci.size() * sizeof(std::int32_t)))
        << "int32 path: thread count " << threads << " changed the result";
    ASSERT_EQ(0, std::memcmp(cf1.data(), cf.data(), cf.size() * sizeof(float)))
        << "requant path: thread count " << threads << " changed the result";
  }
}

}  // namespace
}  // namespace hsconas::tensor
