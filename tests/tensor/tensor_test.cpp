#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"

namespace hsconas::tensor {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (float v : t.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, ShapeAccessors) {
  Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.ndim(), 4u);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(3), 5);
  EXPECT_EQ(t.shape_str(), "(2, 3, 4, 5)");
  EXPECT_THROW(t.dim(4), InternalError);
}

TEST(Tensor, NegativeDimensionThrows) {
  EXPECT_THROW(Tensor({2, -1}), InvalidArgument);
}

TEST(Tensor, AtIndexingRowMajor) {
  Tensor t({2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_EQ(t.flat()[5], 7.0f);
  Tensor u({2, 2, 2, 2});
  u.at(1, 1, 1, 1) = 3.0f;
  EXPECT_EQ(u.flat()[15], 3.0f);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t({2, 3});
  EXPECT_THROW(t.at(2, 0), InternalError);
  EXPECT_THROW(t.at(0, 3), InternalError);
  EXPECT_THROW(t.at(5), InternalError);  // wrong arity
}

TEST(Tensor, FullAndOnes) {
  const Tensor t = Tensor::full({3}, 2.5f);
  EXPECT_EQ(t.at(0), 2.5f);
  const Tensor o = Tensor::ones({2, 2});
  EXPECT_EQ(o.sum(), 4.0f);
}

TEST(Tensor, RandomFactoriesRespectBounds) {
  util::Rng rng(1);
  const Tensor u = Tensor::uniform({1000}, -2.0f, 3.0f, rng);
  for (float v : u.flat()) {
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 3.0f);
  }
  const Tensor n = Tensor::normal({10000}, 1.0f, 0.5f, rng);
  EXPECT_NEAR(n.mean(), 1.0f, 0.05f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3});
  for (long i = 0; i < 6; ++i) t.flat()[static_cast<std::size_t>(i)] = static_cast<float>(i);
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at(2, 1), 5.0f);
  EXPECT_THROW(t.reshaped({4, 2}), InvalidArgument);
}

TEST(Tensor, InPlaceArithmetic) {
  Tensor a = Tensor::full({4}, 2.0f);
  Tensor b = Tensor::full({4}, 3.0f);
  a.add_(b);
  EXPECT_EQ(a.at(0), 5.0f);
  a.sub_(b);
  EXPECT_EQ(a.at(1), 2.0f);
  a.mul_(2.0f);
  EXPECT_EQ(a.at(2), 4.0f);
  a.axpy_(0.5f, b);
  EXPECT_EQ(a.at(3), 5.5f);
  a.hadamard_(b);
  EXPECT_EQ(a.at(0), 16.5f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({2});
  Tensor b({3});
  EXPECT_THROW(a.add_(b), InvalidArgument);
  EXPECT_THROW(a.hadamard_(b), InvalidArgument);
}

TEST(Tensor, Reductions) {
  Tensor t({3});
  t.at(0) = -4.0f;
  t.at(1) = 3.0f;
  t.at(2) = 1.0f;
  EXPECT_FLOAT_EQ(t.sum(), 0.0f);
  EXPECT_FLOAT_EQ(t.mean(), 0.0f);
  EXPECT_FLOAT_EQ(t.abs_max(), 4.0f);
  EXPECT_FLOAT_EQ(t.l2_norm(), std::sqrt(26.0f));
}

TEST(Tensor, AllFiniteDetectsNanInf) {
  Tensor t({2});
  EXPECT_TRUE(t.all_finite());
  t.at(0) = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(t.all_finite());
  t.at(0) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(t.all_finite());
}

TEST(Tensor, DeepCopySemantics) {
  Tensor a = Tensor::full({2}, 1.0f);
  Tensor b = a;
  b.at(0) = 9.0f;
  EXPECT_EQ(a.at(0), 1.0f);
}

}  // namespace
}  // namespace hsconas::tensor
