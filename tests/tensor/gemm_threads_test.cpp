// Thread-count determinism and fused-epilogue exactness for the GEMM
// macro-kernel. The contract under test: the parallel decomposition
// (shared packed-B panels, per-thread A packing, MR-aligned M chunks)
// never changes what is computed — results are bit-identical at any
// worker count — and gemm_fused's in-writeback epilogue is bit-identical
// to running gemm and then sweeping the same per-row affine + activation
// over C.

#include "tensor/gemm.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace hsconas::tensor {
namespace {

std::vector<float> random_matrix(std::size_t size, util::Rng& rng) {
  std::vector<float> m(size);
  for (float& v : m) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

/// Resize the global pool for one scope, restoring the prior width on
/// exit so later tests (and other suites in this binary) are unaffected.
class PoolGuard {
 public:
  explicit PoolGuard(std::size_t threads)
      : prev_(util::ThreadPool::global().size()) {
    util::ThreadPool::configure_global(threads);
  }
  ~PoolGuard() { util::ThreadPool::configure_global(prev_); }
  PoolGuard(const PoolGuard&) = delete;
  PoolGuard& operator=(const PoolGuard&) = delete;

 private:
  std::size_t prev_;
};

// Big enough to take the parallel blocked path (>= 2^21 flops) and to
// cross both the NC (512) and KC (240) block boundaries, so the test
// exercises shared-B reuse across K blocks and multi-panel J loops.
constexpr std::size_t kM = 100, kN = 530, kK = 300;

std::vector<float> run_gemm_with_threads(std::size_t threads,
                                         const std::vector<float>& a,
                                         const std::vector<float>& b) {
  PoolGuard guard(threads);
  std::vector<float> c(kM * kN, 0.0f);
  gemm(kM, kN, kK, 1.0f, a.data(), b.data(), 0.0f, c.data());
  return c;
}

TEST(GemmThreads, BitIdenticalAcrossThreadCounts) {
  util::Rng rng(11);
  const auto a = random_matrix(kM * kK, rng);
  const auto b = random_matrix(kK * kN, rng);
  const auto c1 = run_gemm_with_threads(1, a, b);
  for (const std::size_t threads : {2u, 8u}) {
    const auto ct = run_gemm_with_threads(threads, a, b);
    ASSERT_EQ(0,
              std::memcmp(c1.data(), ct.data(), c1.size() * sizeof(float)))
        << "thread count " << threads
        << " changed the result — decomposition is leaking into the "
           "accumulation order";
  }
}

TEST(GemmThreads, FusedBitIdenticalAcrossThreadCounts) {
  util::Rng rng(12);
  const auto a = random_matrix(kM * kK, rng);
  const auto b = random_matrix(kK * kN, rng);
  const auto scale = random_matrix(kM, rng);
  const auto shift = random_matrix(kM, rng);
  GemmEpilogue ep;
  ep.scale = scale.data();
  ep.shift = shift.data();
  ep.act = EpilogueAct::kHSwish;

  std::vector<float> c1(kM * kN, 0.0f);
  {
    PoolGuard guard(1);
    gemm_fused(kM, kN, kK, 1.0f, a.data(), b.data(), c1.data(), ep);
  }
  for (const std::size_t threads : {2u, 8u}) {
    PoolGuard guard(threads);
    std::vector<float> ct(kM * kN, 0.0f);
    gemm_fused(kM, kN, kK, 1.0f, a.data(), b.data(), ct.data(), ep);
    ASSERT_EQ(0,
              std::memcmp(c1.data(), ct.data(), c1.size() * sizeof(float)))
        << "thread count " << threads;
  }
}

/// gemm_fused must equal gemm followed by a per-row
/// `c = act(scale*c + shift)` sweep, bit for bit: the epilogue is applied
/// to the finished accumulator value, so moving it into the writeback
/// cannot change any float operation.
void check_fused_matches_manual(std::size_t m, std::size_t n, std::size_t k,
                                bool with_scale, bool with_shift,
                                EpilogueAct act, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  const auto scale = random_matrix(m, rng);
  const auto shift = random_matrix(m, rng);

  GemmEpilogue ep;
  ep.scale = with_scale ? scale.data() : nullptr;
  ep.shift = with_shift ? shift.data() : nullptr;
  ep.act = act;

  std::vector<float> fused(m * n, -1e30f);  // gemm_fused has beta=0 semantics
  gemm_fused(m, n, k, 1.0f, a.data(), b.data(), fused.data(), ep);

  std::vector<float> manual(m * n, 0.0f);
  gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, manual.data());
  for (std::size_t i = 0; i < m; ++i) {
    const float s = with_scale ? scale[i] : 1.0f;
    const float t = with_shift ? shift[i] : 0.0f;
    for (std::size_t j = 0; j < n; ++j) {
      manual[i * n + j] = epilogue_apply(act, s * manual[i * n + j] + t);
    }
  }

  for (std::size_t i = 0; i < m * n; ++i) {
    ASSERT_EQ(fused[i], manual[i])
        << "m=" << m << " n=" << n << " k=" << k << " at " << i;
  }
}

TEST(GemmFused, MatchesManualEpilogueBitExact) {
  // Small path (below the packing threshold), blocked path, and a tall
  // panel-edge shape; every scale/shift/activation combination.
  const struct {
    std::size_t m, n, k;
  } shapes[] = {{3, 5, 7}, {64, 48, 96}, {130, 70, 250}};
  std::uint64_t seed = 100;
  for (const auto& s : shapes) {
    for (const EpilogueAct act :
         {EpilogueAct::kNone, EpilogueAct::kReLU, EpilogueAct::kHSwish}) {
      for (const bool with_scale : {false, true}) {
        for (const bool with_shift : {false, true}) {
          check_fused_matches_manual(s.m, s.n, s.k, with_scale, with_shift,
                                     act, ++seed);
        }
      }
    }
  }
}

TEST(GemmFused, DegenerateKAppliesEpilogueToZero) {
  // k == 0: the product contributes nothing, so C = act(scale*0 + shift).
  util::Rng rng(42);
  const auto scale = random_matrix(2, rng);
  const auto shift = random_matrix(2, rng);
  GemmEpilogue ep;
  ep.scale = scale.data();
  ep.shift = shift.data();
  ep.act = EpilogueAct::kReLU;
  std::vector<float> c(2 * 3, 1e30f);
  gemm_fused(2, 3, 0, 1.0f, nullptr, nullptr, c.data(), ep);
  for (std::size_t i = 0; i < 2; ++i) {
    const float want =
        epilogue_apply(EpilogueAct::kReLU, scale[i] * 0.0f + shift[i]);
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(c[i * 3 + j], want);
  }
}

TEST(GemmFused, NullEpilogueFieldsAreIdentity) {
  // All-default epilogue: gemm_fused degenerates to gemm with beta=0.
  util::Rng rng(43);
  const std::size_t m = 20, n = 30, k = 40;
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  std::vector<float> plain(m * n, 0.0f);
  gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, plain.data());
  std::vector<float> fused(m * n, 7.0f);
  gemm_fused(m, n, k, 1.0f, a.data(), b.data(), fused.data(),
             GemmEpilogue{});
  for (std::size_t i = 0; i < m * n; ++i) ASSERT_EQ(plain[i], fused[i]);
}

}  // namespace
}  // namespace hsconas::tensor
