// Unit contracts for the thread-local tensor pool behind serving's
// zero-allocation steady state: opt-in scoping, recycling and granule
// rounding, counter semantics, cross-thread block fungibility, and Tensor
// integration.

#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/pool_allocator.h"
#include "tensor/tensor.h"

namespace {

using namespace hsconas;

TEST(TensorPool, DisabledByDefaultAndScopedOptInNests) {
  EXPECT_FALSE(tensor::tensor_pool_enabled());
  {
    tensor::ScopedTensorPool outer;
    EXPECT_TRUE(tensor::tensor_pool_enabled());
    {
      tensor::ScopedTensorPool inner;
      EXPECT_TRUE(tensor::tensor_pool_enabled());
    }
    EXPECT_TRUE(tensor::tensor_pool_enabled());  // restored, not cleared
  }
  EXPECT_FALSE(tensor::tensor_pool_enabled());
}

TEST(TensorPool, DisabledThreadsBypassCountersEntirely) {
  const std::uint64_t heap0 = tensor::tensor_pool_heap_allocs();
  const std::uint64_t hits0 = tensor::tensor_pool_hits();
  void* p = tensor::tensor_pool_allocate(256);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xab, 256);
  tensor::tensor_pool_deallocate(p, 256);
  EXPECT_EQ(tensor::tensor_pool_heap_allocs(), heap0);
  EXPECT_EQ(tensor::tensor_pool_hits(), hits0);
  EXPECT_EQ(tensor::tensor_pool_parked_bytes(), 0u);
}

TEST(TensorPool, RecyclesParkedBlocks) {
  tensor::ScopedTensorPool scope;
  const std::uint64_t heap0 = tensor::tensor_pool_heap_allocs();
  const std::uint64_t hits0 = tensor::tensor_pool_hits();

  void* p = tensor::tensor_pool_allocate(1024);
  EXPECT_EQ(tensor::tensor_pool_heap_allocs(), heap0 + 1);
  tensor::tensor_pool_deallocate(p, 1024);
  EXPECT_GE(tensor::tensor_pool_parked_bytes(), 1024u);

  void* q = tensor::tensor_pool_allocate(1024);
  EXPECT_EQ(q, p);  // LIFO reuse of the parked block
  EXPECT_EQ(tensor::tensor_pool_heap_allocs(), heap0 + 1);  // no new heap trip
  EXPECT_EQ(tensor::tensor_pool_hits(), hits0 + 1);
  tensor::tensor_pool_deallocate(q, 1024);
  tensor::tensor_pool_release_thread_memory();
  EXPECT_EQ(tensor::tensor_pool_parked_bytes(), 0u);
}

TEST(TensorPool, GranuleRoundingSharesBucketsAcrossAdjacentSizes) {
  tensor::ScopedTensorPool scope;
  const std::uint64_t hits0 = tensor::tensor_pool_hits();

  // 1 and 64 bytes round to the same 64-byte granule: a block parked from
  // a 1-byte request must satisfy a 64-byte request.
  void* p = tensor::tensor_pool_allocate(1);
  tensor::tensor_pool_deallocate(p, 1);
  void* q = tensor::tensor_pool_allocate(64);
  EXPECT_EQ(q, p);
  EXPECT_EQ(tensor::tensor_pool_hits(), hits0 + 1);
  tensor::tensor_pool_deallocate(q, 64);

  // 65 bytes rounds up to the next granule: different bucket, no hit.
  void* r = tensor::tensor_pool_allocate(65);
  EXPECT_NE(r, q);
  EXPECT_EQ(tensor::tensor_pool_hits(), hits0 + 1);
  tensor::tensor_pool_deallocate(r, 65);
  tensor::tensor_pool_release_thread_memory();
}

TEST(TensorPool, BlocksAreFungibleAcrossThreads) {
  // Allocate on a pooled thread, free on an unpooled one (and vice versa):
  // blocks are plain ::operator new storage, so ownership can cross
  // threads without corruption. TSan runs this test via `ctest -L serving`.
  void* from_pooled = nullptr;
  std::thread producer([&] {
    tensor::ScopedTensorPool scope;
    from_pooled = tensor::tensor_pool_allocate(512);
    std::memset(from_pooled, 0x5a, 512);
  });
  producer.join();
  ASSERT_NE(from_pooled, nullptr);
  tensor::tensor_pool_deallocate(from_pooled, 512);  // unpooled: heap free

  void* from_unpooled = tensor::tensor_pool_allocate(512);
  std::thread consumer([&] {
    tensor::ScopedTensorPool scope;
    tensor::tensor_pool_deallocate(from_unpooled, 512);  // parks here
    EXPECT_GE(tensor::tensor_pool_parked_bytes(), 512u);
    tensor::tensor_pool_release_thread_memory();
  });
  consumer.join();
}

TEST(TensorPool, TensorChurnIsAllocationFreeOnceWarm) {
  tensor::ScopedTensorPool scope;
  // Warm: first construction faults in data + shape blocks.
  { tensor::Tensor warm({2, 3, 8, 8}); }
  const std::uint64_t heap0 = tensor::tensor_pool_heap_allocs();
  const std::uint64_t hits0 = tensor::tensor_pool_hits();
  for (int i = 0; i < 20; ++i) {
    tensor::Tensor t({2, 3, 8, 8});
    t.data()[0] = static_cast<float>(i);
  }
  EXPECT_EQ(tensor::tensor_pool_heap_allocs(), heap0)
      << "same-shape Tensor churn should be served entirely from the pool";
  EXPECT_GT(tensor::tensor_pool_hits(), hits0);
  tensor::tensor_pool_release_thread_memory();
}

TEST(TensorPool, PooledVectorsInteroperateWithPlainVectors) {
  tensor::ScopedTensorPool scope;
  tensor::ShapeVec pooled = {1, 3, 32, 32};
  const std::vector<long> plain = {1, 3, 32, 32};
  EXPECT_TRUE(pooled == plain);
  const std::vector<long> shorter = {1, 3, 32};
  EXPECT_FALSE(pooled == shorter);
  tensor::tensor_pool_release_thread_memory();
}

}  // namespace
