#include "tensor/workspace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

namespace hsconas::tensor {
namespace {

TEST(Workspace, TakeReturnsAlignedWritableBuffer) {
  Workspace ws;
  Scratch s = ws.take(1000);
  ASSERT_NE(s.data(), nullptr);
  EXPECT_GE(s.size(), 1000u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(s.data()) % 64, 0u);
  for (std::size_t i = 0; i < 1000; ++i) s[i] = static_cast<float>(i);
  for (std::size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(s[i], static_cast<float>(i));
  }
}

TEST(Workspace, TakeZeroedIsZero) {
  Workspace ws;
  {
    // Dirty a buffer, return it to the pool...
    Scratch s = ws.take(256);
    for (std::size_t i = 0; i < 256; ++i) s[i] = 7.0f;
  }
  // ...then the zeroed lease of the same size must not see the residue.
  Scratch z = ws.take_zeroed(256);
  for (std::size_t i = 0; i < 256; ++i) EXPECT_EQ(z[i], 0.0f);
}

TEST(Workspace, LeaseReturnsToPoolAndIsReused) {
  Workspace ws;
  EXPECT_EQ(ws.pooled_buffers(), 0u);
  float* first = nullptr;
  {
    Scratch s = ws.take(512);
    first = s.data();
    EXPECT_EQ(ws.pooled_buffers(), 0u);  // leased out, not pooled
  }
  EXPECT_EQ(ws.pooled_buffers(), 1u);
  EXPECT_GE(ws.pooled_floats(), 512u);
  {
    Scratch s = ws.take(512);  // same size: must reuse, not reallocate
    EXPECT_EQ(s.data(), first);
    EXPECT_EQ(ws.pooled_buffers(), 0u);
  }
  EXPECT_EQ(ws.pooled_buffers(), 1u);
}

TEST(Workspace, ConcurrentLeasesAreDistinct) {
  Workspace ws;
  Scratch a = ws.take(64);
  Scratch b = ws.take(64);
  EXPECT_NE(a.data(), b.data());
}

TEST(Workspace, MoveTransfersOwnership) {
  Workspace ws;
  Scratch a = ws.take(128);
  float* p = a.data();
  Scratch b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(a.data(), nullptr);  // NOLINT(bugprone-use-after-move): asserted
  EXPECT_EQ(ws.pooled_buffers(), 0u);  // still leased, via b
}

TEST(Workspace, ReleaseMemoryDropsPool) {
  Workspace ws;
  { Scratch s = ws.take(64); }
  { Scratch s = ws.take(4096); }
  EXPECT_GT(ws.pooled_buffers(), 0u);
  ws.release_memory();
  EXPECT_EQ(ws.pooled_buffers(), 0u);
  EXPECT_EQ(ws.pooled_floats(), 0u);
}

TEST(Workspace, TlsIsPerThread) {
  Workspace* main_ws = &Workspace::tls();
  Workspace* other_ws = nullptr;
  std::thread t([&other_ws] { other_ws = &Workspace::tls(); });
  t.join();
  EXPECT_EQ(main_ws, &Workspace::tls());
  EXPECT_NE(other_ws, nullptr);
  EXPECT_NE(main_ws, other_ws);
}

}  // namespace
}  // namespace hsconas::tensor
