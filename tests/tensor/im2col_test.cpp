#include "tensor/im2col.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace hsconas::tensor {
namespace {

TEST(ConvGeom, OutputSizes) {
  ConvGeom g{3, 8, 8, 3, 1, 1};
  EXPECT_EQ(g.out_h(), 8);
  EXPECT_EQ(g.out_w(), 8);
  ConvGeom s2{3, 8, 8, 3, 2, 1};
  EXPECT_EQ(s2.out_h(), 4);
  ConvGeom k1{3, 7, 7, 1, 1, 0};
  EXPECT_EQ(k1.out_h(), 7);
  ConvGeom k5{3, 8, 8, 5, 1, 2};
  EXPECT_EQ(k5.out_h(), 8);
}

TEST(Im2col, IdentityFor1x1Kernel) {
  const ConvGeom g{2, 3, 3, 1, 1, 0};
  std::vector<float> img(2 * 9);
  for (std::size_t i = 0; i < img.size(); ++i) img[i] = static_cast<float>(i);
  std::vector<float> cols(2 * 9);
  im2col(img.data(), g, cols.data());
  EXPECT_EQ(cols, img);  // 1×1/stride 1 im2col is the identity layout
}

TEST(Im2col, PaddingProducesZeros) {
  const ConvGeom g{1, 2, 2, 3, 1, 1};
  std::vector<float> img = {1, 2, 3, 4};
  std::vector<float> cols(9 * 4);
  im2col(img.data(), g, cols.data());
  // Row 0 = kernel position (0,0): output (0,0) reads input (-1,-1) = 0.
  EXPECT_EQ(cols[0], 0.0f);
  // Kernel center (1,1) row index 4: copies the image unchanged.
  EXPECT_EQ(cols[4 * 4 + 0], 1.0f);
  EXPECT_EQ(cols[4 * 4 + 3], 4.0f);
}

TEST(Im2col, StrideSkipsPositions) {
  const ConvGeom g{1, 4, 4, 1, 2, 0};
  std::vector<float> img(16);
  for (std::size_t i = 0; i < img.size(); ++i) img[i] = static_cast<float>(i);
  std::vector<float> cols(4);
  im2col(img.data(), g, cols.data());
  EXPECT_EQ(cols, (std::vector<float>{0, 2, 8, 10}));
}

TEST(Col2im, RoundTripAccumulatesCoverageCounts) {
  // col2im(im2col(ones)) accumulates, per pixel, the number of kernel
  // windows covering it — an exact combinatorial identity worth pinning.
  const ConvGeom g{1, 3, 3, 3, 1, 1};
  std::vector<float> img(9, 1.0f);
  std::vector<float> cols(9 * 9);
  im2col(img.data(), g, cols.data());
  std::vector<float> back(9, 0.0f);
  col2im(cols.data(), g, back.data());
  // Center pixel covered by all 9 windows; corners by 4; edges by 6.
  EXPECT_EQ(back[4], 9.0f);
  EXPECT_EQ(back[0], 4.0f);
  EXPECT_EQ(back[1], 6.0f);
}

TEST(Col2im, AdjointProperty) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — im2col/col2im must
  // be exact adjoints for convolution backward to be correct.
  util::Rng rng(11);
  const ConvGeom g{3, 5, 4, 3, 2, 1};
  const long cols_elems = g.in_channels * 9 * g.out_h() * g.out_w();
  std::vector<float> x(static_cast<std::size_t>(g.in_channels * g.in_h * g.in_w));
  std::vector<float> y(static_cast<std::size_t>(cols_elems));
  for (float& v : x) v = static_cast<float>(rng.uniform(-1, 1));
  for (float& v : y) v = static_cast<float>(rng.uniform(-1, 1));

  std::vector<float> ix(y.size());
  im2col(x.data(), g, ix.data());
  std::vector<float> cy(x.size(), 0.0f);
  col2im(y.data(), g, cy.data());

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) lhs += static_cast<double>(ix[i]) * y[i];
  for (std::size_t i = 0; i < x.size(); ++i) rhs += static_cast<double>(x[i]) * cy[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

}  // namespace
}  // namespace hsconas::tensor
