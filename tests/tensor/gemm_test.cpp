#include "tensor/gemm.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace hsconas::tensor {
namespace {

// Reference O(n^3) triple loop.
std::vector<float> ref_gemm(std::size_t m, std::size_t n, std::size_t k,
                            const float* a, const float* b) {
  std::vector<float> c(m * n, 0.0f);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      for (std::size_t j = 0; j < n; ++j) {
        c[i * n + j] += a[i * k + p] * b[p * n + j];
      }
    }
  }
  return c;
}

std::vector<float> random_matrix(std::size_t size, util::Rng& rng) {
  std::vector<float> m(size);
  for (float& v : m) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

class GemmShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, MatchesReference) {
  const auto [m, n, k] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(m * 10007 + n * 101 + k));
  const auto a = random_matrix(static_cast<std::size_t>(m * k), rng);
  const auto b = random_matrix(static_cast<std::size_t>(k * n), rng);
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
  gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  const auto expected = ref_gemm(m, n, k, a.data(), b.data());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], expected[i], 1e-3f) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                      std::make_tuple(16, 16, 16), std::make_tuple(1, 64, 32),
                      std::make_tuple(64, 1, 32), std::make_tuple(65, 67, 3),
                      std::make_tuple(128, 96, 64),
                      std::make_tuple(200, 300, 64),
                      std::make_tuple(257, 130, 70)));

TEST(Gemm, AlphaBetaSemantics) {
  util::Rng rng(3);
  const auto a = random_matrix(4 * 3, rng);
  const auto b = random_matrix(3 * 2, rng);
  std::vector<float> c(4 * 2, 1.0f);
  // C = 2*A·B + 0.5*C
  gemm(4, 2, 3, 2.0f, a.data(), b.data(), 0.5f, c.data());
  const auto ab = ref_gemm(4, 2, 3, a.data(), b.data());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], 2.0f * ab[i] + 0.5f, 1e-4f);
  }
}

TEST(Gemm, BetaZeroOverwritesGarbage) {
  util::Rng rng(4);
  const auto a = random_matrix(2 * 2, rng);
  const auto b = random_matrix(2 * 2, rng);
  std::vector<float> c = {1e30f, -1e30f, 1e30f, -1e30f};
  gemm(2, 2, 2, 1.0f, a.data(), b.data(), 0.0f, c.data());
  const auto expected = ref_gemm(2, 2, 2, a.data(), b.data());
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(c[i], expected[i], 1e-4f);
}

TEST(Gemm, TransposedAVariant) {
  util::Rng rng(5);
  const std::size_t m = 7, n = 9, k = 11;
  const auto at = random_matrix(k * m, rng);  // A is stored k×m
  const auto b = random_matrix(k * n, rng);
  std::vector<float> c(m * n, 0.0f);
  gemm_at_b(m, n, k, 1.0f, at.data(), b.data(), 0.0f, c.data());
  // Reference: transpose A first.
  std::vector<float> a(m * k);
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t i = 0; i < m; ++i) a[i * k + p] = at[p * m + i];
  }
  const auto expected = ref_gemm(m, n, k, a.data(), b.data());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], expected[i], 1e-3f);
  }
}

TEST(Gemm, TransposedBVariant) {
  util::Rng rng(6);
  const std::size_t m = 5, n = 8, k = 13;
  const auto a = random_matrix(m * k, rng);
  const auto bt = random_matrix(n * k, rng);  // B stored n×k
  std::vector<float> c(m * n, 0.0f);
  gemm_a_bt(m, n, k, 1.0f, a.data(), bt.data(), 0.0f, c.data());
  std::vector<float> b(k * n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t p = 0; p < k; ++p) b[p * n + j] = bt[j * k + p];
  }
  const auto expected = ref_gemm(m, n, k, a.data(), b.data());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], expected[i], 1e-3f);
  }
}

TEST(Gemm, AccumulateIntoC) {
  util::Rng rng(7);
  const auto a = random_matrix(3 * 3, rng);
  const auto b = random_matrix(3 * 3, rng);
  std::vector<float> c1(9, 0.0f), c2(9, 0.0f);
  gemm(3, 3, 3, 1.0f, a.data(), b.data(), 0.0f, c1.data());
  gemm(3, 3, 3, 1.0f, a.data(), b.data(), 1.0f, c1.data());  // += again
  gemm(3, 3, 3, 2.0f, a.data(), b.data(), 0.0f, c2.data());
  for (std::size_t i = 0; i < 9; ++i) EXPECT_NEAR(c1[i], c2[i], 1e-4f);
}

// ---------------------------------------------------------------------------
// Randomized cross-check of the packed/blocked implementation against a
// double-precision reference, for all three layout variants and the full
// beta set the training code uses. Shapes deliberately straddle the
// microkernel tile (6x16) and the cache-block boundaries (MC=96, KC=240,
// NC=512), plus fully degenerate m/n/k = 1 edges.
// ---------------------------------------------------------------------------

// C = alpha*op(A)*op(B) + beta*C_in, accumulated in double.
std::vector<float> ref_gemm_full(std::size_t m, std::size_t n, std::size_t k,
                                 float alpha, const float* a, bool atrans,
                                 const float* b, bool btrans, float beta,
                                 const std::vector<float>& c_in) {
  std::vector<float> c(m * n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = atrans ? a[p * m + i] : a[i * k + p];
        const float bv = btrans ? b[j * k + p] : b[p * n + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * n + j] = static_cast<float>(
          alpha * acc + static_cast<double>(beta) * c_in[i * n + j]);
    }
  }
  return c;
}

struct RandomizedCase {
  std::size_t m, n, k;
};

// Edge shapes (tile remainders, block-boundary crossers, unit dims) plus a
// handful of fully random draws appended in the test body.
const RandomizedCase kEdgeShapes[] = {
    {1, 1, 1},    {1, 1, 300},  {1, 257, 3},  {300, 1, 5},   {6, 16, 240},
    {7, 17, 241}, {5, 15, 239}, {97, 33, 10}, {12, 513, 31}, {13, 31, 245},
    {2, 3, 1},    {96, 16, 96}, {95, 511, 7}, {101, 18, 97},
};

class GemmRandomized : public ::testing::TestWithParam<float> {};

TEST_P(GemmRandomized, AllVariantsMatchReferenceAcrossShapes) {
  const float beta = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(beta * 8.0f) + 1234);

  std::vector<RandomizedCase> cases(std::begin(kEdgeShapes),
                                    std::end(kEdgeShapes));
  for (int draw = 0; draw < 6; ++draw) {
    cases.push_back({rng.index(160) + 1, rng.index(160) + 1,
                     rng.index(160) + 1});
  }

  for (const RandomizedCase& cs : cases) {
    const auto [m, n, k] = cs;
    SCOPED_TRACE(::testing::Message()
                 << "m=" << m << " n=" << n << " k=" << k
                 << " beta=" << beta);
    const float alpha = 1.0f + 0.25f * static_cast<float>(rng.uniform(-1, 1));
    const auto a = random_matrix(m * k, rng);    // row-major m×k
    const auto at = random_matrix(k * m, rng);   // row-major k×m (A^T)
    const auto b = random_matrix(k * n, rng);    // row-major k×n
    const auto bt = random_matrix(n * k, rng);   // row-major n×k (B^T)
    const auto c0 = random_matrix(m * n, rng);
    // Accumulation-order changes keep float error well under this for
    // |values| <= 1 and k <= ~300.
    const float tol = 5e-3f;

    std::vector<float> c = c0;
    gemm(m, n, k, alpha, a.data(), b.data(), beta, c.data());
    auto expect =
        ref_gemm_full(m, n, k, alpha, a.data(), false, b.data(), false,
                      beta, c0);
    for (std::size_t i = 0; i < c.size(); ++i) {
      ASSERT_NEAR(c[i], expect[i], tol) << "gemm at " << i;
    }

    c = c0;
    gemm_at_b(m, n, k, alpha, at.data(), b.data(), beta, c.data());
    expect = ref_gemm_full(m, n, k, alpha, at.data(), true, b.data(), false,
                           beta, c0);
    for (std::size_t i = 0; i < c.size(); ++i) {
      ASSERT_NEAR(c[i], expect[i], tol) << "gemm_at_b at " << i;
    }

    c = c0;
    gemm_a_bt(m, n, k, alpha, a.data(), bt.data(), beta, c.data());
    expect = ref_gemm_full(m, n, k, alpha, a.data(), false, bt.data(), true,
                           beta, c0);
    for (std::size_t i = 0; i < c.size(); ++i) {
      ASSERT_NEAR(c[i], expect[i], tol) << "gemm_a_bt at " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BetaSweep, GemmRandomized,
                         ::testing::Values(0.0f, 0.5f, 1.0f));

}  // namespace
}  // namespace hsconas::tensor
