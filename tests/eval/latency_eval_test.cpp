#include "eval/latency_eval.h"

#include <gtest/gtest.h>

#include "hwsim/registry.h"
#include "util/stats.h"

namespace hsconas::eval {
namespace {

struct Fixture {
  core::SearchSpace space{core::SearchSpaceConfig::proxy()};
  hwsim::DeviceSimulator device{hwsim::device_by_name("gpu")};
  core::LatencyModel model{space, device,
                           core::LatencyModel::Config{8, 20, 51, true}};
};

TEST(LatencyEval, ReportHasRequestedPointCount) {
  Fixture f;
  const auto report = evaluate_latency_model(f.model, 30, 1);
  EXPECT_EQ(report.points.size(), 30u);
  for (const auto& p : report.points) {
    EXPECT_GT(p.predicted_ms, 0.0);
    EXPECT_GT(p.measured_ms, 0.0);
    EXPECT_GT(p.macs, 0.0);
    EXPECT_GT(p.params, 0.0);
    // With-bias prediction differs from without by exactly B.
    EXPECT_NEAR(p.predicted_ms - p.predicted_uncorrected_ms,
                f.model.bias_ms(), 1e-12);
  }
}

TEST(LatencyEval, MetricsInternallyConsistent) {
  Fixture f;
  const auto report = evaluate_latency_model(f.model, 50, 2);
  std::vector<double> pred, meas;
  for (const auto& p : report.points) {
    pred.push_back(p.predicted_ms);
    meas.push_back(p.measured_ms);
  }
  EXPECT_DOUBLE_EQ(report.rmse_ms, util::rmse(pred, meas));
  EXPECT_DOUBLE_EQ(report.pearson, util::pearson(pred, meas));
  EXPECT_DOUBLE_EQ(report.bias_ms, f.model.bias_ms());
  EXPECT_GE(report.rmse_ms, 0.0);
  EXPECT_LE(report.pearson, 1.0);
  EXPECT_GE(report.kendall_tau, -1.0);
  EXPECT_LE(report.kendall_tau, 1.0);
  EXPECT_LE(report.mae_ms, report.rmse_ms + 1e-12);  // AM-QM inequality
}

TEST(LatencyEval, DifferentSeedsDifferentSamples) {
  Fixture f;
  const auto a = evaluate_latency_model(f.model, 10, 3);
  const auto b = evaluate_latency_model(f.model, 10, 4);
  bool any_different = false;
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    if (!(a.points[i].arch == b.points[i].arch)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace hsconas::eval
