#include "baselines/zoo.h"

#include <gtest/gtest.h>

#include "baselines/mbconv.h"
#include "hwsim/registry.h"
#include "util/error.h"

namespace hsconas::baselines {
namespace {

TEST(Zoo, HasAllElevenTableIBaselines) {
  const auto zoo = baseline_zoo();
  ASSERT_EQ(zoo.size(), 11u);
  EXPECT_EQ(zoo[0].name, "MobileNetV2 1.0x");
  EXPECT_EQ(zoo[0].group, "manual");
  EXPECT_EQ(zoo[3].name, "DARTS");
  EXPECT_EQ(zoo[3].group, "nas");
  EXPECT_EQ(zoo.back().name, "ProxylessNAS-Mobile");
}

TEST(Zoo, PublishedMetricsMatchTableI) {
  const auto zoo = baseline_zoo();
  EXPECT_DOUBLE_EQ(zoo[0].paper_top1_err, 28.0);   // MobileNetV2
  EXPECT_DOUBLE_EQ(zoo[0].paper_cpu_ms, 25.2);
  EXPECT_DOUBLE_EQ(zoo[3].paper_cpu_ms, 81.4);     // DARTS
  EXPECT_DOUBLE_EQ(zoo[4].paper_top5_err, 7.5);    // MnasNet-A1
  EXPECT_DOUBLE_EQ(zoo[7].paper_edge_ms, 66.4);    // FBNet-C
}

TEST(Zoo, MacsNearPublishedBudgets) {
  // Published compute (GMacs): MNv2 0.30, ShuffleV2-1.5 0.30, MNv3-L 0.22,
  // DARTS 0.57, MnasNet-A1 0.31, FBNet-A/B/C 0.25/0.30/0.38,
  // Proxyless ~0.32-0.58. Our reconstructions must land within ~25%.
  const auto zoo = baseline_zoo();
  const std::vector<double> published = {0.30, 0.30, 0.22, 0.57, 0.31, 0.25,
                                         0.30, 0.38, 0.46, 0.58, 0.32};
  ASSERT_EQ(zoo.size(), published.size());
  for (std::size_t i = 0; i < zoo.size(); ++i) {
    const double gmacs = hwsim::network_macs(zoo[i].network) / 1e9;
    EXPECT_NEAR(gmacs / published[i], 1.0, 0.3) << zoo[i].name;
  }
}

TEST(Zoo, GeometryChainsThroughEveryNetwork) {
  for (const auto& baseline : baseline_zoo()) {
    long h = -1, ch = -1;
    for (const auto& layer : baseline.network) {
      if (!layer.ops.empty() && h > 0) {
        EXPECT_EQ(layer.ops.front().in_h, h)
            << baseline.name << " / " << layer.name;
        // Stride-1 shuffle blocks split the input and process half.
        const long first_in = layer.ops.front().in_channels;
        EXPECT_TRUE(first_in == ch || first_in == ch / 2)
            << baseline.name << " / " << layer.name << ": reads "
            << first_in << ", previous wrote " << ch;
      }
      h = layer.out_h;
      ch = layer.out_channels;
    }
    EXPECT_EQ(ch, 1000) << baseline.name;  // classifier output
  }
}

TEST(Zoo, DartsIsTheMostFragmented) {
  const auto zoo = baseline_zoo();
  std::size_t darts_ops = 0, max_other = 0;
  for (const auto& baseline : zoo) {
    std::size_t ops = 0;
    for (const auto& layer : baseline.network) ops += layer.ops.size();
    if (baseline.name == "DARTS") {
      darts_ops = ops;
    } else {
      max_other = std::max(max_other, ops);
    }
  }
  EXPECT_GT(darts_ops, 3 * max_other);
}

TEST(Zoo, LatenciesFiniteAndOrderedByDevice) {
  const auto zoo = baseline_zoo();
  const hwsim::DeviceSimulator gpu(hwsim::device_by_name("gpu"));
  const hwsim::DeviceSimulator edge(hwsim::device_by_name("edge"));
  for (const auto& baseline : zoo) {
    const double t_gpu = gpu.network_latency_ms(baseline.network, 32);
    const double t_edge = edge.network_latency_ms(baseline.network, 16);
    EXPECT_GT(t_gpu, 0.0) << baseline.name;
    // Edge is always slower than the server GPU, as in Table I.
    EXPECT_GT(t_edge, t_gpu) << baseline.name;
  }
}

TEST(Zoo, DartsSlowesOnCpuAsInPaper) {
  const auto zoo = baseline_zoo();
  const hwsim::DeviceSimulator cpu(hwsim::device_by_name("cpu"));
  double darts = 0.0, worst_other = 0.0;
  for (const auto& baseline : zoo) {
    const double t = cpu.network_latency_ms(baseline.network, 1);
    if (baseline.name == "DARTS") {
      darts = t;
    } else {
      worst_other = std::max(worst_other, t);
    }
  }
  EXPECT_GT(darts, worst_other);
}

TEST(Zoo, WidthMultiplierScalesMobileNet) {
  const double full = hwsim::network_macs(mobilenet_v2(1.0));
  const double half = hwsim::network_macs(mobilenet_v2(0.5));
  EXPECT_LT(half, full * 0.45);
  EXPECT_GT(half, full * 0.15);
}

TEST(Zoo, CustomResolutionAndClasses) {
  const auto net = mobilenet_v2(1.0, 10, 64);
  EXPECT_EQ(net.back().out_channels, 10);
  EXPECT_GT(hwsim::network_macs(net), 0.0);
}

TEST(MbConv, ExpansionOneSkipsExpandConv) {
  MbConvSpec spec;
  spec.in_channels = 16;
  spec.out_channels = 16;
  spec.expand = 1.0;
  const auto with_t1 = mbconv_layer(spec, 14, 14, "t1");
  spec.expand = 6.0;
  const auto with_t6 = mbconv_layer(spec, 14, 14, "t6");
  EXPECT_LT(with_t1.ops.size(), with_t6.ops.size());
}

TEST(MbConv, SqueezeExciteAddsOps) {
  MbConvSpec spec;
  spec.in_channels = 16;
  spec.out_channels = 24;
  const auto plain = mbconv_layer(spec, 14, 14, "plain");
  spec.squeeze_excite = true;
  const auto se = mbconv_layer(spec, 14, 14, "se");
  EXPECT_EQ(se.ops.size(), plain.ops.size() + 4);  // pool + 2 linear + scale
}

TEST(MbConv, Validation) {
  MbConvSpec bad;
  EXPECT_THROW(mbconv_layer(bad, 14, 14, "bad"), InvalidArgument);
  EXPECT_THROW(fbnet('Z'), InvalidArgument);
  EXPECT_THROW(proxylessnas("tpu"), InvalidArgument);
}

}  // namespace
}  // namespace hsconas::baselines
