// Kill-and-resume integration suite: a pipeline interrupted at any
// snapshot boundary and restarted with resume=true must produce exactly
// the winner the uninterrupted run produces, and no interruption point may
// leave an unloadable checkpoint. The kill is simulated by throwing from
// PipelineConfig::on_snapshot, which fires after the snapshot is durably
// renamed into place — on-disk state is exactly what SIGKILL would leave.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/checkpoint.h"
#include "core/pipeline.h"
#include "hwsim/registry.h"
#include "util/error.h"

namespace hsconas::core {
namespace {

/// Thrown from on_snapshot to simulate a crash; deliberately NOT a
/// hsconas::Error so no library catch block can swallow it.
struct SimulatedKill {
  int at_snapshot = 0;
};

data::SyntheticDataset make_dataset() {
  data::SyntheticConfig cfg;
  cfg.num_classes = 6;
  cfg.train_size = 180;
  cfg.val_size = 90;
  cfg.image_size = 12;
  cfg.seed = 77;
  return data::SyntheticDataset(cfg);
}

/// Surrogate-mode config: fast enough to kill at *every* snapshot.
PipelineConfig surrogate_config() {
  PipelineConfig cfg;
  cfg.space = SearchSpaceConfig::proxy(6, 12, 1);  // 3 layers
  cfg.device = "edge";
  cfg.constraint_ms = 1.2;
  cfg.use_surrogate = true;
  cfg.shrink_layers_per_stage = 1;
  cfg.shrink.samples_per_subspace = 6;
  cfg.evolution.generations = 3;
  cfg.evolution.population = 10;
  cfg.evolution.parents = 4;
  cfg.seed = 5;
  return cfg;
}

/// Proxy-mode config: a real supernet trains, so kill points are sampled
/// rather than exhaustive.
PipelineConfig proxy_config() {
  PipelineConfig cfg = surrogate_config();
  cfg.use_surrogate = false;
  cfg.initial_epochs = 2;
  cfg.tune_epochs = 1;
  cfg.evolution.generations = 2;
  cfg.evolution.population = 8;
  cfg.evolution.parents = 3;
  cfg.shrink.samples_per_subspace = 4;
  cfg.train.batch_size = 36;
  cfg.train.lr = 0.08;
  cfg.eval_batches = 1;
  return cfg;
}

struct ScopedDir {
  explicit ScopedDir(const std::string& name)
      : path((std::filesystem::path(testing::TempDir()) / name).string()) {
    std::filesystem::remove_all(path);
  }
  ~ScopedDir() { std::filesystem::remove_all(path); }
  const std::string path;
};

void expect_same_winner(const PipelineResult& a, const PipelineResult& b,
                        const std::string& context) {
  EXPECT_TRUE(a.best_arch == b.best_arch) << context;
  EXPECT_DOUBLE_EQ(a.best_score, b.best_score) << context;
  EXPECT_DOUBLE_EQ(a.best_accuracy, b.best_accuracy) << context;
  EXPECT_DOUBLE_EQ(a.predicted_latency_ms, b.predicted_latency_ms)
      << context;
  EXPECT_DOUBLE_EQ(a.measured_latency_ms, b.measured_latency_ms) << context;
}

/// Run cfg, killing at snapshot `kill_at`; then resume in the same dir to
/// completion and return the resumed result. Asserts the checkpoint left
/// by the kill is loadable.
PipelineResult kill_then_resume(PipelineConfig cfg, const std::string& dir,
                                int kill_at,
                                const data::SyntheticDataset* dataset) {
  std::filesystem::remove_all(dir);
  cfg.checkpoint_dir = dir;
  cfg.on_snapshot = [kill_at](int index) {
    if (index == kill_at) throw SimulatedKill{index};
  };
  bool killed = false;
  try {
    Pipeline doomed(cfg);
    doomed.run(dataset);
  } catch (const SimulatedKill&) {
    killed = true;
  }
  EXPECT_TRUE(killed) << "snapshot " << kill_at << " never happened";

  // Acceptance: no interruption point leaves an unloadable checkpoint.
  EXPECT_NO_THROW(CheckpointReader r(Pipeline::checkpoint_path(dir)))
      << "kill at snapshot " << kill_at << " left a corrupt checkpoint";

  cfg.on_snapshot = nullptr;
  cfg.resume = true;
  Pipeline pipeline(cfg);
  return pipeline.run(dataset);
}

TEST(PipelineResume, SurrogateResumeMatchesAtEverySnapshot) {
  const PipelineConfig base = surrogate_config();
  const PipelineResult reference = [&] {
    Pipeline p(base);
    return p.run();
  }();

  // Checkpointing itself must not perturb the search; count snapshots.
  ScopedDir count_dir("hsconas_resume_count");
  int snapshots = 0;
  {
    PipelineConfig cfg = base;
    cfg.checkpoint_dir = count_dir.path;
    cfg.on_snapshot = [&snapshots](int) { ++snapshots; };
    Pipeline p(cfg);
    expect_same_winner(reference, p.run(), "checkpointing perturbed run");
  }
  ASSERT_GE(snapshots, 6);  // 5 phase boundaries + EA progress

  ScopedDir dir("hsconas_resume_surrogate");
  for (int k = 0; k < snapshots; ++k) {
    const PipelineResult resumed = kill_then_resume(base, dir.path, k,
                                                    nullptr);
    expect_same_winner(reference, resumed,
                       "killed at snapshot " + std::to_string(k));
  }
}

TEST(PipelineResume, ProxyResumeMatchesAtSampledKillPoints) {
  const auto dataset = make_dataset();
  const PipelineConfig base = proxy_config();
  const PipelineResult reference = [&] {
    Pipeline p(base);
    return p.run(&dataset);
  }();

  ScopedDir count_dir("hsconas_resume_proxy_count");
  int snapshots = 0;
  {
    PipelineConfig cfg = base;
    cfg.checkpoint_dir = count_dir.path;
    cfg.on_snapshot = [&snapshots](int) { ++snapshots; };
    Pipeline p(cfg);
    expect_same_winner(reference, p.run(&dataset),
                       "checkpointing perturbed run");
  }
  ASSERT_GE(snapshots, 6);

  // First snapshot (mid initial training), a middle one (around the shrink
  // stages), and the last (late in evolution) — the three regimes where
  // restored state differs most.
  ScopedDir dir("hsconas_resume_proxy");
  for (const int k : {0, snapshots / 2, snapshots - 1}) {
    const PipelineResult resumed =
        kill_then_resume(base, dir.path, k, &dataset);
    expect_same_winner(reference, resumed,
                       "killed at snapshot " + std::to_string(k));
    // Full training history survives the interruption (restored epochs +
    // replayed epochs, no duplicates or gaps).
    EXPECT_EQ(resumed.train_history.size(),
              reference.train_history.size())
        << "killed at snapshot " << k;
    for (std::size_t i = 0; i < resumed.train_history.size(); ++i) {
      EXPECT_DOUBLE_EQ(resumed.train_history[i].loss,
                       reference.train_history[i].loss)
          << "epoch " << i << ", killed at snapshot " << k;
    }
  }
}

TEST(PipelineResume, ResumeRejectsMismatchedRunConfig) {
  ScopedDir dir("hsconas_resume_mismatch");
  PipelineConfig cfg = surrogate_config();
  cfg.checkpoint_dir = dir.path;
  cfg.on_snapshot = [](int index) {
    if (index == 2) throw SimulatedKill{index};
  };
  try {
    Pipeline p(cfg);
    p.run();
  } catch (const SimulatedKill&) {
  }

  PipelineConfig other = surrogate_config();
  other.checkpoint_dir = dir.path;
  other.resume = true;
  other.evolution.generations += 5;  // a different run
  Pipeline pipeline(other);
  EXPECT_THROW(pipeline.run(), Error);
}

TEST(PipelineResume, ResumeFailsLoudlyOnCorruptCheckpoint) {
  // A mangled checkpoint must abort the resume, never silently restart
  // from scratch (that would quietly discard days of paper-scale search).
  ScopedDir dir("hsconas_resume_corrupt");
  PipelineConfig cfg = surrogate_config();
  cfg.checkpoint_dir = dir.path;
  cfg.on_snapshot = [](int index) {
    if (index == 3) throw SimulatedKill{index};
  };
  try {
    Pipeline p(cfg);
    p.run();
  } catch (const SimulatedKill&) {
  }

  const std::string path = Pipeline::checkpoint_path(dir.path);
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ASSERT_GT(bytes.size(), 100u);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  cfg.on_snapshot = nullptr;
  cfg.resume = true;
  Pipeline pipeline(cfg);
  EXPECT_THROW(pipeline.run(), Error);
}

TEST(PipelineResume, ResumeWithoutCheckpointRunsFresh) {
  ScopedDir dir("hsconas_resume_fresh");
  PipelineConfig cfg = surrogate_config();
  cfg.checkpoint_dir = dir.path;
  cfg.resume = true;  // nothing to resume from — a fresh run, not an error
  Pipeline p(cfg);
  const PipelineResult result = p.run();
  Pipeline ref(surrogate_config());
  expect_same_winner(ref.run(), result, "resume-without-checkpoint");
}

TEST(PipelineResume, LatencyModelAccessorGuardsUnbuiltState) {
  Pipeline pipeline(surrogate_config());
  EXPECT_THROW(pipeline.latency_model(), Error);  // lazily built in run()
}

TEST(PipelineResume, ExplicitLatencyBatchOneIsHonored) {
  // Regression: the pipeline used to treat batch == 1 as "unset" and
  // silently replace it with the device default. 0 is the sentinel now.
  PipelineConfig cfg = surrogate_config();
  cfg.latency.batch = 1;
  Pipeline explicit_one(cfg);
  explicit_one.run();
  EXPECT_EQ(explicit_one.latency_model().batch(), 1);

  PipelineConfig unset = surrogate_config();
  ASSERT_EQ(unset.latency.batch, 0);
  Pipeline defaulted(unset);
  defaulted.run();
  EXPECT_EQ(defaulted.latency_model().batch(),
            hwsim::device_by_name("edge").default_batch);
}

TEST(PipelineResume, InvalidCheckpointEveryIsRejected) {
  PipelineConfig cfg = surrogate_config();
  cfg.checkpoint_every = 0;
  EXPECT_THROW(Pipeline p(cfg), InvalidArgument);
}

TEST(PipelineResume, CoarserCadenceStillResumesExactly) {
  const PipelineConfig base = [&] {
    PipelineConfig cfg = surrogate_config();
    cfg.checkpoint_every = 2;
    return cfg;
  }();
  const PipelineResult reference = [&] {
    Pipeline p(surrogate_config());
    return p.run();
  }();
  ScopedDir dir("hsconas_resume_cadence");
  const PipelineResult resumed = kill_then_resume(base, dir.path, 1,
                                                  nullptr);
  expect_same_winner(reference, resumed, "checkpoint_every=2, kill at 1");
}

}  // namespace
}  // namespace hsconas::core
