// End-to-end integration tests: the proxy-mode pipeline with a *real*
// trained supernet (the mechanism the paper describes, scaled to seconds),
// plus the JSON reporting path. Kept small — these are the slowest tests
// in the suite by design.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "core/checkpoint.h"
#include "core/pipeline.h"
#include "hwsim/registry.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hsconas::core {
namespace {

data::SyntheticDataset make_dataset() {
  data::SyntheticConfig cfg;
  cfg.num_classes = 6;
  cfg.train_size = 180;
  cfg.val_size = 90;
  cfg.image_size = 12;
  cfg.seed = 77;
  return data::SyntheticDataset(cfg);
}

PipelineConfig make_config() {
  PipelineConfig cfg;
  cfg.space = SearchSpaceConfig::proxy(6, 12, 1);  // 3 layers
  cfg.device = "edge";
  cfg.constraint_ms = 1.2;
  cfg.use_surrogate = false;
  cfg.initial_epochs = 2;
  cfg.tune_epochs = 1;
  cfg.shrink_layers_per_stage = 1;
  cfg.shrink.samples_per_subspace = 6;
  cfg.evolution.generations = 3;
  cfg.evolution.population = 10;
  cfg.evolution.parents = 4;
  cfg.train.batch_size = 36;
  cfg.train.lr = 0.08;
  cfg.eval_batches = 2;
  cfg.seed = 5;
  return cfg;
}

TEST(PipelineIntegration, ProxyModeEndToEnd) {
  const auto dataset = make_dataset();
  Pipeline pipeline(make_config());
  const PipelineResult result = pipeline.run(&dataset);

  // Structure: two 1-layer shrink stages happened, in back-to-front order.
  ASSERT_EQ(result.stage1_decisions.size(), 1u);
  ASSERT_EQ(result.stage2_decisions.size(), 1u);
  EXPECT_EQ(result.stage1_decisions[0].layer, 2);
  EXPECT_EQ(result.stage2_decisions[0].layer, 1);
  EXPECT_LT(result.log10_space_after_stage2, result.log10_space_initial);

  // The winner respects the shrunk space and the latency model's budget.
  EXPECT_TRUE(result.best_arch.in_space(pipeline.space()));
  EXPECT_GT(result.best_accuracy, 0.0);
  EXPECT_LE(result.best_accuracy, 1.0);
  EXPECT_NEAR(result.measured_latency_ms, result.predicted_latency_ms,
              result.predicted_latency_ms * 0.2);

  // Supernet training history covers initial + two tuning phases.
  EXPECT_EQ(result.train_history.size(), 2u + 1u + 1u);
  for (const auto& epoch : result.train_history) {
    EXPECT_TRUE(std::isfinite(epoch.loss));
  }
}

TEST(PipelineIntegration, DeterministicAcrossRuns) {
  const auto dataset = make_dataset();
  Pipeline p1(make_config());
  Pipeline p2(make_config());
  const auto r1 = p1.run(&dataset);
  const auto r2 = p2.run(&dataset);
  EXPECT_TRUE(r1.best_arch == r2.best_arch);
  EXPECT_DOUBLE_EQ(r1.best_score, r2.best_score);
  EXPECT_DOUBLE_EQ(r1.predicted_latency_ms, r2.predicted_latency_ms);
}

TEST(PipelineIntegration, JsonReportIsComplete) {
  auto cfg = make_config();
  cfg.use_surrogate = true;  // fast path is enough to test reporting
  cfg.space = SearchSpaceConfig::imagenet_layout_a();
  cfg.shrink_layers_per_stage = 4;
  Pipeline pipeline(cfg);
  const auto result = pipeline.run();

  const util::Json report = pipeline_report_json(result, pipeline.space());
  const std::string json = report.dump();
  EXPECT_NE(json.find("\"winner\""), std::string::npos);
  EXPECT_NE(json.find("\"predicted_latency_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"space_shrinking\""), std::string::npos);
  EXPECT_NE(json.find("\"chosen_op\""), std::string::npos);
  EXPECT_NE(json.find("\"evolution\""), std::string::npos);

  const std::string path = testing::TempDir() + "/hsconas_report.json";
  report.save(path);
  std::ifstream f(path);
  EXPECT_TRUE(f.good());
  std::remove(path.c_str());
}

TEST(PipelineIntegration, FairSamplingPipelineEndToEnd) {
  // The FairNAS-style sampler must compose with the full pipeline
  // (shrinking re-samples from the narrowed lists; fair steps then draw
  // permutations of the *surviving* ops).
  const auto dataset = make_dataset();
  auto cfg = make_config();
  cfg.train.fair_sampling = true;
  Pipeline pipeline(cfg);
  const PipelineResult result = pipeline.run(&dataset);
  EXPECT_TRUE(result.best_arch.in_space(pipeline.space()));
  for (const auto& epoch : result.train_history) {
    EXPECT_TRUE(std::isfinite(epoch.loss));
  }
  EXPECT_NEAR(result.measured_latency_ms, result.predicted_latency_ms,
              result.predicted_latency_ms * 0.2);
}

TEST(PipelineIntegration, MbConvProxyPipelineEndToEnd) {
  // Proxy mode with the second operator family: a real MBConv supernet
  // trains, shrinks and searches on the synthetic task.
  const auto dataset = make_dataset();
  auto cfg = make_config();
  cfg.space = cfg.space.with_family(nn::OpFamily::kMbConv);
  cfg.constraint_ms = 1.6;  // MBConv proxy nets run a little heavier
  Pipeline pipeline(cfg);
  const PipelineResult result = pipeline.run(&dataset);
  EXPECT_TRUE(result.best_arch.in_space(pipeline.space()));
  EXPECT_NE(result.best_arch.to_string(pipeline.space()).find("mb_"),
            std::string::npos);
}

#if !defined(HSCONAS_TRACING_DISABLED)
TEST(PipelineIntegration, TraceCoversEveryPipelinePhase) {
  // A traced proxy-mode run must leave spans for each phase the paper's
  // pipeline executes — the acceptance shape for `hsconas search
  // --trace-out=...` (training, shrinking, evolution, kernel-adjacent
  // work all visible in one Perfetto timeline).
  obs::Tracer::clear();
  obs::Tracer::enable();
  const auto dataset = make_dataset();
  Pipeline pipeline(make_config());
  const PipelineResult result = pipeline.run(&dataset);
  obs::Tracer::disable();
  ASSERT_TRUE(result.best_arch.in_space(pipeline.space()));

  std::set<std::string> names;
  for (const auto& e : obs::Tracer::snapshot()) names.insert(e.name);
  for (const char* expected :
       {"pipeline.run", "pipeline.supernet_train", "pipeline.evolution",
        "train.run", "train.epoch", "shrink.stage", "shrink.layer",
        "evolution.run", "evolution.generation", "supernet.forward",
        "supernet.backward", "latency.build_lut", "latency.calibrate_bias"}) {
    EXPECT_TRUE(names.count(expected) == 1)
        << "missing span: " << expected;
  }

  // The exported trace.json carries the same span names.
  const std::string path = testing::TempDir() + "/hsconas_trace.json";
  obs::save_trace(path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::ostringstream os;
  os << f.rdbuf();
  const std::string trace = os.str();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("pipeline.supernet_train"), std::string::npos);
  EXPECT_NE(trace.find("evolution.generation"), std::string::npos);
  std::remove(path.c_str());
  obs::Tracer::clear();
}
#endif  // !HSCONAS_TRACING_DISABLED

TEST(PipelineIntegration, MetricsCoverSearchHotPaths) {
  // Counters are process-global; snapshot deltas isolate this run.
  const obs::MetricsSnapshot before = obs::metrics_snapshot();
  const auto dataset = make_dataset();
  Pipeline pipeline(make_config());
  const PipelineResult result = pipeline.run(&dataset);
  ASSERT_TRUE(result.best_arch.in_space(pipeline.space()));
  const obs::MetricsSnapshot after = obs::metrics_snapshot();

  const auto delta = [&](const char* name) {
    return after.counter_value(name) - before.counter_value(name);
  };
  EXPECT_GT(delta("hsconas.supernet.forwards"), 0u);
  EXPECT_GT(delta("hsconas.supernet.backwards"), 0u);
  EXPECT_GT(delta("hsconas.train.steps"), 0u);
  EXPECT_GT(delta("hsconas.gemm.calls"), 0u);
  EXPECT_GT(delta("hsconas.im2col.calls"), 0u);
  EXPECT_GT(delta("hsconas.latency.lut_hits"), 0u);
  EXPECT_GT(delta("hsconas.latency.device_probes"), 0u);
  EXPECT_GT(delta("hsconas.shrink.q_samples"), 0u);
  EXPECT_GT(delta("hsconas.evolution.candidates_evaluated"), 0u);
  // Every distinct candidate prices the latency memo exactly once (hits
  // only occur when the space saturates — covered by the test below).
  EXPECT_GT(delta("hsconas.evolution.memo_misses"), 0u);
  EXPECT_GT(after.gauge_value("hsconas.workspace.peak_bytes"), 0.0);
}

TEST(PipelineIntegration, EvolutionMemoHitsOnSaturatedSpace) {
  // A deliberately tiny space (2 ops, 1 factor, 3 layers = 8 archs) that
  // the EA exhausts, forcing duplicate genotypes through evaluate() — the
  // path the latency memo exists for. The memo-hit counters and the
  // per-generation hit-rate gauge must both light up.
  auto space_cfg = SearchSpaceConfig::proxy(6, 12, 1);
  space_cfg.num_ops = 2;
  space_cfg.channel_factors = {1.0};
  SearchSpace space(space_cfg);
  const hwsim::DeviceSimulator device(hwsim::device_by_name("xavier"));
  const LatencyModel latency(space, device,
                             LatencyModel::Config{16, 5, 1, false});

  const obs::MetricsSnapshot before = obs::metrics_snapshot();
  EvolutionSearch::Config cfg;
  cfg.generations = 4;
  cfg.population = 6;
  cfg.parents = 3;
  cfg.seed = 11;
  EvolutionSearch search(
      space,
      [](const Arch& a) {
        return 0.5 + static_cast<double>(a.hash() % 97) / 970.0;
      },
      latency, Objective{-0.3, 1.0}, cfg);
  const auto result = search.run();
  EXPECT_TRUE(result.best.arch.in_space(space));

  const obs::MetricsSnapshot after = obs::metrics_snapshot();
  EXPECT_GT(after.counter_value("hsconas.evolution.memo_hits"),
            before.counter_value("hsconas.evolution.memo_hits"));
  EXPECT_GT(after.gauge_value("hsconas.evolution.memo_hit_rate"), 0.0);
  EXPECT_LE(after.gauge_value("hsconas.evolution.memo_hit_rate"), 1.0);
}

TEST(PipelineIntegration, SupernetSurvivesCheckpointRoundTrip) {
  // Train briefly, checkpoint, reload into a fresh supernet, and verify a
  // candidate evaluates identically — the "resume a search tomorrow" path.
  const auto dataset = make_dataset();
  const SearchSpace space(SearchSpaceConfig::proxy(6, 12, 1));

  Supernet trained(space, 9);
  TrainConfig tc;
  tc.batch_size = 36;
  tc.lr = 0.05;
  tc.seed = 3;
  SupernetTrainer trainer(trained, dataset, tc);
  trainer.run(2);

  const std::string path = testing::TempDir() + "/hsconas_supernet.bin";
  save_parameters(trained.parameters(), path);

  Supernet restored(space, 1234);  // different init
  load_parameters(restored.parameters(), path);

  util::Rng rng(4);
  const Arch arch = Arch::random(space, rng);
  const double acc_a = trained.evaluate(dataset, arch, 36);
  const double acc_b = restored.evaluate(dataset, arch, 36);
  // BN running stats are not part of the checkpoint, but evaluate() uses
  // batch statistics, so the accuracies must match exactly.
  EXPECT_DOUBLE_EQ(acc_a, acc_b);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hsconas::core
