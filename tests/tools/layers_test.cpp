// Include-graph layering gate tests: spec parsing, module assignment,
// graph extraction, and the three layer rules, pinned against the fixture
// tree under tests/tools/fixtures/layerroot (a forbidden edge, an allowed
// two-module cycle, a waived edge, and an unmapped file). The Graphviz
// export is compared against a checked-in golden file.

#include "lint/layers.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.h"

namespace lint = hsconas::lint;

namespace {

std::string layer_root() { return HSCONAS_LINT_FIXTURES_DIR "/layerroot"; }
std::string spec_path() { return layer_root() + "/layers.txt"; }

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.is_open()) << path;
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

const lint::Violation* find_rule(const std::vector<lint::Violation>& vs,
                                 const std::string& rule) {
  const auto it =
      std::find_if(vs.begin(), vs.end(),
                   [&](const lint::Violation& v) { return v.rule == rule; });
  return it == vs.end() ? nullptr : &*it;
}

lint::LayerReport fixture_report(const lint::Options& opts = {}) {
  return lint::check_layers(lint::scan_include_graph(layer_root()),
                            lint::load_layer_spec(spec_path()), opts);
}

TEST(LayerSpec, ParsesModulesEdgesAndWaivers) {
  const lint::LayerSpec spec = lint::load_layer_spec(spec_path());
  EXPECT_EQ(spec.modules.size(), 6u);
  EXPECT_EQ(spec.path, spec_path());
  EXPECT_EQ(spec.allowed.count({"beta", "alpha"}), 1u);
  EXPECT_EQ(spec.allowed.count({"alpha", "beta"}), 0u);
  ASSERT_EQ(spec.waivers.size(), 1u);
  const auto& [edge, rationale] = *spec.waivers.begin();
  EXPECT_EQ(edge.first, "gamma");
  EXPECT_EQ(edge.second, "alpha");
  EXPECT_NE(rationale.find("legacy"), std::string::npos)
      << "waiver must keep its rationale: " << rationale;
}

TEST(LayerSpec, MalformedSpecsThrow) {
  using hsconas::Error;
  EXPECT_THROW(lint::parse_layer_spec(""), Error);
  EXPECT_THROW(lint::parse_layer_spec("# only comments\n"), Error);
  EXPECT_THROW(lint::parse_layer_spec("module lonely\n"), Error);
  EXPECT_THROW(
      lint::parse_layer_spec("module a src/a\nmodule a src/b\n"), Error);
  EXPECT_THROW(
      lint::parse_layer_spec("module a src/a\nallow a -> ghost\n"), Error);
  EXPECT_THROW(lint::parse_layer_spec(
                   "module a src/a\nmodule b src/b\nwaiver a -> b\n"),
               Error);
  EXPECT_THROW(
      lint::parse_layer_spec("module a src/a\nfrobnicate a b\n"), Error);
  // Both arrow spellings parse.
  const lint::LayerSpec spec = lint::parse_layer_spec(
      "module a src/a\nmodule b src/b\nallow a->b\nallow b -> a\n");
  EXPECT_EQ(spec.allowed.size(), 2u);
}

TEST(LayerSpec, ModuleOfLongestPrefixWinsAndExactFilesCarveOut) {
  // Mirrors the real spec's obs/obs_export split: a file-granular module
  // carves two files out of the directory module.
  const lint::LayerSpec spec = lint::parse_layer_spec(
      "module obs src/obs\n"
      "module obs_export src/obs/export.h src/obs/export.cpp\n");
  EXPECT_EQ(lint::module_of(spec, "src/obs/metrics.h"), "obs");
  EXPECT_EQ(lint::module_of(spec, "src/obs/export.h"), "obs_export");
  EXPECT_EQ(lint::module_of(spec, "src/obs/export.cpp"), "obs_export");
  // Prefixes are path components, not string prefixes.
  EXPECT_EQ(lint::module_of(spec, "src/obs_export_v2/x.h"), "");
  EXPECT_EQ(lint::module_of(spec, "src/util/json.h"), "");
}

TEST(LayerGraph, ResolvesQuotedIncludesAndDropsExternal) {
  const lint::IncludeGraph graph = lint::scan_include_graph(layer_root());
  EXPECT_EQ(graph.files.size(), 9u);
  const auto has_edge = [&](const char* from, const char* to) {
    return std::any_of(graph.edges.begin(), graph.edges.end(),
                       [&](const lint::IncludeEdge& e) {
                         return e.from_file == from && e.to_file == to;
                       });
  };
  EXPECT_TRUE(has_edge("src/beta/b.h", "src/alpha/a.h"));
  EXPECT_TRUE(has_edge("src/alpha/a.cpp", "src/alpha/a.h"));  // intra-module
  EXPECT_TRUE(has_edge("src/delta/d.h", "src/epsilon/e.h"));
  // <mutex>-style system includes never appear as edges.
  for (const lint::IncludeEdge& e : graph.edges) {
    EXPECT_EQ(e.to_file.rfind("src/", 0), 0u) << e.to_file;
    EXPECT_GT(e.line, 0u);
  }
}

TEST(LayerCheck, ReportsForbiddenCycleAndUnmappedExactly) {
  const lint::LayerReport report = fixture_report();
  ASSERT_EQ(report.violations.size(), 3u);

  const lint::Violation* forbidden =
      find_rule(report.violations, "layer-forbidden-edge");
  ASSERT_NE(forbidden, nullptr);
  EXPECT_EQ(forbidden->file, "src/zeta/z.cpp");
  EXPECT_EQ(forbidden->line, 2u);  // the #include site
  EXPECT_NE(forbidden->message.find("allow zeta -> alpha"),
            std::string::npos)
      << "fix suggestion must name the exact spec edge: "
      << forbidden->message;

  const lint::Violation* cycle = find_rule(report.violations, "layer-cycle");
  ASSERT_NE(cycle, nullptr);
  EXPECT_EQ(cycle->file, spec_path());  // attributed to the spec, line 1
  EXPECT_NE(cycle->message.find("delta"), std::string::npos);
  EXPECT_NE(cycle->message.find("epsilon"), std::string::npos);

  const lint::Violation* unmapped =
      find_rule(report.violations, "layer-unmapped-file");
  ASSERT_NE(unmapped, nullptr);
  EXPECT_EQ(unmapped->file, "src/orphan/o.cpp");
}

TEST(LayerCheck, WaiverSuppressesForbiddenButStaysVisible) {
  const lint::LayerReport report = fixture_report();
  // gamma -> alpha is waived: no violation, but the edge is in the report
  // (rendered dashed in the DOT export).
  for (const lint::Violation& v : report.violations) {
    EXPECT_EQ(v.file.find("gamma"), std::string::npos) << v.message;
  }
  const auto it = std::find_if(
      report.edges.begin(), report.edges.end(), [](const lint::ModuleEdge& e) {
        return e.from == "gamma" && e.to == "alpha";
      });
  ASSERT_NE(it, report.edges.end());
  EXPECT_TRUE(it->waived);
  EXPECT_FALSE(it->allowed);
  // The allowed-but-cyclic edges are still allowed, not waived.
  const auto de = std::find_if(
      report.edges.begin(), report.edges.end(), [](const lint::ModuleEdge& e) {
        return e.from == "delta" && e.to == "epsilon";
      });
  ASSERT_NE(de, report.edges.end());
  EXPECT_TRUE(de->allowed);
}

TEST(LayerCheck, OptionsDisableAndOnlyApply) {
  lint::Options only_cycle;
  only_cycle.only = {"layer-cycle"};
  const lint::LayerReport cycles = fixture_report(only_cycle);
  ASSERT_EQ(cycles.violations.size(), 1u);
  EXPECT_EQ(cycles.violations[0].rule, "layer-cycle");

  lint::Options no_unmapped;
  no_unmapped.disabled = {"layer-unmapped-file"};
  const lint::LayerReport rest = fixture_report(no_unmapped);
  EXPECT_EQ(rest.violations.size(), 2u);
  EXPECT_EQ(find_rule(rest.violations, "layer-unmapped-file"), nullptr);
}

TEST(LayerDot, MatchesGoldenFile) {
  const std::string dot = lint::layers_to_dot(fixture_report());
  EXPECT_EQ(dot, slurp(layer_root() + "/expected.dot"))
      << "regenerate with: hsconas_lint --root tests/tools/fixtures/"
         "layerroot --layers=.../layers.txt --include-graph=expected.dot";
}

TEST(LayerMetrics, TransitiveFanInAndWeight) {
  const std::vector<lint::IncludeMetrics> rows =
      lint::include_metrics(lint::scan_include_graph(layer_root()));
  ASSERT_EQ(rows.size(), 9u);
  // alpha/a.h: included directly by a.cpp, b.h, g.cpp, z.cpp and
  // transitively by b.cpp (via b.h) — the tree's hottest header.
  EXPECT_EQ(rows[0].file, "src/alpha/a.h");
  EXPECT_EQ(rows[0].direct_fan_in, 4u);
  EXPECT_EQ(rows[0].fan_in, 5u);
  EXPECT_EQ(rows[0].weight, 0u);
  // The cycle does not blow up the closure: each of d.h/e.h reaches the
  // other exactly once and never counts itself.
  for (const lint::IncludeMetrics& m : rows) {
    if (m.file == "src/delta/d.h" || m.file == "src/epsilon/e.h") {
      EXPECT_EQ(m.fan_in, 1u) << m.file;
      EXPECT_EQ(m.weight, 1u) << m.file;
    }
  }
}

TEST(LayerMetrics, FormatTableIsAlignedAndBounded) {
  const auto rows =
      lint::include_metrics(lint::scan_include_graph(layer_root()));
  const std::string all = lint::format_include_metrics(rows, 0);
  EXPECT_NE(all.find("src/alpha/a.h"), std::string::npos);
  EXPECT_NE(all.find("fan-in"), std::string::npos);
  const std::string top1 = lint::format_include_metrics(rows, 1);
  EXPECT_NE(top1.find("1 of 9"), std::string::npos);
  EXPECT_NE(top1.find("src/alpha/a.h"), std::string::npos);
  EXPECT_EQ(top1.find("src/beta/b.h"), std::string::npos);
}

}  // namespace
