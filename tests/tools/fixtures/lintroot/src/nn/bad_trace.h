#pragma once
// Fixture: deliberate trace-scope-in-header violation.

namespace fixture {

inline void hot_path() {
  HSCONAS_TRACE_SCOPE("fixture.hot_path");  // line 7: span in a header
}

}  // namespace fixture
