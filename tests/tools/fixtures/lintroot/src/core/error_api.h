#pragma once

// Fixture: declarations feeding the semantic index. The discarding calls
// live in bad_discard.cpp — a different file — which is exactly what the
// cross-file declaration index exists to catch.

namespace fx {

struct Error {};

Error flush_journal();

[[nodiscard]] int reserve_slot(int n);

[[nodiscard]] bool
try_publish(int epoch);

}  // namespace fx
