// Fixture: unchecked-error-discipline. Every callee is declared in
// error_api.h, not here — a per-line matcher cannot see the [[nodiscard]]
// or Error return; the cross-file index can.

#include "core/error_api.h"

namespace fx {

void tick() {
  flush_journal();     // discarded Error return
  reserve_slot(4);     // discarded [[nodiscard]]
  fx::try_publish(1);  // discarded [[nodiscard]] (multi-line declaration)
  (void)flush_journal();              // sanctioned explicit discard
  const int slot = reserve_slot(1);   // used result
  if (try_publish(slot)) return;      // used result
}

}  // namespace fx
