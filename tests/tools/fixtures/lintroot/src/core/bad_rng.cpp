// Fixture: deliberate rng-discipline violations.
#include <cstdlib>
#include <random>

namespace fixture {

int roll() {
  std::random_device entropy;                    // line 8: random_device
  std::mt19937 gen(entropy());                   // line 9: mt19937
  return static_cast<int>(gen() % 6u) + rand();  // line 10: rand()
}

}  // namespace fixture
