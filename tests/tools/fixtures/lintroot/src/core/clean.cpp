// Fixture: a file with no violations; mentions of banned patterns inside
// comments and string literals must not be flagged:
//   std::memcpy(dst, src, n); std::mt19937 gen; std::cout << "hi";
namespace fixture {

const char* kDoc =
    "call memcpy( or rand() or printf( — these are just words in a string";

inline const char* doc() { return kDoc; }

}  // namespace fixture
