// Fixture: deliberate include-relative-parent violation.
#include "../util/no_pragma.h"  // line 2: parent-relative include

namespace fixture {
inline int use() { return guarded(); }
}  // namespace fixture
