// Fixture: deliberate log-no-stdio violations in library code.
#include <cstdio>
#include <iostream>

namespace fixture {

void chatter(int epoch) {
  std::cout << "epoch " << epoch << "\n";  // line 8: std::cout
  printf("loss=%d\n", epoch);              // line 9: printf
  std::fprintf(stdout, "done\n");          // line 10: fprintf(stdout
}

}  // namespace fixture
