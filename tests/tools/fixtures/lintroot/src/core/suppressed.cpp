// Fixture: every violation here carries an inline allow, so this file
// must lint clean — it exercises both suppression comment placements.
#include <cstring>

namespace fixture {

void copy_block(const float* src, float* dst) {
  // Contiguous float block copy, not deserialization.
  // hsconas-lint-allow(serial-raw-memcpy)
  std::memcpy(dst, src, 16 * sizeof(float));
  std::memmove(dst, src, 8 * sizeof(float));  // hsconas-lint-allow(serial-raw-memcpy)
}

}  // namespace fixture
