// Fixture: raw std::thread in a kernel translation unit. Parallelism in
// src/tensor// and src/nn// must go through util::ThreadPool so the
// deterministic decomposition and nested-safety guarantees hold.
#include <thread>

namespace hsconas::tensor {

void spin_up(int n) {
  std::thread worker([n] { (void)n; });
  worker.join();
  // std::this_thread is fine (not a thread spawn), as is the word
  // thread_local — only the std::thread token itself is banned.
  std::this_thread::yield();
}

}  // namespace hsconas::tensor
