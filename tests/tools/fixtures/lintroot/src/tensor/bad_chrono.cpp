// Fixture: direct std::chrono timing in a kernel translation unit.
// Timestamps in src/tensor// and src/nn// must come from obs/timing.h so
// every reading shares one clock and epoch.
#include <chrono>

namespace hsconas::tensor {

long long stamp() {
  const auto t0 = std::chrono::steady_clock::now();
  return t0.time_since_epoch().count();
}

}  // namespace hsconas::tensor
