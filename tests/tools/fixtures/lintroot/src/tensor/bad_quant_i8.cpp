// Fixture: deliberate quant-dtype-discipline violations in an int8
// kernel TU. The int32 accumulator leaks into float arithmetic outside
// any sanctioned requant helper.
#include <cmath>
#include <cstdint>

namespace fixture {

float dequant_inline(std::int32_t acc, float scale) {
  return scale * static_cast<float>(acc);        // line 10: float cast
}

std::int32_t requant_inline(float x) {
  return (std::int32_t)std::lrintf(x);           // line 14: rounding family
}

float c_style(std::int32_t acc) {
  return (float)acc;                             // line 18: C-style cast
}

// A sanctioned crossing: the allow marker silences the rule here.
// hsconas-lint-allow(quant-dtype-discipline)
float sanctioned(std::int32_t acc) { return static_cast<float>(acc); }

}  // namespace fixture
