// Fixture: deliberate scratch-discipline violations in a kernel TU.
#include <cstdlib>
#include <vector>

namespace fixture {

void kernel(std::size_t n) {
  float* a = new float[n];                       // line 8: array new
  void* b = std::malloc(n * sizeof(float));      // line 9: malloc
  std::vector<float> scratch(n);                 // line 10: ad-hoc vector
  scratch[0] = a[0];
  std::free(b);
  delete[] a;
}

}  // namespace fixture
