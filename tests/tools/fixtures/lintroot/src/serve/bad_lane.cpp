// Deliberate violations: the serving lanes are bound to the same thread-
// and timing-discipline rules as the kernels (raw std::thread and direct
// std::chrono both fork the ThreadPool/obs-timing infrastructure).

#include <chrono>
#include <thread>

void bad_lane() {
  std::thread lane([] {});
  auto t0 = std::chrono::steady_clock::now();
  (void)t0;
  lane.join();
}
