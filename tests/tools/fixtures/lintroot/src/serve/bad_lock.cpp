// Fixture: lock-discipline. Raw lock()/unlock() on a declared mutex is
// flagged; RAII guards — including unique_lock's own unlock(), the
// condition-variable idiom — are not.

#include <mutex>

namespace fx {

std::mutex queue_mutex;

void enqueue() {
  queue_mutex.lock();    // raw lock outside a guard
  queue_mutex.unlock();  // raw unlock
}

void drain() {
  std::lock_guard<std::mutex> hold(queue_mutex);
  std::unique_lock relock(queue_mutex);
  relock.unlock();  // guard method: fine
}

}  // namespace fx
