#pragma once
// Fixture: deliberate include-iostream-in-header violation.
#include <iostream>

namespace fixture {
inline void shout() { std::cerr << "loud header\n"; }
}  // namespace fixture
