// Fixture: deliberate include-pragma-once violation — the first code line
// below is not `#pragma once`.
#ifndef FIXTURE_NO_PRAGMA_H
#define FIXTURE_NO_PRAGMA_H

namespace fixture {
inline int guarded() { return 1; }
}  // namespace fixture

#endif
