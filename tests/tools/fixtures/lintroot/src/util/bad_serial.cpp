// Fixture: deliberate serial-raw-memcpy and serial-pointer-cast
// violations. Never compiled — scanned by lint_test only.
#include <cstring>

namespace fixture {

void decode(const char* wire, float* out) {
  std::memcpy(out, wire, 4 * sizeof(float));  // line 8: raw-memcpy
}

double pun(const char* wire) {
  return *reinterpret_cast<const double*>(wire);  // line 12: pointer-cast
}

}  // namespace fixture
