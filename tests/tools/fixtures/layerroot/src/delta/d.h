#pragma once
// Fixture: one half of the delta <-> epsilon cycle (both edges are
// `allow`ed — cycles are reported even across sanctioned edges).
#include "epsilon/e.h"
