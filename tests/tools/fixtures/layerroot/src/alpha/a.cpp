// Fixture: intra-module include (never a module edge).
#include "alpha/a.h"
namespace fx { int alpha_value() { return 1; } }
