#pragma once
// Fixture: bottom-layer header (no includes).
namespace fx { int alpha_value(); }
