#pragma once
// Fixture: the other half of the cycle.
#include "delta/d.h"
