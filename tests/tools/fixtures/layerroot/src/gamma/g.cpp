// Fixture: gamma -> beta is allowed; gamma -> alpha is only waived.
#include "beta/b.h"
#include "alpha/a.h"
namespace fx { int gamma_value() { return beta_value() + alpha_value(); } }
