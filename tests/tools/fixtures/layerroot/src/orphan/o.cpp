// Fixture: no module in layers.txt covers src/orphan.
namespace fx { int orphan_value() { return 0; } }
