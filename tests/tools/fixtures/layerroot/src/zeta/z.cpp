// Fixture: forbidden edge — the spec has no `allow zeta -> alpha`.
#include "alpha/a.h"
namespace fx { int zeta_value() { return alpha_value() * 2; } }
