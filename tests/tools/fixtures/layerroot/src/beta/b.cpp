#include "beta/b.h"
namespace fx { int beta_value() { return alpha_value() + 1; } }
