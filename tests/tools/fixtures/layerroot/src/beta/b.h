#pragma once
// Fixture: sanctioned edge beta -> alpha.
#include "alpha/a.h"
namespace fx { int beta_value(); }
