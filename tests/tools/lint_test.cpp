// hsconas_lint engine tests: every rule is demonstrated against the
// fixture tree under tests/tools/fixtures/lintroot (one deliberate
// violation per rule), and shown to vanish when that rule is disabled.
// The suppression-comment and baseline-ratchet mechanisms are exercised
// the same way. The production scan skips directories named `fixtures`,
// which is what keeps these deliberately bad files out of `ctest -L lint`.

#include "lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "util/error.h"
#include "util/json.h"

namespace lint = hsconas::lint;

namespace {

const char* fixtures_root() { return HSCONAS_LINT_FIXTURES_DIR "/lintroot"; }

std::vector<lint::Violation> tree(const lint::Options& opts = {}) {
  return lint::lint_tree(fixtures_root(), opts);
}

std::size_t count_rule(const std::vector<lint::Violation>& vs,
                       const std::string& rule, const std::string& file) {
  return static_cast<std::size_t>(
      std::count_if(vs.begin(), vs.end(), [&](const lint::Violation& v) {
        return v.rule == rule && v.file == file;
      }));
}

bool has_violation(const std::vector<lint::Violation>& vs,
                   const std::string& rule, const std::string& file,
                   std::size_t line) {
  return std::any_of(vs.begin(), vs.end(), [&](const lint::Violation& v) {
    return v.rule == rule && v.file == file && v.line == line;
  });
}

/// One fixture expectation per rule: with the rule enabled the exact
/// (file, line, rule-id) triple is reported; with it disabled, nothing is.
struct RuleFixture {
  const char* rule;
  const char* file;
  std::size_t line;
};

const RuleFixture kRuleFixtures[] = {
    {"serial-raw-memcpy", "src/util/bad_serial.cpp", 8},
    {"serial-pointer-cast", "src/util/bad_serial.cpp", 12},
    {"scratch-discipline", "src/tensor/bad_kernel.cpp", 8},
    {"thread-discipline", "src/tensor/bad_thread.cpp", 9},
    {"thread-discipline", "src/serve/bad_lane.cpp", 9},
    {"timing-discipline", "src/tensor/bad_chrono.cpp", 9},
    {"timing-discipline", "src/serve/bad_lane.cpp", 10},
    {"rng-discipline", "src/core/bad_rng.cpp", 8},
    {"quant-dtype-discipline", "src/tensor/bad_quant_i8.cpp", 10},
    {"quant-dtype-discipline", "src/tensor/bad_quant_i8.cpp", 14},
    {"quant-dtype-discipline", "src/tensor/bad_quant_i8.cpp", 18},
    {"log-no-stdio", "src/core/bad_log.cpp", 8},
    {"trace-scope-in-header", "src/nn/bad_trace.h", 7},
    {"include-pragma-once", "src/util/no_pragma.h", 3},
    {"include-relative-parent", "src/core/bad_include.cpp", 2},
    {"include-iostream-in-header", "src/util/bad_iostream.h", 3},
    // Semantic pass: the declarations live in error_api.h, the discards in
    // bad_discard.cpp — the cross-file index connects them.
    {"unchecked-error-discipline", "src/core/bad_discard.cpp", 10},
    {"unchecked-error-discipline", "src/core/bad_discard.cpp", 11},
    {"unchecked-error-discipline", "src/core/bad_discard.cpp", 12},
    {"lock-discipline", "src/serve/bad_lock.cpp", 12},
    {"lock-discipline", "src/serve/bad_lock.cpp", 13},
};

TEST(LintRules, EveryRuleHasAFixtureViolation) {
  const auto all = tree();
  for (const RuleFixture& f : kRuleFixtures) {
    EXPECT_TRUE(has_violation(all, f.rule, f.file, f.line))
        << f.rule << " expected at " << f.file << ":" << f.line;
  }
}

TEST(LintRules, DisablingARuleSilencesExactlyThatRule) {
  for (const RuleFixture& f : kRuleFixtures) {
    lint::Options opts;
    opts.disabled.push_back(f.rule);
    const auto vs = tree(opts);
    EXPECT_FALSE(has_violation(vs, f.rule, f.file, f.line))
        << f.rule << " should be silenced by --disable";
    // Every *other* rule's fixture violation must survive.
    for (const RuleFixture& other : kRuleFixtures) {
      if (std::string(other.rule) == f.rule) continue;
      EXPECT_TRUE(has_violation(vs, other.rule, other.file, other.line))
          << other.rule << " must not be affected by disabling " << f.rule;
    }
  }
}

TEST(LintRules, OnlyRestrictsToListedRules) {
  lint::Options opts;
  opts.only = {"rng-discipline"};
  const auto vs = tree(opts);
  EXPECT_GE(count_rule(vs, "rng-discipline", "src/core/bad_rng.cpp"), 1u);
  for (const auto& v : vs) EXPECT_EQ(v.rule, "rng-discipline");
}

TEST(LintRules, RuleIdsAreStableAndListed) {
  std::vector<std::string> ids;
  for (const auto& r : lint::rules()) ids.push_back(r.id);
  for (const RuleFixture& f : kRuleFixtures) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), f.rule), ids.end())
        << f.rule << " missing from rules()";
  }
  EXPECT_GE(ids.size(), 6u);
}

TEST(LintRules, ExactReportFormat) {
  const auto all = tree();
  const auto it =
      std::find_if(all.begin(), all.end(), [](const lint::Violation& v) {
        return v.rule == "serial-pointer-cast";
      });
  ASSERT_NE(it, all.end());
  const std::string line = lint::format_violation(*it);
  EXPECT_EQ(line.rfind("src/util/bad_serial.cpp:12 serial-pointer-cast ", 0),
            0u)
      << line;
}

TEST(LintSuppression, InlineAllowsSilenceSameLineAndLineAbove) {
  const auto all = tree();
  EXPECT_EQ(count_rule(all, "serial-raw-memcpy", "src/core/suppressed.cpp"),
            0u);
}

TEST(LintSuppression, CleanFileWithBannedWordsInCommentsAndStrings) {
  const auto all = tree();
  for (const auto& v : all) EXPECT_NE(v.file, "src/core/clean.cpp");
}

TEST(LintFile, CommentAndStringStrippingIsLineAccurate) {
  const std::string src =
      "#pragma once\n"
      "/* std::mt19937 in a block comment\n"
      "   spanning lines: rand() */\n"
      "inline int f() { return 0; }  // memcpy(a, b, n)\n"
      "const char* s = \"std::random_device\";\n";
  EXPECT_TRUE(lint::lint_file("src/core/x.h", src).empty());
}

TEST(LintFile, RawStringsAreStripped) {
  const std::string src =
      "#pragma once\n"
      "const char* kBlob = R\"json({\"cmd\": \"rand()\"})json\";\n";
  EXPECT_TRUE(lint::lint_file("src/core/x.h", src).empty());
}

TEST(LintFile, PrefixedAndMultiLineRawStringsAreStripped) {
  // Encoding-prefixed raw strings (u8R, uR, UR, LR) with multi-line
  // bodies: the lexer used to detect only the plain R form, so these
  // bodies leaked into rule matching line by line.
  const std::string src =
      "#pragma once\n"
      "const char* kCfg = u8R\"cfg(\n"
      "  rand() std::mt19937 memcpy(dst, src, n)\n"
      "  reinterpret_cast<double*>(p)\n"
      ")cfg\";\n"
      "const wchar_t* kMsg = LR\"(std::random_device seed)\";\n"
      "inline int after() { return 0; }\n";
  EXPECT_TRUE(lint::lint_file("src/core/x.h", src).empty());
  // Code AFTER the closing delimiter on the same line is still scanned.
  const std::string tail =
      "#pragma once\n"
      "const char* kB = uR\"(quiet)\"; std::mt19937 gen;\n";
  const auto vs = lint::lint_file("src/core/y.h", tail);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "rng-discipline");
  EXPECT_EQ(vs[0].line, 2u);
}

TEST(LintFile, IdentifierBoundariesRespected) {
  // "operand(" must not trip the rand() matcher; "memcpy_impl" is not
  // memcpy.
  const std::string src =
      "#pragma once\n"
      "int operand(int x);\n"
      "void memcpy_impl();\n";
  EXPECT_TRUE(lint::lint_file("src/core/x.h", src).empty());
}

TEST(LintFile, ThreadDisciplineTokenBoundaries) {
  // Only the std::thread token is banned, and only in kernel directories:
  // std::this_thread, thread_local and a bare <thread> include are fine,
  // and util/ (home of ThreadPool itself) is out of scope.
  const std::string clean =
      "#include <thread>\n"
      "thread_local int tls_slot = 0;\n"
      "void pause() { std::this_thread::yield(); }\n";
  EXPECT_TRUE(lint::lint_file("src/tensor/x.cpp", clean).empty());
  const std::string bad = "#include <thread>\nstd::thread t;\n";
  const auto vs = lint::lint_file("src/nn/x.cpp", bad);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "thread-discipline");
  EXPECT_EQ(vs[0].line, 2u);
  EXPECT_TRUE(lint::lint_file("src/util/thread_pool.cpp", bad).empty());
}

TEST(LintFile, ServingLanesObeyThreadAndTimingDiscipline) {
  // src/serve is bound to the same hot-path disciplines as the kernels.
  const std::string bad_thread = "std::thread lane;\n";
  auto vs = lint::lint_file("src/serve/batch_server.cpp", bad_thread);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "thread-discipline");
  const std::string bad_clock = "auto t = std::chrono::steady_clock::now();\n";
  vs = lint::lint_file("src/serve/load_gen.cpp", bad_clock);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "timing-discipline");
  // Scratch discipline stays kernel-only: preallocated client buffers in
  // serving code are by design.
  const std::string buffers = "std::vector<float> input(64);\n";
  EXPECT_TRUE(lint::lint_file("src/serve/load_gen.cpp", buffers).empty());
}

TEST(LintFile, QuantDtypeDisciplineScopeAndSanctionedHelpers) {
  // Float crossings are only policed in src/tensor quant kernel TUs
  // (*_i8* / *quant*): the fp32 GEMM and non-tensor code may cast freely.
  const std::string cast = "float f(int x) { return static_cast<float>(x); }\n";
  EXPECT_TRUE(lint::lint_file("src/tensor/gemm.cpp", cast).empty());
  EXPECT_TRUE(lint::lint_file("src/nn/quantize.cpp", cast).empty());
  auto vs = lint::lint_file("src/tensor/gemm_i8.cpp", cast);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "quant-dtype-discipline");
  // The rounding family (float -> int requantization) is a crossing too.
  const std::string rounder =
      "#include <cmath>\n"
      "int q(float x) { return static_cast<int>(std::lrintf(x)); }\n";
  vs = lint::lint_file("src/tensor/dequant_util.cpp", rounder);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].line, 2u);
  // Integer-width casts (int8 -> int32 widening) are not crossings.
  const std::string widen =
      "int w(signed char a) { return static_cast<int>(a) * 2; }\n";
  EXPECT_TRUE(lint::lint_file("src/tensor/gemm_i8.cpp", widen).empty());
  // The sanctioned helper carries the allow marker.
  const std::string sanctioned =
      "// hsconas-lint-allow(quant-dtype-discipline)\n"
      "float r(int acc) { return static_cast<float>(acc); }\n";
  EXPECT_TRUE(lint::lint_file("src/tensor/gemm_i8.cpp", sanctioned).empty());
}

TEST(LintFile, SerialItselfIsExempt) {
  const std::string src =
      "#include <cstring>\n"
      "void f(char* d, const char* s) { std::memcpy(d, s, 4); }\n"
      "double g(const char* p) { return *reinterpret_cast<const double*>(p); }\n";
  EXPECT_TRUE(lint::lint_file("src/util/serial.cpp", src).empty());
  EXPECT_FALSE(lint::lint_file("src/core/checkpoint.cpp", src).empty());
}

TEST(LintFile, TestsAreExemptFromLibraryOnlyRules) {
  // Printing and memcpy are fine in tests; determinism discipline is not.
  const std::string src =
      "#include <cstdio>\n"
      "void t() { printf(\"ok\\n\"); }\n";
  EXPECT_TRUE(lint::lint_file("tests/core/x_test.cpp", src).empty());
  const std::string rng_src = "#include <random>\nstd::mt19937 gen;\n";
  const auto vs = lint::lint_file("tests/core/x_test.cpp", rng_src);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "rng-discipline");
}

TEST(LintBaseline, RoundTripAndExactCountSuppression) {
  const auto all = tree();
  // A baseline written from the current tree makes the tree clean.
  const lint::Baseline baseline =
      lint::parse_baseline(lint::format_baseline(all));
  std::vector<std::string> notes;
  EXPECT_TRUE(lint::apply_baseline(all, baseline, &notes).empty());
  EXPECT_TRUE(notes.empty());
}

TEST(LintBaseline, ExceedingTheCountReportsEveryOccurrence) {
  // bad_kernel.cpp has 3 scratch-discipline violations. Baseline 2 of
  // them: all 3 must be reported (new debt cannot hide in the group).
  const auto all = tree();
  const std::size_t actual =
      count_rule(all, "scratch-discipline", "src/tensor/bad_kernel.cpp");
  ASSERT_GE(actual, 3u);
  lint::Baseline baseline;
  baseline[{"src/tensor/bad_kernel.cpp", "scratch-discipline"}] = actual - 1;
  const auto active = lint::apply_baseline(all, baseline);
  EXPECT_EQ(count_rule(active, "scratch-discipline",
                       "src/tensor/bad_kernel.cpp"),
            actual);
}

TEST(LintBaseline, StaleEntriesProduceRatchetNotes) {
  lint::Baseline baseline;
  baseline[{"src/core/clean.cpp", "serial-raw-memcpy"}] = 4;
  std::vector<std::string> notes;
  lint::apply_baseline(tree(), baseline, &notes);
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_NE(notes[0].find("ratchet"), std::string::npos);
}

TEST(LintBaseline, MalformedLinesThrow) {
  EXPECT_THROW(lint::parse_baseline("not a baseline line\n"),
               hsconas::Error);
  EXPECT_THROW(lint::parse_baseline("0 rule path\n"), hsconas::Error);
  // Comments and blanks are fine.
  EXPECT_TRUE(lint::parse_baseline("# header\n\n").empty());
}

TEST(LintJson, MachineReadableOutputParsesWithOwnJsonParser) {
  const std::vector<lint::Violation> vs = {
      {"src/a.cpp", 3, "rng-discipline",
       "message with \"quotes\", a \\ and a\ttab"},
  };
  const std::string json =
      lint::format_violations_json(vs, 2, {"ratchet note"});
  // Escaping is correct by construction if the project's own (strict)
  // parser round-trips it.
  const hsconas::util::Json doc = hsconas::util::Json::parse(json);
  EXPECT_EQ(doc.find("schema")->as_string(), "hsconas.lint.v1");
  ASSERT_EQ(doc.find("violations")->items().size(), 1u);
  const hsconas::util::Json& v = doc.find("violations")->items()[0];
  EXPECT_EQ(v.find("file")->as_string(), "src/a.cpp");
  EXPECT_EQ(v.find("line")->as_double(), 3.0);
  EXPECT_EQ(v.find("rule")->as_string(), "rng-discipline");
  EXPECT_EQ(v.find("message")->as_string(),
            "message with \"quotes\", a \\ and a\ttab");
  EXPECT_EQ(doc.find("violation_count")->as_double(), 1.0);
  EXPECT_EQ(doc.find("baselined_count")->as_double(), 2.0);
  ASSERT_EQ(doc.find("notes")->items().size(), 1u);
  EXPECT_EQ(doc.find("notes")->items()[0].as_string(), "ratchet note");
}

TEST(LintJson, EmptyRunIsValidJson) {
  const hsconas::util::Json doc =
      hsconas::util::Json::parse(lint::format_violations_json({}, 0, {}));
  EXPECT_TRUE(doc.find("violations")->items().empty());
  EXPECT_TRUE(doc.find("notes")->items().empty());
  EXPECT_EQ(doc.find("violation_count")->as_double(), 0.0);
}

}  // namespace
