// Semantic lint pass tests: the cross-line/cross-file rules
// (unchecked-error-discipline, lock-discipline) and the declaration
// index feeding them. Cross-file behavior (declaration in one header,
// violation in another file) is pinned by the lintroot fixtures in
// lint_test.cpp; these tests exercise the matcher edges in isolation.

#include "lint/semantic.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint/lint.h"
#include "lint/source_model.h"

namespace lint = hsconas::lint;

namespace {

std::vector<lint::Violation> semantic(const std::string& path,
                                      const std::string& src) {
  lint::Options opts;
  opts.only = {"unchecked-error-discipline", "lock-discipline"};
  return lint::lint_file(path, src, opts);
}

TEST(SemanticIndex, IndexesDeclarationsAcrossFiles) {
  const lint::FileContext header = lint::make_file_context(
      "src/a/api.h",
      "#pragma once\n"
      "[[nodiscard]] int claim();\n"
      "[[nodiscard]] bool\n"
      "try_poll(int fd);\n"
      "Error flush();\n"
      "Status sync_all(bool hard);\n"
      "struct S { std::mutex m_; std::shared_mutex table_lock_; };\n");
  const lint::FileContext user = lint::make_file_context(
      "src/a/user.cpp",
      "void f() {\n"
      "  std::lock_guard<std::mutex> held(gate);\n"
      "  std::unique_lock probe(gate);\n"
      "}\n");
  const lint::SemanticIndex index =
      lint::build_semantic_index({header, user});
  EXPECT_EQ(index.must_use.count("claim"), 1u);
  EXPECT_EQ(index.must_use.count("try_poll"), 1u);
  EXPECT_EQ(index.must_use.count("flush"), 1u);
  EXPECT_EQ(index.must_use.count("sync_all"), 1u);
  EXPECT_EQ(index.mutexes.count("m_"), 1u);
  EXPECT_EQ(index.mutexes.count("table_lock_"), 1u);
  // Template arguments never index a variable: lock_guard<std::mutex>
  // must not put "held" (or anything) into the mutex set.
  EXPECT_EQ(index.mutexes.count("held"), 0u);
  EXPECT_EQ(index.guards.count("held"), 1u);
  EXPECT_EQ(index.guards.count("probe"), 1u);  // CTAD form
}

TEST(UncheckedError, DiscardedCallsFlaggedUsedAndVoidCastPass) {
  const std::string src =
      "#pragma once\n"
      "[[nodiscard]] int claim();\n"
      "Error flush();\n"
      "void f() {\n"
      "  claim();\n"              // line 5: flagged
      "  flush();\n"              // line 6: flagged
      "  (void)claim();\n"        // explicit discard
      "  int got = claim();\n"    // used
      "  (void)got;\n"
      "  if (claim() > 0) { flush(); }\n"  // line 10: inner flush flagged
      "}\n";
  const auto vs = semantic("src/core/x.cpp", src);
  ASSERT_EQ(vs.size(), 3u);
  EXPECT_EQ(vs[0].line, 5u);
  EXPECT_EQ(vs[1].line, 6u);
  EXPECT_EQ(vs[2].line, 10u);
  EXPECT_EQ(vs[0].rule, "unchecked-error-discipline");
}

TEST(UncheckedError, QualifiedAndMemberCallsMatch) {
  const std::string src =
      "[[nodiscard]] bool commit();\n"
      "void f(App& app) {\n"
      "  app.journal.commit();\n"
      "  core::commit();\n"
      "}\n";
  const auto vs = semantic("src/core/x.cpp", src);
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_EQ(vs[0].line, 3u);
  EXPECT_EQ(vs[1].line, 4u);
  // A chained call (`app.journal().commit()`) is not a plain identifier
  // chain; the lexical matcher deliberately stays out of that territory.
  const std::string chained =
      "[[nodiscard]] bool commit();\n"
      "void g(App& app) { app.journal().commit(); }\n";
  EXPECT_TRUE(semantic("src/core/y.cpp", chained).empty());
}

TEST(UncheckedError, StatementShapesThatAreNotDiscards) {
  const std::string src =
      "[[nodiscard]] int claim();\n"
      "int g() {\n"
      "  return claim();\n"            // result used
      "  while (claim()) { }\n"        // keyword statement
      "  auto fn = [] { claim(); };\n" // assignment shape... inner flagged
      "}\n";
  // The lambda body's bare claim() IS a discard and must be flagged; the
  // return/while uses must not be.
  const auto vs = semantic("src/core/x.cpp", src);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].line, 5u);
}

TEST(UncheckedError, PolicesSrcOnly) {
  const std::string src =
      "[[nodiscard]] int claim();\n"
      "void f() { claim(); }\n";
  EXPECT_EQ(semantic("src/core/x.cpp", src).size(), 1u);
  EXPECT_TRUE(semantic("tests/core/x_test.cpp", src).empty());
  EXPECT_TRUE(semantic("tools/bench_compare.cpp", src).empty());
}

TEST(UncheckedError, InlineAllowSuppresses) {
  const std::string src =
      "[[nodiscard]] int claim();\n"
      "void f() {\n"
      "  // hsconas-lint-allow(unchecked-error-discipline)\n"
      "  claim();\n"
      "}\n";
  EXPECT_TRUE(semantic("src/core/x.cpp", src).empty());
}

TEST(LockDiscipline, RawLockAndUnlockOnDeclaredMutexFlagged) {
  const std::string src =
      "#include <mutex>\n"
      "std::mutex gate;\n"
      "void f() {\n"
      "  gate.lock();\n"
      "  gate.unlock();\n"
      "}\n";
  const auto vs = semantic("src/serve/x.cpp", src);
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_EQ(vs[0].rule, "lock-discipline");
  EXPECT_EQ(vs[0].line, 4u);
  EXPECT_EQ(vs[1].line, 5u);
}

TEST(LockDiscipline, GuardMethodsAndWeakPtrLockPass) {
  const std::string src =
      "#include <mutex>\n"
      "std::mutex gate;\n"
      "void f(std::weak_ptr<int> wp) {\n"
      "  std::unique_lock lk(gate);\n"
      "  lk.unlock();\n"               // condition-variable idiom
      "  lk.lock();\n"
      "  auto strong = wp.lock();\n"   // weak_ptr::lock is not a mutex op
      "  (void)strong;\n"
      "}\n";
  EXPECT_TRUE(semantic("src/serve/x.cpp", src).empty());
}

TEST(LockDiscipline, MutexNamedReceiverFlaggedWithoutDeclaration) {
  // Members reached through pointers (this->state_mtx) may be declared in
  // a header the single-file scan cannot see; mutex-ish names still flag.
  const std::string src = "void f(S* s) { s->state_mtx->lock(); }\n";
  const auto vs = semantic("src/core/x.cpp", src);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "lock-discipline");
}

TEST(LockDiscipline, CrossFileMutexDeclarationIsSeen) {
  // The member mutex is declared in the header; the raw lock lives in the
  // .cpp. Only a tree-wide index catches it — this is the lint_tree path.
  const lint::FileContext header = lint::make_file_context(
      "src/serve/state.h",
      "#pragma once\n"
      "#include <mutex>\n"
      "struct State { std::mutex admission_; };\n");
  const lint::FileContext impl = lint::make_file_context(
      "src/serve/state.cpp",
      "#include \"serve/state.h\"\n"
      "void touch(State& s) { s.admission_.lock(); }\n");
  const lint::SemanticIndex index =
      lint::build_semantic_index({header, impl});
  std::vector<lint::Violation> out;
  lint::run_semantic_rules(impl, index, {}, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule, "lock-discipline");
  EXPECT_EQ(out[0].file, "src/serve/state.cpp");
  EXPECT_EQ(out[0].line, 2u);
}

}  // namespace
