// End-to-end contract for eval::run_profile — the engine behind
// `hsconas profile`: sampled archs run with the per-op profiler armed, per
// op and per arch predicted-vs-measured with rank correlations, JSON
// round-trip, and config validation. Proxy-scale spaces keep it fast.

#include "eval/profile_runner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "obs/profiler.h"
#include "util/error.h"
#include "util/json.h"

namespace eval = hsconas::eval;

namespace {

eval::ProfileConfig tiny_config() {
  eval::ProfileConfig cfg;
  cfg.space = hsconas::core::SearchSpaceConfig::proxy(6, 12, 1);
  cfg.num_archs = 3;
  cfg.iters = 3;
  cfg.warmup = 1;
  cfg.batch = 2;
  cfg.seed = 7;
  return cfg;
}

TEST(ProfileRunner, ThreeArchReportHasFullShape) {
  const eval::ProfileReport report = eval::run_profile(tiny_config());

  ASSERT_EQ(report.archs.size(), 3u);
  for (const eval::ArchProfile& ap : report.archs) {
    EXPECT_FALSE(ap.arch_string.empty());
    EXPECT_GT(ap.measured_ms, 0.0);
    EXPECT_GT(ap.measured_p50_ms, 0.0);
    EXPECT_GE(ap.measured_p95_ms, ap.measured_p50_ms);
    EXPECT_GT(ap.predicted_ms, 0.0);
    if (report.profiler_compiled_in) {
      EXPECT_GT(ap.ops.priced_ops, 0u);
      EXPECT_GE(ap.ops.kendall_tau, -1.0);
      EXPECT_LE(ap.ops.kendall_tau, 1.0);
    } else {
      EXPECT_TRUE(ap.ops.ops.empty());
    }
  }

  EXPECT_GE(report.arch_kendall_tau, -1.0);
  EXPECT_LE(report.arch_kendall_tau, 1.0);
  EXPECT_GE(report.arch_spearman_rho, -1.0);
  EXPECT_LE(report.arch_spearman_rho, 1.0);

  if (report.profiler_compiled_in) {
    EXPECT_GT(report.overall.priced_ops, 0u);
    EXPECT_GT(report.overall.median_ratio, 0.0);
    // Backward was off, so every op has an inference-side price.
    EXPECT_EQ(report.overall.unpriced_ops, 0u);
  }

  // The runner must leave the profiler off for whoever runs next.
  EXPECT_FALSE(hsconas::obs::Profiler::enabled());
}

TEST(ProfileRunner, BackwardOpsStayUnpriced) {
  eval::ProfileConfig cfg = tiny_config();
  cfg.num_archs = 1;
  cfg.backward = true;
  const eval::ProfileReport report = eval::run_profile(cfg);
  if (!report.profiler_compiled_in) GTEST_SKIP();
  EXPECT_GT(report.overall.unpriced_ops, 0u);
  bool saw_bwd = false;
  for (const auto& cmp : report.overall.ops) {
    const bool is_bwd =
        cmp.measured.key.op.size() > 4 &&
        cmp.measured.key.op.compare(cmp.measured.key.op.size() - 4, 4,
                                    ".bwd") == 0;
    if (is_bwd) {
      saw_bwd = true;
      EXPECT_FALSE(cmp.priced) << cmp.measured.signature;
    }
  }
  EXPECT_TRUE(saw_bwd);
}

TEST(ProfileRunner, FusedVariantCoversFusedConvPath) {
  eval::ProfileConfig cfg = tiny_config();
  cfg.num_archs = 1;
  cfg.fused = true;
  const eval::ProfileReport report = eval::run_profile(cfg);
  if (!report.profiler_compiled_in) GTEST_SKIP();
  bool saw_fused = false;
  for (const auto& cmp : report.overall.ops) {
    if (cmp.measured.key.op == "conv2d.fused") saw_fused = true;
  }
  EXPECT_TRUE(saw_fused);
}

TEST(ProfileRunner, JsonRoundTripsAndCarriesSchema) {
  eval::ProfileConfig cfg = tiny_config();
  cfg.iters = 2;
  const eval::ProfileReport report = eval::run_profile(cfg);
  const hsconas::util::Json doc = eval::profile_report_json(report);

  const hsconas::util::Json reparsed = hsconas::util::Json::parse(doc.dump());
  ASSERT_NE(reparsed.find("schema"), nullptr);
  EXPECT_EQ(reparsed.find("schema")->as_string(), "hsconas.profile.v1");
  ASSERT_NE(reparsed.find("archs"), nullptr);
  EXPECT_EQ(reparsed.find("archs")->items().size(), 3u);
  ASSERT_NE(reparsed.find("correlation"), nullptr);
  ASSERT_NE(reparsed.find("overall"), nullptr);
  ASSERT_NE(reparsed.find("worst_offenders"), nullptr);

  const std::string rendered = eval::render_profile_report(report);
  EXPECT_NE(rendered.find("per-arch predicted vs measured"),
            std::string::npos);
  EXPECT_NE(rendered.find("kendall_tau"), std::string::npos);
}

TEST(ProfileRunner, RejectsNonsenseConfigs) {
  eval::ProfileConfig cfg = tiny_config();
  cfg.num_archs = 0;
  EXPECT_THROW(eval::run_profile(cfg), hsconas::InvalidArgument);

  cfg = tiny_config();
  cfg.iters = 0;
  EXPECT_THROW(eval::run_profile(cfg), hsconas::InvalidArgument);

  cfg = tiny_config();
  cfg.fused = true;
  cfg.backward = true;
  EXPECT_THROW(eval::run_profile(cfg), hsconas::InvalidArgument);

  cfg = tiny_config();
  cfg.device = "no-such-device";
  EXPECT_THROW(eval::run_profile(cfg), hsconas::Error);
}

TEST(ProfileRunner, SameSeedIsDeterministicInStructure) {
  const eval::ProfileReport a = eval::run_profile(tiny_config());
  const eval::ProfileReport b = eval::run_profile(tiny_config());
  ASSERT_EQ(a.archs.size(), b.archs.size());
  for (std::size_t i = 0; i < a.archs.size(); ++i) {
    EXPECT_EQ(a.archs[i].arch_string, b.archs[i].arch_string);
    EXPECT_DOUBLE_EQ(a.archs[i].predicted_ms, b.archs[i].predicted_ms);
  }
}

}  // namespace
