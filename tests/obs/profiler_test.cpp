// Per-operator profiler contracts: zero-cost disabled scopes, signature
// aggregation, percentile samples, clear semantics, and the Workspace
// probe indirection. Uses synthetic OpScopes (no nn modules) so the suite
// pins the obs layer alone.

#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "tensor/workspace.h"

namespace obs = hsconas::obs;

namespace {

obs::OpInfo conv_info(long cin, long cout, long hw, double flops,
                      double bytes) {
  obs::OpInfo info;
  info.key.op = "conv2d";
  info.key.kind = "conv";
  info.key.batch = 2;
  info.key.in_ch = cin;
  info.key.out_ch = cout;
  info.key.in_h = hw;
  info.key.in_w = hw;
  info.key.kernel = 3;
  info.flops = flops;
  info.bytes = bytes;
  return info;
}

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Profiler::disable();
    obs::Profiler::clear();
  }
  void TearDown() override {
    obs::Profiler::disable();
    obs::Profiler::clear();
  }
};

TEST_F(ProfilerTest, CompiledInMatchesBuildConfig) {
#if defined(HSCONAS_TRACING_DISABLED)
  EXPECT_FALSE(obs::Profiler::compiled_in());
  EXPECT_FALSE(obs::Profiler::enabled());
#else
  EXPECT_TRUE(obs::Profiler::compiled_in());
#endif
}

TEST_F(ProfilerTest, DisabledScopeNeverInvokesDescribe) {
  bool invoked = false;
  {
    obs::OpScope scope([&] {
      invoked = true;
      return conv_info(8, 8, 16, 1e6, 1e4);
    });
  }
  EXPECT_FALSE(invoked);
  EXPECT_TRUE(obs::Profiler::snapshot().empty());
}

TEST_F(ProfilerTest, EnableDisableGateRecording) {
  if (!obs::Profiler::compiled_in()) GTEST_SKIP();
  obs::Profiler::enable();
  { obs::OpScope scope([&] { return conv_info(8, 8, 16, 1e6, 1e4); }); }
  obs::Profiler::disable();
  { obs::OpScope scope([&] { return conv_info(9, 9, 16, 1e6, 1e4); }); }

  const auto stats = obs::Profiler::snapshot();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].key.in_ch, 8);
  EXPECT_EQ(stats[0].calls, 1u);
}

TEST_F(ProfilerTest, SignatureIsStableAndDescriptive) {
  obs::OpInfo info = conv_info(32, 64, 56, 0, 0);
  info.key.stride = 2;
  EXPECT_EQ(info.key.signature(),
            "conv2d(cin=32,cout=64,k=3,s=2,g=1,in=56x56,b=2)");
}

TEST_F(ProfilerTest, IdenticalSignaturesAggregate) {
  if (!obs::Profiler::compiled_in()) GTEST_SKIP();
  obs::Profiler::enable();
  constexpr int kCalls = 5;
  for (int i = 0; i < kCalls; ++i) {
    obs::OpScope scope([&] { return conv_info(8, 8, 16, 2e6, 4e4); });
  }
  { obs::OpScope scope([&] { return conv_info(16, 16, 8, 1e6, 2e4); }); }

  const auto stats = obs::Profiler::snapshot();
  ASSERT_EQ(stats.size(), 2u);
  std::uint64_t total_calls = 0;
  bool found_aggregate = false;
  for (const auto& st : stats) {
    total_calls += st.calls;
    if (st.key.in_ch == 8) {
      found_aggregate = true;
      EXPECT_EQ(st.calls, static_cast<std::uint64_t>(kCalls));
      EXPECT_EQ(st.wall_ms_samples.size(), static_cast<std::size_t>(kCalls));
      EXPECT_DOUBLE_EQ(st.flops_per_call, 2e6);
      EXPECT_DOUBLE_EQ(st.bytes_per_call, 4e4);
      EXPECT_GE(st.wall_ms_total, 0.0);
      EXPECT_LE(st.wall_ms_min, st.wall_ms_max);
      EXPECT_NEAR(st.arithmetic_intensity(), 2e6 / 4e4, 1e-9);
    }
  }
  EXPECT_TRUE(found_aggregate);
  EXPECT_EQ(total_calls, static_cast<std::uint64_t>(kCalls) + 1);
}

TEST_F(ProfilerTest, SnapshotSortedByWallTotalDescending) {
  if (!obs::Profiler::compiled_in()) GTEST_SKIP();
  obs::Profiler::enable();
  for (int i = 0; i < 8; ++i) {
    obs::OpScope scope([&] { return conv_info(8, 8, 16, 1e6, 1e4); });
  }
  { obs::OpScope scope([&] { return conv_info(16, 16, 8, 1e6, 1e4); }); }
  const auto stats = obs::Profiler::snapshot();
  for (std::size_t i = 1; i < stats.size(); ++i) {
    EXPECT_GE(stats[i - 1].wall_ms_total, stats[i].wall_ms_total);
  }
}

TEST_F(ProfilerTest, ClearDropsStatsButKeepsEnabledState) {
  if (!obs::Profiler::compiled_in()) GTEST_SKIP();
  obs::Profiler::enable();
  { obs::OpScope scope([&] { return conv_info(8, 8, 16, 1e6, 1e4); }); }
  EXPECT_FALSE(obs::Profiler::snapshot().empty());
  obs::Profiler::clear();
  EXPECT_TRUE(obs::Profiler::snapshot().empty());
  EXPECT_TRUE(obs::Profiler::enabled());
  { obs::OpScope scope([&] { return conv_info(8, 8, 16, 1e6, 1e4); }); }
  EXPECT_EQ(obs::Profiler::snapshot().size(), 1u);
}

TEST_F(ProfilerTest, PercentilesInterpolateOverSamples) {
  obs::OpStats st;
  st.wall_ms_samples = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(st.wall_ms_percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(st.wall_ms_percentile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(st.wall_ms_percentile(0.5), 2.5);
}

TEST_F(ProfilerTest, RecordCapsRetainedSamples) {
  if (!obs::Profiler::compiled_in()) GTEST_SKIP();
  const obs::OpInfo info = conv_info(8, 8, 16, 1e6, 1e4);
  for (std::size_t i = 0; i < obs::Profiler::kMaxSamples + 10; ++i) {
    obs::detail::profiler_record(info, 0.5, 0.1, 0.0);
  }
  const auto stats = obs::Profiler::snapshot();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].calls, obs::Profiler::kMaxSamples + 10);
  EXPECT_EQ(stats[0].wall_ms_samples.size(), obs::Profiler::kMaxSamples);
}

TEST_F(ProfilerTest, WorkspaceProbeAttributesScratchPeak) {
  if (!obs::Profiler::compiled_in()) GTEST_SKIP();
  obs::Profiler::enable();
  {
    obs::OpScope scope([&] { return conv_info(8, 8, 16, 1e6, 1e4); });
    // Lease scratch inside the scope; workspace.cpp's registered probe
    // must surface the high-water mark in this signature's stats.
    auto lease = hsconas::tensor::Workspace::tls().take(1024);
    (void)lease;
  }
  const auto stats = obs::Profiler::snapshot();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_GE(stats[0].workspace_peak_bytes, 1024.0 * sizeof(float));
}

TEST_F(ProfilerTest, AchievedRatesScaleWithMeasuredTime) {
  obs::OpStats st;
  st.calls = 2;
  st.flops_per_call = 2e9;
  st.bytes_per_call = 1e9;
  st.wall_ms_total = 2.0;  // 1 ms mean
  EXPECT_NEAR(st.achieved_gflops(), 2e9 / 1e6, 1e-6);
  EXPECT_NEAR(st.achieved_gbs(), 1e9 / 1e6, 1e-6);
}

}  // namespace
