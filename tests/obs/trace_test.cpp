// Span tracer: enable/disable semantics, nesting depth, cross-thread
// recording, ring overflow, and the Chrome trace-event export shape.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/trace.h"

namespace hsconas::obs {
namespace {

// Tests share one process-wide tracer; each test starts from a clean,
// enabled state and leaves the tracer disabled.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::clear();
    Tracer::enable();
  }
  void TearDown() override {
    Tracer::disable();
    Tracer::clear();
  }
};

std::vector<TraceEvent> events_named(const std::string& name) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : Tracer::snapshot()) {
    if (name == e.name) out.push_back(e);
  }
  return out;
}

// The Tracer/ring/export tests construct TraceScope directly so they hold
// in both build configurations; the macro's per-config expansion gets its
// own gated tests at the bottom.

TEST_F(TraceTest, RecordsNamedSpanWithDuration) {
  { TraceScope scope("unit.simple"); }
  const auto events = events_named("unit.simple");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_GT(events[0].tid, 0u);
}

TEST_F(TraceTest, NestedScopesRecordDepthAndContainment) {
  {
    TraceScope outer("unit.outer");
    {
      TraceScope inner("unit.inner");
    }
  }
  const auto outer = events_named("unit.outer");
  const auto inner = events_named("unit.inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(outer[0].depth, 0u);
  EXPECT_EQ(inner[0].depth, 1u);
  // The inner span starts no earlier and ends no later than the outer.
  EXPECT_GE(inner[0].start_ns, outer[0].start_ns);
  EXPECT_LE(inner[0].start_ns + inner[0].dur_ns,
            outer[0].start_ns + outer[0].dur_ns);
}

TEST_F(TraceTest, SnapshotIsSortedByStartTime) {
  for (int i = 0; i < 5; ++i) {
    TraceScope scope("unit.sequence");
  }
  const auto events = Tracer::snapshot();
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].start_ns, events[i].start_ns);
  }
}

TEST_F(TraceTest, DynamicStringNamesAreCopied) {
  {
    const std::string name = std::string("unit.") + "dynamic";
    TraceScope scope(name);
  }  // the temporary string is long gone when snapshot() reads the name
  EXPECT_EQ(events_named("unit.dynamic").size(), 1u);
}

TEST_F(TraceTest, LongNamesAreTruncatedNotOverflowed) {
  const std::string name(200, 'x');
  { TraceScope scope(name); }
  const auto events = Tracer::snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].name),
            std::string(TraceEvent::kNameCapacity - 1, 'x'));
}

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  Tracer::disable();
  const std::uint32_t depth_before = detail::thread_depth();
  { TraceScope scope("unit.invisible"); }
  // A disabled scope is one relaxed load: no event, no depth bump.
  EXPECT_EQ(detail::thread_depth(), depth_before);
  EXPECT_TRUE(Tracer::snapshot().empty());

  // Re-enabling picks up new spans without losing the thread registration.
  Tracer::enable();
  { TraceScope scope("unit.visible"); }
  EXPECT_EQ(events_named("unit.visible").size(), 1u);
}

TEST_F(TraceTest, SpansFromMultipleThreadsGetDistinctTids) {
  std::thread t([] { TraceScope scope("unit.worker"); });
  { TraceScope scope("unit.main"); }
  t.join();
  const auto worker = events_named("unit.worker");
  const auto main_spans = events_named("unit.main");
  ASSERT_EQ(worker.size(), 1u);
  ASSERT_EQ(main_spans.size(), 1u);
  EXPECT_NE(worker[0].tid, main_spans[0].tid);
}

TEST_F(TraceTest, RingOverwritesOldestAndCountsDrops) {
  for (std::size_t i = 0; i < Tracer::kRingCapacity + 100; ++i) {
    TraceScope scope("unit.flood");
  }
  // This thread's ring holds at most kRingCapacity events; the overflow is
  // reported, not silently discarded. (Other test threads may have left
  // events in their own rings, hence >= on the bound.)
  EXPECT_GE(Tracer::dropped(), 100u);
  EXPECT_GE(events_named("unit.flood").size(), Tracer::kRingCapacity - 1);
}

TEST_F(TraceTest, OverflowDropsExactlyTheOldestWithoutCorruption) {
  // Uniquely named spans make the survivor set checkable: after capacity+N
  // single-thread spans, exactly the first N are gone, the remaining ring
  // is dense (every index present once) and still start-time ordered.
  constexpr std::size_t kExtra = 100;
  const std::uint64_t dropped_before = Tracer::dropped();
  for (std::size_t i = 0; i < Tracer::kRingCapacity + kExtra; ++i) {
    TraceScope scope("unit.seq_" + std::to_string(i));
  }
  EXPECT_EQ(Tracer::dropped() - dropped_before, kExtra);

  std::vector<std::size_t> indices;
  std::uint64_t prev_start = 0;
  for (const TraceEvent& e : Tracer::snapshot()) {
    const std::string name(e.name);
    ASSERT_EQ(name.rfind("unit.seq_", 0), 0u) << name;
    indices.push_back(std::stoul(name.substr(9)));
    EXPECT_GE(e.start_ns, prev_start);
    prev_start = e.start_ns;
  }
  ASSERT_EQ(indices.size(), Tracer::kRingCapacity);
  // Oldest kExtra events were overwritten; survivors are contiguous,
  // in-order, and each appears exactly once.
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(indices[i], kExtra + i);
  }
}

TEST_F(TraceTest, ClearResetsTheDroppedCounter) {
  for (std::size_t i = 0; i < Tracer::kRingCapacity + 10; ++i) {
    TraceScope scope("unit.drop_reset");
  }
  EXPECT_GE(Tracer::dropped(), 10u);
  Tracer::clear();
  EXPECT_EQ(Tracer::dropped(), 0u);
  EXPECT_TRUE(Tracer::snapshot().empty());
}

TEST_F(TraceTest, ExportCarriesTheDroppedEventCount) {
  { TraceScope scope("unit.drop_export"); }
  const util::Json doc = trace_to_json(Tracer::snapshot(), 42);
  const util::Json* dropped = doc.find("droppedEvents");
  ASSERT_NE(dropped, nullptr);
  EXPECT_DOUBLE_EQ(dropped->as_double(), 42.0);
  // Default: a quiet ring exports zero, not a missing key.
  const util::Json quiet = trace_to_json(Tracer::snapshot());
  ASSERT_NE(quiet.find("droppedEvents"), nullptr);
  EXPECT_DOUBLE_EQ(quiet.find("droppedEvents")->as_double(), 0.0);
}

TEST_F(TraceTest, ChromeTraceExportShape) {
  {
    TraceScope outer("unit.export_outer");
    TraceScope inner("unit.export_inner");
  }
  const util::Json doc = trace_to_json(Tracer::snapshot());
  const util::Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_GE(events->items().size(), 2u);
  const std::string dumped = doc.dump();
  EXPECT_NE(dumped.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(dumped.find("unit.export_outer"), std::string::npos);
  EXPECT_NE(dumped.find("unit.export_inner"), std::string::npos);
  EXPECT_NE(dumped.find("\"pid\""), std::string::npos);
  EXPECT_NE(dumped.find("\"tid\""), std::string::npos);
}

#if defined(HSCONAS_TRACING_DISABLED)
TEST_F(TraceTest, CompiledOutMacroEmitsNothing) {
  HSCONAS_TRACE_SCOPE("unit.compiled_out");
  EXPECT_TRUE(Tracer::snapshot().empty());
}
#else
TEST_F(TraceTest, MacroRecordsLikeExplicitScope) {
  { HSCONAS_TRACE_SCOPE("unit.via_macro"); }
  EXPECT_EQ(events_named("unit.via_macro").size(), 1u);
}
#endif

}  // namespace
}  // namespace hsconas::obs
