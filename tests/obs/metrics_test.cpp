// Metrics registry: handle identity, counter/gauge/histogram semantics,
// cross-thread aggregation under parallel_for contention, and the
// snapshot / JSON round trip that tools/obs_report relies on.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace hsconas::obs {
namespace {

TEST(Metrics, CounterHandleIsStableAndAggregates) {
  Counter& a = counter("test.metrics.counter_a");
  Counter& b = counter("test.metrics.counter_a");
  EXPECT_EQ(&a, &b);  // same name -> same cell

  a.reset();
  a.add();
  b.add(4);
  EXPECT_EQ(a.value(), 5u);
  a.reset();
  EXPECT_EQ(a.value(), 0u);
}

TEST(Metrics, GaugeSetAddMax) {
  Gauge& g = gauge("test.metrics.gauge");
  g.reset();
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.update_max(0.5);  // below current: no-op
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.update_max(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
}

TEST(Metrics, HistogramBucketsAndStats) {
  Histogram& h = histogram("test.metrics.hist");
  h.reset();
  EXPECT_DOUBLE_EQ(h.min_ms(), 0.0);  // empty
  EXPECT_DOUBLE_EQ(h.max_ms(), 0.0);

  h.record(0.0005);  // below the first edge (0.001 ms = 1 µs)
  h.record(0.5);
  h.record(100.0);
  h.record(5000.0);  // beyond the last edge -> overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.min_ms(), 0.0005);
  EXPECT_DOUBLE_EQ(h.max_ms(), 5000.0);
  EXPECT_NEAR(h.sum_ms(), 5100.5005, 1e-9);

  std::uint64_t total = 0;
  for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    total += h.bucket(i);
  }
  EXPECT_EQ(total, 4u);  // every sample lands in exactly one bucket
  EXPECT_EQ(h.bucket(Histogram::kNumBuckets - 1), 1u);  // the 5 s sample

  // Edges are strictly increasing (sane bucket boundaries).
  const auto& edges = Histogram::edges();
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_LT(edges[i - 1], edges[i]);
  }
}

TEST(Metrics, CounterAggregatesAcrossParallelForWorkers) {
  Counter& c = counter("test.metrics.contended");
  Histogram& h = histogram("test.metrics.contended_hist");
  c.reset();
  h.reset();

  util::ThreadPool pool(4);
  constexpr std::size_t kTasks = 2000;
  pool.parallel_for(kTasks, [&](std::size_t i) {
    c.add();
    h.record(static_cast<double>(i % 10) * 0.1);
  });

  EXPECT_EQ(c.value(), kTasks);  // no lost updates under contention
  EXPECT_EQ(h.count(), kTasks);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    total += h.bucket(i);
  }
  EXPECT_EQ(total, kTasks);
}

TEST(Metrics, SnapshotContainsRegisteredMetricsSorted) {
  counter("test.snapshot.a").add(7);
  gauge("test.snapshot.g").set(3.25);
  histogram("test.snapshot.h").record(1.0);

  const MetricsSnapshot snap = metrics_snapshot();
  EXPECT_EQ(snap.counter_value("test.snapshot.a"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauge_value("test.snapshot.g"), 3.25);
  EXPECT_EQ(snap.counter_value("test.snapshot.missing"), 0u);

  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  }

  bool found_hist = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "test.snapshot.h") {
      found_hist = true;
      EXPECT_GE(h.count, 1u);
      EXPECT_GT(h.percentile_ms(0.5), 0.0);
    }
  }
  EXPECT_TRUE(found_hist);

  reset_all_metrics();
  EXPECT_EQ(metrics_snapshot().counter_value("test.snapshot.a"), 0u);
}

TEST(Metrics, JsonRoundTripPreservesSnapshot) {
  reset_all_metrics();
  counter("test.roundtrip.calls").add(42);
  gauge("test.roundtrip.peak").set(1.5e6);
  Histogram& h = histogram("test.roundtrip.lat");
  h.record(0.2);
  h.record(3.0);

  const MetricsSnapshot before = metrics_snapshot();
  const util::Json doc = metrics_to_json(before);
  const MetricsSnapshot after =
      metrics_from_json(util::Json::parse(doc.dump()));

  EXPECT_EQ(after.counter_value("test.roundtrip.calls"), 42u);
  EXPECT_DOUBLE_EQ(after.gauge_value("test.roundtrip.peak"), 1.5e6);
  ASSERT_EQ(after.histograms.size(), before.histograms.size());
  for (std::size_t i = 0; i < after.histograms.size(); ++i) {
    EXPECT_EQ(after.histograms[i].name, before.histograms[i].name);
    EXPECT_EQ(after.histograms[i].count, before.histograms[i].count);
    EXPECT_NEAR(after.histograms[i].sum_ms, before.histograms[i].sum_ms,
                1e-6);
    EXPECT_EQ(after.histograms[i].buckets, before.histograms[i].buckets);
  }

  // The rendered report mentions every metric by name.
  const std::string report = render_metrics_report(after);
  EXPECT_NE(report.find("test.roundtrip.calls"), std::string::npos);
  EXPECT_NE(report.find("test.roundtrip.peak"), std::string::npos);
  EXPECT_NE(report.find("test.roundtrip.lat"), std::string::npos);
}

TEST(Metrics, PercentileEstimateIsMonotone) {
  MetricsSnapshot::HistogramData data;
  data.name = "synthetic";
  data.count = 100;
  data.sum_ms = 100.0;
  data.min_ms = 0.05;
  data.max_ms = 40.0;
  data.buckets[6] = 50;   // <= 0.1 ms
  data.buckets[12] = 40;  // <= 5 ms
  data.buckets[16] = 10;  // <= 50 ms
  const double p50 = data.percentile_ms(0.5);
  const double p90 = data.percentile_ms(0.9);
  const double p99 = data.percentile_ms(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GT(p50, 0.0);
}

}  // namespace
}  // namespace hsconas::obs
