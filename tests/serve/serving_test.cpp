// Serving-layer contracts (ctest -L serving; the TSan CI stage re-runs
// this label): dynamic-batching flush rules, FIFO scheduling, the
// zero-allocation steady state, graceful shutdown, batched-vs-sequential
// bit-identity, and the ThreadPool::configure_global mid-flight rejection
// these lanes rely on. Each TEST runs as its own ctest process
// (gtest_discover_tests), so global-pool and metric state never leaks
// between cases.

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/arch.h"
#include "core/search_space.h"
#include "core/supernet.h"
#include "nn/fused_conv.h"
#include "obs/metrics.h"
#include "serve/batch_server.h"
#include "serve/load_gen.h"
#include "tensor/pool_allocator.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace hsconas;

core::SearchSpace proxy_space() {
  return core::SearchSpace(core::SearchSpaceConfig::proxy());
}

core::Arch sample_arch(const core::SearchSpace& space,
                       std::uint64_t seed = 3) {
  util::Rng rng(seed);
  return core::Arch::random(space, rng);
}

std::vector<float> sample_input(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> xs(n);
  for (float& v : xs) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return xs;
}

TEST(BatchServer, ValidatesSpanGeometry) {
  const core::SearchSpace space = proxy_space();
  serve::ServerConfig cfg;
  cfg.workers = 1;
  serve::BatchServer server(space, sample_arch(space), cfg);

  std::vector<float> input(server.input_size());
  std::vector<float> output(server.output_size());
  std::vector<float> short_input(server.input_size() - 1);
  std::vector<float> short_output(server.output_size() - 1);
  EXPECT_THROW(server.infer(short_input, output), InvalidArgument);
  EXPECT_THROW(server.infer(input, short_output), InvalidArgument);
  EXPECT_NO_THROW(server.infer(input, output));
}

// A full batch must flush immediately — well before a deliberately huge
// deadline window.
TEST(BatchServer, FlushesAtBatchMaxBeforeDeadline) {
  const core::SearchSpace space = proxy_space();
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.batch_max = 4;
  cfg.deadline_us = 5'000'000;  // 5 s: a deadline flush would time out
  serve::BatchServer server(space, sample_arch(space), cfg);

  std::vector<std::vector<float>> inputs, outputs;
  for (std::size_t i = 0; i < 4; ++i) {
    inputs.push_back(sample_input(server.input_size(), 100 + i));
    outputs.emplace_back(server.output_size());
  }
  std::vector<serve::Receipt> receipts(4);
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < 4; ++i) {
    clients.emplace_back([&, i] {
      receipts[i] = server.infer(inputs[i], outputs[i]);
    });
  }
  for (auto& t : clients) t.join();

  // One batch, fully occupied: every receipt carries the same batch id
  // and the batch indexes are a permutation of 0..3.
  std::vector<bool> seen(4, false);
  for (const serve::Receipt& r : receipts) {
    EXPECT_EQ(r.batch, receipts[0].batch);
    ASSERT_LT(r.batch_index, 4u);
    EXPECT_FALSE(seen[r.batch_index]);
    seen[r.batch_index] = true;
    // Flushed at occupancy, not at the 5 s deadline.
    EXPECT_LT(r.latency_ms, 4000.0);
  }
}

// A lone request must be served by the deadline flush even though the
// batch never fills.
TEST(BatchServer, DeadlineFlushServesPartialBatch) {
  const core::SearchSpace space = proxy_space();
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.batch_max = 64;
  cfg.deadline_us = 20'000;  // 20 ms window
  serve::BatchServer server(space, sample_arch(space), cfg);

  std::vector<float> input = sample_input(server.input_size(), 7);
  std::vector<float> output(server.output_size());
  const serve::Receipt r = server.infer(input, output);
  EXPECT_EQ(r.batch_index, 0u);
  // The request waited out (most of) the batching window.
  EXPECT_GE(r.latency_ms, 10.0);
  for (float v : output) EXPECT_TRUE(std::isfinite(v));
}

// FIFO: sorted by arrival ticket, placements (batch, batch_index) must be
// lexicographically non-decreasing — no request overtakes an earlier one.
TEST(BatchServer, FifoUnderConcurrentSubmitters) {
  const core::SearchSpace space = proxy_space();
  serve::ServerConfig cfg;
  cfg.workers = 2;
  cfg.batch_max = 3;
  cfg.deadline_us = 500;
  serve::BatchServer server(space, sample_arch(space), cfg);

  constexpr std::size_t kClients = 6;
  constexpr std::size_t kPerClient = 10;
  std::vector<serve::Receipt> receipts(kClients * kPerClient);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<float> input = sample_input(server.input_size(), c);
      std::vector<float> output(server.output_size());
      for (std::size_t r = 0; r < kPerClient; ++r) {
        receipts[c * kPerClient + r] = server.infer(input, output);
      }
    });
  }
  for (auto& t : clients) t.join();

  std::vector<const serve::Receipt*> by_ticket;
  for (const serve::Receipt& r : receipts) by_ticket.push_back(&r);
  std::sort(by_ticket.begin(), by_ticket.end(),
            [](const serve::Receipt* a, const serve::Receipt* b) {
              return a->ticket < b->ticket;
            });
  for (std::size_t i = 0; i < by_ticket.size(); ++i) {
    EXPECT_EQ(by_ticket[i]->ticket, i);  // dense arrival order
    if (i == 0) continue;
    const serve::Receipt& prev = *by_ticket[i - 1];
    const serve::Receipt& cur = *by_ticket[i];
    EXPECT_TRUE(cur.batch > prev.batch ||
                (cur.batch == prev.batch &&
                 cur.batch_index == prev.batch_index + 1))
        << "ticket " << cur.ticket << " placed at (" << cur.batch << ","
        << cur.batch_index << ") after (" << prev.batch << ","
        << prev.batch_index << ")";
  }
}

// The headline memory contract: once warm, serving performs zero heap
// allocations — pinned by the tensor-pool and workspace heap counters.
TEST(BatchServer, ZeroAllocationSteadyState) {
  // Single-worker global pool: GEMM scratch leases stay on the lane
  // thread, so the workspace counter below is deterministic.
  util::ThreadPool::configure_global(1);
  const core::SearchSpace space = proxy_space();
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.batch_max = 1;
  cfg.deadline_us = 0;
  serve::BatchServer server(space, sample_arch(space), cfg);

  std::vector<float> input = sample_input(server.input_size(), 11);
  std::vector<float> output(server.output_size());
  for (int i = 0; i < 10; ++i) server.infer(input, output);  // warm-up

  const std::uint64_t pool_heap0 = tensor::tensor_pool_heap_allocs();
  const std::uint64_t pool_hits0 = tensor::tensor_pool_hits();
  const double ws_heap0 =
      static_cast<double>(obs::counter("hsconas.workspace.heap_allocs")
                              .value());
  for (int i = 0; i < 30; ++i) server.infer(input, output);

  EXPECT_EQ(tensor::tensor_pool_heap_allocs(), pool_heap0)
      << "steady-state serving hit the heap for tensor storage";
  EXPECT_EQ(static_cast<double>(
                obs::counter("hsconas.workspace.heap_allocs").value()),
            ws_heap0)
      << "steady-state serving grew the scratch arena";
  // And the pool was actually exercised, not bypassed.
  EXPECT_GT(tensor::tensor_pool_hits(), pool_hits0);
  server.shutdown();
  util::ThreadPool::configure_global(0);
}

// Graceful shutdown: everything enqueued before shutdown() completes;
// everything after is rejected with a checked error.
TEST(BatchServer, GracefulShutdownDrainsInFlightRequests) {
  const core::SearchSpace space = proxy_space();
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.batch_max = 100;           // never fills
  cfg.deadline_us = 2'000'000;   // 2 s: requests linger until shutdown
  serve::BatchServer server(space, sample_arch(space), cfg);

  constexpr std::size_t kClients = 6;
  std::atomic<std::size_t> completed{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<float> input = sample_input(server.input_size(), c);
      std::vector<float> output(server.output_size());
      server.infer(input, output);
      for (float v : output) ASSERT_TRUE(std::isfinite(v));
      completed.fetch_add(1);
    });
  }
  // Wait until all six are queued (none can complete: the batch cannot
  // fill and the deadline is far away), then pull the plug.
  obs::Gauge& depth = obs::gauge("hsconas.serve.queue_depth");
  while (depth.value() < static_cast<double>(kClients)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.shutdown();
  for (auto& t : clients) t.join();
  EXPECT_EQ(completed.load(), kClients);

  std::vector<float> input(server.input_size());
  std::vector<float> output(server.output_size());
  EXPECT_THROW(server.infer(input, output), Error);
}

// Batched execution must be bit-identical to one-sample-at-a-time
// forwards through an identically-seeded standalone network.
TEST(BatchServer, BatchedMatchesSequentialBitExact) {
  const core::SearchSpace space = proxy_space();
  const core::Arch arch = sample_arch(space);
  serve::ServerConfig cfg;
  cfg.workers = 2;
  cfg.batch_max = 4;
  cfg.deadline_us = 5'000'000;
  cfg.seed = 99;
  serve::BatchServer server(space, arch, cfg);

  std::vector<std::vector<float>> inputs, outputs;
  for (std::size_t i = 0; i < 4; ++i) {
    inputs.push_back(sample_input(server.input_size(), 40 + i));
    outputs.emplace_back(server.output_size());
  }
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < 4; ++i) {
    clients.emplace_back([&, i] { server.infer(inputs[i], outputs[i]); });
  }
  for (auto& t : clients) t.join();

  // Reference: same seed, same arch, same fused eval path, batch of 1.
  nn::set_inference_fusion(true);
  core::Supernet reference(space, cfg.seed, arch);
  reference.set_training(false);
  const auto& sc = space.config();
  for (std::size_t i = 0; i < 4; ++i) {
    tensor::Tensor one({1, sc.input_channels, sc.input_size, sc.input_size});
    std::copy(inputs[i].begin(), inputs[i].end(), one.data());
    const tensor::Tensor logits = reference.forward(one);
    ASSERT_EQ(static_cast<std::size_t>(logits.numel()),
              server.output_size());
    for (std::size_t j = 0; j < server.output_size(); ++j) {
      EXPECT_EQ(outputs[i][j], logits.data()[j])
          << "sample " << i << " logit " << j
          << " differs between batched and sequential execution";
    }
  }
}

// Load-generator smoke: a closed-loop run completes error-free with a
// coherent report.
TEST(LoadGen, ClosedLoopRunProducesCoherentReport) {
  const core::SearchSpace space = proxy_space();
  serve::ServerConfig cfg;
  cfg.workers = 2;
  cfg.batch_max = 4;
  serve::BatchServer server(space, sample_arch(space), cfg);

  serve::LoadGenConfig load;
  load.clients = 4;
  load.requests_per_client = 10;
  load.warmup_per_client = 3;
  const serve::LoadGenReport report = serve::run_load(server, load);

  EXPECT_EQ(report.total_requests, 40u);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_GT(report.throughput_rps, 0.0);
  EXPECT_GT(report.latency_p50_ms, 0.0);
  EXPECT_LE(report.latency_p50_ms, report.latency_p95_ms);
  EXPECT_LE(report.latency_p95_ms, report.latency_p99_ms);
  EXPECT_LE(report.latency_p99_ms, report.latency_max_ms);
  EXPECT_GT(report.batches, 0.0);
  EXPECT_GE(report.batch_occupancy_mean, 1.0);

  const util::Json doc = report.to_json();
  EXPECT_EQ(doc.find("schema")->as_string(), "hsconas.serving.v1");
  EXPECT_DOUBLE_EQ(doc.find("results")->find("total_requests")->as_double(),
                   40.0);
}

// The reconfiguration contract the serving lanes rely on (and the bug
// this PR fixes): swapping the global pool under live work is a checked
// error, not a race. TSan covers the submit/busy/configure interleaving.
TEST(ThreadPoolReconfigure, RejectsMidFlightReconfiguration) {
  util::ThreadPool::configure_global(2);
  util::ThreadPool& pool = util::ThreadPool::global();

  std::atomic<bool> release{false};
  pool.submit([&] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  EXPECT_TRUE(pool.busy());
  EXPECT_THROW(util::ThreadPool::configure_global(4), Error);
  // The rejected call must leave the current pool fully functional.
  release.store(true);
  pool.wait();
  EXPECT_FALSE(pool.busy());
  EXPECT_NO_THROW(util::ThreadPool::configure_global(0));
}

TEST(ThreadPoolReconfigure, RejectsWhileParallelForInFlight) {
  util::ThreadPool::configure_global(2);
  util::ThreadPool& pool = util::ThreadPool::global();

  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::thread looper([&] {
    pool.parallel_for(8, [&](std::size_t) {
      entered.store(true);
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  });
  while (!entered.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(pool.busy());
  EXPECT_THROW(util::ThreadPool::configure_global(4), Error);
  release.store(true);
  looper.join();
  EXPECT_FALSE(pool.busy());
  EXPECT_NO_THROW(util::ThreadPool::configure_global(0));
}

}  // namespace
