// Post-training-quantization contracts (nn/quantize.h): quantize /
// dequantize round-trip error bounds, observer zero-inclusion and
// saturation at the u8 / ±127 extremes, int8-vs-fp32 layer agreement
// within scale-derived tolerance, exact fallback for uncalibrated
// layers, calibration-table serialization round-trips (bit-identical
// int8 outputs after import), batched == sequential bit-identity, and
// thread-count determinism of the quantized forward.

#include "nn/quantize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "nn/activation.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/fused_conv.h"
#include "nn/linear.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/serial.h"
#include "util/thread_pool.h"

namespace hsconas::nn {
namespace {

using tensor::QuantParams;
using tensor::Tensor;

/// Restore the process-wide dtype/calibration switches on scope exit so
/// a failing assertion can't leak int8 mode into later tests.
class QuantModeGuard {
 public:
  QuantModeGuard()
      : dtype_(inference_dtype()), calib_(calibration_mode()) {}
  ~QuantModeGuard() {
    set_inference_dtype(dtype_);
    set_calibration_mode(calib_);
  }

 private:
  InferenceDType dtype_;
  bool calib_;
};

class PoolGuard {
 public:
  explicit PoolGuard(std::size_t threads)
      : prev_(util::ThreadPool::global().size()) {
    util::ThreadPool::configure_global(threads);
  }
  ~PoolGuard() { util::ThreadPool::configure_global(prev_); }

 private:
  std::size_t prev_;
};

float max_abs_diff(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.shape(), b.shape());
  float worst = 0.0f;
  for (long i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, std::abs(a.data()[i] - b.data()[i]));
  }
  return worst;
}

float max_abs(const Tensor& a) {
  float worst = 0.0f;
  for (long i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, std::abs(a.data()[i]));
  }
  return worst;
}

TEST(Quantize, RoundTripWithinHalfScale) {
  util::Rng rng(31);
  MinMaxObserver obs;
  std::vector<float> x(1000);
  for (float& v : x) v = static_cast<float>(rng.uniform(-3.0, 5.0));
  obs.observe(x.data(), x.size());
  const QuantParams p = obs.params();
  ASSERT_GT(p.scale, 0.0f);
  std::vector<std::uint8_t> q(x.size());
  quantize_u8(x.data(), x.size(), p, q.data());
  for (std::size_t i = 0; i < x.size(); ++i) {
    // In-range values round-trip within half a quantization step.
    EXPECT_NEAR(x[i], dequantize_u8(q[i], p), 0.5f * p.scale + 1e-6f);
  }
}

TEST(Quantize, ObserverRangeAlwaysIncludesZero) {
  MinMaxObserver obs;
  // All-positive data (a ReLU output): the range must widen to [0, max]
  // so that real 0.0 maps exactly to the zero_point code.
  std::vector<float> x = {2.0f, 4.0f, 8.0f};
  obs.observe(x.data(), x.size());
  const QuantParams p = obs.params();
  EXPECT_EQ(0, p.zero_point);
  std::uint8_t q = 255;
  const float zero = 0.0f;
  quantize_u8(&zero, 1, p, &q);
  EXPECT_EQ(0.0f, dequantize_u8(q, p));
}

TEST(Quantize, DegenerateRangeGivesIdentityQuantizer) {
  MinMaxObserver unseen;
  EXPECT_EQ(1.0f, unseen.params().scale);
  EXPECT_EQ(0, unseen.params().zero_point);
  MinMaxObserver zeros;
  std::vector<float> x(8, 0.0f);
  zeros.observe(x.data(), x.size());
  EXPECT_EQ(1.0f, zeros.params().scale);
}

TEST(Quantize, SaturatesAtU8Extremes) {
  QuantParams p{0.1f, 128};
  const float lo = -1e6f, hi = 1e6f;
  std::uint8_t q = 7;
  quantize_u8(&lo, 1, p, &q);
  EXPECT_EQ(0, q);
  quantize_u8(&hi, 1, p, &q);
  EXPECT_EQ(255, q);
}

TEST(Quantize, WeightCodesSaturateAt127) {
  // Freeze with deliberately small scales: codes must clamp to ±127,
  // never reach -128 (which would break the VNNI accumulation bound).
  util::Rng rng(32);
  Tensor w = Tensor::uniform({2, 8}, -4.0f, 4.0f, rng);
  w.at(0, 0) = 100.0f;
  w.at(1, 0) = -100.0f;
  QuantState qs;
  qs.freeze_from(w, 2, QuantParams{1.0f, 0},
                 std::vector<float>{0.01f, 0.01f});
  EXPECT_EQ(127, qs.qweight.i8_data()[0]);
  EXPECT_EQ(-127, qs.qweight.i8_data()[8]);
  for (long i = 0; i < qs.qweight.numel(); ++i) {
    EXPECT_GE(qs.qweight.i8_data()[i], -127);
    EXPECT_LE(qs.qweight.i8_data()[i], 127);
  }
}

TEST(Quantize, FreezeRecordsRowSums) {
  util::Rng rng(33);
  Tensor w = Tensor::uniform({3, 16}, -1.0f, 1.0f, rng);
  QuantState qs;
  qs.freeze(w, 3);
  ASSERT_TRUE(qs.ready);
  ASSERT_EQ(3u, qs.weight_scales.size());
  for (long c = 0; c < 3; ++c) {
    std::int32_t sum = 0;
    for (long t = 0; t < 16; ++t) sum += qs.qweight.i8_data()[c * 16 + t];
    EXPECT_EQ(sum, qs.weight_row_sums[static_cast<std::size_t>(c)]);
    // Symmetric per-channel scale: the largest-magnitude weight maps to
    // ±127 exactly.
    EXPECT_GT(qs.weight_scales[static_cast<std::size_t>(c)], 0.0f);
  }
}

struct ConvCase {
  long in_ch, out_ch, kernel, stride, pad, groups;
  bool bias;
};

TEST(QuantizedConv, AgreesWithFp32WithinScaleTolerance) {
  QuantModeGuard guard;
  const ConvCase cases[] = {
      {8, 12, 3, 1, 1, 1, true},   // dense
      {8, 8, 3, 2, 1, 8, false},   // depthwise, strided
      {12, 8, 1, 1, 0, 4, true},   // grouped pointwise
      {6, 6, 5, 1, 2, 6, true},    // depthwise 5x5 with bias
  };
  int idx = 0;
  for (const ConvCase& c : cases) {
    util::Rng rng(40 + idx++);
    Conv2d conv(c.in_ch, c.out_ch, c.kernel, c.stride, c.pad, c.groups,
                c.bias, rng);
    conv.set_training(false);
    std::vector<Tensor> batches;
    batches.push_back(Tensor::uniform({2, c.in_ch, 9, 9}, -1.5f, 1.5f, rng));
    batches.push_back(Tensor::uniform({2, c.in_ch, 9, 9}, -1.0f, 2.0f, rng));
    ASSERT_EQ(1u, calibrate(conv, batches));

    const Tensor x = Tensor::uniform({3, c.in_ch, 9, 9}, -1.2f, 1.2f, rng);
    const Tensor y32 = conv.forward(x);
    set_inference_dtype(InferenceDType::kI8);
    const Tensor y8 = conv.forward(x);
    set_inference_dtype(InferenceDType::kF32);
    // Error budget: activation rounding (scale/2 per tap) plus weight
    // rounding, accumulated over the reduction. 2% of the output range
    // is far above what the 3x3/1x1 windows here can accumulate, and far
    // below any real disagreement (wrong zero-point correction shifts
    // outputs by whole units).
    const float tol = 0.02f * (max_abs(y32) + 1.0f);
    EXPECT_LT(max_abs_diff(y32, y8), tol)
        << "case " << idx - 1 << ": int8 conv diverged from fp32";
  }
}

TEST(QuantizedConv, UncalibratedLayerFallsBackToFp32Exactly) {
  QuantModeGuard guard;
  util::Rng rng(45);
  Conv2d conv(4, 6, 3, 1, 1, 1, true, rng);
  conv.set_training(false);
  const Tensor x = Tensor::uniform({2, 4, 7, 7}, -1.0f, 1.0f, rng);
  const Tensor y32 = conv.forward(x);
  set_inference_dtype(InferenceDType::kI8);  // no calibration ran
  const Tensor y8 = conv.forward(x);
  ASSERT_EQ(0, std::memcmp(y32.data(), y8.data(),
                           static_cast<std::size_t>(y32.numel()) *
                               sizeof(float)));
}

TEST(QuantizedConv, FusedPeepholeComposesWithInt8) {
  QuantModeGuard guard;
  util::Rng rng(46);
  auto seq = std::make_unique<Sequential>("block");
  auto* conv = seq->add(std::make_unique<Conv2d>(6, 10, 3, 1, 1, 1, true,
                                                 rng));
  auto* bn = seq->add(std::make_unique<BatchNorm2d>(10));
  seq->add(std::make_unique<ReLU>());
  (void)conv;
  // Push real statistics through BN, then freeze into eval mode.
  seq->set_training(true);
  (void)seq->forward(Tensor::uniform({4, 6, 9, 9}, -1.0f, 1.0f, rng));
  seq->set_training(false);
  for (long c = 0; c < bn->channels(); ++c) {
    bn->gamma().value.at(c) = static_cast<float>(rng.uniform(0.5, 1.5));
    bn->beta().value.at(c) = static_cast<float>(rng.uniform(-0.5, 0.5));
  }
  std::vector<Tensor> batches;
  batches.push_back(Tensor::uniform({2, 6, 9, 9}, -1.0f, 1.0f, rng));
  ASSERT_EQ(1u, calibrate(*seq, batches));

  const Tensor x = Tensor::uniform({2, 6, 9, 9}, -1.0f, 1.0f, rng);
  const bool prev_fusion = inference_fusion_enabled();
  set_inference_fusion(true);
  const Tensor y32 = seq->forward(x);
  set_inference_dtype(InferenceDType::kI8);
  const Tensor y8 = seq->forward(x);
  set_inference_dtype(InferenceDType::kF32);
  set_inference_fusion(prev_fusion);
  const float tol = 0.02f * (max_abs(y32) + 1.0f);
  EXPECT_LT(max_abs_diff(y32, y8), tol)
      << "int8 under the conv/BN/act fusion peephole diverged";
}

TEST(QuantizedLinear, AgreesWithFp32WithinScaleTolerance) {
  QuantModeGuard guard;
  util::Rng rng(47);
  Linear lin(32, 10, rng);
  lin.set_training(false);
  std::vector<Tensor> batches;
  batches.push_back(Tensor::uniform({4, 32}, -2.0f, 2.0f, rng));
  ASSERT_EQ(1u, calibrate(lin, batches));
  const Tensor x = Tensor::uniform({5, 32}, -1.5f, 1.5f, rng);
  const Tensor y32 = lin.forward(x);
  set_inference_dtype(InferenceDType::kI8);
  const Tensor y8 = lin.forward(x);
  set_inference_dtype(InferenceDType::kF32);
  const float tol = 0.02f * (max_abs(y32) + 1.0f);
  EXPECT_LT(max_abs_diff(y32, y8), tol);
}

TEST(QuantizedLinear, BatchedEqualsSequentialBitExactly) {
  QuantModeGuard guard;
  util::Rng rng(48);
  Linear lin(16, 6, rng);
  lin.set_training(false);
  std::vector<Tensor> batches;
  batches.push_back(Tensor::uniform({3, 16}, -1.0f, 1.0f, rng));
  calibrate(lin, batches);
  set_inference_dtype(InferenceDType::kI8);
  const Tensor x = Tensor::uniform({4, 16}, -1.0f, 1.0f, rng);
  const Tensor batched = lin.forward(x);
  for (long s = 0; s < 4; ++s) {
    Tensor one({1, 16});
    std::memcpy(one.data(), x.data() + s * 16, 16 * sizeof(float));
    const Tensor ys = lin.forward(one);
    ASSERT_EQ(0, std::memcmp(batched.data() + s * 6, ys.data(),
                             6 * sizeof(float)))
        << "sample " << s << " differs between batched and sequential";
  }
}

TEST(Calibration, RestoresModeAndDtypeSwitches) {
  QuantModeGuard guard;
  util::Rng rng(49);
  Conv2d conv(4, 4, 3, 1, 1, 1, false, rng);
  conv.set_training(true);
  set_inference_dtype(InferenceDType::kI8);
  std::vector<Tensor> batches;
  batches.push_back(Tensor::uniform({1, 4, 7, 7}, -1.0f, 1.0f, rng));
  calibrate(conv, batches);
  EXPECT_TRUE(conv.training());
  EXPECT_FALSE(calibration_mode());
  EXPECT_EQ(InferenceDType::kI8, inference_dtype());
  EXPECT_THROW(calibrate(conv, {}), InvalidArgument);
}

TEST(Calibration, ExportImportRoundTripsBitExactly) {
  QuantModeGuard guard;
  util::Rng rng(50);
  auto build = [] {
    util::Rng wrng(777);  // identical weights for both models
    auto seq = std::make_unique<Sequential>("net");
    seq->add(std::make_unique<Conv2d>(4, 8, 3, 1, 1, 1, true, wrng));
    seq->add(std::make_unique<ReLU>());
    seq->add(std::make_unique<Conv2d>(8, 8, 3, 1, 1, 8, false, wrng));
    return seq;
  };
  auto a = build();
  a->set_training(false);
  std::vector<Tensor> batches;
  batches.push_back(Tensor::uniform({2, 4, 9, 9}, -1.0f, 1.0f, rng));
  ASSERT_EQ(2u, calibrate(*a, batches));

  util::ByteWriter w;
  export_calibration(*a, w);
  auto b = build();
  b->set_training(false);
  util::ByteReader r(w.data());
  import_calibration(*b, r);
  r.expect_done();

  set_inference_dtype(InferenceDType::kI8);
  const Tensor x = Tensor::uniform({2, 4, 9, 9}, -1.0f, 1.0f, rng);
  const Tensor ya = a->forward(x);
  const Tensor yb = b->forward(x);
  ASSERT_EQ(0, std::memcmp(ya.data(), yb.data(),
                           static_cast<std::size_t>(ya.numel()) *
                               sizeof(float)))
      << "imported calibration produced different int8 outputs";
}

TEST(Calibration, ImportRejectsMismatchedModel) {
  QuantModeGuard guard;
  util::Rng rng(51);
  Conv2d conv(4, 8, 3, 1, 1, 1, true, rng);
  conv.set_training(false);
  std::vector<Tensor> batches;
  batches.push_back(Tensor::uniform({1, 4, 7, 7}, -1.0f, 1.0f, rng));
  calibrate(conv, batches);
  util::ByteWriter w;
  export_calibration(conv, w);

  // Two quantizable layers where the table has one.
  Sequential two("two");
  two.add(std::make_unique<Conv2d>(4, 8, 3, 1, 1, 1, true, rng));
  two.add(std::make_unique<Conv2d>(8, 8, 3, 1, 1, 1, true, rng));
  util::ByteReader r1(w.data());
  EXPECT_THROW(import_calibration(two, r1), InvalidArgument);

  // Right layer count, wrong channel count.
  Conv2d other(4, 6, 3, 1, 1, 1, true, rng);
  util::ByteReader r2(w.data());
  EXPECT_THROW(import_calibration(other, r2), InvalidArgument);
}

TEST(QuantizedConv, BitIdenticalAcrossThreadCounts) {
  QuantModeGuard guard;
  util::Rng rng(52);
  Conv2d conv(16, 24, 3, 1, 1, 2, true, rng);
  conv.set_training(false);
  std::vector<Tensor> batches;
  batches.push_back(Tensor::uniform({2, 16, 14, 14}, -1.0f, 1.0f, rng));
  calibrate(conv, batches);
  set_inference_dtype(InferenceDType::kI8);
  const Tensor x = Tensor::uniform({4, 16, 14, 14}, -1.0f, 1.0f, rng);
  Tensor y1;
  {
    PoolGuard pool(1);
    y1 = conv.forward(x);
  }
  for (const std::size_t threads : {2u, 8u}) {
    PoolGuard pool(threads);
    const Tensor yt = conv.forward(x);
    ASSERT_EQ(0, std::memcmp(y1.data(), yt.data(),
                             static_cast<std::size_t>(y1.numel()) *
                                 sizeof(float)))
        << "thread count " << threads << " changed the quantized result";
  }
}

}  // namespace
}  // namespace hsconas::nn
