#include "nn/dropout.h"

#include <gtest/gtest.h>

#include "tests/nn/grad_check.h"
#include "util/error.h"

namespace hsconas::nn {
namespace {

using tensor::Tensor;

TEST(Dropout, EvalModeIsIdentity) {
  Dropout drop(0.5);
  drop.set_training(false);
  util::Rng rng(1);
  const Tensor x = Tensor::uniform({4, 8}, -1, 1, rng);
  const Tensor y = drop.forward(x);
  for (long i = 0; i < x.numel(); ++i) {
    EXPECT_EQ(y.flat()[static_cast<std::size_t>(i)],
              x.flat()[static_cast<std::size_t>(i)]);
  }
  // Backward in eval mode passes gradients through untouched.
  const Tensor dx = drop.backward(Tensor::ones(x.shape()));
  EXPECT_EQ(dx.flat()[0], 1.0f);
}

TEST(Dropout, ZeroProbabilityIsIdentityInTraining) {
  Dropout drop(0.0);
  drop.set_training(true);
  const Tensor x = Tensor::full({3, 3}, 2.0f);
  const Tensor y = drop.forward(x);
  EXPECT_EQ(y.flat()[0], 2.0f);
}

TEST(Dropout, TrainingDropsAndRescales) {
  Dropout drop(0.5, 7);
  drop.set_training(true);
  const Tensor x = Tensor::ones({1, 10000});
  const Tensor y = drop.forward(x);
  int zeros = 0;
  for (float v : y.flat()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0f);  // 1/(1-0.5) scaling
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.5, 0.03);
  // Expectation preserved.
  EXPECT_NEAR(y.mean(), 1.0f, 0.05f);
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout drop(0.3, 9);
  drop.set_training(true);
  const Tensor x = Tensor::ones({1, 64});
  const Tensor y = drop.forward(x);
  const Tensor dx = drop.backward(Tensor::ones(x.shape()));
  for (long i = 0; i < x.numel(); ++i) {
    EXPECT_EQ(dx.flat()[static_cast<std::size_t>(i)],
              y.flat()[static_cast<std::size_t>(i)]);
  }
}

TEST(Dropout, GradCheckThroughFixedMask) {
  // With the mask frozen by the last forward, dropout is linear — but the
  // generic harness re-runs forward (fresh masks), so check manually:
  // d(loss)/dx = mask elementwise.
  Dropout drop(0.4, 11);
  drop.set_training(true);
  util::Rng rng(12);
  const Tensor x = Tensor::uniform({2, 16}, -1, 1, rng);
  const Tensor y = drop.forward(x);
  Tensor w = Tensor::uniform(y.shape(), -1, 1, rng);
  const Tensor dx = drop.backward(w);
  for (long i = 0; i < x.numel(); ++i) {
    const float mask_i = x.flat()[static_cast<std::size_t>(i)] == 0.0f
                             ? 0.0f
                             : y.flat()[static_cast<std::size_t>(i)] /
                                   x.flat()[static_cast<std::size_t>(i)];
    EXPECT_NEAR(dx.flat()[static_cast<std::size_t>(i)],
                w.flat()[static_cast<std::size_t>(i)] * mask_i, 1e-5f);
  }
}

TEST(Dropout, RejectsInvalidProbability) {
  EXPECT_THROW(Dropout(-0.1), InvalidArgument);
  EXPECT_THROW(Dropout(1.0), InvalidArgument);
}

}  // namespace
}  // namespace hsconas::nn
