// Loss, optimizer and schedule tests, plus an end-to-end "can it learn"
// check on a tiny network.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/activation.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "tests/nn/grad_check.h"
#include "util/error.h"

namespace hsconas::nn {
namespace {

using tensor::Tensor;

TEST(Softmax, RowsSumToOne) {
  util::Rng rng(1);
  const Tensor logits = Tensor::uniform({4, 7}, -5.0f, 5.0f, rng);
  const Tensor p = softmax(logits);
  for (long s = 0; s < 4; ++s) {
    double sum = 0.0;
    for (long c = 0; c < 7; ++c) sum += p.at(s, c);
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  Tensor logits({1, 3});
  logits.at(0, 0) = 1000.0f;
  logits.at(0, 1) = 999.0f;
  logits.at(0, 2) = -1000.0f;
  const Tensor p = softmax(logits);
  EXPECT_TRUE(p.all_finite());
  EXPECT_GT(p.at(0, 0), p.at(0, 1));
}

TEST(CrossEntropy, UniformLogitsGiveLogC) {
  const Tensor logits({2, 10});
  const auto res = cross_entropy(logits, {3, 7});
  EXPECT_NEAR(res.loss, std::log(10.0), 1e-5);
}

TEST(CrossEntropy, GradientMatchesFiniteDifference) {
  util::Rng rng(2);
  Tensor logits = Tensor::uniform({3, 5}, -2.0f, 2.0f, rng);
  const std::vector<int> labels{0, 2, 4};
  const auto res = cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (long i = 0; i < logits.numel(); i += 2) {
    float& v = logits.flat()[static_cast<std::size_t>(i)];
    const float saved = v;
    v = saved + eps;
    const double up = cross_entropy(logits, labels).loss;
    v = saved - eps;
    const double down = cross_entropy(logits, labels).loss;
    v = saved;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(res.grad.flat()[static_cast<std::size_t>(i)], numeric, 2e-3);
  }
}

TEST(CrossEntropy, TopKCounting) {
  Tensor logits({2, 6});
  // Sample 0: class 1 is top-1.
  logits.at(0, 1) = 5.0f;
  // Sample 1: label 0 ranked 6th of 6 -> outside top-5.
  for (long c = 1; c < 6; ++c) logits.at(1, c) = static_cast<float>(c + 1);
  const auto res = cross_entropy(logits, {1, 0});
  EXPECT_EQ(res.correct_top1, 1u);
  EXPECT_EQ(res.correct_top5, 1u);  // only sample 0
}

TEST(CrossEntropy, LabelSmoothingRaisesLossOnConfidentCorrect) {
  Tensor logits({1, 4});
  logits.at(0, 0) = 10.0f;
  const auto plain = cross_entropy(logits, {0}, 0.0);
  const auto smoothed = cross_entropy(logits, {0}, 0.1);
  EXPECT_GT(smoothed.loss, plain.loss);
}

TEST(CrossEntropy, Validation) {
  Tensor logits({2, 3});
  EXPECT_THROW(cross_entropy(logits, {0}), InvalidArgument);
  EXPECT_THROW(cross_entropy(logits, {0, 3}), InvalidArgument);
  EXPECT_THROW(cross_entropy(logits, {0, 1}, 1.0), InvalidArgument);
}

TEST(SGD, PlainGradientStep) {
  Parameter p("w", Tensor::full({2}, 1.0f), true);
  p.grad.fill(0.5f);
  SGD opt({&p}, SGD::Config{0.1, 0.0, 0.0, 0.0});
  opt.step();
  EXPECT_FLOAT_EQ(p.value.at(0), 1.0f - 0.1f * 0.5f);
}

TEST(SGD, MomentumAccumulates) {
  Parameter p("w", Tensor({1}), true);
  SGD opt({&p}, SGD::Config{1.0, 0.9, 0.0, 0.0});
  p.grad.fill(1.0f);
  opt.step();  // v=1, w=-1
  EXPECT_FLOAT_EQ(p.value.at(0), -1.0f);
  p.zero_grad();
  p.grad.fill(1.0f);
  opt.step();  // v=1.9, w=-2.9
  EXPECT_FLOAT_EQ(p.value.at(0), -2.9f);
}

TEST(SGD, WeightDecayOnlyWhereFlagged) {
  Parameter decayed("w", Tensor::full({1}, 2.0f), true);
  Parameter plain("b", Tensor::full({1}, 2.0f), false);
  SGD opt({&decayed, &plain}, SGD::Config{0.5, 0.0, 0.1, 0.0});
  opt.step();  // zero grads; only decay acts
  EXPECT_FLOAT_EQ(decayed.value.at(0), 2.0f - 0.5f * 0.1f * 2.0f);
  EXPECT_FLOAT_EQ(plain.value.at(0), 2.0f);
}

TEST(SGD, GradClippingScalesGlobalNorm) {
  Parameter p("w", Tensor({4}), true);
  p.grad.fill(10.0f);  // norm = 20
  SGD opt({&p}, SGD::Config{1.0, 0.0, 0.0, 5.0});
  const double norm = opt.step();
  EXPECT_NEAR(norm, 20.0, 1e-6);
  // Effective grad = 10 * (5/20) = 2.5 per coordinate.
  EXPECT_NEAR(p.value.at(0), -2.5f, 1e-4);
}

TEST(SGD, ZeroGradClearsAll) {
  Parameter p("w", Tensor({2}), true);
  p.grad.fill(3.0f);
  SGD opt({&p}, SGD::Config{});
  opt.zero_grad();
  EXPECT_FLOAT_EQ(p.grad.at(0), 0.0f);
}

TEST(CosineSchedule, EndpointsAndMonotoneDecay) {
  const CosineSchedule sched(1.0, 100);
  EXPECT_NEAR(sched.lr_at(0), 1.0, 1e-9);
  EXPECT_NEAR(sched.lr_at(99), 0.0, 1e-9);
  EXPECT_NEAR(sched.lr_at(49), 0.5, 0.05);
  for (long s = 1; s < 100; ++s) {
    EXPECT_LE(sched.lr_at(s), sched.lr_at(s - 1) + 1e-12);
  }
  // Clamp past the end.
  EXPECT_NEAR(sched.lr_at(1000), 0.0, 1e-9);
}

TEST(CosineSchedule, WarmupRampsLinearly) {
  const CosineSchedule sched(1.0, 100, 10);
  EXPECT_NEAR(sched.lr_at(0), 0.1, 1e-9);
  EXPECT_NEAR(sched.lr_at(4), 0.5, 1e-9);
  EXPECT_NEAR(sched.lr_at(10), 1.0, 1e-9);
}

TEST(CosineSchedule, Validation) {
  EXPECT_THROW(CosineSchedule(1.0, 0), InvalidArgument);
  EXPECT_THROW(CosineSchedule(1.0, 10, 10), InvalidArgument);
  EXPECT_THROW(CosineSchedule(1.0, 10, -1), InvalidArgument);
}

TEST(Training, TinyMlpLearnsXor) {
  // End-to-end sanity for the whole training substrate: a 2-8-2 MLP must
  // fit XOR within a few hundred steps.
  util::Rng rng(123);
  Sequential mlp("mlp");
  auto* fc1 = mlp.add(std::make_unique<Linear>(2, 8, rng));
  mlp.add(std::make_unique<ReLU>());
  auto* fc2 = mlp.add(std::make_unique<Linear>(8, 2, rng));
  (void)fc1;
  (void)fc2;

  std::vector<Parameter*> params;
  mlp.collect_params(params);
  SGD opt(params, SGD::Config{0.5, 0.9, 0.0, 0.0});

  Tensor x({4, 2});
  x.at(0, 0) = 0;  x.at(0, 1) = 0;
  x.at(1, 0) = 0;  x.at(1, 1) = 1;
  x.at(2, 0) = 1;  x.at(2, 1) = 0;
  x.at(3, 0) = 1;  x.at(3, 1) = 1;
  const std::vector<int> labels{0, 1, 1, 0};

  double final_loss = 1e9;
  for (int step = 0; step < 400; ++step) {
    opt.zero_grad();
    const Tensor logits = mlp.forward(x);
    const auto res = cross_entropy(logits, labels);
    mlp.backward(res.grad);
    opt.step();
    final_loss = res.loss;
  }
  EXPECT_LT(final_loss, 0.05);
  const auto res = cross_entropy(mlp.forward(x), labels);
  EXPECT_EQ(res.correct_top1, 4u);
}

TEST(Sequential, ChainsAndCollects) {
  util::Rng rng(3);
  Sequential seq("seq");
  seq.add(std::make_unique<Linear>(3, 4, rng));
  seq.add(std::make_unique<ReLU>());
  seq.add(std::make_unique<Linear>(4, 2, rng));
  EXPECT_EQ(seq.size(), 3u);
  std::vector<Parameter*> params;
  seq.collect_params(params);
  EXPECT_EQ(params.size(), 4u);  // two weights + two biases
  EXPECT_EQ(seq.param_count(), 3 * 4 + 4 + 4 * 2 + 2);

  const Tensor y = seq.forward(Tensor({5, 3}));
  EXPECT_EQ(y.shape(), (std::vector<long>{5, 2}));
}

}  // namespace
}  // namespace hsconas::nn
