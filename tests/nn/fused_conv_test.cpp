// Fused conv→BN→activation epilogue parity suite. The fused path folds
// eval-mode BN (and the conv bias) into a per-channel affine applied
// inside the GEMM writeback; these tests pin it against the composed
// module pipeline across strides, padding, groups, depthwise and both
// activations — including the case where the fold is arithmetically
// exact (gamma == 1, running_mean == 0, no conv bias: tolerance 0) —
// plus the Sequential eval-mode peephole and thread-count determinism.

#include "nn/fused_conv.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "nn/activation.h"
#include "obs/metrics.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace hsconas::nn {
namespace {

using tensor::EpilogueAct;
using tensor::Tensor;

/// Populate running statistics (and perturb gamma/beta) so the eval-mode
/// fold has non-trivial terms: one training-mode forward pushes data
/// through the momentum update, then randomized affine params.
void randomize_bn(BatchNorm2d& bn, const Tensor& warmup, util::Rng& rng) {
  bn.set_training(true);
  (void)bn.forward(warmup);
  bn.set_training(false);
  for (long c = 0; c < bn.channels(); ++c) {
    bn.gamma().value.at(c) = static_cast<float>(rng.uniform(0.5, 1.5));
    bn.beta().value.at(c) = static_cast<float>(rng.uniform(-0.5, 0.5));
  }
}

Tensor composed_forward(Conv2d& conv, BatchNorm2d& bn, EpilogueAct act,
                        const Tensor& x) {
  Tensor y = bn.forward(conv.forward(x));
  if (act == EpilogueAct::kReLU) {
    ReLU relu;
    relu.set_training(false);
    return relu.forward(y);
  }
  if (act == EpilogueAct::kHSwish) {
    HSwish hswish;
    hswish.set_training(false);
    return hswish.forward(y);
  }
  return y;
}

struct ConvCase {
  long in_ch, out_ch, kernel, stride, pad, groups;
  bool bias;
  EpilogueAct act;
};

// Strided, padded, grouped, depthwise (both kernels/strides), both
// activations, with and without conv bias.
const ConvCase kCases[] = {
    {8, 12, 3, 1, 1, 1, true, EpilogueAct::kReLU},
    {8, 12, 3, 2, 0, 1, true, EpilogueAct::kHSwish},
    {8, 12, 1, 1, 0, 4, false, EpilogueAct::kReLU},
    {6, 6, 3, 1, 1, 6, true, EpilogueAct::kReLU},     // depthwise
    {6, 6, 5, 2, 2, 6, false, EpilogueAct::kHSwish},  // depthwise strided
    {8, 12, 3, 1, 2, 2, false, EpilogueAct::kNone},   // over-padded, grouped
};

TEST(FusedConv, MatchesComposedModulesAcrossGeometries) {
  std::uint64_t seed = 200;
  for (const ConvCase& c : kCases) {
    util::Rng rng(++seed);
    Conv2d conv(c.in_ch, c.out_ch, c.kernel, c.stride, c.pad, c.groups,
                c.bias, rng);
    if (c.bias) {
      for (long i = 0; i < c.out_ch; ++i) {
        conv.bias()->value.at(i) = static_cast<float>(rng.uniform(-0.3, 0.3));
      }
    }
    BatchNorm2d bn(c.out_ch);
    conv.set_training(false);
    const Tensor x = Tensor::uniform({3, c.in_ch, 9, 9}, -1, 1, rng);
    randomize_bn(bn, conv.forward(x), rng);

    const Tensor want = composed_forward(conv, bn, c.act, x);
    const Tensor got = fused_conv_bn_act(conv, bn, c.act, x);
    ASSERT_EQ(got.shape(), want.shape());
    for (long i = 0; i < got.numel(); ++i) {
      // The fold refactors (x - m)*inv_std*g + b into s*x + t; only float
      // rounding of that refactoring separates the two paths.
      EXPECT_NEAR(got.data()[i], want.data()[i], 2e-4f)
          << "case in=" << c.in_ch << " out=" << c.out_ch
          << " k=" << c.kernel << " s=" << c.stride << " g=" << c.groups
          << " at " << i;
    }
  }
}

TEST(FusedConv, ExactWhenFoldIsArithmeticallyNeutral) {
  // gamma == 1, running_mean == 0, no conv bias: scale = inv_std and
  // shift = beta with no refactoring, so fused and composed execute the
  // same float ops — the parity is bit-exact, tolerance 0.
  util::Rng rng(300);
  Conv2d conv(8, 12, 3, 1, 1, 1, /*bias=*/false, rng);
  conv.set_training(false);
  BatchNorm2d bn(12);
  bn.set_training(false);
  for (long c = 0; c < 12; ++c) {
    bn.beta().value.at(c) = static_cast<float>(rng.uniform(-0.5, 0.5));
  }
  const Tensor x = Tensor::uniform({2, 8, 9, 9}, -1, 1, rng);
  for (const EpilogueAct act :
       {EpilogueAct::kNone, EpilogueAct::kReLU, EpilogueAct::kHSwish}) {
    const Tensor want = composed_forward(conv, bn, act, x);
    const Tensor got = fused_conv_bn_act(conv, bn, act, x);
    ASSERT_EQ(got.shape(), want.shape());
    for (long i = 0; i < got.numel(); ++i) {
      ASSERT_EQ(got.data()[i], want.data()[i]) << "act mismatch at " << i;
    }
  }
}

TEST(FusedConv, BitIdenticalAcrossThreadCounts) {
  util::Rng rng(400);
  Conv2d conv(16, 32, 3, 1, 1, 1, /*bias=*/true, rng);
  conv.set_training(false);
  BatchNorm2d bn(32);
  const Tensor x = Tensor::uniform({4, 16, 16, 16}, -1, 1, rng);
  randomize_bn(bn, conv.forward(x), rng);

  const std::size_t prev = util::ThreadPool::global().size();
  util::ThreadPool::configure_global(1);
  const Tensor base = fused_conv_bn_act(conv, bn, EpilogueAct::kReLU, x);
  for (const std::size_t threads : {2u, 8u}) {
    util::ThreadPool::configure_global(threads);
    const Tensor y = fused_conv_bn_act(conv, bn, EpilogueAct::kReLU, x);
    ASSERT_EQ(0, std::memcmp(base.data(), y.data(),
                             static_cast<std::size_t>(base.numel()) *
                                 sizeof(float)))
        << "thread count " << threads;
  }
  util::ThreadPool::configure_global(prev);
}

/// RAII toggle so a failing assertion cannot leak fusion-enabled state
/// into unrelated tests.
class FusionGuard {
 public:
  explicit FusionGuard(bool on) : prev_(inference_fusion_enabled()) {
    set_inference_fusion(on);
  }
  ~FusionGuard() { set_inference_fusion(prev_); }

 private:
  bool prev_;
};

TEST(FusedConv, SequentialPeepholeFusesInEvalOnly) {
  util::Rng rng(500);
  Sequential seq;
  Conv2d* conv = seq.add(std::make_unique<Conv2d>(8, 12, 3, 1, 1, 1,
                                                  /*bias=*/true, rng));
  seq.add(std::make_unique<BatchNorm2d>(12));
  seq.add(std::make_unique<ReLU>());
  const Tensor x = Tensor::uniform({2, 8, 9, 9}, -1, 1, rng);
  seq.forward(x);  // training-mode pass gives BN real running stats
  seq.set_training(false);

  obs::Counter& fused_calls = obs::counter("hsconas.nn.fused_conv_calls");

  const Tensor plain = seq.forward(x);
  FusionGuard guard(true);

  const std::uint64_t before = fused_calls.value();
  const Tensor fused = seq.forward(x);
  EXPECT_EQ(fused_calls.value(), before + 1)
      << "eval-mode Sequential should route conv+bn+relu through the "
         "fused path when fusion is enabled";
  ASSERT_EQ(fused.shape(), plain.shape());
  for (long i = 0; i < fused.numel(); ++i) {
    EXPECT_NEAR(fused.data()[i], plain.data()[i], 2e-4f) << "at " << i;
  }

  // Fusion off: the composed path runs, and it still matches.
  {
    FusionGuard off(false);
    const std::uint64_t before_off = fused_calls.value();
    const Tensor y = seq.forward(x);
    EXPECT_EQ(fused_calls.value(), before_off);
    for (long i = 0; i < y.numel(); ++i) {
      ASSERT_EQ(y.data()[i], plain.data()[i]);
    }
  }

  // Training mode must never peephole (backward needs module caches).
  // Last, because a training-mode forward updates BN's running stats and
  // would invalidate the comparisons against `plain` above.
  seq.set_training(true);
  const std::uint64_t before_train = fused_calls.value();
  seq.forward(x);
  EXPECT_EQ(fused_calls.value(), before_train);
  (void)conv;
}

TEST(FusedConv, ChannelMismatchThrows) {
  util::Rng rng(600);
  Conv2d conv(4, 6, 3, 1, 1, 1, false, rng);
  conv.set_training(false);
  BatchNorm2d bn(8);  // wrong width
  bn.set_training(false);
  const Tensor x = Tensor::uniform({1, 4, 5, 5}, -1, 1, rng);
  EXPECT_THROW(fused_conv_bn_act(conv, bn, EpilogueAct::kReLU, x),
               hsconas::Error);
}

}  // namespace
}  // namespace hsconas::nn
