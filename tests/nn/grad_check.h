#pragma once

// Finite-difference gradient checking for nn::Module implementations.
//
// The scalar probe loss is L = Σ w ⊙ forward(x) with fixed random weights
// w, so dL/d(output) = w. Analytic gradients come from backward(w);
// numeric gradients from central differences on the probe loss. fp32
// arithmetic bounds the achievable agreement, hence the loose-ish default
// tolerance.

#include <cstddef>

#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace hsconas::testutil {

struct GradCheckResult {
  double max_input_rel_err = 0.0;
  double max_param_rel_err = 0.0;
  int probes_total = 0;
  int probes_skipped = 0;  ///< non-smooth points detected (ReLU kinks)
};

inline double rel_err(double analytic, double numeric) {
  const double denom = std::abs(analytic) + std::abs(numeric) + 1e-3;
  return std::abs(analytic - numeric) / denom;
}

inline double probe_loss(nn::Module& module, const tensor::Tensor& x,
                         const tensor::Tensor& w) {
  const tensor::Tensor y = module.forward(x);
  double loss = 0.0;
  for (long i = 0; i < y.numel(); ++i) {
    loss += static_cast<double>(y.flat()[static_cast<std::size_t>(i)]) *
            w.flat()[static_cast<std::size_t>(i)];
  }
  return loss;
}

/// Check input and parameter gradients of `module` at input `x`.
/// `probes` limits how many coordinates are finite-differenced (spread
/// evenly); eps is the central-difference step.
inline GradCheckResult grad_check(nn::Module& module, tensor::Tensor x,
                                  std::uint64_t seed, int probes = 24,
                                  float eps = 1e-2f) {
  util::Rng rng(seed);
  module.set_training(true);

  // Forward once to learn the output shape, then build the probe weights.
  const tensor::Tensor y0 = module.forward(x);
  const tensor::Tensor w =
      tensor::Tensor::uniform(y0.shape(), -1.0f, 1.0f, rng);

  // Analytic gradients.
  std::vector<nn::Parameter*> params;
  module.collect_params(params);
  for (nn::Parameter* p : params) p->zero_grad();
  module.forward(x);
  const tensor::Tensor dx = module.backward(w);

  GradCheckResult result;

  const auto central_diff = [&](float& coord, float saved, float h) {
    coord = saved + h;
    const double up = probe_loss(module, x, w);
    coord = saved - h;
    const double down = probe_loss(module, x, w);
    coord = saved;
    return (up - down) / (2.0 * static_cast<double>(h));
  };

  const auto check_coords = [&](tensor::Tensor& target,
                                const tensor::Tensor& analytic,
                                double& worst) {
    const long n = target.numel();
    const long step = std::max<long>(1, n / probes);
    for (long i = 0; i < n; i += step) {
      float& coord = target.flat()[static_cast<std::size_t>(i)];
      const float saved = coord;
      const double num_full = central_diff(coord, saved, eps);
      const double num_half = central_diff(coord, saved, eps * 0.5f);
      ++result.probes_total;
      // Richardson consistency: for a smooth loss the two central estimates
      // agree to O(eps²). ReLU-after-BN compositions put activations at the
      // kink, where finite differences straddle a derivative jump and stay
      // wrong at ANY step size — detect the inconsistency and skip.
      if (rel_err(num_full, num_half) > 0.05) {
        ++result.probes_skipped;
        continue;
      }
      const double err = rel_err(
          analytic.flat()[static_cast<std::size_t>(i)], num_half);
      if (err > worst) worst = err;
    }
  };

  check_coords(x, dx, result.max_input_rel_err);
  for (nn::Parameter* p : params) {
    check_coords(p->value, p->grad, result.max_param_rel_err);
  }
  return result;
}

}  // namespace hsconas::testutil
