// Property test: Conv2d's im2col+GEMM forward must agree with a direct
// naive convolution over a parameterized sweep of geometries. Gradient
// checks validate backward; this pins forward to the definition.

#include <gtest/gtest.h>

#include <vector>

#include "nn/conv2d.h"

namespace hsconas::nn {
namespace {

using tensor::Tensor;

// Direct O(everything) convolution, straight from the definition.
Tensor naive_conv(const Tensor& x, const Tensor& w, long stride, long pad,
                  long groups) {
  const long n = x.dim(0), cin = x.dim(1), h = x.dim(2), ww = x.dim(3);
  const long cout = w.dim(0), k = w.dim(2);
  const long cin_g = cin / groups, cout_g = cout / groups;
  const long oh = (h + 2 * pad - k) / stride + 1;
  const long ow = (ww + 2 * pad - k) / stride + 1;
  Tensor y({n, cout, oh, ow});
  for (long s = 0; s < n; ++s) {
    for (long oc = 0; oc < cout; ++oc) {
      const long g = oc / cout_g;
      for (long oy = 0; oy < oh; ++oy) {
        for (long ox = 0; ox < ow; ++ox) {
          double acc = 0.0;
          for (long ic = 0; ic < cin_g; ++ic) {
            for (long ky = 0; ky < k; ++ky) {
              const long iy = oy * stride + ky - pad;
              if (iy < 0 || iy >= h) continue;
              for (long kx = 0; kx < k; ++kx) {
                const long ix = ox * stride + kx - pad;
                if (ix < 0 || ix >= ww) continue;
                acc += static_cast<double>(
                           x.at(s, g * cin_g + ic, iy, ix)) *
                       w.at(oc, ic, ky, kx);
              }
            }
          }
          y.at(s, oc, oy, ox) = static_cast<float>(acc);
        }
      }
    }
  }
  return y;
}

struct Geometry {
  long in_ch, out_ch, kernel, stride, pad, groups, h, w, batch;
};

class ConvReference : public ::testing::TestWithParam<Geometry> {};

TEST_P(ConvReference, MatchesNaiveConvolution) {
  const Geometry g = GetParam();
  util::Rng rng(g.in_ch * 131 + g.kernel * 17 + g.stride);
  Conv2d conv(g.in_ch, g.out_ch, g.kernel, g.stride, g.pad, g.groups,
              /*bias=*/false, rng);
  const Tensor x =
      Tensor::uniform({g.batch, g.in_ch, g.h, g.w}, -1.0f, 1.0f, rng);
  const Tensor fast = conv.forward(x);
  const Tensor slow =
      naive_conv(x, conv.weight().value, g.stride, g.pad, g.groups);
  ASSERT_EQ(fast.shape(), slow.shape());
  for (long i = 0; i < fast.numel(); ++i) {
    ASSERT_NEAR(fast.flat()[static_cast<std::size_t>(i)],
                slow.flat()[static_cast<std::size_t>(i)], 2e-4f)
        << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvReference,
    ::testing::Values(Geometry{1, 1, 1, 1, 0, 1, 4, 4, 1},    // degenerate
                      Geometry{3, 8, 3, 1, 1, 1, 9, 9, 2},    // same-pad 3x3
                      Geometry{4, 4, 3, 2, 1, 1, 8, 8, 2},    // stride 2
                      Geometry{6, 6, 3, 1, 1, 6, 7, 7, 1},    // depthwise
                      Geometry{8, 8, 5, 2, 2, 8, 11, 11, 2},  // dw 5x5 s2
                      Geometry{8, 12, 3, 1, 1, 4, 6, 6, 1},   // grouped
                      Geometry{3, 5, 7, 2, 3, 1, 13, 13, 1},  // 7x7 s2
                      Geometry{2, 4, 3, 1, 0, 1, 5, 5, 1},    // no padding
                      Geometry{5, 3, 1, 1, 0, 1, 6, 7, 3},    // non-square
                      Geometry{4, 8, 5, 1, 2, 2, 10, 8, 2})); // 5x5 grouped

// ---------------------------------------------------------------------------
// Backward parity: dX, dW (and db) from the batched im2col+GEMM backward
// must match a direct per-sample application of the chain rule. Exercises
// the grouped/depthwise panel gather-scatter paths in particular.
// ---------------------------------------------------------------------------

struct NaiveGrads {
  Tensor dx, dw;
  std::vector<double> db;
};

NaiveGrads naive_conv_backward(const Tensor& x, const Tensor& w,
                               const Tensor& dy, long stride, long pad,
                               long groups) {
  const long n = x.dim(0), cin = x.dim(1), h = x.dim(2), ww = x.dim(3);
  const long cout = w.dim(0), k = w.dim(2);
  const long cin_g = cin / groups, cout_g = cout / groups;
  const long oh = dy.dim(2), ow = dy.dim(3);
  NaiveGrads g{Tensor(x.shape()), Tensor(w.shape()),
               std::vector<double>(static_cast<std::size_t>(cout), 0.0)};
  // float lhs with double rhs products: matches the fast path closely
  // enough at these sizes while staying order-insensitive per element.
  for (long s = 0; s < n; ++s) {
    for (long oc = 0; oc < cout; ++oc) {
      const long grp = oc / cout_g;
      for (long oy = 0; oy < oh; ++oy) {
        for (long ox = 0; ox < ow; ++ox) {
          const double dyv = dy.at(s, oc, oy, ox);
          g.db[static_cast<std::size_t>(oc)] += dyv;
          for (long ic = 0; ic < cin_g; ++ic) {
            for (long ky = 0; ky < k; ++ky) {
              const long iy = oy * stride + ky - pad;
              if (iy < 0 || iy >= h) continue;
              for (long kx = 0; kx < k; ++kx) {
                const long ix = ox * stride + kx - pad;
                if (ix < 0 || ix >= ww) continue;
                g.dx.at(s, grp * cin_g + ic, iy, ix) += static_cast<float>(
                    static_cast<double>(w.at(oc, ic, ky, kx)) * dyv);
                g.dw.at(oc, ic, ky, kx) += static_cast<float>(
                    static_cast<double>(x.at(s, grp * cin_g + ic, iy, ix)) *
                    dyv);
              }
            }
          }
        }
      }
    }
  }
  return g;
}

class ConvBackwardReference : public ::testing::TestWithParam<Geometry> {};

TEST_P(ConvBackwardReference, GradientsMatchPerSampleChainRule) {
  const Geometry g = GetParam();
  util::Rng rng(g.out_ch * 997 + g.groups * 31 + g.kernel);
  Conv2d conv(g.in_ch, g.out_ch, g.kernel, g.stride, g.pad, g.groups,
              /*bias=*/true, rng);
  const Tensor x =
      Tensor::uniform({g.batch, g.in_ch, g.h, g.w}, -1.0f, 1.0f, rng);
  const Tensor y = conv.forward(x);
  const Tensor dy = Tensor::uniform(y.shape(), -1.0f, 1.0f, rng);

  const Tensor dx = conv.backward(dy);
  const NaiveGrads ref =
      naive_conv_backward(x, conv.weight().value, dy, g.stride, g.pad,
                          g.groups);

  ASSERT_EQ(dx.shape(), x.shape());
  for (long i = 0; i < dx.numel(); ++i) {
    ASSERT_NEAR(dx.flat()[static_cast<std::size_t>(i)],
                ref.dx.flat()[static_cast<std::size_t>(i)], 5e-4f)
        << "dx element " << i;
  }
  const Tensor& dw = conv.weight().grad;
  for (long i = 0; i < dw.numel(); ++i) {
    ASSERT_NEAR(dw.flat()[static_cast<std::size_t>(i)],
                ref.dw.flat()[static_cast<std::size_t>(i)], 5e-4f)
        << "dw element " << i;
  }
  ASSERT_NE(conv.bias(), nullptr);
  const Tensor& db = conv.bias()->grad;
  for (long i = 0; i < db.numel(); ++i) {
    ASSERT_NEAR(db.flat()[static_cast<std::size_t>(i)],
                ref.db[static_cast<std::size_t>(i)], 5e-4f)
        << "db element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvBackwardReference,
    ::testing::Values(Geometry{3, 8, 3, 1, 1, 1, 9, 9, 2},    // same-pad 3x3
                      Geometry{6, 6, 3, 1, 1, 6, 7, 7, 2},    // depthwise
                      Geometry{8, 8, 5, 2, 2, 8, 11, 11, 2},  // dw 5x5 s2
                      Geometry{8, 12, 3, 1, 1, 4, 6, 6, 2},   // grouped
                      Geometry{4, 8, 5, 1, 2, 2, 10, 8, 3},   // 5x5 grouped
                      Geometry{4, 4, 3, 2, 1, 1, 8, 8, 2},    // stride 2
                      Geometry{1, 1, 1, 1, 0, 1, 4, 4, 1}));  // degenerate

}  // namespace
}  // namespace hsconas::nn
