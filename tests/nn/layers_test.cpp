// Gradient and behaviour tests for the primitive NN layers.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/activation.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/mask.h"
#include "nn/pooling.h"
#include "nn/shuffle.h"
#include "tests/nn/grad_check.h"
#include "util/error.h"

namespace hsconas::nn {
namespace {

using tensor::Tensor;
using testutil::grad_check;

// Random input kept away from ReLU/maxpool kinks so finite differences
// stay on one side of the non-smooth points.
Tensor safe_input(std::vector<long> shape, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor x = Tensor::uniform(std::move(shape), -1.0f, 1.0f, rng);
  for (float& v : x.flat()) {
    if (std::abs(v) < 0.06f) v += v >= 0 ? 0.12f : -0.12f;
  }
  return x;
}

constexpr double kTol = 3e-2;

// ---------------------------------------------------------------- Conv2d --

struct ConvCase {
  long in_ch, out_ch, kernel, stride, pad, groups;
  long h, w;
};

class ConvGrad : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGrad, MatchesFiniteDifferences) {
  const ConvCase c = GetParam();
  util::Rng rng(42);
  Conv2d conv(c.in_ch, c.out_ch, c.kernel, c.stride, c.pad, c.groups, true,
              rng);
  const auto result =
      grad_check(conv, safe_input({2, c.in_ch, c.h, c.w}, 1), 7);
  EXPECT_LT(result.max_input_rel_err, kTol);
  EXPECT_LT(result.max_param_rel_err, kTol);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvGrad,
    ::testing::Values(ConvCase{3, 4, 3, 1, 1, 1, 6, 6},     // dense 3x3
                      ConvCase{4, 6, 1, 1, 0, 1, 5, 5},     // pointwise
                      ConvCase{4, 8, 3, 2, 1, 1, 8, 8},     // stride 2
                      ConvCase{6, 6, 3, 1, 1, 6, 6, 6},     // depthwise
                      ConvCase{4, 6, 3, 1, 1, 2, 6, 6},     // grouped
                      ConvCase{3, 2, 5, 1, 2, 1, 8, 8},     // 5x5
                      ConvCase{6, 6, 7, 2, 3, 6, 9, 9}));   // dw 7x7 s2

TEST(Conv2d, OutputShape) {
  util::Rng rng(1);
  Conv2d conv(3, 8, 3, 2, 1, 1, false, rng);
  const Tensor y = conv.forward(Tensor({2, 3, 16, 16}));
  EXPECT_EQ(y.shape(), (std::vector<long>{2, 8, 8, 8}));
}

TEST(Conv2d, RejectsBadGeometry) {
  util::Rng rng(1);
  EXPECT_THROW(Conv2d(3, 4, 3, 1, 1, 2, false, rng), InvalidArgument);
  EXPECT_THROW(Conv2d(0, 4, 3, 1, 1, 1, false, rng), InvalidArgument);
  Conv2d conv(3, 4, 3, 1, 1, 1, false, rng);
  EXPECT_THROW(conv.forward(Tensor({2, 5, 8, 8})), InvalidArgument);
}

TEST(Conv2d, KnownValueIdentityKernel) {
  util::Rng rng(1);
  Conv2d conv(1, 1, 1, 1, 0, 1, false, rng);
  conv.weight().value.at(0, 0, 0, 0) = 2.0f;
  Tensor x({1, 1, 2, 2});
  x.at(0, 0, 1, 1) = 3.0f;
  const Tensor y = conv.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 6.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 0.0f);
}

TEST(Conv2d, MacsCounter) {
  util::Rng rng(1);
  Conv2d conv(8, 16, 3, 1, 1, 1, false, rng);
  // 16 out * 8 in * 9 * 4*4 spatial
  EXPECT_EQ(conv.macs(4, 4), 16L * 8 * 9 * 16);
  Conv2d dw(8, 8, 3, 1, 1, 8, false, rng);
  EXPECT_EQ(dw.macs(4, 4), 8L * 9 * 16);
}

// ------------------------------------------------------------ BatchNorm --

TEST(BatchNorm2d, NormalizesBatchStatistics) {
  BatchNorm2d bn(3);
  bn.set_training(true);
  util::Rng rng(5);
  const Tensor x = Tensor::normal({4, 3, 5, 5}, 3.0f, 2.0f, rng);
  const Tensor y = bn.forward(x);
  // Per-channel mean ~0, var ~1 after normalization with affine identity.
  for (long c = 0; c < 3; ++c) {
    double mean = 0.0, var = 0.0;
    const long count = 4 * 25;
    for (long n = 0; n < 4; ++n) {
      for (long i = 0; i < 25; ++i) {
        mean += y.flat()[static_cast<std::size_t>((n * 3 + c) * 25 + i)];
      }
    }
    mean /= count;
    for (long n = 0; n < 4; ++n) {
      for (long i = 0; i < 25; ++i) {
        const double d =
            y.flat()[static_cast<std::size_t>((n * 3 + c) * 25 + i)] - mean;
        var += d * d;
      }
    }
    var /= count;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, GradCheckTraining) {
  BatchNorm2d bn(4);
  const auto result = grad_check(bn, safe_input({3, 4, 4, 4}, 2), 11);
  EXPECT_LT(result.max_input_rel_err, kTol);
  EXPECT_LT(result.max_param_rel_err, kTol);
}

TEST(BatchNorm2d, EvalUsesRunningStats) {
  BatchNorm2d bn(2);
  bn.set_training(true);
  util::Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    bn.forward(Tensor::normal({8, 2, 4, 4}, 5.0f, 1.0f, rng));
  }
  EXPECT_NEAR(bn.running_mean().at(0), 5.0f, 0.3f);
  bn.set_training(false);
  const Tensor y = bn.forward(Tensor::full({1, 2, 1, 1}, 5.0f));
  EXPECT_NEAR(y.at(0, 0, 0, 0), 0.0f, 0.3f);
}

TEST(BatchNorm2d, ResetRunningStats) {
  BatchNorm2d bn(2);
  util::Rng rng(6);
  bn.forward(Tensor::normal({4, 2, 4, 4}, 5.0f, 1.0f, rng));
  bn.reset_running_stats();
  EXPECT_FLOAT_EQ(bn.running_mean().at(0), 0.0f);
  EXPECT_FLOAT_EQ(bn.running_var().at(1), 1.0f);
}

// ----------------------------------------------------------- Activations --

TEST(ReLU, ForwardClampsAndBackwardMasks) {
  ReLU relu;
  Tensor x({1, 1, 1, 4});
  x.flat()[0] = -2.0f;
  x.flat()[1] = 3.0f;
  x.flat()[2] = 0.0f;
  x.flat()[3] = 0.5f;
  const Tensor y = relu.forward(x);
  EXPECT_FLOAT_EQ(y.flat()[0], 0.0f);
  EXPECT_FLOAT_EQ(y.flat()[1], 3.0f);
  const Tensor dx = relu.backward(Tensor::ones(x.shape()));
  EXPECT_FLOAT_EQ(dx.flat()[0], 0.0f);
  EXPECT_FLOAT_EQ(dx.flat()[1], 1.0f);
  EXPECT_FLOAT_EQ(dx.flat()[2], 0.0f);  // relu'(0) = 0 by convention
}

TEST(ReLU, GradCheck) {
  ReLU relu;
  const auto result = grad_check(relu, safe_input({2, 3, 4, 4}, 3), 13);
  EXPECT_LT(result.max_input_rel_err, kTol);
}

TEST(HSwish, KnownValuesAndGrad) {
  HSwish act;
  Tensor x({1, 5});
  x.flat()[0] = -4.0f;  // below -3: exactly 0
  x.flat()[1] = 4.0f;   // above 3: identity
  x.flat()[2] = 0.0f;   // 0 * 3/6 = 0
  x.flat()[3] = 1.5f;
  x.flat()[4] = -1.5f;
  const Tensor y = act.forward(x);
  EXPECT_FLOAT_EQ(y.flat()[0], 0.0f);
  EXPECT_FLOAT_EQ(y.flat()[1], 4.0f);
  EXPECT_FLOAT_EQ(y.flat()[2], 0.0f);
  EXPECT_FLOAT_EQ(y.flat()[3], 1.5f * 4.5f / 6.0f);

  HSwish act2;
  const auto result = grad_check(act2, safe_input({2, 8}, 4), 17);
  EXPECT_LT(result.max_input_rel_err, kTol);
}

// ----------------------------------------------------------------- Linear --

TEST(Linear, GradCheck) {
  util::Rng rng(9);
  Linear fc(6, 4, rng);
  const auto result = grad_check(fc, safe_input({3, 6}, 5), 19);
  EXPECT_LT(result.max_input_rel_err, kTol);
  EXPECT_LT(result.max_param_rel_err, kTol);
}

TEST(Linear, KnownValue) {
  util::Rng rng(9);
  Linear fc(2, 1, rng);
  fc.weight().value.at(0, 0) = 2.0f;
  fc.weight().value.at(0, 1) = -1.0f;
  fc.bias().value.at(0) = 0.5f;
  Tensor x({1, 2});
  x.at(0, 0) = 3.0f;
  x.at(0, 1) = 4.0f;
  EXPECT_FLOAT_EQ(fc.forward(x).at(0, 0), 2.0f * 3 - 4 + 0.5f);
}

TEST(Linear, RejectsBadShape) {
  util::Rng rng(9);
  Linear fc(2, 1, rng);
  EXPECT_THROW(fc.forward(Tensor({1, 3})), InvalidArgument);
}

// ---------------------------------------------------------------- Pooling --

TEST(GlobalAvgPool, AveragesAndBackpropagatesUniformly) {
  GlobalAvgPool gap;
  Tensor x({1, 2, 2, 2});
  for (long i = 0; i < 4; ++i) x.flat()[static_cast<std::size_t>(i)] = static_cast<float>(i);
  const Tensor y = gap.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1.5f);
  Tensor dy({1, 2});
  dy.at(0, 0) = 4.0f;
  const Tensor dx = gap.backward(dy);
  EXPECT_FLOAT_EQ(dx.at(0, 0, 1, 1), 1.0f);
}

TEST(GlobalAvgPool, GradCheck) {
  GlobalAvgPool gap;
  const auto result = grad_check(gap, safe_input({2, 3, 3, 3}, 6), 23);
  EXPECT_LT(result.max_input_rel_err, kTol);
}

TEST(MaxPool2d, SelectsMaximaAndRoutesGradient) {
  MaxPool2d pool(2, 2, 0);
  Tensor x({1, 1, 2, 2});
  x.at(0, 0, 0, 0) = 1.0f;
  x.at(0, 0, 0, 1) = 5.0f;
  x.at(0, 0, 1, 0) = 2.0f;
  x.at(0, 0, 1, 1) = 3.0f;
  const Tensor y = pool.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 5.0f);
  const Tensor dx = pool.backward(Tensor::ones({1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(dx.at(0, 0, 0, 1), 1.0f);
  EXPECT_FLOAT_EQ(dx.at(0, 0, 0, 0), 0.0f);
}

TEST(MaxPool2d, GradCheck) {
  MaxPool2d pool(3, 2, 1);
  const auto result = grad_check(pool, safe_input({2, 2, 6, 6}, 7), 29);
  EXPECT_LT(result.max_input_rel_err, kTol);
}

// ---------------------------------------------------------------- Shuffle --

TEST(ChannelShuffle, PermutationAndInverse) {
  ChannelShuffle shuffle(2);
  Tensor x({1, 4, 1, 1});
  for (long c = 0; c < 4; ++c) x.at(0, c, 0, 0) = static_cast<float>(c);
  const Tensor y = shuffle.forward(x);
  // (g=2, per=2): channel (g, i) -> i*2 + g: [0,1,2,3] -> [0,2,1,3]
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(y.at(0, 2, 0, 0), 1.0f);
  // backward is the inverse permutation: round trip restores order.
  const Tensor back = shuffle.backward(y);
  for (long c = 0; c < 4; ++c) {
    EXPECT_FLOAT_EQ(back.at(0, c, 0, 0), static_cast<float>(c));
  }
}

TEST(ChannelShuffle, RejectsIndivisibleChannels) {
  ChannelShuffle shuffle(2);
  EXPECT_THROW(shuffle.forward(Tensor({1, 3, 2, 2})), InvalidArgument);
}

TEST(SplitConcat, RoundTrip) {
  util::Rng rng(10);
  const Tensor x = Tensor::uniform({2, 6, 3, 3}, -1, 1, rng);
  Tensor left, right;
  split_channels(x, 2, left, right);
  EXPECT_EQ(left.shape(), (std::vector<long>{2, 2, 3, 3}));
  EXPECT_EQ(right.shape(), (std::vector<long>{2, 4, 3, 3}));
  const Tensor back = concat_channels(left, right);
  for (long i = 0; i < x.numel(); ++i) {
    EXPECT_FLOAT_EQ(back.flat()[static_cast<std::size_t>(i)],
                    x.flat()[static_cast<std::size_t>(i)]);
  }
}

TEST(SplitConcat, Validation) {
  Tensor x({1, 4, 2, 2});
  Tensor l, r;
  EXPECT_THROW(split_channels(x, 0, l, r), InvalidArgument);
  EXPECT_THROW(split_channels(x, 4, l, r), InvalidArgument);
  EXPECT_THROW(concat_channels(Tensor({1, 2, 2, 2}), Tensor({1, 2, 3, 3})),
               InvalidArgument);
}

// ------------------------------------------------------------ ChannelMask --

TEST(ChannelMask, ZeroesTailChannelsBothDirections) {
  ChannelMask mask(4);
  mask.set_active(2);
  util::Rng rng(11);
  const Tensor x = Tensor::uniform({2, 4, 2, 2}, 0.5f, 1.0f, rng);
  const Tensor y = mask.forward(x);
  EXPECT_NE(y.at(0, 1, 0, 0), 0.0f);
  EXPECT_EQ(y.at(0, 2, 0, 0), 0.0f);
  EXPECT_EQ(y.at(1, 3, 1, 1), 0.0f);
  const Tensor dx = mask.backward(Tensor::ones(x.shape()));
  EXPECT_EQ(dx.at(0, 0, 0, 0), 1.0f);
  EXPECT_EQ(dx.at(0, 3, 0, 0), 0.0f);
}

TEST(ChannelMask, FullWidthIsIdentity) {
  ChannelMask mask(3);
  util::Rng rng(12);
  const Tensor x = Tensor::uniform({1, 3, 2, 2}, -1, 1, rng);
  const Tensor y = mask.forward(x);
  for (long i = 0; i < x.numel(); ++i) {
    EXPECT_EQ(y.flat()[static_cast<std::size_t>(i)],
              x.flat()[static_cast<std::size_t>(i)]);
  }
}

TEST(ChannelMask, Validation) {
  ChannelMask mask(4);
  EXPECT_THROW(mask.set_active(0), InvalidArgument);
  EXPECT_THROW(mask.set_active(5), InvalidArgument);
  EXPECT_THROW(ChannelMask(0), InvalidArgument);
}

TEST(ScaledChannels, PaperRounding) {
  // The paper's example: 5 × 0.5 ≈ 3 (round half up).
  EXPECT_EQ(scaled_channels(5, 0.5), 3);
  EXPECT_EQ(scaled_channels(10, 0.1), 1);
  EXPECT_EQ(scaled_channels(10, 1.0), 10);
  EXPECT_EQ(scaled_channels(3, 0.01), 1);  // clamped to >= 1
  EXPECT_EQ(scaled_channels(64, 0.3), 19);
}

}  // namespace
}  // namespace hsconas::nn
