// Tests for the MBConv operator family (OpFamily::kMbConv).

#include "nn/mbconv_block.h"

#include <gtest/gtest.h>

#include "nn/blocks.h"
#include "nn/choice_block.h"
#include "tests/nn/grad_check.h"
#include "util/error.h"

namespace hsconas::nn {
namespace {

using tensor::Tensor;

Tensor block_input(long channels, long size, std::uint64_t seed) {
  util::Rng rng(seed);
  return Tensor::uniform({2, channels, size, size}, -1.0f, 1.0f, rng);
}

TEST(FamilyTable, MbConvOpsAndNames) {
  EXPECT_EQ(family_num_ops(OpFamily::kMbConv), 5);
  EXPECT_STREQ(family_op_name(OpFamily::kMbConv, 0), "mb_e3k3");
  EXPECT_STREQ(family_op_name(OpFamily::kMbConv, 3), "mb_e6k5");
  EXPECT_STREQ(family_op_name(OpFamily::kMbConv, 4), "skip");
  EXPECT_TRUE(family_op_is_skip(OpFamily::kMbConv, 4));
  EXPECT_FALSE(family_op_is_skip(OpFamily::kMbConv, 1));
  EXPECT_STREQ(family_name(OpFamily::kMbConv), "mbconv");
}

TEST(FamilyTable, ShuffleFamilyUnchanged) {
  EXPECT_EQ(family_num_ops(OpFamily::kShuffleV2), 5);
  EXPECT_STREQ(family_op_name(OpFamily::kShuffleV2, 0), "shuffle_k3");
  EXPECT_TRUE(family_op_is_skip(OpFamily::kShuffleV2, 4));
}

TEST(FamilyFactory, ProducesBothFamilies) {
  util::Rng rng(1);
  const auto shuffle = make_family_block(OpFamily::kShuffleV2, 0, 8, 8, 1,
                                         rng, "s");
  EXPECT_NE(dynamic_cast<ShuffleChoiceBlock*>(shuffle.get()), nullptr);
  const auto mb = make_family_block(OpFamily::kMbConv, 1, 8, 8, 1, rng, "m");
  EXPECT_NE(dynamic_cast<MbConvChoiceBlock*>(mb.get()), nullptr);
}

struct MbCase {
  int op;
  long in_ch, out_ch, stride;
};

class MbConvShapes : public ::testing::TestWithParam<MbCase> {};

TEST_P(MbConvShapes, ForwardBackwardShapes) {
  const MbCase c = GetParam();
  util::Rng rng(2);
  auto block = make_family_block(OpFamily::kMbConv, c.op, c.in_ch, c.out_ch,
                                 c.stride, rng, "mb");
  const Tensor x = block_input(c.in_ch, 8, 3);
  const Tensor y = block->forward(x);
  const long expect = c.stride == 2 ? 4 : 8;
  EXPECT_EQ(y.shape(), (std::vector<long>{2, c.out_ch, expect, expect}));
  const Tensor dx = block->backward(Tensor::ones(y.shape()));
  EXPECT_EQ(dx.shape(), x.shape());
}

INSTANTIATE_TEST_SUITE_P(
    AllOpsBothStrides, MbConvShapes,
    ::testing::Values(MbCase{0, 8, 8, 1}, MbCase{1, 8, 8, 1},
                      MbCase{2, 8, 8, 1}, MbCase{3, 8, 8, 1},
                      MbCase{4, 8, 8, 1}, MbCase{0, 8, 16, 2},
                      MbCase{1, 8, 16, 2}, MbCase{2, 8, 16, 2},
                      MbCase{3, 8, 16, 2}, MbCase{4, 8, 16, 2}));

class MbConvGrad : public ::testing::TestWithParam<MbCase> {};

TEST_P(MbConvGrad, MatchesFiniteDifferences) {
  const MbCase c = GetParam();
  util::Rng rng(4);
  auto block = make_family_block(OpFamily::kMbConv, c.op, c.in_ch, c.out_ch,
                                 c.stride, rng, "mb");
  // Same kink-avoidance as the shuffle-block grad tests: bias BN params so
  // activations sit far from the ReLU corner (see blocks_test.cpp).
  std::vector<Parameter*> params;
  block->collect_params(params);
  for (Parameter* p : params) {
    if (p->name.find("gamma") != std::string::npos) p->value.fill(0.2f);
    if (p->name.find("beta") != std::string::npos) p->value.fill(1.0f);
  }
  const auto result =
      testutil::grad_check(*block, block_input(c.in_ch, 6, 5), 11, 24);
  EXPECT_LT(result.max_input_rel_err, 0.12);
  EXPECT_LT(result.max_param_rel_err, 0.12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MbConvGrad,
                         ::testing::Values(MbCase{0, 4, 4, 1},
                                           MbCase{3, 4, 4, 1},
                                           MbCase{1, 4, 8, 2},
                                           MbCase{4, 4, 8, 2}));

TEST(MbConvChoiceBlock, ResidualOnlyAtStride1SameWidth) {
  util::Rng rng(6);
  MbConvChoiceBlock with(3.0, 3, 8, 8, 1, rng);
  EXPECT_TRUE(with.has_residual());
  MbConvChoiceBlock without(3.0, 3, 8, 16, 2, rng);
  EXPECT_FALSE(without.has_residual());
}

TEST(MbConvChoiceBlock, ResidualAddsInput) {
  // Zero all weights: body output is BN(0) = beta = 0, so forward == x.
  util::Rng rng(7);
  MbConvChoiceBlock block(3.0, 3, 4, 4, 1, rng);
  std::vector<Parameter*> params;
  block.collect_params(params);
  for (Parameter* p : params) p->value.zero();
  block.set_training(false);
  const Tensor x = block_input(4, 5, 8);
  const Tensor y = block.forward(x);
  for (long i = 0; i < x.numel(); ++i) {
    EXPECT_FLOAT_EQ(y.flat()[static_cast<std::size_t>(i)],
                    x.flat()[static_cast<std::size_t>(i)]);
  }
}

TEST(MbConvChoiceBlock, ExpansionSetsMidWidth) {
  util::Rng rng(9);
  MbConvChoiceBlock e3(3.0, 3, 8, 8, 1, rng);
  EXPECT_EQ(e3.max_mid_channels(), 24);
  MbConvChoiceBlock e6(6.0, 5, 8, 8, 1, rng);
  EXPECT_EQ(e6.max_mid_channels(), 48);
  e6.set_channel_factor(0.5);
  EXPECT_EQ(e6.active_mid_channels(), 24);
}

TEST(MbConvChoiceBlock, SkipStride1IsIdentityWithNoParams) {
  util::Rng rng(10);
  MbConvChoiceBlock skip(0.0, 3, 8, 8, 1, rng);
  EXPECT_EQ(skip.param_count(), 0);
  EXPECT_EQ(skip.max_mid_channels(), 0);
  const Tensor x = block_input(8, 5, 11);
  const Tensor y = skip.forward(x);
  for (long i = 0; i < x.numel(); ++i) {
    EXPECT_EQ(y.flat()[static_cast<std::size_t>(i)],
              x.flat()[static_cast<std::size_t>(i)]);
  }
}

TEST(MbConvChoiceBlock, MaskedChannelsGetNoGradient) {
  util::Rng rng(12);
  MbConvChoiceBlock block(6.0, 3, 4, 4, 1, rng);  // mid = 24
  block.set_channel_factor(0.5);                  // 12 active
  const Tensor x = block_input(4, 6, 13);
  const Tensor y = block.forward(x);
  block.backward(Tensor::ones(y.shape()));
  std::vector<Parameter*> params;
  block.collect_params(params);
  for (Parameter* p : params) {
    if (p->name.find("dw") != std::string::npos && p->value.dim(0) == 24) {
      const long per = p->value.numel() / 24;
      for (long c = 12; c < 24; ++c) {
        for (long i = 0; i < per; ++i) {
          EXPECT_EQ(p->grad.flat()[static_cast<std::size_t>(c * per + i)],
                    0.0f);
        }
      }
    }
  }
}

TEST(MbConvChoiceBlock, Validation) {
  util::Rng rng(14);
  EXPECT_THROW(MbConvChoiceBlock(3.0, 3, 8, 16, 1, rng), InvalidArgument);
  EXPECT_THROW(MbConvChoiceBlock(3.0, 3, 8, 8, 3, rng), InvalidArgument);
  MbConvChoiceBlock block(3.0, 3, 8, 8, 1, rng);
  EXPECT_THROW(block.set_channel_factor(1.5), InvalidArgument);
}

}  // namespace
}  // namespace hsconas::nn
