// Tests for the ShuffleChoiceBlock operator set (the K = 5 candidates).

#include "nn/blocks.h"

#include <gtest/gtest.h>

#include "tests/nn/grad_check.h"
#include "util/error.h"

namespace hsconas::nn {
namespace {

using tensor::Tensor;
using testutil::grad_check;

Tensor block_input(long channels, long size, std::uint64_t seed) {
  util::Rng rng(seed);
  return Tensor::uniform({2, channels, size, size}, -1.0f, 1.0f, rng);
}

struct BlockCase {
  BlockKind kind;
  long in_ch, out_ch, stride;
};

class BlockShapes : public ::testing::TestWithParam<BlockCase> {};

TEST_P(BlockShapes, ForwardShapeAndBackwardShape) {
  const BlockCase bc = GetParam();
  util::Rng rng(1);
  ShuffleChoiceBlock block(bc.kind, bc.in_ch, bc.out_ch, bc.stride, rng);
  const Tensor x = block_input(bc.in_ch, 8, 2);
  const Tensor y = block.forward(x);
  const long expect_size = bc.stride == 2 ? 4 : 8;
  EXPECT_EQ(y.shape(), (std::vector<long>{2, bc.out_ch, expect_size,
                                          expect_size}));
  const Tensor dx = block.backward(Tensor::ones(y.shape()));
  EXPECT_EQ(dx.shape(), x.shape());
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsBothStrides, BlockShapes,
    ::testing::Values(
        BlockCase{BlockKind::kShuffleK3, 8, 8, 1},
        BlockCase{BlockKind::kShuffleK5, 8, 8, 1},
        BlockCase{BlockKind::kShuffleK7, 8, 8, 1},
        BlockCase{BlockKind::kXception, 8, 8, 1},
        BlockCase{BlockKind::kSkip, 8, 8, 1},
        BlockCase{BlockKind::kShuffleK3, 8, 16, 2},
        BlockCase{BlockKind::kShuffleK5, 8, 16, 2},
        BlockCase{BlockKind::kShuffleK7, 8, 16, 2},
        BlockCase{BlockKind::kXception, 8, 16, 2},
        BlockCase{BlockKind::kSkip, 8, 16, 2}));

class BlockGrad : public ::testing::TestWithParam<BlockCase> {};

TEST_P(BlockGrad, MatchesFiniteDifferences) {
  const BlockCase bc = GetParam();
  util::Rng rng(3);
  ShuffleChoiceBlock block(bc.kind, bc.in_ch, bc.out_ch, bc.stride, rng);
  // Every primitive layer's backward is finite-difference-verified exactly
  // in layers_test.cpp; this test targets the block's *routing* (branches,
  // split/concat, shuffle, masks). BN's zero-mean output parks many
  // activations on the ReLU kink, where central differences are wrong at
  // any step size — so bias gamma/beta to move activations ~5σ off the
  // kink, leaving the full backward path intact.
  std::vector<Parameter*> params;
  block.collect_params(params);
  for (Parameter* p : params) {
    if (p->name.find("gamma") != std::string::npos) p->value.fill(0.2f);
    if (p->name.find("beta") != std::string::npos) p->value.fill(1.0f);
  }
  const auto result =
      grad_check(block, block_input(bc.in_ch, 6, 4), 11, /*probes=*/24);
  // Routing bugs (a dropped or double-counted branch) produce O(1) errors;
  // fp32 round-off through 6+-layer chains with small (gamma = 0.2)
  // gradients accounts for up to ~0.1 on individual coordinates.
  EXPECT_LT(result.max_input_rel_err, 0.12);
  EXPECT_LT(result.max_param_rel_err, 0.12);
  // The kink-avoidance bias must have left the probes usable.
  EXPECT_LT(result.probes_skipped, result.probes_total / 4);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockGrad,
    ::testing::Values(BlockCase{BlockKind::kShuffleK3, 4, 4, 1},
                      BlockCase{BlockKind::kShuffleK5, 4, 4, 1},
                      BlockCase{BlockKind::kXception, 4, 4, 1},
                      BlockCase{BlockKind::kShuffleK3, 4, 8, 2},
                      BlockCase{BlockKind::kXception, 4, 8, 2},
                      BlockCase{BlockKind::kSkip, 4, 8, 2}));

TEST(ShuffleChoiceBlock, SkipStride1IsExactIdentity) {
  util::Rng rng(1);
  ShuffleChoiceBlock skip(BlockKind::kSkip, 8, 8, 1, rng);
  const Tensor x = block_input(8, 5, 9);
  const Tensor y = skip.forward(x);
  for (long i = 0; i < x.numel(); ++i) {
    EXPECT_EQ(y.flat()[static_cast<std::size_t>(i)],
              x.flat()[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(skip.param_count(), 0);
  EXPECT_EQ(skip.max_mid_channels(), 0);
}

TEST(ShuffleChoiceBlock, ChannelFactorMasksMidChannels) {
  util::Rng rng(2);
  ShuffleChoiceBlock block(BlockKind::kShuffleK3, 16, 16, 1, rng);
  EXPECT_EQ(block.max_mid_channels(), 8);
  block.set_channel_factor(0.5);
  EXPECT_EQ(block.active_mid_channels(), 4);
  block.set_channel_factor(0.1);
  EXPECT_EQ(block.active_mid_channels(), 1);
  block.set_channel_factor(1.0);
  EXPECT_EQ(block.active_mid_channels(), 8);
}

TEST(ShuffleChoiceBlock, NarrowerFactorChangesOutput) {
  util::Rng rng(3);
  ShuffleChoiceBlock block(BlockKind::kShuffleK3, 8, 8, 1, rng);
  const Tensor x = block_input(8, 6, 10);
  block.set_channel_factor(1.0);
  const Tensor full = block.forward(x);
  block.set_channel_factor(0.5);
  const Tensor half = block.forward(x);
  double diff = 0.0;
  for (long i = 0; i < full.numel(); ++i) {
    diff += std::abs(full.flat()[static_cast<std::size_t>(i)] -
                     half.flat()[static_cast<std::size_t>(i)]);
  }
  EXPECT_GT(diff, 1e-3);
}

TEST(ShuffleChoiceBlock, MaskingEquivalentToZeroedWeights) {
  // Scaling down must be exactly "the masked channels do not exist":
  // gradients to masked mid-channels are zero.
  util::Rng rng(4);
  ShuffleChoiceBlock block(BlockKind::kShuffleK3, 8, 8, 1, rng);
  block.set_channel_factor(0.5);  // 2 of 4 mid channels active
  const Tensor x = block_input(8, 6, 11);
  const Tensor y = block.forward(x);
  block.backward(Tensor::ones(y.shape()));

  std::vector<Parameter*> params;
  block.collect_params(params);
  // The depthwise conv inside the branch has one 3x3 filter per mid
  // channel; filters of masked channels must receive zero gradient.
  for (Parameter* p : params) {
    if (p->name.find("dw") != std::string::npos &&
        p->value.dim(0) == 4) {  // mid = 4 max channels
      const long per_filter = p->value.numel() / 4;
      for (long c = 2; c < 4; ++c) {  // masked half
        for (long i = 0; i < per_filter; ++i) {
          EXPECT_EQ(p->grad.flat()[static_cast<std::size_t>(
                        c * per_filter + i)],
                    0.0f)
              << p->name;
        }
      }
    }
  }
}

TEST(ShuffleChoiceBlock, FactorOutOfRangeThrows) {
  util::Rng rng(5);
  ShuffleChoiceBlock block(BlockKind::kShuffleK3, 8, 8, 1, rng);
  EXPECT_THROW(block.set_channel_factor(0.0), InvalidArgument);
  EXPECT_THROW(block.set_channel_factor(1.5), InvalidArgument);
}

TEST(ShuffleChoiceBlock, ConstructionValidation) {
  util::Rng rng(6);
  // stride-1 requires in == out
  EXPECT_THROW(ShuffleChoiceBlock(BlockKind::kShuffleK3, 8, 16, 1, rng),
               InvalidArgument);
  // odd channels
  EXPECT_THROW(ShuffleChoiceBlock(BlockKind::kShuffleK3, 7, 7, 1, rng),
               InvalidArgument);
  // bad stride
  EXPECT_THROW(ShuffleChoiceBlock(BlockKind::kShuffleK3, 8, 8, 3, rng),
               InvalidArgument);
}

TEST(ShuffleChoiceBlock, KernelTable) {
  EXPECT_EQ(block_kernel(BlockKind::kShuffleK3), 3);
  EXPECT_EQ(block_kernel(BlockKind::kShuffleK5), 5);
  EXPECT_EQ(block_kernel(BlockKind::kShuffleK7), 7);
  EXPECT_EQ(block_kernel(BlockKind::kXception), 3);
  EXPECT_EQ(std::string(block_kind_name(BlockKind::kXception)), "xception");
}

TEST(ShuffleChoiceBlock, SkipStride2HasProjection) {
  util::Rng rng(7);
  ShuffleChoiceBlock skip(BlockKind::kSkip, 8, 16, 2, rng);
  const Tensor y = skip.forward(block_input(8, 8, 12));
  EXPECT_EQ(y.shape(), (std::vector<long>{2, 16, 4, 4}));
  EXPECT_GT(skip.param_count(), 0);  // dw + pw projection weights
}

}  // namespace
}  // namespace hsconas::nn
