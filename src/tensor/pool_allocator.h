#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hsconas::tensor {

/// Thread-local recycling pool for Tensor heap buffers.
///
/// The serving lanes (src/serve) must not touch the heap in steady state:
/// every forward pass constructs activation Tensors whose std::vector
/// storage would otherwise be a malloc/free pair per layer. PooledAllocator
/// routes those vectors through a per-thread pool of size-bucketed blocks,
/// so after a warm-up batch every construction is served from recycled
/// memory.
///
/// The pool is *opt-in per thread* via ScopedTensorPool. Threads that never
/// opt in (training, search, tests) pay one thread-local bool load per
/// allocation and otherwise go straight to the heap — no pooling, no
/// counters, no behavior change.
///
/// Verification contract: while a thread is opted in, every allocation that
/// falls through to the heap increments `hsconas.tensor.pool.heap_allocs`
/// and every recycled block increments `hsconas.tensor.pool.hits`. The
/// zero-allocation steady-state test (tests/serve) pins heap_allocs flat
/// across a post-warm-up serving window.
///
/// Thread-safety: blocks are plain ::operator new allocations and are
/// fungible across threads — a block may be allocated on one thread and
/// parked on another's pool (request/response buffers crossing lanes).
/// Each thread's bucket list is touched only by that thread.

/// RAII opt-in: pooling is active on the calling thread for the lifetime of
/// the object (nestable; restores the previous state on destruction).
class ScopedTensorPool {
 public:
  ScopedTensorPool();
  ~ScopedTensorPool();
  ScopedTensorPool(const ScopedTensorPool&) = delete;
  ScopedTensorPool& operator=(const ScopedTensorPool&) = delete;

 private:
  bool prev_ = false;
};

/// True while the calling thread is inside a ScopedTensorPool scope.
bool tensor_pool_enabled();

/// Process-wide count of heap allocations made by opted-in threads. Flat
/// across a serving window == the window was allocation-free.
std::uint64_t tensor_pool_heap_allocs();

/// Process-wide count of allocations served from recycled blocks.
std::uint64_t tensor_pool_hits();

/// Bytes currently parked in the calling thread's pool (diagnostics).
std::size_t tensor_pool_parked_bytes();

/// Free every block parked on the calling thread's pool. Outstanding
/// allocations are unaffected.
void tensor_pool_release_thread_memory();

/// Allocation hooks behind PooledAllocator. `bytes` is rounded up to a
/// 64-byte granule so adjacent sizes share a bucket; take/park use the same
/// rounding, so a block is always returned to the bucket it came from.
void* tensor_pool_allocate(std::size_t bytes);
void tensor_pool_deallocate(void* p, std::size_t bytes) noexcept;

/// Minimal C++20 allocator over the thread-local pool. Stateless — all
/// instances are interchangeable, so vector moves/swaps stay O(1) and
/// noexcept exactly as with std::allocator.
template <class T>
class PooledAllocator {
 public:
  using value_type = T;

  PooledAllocator() = default;
  template <class U>
  PooledAllocator(const PooledAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(tensor_pool_allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    tensor_pool_deallocate(p, n * sizeof(T));
  }

  template <class U>
  bool operator==(const PooledAllocator<U>&) const noexcept {
    return true;
  }
};

}  // namespace hsconas::tensor
