#include "tensor/im2col.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"

namespace hsconas::tensor {

namespace {

/// In-bounds output range [x_lo, x_hi) for one kernel column offset:
/// 0 <= x*stride + off < in_w. Depends only on the kernel tap, so callers
/// hoist it out of the spatial loops and the inner copies run branch-free.
void x_bounds(long off, long stride, long in_w, long ow, long* x_lo,
              long* x_hi) {
  *x_lo = off >= 0 ? 0 : std::min(ow, (-off + stride - 1) / stride);
  *x_hi = off < in_w
              ? std::min(ow, (in_w - off + stride - 1) / stride)
              : 0;
  if (*x_hi < *x_lo) *x_hi = *x_lo;
}

}  // namespace

void im2col(const float* img, const ConvGeom& g, float* cols) {
  static obs::Counter& calls = obs::counter("hsconas.im2col.calls");
  calls.add();
  const long oh = g.out_h(), ow = g.out_w();
  const long hw = g.in_h * g.in_w;
  long row = 0;
  for (long c = 0; c < g.in_channels; ++c) {
    const float* chan = img + c * hw;
    for (long ki = 0; ki < g.kernel; ++ki) {
      for (long kj = 0; kj < g.kernel; ++kj, ++row) {
        float* out = cols + row * oh * ow;
        const long off = kj - g.pad;
        long x_lo, x_hi;
        x_bounds(off, g.stride, g.in_w, ow, &x_lo, &x_hi);
        for (long y = 0; y < oh; ++y) {
          float* dst = out + y * ow;
          const long iy = y * g.stride + ki - g.pad;
          if (iy < 0 || iy >= g.in_h) {
            std::memset(dst, 0, static_cast<std::size_t>(ow) * sizeof(float));
            continue;
          }
          const float* src_row = chan + iy * g.in_w;
          for (long x = 0; x < x_lo; ++x) dst[x] = 0.0f;
          if (g.stride == 1) {
            // The whole in-bounds run is contiguous in the source row.
            std::memcpy(dst + x_lo, src_row + x_lo + off,
                        static_cast<std::size_t>(x_hi - x_lo) * sizeof(float));
          } else {
            for (long x = x_lo; x < x_hi; ++x) {
              dst[x] = src_row[x * g.stride + off];
            }
          }
          for (long x = x_hi; x < ow; ++x) dst[x] = 0.0f;
        }
      }
    }
  }
}

void col2im(const float* cols, const ConvGeom& g, float* img_grad) {
  static obs::Counter& calls = obs::counter("hsconas.col2im.calls");
  calls.add();
  const long oh = g.out_h(), ow = g.out_w();
  const long hw = g.in_h * g.in_w;
  long row = 0;
  for (long c = 0; c < g.in_channels; ++c) {
    float* chan = img_grad + c * hw;
    for (long ki = 0; ki < g.kernel; ++ki) {
      for (long kj = 0; kj < g.kernel; ++kj, ++row) {
        const float* in = cols + row * oh * ow;
        const long off = kj - g.pad;
        long x_lo, x_hi;
        x_bounds(off, g.stride, g.in_w, ow, &x_lo, &x_hi);
        for (long y = 0; y < oh; ++y) {
          const long iy = y * g.stride + ki - g.pad;
          if (iy < 0 || iy >= g.in_h) continue;
          float* dst_row = chan + iy * g.in_w;
          const float* src = in + y * ow;
          if (g.stride == 1) {
            float* dst = dst_row + x_lo + off;
            for (long x = x_lo; x < x_hi; ++x) dst[x - x_lo] += src[x];
          } else {
            for (long x = x_lo; x < x_hi; ++x) {
              dst_row[x * g.stride + off] += src[x];
            }
          }
        }
      }
    }
  }
}

}  // namespace hsconas::tensor
