#include "tensor/im2col.h"

#include <cstring>

namespace hsconas::tensor {

void im2col(const float* img, const ConvGeom& g, float* cols) {
  const long oh = g.out_h(), ow = g.out_w();
  const long hw = g.in_h * g.in_w;
  long row = 0;
  for (long c = 0; c < g.in_channels; ++c) {
    const float* chan = img + c * hw;
    for (long ki = 0; ki < g.kernel; ++ki) {
      for (long kj = 0; kj < g.kernel; ++kj, ++row) {
        float* out = cols + row * oh * ow;
        for (long y = 0; y < oh; ++y) {
          const long iy = y * g.stride + ki - g.pad;
          if (iy < 0 || iy >= g.in_h) {
            std::memset(out + y * ow, 0,
                        static_cast<std::size_t>(ow) * sizeof(float));
            continue;
          }
          const float* src_row = chan + iy * g.in_w;
          for (long x = 0; x < ow; ++x) {
            const long ix = x * g.stride + kj - g.pad;
            out[y * ow + x] =
                (ix >= 0 && ix < g.in_w) ? src_row[ix] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* cols, const ConvGeom& g, float* img_grad) {
  const long oh = g.out_h(), ow = g.out_w();
  const long hw = g.in_h * g.in_w;
  long row = 0;
  for (long c = 0; c < g.in_channels; ++c) {
    float* chan = img_grad + c * hw;
    for (long ki = 0; ki < g.kernel; ++ki) {
      for (long kj = 0; kj < g.kernel; ++kj, ++row) {
        const float* in = cols + row * oh * ow;
        for (long y = 0; y < oh; ++y) {
          const long iy = y * g.stride + ki - g.pad;
          if (iy < 0 || iy >= g.in_h) continue;
          float* dst_row = chan + iy * g.in_w;
          for (long x = 0; x < ow; ++x) {
            const long ix = x * g.stride + kj - g.pad;
            if (ix >= 0 && ix < g.in_w) dst_row[ix] += in[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace hsconas::tensor
