#pragma once

#include <cstddef>
#include <cstdint>

#include "tensor/gemm.h"

namespace hsconas::tensor {

/// Requantization epilogue for the int8 GEMM writeback. Applied per output
/// row i (the out-channel axis for a lowered conv) once the int32
/// accumulation for a tile is complete:
///
///   C[i, j] = act(scale[i] * float(acc[i, j] + acc_bias[i]) + shift[i])
///
/// This is the same writeback slot as the fp32 GemmEpilogue — scale/shift
/// carry the combined dequantization affine (s_act * s_weight[i], times any
/// folded BatchNorm scale) plus bias/BN shift, and acc_bias carries the
/// integer zero-point correction (-z_act * Σ_k qweight[i][k]), so
/// dequantize + bias + BN + activation is one register-hot pass over C.
/// Null scale means 1, null shift / acc_bias mean 0.
struct QuantEpilogue {
  const float* scale = nullptr;            ///< length m, or null for 1
  const float* shift = nullptr;            ///< length m, or null for 0
  const std::int32_t* acc_bias = nullptr;  ///< length m, or null for 0
  EpilogueAct act = EpilogueAct::kNone;
};

/// Largest supported reduction depth. |q_w * q_act| <= 127 * 255, so any
/// k below this bound cannot overflow the int32 accumulators; both entry
/// points throw InvalidArgument past it.
inline constexpr std::size_t kGemmI8MaxK = 1u << 16;

/// C (m×n, int32) = A (m×k, int8) · B (k×n, uint8). Row-major, contiguous;
/// C is overwritten. The operand signedness matches the quantization
/// scheme (symmetric int8 weights × asymmetric uint8 activations) and the
/// AVX-512 VNNI dot-product instruction, which multiplies unsigned by
/// signed bytes. Accumulation is exact integer arithmetic, so results are
/// bit-identical at any thread count and for every code path (VNNI,
/// scalar) by construction. See docs/QUANTIZATION.md.
void gemm_i8(std::size_t m, std::size_t n, std::size_t k, const std::int8_t* a,
             const std::uint8_t* b, std::int32_t* c);

/// C (m×n, float) = ep(A (m×k, int8) · B (k×n, uint8)): the int32 product
/// with the requantize epilogue applied during the C-writeback while the
/// accumulator tile is still in registers — one memory pass for matmul +
/// dequantize + bias/BN + activation. The integer accumulation is exact,
/// so this too is bit-deterministic at any thread count.
void gemm_i8_requant(std::size_t m, std::size_t n, std::size_t k,
                     const std::int8_t* a, const std::uint8_t* b, float* c,
                     const QuantEpilogue& ep);

/// True when the AVX-512 VNNI microkernel is compiled in (bench/report
/// context; the scalar fallback computes identical values).
bool gemm_i8_vnni_enabled();

}  // namespace hsconas::tensor
