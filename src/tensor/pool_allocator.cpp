#include "tensor/pool_allocator.h"

#include <new>

#include "obs/metrics.h"

namespace hsconas::tensor {

namespace {

/// Bucket granularity: 64 bytes keeps the bucket count small (adjacent
/// activation sizes coalesce) without wasting more than a cache line per
/// block.
constexpr std::size_t kGranule = 64;

/// Blocks parked per bucket before overflow goes back to the heap. Serving
/// touches each distinct size a handful of times per in-flight batch, so
/// this bounds pool growth when tensors migrate between threads.
constexpr std::size_t kMaxBlocksPerBucket = 64;

std::size_t round_up(std::size_t bytes) {
  if (bytes == 0) return kGranule;
  return (bytes + kGranule - 1) / kGranule * kGranule;
}

struct Bucket {
  std::size_t bytes = 0;  ///< rounded block size for every entry
  std::vector<void*> blocks;
};

/// Per-thread pool state. Bucket lookup is a linear scan: a full network
/// forward touches a few dozen distinct sizes, and the scan is branch-cheap
/// compared to the malloc it replaces.
struct ThreadPoolState {
  bool enabled = false;
  std::vector<Bucket> buckets;

  ~ThreadPoolState() {
    for (Bucket& b : buckets) {
      for (void* p : b.blocks) ::operator delete(p);
    }
  }

  Bucket* find(std::size_t bytes) {
    for (Bucket& b : buckets) {
      if (b.bytes == bytes) return &b;
    }
    return nullptr;
  }
};

ThreadPoolState& tls() {
  thread_local ThreadPoolState state;
  return state;
}

obs::Counter& heap_allocs_counter() {
  static obs::Counter& c = obs::counter("hsconas.tensor.pool.heap_allocs");
  return c;
}

obs::Counter& hits_counter() {
  static obs::Counter& c = obs::counter("hsconas.tensor.pool.hits");
  return c;
}

}  // namespace

ScopedTensorPool::ScopedTensorPool() {
  ThreadPoolState& s = tls();
  prev_ = s.enabled;
  s.enabled = true;
}

ScopedTensorPool::~ScopedTensorPool() { tls().enabled = prev_; }

bool tensor_pool_enabled() { return tls().enabled; }

std::uint64_t tensor_pool_heap_allocs() {
  return heap_allocs_counter().value();
}

std::uint64_t tensor_pool_hits() { return hits_counter().value(); }

std::size_t tensor_pool_parked_bytes() {
  std::size_t total = 0;
  for (const Bucket& b : tls().buckets) total += b.bytes * b.blocks.size();
  return total;
}

void tensor_pool_release_thread_memory() {
  ThreadPoolState& s = tls();
  for (Bucket& b : s.buckets) {
    for (void* p : b.blocks) ::operator delete(p);
    b.blocks.clear();
  }
  s.buckets.clear();
}

void* tensor_pool_allocate(std::size_t bytes) {
  ThreadPoolState& s = tls();
  if (!s.enabled) return ::operator new(round_up(bytes));
  const std::size_t rounded = round_up(bytes);
  if (Bucket* b = s.find(rounded); b != nullptr && !b->blocks.empty()) {
    void* p = b->blocks.back();
    b->blocks.pop_back();
    hits_counter().add();
    return p;
  }
  heap_allocs_counter().add();
  return ::operator new(rounded);
}

void tensor_pool_deallocate(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  ThreadPoolState& s = tls();
  if (!s.enabled) {
    ::operator delete(p);
    return;
  }
  const std::size_t rounded = round_up(bytes);
  // Bookkeeping growth (new bucket, blocks capacity) can itself throw
  // bad_alloc; inside a noexcept deallocation path the block just goes
  // back to the heap instead.
  try {
    Bucket* b = s.find(rounded);
    if (b == nullptr) {
      s.buckets.push_back(Bucket{rounded, {}});
      b = &s.buckets.back();
      b->blocks.reserve(kMaxBlocksPerBucket);
    }
    if (b->blocks.size() >= kMaxBlocksPerBucket) {
      ::operator delete(p);
      return;
    }
    b->blocks.push_back(p);
  } catch (...) {
    ::operator delete(p);
  }
}

}  // namespace hsconas::tensor
