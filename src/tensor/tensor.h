#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "tensor/pool_allocator.h"
#include "util/error.h"
#include "util/rng.h"

namespace hsconas::tensor {

/// Element type of a Tensor's storage. kF32 is the training/default path;
/// the 8-bit types carry quantized inference data (kI8: signed symmetric,
/// used for weights; kU8: unsigned asymmetric with a zero point, used for
/// activations). The enum is the seam future widths (bf16, int4) extend.
enum class DType : std::uint8_t { kF32 = 0, kI8 = 1, kU8 = 2 };

/// "f32" / "i8" / "u8" — the spelling used in bench records and reports.
const char* dtype_name(DType dtype);

/// Storage bytes per element.
std::size_t dtype_bytes(DType dtype);

/// Affine quantization parameters attached to an 8-bit tensor:
/// real_value = scale * (stored_value - zero_point).
struct QuantParams {
  float scale = 1.0f;
  std::int32_t zero_point = 0;
};

/// Shape storage. Pooled like the element buffer so that constructing a
/// Tensor on an opted-in thread (see ScopedTensorPool) touches the heap
/// zero times in steady state.
using ShapeVec = std::vector<long, PooledAllocator<long>>;

/// Shapes compare against plain std::vector<long> literals (tests, call
/// sites predating the pooled allocator). C++20 synthesizes the swapped
/// and != forms.
inline bool operator==(const ShapeVec& a, const std::vector<long>& b) {
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}

/// Dense row-major tensor with up to 4 logical dimensions. Storage is
/// float32 by default; the quantized() factory produces 8-bit tensors
/// (dtype() kI8/kU8 with QuantParams) for the int8 inference path — those
/// are data containers only, the float accessors and arithmetic below
/// address fp32 tensors.
///
/// Convention throughout the NN substrate: activations are NCHW
/// (batch, channels, height, width); convolution weights are OIHW
/// (out_channels, in_channels/groups, kh, kw); linear weights are (out, in).
///
/// Tensor is a value type with deep-copy semantics — the networks here are
/// small enough that simplicity beats COW cleverness, and deep copies make
/// the weight-sharing semantics of the supernet explicit (the supernet holds
/// the single canonical copy; subnets *reference* it through the module
/// graph rather than copying tensors).
class Tensor {
 public:
  Tensor() = default;

  /// Construct zero-filled with the given shape.
  explicit Tensor(ShapeVec shape);
  explicit Tensor(const std::vector<long>& shape)
      : Tensor(ShapeVec(shape.begin(), shape.end())) {}
  Tensor(std::initializer_list<long> shape) : Tensor(ShapeVec(shape)) {}

  // Every factory accepts the pooled ShapeVec (the type shape() returns),
  // a plain std::vector<long>, or a braced list; the last two delegate.
  static Tensor zeros(ShapeVec shape) { return Tensor(std::move(shape)); }
  static Tensor zeros(const std::vector<long>& shape) { return Tensor(shape); }
  static Tensor zeros(std::initializer_list<long> shape) {
    return Tensor(ShapeVec(shape));
  }
  static Tensor full(ShapeVec shape, float value);
  static Tensor full(const std::vector<long>& shape, float value) {
    return full(ShapeVec(shape.begin(), shape.end()), value);
  }
  static Tensor full(std::initializer_list<long> shape, float value) {
    return full(ShapeVec(shape), value);
  }
  static Tensor ones(ShapeVec shape) { return full(std::move(shape), 1.0f); }
  static Tensor ones(const std::vector<long>& shape) {
    return ones(ShapeVec(shape.begin(), shape.end()));
  }
  static Tensor ones(std::initializer_list<long> shape) {
    return ones(ShapeVec(shape));
  }

  /// I.i.d. uniform in [lo, hi).
  static Tensor uniform(ShapeVec shape, float lo, float hi, util::Rng& rng);
  static Tensor uniform(const std::vector<long>& shape, float lo, float hi,
                        util::Rng& rng) {
    return uniform(ShapeVec(shape.begin(), shape.end()), lo, hi, rng);
  }
  static Tensor uniform(std::initializer_list<long> shape, float lo, float hi,
                        util::Rng& rng) {
    return uniform(ShapeVec(shape), lo, hi, rng);
  }
  /// I.i.d. normal(mean, stddev).
  static Tensor normal(ShapeVec shape, float mean, float stddev,
                       util::Rng& rng);
  static Tensor normal(const std::vector<long>& shape, float mean,
                       float stddev, util::Rng& rng) {
    return normal(ShapeVec(shape.begin(), shape.end()), mean, stddev, rng);
  }
  static Tensor normal(std::initializer_list<long> shape, float mean,
                       float stddev, util::Rng& rng) {
    return normal(ShapeVec(shape), mean, stddev, rng);
  }

  /// Zero-filled 8-bit quantized tensor (dtype kI8 or kU8) with the given
  /// affine parameters. Storage is pooled exactly like the fp32 buffer.
  static Tensor quantized(ShapeVec shape, DType dtype, QuantParams params);
  static Tensor quantized(const std::vector<long>& shape, DType dtype,
                          QuantParams params) {
    return quantized(ShapeVec(shape.begin(), shape.end()), dtype, params);
  }
  static Tensor quantized(std::initializer_list<long> shape, DType dtype,
                          QuantParams params) {
    return quantized(ShapeVec(shape), dtype, params);
  }

  const ShapeVec& shape() const { return shape_; }
  long dim(std::size_t i) const;
  std::size_t ndim() const { return shape_.size(); }
  long numel() const {
    return dtype_ == DType::kF32 ? static_cast<long>(data_.size())
                                 : static_cast<long>(qdata_.size());
  }
  bool empty() const { return numel() == 0; }

  DType dtype() const { return dtype_; }
  bool is_quantized() const { return dtype_ != DType::kF32; }
  const QuantParams& quant() const { return quant_; }
  void set_quant(QuantParams params) { quant_ = params; }

  // The float accessors below address kF32 storage only; an 8-bit tensor's
  // float buffer is empty (data() == nullptr, flat() is an empty span).
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  /// 8-bit storage accessors. Checked: the tensor's dtype must match the
  /// requested signedness.
  std::int8_t* i8_data();
  const std::int8_t* i8_data() const {
    return const_cast<Tensor*>(this)->i8_data();
  }
  std::uint8_t* u8_data();
  const std::uint8_t* u8_data() const {
    return const_cast<Tensor*>(this)->u8_data();
  }

  float& at(long i);
  float& at(long i, long j);
  float& at(long i, long j, long k);
  float& at(long n, long c, long h, long w);
  float at(long i) const { return const_cast<Tensor*>(this)->at(i); }
  float at(long i, long j) const { return const_cast<Tensor*>(this)->at(i, j); }
  float at(long i, long j, long k) const {
    return const_cast<Tensor*>(this)->at(i, j, k);
  }
  float at(long n, long c, long h, long w) const {
    return const_cast<Tensor*>(this)->at(n, c, h, w);
  }

  /// Reinterpret the buffer with a new shape of equal numel.
  Tensor reshaped(ShapeVec shape) const;
  Tensor reshaped(const std::vector<long>& shape) const {
    return reshaped(ShapeVec(shape.begin(), shape.end()));
  }
  Tensor reshaped(std::initializer_list<long> shape) const {
    return reshaped(ShapeVec(shape));
  }

  // ---- in-place arithmetic -------------------------------------------------
  void fill(float v);
  void zero() { fill(0.0f); }
  void add_(const Tensor& other);            ///< this += other
  void sub_(const Tensor& other);            ///< this -= other
  void mul_(float s);                        ///< this *= s
  void axpy_(float alpha, const Tensor& x);  ///< this += alpha * x
  void hadamard_(const Tensor& other);       ///< this *= other (elementwise)

  // ---- reductions ----------------------------------------------------------
  float sum() const;
  float mean() const;
  float abs_max() const;
  float l2_norm() const;

  /// True iff every element is finite (NaN/Inf detection for training).
  bool all_finite() const;

  std::string shape_str() const;

  /// Throws InvalidArgument unless shapes match exactly.
  void check_same_shape(const Tensor& other, const char* op) const;

 private:
  ShapeVec shape_;
  std::vector<float, PooledAllocator<float>> data_;
  /// 8-bit storage (kI8/kU8); kU8 reads the same bytes through u8_data().
  /// Exactly one of data_/qdata_ is populated, selected by dtype_.
  std::vector<std::int8_t, PooledAllocator<std::int8_t>> qdata_;
  DType dtype_ = DType::kF32;
  QuantParams quant_;
};

/// numel of a shape vector; validates non-negative dims.
long shape_numel(std::span<const long> shape);

}  // namespace hsconas::tensor
