#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace hsconas::tensor {

/// Dense row-major float32 tensor with up to 4 logical dimensions.
///
/// Convention throughout the NN substrate: activations are NCHW
/// (batch, channels, height, width); convolution weights are OIHW
/// (out_channels, in_channels/groups, kh, kw); linear weights are (out, in).
///
/// Tensor is a value type with deep-copy semantics — the networks here are
/// small enough that simplicity beats COW cleverness, and deep copies make
/// the weight-sharing semantics of the supernet explicit (the supernet holds
/// the single canonical copy; subnets *reference* it through the module
/// graph rather than copying tensors).
class Tensor {
 public:
  Tensor() = default;

  /// Construct zero-filled with the given shape.
  explicit Tensor(std::vector<long> shape);
  Tensor(std::initializer_list<long> shape)
      : Tensor(std::vector<long>(shape)) {}

  static Tensor zeros(std::vector<long> shape) { return Tensor(std::move(shape)); }
  static Tensor full(std::vector<long> shape, float value);
  static Tensor ones(std::vector<long> shape) { return full(std::move(shape), 1.0f); }

  /// I.i.d. uniform in [lo, hi).
  static Tensor uniform(std::vector<long> shape, float lo, float hi,
                        util::Rng& rng);
  /// I.i.d. normal(mean, stddev).
  static Tensor normal(std::vector<long> shape, float mean, float stddev,
                       util::Rng& rng);

  const std::vector<long>& shape() const { return shape_; }
  long dim(std::size_t i) const;
  std::size_t ndim() const { return shape_.size(); }
  long numel() const { return static_cast<long>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  float& at(long i);
  float& at(long i, long j);
  float& at(long i, long j, long k);
  float& at(long n, long c, long h, long w);
  float at(long i) const { return const_cast<Tensor*>(this)->at(i); }
  float at(long i, long j) const { return const_cast<Tensor*>(this)->at(i, j); }
  float at(long i, long j, long k) const {
    return const_cast<Tensor*>(this)->at(i, j, k);
  }
  float at(long n, long c, long h, long w) const {
    return const_cast<Tensor*>(this)->at(n, c, h, w);
  }

  /// Reinterpret the buffer with a new shape of equal numel.
  Tensor reshaped(std::vector<long> shape) const;

  // ---- in-place arithmetic -------------------------------------------------
  void fill(float v);
  void zero() { fill(0.0f); }
  void add_(const Tensor& other);            ///< this += other
  void sub_(const Tensor& other);            ///< this -= other
  void mul_(float s);                        ///< this *= s
  void axpy_(float alpha, const Tensor& x);  ///< this += alpha * x
  void hadamard_(const Tensor& other);       ///< this *= other (elementwise)

  // ---- reductions ----------------------------------------------------------
  float sum() const;
  float mean() const;
  float abs_max() const;
  float l2_norm() const;

  /// True iff every element is finite (NaN/Inf detection for training).
  bool all_finite() const;

  std::string shape_str() const;

  /// Throws InvalidArgument unless shapes match exactly.
  void check_same_shape(const Tensor& other, const char* op) const;

 private:
  std::vector<long> shape_;
  std::vector<float> data_;
};

/// numel of a shape vector; validates non-negative dims.
long shape_numel(const std::vector<long>& shape);

}  // namespace hsconas::tensor
