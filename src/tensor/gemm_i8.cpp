#include "tensor/gemm_i8.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"
#include "tensor/workspace.h"
#include "util/error.h"
#include "util/thread_pool.h"

#if defined(__AVX512VNNI__) && defined(__AVX512F__) && defined(__AVX512BW__)
#define HSCONAS_GEMM_I8_VNNI 1
#include <immintrin.h>
#endif

namespace hsconas::tensor {

bool gemm_i8_vnni_enabled() {
#ifdef HSCONAS_GEMM_I8_VNNI
  return true;
#else
  return false;
#endif
}

namespace {

#if defined(__GNUC__) || defined(__clang__)
#define HSCONAS_RESTRICT __restrict__
#else
#define HSCONAS_RESTRICT
#endif

// Register tile, mirroring the fp32 kernel's shape: MR×NR int32
// accumulators live in registers across the whole k loop. The k axis is
// consumed four bytes at a time (one VNNI dot-product step), so packed
// panels interleave quads: a packed "k step" holds 4 consecutive k values
// for each of the NR columns (B) / MR rows (A).
constexpr std::size_t kMR = 6;
constexpr std::size_t kNR = 16;
constexpr std::size_t kQuad = 4;

// N blocking only: the int8 kernel keeps the whole (quad-padded) k extent
// in one pass — accumulators never leave registers, C is written exactly
// once, and the packed B block for an NC stripe is k×kNC bytes, a quarter
// of the fp32 footprint.
constexpr std::size_t kNC = 512;

// Parallel task granularity along M, MR-aligned like the fp32 kernel so
// the packed-panel set is independent of the thread schedule (with exact
// integer accumulation this is belt-and-braces: any schedule is
// bit-identical anyway).
constexpr std::size_t kMChunk = 2 * kMR;

constexpr std::size_t kPackThresholdFlops = 1u << 14;
constexpr std::size_t kParallelThresholdFlops = 1u << 21;

constexpr std::size_t round_up(std::size_t x, std::size_t to) {
  return (x + to - 1) / to * to;
}

void count_entry(obs::Counter& calls, std::size_t m, std::size_t n,
                 std::size_t k) {
  static obs::Counter& macs = obs::counter("hsconas.gemm_i8.macs");
  calls.add();
  macs.add(static_cast<std::uint64_t>(m) * n * k);
}

/// The sanctioned int32 → float conversion site of the requantize path
/// (quant-dtype-discipline lint rule): every instruction upstream stays in
/// integer arithmetic; dequantization happens exactly here, with the same
/// epilogue_affine / epilogue_apply scalar math as the fp32 epilogue.
inline float requant_value(const QuantEpilogue& ep, std::size_t row,
                           std::int32_t raw) {
  const std::int32_t adj =
      raw + (ep.acc_bias != nullptr ? ep.acc_bias[row] : 0);
  const float s = ep.scale != nullptr ? ep.scale[row] : 1.0f;
  const float t = ep.shift != nullptr ? ep.shift[row] : 0.0f;
  // hsconas-lint-allow(quant-dtype-discipline)
  return epilogue_apply(ep.act, epilogue_affine(s, static_cast<float>(adj), t));
}

struct GemmI8Args {
  std::size_t m, n, k;
  const std::int8_t* a;   // m×k, lda == k
  const std::uint8_t* b;  // k×n, ldb == n
  std::int32_t* ci;       // raw int32 output (null when requantizing)
  float* cf;              // requantized float output (null for raw)
  const QuantEpilogue* ep;
};

/// Pack the M chunk [i0, i0+mc) of A into MR-row, quad-interleaved panels:
/// panel ip holds kq steps of MR×4 bytes — rows column-adjacent, each
/// row's 4 consecutive k bytes contiguous — zero-padded past mc and past
/// k (zero weight bytes contribute nothing to any dot product).
void pack_a_block(const std::int8_t* a, std::size_t lda, std::size_t i0,
                  std::size_t mc, std::size_t k, std::size_t kq,
                  std::int8_t* HSCONAS_RESTRICT ap) {
  for (std::size_t ip = 0; ip < mc; ip += kMR) {
    const std::size_t mr = std::min(kMR, mc - ip);
    for (std::size_t q = 0; q < kq; ++q) {
      for (std::size_t i = 0; i < kMR; ++i) {
        const std::int8_t* src = a + (i0 + ip + i) * lda + q * kQuad;
        for (std::size_t t = 0; t < kQuad; ++t) {
          const std::size_t p = q * kQuad + t;
          ap[(q * kMR + i) * kQuad + t] =
              (i < mr && p < k) ? src[t] : std::int8_t{0};
        }
      }
    }
    ap += kq * kMR * kQuad;
  }
}

/// Pack one k×NR panel of B (columns [jc+jp, jc+jp+nr)) quad-interleaved:
/// step q holds, for each of the NR columns, that column's 4 consecutive
/// k bytes — one 64-byte VNNI vector per step. Zero-padded past nr and
/// past k. Panels are disjoint, so an N block's panels pack concurrently.
void pack_b_panel(const std::uint8_t* b, std::size_t ldb, std::size_t jc,
                  std::size_t jp, std::size_t nr, std::size_t k,
                  std::size_t kq, std::uint8_t* HSCONAS_RESTRICT bp) {
  std::memset(bp, 0, kq * kNR * kQuad);
  for (std::size_t q = 0; q < kq; ++q) {
    for (std::size_t t = 0; t < kQuad; ++t) {
      const std::size_t p = q * kQuad + t;
      if (p >= k) break;
      const std::uint8_t* src = b + p * ldb + jc + jp;
      for (std::size_t j = 0; j < nr; ++j) {
        bp[(q * kNR + j) * kQuad + t] = src[j];
      }
    }
  }
}

/// acc (kMR×kNR int32) = Ap_panel · Bp_panel over the full quad-padded k.
/// One B vector load + kMR broadcast-dot-products per step on the VNNI
/// path: _mm512_dpbusd_epi32 multiplies 4 unsigned B bytes by 4 signed A
/// bytes per int32 lane and accumulates — 64 MACs per instruction. The
/// scalar fallback walks the identical packed layout; integer arithmetic
/// makes the two paths bit-identical, not just close.
#ifdef HSCONAS_GEMM_I8_VNNI
void micro_kernel(std::size_t kq, const std::int8_t* HSCONAS_RESTRICT ap,
                  const std::uint8_t* HSCONAS_RESTRICT bp,
                  std::int32_t* HSCONAS_RESTRICT acc_out) {
  __m512i acc[kMR];
  for (std::size_t i = 0; i < kMR; ++i) acc[i] = _mm512_setzero_si512();
  for (std::size_t q = 0; q < kq; ++q) {
    const __m512i bv =
        // hsconas-lint-allow(serial-pointer-cast) — vector load pun.
        _mm512_loadu_si512(reinterpret_cast<const void*>(bp + q * kNR * kQuad));
    const std::int8_t* HSCONAS_RESTRICT arow = ap + q * kMR * kQuad;
    for (std::size_t i = 0; i < kMR; ++i) {
      std::int32_t aw;
      // Unaligned 4-byte load of a weight quad for the broadcast; memcpy
      // is the UB-free pun and compiles to a single mov.
      // hsconas-lint-allow(serial-raw-memcpy)
      std::memcpy(&aw, arow + i * kQuad, sizeof(aw));
      acc[i] = _mm512_dpbusd_epi32(acc[i], bv, _mm512_set1_epi32(aw));
    }
  }
  for (std::size_t i = 0; i < kMR; ++i) {
    // hsconas-lint-allow(serial-pointer-cast) — vector store pun.
    _mm512_storeu_si512(reinterpret_cast<void*>(acc_out + i * kNR), acc[i]);
  }
}
#else
void micro_kernel(std::size_t kq, const std::int8_t* HSCONAS_RESTRICT ap,
                  const std::uint8_t* HSCONAS_RESTRICT bp,
                  std::int32_t* HSCONAS_RESTRICT acc_out) {
  std::int32_t acc[kMR * kNR] = {};
  for (std::size_t q = 0; q < kq; ++q) {
    const std::int8_t* HSCONAS_RESTRICT arow = ap + q * kMR * kQuad;
    const std::uint8_t* HSCONAS_RESTRICT brow = bp + q * kNR * kQuad;
    for (std::size_t i = 0; i < kMR; ++i) {
      for (std::size_t j = 0; j < kNR; ++j) {
        std::int32_t dot = 0;
        for (std::size_t t = 0; t < kQuad; ++t) {
          dot += static_cast<std::int32_t>(arow[i * kQuad + t]) *
                 static_cast<std::int32_t>(brow[j * kQuad + t]);
        }
        acc[i * kNR + j] += dot;
      }
    }
  }
  // hsconas-lint-allow(serial-raw-memcpy) — accumulator tile copy-out.
  std::memcpy(acc_out, acc, sizeof(acc));
}
#endif

/// Write the finished mr×nr accumulator tile at C rows [i0+ip, ...) and
/// columns [jc+jp, ...): raw int32 store, or the fused requantize
/// writeback. Each element is written exactly once.
void write_tile(const GemmI8Args& g, std::size_t row0, std::size_t col0,
                std::size_t mr, std::size_t nr,
                const std::int32_t* HSCONAS_RESTRICT acc) {
  if (g.ep != nullptr) {
    for (std::size_t i = 0; i < mr; ++i) {
      float* HSCONAS_RESTRICT crow = g.cf + (row0 + i) * g.n + col0;
      for (std::size_t j = 0; j < nr; ++j) {
        crow[j] = requant_value(*g.ep, row0 + i, acc[i * kNR + j]);
      }
    }
    return;
  }
  for (std::size_t i = 0; i < mr; ++i) {
    std::int32_t* HSCONAS_RESTRICT crow = g.ci + (row0 + i) * g.n + col0;
    for (std::size_t j = 0; j < nr; ++j) crow[j] = acc[i * kNR + j];
  }
}

/// Compute the kMChunk-row M chunk at row i0 against the shared packed B
/// block `bp` (kq steps per panel, panels at logical column jc): pack this
/// chunk's A panels from the calling thread's workspace, then run the
/// microkernel over every (MR, NR) tile and write each C tile once.
void run_m_chunk(const GemmI8Args& g, std::size_t i0, std::size_t jc,
                 std::size_t nc, std::size_t kq,
                 const std::uint8_t* HSCONAS_RESTRICT bp) {
  const std::size_t mc = std::min(kMChunk, g.m - i0);
  Workspace& ws = Workspace::tls();
  ByteScratch ap = ws.take_bytes(round_up(mc, kMR) * kq * kQuad);
  pack_a_block(g.a, g.k, i0, mc, g.k, kq, ap.i8());
  std::int32_t acc[kMR * kNR];
  for (std::size_t jp = 0; jp < nc; jp += kNR) {
    const std::size_t nr = std::min(kNR, nc - jp);
    const std::uint8_t* bpanel = bp + (jp / kNR) * kq * kNR * kQuad;
    for (std::size_t ip = 0; ip < mc; ip += kMR) {
      const std::size_t mr = std::min(kMR, mc - ip);
      micro_kernel(kq, ap.i8() + (ip / kMR) * kq * kMR * kQuad, bpanel, acc);
      write_tile(g, i0 + ip, jc + jp, mr, nr, acc);
    }
  }
}

/// Unpacked fallback for problems too small to amortize panel copies.
void gemm_i8_small(const GemmI8Args& g) {
  for (std::size_t i = 0; i < g.m; ++i) {
    const std::int8_t* HSCONAS_RESTRICT arow = g.a + i * g.k;
    for (std::size_t j = 0; j < g.n; ++j) {
      std::int32_t acc = 0;
      for (std::size_t p = 0; p < g.k; ++p) {
        acc += static_cast<std::int32_t>(arow[p]) *
               static_cast<std::int32_t>(g.b[p * g.n + j]);
      }
      if (g.ep != nullptr) {
        g.cf[i * g.n + j] = requant_value(*g.ep, i, acc);
      } else {
        g.ci[i * g.n + j] = acc;
      }
    }
  }
}

/// Macro-kernel: per NC stripe, pack B panels once into a shared read-only
/// buffer (concurrently — panels are disjoint — with the parallel_for
/// join publishing them), then distribute MR-aligned M chunks over the
/// pool. C rows are partitioned by chunk, so no two threads write the
/// same element; integer accumulation makes every schedule bit-identical.
void gemm_i8_blocked(const GemmI8Args& g, bool parallel) {
  auto& pool = util::ThreadPool::global();
  const std::size_t kq = round_up(g.k, kQuad) / kQuad;
  const std::size_t mchunks = (g.m + kMChunk - 1) / kMChunk;
  Workspace& ws = Workspace::tls();
  for (std::size_t jc = 0; jc < g.n; jc += kNC) {
    const std::size_t nc = std::min(kNC, g.n - jc);
    const std::size_t npanels = (nc + kNR - 1) / kNR;
    ByteScratch bp = ws.take_bytes(npanels * kq * kNR * kQuad);
    auto pack_panel = [&](std::size_t t) {
      pack_b_panel(g.b, g.n, jc, t * kNR, std::min(kNR, nc - t * kNR), g.k,
                   kq, bp.u8() + t * kq * kNR * kQuad);
    };
    auto run_chunk = [&](std::size_t t) {
      run_m_chunk(g, t * kMChunk, jc, nc, kq, bp.u8());
    };
    if (!parallel) {
      for (std::size_t t = 0; t < npanels; ++t) pack_panel(t);
      for (std::size_t t = 0; t < mchunks; ++t) run_chunk(t);
      continue;
    }
    pool.parallel_for(npanels, pack_panel);
    pool.parallel_for(mchunks, run_chunk);
  }
}

void gemm_i8_dispatch(const GemmI8Args& g) {
  if (g.k > kGemmI8MaxK) {
    throw InvalidArgument("gemm_i8: k exceeds the int32 accumulator bound");
  }
  if (g.m == 0 || g.n == 0) return;
  if (g.k == 0) {
    // Zero product; the requantize epilogue still applies (C = act(shift)
    // after the zero-point correction), mirroring the fp32 dispatch.
    for (std::size_t i = 0; i < g.m; ++i) {
      for (std::size_t j = 0; j < g.n; ++j) {
        if (g.ep != nullptr) {
          g.cf[i * g.n + j] = requant_value(*g.ep, i, 0);
        } else {
          g.ci[i * g.n + j] = 0;
        }
      }
    }
    return;
  }
  const std::size_t flops = 2 * g.m * g.n * g.k;
  if (flops < kPackThresholdFlops || g.m < kMR / 2) {
    gemm_i8_small(g);
    return;
  }
  auto& pool = util::ThreadPool::global();
  const bool parallel = pool.size() > 1 && flops >= kParallelThresholdFlops;
  gemm_i8_blocked(g, parallel);
}

}  // namespace

void gemm_i8(std::size_t m, std::size_t n, std::size_t k, const std::int8_t* a,
             const std::uint8_t* b, std::int32_t* c) {
  static obs::Counter& calls = obs::counter("hsconas.gemm_i8.calls");
  count_entry(calls, m, n, k);
  gemm_i8_dispatch({m, n, k, a, b, c, nullptr, nullptr});
}

void gemm_i8_requant(std::size_t m, std::size_t n, std::size_t k,
                     const std::int8_t* a, const std::uint8_t* b, float* c,
                     const QuantEpilogue& ep) {
  static obs::Counter& calls = obs::counter("hsconas.gemm_i8.calls_requant");
  count_entry(calls, m, n, k);
  gemm_i8_dispatch({m, n, k, a, b, nullptr, c, &ep});
}

}  // namespace hsconas::tensor
