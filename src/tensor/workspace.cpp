#include "tensor/workspace.h"

#include <algorithm>
#include <cstring>
#include <new>
#include <string>

#include "obs/metrics.h"
#include "obs/profiler.h"

namespace hsconas::tensor {

namespace {
constexpr std::size_t kAlign = 64;  // one cache line / AVX-512 vector
constexpr std::size_t kMaxPooled = 16;  // buffers parked per thread

/// obs sits below tensor, so the profiler can't call Workspace::tls()
/// itself — register probe functions instead (see obs::WorkspaceProbe).
/// The registrar only stores plain function pointers into obs globals, so
/// static-init order across TUs is harmless; workspace.o is always pulled
/// into the link by the kernels that lease scratch.
[[maybe_unused]] const bool g_workspace_probe_registered = [] {
  obs::WorkspaceProbe probe;
  probe.reset_scope_peak = [] { Workspace::tls().reset_scope_peak(); };
  probe.scope_peak_bytes = []() -> std::uint64_t {
    return static_cast<std::uint64_t>(Workspace::tls().scope_peak_floats()) *
           sizeof(float);
  };
  obs::set_workspace_probe(probe);
  return true;
}();
}  // namespace

Scratch::Scratch(Scratch&& other) noexcept
    : home_(other.home_),
      data_(other.data_),
      size_(other.size_),
      capacity_(other.capacity_) {
  other.home_ = nullptr;
  other.data_ = nullptr;
  other.size_ = other.capacity_ = 0;
}

Scratch& Scratch::operator=(Scratch&& other) noexcept {
  if (this != &other) {
    if (home_ != nullptr) home_->give_back(data_, capacity_);
    home_ = other.home_;
    data_ = other.data_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    other.home_ = nullptr;
    other.data_ = nullptr;
    other.size_ = other.capacity_ = 0;
  }
  return *this;
}

Scratch::~Scratch() {
  if (home_ != nullptr) home_->give_back(data_, capacity_);
}

Workspace::~Workspace() { release_memory(); }

Workspace& Workspace::tls() {
  thread_local Workspace ws;
  if (ws.thread_peak_gauge_ == nullptr) {
    // Lazy per-thread registration: one registry lookup per thread, then
    // every note_lease updates the thread's own high-water gauge.
    ws.thread_peak_gauge_ =
        &obs::gauge("hsconas.workspace.peak_bytes.t" +
                    std::to_string(obs::thread_ordinal()));
  }
  return ws;
}

float* Workspace::allocate(std::size_t n) {
  // Companion to hsconas.tensor.pool.heap_allocs: a flat value across a
  // serving window proves the scratch arena (GEMM packing, im2col panels)
  // is also allocation-free in steady state.
  static obs::Counter& heap = obs::counter("hsconas.workspace.heap_allocs");
  heap.add();
  return static_cast<float*>(::operator new(
      n * sizeof(float), std::align_val_t{kAlign}));
}

void Workspace::deallocate(float* p) {
  ::operator delete(p, std::align_val_t{kAlign});
}

Scratch Workspace::take(std::size_t n) {
  static obs::Counter& leases = obs::counter("hsconas.workspace.leases");
  if (n == 0) n = 1;
  leases.add();
  // Best fit: smallest pooled buffer that holds n, so big conv scratches
  // don't get burned on tiny bias rows.
  std::size_t best = free_.size();
  for (std::size_t i = 0; i < free_.size(); ++i) {
    if (free_[i].capacity >= n &&
        (best == free_.size() || free_[i].capacity < free_[best].capacity)) {
      best = i;
    }
  }
  if (best != free_.size()) {
    Block block = free_[best];
    free_[best] = free_.back();
    free_.pop_back();
    note_lease(block.capacity);
    return Scratch(this, block.data, n, block.capacity);
  }
  note_lease(n);
  return Scratch(this, allocate(n), n, n);
}

void Workspace::note_lease(std::size_t capacity) {
  static obs::Gauge& peak = obs::gauge("hsconas.workspace.peak_bytes");
  // High-water mark of scratch leased out by this thread's pool; the
  // shared gauge keeps the max across all threads for bench/report
  // context, and tls() pools also publish their own per-thread peak.
  outstanding_floats_ += capacity;
  peak_floats_ = std::max(peak_floats_, outstanding_floats_);
  scope_peak_floats_ = std::max(scope_peak_floats_, outstanding_floats_);
  const double bytes = static_cast<double>(outstanding_floats_) *
                       static_cast<double>(sizeof(float));
  peak.update_max(bytes);
  if (thread_peak_gauge_ != nullptr) thread_peak_gauge_->update_max(bytes);
}

Scratch Workspace::take_zeroed(std::size_t n) {
  Scratch s = take(n);
  std::memset(s.data(), 0, s.size() * sizeof(float));
  return s;
}

ByteScratch Workspace::take_bytes(std::size_t n) {
  return ByteScratch(take((n + sizeof(float) - 1) / sizeof(float)), n);
}

std::size_t Workspace::pooled_floats() const {
  std::size_t total = 0;
  for (const Block& b : free_) total += b.capacity;
  return total;
}

void Workspace::release_memory() {
  for (Block& b : free_) deallocate(b.data);
  free_.clear();
}

void Workspace::give_back(float* data, std::size_t capacity) {
  outstanding_floats_ -= std::min(outstanding_floats_, capacity);
  if (free_.size() >= kMaxPooled) {
    // Evict the smallest parked buffer; keeping the large ones maximizes
    // the chance the next lease is allocation-free.
    auto smallest = std::min_element(
        free_.begin(), free_.end(),
        [](const Block& a, const Block& b) { return a.capacity < b.capacity; });
    if (smallest->capacity >= capacity) {
      deallocate(data);
      return;
    }
    deallocate(smallest->data);
    free_.erase(smallest);
  }
  free_.push_back(Block{data, capacity});
}

}  // namespace hsconas::tensor
