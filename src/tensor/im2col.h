#pragma once

#include "tensor/tensor.h"

namespace hsconas::tensor {

/// Spatial geometry of a 2-D convolution (square kernels, symmetric padding).
struct ConvGeom {
  long in_channels = 0;
  long in_h = 0;
  long in_w = 0;
  long kernel = 1;
  long stride = 1;
  long pad = 0;

  long out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  long out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
};

/// Expand one image (C,H,W slice at `img`) into a (C*k*k) × (outH*outW)
/// column matrix for GEMM-based convolution. `cols` must hold
/// C*k*k*outH*outW floats.
void im2col(const float* img, const ConvGeom& g, float* cols);

/// Inverse scatter-add of im2col: accumulate the column matrix back into the
/// (C,H,W) image gradient. `img_grad` must be pre-zeroed by the caller if a
/// fresh gradient is wanted.
void col2im(const float* cols, const ConvGeom& g, float* img_grad);

}  // namespace hsconas::tensor
