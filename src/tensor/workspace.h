#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hsconas::obs {
class Gauge;
}

namespace hsconas::tensor {

class Workspace;

/// RAII lease on a float scratch buffer owned by a Workspace. Returns the
/// buffer to the owning pool on destruction so the next acquire of a
/// similar size reuses the allocation instead of hitting the heap.
/// Contents are uninitialized unless acquired via take_zeroed().
class Scratch {
 public:
  Scratch() = default;
  Scratch(Scratch&& other) noexcept;
  Scratch& operator=(Scratch&& other) noexcept;
  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;
  ~Scratch();

  float* data() { return data_; }
  const float* data() const { return data_; }
  std::size_t size() const { return size_; }
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

 private:
  friend class Workspace;
  Scratch(Workspace* home, float* data, std::size_t size,
          std::size_t capacity)
      : home_(home), data_(data), size_(size), capacity_(capacity) {}

  Workspace* home_ = nullptr;  ///< pool to return to; null when empty
  float* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;  ///< allocation size in floats
};

/// RAII lease on a byte-typed scratch buffer for the quantized kernels
/// (int8 packing panels, u8 activation staging). Backed by the same pooled
/// float blocks as Scratch — reinterpreted, which byte types may do — so
/// the int8 path shares one recycling arena with the fp32 path and stays
/// allocation-free in steady state. Same thread-affinity rules as Scratch.
class ByteScratch {
 public:
  ByteScratch() = default;

  // The views below pun the pooled float block to byte types, which the
  // aliasing rules permit for char-family pointers; this is buffer
  // reinterpretation, not wire-format decoding.
  // hsconas-lint-allow(serial-pointer-cast)
  std::uint8_t* u8() { return reinterpret_cast<std::uint8_t*>(base_.data()); }
  const std::uint8_t* u8() const {
    // hsconas-lint-allow(serial-pointer-cast)
    return reinterpret_cast<const std::uint8_t*>(base_.data());
  }
  // hsconas-lint-allow(serial-pointer-cast)
  std::int8_t* i8() { return reinterpret_cast<std::int8_t*>(base_.data()); }
  const std::int8_t* i8() const {
    // hsconas-lint-allow(serial-pointer-cast)
    return reinterpret_cast<const std::int8_t*>(base_.data());
  }
  std::size_t size() const { return size_; }

 private:
  friend class Workspace;
  ByteScratch(Scratch base, std::size_t size)
      : base_(std::move(base)), size_(size) {}

  Scratch base_;
  std::size_t size_ = 0;  ///< requested bytes
};

/// Growable pool of cache-line-aligned scratch buffers. The hot compute
/// paths (GEMM packing, im2col panels, conv scatter staging) lease buffers
/// from the calling thread's pool via Workspace::tls() instead of
/// constructing a std::vector per call — after warm-up, a forward/backward
/// pass performs zero scratch allocations.
///
/// Thread-safety: a Workspace instance is NOT synchronized. Use the
/// thread-local instance from tls(); a Scratch must be released (destroyed)
/// on the thread whose pool it came from. This is what makes leases safe
/// inside ThreadPool::parallel_for bodies: each worker leases from its own
/// pool.
class Workspace {
 public:
  Workspace() = default;
  ~Workspace();
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Calling thread's pool (lazily constructed, lives for the thread).
  static Workspace& tls();

  /// Lease a buffer of at least n floats, 64-byte aligned, uninitialized.
  Scratch take(std::size_t n);

  /// Lease a buffer of n floats with every element set to 0.0f.
  Scratch take_zeroed(std::size_t n);

  /// Lease at least n bytes, 64-byte aligned, uninitialized — a float
  /// lease rounded up to whole floats and viewed as bytes, so pool
  /// accounting and recycling are shared with the float path.
  ByteScratch take_bytes(std::size_t n);

  /// Floats currently parked in the free list (for tests/diagnostics).
  std::size_t pooled_floats() const;

  /// Floats currently leased out from this pool. The cross-thread peak in
  /// bytes is published to the `hsconas.workspace.peak_bytes` gauge;
  /// tls() pools additionally publish their own high-water mark to
  /// `hsconas.workspace.peak_bytes.t<id>` so per-thread packing-buffer
  /// sizing is observable.
  std::size_t outstanding_floats() const { return outstanding_floats_; }

  /// High-water mark of outstanding_floats() over this pool's life.
  std::size_t peak_floats() const { return peak_floats_; }

  /// Resettable watermark window for per-operator attribution: the
  /// profiler (obs::OpScope) calls reset_scope_peak() when a profiled op
  /// opens and reads scope_peak_floats() when it closes, giving the op's
  /// own scratch high-water mark without disturbing the lifetime peak.
  void reset_scope_peak() { scope_peak_floats_ = outstanding_floats_; }
  std::size_t scope_peak_floats() const { return scope_peak_floats_; }

  /// Number of buffers currently parked in the free list.
  std::size_t pooled_buffers() const { return free_.size(); }

  /// Drop all pooled allocations (outstanding leases are unaffected).
  void release_memory();

 private:
  friend class Scratch;
  struct Block {
    float* data = nullptr;
    std::size_t capacity = 0;
  };

  static float* allocate(std::size_t n);
  static void deallocate(float* p);
  void give_back(float* data, std::size_t capacity);
  void note_lease(std::size_t capacity);

  std::vector<Block> free_;
  std::size_t outstanding_floats_ = 0;
  std::size_t peak_floats_ = 0;
  std::size_t scope_peak_floats_ = 0;
  /// Per-thread peak gauge, set by tls() only (null for ad-hoc pools).
  obs::Gauge* thread_peak_gauge_ = nullptr;
};

}  // namespace hsconas::tensor
