#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace hsconas::tensor {

const char* dtype_name(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return "f32";
    case DType::kI8:
      return "i8";
    case DType::kU8:
      return "u8";
  }
  return "?";
}

std::size_t dtype_bytes(DType dtype) {
  return dtype == DType::kF32 ? sizeof(float) : 1;
}

long shape_numel(std::span<const long> shape) {
  long n = 1;
  for (long d : shape) {
    if (d < 0) throw InvalidArgument("negative dimension in tensor shape");
    n *= d;
  }
  return n;
}

Tensor::Tensor(ShapeVec shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), 0.0f) {}

Tensor Tensor::full(ShapeVec shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::uniform(ShapeVec shape, float lo, float hi,
                       util::Rng& rng) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) {
    v = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::normal(ShapeVec shape, float mean, float stddev,
                      util::Rng& rng) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) {
    v = static_cast<float>(rng.normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::quantized(ShapeVec shape, DType dtype, QuantParams params) {
  if (dtype == DType::kF32) {
    throw InvalidArgument("Tensor::quantized: dtype must be 8-bit");
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.qdata_.assign(static_cast<std::size_t>(shape_numel(t.shape_)), 0);
  t.dtype_ = dtype;
  t.quant_ = params;
  return t;
}

std::int8_t* Tensor::i8_data() {
  HSCONAS_CHECK_MSG(dtype_ == DType::kI8, "Tensor::i8_data: dtype is not i8");
  return qdata_.data();
}

std::uint8_t* Tensor::u8_data() {
  HSCONAS_CHECK_MSG(dtype_ == DType::kU8, "Tensor::u8_data: dtype is not u8");
  // Unsigned view of the int8 storage (char-family pun, not decoding).
  // hsconas-lint-allow(serial-pointer-cast)
  return reinterpret_cast<std::uint8_t*>(qdata_.data());
}

long Tensor::dim(std::size_t i) const {
  HSCONAS_CHECK_MSG(i < shape_.size(), "Tensor::dim index out of range");
  return shape_[i];
}

float& Tensor::at(long i) {
  HSCONAS_CHECK(ndim() == 1 && i >= 0 && i < shape_[0]);
  return data_[static_cast<std::size_t>(i)];
}

float& Tensor::at(long i, long j) {
  HSCONAS_CHECK(ndim() == 2 && i >= 0 && i < shape_[0] && j >= 0 &&
                j < shape_[1]);
  return data_[static_cast<std::size_t>(i * shape_[1] + j)];
}

float& Tensor::at(long i, long j, long k) {
  HSCONAS_CHECK(ndim() == 3 && i >= 0 && i < shape_[0] && j >= 0 &&
                j < shape_[1] && k >= 0 && k < shape_[2]);
  return data_[static_cast<std::size_t>((i * shape_[1] + j) * shape_[2] + k)];
}

float& Tensor::at(long n, long c, long h, long w) {
  HSCONAS_CHECK(ndim() == 4 && n >= 0 && n < shape_[0] && c >= 0 &&
                c < shape_[1] && h >= 0 && h < shape_[2] && w >= 0 &&
                w < shape_[3]);
  return data_[static_cast<std::size_t>(
      ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
}

Tensor Tensor::reshaped(ShapeVec shape) const {
  if (shape_numel(shape) != numel()) {
    throw InvalidArgument("reshape: numel mismatch " + shape_str());
  }
  Tensor t = *this;
  t.shape_ = std::move(shape);
  return t;
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::check_same_shape(const Tensor& other, const char* op) const {
  if (shape_ != other.shape_) {
    throw InvalidArgument(std::string(op) + ": shape mismatch " +
                          shape_str() + " vs " + other.shape_str());
  }
}

void Tensor::add_(const Tensor& other) {
  check_same_shape(other, "add_");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::sub_(const Tensor& other) {
  check_same_shape(other, "sub_");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Tensor::mul_(float s) {
  for (float& v : data_) v *= s;
}

void Tensor::axpy_(float alpha, const Tensor& x) {
  check_same_shape(x, "axpy_");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * x.data_[i];
  }
}

void Tensor::hadamard_(const Tensor& other) {
  check_same_shape(other, "hadamard_");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

float Tensor::sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  return data_.empty() ? 0.0f
                       : sum() / static_cast<float>(data_.size());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::abs(v));
  return m;
}

float Tensor::l2_norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

bool Tensor::all_finite() const {
  for (float v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << ')';
  return os.str();
}

}  // namespace hsconas::tensor
