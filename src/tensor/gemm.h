#pragma once

#include <cstddef>

namespace hsconas::tensor {

/// Activation applied by a fused GEMM epilogue. The scalar formulas are
/// shared with nn/activation via epilogue_apply() below, so the fused
/// conv→bn→act path is bit-identical to the composed modules.
enum class EpilogueAct { kNone, kReLU, kHSwish };

/// Scalar epilogue activation. This is the single definition of the ReLU
/// and h-swish forward math: nn::ReLU / nn::HSwish forward and the fused
/// microkernel writeback all call it, so "fused vs composed" parity is a
/// property of the code, not of two formulas happening to agree.
inline float epilogue_apply(EpilogueAct act, float v) {
  switch (act) {
    case EpilogueAct::kReLU:
      return v > 0.0f ? v : 0.0f;
    case EpilogueAct::kHSwish: {
      float r6 = v + 3.0f;
      r6 = r6 < 0.0f ? 0.0f : (r6 > 6.0f ? 6.0f : r6);
      return v * r6 / 6.0f;
    }
    case EpilogueAct::kNone:
      break;
  }
  return v;
}

/// scale*v + shift with both roundings materialized. The epilogue TUs are
/// compiled with -march=native, where the compiler would contract this to
/// one FMA; module code (batchnorm, activation) built with baseline flags
/// rounds the multiply and the add separately. The barrier pins the
/// two-rounding form everywhere so fused-vs-composed parity is exact, and
/// costs nothing measurable on a memory-bound writeback.
inline float epilogue_affine(float scale, float v, float shift) {
  float scaled = scale * v;
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  asm("" : "+x"(scaled));  // opaque to the optimizer: no FMA contraction
#elif defined(__GNUC__) && defined(__aarch64__)
  asm("" : "+w"(scaled));
#endif
  return scaled + shift;
}

/// Per-output-row affine + activation fused into the GEMM C-writeback:
///   C[i, j] = act(scale[i] * acc[i, j] + shift[i])
/// where acc is the full alpha·A·B accumulation for that element. Row i is
/// the GEMM m axis — for a conv lowered as (out_channels × patches) it is
/// the output channel, which is exactly the axis bias and inference-mode
/// BatchNorm broadcast over. Null scale means 1, null shift means 0.
struct GemmEpilogue {
  const float* scale = nullptr;  ///< length m, or null for identity
  const float* shift = nullptr;  ///< length m, or null for zero
  EpilogueAct act = EpilogueAct::kNone;
};

/// C (m×n) = alpha * A (m×k) · B (k×n) + beta * C.
/// Row-major, contiguous. All variants share one packed, register-blocked
/// implementation: A and B blocks are copied into cache-aligned MR×k /
/// k×NR panels (transposing on the fly for the ᵀ variants), a branch-free
/// 6×16 microkernel accumulates in registers, and the M panel space is
/// distributed over the global thread pool when the problem is large
/// enough to amortize the dispatch. Packed B blocks are shared read-only
/// across workers; each worker packs its own A panels from its thread's
/// Workspace. The k-loop accumulation order is fixed and the task
/// decomposition is MR-aligned, so results are bit-identical at any
/// thread count. See docs/PERFORMANCE.md.
void gemm(std::size_t m, std::size_t n, std::size_t k, float alpha,
          const float* a, const float* b, float beta, float* c);

/// C (m×n) = alpha * Aᵀ (A is k×m) · B (k×n) + beta * C.
/// Used in the convolution backward pass for input-column gradients.
void gemm_at_b(std::size_t m, std::size_t n, std::size_t k, float alpha,
               const float* a, const float* b, float beta, float* c);

/// C (m×n) = alpha * A (m×k) · Bᵀ (B is n×k) + beta * C.
/// Used in the convolution backward pass for weight gradients.
void gemm_a_bt(std::size_t m, std::size_t n, std::size_t k, float alpha,
               const float* a, const float* b, float beta, float* c);

/// C (m×n) = ep(alpha * A (m×k) · B (k×n)): the beta == 0 product with the
/// per-row epilogue applied during the final K block's C-writeback, so
/// conv + bias + BatchNorm + activation is one pass over C instead of
/// four. Bit-identical to gemm(..., beta=0, ...) followed by an
/// elementwise act(scale[i]*c+shift[i]) sweep, at every thread count.
void gemm_fused(std::size_t m, std::size_t n, std::size_t k, float alpha,
                const float* a, const float* b, float* c,
                const GemmEpilogue& ep);

}  // namespace hsconas::tensor
