#pragma once

#include <cstddef>

namespace hsconas::tensor {

/// C (m×n) = alpha * A (m×k) · B (k×n) + beta * C.
/// Row-major, contiguous. All three variants share one packed,
/// register-blocked implementation: A and B blocks are copied into
/// cache-aligned MR×k / k×NR panels (transposing on the fly for the
/// ᵀ variants), a branch-free 6×16 microkernel accumulates in registers,
/// and independent C blocks are distributed over the global thread pool
/// when the problem is large enough to amortize the dispatch. The k-loop
/// accumulation order is fixed, so results are bit-identical at any
/// thread count. See docs/PERFORMANCE.md.
void gemm(std::size_t m, std::size_t n, std::size_t k, float alpha,
          const float* a, const float* b, float beta, float* c);

/// C (m×n) = alpha * Aᵀ (A is k×m) · B (k×n) + beta * C.
/// Used in the convolution backward pass for input-column gradients.
void gemm_at_b(std::size_t m, std::size_t n, std::size_t k, float alpha,
               const float* a, const float* b, float beta, float* c);

/// C (m×n) = alpha * A (m×k) · Bᵀ (B is n×k) + beta * C.
/// Used in the convolution backward pass for weight gradients.
void gemm_a_bt(std::size_t m, std::size_t n, std::size_t k, float alpha,
               const float* a, const float* b, float beta, float* c);

}  // namespace hsconas::tensor
