#pragma once

#include <cstddef>

namespace hsconas::tensor {

/// C (m×n) = alpha * A (m×k) · B (k×n) + beta * C.
/// Row-major, contiguous. Cache-blocked with a small register kernel and
/// parallelized over row panels via the global thread pool when m is large
/// enough to amortize the dispatch.
void gemm(std::size_t m, std::size_t n, std::size_t k, float alpha,
          const float* a, const float* b, float beta, float* c);

/// C (m×n) = alpha * Aᵀ (A is k×m) · B (k×n) + beta * C.
/// Used in the convolution backward pass for weight gradients.
void gemm_at_b(std::size_t m, std::size_t n, std::size_t k, float alpha,
               const float* a, const float* b, float beta, float* c);

/// C (m×n) = alpha * A (m×k) · Bᵀ (B is n×k) + beta * C.
/// Used in the convolution backward pass for input gradients.
void gemm_a_bt(std::size_t m, std::size_t n, std::size_t k, float alpha,
               const float* a, const float* b, float beta, float* c);

}  // namespace hsconas::tensor
