#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/thread_pool.h"

namespace hsconas::tensor {

namespace {

// Panel sizes chosen for L1/L2 friendliness on commodity x86; exact tuning
// is not critical at the network sizes used here.
constexpr std::size_t kBlockM = 64;
constexpr std::size_t kBlockN = 256;
constexpr std::size_t kBlockK = 256;

// Inner kernel: accumulate a (mb × n) strip of C from (mb × kb)·(kb × n).
// The j-loop is vectorizable by the compiler; kb stays in L1.
void kernel(std::size_t mb, std::size_t n, std::size_t kb, float alpha,
            const float* a, std::size_t lda, const float* b, std::size_t ldb,
            float* c, std::size_t ldc) {
  for (std::size_t i = 0; i < mb; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (std::size_t p = 0; p < kb; ++p) {
      const float av = alpha * arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * ldb;
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

void scale_c(std::size_t m, std::size_t n, float beta, float* c) {
  if (beta == 1.0f) return;
  const std::size_t total = m * n;
  if (beta == 0.0f) {
    std::memset(c, 0, total * sizeof(float));
  } else {
    for (std::size_t i = 0; i < total; ++i) c[i] *= beta;
  }
}

void gemm_rows(std::size_t row_begin, std::size_t row_end, std::size_t n,
               std::size_t k, float alpha, const float* a, const float* b,
               float* c) {
  for (std::size_t i0 = row_begin; i0 < row_end; i0 += kBlockM) {
    const std::size_t mb = std::min(kBlockM, row_end - i0);
    for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
      const std::size_t kb = std::min(kBlockK, k - p0);
      for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
        const std::size_t nb = std::min(kBlockN, n - j0);
        kernel(mb, nb, kb, alpha, a + i0 * k + p0, k, b + p0 * n + j0, n,
               c + i0 * n + j0, n);
      }
    }
  }
}

}  // namespace

void gemm(std::size_t m, std::size_t n, std::size_t k, float alpha,
          const float* a, const float* b, float beta, float* c) {
  scale_c(m, n, beta, c);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) return;

  // Parallelize across row panels only when the work amortizes dispatch.
  const std::size_t flops = 2 * m * n * k;
  auto& pool = util::ThreadPool::global();
  if (flops < (1u << 21) || pool.size() <= 1 || m < 2 * kBlockM) {
    gemm_rows(0, m, n, k, alpha, a, b, c);
    return;
  }
  const std::size_t panels = (m + kBlockM - 1) / kBlockM;
  pool.parallel_for(panels, [&](std::size_t p) {
    const std::size_t begin = p * kBlockM;
    const std::size_t end = std::min(begin + kBlockM, m);
    gemm_rows(begin, end, n, k, alpha, a, b, c);
  });
}

void gemm_at_b(std::size_t m, std::size_t n, std::size_t k, float alpha,
               const float* a, const float* b, float beta, float* c) {
  scale_c(m, n, beta, c);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) return;
  // C[i,j] += alpha * sum_p A[p,i] * B[p,j]; iterate p outer so both reads
  // stream row-wise.
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = alpha * arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_a_bt(std::size_t m, std::size_t n, std::size_t k, float alpha,
               const float* a, const float* b, float beta, float* c) {
  scale_c(m, n, beta, c);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) return;
  // C[i,j] += alpha * dot(A[i,:], B[j,:]) — both rows contiguous.
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += alpha * acc;
    }
  }
}

}  // namespace hsconas::tensor
