#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"
#include "tensor/workspace.h"
#include "util/thread_pool.h"

namespace hsconas::tensor {

namespace {

/// Kernel-entry accounting: one relaxed counter bump per public gemm call
/// (never per tile/chunk), so the observability cost is invisible next to
/// the O(mnk) work.
void count_gemm_entry(obs::Counter& calls, std::size_t m, std::size_t n,
                      std::size_t k) {
  static obs::Counter& flops = obs::counter("hsconas.gemm.flops");
  calls.add();
  flops.add(static_cast<std::uint64_t>(2) * m * n * k);
}

}  // namespace

namespace {

#if defined(__GNUC__) || defined(__clang__)
#define HSCONAS_RESTRICT __restrict__
#else
#define HSCONAS_RESTRICT
#endif

// Register tile: MR×NR accumulators live in registers across the whole k
// loop (6×16 floats = 6 AVX-512 / 12 AVX2 vectors), so the kernel performs
// one A broadcast + one B vector load per MR×NR FMAs instead of the
// load/store-per-FMA pattern of a naive triple loop.
constexpr std::size_t kMR = 6;
constexpr std::size_t kNR = 16;

// Cache blocking: an A block (kMC×kKC) plus the B panel the microkernel
// streams (kKC×kNR) stay resident while a kMC×kNC block of C is updated.
constexpr std::size_t kMC = 96;   // 16 MR-panels
constexpr std::size_t kKC = 240;
constexpr std::size_t kNC = 512;  // 32 NR-panels

// Problems below this many FLOPs skip packing entirely — the scratch lease
// and panel copies would dominate.
constexpr std::size_t kPackThresholdFlops = 1u << 14;
// Problems below this many FLOPs are not worth a thread-pool dispatch.
constexpr std::size_t kParallelThresholdFlops = 1u << 21;

constexpr std::size_t round_up(std::size_t x, std::size_t to) {
  return (x + to - 1) / to * to;
}

void scale_c(std::size_t m, std::size_t n, float beta, float* c) {
  if (beta == 1.0f) return;
  const std::size_t total = m * n;
  if (beta == 0.0f) {
    std::memset(c, 0, total * sizeof(float));
  } else {
    for (std::size_t i = 0; i < total; ++i) c[i] *= beta;
  }
}

/// Pack the (mc×kc) block of A starting at logical (ic, pc) into MR-row
/// panels: panel ip holds kc runs of MR column-adjacent values, zero-padded
/// past mc, with alpha folded in. `trans` means A is stored k×m and the
/// logical matrix is its transpose (the gemm_at_b layout).
void pack_a_block(const float* a, std::size_t lda, bool trans, std::size_t ic,
                  std::size_t pc, std::size_t mc, std::size_t kc, float alpha,
                  float* HSCONAS_RESTRICT ap) {
  for (std::size_t ip = 0; ip < mc; ip += kMR) {
    const std::size_t mr = std::min(kMR, mc - ip);
    for (std::size_t p = 0; p < kc; ++p) {
      if (trans) {
        const float* src = a + (pc + p) * lda + ic + ip;
        for (std::size_t i = 0; i < mr; ++i) ap[i] = alpha * src[i];
      } else {
        const float* src = a + (ic + ip) * lda + pc + p;
        for (std::size_t i = 0; i < mr; ++i) ap[i] = alpha * src[i * lda];
      }
      for (std::size_t i = mr; i < kMR; ++i) ap[i] = 0.0f;
      ap += kMR;
    }
  }
}

/// Pack the (kc×nc) block of B starting at logical (pc, jc) into NR-column
/// panels: panel jp holds kc runs of NR row-adjacent values, zero-padded
/// past nc. `trans` means B is stored n×k and the logical matrix is its
/// transpose (the gemm_a_bt layout).
void pack_b_block(const float* b, std::size_t ldb, bool trans, std::size_t pc,
                  std::size_t jc, std::size_t kc, std::size_t nc,
                  float* HSCONAS_RESTRICT bp) {
  for (std::size_t jp = 0; jp < nc; jp += kNR) {
    const std::size_t nr = std::min(kNR, nc - jp);
    if (!trans) {
      for (std::size_t p = 0; p < kc; ++p) {
        const float* src = b + (pc + p) * ldb + jc + jp;
        for (std::size_t j = 0; j < nr; ++j) bp[j] = src[j];
        for (std::size_t j = nr; j < kNR; ++j) bp[j] = 0.0f;
        bp += kNR;
      }
    } else {
      // Transpose during packing: column j of the logical B is row
      // (jc+jp+j) of the stored matrix.
      for (std::size_t p = 0; p < kc; ++p) {
        for (std::size_t j = 0; j < kNR; ++j) bp[j] = 0.0f;
        bp += kNR;
      }
      bp -= kc * kNR;
      for (std::size_t j = 0; j < nr; ++j) {
        const float* src = b + (jc + jp + j) * ldb + pc;
        for (std::size_t p = 0; p < kc; ++p) bp[p * kNR + j] = src[p];
      }
      bp += kc * kNR;
    }
  }
}

/// C_tile (mr×nr) += Ap_panel (MR×kc) · Bp_panel (kc×NR).
///
/// The accumulator tile is kMR vectors of kNR floats held in registers for
/// the whole k loop; each k step is one B vector load plus kMR
/// broadcast-FMAs, with no branches and no C traffic. GNU vector
/// extensions pin the vector axis to the NR dimension — left to its own
/// devices the auto-vectorizer picks the (wrong) MR axis and drowns the
/// FMAs in shuffles. On AVX-512 each row is one zmm; on AVX2 the compiler
/// splits rows into two ymm halves.
#if defined(__GNUC__) || defined(__clang__)
typedef float VecNR __attribute__((vector_size(kNR * sizeof(float))));

void micro_kernel(std::size_t kc, const float* HSCONAS_RESTRICT ap,
                  const float* HSCONAS_RESTRICT bp, float* HSCONAS_RESTRICT c,
                  std::size_t ldc, std::size_t mr, std::size_t nr) {
  VecNR acc[kMR] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    VecNR bv;
    // Unaligned vector load, not deserialization: memcpy is the only
    // UB-free float→VecNR pun and compiles to a single vmovups.
    // hsconas-lint-allow(serial-raw-memcpy)
    std::memcpy(&bv, bp + p * kNR, sizeof(bv));
    const float* HSCONAS_RESTRICT arow = ap + p * kMR;
    for (std::size_t i = 0; i < kMR; ++i) acc[i] += arow[i] * bv;
  }
  if (mr == kMR && nr == kNR) {
    for (std::size_t i = 0; i < kMR; ++i) {
      float* crow = c + i * ldc;
      VecNR cv;
      // hsconas-lint-allow(serial-raw-memcpy) — vector load/store puns.
      std::memcpy(&cv, crow, sizeof(cv));
      cv += acc[i];
      // hsconas-lint-allow(serial-raw-memcpy)
      std::memcpy(crow, &cv, sizeof(cv));
    }
  } else {
    for (std::size_t i = 0; i < mr; ++i) {
      float* crow = c + i * ldc;
      for (std::size_t j = 0; j < nr; ++j) crow[j] += acc[i][j];
    }
  }
}
#else
void micro_kernel(std::size_t kc, const float* HSCONAS_RESTRICT ap,
                  const float* HSCONAS_RESTRICT bp, float* HSCONAS_RESTRICT c,
                  std::size_t ldc, std::size_t mr, std::size_t nr) {
  float acc[kMR][kNR] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* HSCONAS_RESTRICT arow = ap + p * kMR;
    const float* HSCONAS_RESTRICT brow = bp + p * kNR;
    for (std::size_t i = 0; i < kMR; ++i) {
      for (std::size_t j = 0; j < kNR; ++j) {
        acc[i][j] += arow[i] * brow[j];
      }
    }
  }
  for (std::size_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    for (std::size_t j = 0; j < nr; ++j) crow[j] += acc[i][j];
  }
}
#endif

struct GemmArgs {
  std::size_t m, n, k;
  float alpha;
  const float* a;
  std::size_t lda;
  bool atrans;
  const float* b;
  std::size_t ldb;
  bool btrans;
  float* c;  // ldc == n
};

/// Compute one (mc×nc) block of C at (ic, jc): serial k loop (fixed
/// accumulation order keeps results bit-identical at any thread count),
/// packing A and B blocks into this thread's workspace.
void run_block(const GemmArgs& g, std::size_t ic, std::size_t jc) {
  const std::size_t mc = std::min(kMC, g.m - ic);
  const std::size_t nc = std::min(kNC, g.n - jc);
  Workspace& ws = Workspace::tls();
  Scratch ap = ws.take(round_up(mc, kMR) * kKC);
  Scratch bp = ws.take(kKC * round_up(nc, kNR));
  for (std::size_t pc = 0; pc < g.k; pc += kKC) {
    const std::size_t kc = std::min(kKC, g.k - pc);
    pack_a_block(g.a, g.lda, g.atrans, ic, pc, mc, kc, g.alpha, ap.data());
    pack_b_block(g.b, g.ldb, g.btrans, pc, jc, kc, nc, bp.data());
    for (std::size_t jp = 0; jp < nc; jp += kNR) {
      const std::size_t nr = std::min(kNR, nc - jp);
      const float* bpanel = bp.data() + (jp / kNR) * kc * kNR;
      for (std::size_t ip = 0; ip < mc; ip += kMR) {
        const std::size_t mr = std::min(kMR, mc - ip);
        micro_kernel(kc, ap.data() + (ip / kMR) * kc * kMR, bpanel,
                     g.c + (ic + ip) * g.n + jc + jp, g.n, mr, nr);
      }
    }
  }
}

/// Unpacked fallback for problems too small to amortize panel copies.
void gemm_small(const GemmArgs& g) {
  for (std::size_t i = 0; i < g.m; ++i) {
    float* HSCONAS_RESTRICT crow = g.c + i * g.n;
    for (std::size_t p = 0; p < g.k; ++p) {
      const float av =
          g.alpha * (g.atrans ? g.a[p * g.lda + i] : g.a[i * g.lda + p]);
      // Worth a branch at these sizes: conv column matrices are full of
      // im2col padding zeros, and skipping one saves a whole j sweep.
      if (av == 0.0f) continue;
      if (!g.btrans) {
        const float* HSCONAS_RESTRICT brow = g.b + p * g.ldb;
        for (std::size_t j = 0; j < g.n; ++j) crow[j] += av * brow[j];
      } else {
        for (std::size_t j = 0; j < g.n; ++j) crow[j] += av * g.b[j * g.ldb + p];
      }
    }
  }
}

void gemm_dispatch(const GemmArgs& g, float beta) {
  scale_c(g.m, g.n, beta, g.c);
  if (g.m == 0 || g.n == 0 || g.k == 0 || g.alpha == 0.0f) return;

  // Degenerate row counts waste most of the MR-tall register tile (a
  // depthwise conv's per-group GEMM has m == 1), so they also take the
  // unpacked path, whose j-loop still vectorizes.
  const std::size_t flops = 2 * g.m * g.n * g.k;
  if (flops < kPackThresholdFlops || g.m < kMR / 2) {
    gemm_small(g);
    return;
  }

  const std::size_t mblocks = (g.m + kMC - 1) / kMC;
  const std::size_t nblocks = (g.n + kNC - 1) / kNC;
  const std::size_t blocks = mblocks * nblocks;
  auto& pool = util::ThreadPool::global();
  if (blocks == 1 || pool.size() <= 1 || flops < kParallelThresholdFlops) {
    for (std::size_t t = 0; t < blocks; ++t) {
      run_block(g, (t / nblocks) * kMC, (t % nblocks) * kNC);
    }
    return;
  }
  // Disjoint C blocks per task and a serial k loop inside each, so the
  // result is independent of how tasks land on threads.
  pool.parallel_for(blocks, [&](std::size_t t) {
    run_block(g, (t / nblocks) * kMC, (t % nblocks) * kNC);
  });
}

}  // namespace

void gemm(std::size_t m, std::size_t n, std::size_t k, float alpha,
          const float* a, const float* b, float beta, float* c) {
  static obs::Counter& calls = obs::counter("hsconas.gemm.calls");
  count_gemm_entry(calls, m, n, k);
  gemm_dispatch({m, n, k, alpha, a, /*lda=*/k, /*atrans=*/false, b,
                 /*ldb=*/n, /*btrans=*/false, c},
                beta);
}

void gemm_at_b(std::size_t m, std::size_t n, std::size_t k, float alpha,
               const float* a, const float* b, float beta, float* c) {
  static obs::Counter& calls = obs::counter("hsconas.gemm.calls_at_b");
  count_gemm_entry(calls, m, n, k);
  gemm_dispatch({m, n, k, alpha, a, /*lda=*/m, /*atrans=*/true, b,
                 /*ldb=*/n, /*btrans=*/false, c},
                beta);
}

void gemm_a_bt(std::size_t m, std::size_t n, std::size_t k, float alpha,
               const float* a, const float* b, float beta, float* c) {
  static obs::Counter& calls = obs::counter("hsconas.gemm.calls_a_bt");
  count_gemm_entry(calls, m, n, k);
  gemm_dispatch({m, n, k, alpha, a, /*lda=*/k, /*atrans=*/false, b,
                 /*ldb=*/k, /*btrans=*/true, c},
                beta);
}

}  // namespace hsconas::tensor
