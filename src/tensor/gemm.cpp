#include "tensor/gemm.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>

#include "obs/metrics.h"
#include "obs/timing.h"
#include "tensor/workspace.h"
#include "util/thread_pool.h"

namespace hsconas::tensor {

namespace {

/// Kernel-entry accounting: one relaxed counter bump per public gemm call
/// (never per tile/chunk), so the observability cost is invisible next to
/// the O(mnk) work.
void count_gemm_entry(obs::Counter& calls, std::size_t m, std::size_t n,
                      std::size_t k) {
  static obs::Counter& flops = obs::counter("hsconas.gemm.flops");
  calls.add();
  flops.add(static_cast<std::uint64_t>(2) * m * n * k);
}

/// Per-thread count of packed A panels (`hsconas.gemm.a_panels.t<id>`).
/// One gauge-free relaxed add per macro-task, keyed by a stable per-thread
/// ordinal, so packing imbalance across pool workers is observable.
obs::Counter& a_panel_counter() {
  thread_local obs::Counter& c = obs::counter(
      "hsconas.gemm.a_panels.t" + std::to_string(obs::thread_ordinal()));
  return c;
}

}  // namespace

namespace {

#if defined(__GNUC__) || defined(__clang__)
#define HSCONAS_RESTRICT __restrict__
#else
#define HSCONAS_RESTRICT
#endif

// Register tile: MR×NR accumulators live in registers across the whole k
// loop (6×16 floats = 6 AVX-512 / 12 AVX2 vectors), so the kernel performs
// one A broadcast + one B vector load per MR×NR FMAs instead of the
// load/store-per-FMA pattern of a naive triple loop.
constexpr std::size_t kMR = 6;
constexpr std::size_t kNR = 16;

// Cache blocking: the shared packed B block (kKC×kNC) stays L2/L3-resident
// for a whole K step while every M chunk streams over it; each worker's
// private packed A chunk (kMChunk×kKC ≈ 11 KB) stays in L1.
constexpr std::size_t kKC = 240;
constexpr std::size_t kNC = 512;  // 32 NR-panels

// Parallel task granularity along M: two register tiles tall. Chunk
// boundaries are MR-aligned, so the set of packed A panels (and therefore
// every accumulated value) is independent of how chunks land on threads.
constexpr std::size_t kMChunk = 2 * kMR;

// Problems below this many FLOPs skip packing entirely — the scratch lease
// and panel copies would dominate.
constexpr std::size_t kPackThresholdFlops = 1u << 14;
// Problems below this many FLOPs are not worth a thread-pool dispatch.
constexpr std::size_t kParallelThresholdFlops = 1u << 21;

constexpr std::size_t round_up(std::size_t x, std::size_t to) {
  return (x + to - 1) / to * to;
}

void scale_c(std::size_t m, std::size_t n, float beta, float* c) {
  if (beta == 1.0f) return;
  const std::size_t total = m * n;
  if (beta == 0.0f) {
    std::memset(c, 0, total * sizeof(float));
  } else {
    for (std::size_t i = 0; i < total; ++i) c[i] *= beta;
  }
}

/// Pack the (mc×kc) block of A starting at logical (ic, pc) into MR-row
/// panels: panel ip holds kc runs of MR column-adjacent values, zero-padded
/// past mc, with alpha folded in. `trans` means A is stored k×m and the
/// logical matrix is its transpose (the gemm_at_b layout).
void pack_a_block(const float* a, std::size_t lda, bool trans, std::size_t ic,
                  std::size_t pc, std::size_t mc, std::size_t kc, float alpha,
                  float* HSCONAS_RESTRICT ap) {
  for (std::size_t ip = 0; ip < mc; ip += kMR) {
    const std::size_t mr = std::min(kMR, mc - ip);
    for (std::size_t p = 0; p < kc; ++p) {
      if (trans) {
        const float* src = a + (pc + p) * lda + ic + ip;
        for (std::size_t i = 0; i < mr; ++i) ap[i] = alpha * src[i];
      } else {
        const float* src = a + (ic + ip) * lda + pc + p;
        for (std::size_t i = 0; i < mr; ++i) ap[i] = alpha * src[i * lda];
      }
      for (std::size_t i = mr; i < kMR; ++i) ap[i] = 0.0f;
      ap += kMR;
    }
  }
}

/// Pack one kc×NR panel of B (columns [jc+jp, jc+jp+nr)) starting at row
/// pc into `bp`: kc runs of NR row-adjacent values, zero-padded past nr.
/// `trans` means B is stored n×k and the logical matrix is its transpose
/// (the gemm_a_bt layout). Panels are independent, so a K block's panels
/// can be packed concurrently into disjoint slices of the shared buffer.
void pack_b_panel(const float* b, std::size_t ldb, bool trans, std::size_t pc,
                  std::size_t jc, std::size_t kc, std::size_t jp,
                  std::size_t nr, float* HSCONAS_RESTRICT bp) {
  if (!trans) {
    for (std::size_t p = 0; p < kc; ++p) {
      const float* src = b + (pc + p) * ldb + jc + jp;
      for (std::size_t j = 0; j < nr; ++j) bp[j] = src[j];
      for (std::size_t j = nr; j < kNR; ++j) bp[j] = 0.0f;
      bp += kNR;
    }
  } else {
    // Transpose during packing: column j of the logical B is row
    // (jc+jp+j) of the stored matrix.
    std::memset(bp, 0, kc * kNR * sizeof(float));
    for (std::size_t j = 0; j < nr; ++j) {
      const float* src = b + (jc + jp + j) * ldb + pc;
      for (std::size_t p = 0; p < kc; ++p) bp[p * kNR + j] = src[p];
    }
  }
}

/// C_tile (mr×nr) += Ap_panel (MR×kc) · Bp_panel (kc×NR), with the fused
/// per-row epilogue applied during the store when `ep` is non-null (the
/// dispatch passes it only on the final K block, when the tile's
/// accumulation is complete). `row0` is the tile's absolute C row, the
/// index into the epilogue's scale/shift vectors.
///
/// The accumulator tile is kMR vectors of kNR floats held in registers for
/// the whole k loop; each k step is one B vector load plus kMR
/// broadcast-FMAs, with no branches and no C traffic. GNU vector
/// extensions pin the vector axis to the NR dimension — left to its own
/// devices the auto-vectorizer picks the (wrong) MR axis and drowns the
/// FMAs in shuffles. On AVX-512 each row is one zmm; on AVX2 the compiler
/// splits rows into two ymm halves.
#if defined(__GNUC__) || defined(__clang__)
typedef float VecNR __attribute__((vector_size(kNR * sizeof(float))));

void micro_kernel(std::size_t kc, const float* HSCONAS_RESTRICT ap,
                  const float* HSCONAS_RESTRICT bp, float* HSCONAS_RESTRICT c,
                  std::size_t ldc, std::size_t mr, std::size_t nr,
                  const GemmEpilogue* ep, std::size_t row0) {
  VecNR acc[kMR] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    VecNR bv;
    // Unaligned vector load, not deserialization: memcpy is the only
    // UB-free float→VecNR pun and compiles to a single vmovups.
    // hsconas-lint-allow(serial-raw-memcpy)
    std::memcpy(&bv, bp + p * kNR, sizeof(bv));
    const float* HSCONAS_RESTRICT arow = ap + p * kMR;
    for (std::size_t i = 0; i < kMR; ++i) acc[i] += arow[i] * bv;
  }
  if (ep != nullptr) {
    // Fused writeback: finish the accumulation, then apply the per-row
    // affine + activation while the tile is still register/L1 hot — the
    // epilogue costs zero extra passes over C. Scalar lane math keeps it
    // the same formula as epilogue_apply at every tile shape.
    for (std::size_t i = 0; i < mr; ++i) {
      const float s = ep->scale != nullptr ? ep->scale[row0 + i] : 1.0f;
      const float t = ep->shift != nullptr ? ep->shift[row0 + i] : 0.0f;
      float* crow = c + i * ldc;
      for (std::size_t j = 0; j < nr; ++j) {
        crow[j] = epilogue_apply(
            ep->act, epilogue_affine(s, crow[j] + acc[i][j], t));
      }
    }
    return;
  }
  if (mr == kMR && nr == kNR) {
    for (std::size_t i = 0; i < kMR; ++i) {
      float* crow = c + i * ldc;
      VecNR cv;
      // hsconas-lint-allow(serial-raw-memcpy) — vector load/store puns.
      std::memcpy(&cv, crow, sizeof(cv));
      cv += acc[i];
      // hsconas-lint-allow(serial-raw-memcpy)
      std::memcpy(crow, &cv, sizeof(cv));
    }
  } else {
    for (std::size_t i = 0; i < mr; ++i) {
      float* crow = c + i * ldc;
      for (std::size_t j = 0; j < nr; ++j) crow[j] += acc[i][j];
    }
  }
}
#else
void micro_kernel(std::size_t kc, const float* HSCONAS_RESTRICT ap,
                  const float* HSCONAS_RESTRICT bp, float* HSCONAS_RESTRICT c,
                  std::size_t ldc, std::size_t mr, std::size_t nr,
                  const GemmEpilogue* ep, std::size_t row0) {
  float acc[kMR][kNR] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* HSCONAS_RESTRICT arow = ap + p * kMR;
    const float* HSCONAS_RESTRICT brow = bp + p * kNR;
    for (std::size_t i = 0; i < kMR; ++i) {
      for (std::size_t j = 0; j < kNR; ++j) {
        acc[i][j] += arow[i] * brow[j];
      }
    }
  }
  if (ep != nullptr) {
    for (std::size_t i = 0; i < mr; ++i) {
      const float s = ep->scale != nullptr ? ep->scale[row0 + i] : 1.0f;
      const float t = ep->shift != nullptr ? ep->shift[row0 + i] : 0.0f;
      float* crow = c + i * ldc;
      for (std::size_t j = 0; j < nr; ++j) {
        crow[j] = epilogue_apply(
            ep->act, epilogue_affine(s, crow[j] + acc[i][j], t));
      }
    }
    return;
  }
  for (std::size_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    for (std::size_t j = 0; j < nr; ++j) crow[j] += acc[i][j];
  }
}
#endif

struct GemmArgs {
  std::size_t m, n, k;
  float alpha;
  const float* a;
  std::size_t lda;
  bool atrans;
  const float* b;
  std::size_t ldb;
  bool btrans;
  float* c;                        // ldc == n
  const GemmEpilogue* ep = nullptr;  // null: plain accumulate
};

/// Compute the kMChunk-row M chunk starting at row `i0` against the shared
/// packed B block `bp` (kc×nc panels at logical column jc): pack this
/// chunk's A panels into the calling thread's workspace, then run the
/// microkernel over every (MR, NR) tile. `last_k` selects the fused
/// epilogue writeback on the final K block. Each C element is written by
/// exactly one chunk per K step and the chunk grid is MR-aligned, so the
/// computed values are independent of which thread runs which chunk.
void run_m_chunk(const GemmArgs& g, std::size_t i0, std::size_t jc,
                 std::size_t nc, std::size_t pc, std::size_t kc,
                 const float* HSCONAS_RESTRICT bp, bool last_k) {
  const std::size_t mc = std::min(kMChunk, g.m - i0);
  Workspace& ws = Workspace::tls();
  Scratch ap = ws.take(round_up(mc, kMR) * kc);
  pack_a_block(g.a, g.lda, g.atrans, i0, pc, mc, kc, g.alpha, ap.data());
  a_panel_counter().add((mc + kMR - 1) / kMR);
  const GemmEpilogue* ep = last_k ? g.ep : nullptr;
  for (std::size_t jp = 0; jp < nc; jp += kNR) {
    const std::size_t nr = std::min(kNR, nc - jp);
    const float* bpanel = bp + (jp / kNR) * kc * kNR;
    for (std::size_t ip = 0; ip < mc; ip += kMR) {
      const std::size_t mr = std::min(kMR, mc - ip);
      micro_kernel(kc, ap.data() + (ip / kMR) * kc * kMR, bpanel,
                   g.c + (i0 + ip) * g.n + jc + jp, g.n, mr, nr, ep,
                   i0 + ip);
    }
  }
}

/// Unpacked fallback for problems too small to amortize panel copies.
void gemm_small(const GemmArgs& g) {
  for (std::size_t i = 0; i < g.m; ++i) {
    float* HSCONAS_RESTRICT crow = g.c + i * g.n;
    for (std::size_t p = 0; p < g.k; ++p) {
      const float av =
          g.alpha * (g.atrans ? g.a[p * g.lda + i] : g.a[i * g.lda + p]);
      // Worth a branch at these sizes: conv column matrices are full of
      // im2col padding zeros, and skipping one saves a whole j sweep.
      if (av == 0.0f) continue;
      if (!g.btrans) {
        const float* HSCONAS_RESTRICT brow = g.b + p * g.ldb;
        for (std::size_t j = 0; j < g.n; ++j) crow[j] += av * brow[j];
      } else {
        for (std::size_t j = 0; j < g.n; ++j) crow[j] += av * g.b[j * g.ldb + p];
      }
    }
    if (g.ep != nullptr) {
      const float s = g.ep->scale != nullptr ? g.ep->scale[i] : 1.0f;
      const float t = g.ep->shift != nullptr ? g.ep->shift[i] : 0.0f;
      for (std::size_t j = 0; j < g.n; ++j) {
        crow[j] = epilogue_apply(g.ep->act, epilogue_affine(s, crow[j], t));
      }
    }
  }
}

/// Macro-kernel: for each (NC, KC) block, pack B once into a shared
/// read-only buffer (panels packed concurrently — they are disjoint — and
/// the parallel_for join publishes them to the compute tasks), then
/// distribute MR-aligned M chunks over the pool. Workers pack their own A
/// panels from their thread-local Workspace; C rows are partitioned by
/// chunk, so no two threads ever write the same C element and no atomics
/// touch C. The K loop stays serial — fixed accumulation order is the
/// bit-determinism guarantee (docs/PERFORMANCE.md).
void gemm_blocked(const GemmArgs& g, bool parallel) {
  auto& pool = util::ThreadPool::global();
  const std::size_t mchunks = (g.m + kMChunk - 1) / kMChunk;
  std::uint64_t busy_ns = 0;
  std::uint64_t wall_ns = 0;
  Workspace& ws = Workspace::tls();
  for (std::size_t jc = 0; jc < g.n; jc += kNC) {
    const std::size_t nc = std::min(kNC, g.n - jc);
    const std::size_t npanels = (nc + kNR - 1) / kNR;
    Scratch bp = ws.take(npanels * kKC * kNR);
    for (std::size_t pc = 0; pc < g.k; pc += kKC) {
      const std::size_t kc = std::min(kKC, g.k - pc);
      const bool last_k = pc + kc == g.k;
      auto pack_panel = [&](std::size_t t) {
        pack_b_panel(g.b, g.ldb, g.btrans, pc, jc, kc, t * kNR,
                     std::min(kNR, nc - t * kNR), bp.data() + t * kc * kNR);
      };
      auto run_chunk = [&](std::size_t t) {
        run_m_chunk(g, t * kMChunk, jc, nc, pc, kc, bp.data(), last_k);
      };
      if (!parallel) {
        for (std::size_t t = 0; t < npanels; ++t) pack_panel(t);
        for (std::size_t t = 0; t < mchunks; ++t) run_chunk(t);
        continue;
      }
      pool.parallel_for(npanels, pack_panel);
      // Parallel-efficiency accounting: per-chunk busy time summed with a
      // relaxed atomic vs the section's wall time. Timing never feeds back
      // into the computation, so determinism is untouched.
      std::atomic<std::uint64_t> busy{0};
      const std::uint64_t w0 = obs::monotonic_ns();
      pool.parallel_for(mchunks, [&](std::size_t t) {
        const std::uint64_t t0 = obs::monotonic_ns();
        run_chunk(t);
        busy.fetch_add(obs::monotonic_ns() - t0, std::memory_order_relaxed);
      });
      wall_ns += obs::monotonic_ns() - w0;
      busy_ns += busy.load(std::memory_order_relaxed);
    }
  }
  if (parallel && wall_ns > 0) {
    // busy/(wall·threads): 1.0 = every thread computing the whole time.
    static obs::Gauge& eff = obs::gauge("hsconas.gemm.parallel_efficiency");
    eff.set(static_cast<double>(busy_ns) /
            (static_cast<double>(wall_ns) *
             static_cast<double>(std::max<std::size_t>(1, pool.size()))));
  }
}

void gemm_dispatch(const GemmArgs& g, float beta) {
  scale_c(g.m, g.n, beta, g.c);
  if (g.m == 0 || g.n == 0) return;
  if (g.k == 0 || g.alpha == 0.0f) {
    if (g.ep != nullptr) {
      // The product is identically zero, but the epilogue still applies:
      // C = act(shift) row-wise over the beta-scaled (here: zeroed) C.
      for (std::size_t i = 0; i < g.m; ++i) {
        const float s = g.ep->scale != nullptr ? g.ep->scale[i] : 1.0f;
        const float t = g.ep->shift != nullptr ? g.ep->shift[i] : 0.0f;
        float* crow = g.c + i * g.n;
        for (std::size_t j = 0; j < g.n; ++j) {
          crow[j] = epilogue_apply(g.ep->act, epilogue_affine(s, crow[j], t));
        }
      }
    }
    return;
  }

  // Degenerate row counts waste most of the MR-tall register tile (a
  // depthwise conv's per-group GEMM has m == 1), so they also take the
  // unpacked path, whose j-loop still vectorizes.
  const std::size_t flops = 2 * g.m * g.n * g.k;
  if (flops < kPackThresholdFlops || g.m < kMR / 2) {
    gemm_small(g);
    return;
  }
  auto& pool = util::ThreadPool::global();
  const bool parallel = pool.size() > 1 && flops >= kParallelThresholdFlops;
  gemm_blocked(g, parallel);
}

}  // namespace

void gemm(std::size_t m, std::size_t n, std::size_t k, float alpha,
          const float* a, const float* b, float beta, float* c) {
  static obs::Counter& calls = obs::counter("hsconas.gemm.calls");
  count_gemm_entry(calls, m, n, k);
  gemm_dispatch({m, n, k, alpha, a, /*lda=*/k, /*atrans=*/false, b,
                 /*ldb=*/n, /*btrans=*/false, c},
                beta);
}

void gemm_at_b(std::size_t m, std::size_t n, std::size_t k, float alpha,
               const float* a, const float* b, float beta, float* c) {
  static obs::Counter& calls = obs::counter("hsconas.gemm.calls_at_b");
  count_gemm_entry(calls, m, n, k);
  gemm_dispatch({m, n, k, alpha, a, /*lda=*/m, /*atrans=*/true, b,
                 /*ldb=*/n, /*btrans=*/false, c},
                beta);
}

void gemm_a_bt(std::size_t m, std::size_t n, std::size_t k, float alpha,
               const float* a, const float* b, float beta, float* c) {
  static obs::Counter& calls = obs::counter("hsconas.gemm.calls_a_bt");
  count_gemm_entry(calls, m, n, k);
  gemm_dispatch({m, n, k, alpha, a, /*lda=*/k, /*atrans=*/false, b,
                 /*ldb=*/k, /*btrans=*/true, c},
                beta);
}

void gemm_fused(std::size_t m, std::size_t n, std::size_t k, float alpha,
                const float* a, const float* b, float* c,
                const GemmEpilogue& ep) {
  static obs::Counter& calls = obs::counter("hsconas.gemm.calls_fused");
  count_gemm_entry(calls, m, n, k);
  gemm_dispatch({m, n, k, alpha, a, /*lda=*/k, /*atrans=*/false, b,
                 /*ldb=*/n, /*btrans=*/false, c, &ep},
                /*beta=*/0.0f);
}

}  // namespace hsconas::tensor
