#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hsconas::hwsim {

/// Numeric format an operator executes in. The dtype scales the activation
/// and weight traffic (4 bytes vs 1) and selects the device's int8 compute
/// throughput (DeviceProfile::int8_speedup) — the two effects that make a
/// quantized network genuinely faster on hardware with a narrow datapath.
enum class DataType {
  kF32,  ///< 32-bit float (the classic path)
  kI8,   ///< 8-bit integer (post-training quantized inference)
};

const char* data_type_name(DataType dtype);

/// Bytes per element of `dtype`.
double data_type_bytes(DataType dtype);

/// Primitive operator kinds the device simulator prices. Composite NAS
/// operators (choice blocks) lower to sequences of these.
enum class OpKind {
  kConv,           ///< dense or grouped convolution
  kDepthwiseConv,  ///< groups == channels (separate: very different AI)
  kLinear,         ///< fully connected
  kPool,           ///< max/avg pooling (memory bound)
  kElementwise,    ///< ReLU / add / BN-inference (memory bound)
  kShuffle,        ///< channel shuffle / split / concat (pure data movement)
};

const char* op_kind_name(OpKind kind);

/// Geometry of one primitive operator instance, per sample (batch applied by
/// the simulator). The same descriptor feeds the FLOPs/params counters and
/// the latency simulator, so every consumer prices exactly the same network.
struct OpDescriptor {
  OpKind kind = OpKind::kConv;
  long in_channels = 0;
  long out_channels = 0;
  long in_h = 0;
  long in_w = 0;
  long kernel = 1;
  long stride = 1;
  long groups = 1;
  long pad = -1;  ///< -1 = same-padding (kernel/2); >= 0 explicit
  DataType dtype = DataType::kF32;

  long out_h() const;
  long out_w() const;

  long effective_pad() const { return pad >= 0 ? pad : kernel / 2; }

  /// Multiply-accumulates per sample.
  double macs() const;
  /// Trainable parameter count (conv/linear weights; 0 for data movement).
  double params() const;
  /// Activation bytes read per sample (scaled by dtype width).
  double input_bytes() const;
  /// Activation bytes written per sample (scaled by dtype width).
  double output_bytes() const;
  /// Weight bytes touched (scaled by dtype width).
  double weight_bytes() const;

  std::string to_string() const;

  // -- convenience constructors --------------------------------------------
  static OpDescriptor conv(long in_ch, long out_ch, long h, long w,
                           long kernel, long stride, long groups = 1);
  static OpDescriptor depthwise(long channels, long h, long w, long kernel,
                                long stride);
  static OpDescriptor linear(long in_features, long out_features);
  static OpDescriptor pool(long channels, long h, long w, long kernel,
                           long stride);
  static OpDescriptor elementwise(long channels, long h, long w);
  static OpDescriptor shuffle(long channels, long h, long w);
};

/// One network "layer" in the sense of the paper's Eq. 2: the unit whose
/// latency is profiled in isolation for the LUT, and between which the
/// communication overhead B accrues on device.
struct LayerDesc {
  std::string name;
  std::vector<OpDescriptor> ops;
  // Output tensor geometry (for inter-layer communication pricing).
  long out_channels = 0;
  long out_h = 0;
  long out_w = 0;
  /// Format of the layer's output tensor (inter-layer hand-off width).
  DataType dtype = DataType::kF32;

  double output_bytes() const {
    return data_type_bytes(dtype) * static_cast<double>(out_channels) *
           static_cast<double>(out_h) * static_cast<double>(out_w);
  }
  double macs() const;
  double params() const;
};

/// A whole network, stem → blocks → head.
using NetworkDesc = std::vector<LayerDesc>;

double network_macs(const NetworkDesc& net);
double network_params(const NetworkDesc& net);

/// Epilogue-fusion post-pass: drops every kElementwise op that directly
/// follows a kConv/kDepthwiseConv whose output geometry it matches,
/// modeling a runtime whose conv kernels apply bias/BN/activation during
/// the C-writeback (nn::fused_conv_bn_act) instead of in a separate
/// memory pass. Decisions are made against the original op sequence, so
/// a residual-add elementwise sitting behind a fused BN elementwise is
/// preserved. Returns the number of ops removed. MACs are unchanged
/// (elementwise ops price at 0 MACs); activation-byte totals shrink.
std::size_t fuse_conv_epilogues(LayerDesc& layer);
std::size_t fuse_conv_epilogues(NetworkDesc& net);

/// Retarget every op (and the layer output) to `dtype` — the lowering
/// post-pass a quantized architecture applies before pricing. Geometry and
/// MAC counts are untouched; only byte traffic and compute throughput
/// selection change.
void set_layer_dtype(LayerDesc& layer, DataType dtype);
void set_network_dtype(NetworkDesc& net, DataType dtype);

}  // namespace hsconas::hwsim
