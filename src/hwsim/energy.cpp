#include "hwsim/energy.h"

#include "util/error.h"
#include "util/string_util.h"

namespace hsconas::hwsim {

EnergyProfile gv100_energy() {
  EnergyProfile p;
  p.name = "gv100";
  p.pj_per_flop = 18.0;       // ~250 W at peak fp32 throughput
  p.pj_per_byte_dram = 7.0;   // HBM2
  p.pj_per_byte_link = 12.0;
  p.launch_nj = 800.0;
  p.static_watts = 55.0;      // board idle + fixed overheads
  return p;
}

EnergyProfile xeon6136_energy() {
  EnergyProfile p;
  p.name = "xeon6136";
  p.pj_per_flop = 60.0;       // server core, batch-1 utilization
  p.pj_per_byte_dram = 20.0;  // DDR4
  p.pj_per_byte_link = 35.0;
  p.launch_nj = 300.0;
  p.static_watts = 35.0;
  return p;
}

EnergyProfile xavier_energy() {
  EnergyProfile p;
  p.name = "xavier";
  p.pj_per_flop = 12.0;       // edge-tuned silicon, power mode 6 (30 W)
  p.pj_per_byte_dram = 35.0;  // LPDDR4
  p.pj_per_byte_link = 50.0;
  p.launch_nj = 400.0;
  p.static_watts = 8.0;
  return p;
}

EnergyProfile energy_by_name(const std::string& device_name) {
  const std::string n = util::to_lower(device_name);
  if (n == "gv100" || n == "gpu") return gv100_energy();
  if (n == "xeon6136" || n == "cpu") return xeon6136_energy();
  if (n == "xavier" || n == "edge") return xavier_energy();
  throw InvalidArgument("unknown device '" + device_name +
                        "' (expected gv100|xeon6136|xavier)");
}

EnergySimulator::EnergySimulator(EnergyProfile profile,
                                 const DeviceSimulator& device)
    : profile_(std::move(profile)), device_(device) {
  if (profile_.pj_per_flop <= 0 || profile_.pj_per_byte_dram <= 0 ||
      profile_.pj_per_byte_link <= 0 || profile_.static_watts < 0) {
    throw InvalidArgument("EnergySimulator: invalid profile '" +
                          profile_.name + "'");
  }
}

double EnergySimulator::op_energy_mj(const OpDescriptor& op,
                                     int batch) const {
  HSCONAS_CHECK_MSG(batch >= 1, "op_energy_mj: batch must be >= 1");
  const double b = static_cast<double>(batch);
  const double flops = 2.0 * op.macs() * b;
  const double bytes =
      (op.input_bytes() + op.output_bytes()) * b + op.weight_bytes();
  // pJ -> mJ is 1e-9; nJ -> mJ is 1e-6.
  return (flops * profile_.pj_per_flop +
          bytes * profile_.pj_per_byte_dram) * 1e-9 +
         profile_.launch_nj * 1e-6;
}

double EnergySimulator::layer_energy_mj(const LayerDesc& layer,
                                        int batch) const {
  double total = 0.0;
  for (const auto& op : layer.ops) total += op_energy_mj(op, batch);
  return total;
}

double EnergySimulator::network_energy_mj(const NetworkDesc& net, int batch,
                                          util::Rng* noise) const {
  double dynamic = 0.0;
  for (const auto& layer : net) {
    dynamic += layer_energy_mj(layer, batch);
    dynamic += layer.output_bytes() * static_cast<double>(batch) *
               profile_.pj_per_byte_link * 1e-9;
  }
  const double latency_ms = device_.network_latency_ms(net, batch);
  const double static_mj = profile_.static_watts * latency_ms;  // W·ms = mJ
  double total = dynamic + static_mj;
  if (noise != nullptr) {
    total *= noise->lognormal_jitter(device_.profile().noise_sigma);
  }
  return total;
}

double EnergySimulator::network_power_w(const NetworkDesc& net,
                                        int batch) const {
  const double latency_ms = device_.network_latency_ms(net, batch);
  return network_energy_mj(net, batch) / latency_ms;  // mJ / ms = W
}

}  // namespace hsconas::hwsim
