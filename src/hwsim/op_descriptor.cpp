#include "hwsim/op_descriptor.h"

#include "util/string_util.h"

namespace hsconas::hwsim {

const char* data_type_name(DataType dtype) {
  switch (dtype) {
    case DataType::kF32: return "f32";
    case DataType::kI8: return "int8";
  }
  return "?";
}

double data_type_bytes(DataType dtype) {
  return dtype == DataType::kI8 ? 1.0 : 4.0;
}

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kConv: return "conv";
    case OpKind::kDepthwiseConv: return "dwconv";
    case OpKind::kLinear: return "linear";
    case OpKind::kPool: return "pool";
    case OpKind::kElementwise: return "eltwise";
    case OpKind::kShuffle: return "shuffle";
  }
  return "?";
}

long OpDescriptor::out_h() const {
  if (kind == OpKind::kLinear) return 1;
  return (in_h + 2 * effective_pad() - kernel) / stride + 1;
}

long OpDescriptor::out_w() const {
  if (kind == OpKind::kLinear) return 1;
  return (in_w + 2 * effective_pad() - kernel) / stride + 1;
}

double OpDescriptor::macs() const {
  switch (kind) {
    case OpKind::kConv:
      return static_cast<double>(out_channels) *
             static_cast<double>(in_channels / groups) *
             static_cast<double>(kernel) * static_cast<double>(kernel) *
             static_cast<double>(out_h()) * static_cast<double>(out_w());
    case OpKind::kDepthwiseConv:
      return static_cast<double>(out_channels) *
             static_cast<double>(kernel) * static_cast<double>(kernel) *
             static_cast<double>(out_h()) * static_cast<double>(out_w());
    case OpKind::kLinear:
      return static_cast<double>(in_channels) *
             static_cast<double>(out_channels);
    case OpKind::kPool:
      // comparisons/adds, not MACs; count 0 like standard FLOPs counters
      return 0.0;
    case OpKind::kElementwise:
    case OpKind::kShuffle:
      return 0.0;
  }
  return 0.0;
}

double OpDescriptor::params() const {
  switch (kind) {
    case OpKind::kConv:
      return static_cast<double>(out_channels) *
             static_cast<double>(in_channels / groups) *
             static_cast<double>(kernel) * static_cast<double>(kernel);
    case OpKind::kDepthwiseConv:
      return static_cast<double>(out_channels) *
             static_cast<double>(kernel) * static_cast<double>(kernel);
    case OpKind::kLinear:
      return static_cast<double>(in_channels) *
                 static_cast<double>(out_channels) +
             static_cast<double>(out_channels);
    default:
      return 0.0;
  }
}

double OpDescriptor::input_bytes() const {
  const double b = data_type_bytes(dtype);
  if (kind == OpKind::kLinear) {
    return b * static_cast<double>(in_channels);
  }
  return b * static_cast<double>(in_channels) *
         static_cast<double>(in_h) * static_cast<double>(in_w);
}

double OpDescriptor::output_bytes() const {
  const double b = data_type_bytes(dtype);
  if (kind == OpKind::kLinear) {
    return b * static_cast<double>(out_channels);
  }
  return b * static_cast<double>(out_channels) *
         static_cast<double>(out_h()) * static_cast<double>(out_w());
}

double OpDescriptor::weight_bytes() const {
  return data_type_bytes(dtype) * params();
}

std::string OpDescriptor::to_string() const {
  std::string s =
      util::format("%s(in=%ld out=%ld %ldx%ld k=%ld s=%ld g=%ld)",
                   op_kind_name(kind), in_channels, out_channels, in_h,
                   in_w, kernel, stride, groups);
  if (dtype != DataType::kF32) {
    s += util::format("[%s]", data_type_name(dtype));
  }
  return s;
}

OpDescriptor OpDescriptor::conv(long in_ch, long out_ch, long h, long w,
                                long kernel, long stride, long groups) {
  return OpDescriptor{OpKind::kConv, in_ch, out_ch, h, w, kernel, stride,
                      groups};
}

OpDescriptor OpDescriptor::depthwise(long channels, long h, long w,
                                     long kernel, long stride) {
  return OpDescriptor{OpKind::kDepthwiseConv, channels, channels, h,
                      w,       kernel,        stride,   channels};
}

OpDescriptor OpDescriptor::linear(long in_features, long out_features) {
  return OpDescriptor{OpKind::kLinear, in_features, out_features, 1, 1, 1, 1,
                      1};
}

OpDescriptor OpDescriptor::pool(long channels, long h, long w, long kernel,
                                long stride) {
  return OpDescriptor{OpKind::kPool, channels, channels, h, w, kernel,
                      stride, 1};
}

OpDescriptor OpDescriptor::elementwise(long channels, long h, long w) {
  return OpDescriptor{OpKind::kElementwise, channels, channels, h, w, 1, 1,
                      1};
}

OpDescriptor OpDescriptor::shuffle(long channels, long h, long w) {
  return OpDescriptor{OpKind::kShuffle, channels, channels, h, w, 1, 1, 1};
}

double LayerDesc::macs() const {
  double total = 0.0;
  for (const auto& op : ops) total += op.macs();
  return total;
}

double LayerDesc::params() const {
  double total = 0.0;
  for (const auto& op : ops) total += op.params();
  return total;
}

std::size_t fuse_conv_epilogues(LayerDesc& layer) {
  std::vector<OpDescriptor> kept;
  kept.reserve(layer.ops.size());
  std::size_t fused = 0;
  for (std::size_t i = 0; i < layer.ops.size(); ++i) {
    const OpDescriptor& op = layer.ops[i];
    if (op.kind == OpKind::kElementwise && i > 0) {
      // Fusion keys off the *original* predecessor: after a BN elementwise
      // fuses into its conv, a following residual-add elementwise still
      // sees the elementwise as its predecessor and survives.
      const OpDescriptor& prev = layer.ops[i - 1];
      const bool prev_is_conv = prev.kind == OpKind::kConv ||
                                prev.kind == OpKind::kDepthwiseConv;
      if (prev_is_conv && op.in_channels == prev.out_channels &&
          op.in_h == prev.out_h() && op.in_w == prev.out_w()) {
        ++fused;
        continue;
      }
    }
    kept.push_back(op);
  }
  layer.ops = std::move(kept);
  return fused;
}

std::size_t fuse_conv_epilogues(NetworkDesc& net) {
  std::size_t fused = 0;
  for (LayerDesc& layer : net) fused += fuse_conv_epilogues(layer);
  return fused;
}

void set_layer_dtype(LayerDesc& layer, DataType dtype) {
  layer.dtype = dtype;
  for (OpDescriptor& op : layer.ops) op.dtype = dtype;
}

void set_network_dtype(NetworkDesc& net, DataType dtype) {
  for (LayerDesc& layer : net) set_layer_dtype(layer, dtype);
}

double network_macs(const NetworkDesc& net) {
  double total = 0.0;
  for (const auto& layer : net) total += layer.macs();
  return total;
}

double network_params(const NetworkDesc& net) {
  double total = 0.0;
  for (const auto& layer : net) total += layer.params();
  return total;
}

}  // namespace hsconas::hwsim
