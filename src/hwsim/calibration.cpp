#include "hwsim/calibration.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <string>

#include "util/stats.h"

namespace hsconas::hwsim {

namespace {

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

bool op_from_key(const obs::OpKey& key, OpDescriptor* out) {
  // Backward passes have no forward-inference analogue in the device
  // model (it prices deployment, not training) — leave them unpriced.
  if (ends_with(key.op, ".bwd")) return false;
  const bool spatial_ok = key.in_h > 0 && key.in_w > 0;
  if (key.kind == "conv") {
    if (!spatial_ok || key.in_ch <= 0 || key.out_ch <= 0) return false;
    *out = OpDescriptor::conv(key.in_ch, key.out_ch, key.in_h, key.in_w,
                              key.kernel, key.stride, key.groups);
    return true;
  }
  if (key.kind == "dwconv") {
    if (!spatial_ok || key.in_ch <= 0) return false;
    *out = OpDescriptor::depthwise(key.in_ch, key.in_h, key.in_w, key.kernel,
                                   key.stride);
    return true;
  }
  if (key.kind == "linear") {
    if (key.in_ch <= 0 || key.out_ch <= 0) return false;
    *out = OpDescriptor::linear(key.in_ch, key.out_ch);
    return true;
  }
  if (key.kind == "pool") {
    if (!spatial_ok || key.in_ch <= 0) return false;
    *out = OpDescriptor::pool(key.in_ch, key.in_h, key.in_w, key.kernel,
                              key.stride);
    return true;
  }
  if (key.kind == "eltwise") {
    if (!spatial_ok || key.in_ch <= 0) return false;
    *out = OpDescriptor::elementwise(key.in_ch, key.in_h, key.in_w);
    return true;
  }
  if (key.kind == "shuffle") {
    if (!spatial_ok || key.in_ch <= 0) return false;
    *out = OpDescriptor::shuffle(key.in_ch, key.in_h, key.in_w);
    return true;
  }
  return false;
}

std::vector<OpComparison> CalibrationReport::worst_offenders(
    std::size_t top_n) const {
  std::vector<OpComparison> priced;
  for (const OpComparison& op : ops) {
    if (op.priced) priced.push_back(op);
  }
  std::sort(priced.begin(), priced.end(),
            [](const OpComparison& a, const OpComparison& b) {
              if (a.drift != b.drift) return a.drift > b.drift;
              return a.measured.signature < b.measured.signature;
            });
  if (priced.size() > top_n) priced.resize(top_n);
  return priced;
}

CalibrationReport compare_profile(const std::vector<obs::OpStats>& stats,
                                  const DeviceSimulator& device) {
  CalibrationReport report;
  const DeviceProfile& profile = device.profile();
  const double ridge =
      profile.mem_bandwidth_gbs > 0.0
          ? profile.peak_gflops / profile.mem_bandwidth_gbs
          : 0.0;

  std::vector<OpComparison> priced, unpriced;
  for (const obs::OpStats& st : stats) {
    if (st.calls == 0) continue;
    OpComparison cmp;
    cmp.measured = st;
    cmp.compute_bound = st.arithmetic_intensity() >= ridge;
    OpDescriptor desc;
    if (op_from_key(st.key, &desc)) {
      cmp.priced = true;
      cmp.descriptor = desc;
      const int batch = static_cast<int>(std::max<long>(1, st.key.batch));
      cmp.predicted_ms = device.op_latency_ms(desc, batch);
      if (cmp.predicted_ms > 0.0) {
        cmp.ratio = st.wall_ms_mean() / cmp.predicted_ms;
      }
      report.measured_total_ms += st.wall_ms_total;
      report.predicted_total_ms +=
          cmp.predicted_ms * static_cast<double>(st.calls);
      priced.push_back(std::move(cmp));
    } else {
      unpriced.push_back(std::move(cmp));
    }
  }
  report.priced_ops = priced.size();
  report.unpriced_ops = unpriced.size();

  // Global host-vs-device scale: the median measured/predicted ratio.
  // Per-op drift is distance from it in log space, so a predictor that is
  // uniformly 100× fast shows zero drift everywhere (perfect ordering).
  std::vector<double> ratios;
  for (const OpComparison& op : priced) {
    if (op.ratio > 0.0) ratios.push_back(op.ratio);
  }
  if (!ratios.empty()) {
    report.median_ratio = util::percentile(ratios, 50.0);
  }
  for (OpComparison& op : priced) {
    if (op.ratio > 0.0 && report.median_ratio > 0.0) {
      op.drift = std::abs(std::log(op.ratio / report.median_ratio));
    }
  }

  if (priced.size() >= 2) {
    std::vector<double> measured, predicted;
    measured.reserve(priced.size());
    predicted.reserve(priced.size());
    for (const OpComparison& op : priced) {
      measured.push_back(op.measured.wall_ms_mean());
      predicted.push_back(op.predicted_ms);
    }
    report.kendall_tau = util::kendall_tau(measured, predicted);
    report.spearman_rho = util::spearman(measured, predicted);
  }

  report.ops = std::move(priced);
  report.ops.insert(report.ops.end(),
                    std::make_move_iterator(unpriced.begin()),
                    std::make_move_iterator(unpriced.end()));
  return report;
}

}  // namespace hsconas::hwsim
