#pragma once

#include <string>
#include <vector>

#include "hwsim/device.h"

namespace hsconas::hwsim {

/// The three target platforms of the paper's evaluation (§IV), as analytic
/// profiles calibrated so the Table I baseline networks land near the
/// paper's measured latencies (see EXPERIMENTS.md for the calibration
/// readout). Batch sizes follow the paper: 32 / 1 / 16.
DeviceProfile gv100_profile();     ///< Nvidia Quadro GV100 (server GPU)
DeviceProfile xeon6136_profile();  ///< Intel Xeon Gold 6136 (server CPU)
DeviceProfile xavier_profile();    ///< Nvidia Jetson Xavier (edge, mode 6)

/// Lookup by name ("gv100" | "xeon6136" | "xavier", case-insensitive;
/// aliases "gpu" | "cpu" | "edge" accepted). Throws InvalidArgument.
DeviceProfile device_by_name(const std::string& name);

std::vector<std::string> device_names();

/// The paper's latency constraint T for each device (9 / 24 / 34 ms).
double default_constraint_ms(const std::string& name);

}  // namespace hsconas::hwsim
