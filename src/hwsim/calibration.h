#pragma once

#include <cstddef>
#include <vector>

#include "hwsim/device.h"
#include "hwsim/op_descriptor.h"
#include "obs/profiler.h"

namespace hsconas::hwsim {

/// Calibration-drift analysis: compare the profiler's measured per-op
/// latencies (obs::Profiler::snapshot()) against what the device
/// simulator's roofline predicts for the same geometry. Rank correlation
/// (Kendall-τ / Spearman-ρ) is the headline number — "One Proxy Device Is
/// Enough" shows it is *ordering*, not absolute scale, that makes a
/// latency predictor usable for hardware-aware search. The absolute scale
/// gap between host kernels and the simulated device is folded out through
/// the median measured/predicted ratio; per-op deviation from that median
/// (in log space) is the "drift" that ranks the worst offenders.

struct OpComparison {
  obs::OpStats measured;
  bool priced = false;        ///< false for backward / unpriceable ops
  OpDescriptor descriptor;    ///< valid only when priced
  double predicted_ms = 0.0;  ///< simulator price at the measured batch
  double ratio = 0.0;         ///< measured mean / predicted
  double drift = 0.0;         ///< |log(ratio / median ratio)|
  bool compute_bound = false;  ///< measured AI >= the device's ridge point
};

struct CalibrationReport {
  /// Priced rows first (measured wall-total order), then unpriced rows.
  std::vector<OpComparison> ops;
  double kendall_tau = 0.0;   ///< over priced (measured mean, predicted)
  double spearman_rho = 0.0;
  double median_ratio = 0.0;  ///< global host-vs-device scale factor
  double measured_total_ms = 0.0;   ///< Σ measured wall totals (priced)
  double predicted_total_ms = 0.0;  ///< Σ predicted × calls (priced)
  std::size_t priced_ops = 0;
  std::size_t unpriced_ops = 0;

  /// Priced rows sorted by drift, worst first.
  std::vector<OpComparison> worst_offenders(std::size_t top_n = 5) const;
};

/// Map a profiled op key onto a simulator-priceable descriptor. Returns
/// false for backward passes (op ending in ".bwd") and for geometries the
/// analytic device model has no category for.
bool op_from_key(const obs::OpKey& key, OpDescriptor* out);

CalibrationReport compare_profile(const std::vector<obs::OpStats>& stats,
                                  const DeviceSimulator& device);

}  // namespace hsconas::hwsim
