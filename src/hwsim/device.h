#pragma once

#include <string>

#include "hwsim/op_descriptor.h"
#include "util/rng.h"

namespace hsconas::hwsim {

/// Analytic device model. Per-operator latency follows a roofline:
///
///   t_op = launch_overhead + max(flops / (peak · eff), bytes / bandwidth)
///
/// where `eff` combines a per-kind base efficiency (dense conv maps well to
/// the hardware's GEMM engines; depthwise conv does not) with an occupancy
/// term that penalizes kernels too small to fill the machine — this is what
/// makes small batches under-utilize the GPU (the paper's §III-A batch-size
/// note) and what decorrelates latency from raw FLOPs (Fig. 2).
///
/// Whole-network "on-device" runs additionally pay an inter-layer
/// communication cost per layer boundary (tensor hand-off over the memory
/// hierarchy + scheduler sync) and multiplicative log-normal measurement
/// jitter. Per-layer profiling for the LUT of Eq. 2 sees *only* the op
/// costs — the gap between the two is precisely what the paper's bias term
/// B (Eq. 3) recovers on average.
struct DeviceProfile {
  std::string name;

  // Compute roofline.
  double peak_gflops = 1000.0;     ///< fp32 peak
  double mem_bandwidth_gbs = 100;  ///< DRAM bandwidth, GB/s
  double launch_overhead_us = 5;   ///< per-kernel dispatch cost

  /// Compute-throughput multiplier for int8 ops relative to fp32 (dp4a /
  /// VNNI-class instructions issue 4 int8 MACs per fp32 lane; achievable
  /// gains are lower). 1.0 = no dedicated int8 path. Memory-bound ops gain
  /// from int8 regardless through the 4× smaller byte traffic.
  double int8_speedup = 1.0;

  // Efficiency model.
  double sat_concurrency = 1e5;  ///< work items needed to saturate
  double base_eff_conv = 0.6;
  double base_eff_depthwise = 0.25;
  double base_eff_linear = 0.5;
  double base_eff_other = 1.0;  ///< memory-bound kinds (bandwidth rules)

  /// Fraction of elementwise (BN/activation/residual) traffic the runtime
  /// fuses into the producing kernel: 1 = perfectly fused (free),
  /// 0 = every elementwise op re-reads and re-writes its tensor.
  /// TensorRT-class runtimes fuse aggressively; batch-1 CPU runtimes of the
  /// paper's era barely did.
  double eltwise_fusion = 0.0;

  // Inter-layer communication (invisible to per-op profiling).
  double link_bandwidth_gbs = 20.0;  ///< effective hand-off bandwidth
  double sync_overhead_us = 8.0;     ///< per layer boundary

  // Measurement realism.
  double noise_sigma = 0.015;  ///< log-space jitter of "measured" runs

  int default_batch = 1;  ///< batch size the paper uses on this device
};

/// Prices operators and networks under a DeviceProfile. Deterministic
/// except where an Rng is passed for measurement jitter.
class DeviceSimulator {
 public:
  explicit DeviceSimulator(DeviceProfile profile);

  const DeviceProfile& profile() const { return profile_; }

  /// Latency of one primitive op at the given batch size (ms, noise-free).
  double op_latency_ms(const OpDescriptor& op, int batch) const;

  /// Latency of one layer profiled in isolation (sum of its op latencies;
  /// no inter-layer communication) — the LUT entry of Eq. 2.
  double layer_latency_ms(const LayerDesc& layer, int batch) const;

  /// Ground-truth end-to-end latency: op costs + inter-layer communication.
  /// Pass an Rng to add measurement jitter ("on-device measurement",
  /// LAT⁺ of Eq. 3); nullptr gives the noise-free expectation.
  double network_latency_ms(const NetworkDesc& net, int batch,
                            util::Rng* noise = nullptr) const;

  /// The communication part alone (what Eq. 2's LUT sum misses).
  double communication_ms(const NetworkDesc& net, int batch) const;

 private:
  double efficiency(const OpDescriptor& op, int batch) const;
  DeviceProfile profile_;
};

}  // namespace hsconas::hwsim
