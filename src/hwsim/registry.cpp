#include "hwsim/registry.h"

#include "util/error.h"
#include "util/string_util.h"

namespace hsconas::hwsim {

DeviceProfile gv100_profile() {
  DeviceProfile p;
  p.name = "gv100";
  p.peak_gflops = 10000.0;  // sustained fp32 throughput of GV100
  p.mem_bandwidth_gbs = 600.0;
  p.launch_overhead_us = 4.0;
  p.sat_concurrency = 1.0e6;  // 80 SMs want a lot of resident work
  p.base_eff_conv = 0.55;
  p.base_eff_depthwise = 0.12;  // dw kernels map poorly to tensor pipes
  p.base_eff_linear = 0.45;
  p.base_eff_other = 1.0;
  p.int8_speedup = 4.0;  // dp4a: 4 int8 MACs per fp32 lane
  p.eltwise_fusion = 0.8;  // cuDNN/TensorRT-era fusion
  p.link_bandwidth_gbs = 200.0;  // L2/DRAM tensor hand-off
  p.sync_overhead_us = 14.0;     // stream sync + scheduler
  p.noise_sigma = 0.01;
  p.default_batch = 32;
  return p;
}

DeviceProfile xeon6136_profile() {
  DeviceProfile p;
  p.name = "xeon6136";
  // Framework-achievable throughput at batch 1 (TF/PyTorch-era CPU
  // inference), not the silicon's AVX-512 peak: batch-1 mobile convs leave
  // most of the 12 cores idle.
  p.peak_gflops = 580.0;
  p.mem_bandwidth_gbs = 110.0;
  p.launch_overhead_us = 4.0;   // op dispatch in a CPU inference runtime
  p.sat_concurrency = 2.0e5;    // threads starve on small spatial maps
  p.base_eff_conv = 0.35;
  p.base_eff_depthwise = 0.20;
  p.base_eff_linear = 0.35;
  p.base_eff_other = 1.0;
  p.int8_speedup = 2.0;  // AVX-512BW vpmaddubsw: ~2x over fp32 FMA
  p.eltwise_fusion = 0.3;  // era CPU runtimes fused little
  p.link_bandwidth_gbs = 5.5;   // cache-hostile tensor hand-off at batch 1
  p.sync_overhead_us = 50.0;    // framework per-layer overhead at batch 1
  p.noise_sigma = 0.015;
  p.default_batch = 1;
  return p;
}

DeviceProfile xavier_profile() {
  DeviceProfile p;
  p.name = "xavier";
  p.peak_gflops = 700.0;  // Volta iGPU, power mode 6 (30 W cap)
  p.mem_bandwidth_gbs = 110.0;
  p.launch_overhead_us = 12.0;  // weaker host CPU drives launches
  p.sat_concurrency = 1.0e5;
  p.base_eff_conv = 0.45;
  p.base_eff_depthwise = 0.15;
  p.base_eff_linear = 0.40;
  p.base_eff_other = 1.0;
  p.int8_speedup = 2.0;  // Volta iGPU dp4a under the 30 W power cap
  p.eltwise_fusion = 0.75;  // TensorRT-style fusion on Jetson
  p.link_bandwidth_gbs = 25.0;
  p.sync_overhead_us = 70.0;
  p.noise_sigma = 0.02;
  p.default_batch = 16;
  return p;
}

DeviceProfile device_by_name(const std::string& name) {
  const std::string n = util::to_lower(name);
  if (n == "gv100" || n == "gpu") return gv100_profile();
  if (n == "xeon6136" || n == "cpu") return xeon6136_profile();
  if (n == "xavier" || n == "edge") return xavier_profile();
  throw InvalidArgument("unknown device '" + name +
                        "' (expected gv100|xeon6136|xavier)");
}

std::vector<std::string> device_names() {
  return {"gv100", "xeon6136", "xavier"};
}

double default_constraint_ms(const std::string& name) {
  const std::string n = util::to_lower(name);
  if (n == "gv100" || n == "gpu") return 9.0;
  if (n == "xeon6136" || n == "cpu") return 24.0;
  if (n == "xavier" || n == "edge") return 34.0;
  throw InvalidArgument("unknown device '" + name + "'");
}

}  // namespace hsconas::hwsim
