#pragma once

#include "hwsim/device.h"

namespace hsconas::hwsim {

/// Energy model — the paper's stated future work ("incorporate different
/// hardware constraints like power consumption", §V), built on the same
/// descriptor lowering as the latency model.
///
/// Per-op dynamic energy:
///   E_op = flops · pj_per_flop / eff_kindish + bytes · pj_per_byte
///        + launch_nj
/// Whole-network energy adds inter-layer hand-off traffic at the link
/// energy cost and static (leakage + idle) power integrated over the run's
/// latency — which is why a *faster* network is usually also a lower-energy
/// one on devices with high static draw, and why the two objectives are
/// still not equivalent (a wide dense conv burns more dynamic energy per
/// millisecond than a depthwise one).
struct EnergyProfile {
  std::string name;
  double pj_per_flop = 10.0;       ///< dynamic compute energy
  double pj_per_byte_dram = 15.0;  ///< DRAM traffic energy
  double pj_per_byte_link = 40.0;  ///< inter-layer hand-off energy
  double launch_nj = 500.0;        ///< per-kernel control energy (nJ)
  double static_watts = 10.0;      ///< leakage + idle draw during the run
};

/// Calibrated companions of the three latency profiles.
EnergyProfile gv100_energy();
EnergyProfile xeon6136_energy();
EnergyProfile xavier_energy();
EnergyProfile energy_by_name(const std::string& device_name);

/// Prices energy under an (EnergyProfile, DeviceSimulator) pair; the
/// simulator supplies latencies for the static-power integral.
class EnergySimulator {
 public:
  EnergySimulator(EnergyProfile profile, const DeviceSimulator& device);

  const EnergyProfile& profile() const { return profile_; }

  /// Dynamic energy of one op at the given batch, millijoules.
  double op_energy_mj(const OpDescriptor& op, int batch) const;

  /// Layer in isolation: sum of its ops' dynamic energy (LUT entry).
  double layer_energy_mj(const LayerDesc& layer, int batch) const;

  /// Whole network: op energy + inter-layer hand-off energy + static
  /// power × end-to-end latency. Pass an Rng for measurement jitter.
  double network_energy_mj(const NetworkDesc& net, int batch,
                           util::Rng* noise = nullptr) const;

  /// Mean power over one inference, watts.
  double network_power_w(const NetworkDesc& net, int batch) const;

 private:
  EnergyProfile profile_;
  const DeviceSimulator& device_;
};

}  // namespace hsconas::hwsim
