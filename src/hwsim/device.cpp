#include "hwsim/device.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace hsconas::hwsim {

DeviceSimulator::DeviceSimulator(DeviceProfile profile)
    : profile_(std::move(profile)) {
  if (profile_.peak_gflops <= 0 || profile_.mem_bandwidth_gbs <= 0 ||
      profile_.link_bandwidth_gbs <= 0 || profile_.default_batch < 1 ||
      profile_.int8_speedup <= 0) {
    throw InvalidArgument("DeviceSimulator: invalid profile '" +
                          profile_.name + "'");
  }
}

double DeviceSimulator::efficiency(const OpDescriptor& op, int batch) const {
  double base;
  switch (op.kind) {
    case OpKind::kConv: base = profile_.base_eff_conv; break;
    case OpKind::kDepthwiseConv: base = profile_.base_eff_depthwise; break;
    case OpKind::kLinear: base = profile_.base_eff_linear; break;
    default: base = profile_.base_eff_other; break;
  }
  // Occupancy: how much independent work the kernel exposes relative to
  // what the machine needs to saturate. Output elements × batch is the
  // natural parallel axis for conv-style kernels.
  const double work =
      static_cast<double>(batch) * static_cast<double>(op.out_channels) *
      static_cast<double>(op.out_h()) * static_cast<double>(op.out_w());
  const double occupancy = work / (work + profile_.sat_concurrency);
  return base * std::max(occupancy, 1e-4);
}

double DeviceSimulator::op_latency_ms(const OpDescriptor& op,
                                      int batch) const {
  HSCONAS_CHECK_MSG(batch >= 1, "op_latency_ms: batch must be >= 1");
  const double b = static_cast<double>(batch);
  const double flops = 2.0 * op.macs() * b;
  double bytes =
      (op.input_bytes() + op.output_bytes()) * b + op.weight_bytes();
  if (op.kind == OpKind::kElementwise) {
    bytes *= 1.0 - profile_.eltwise_fusion;
  }

  // int8 ops run on the device's narrow-datapath pipes (dp4a/VNNI): same
  // MAC count, multiplied throughput. Byte traffic already shrank through
  // the descriptor's dtype-aware byte accessors.
  const double peak_gflops =
      profile_.peak_gflops *
      (op.dtype == DataType::kI8 ? profile_.int8_speedup : 1.0);
  const double compute_ms =
      flops / (peak_gflops * 1e9 * efficiency(op, batch)) * 1e3;
  // Channel shuffles are strided permutation copies — they run at the
  // cache-hostile hand-off bandwidth, not streaming DRAM bandwidth.
  const double bw = (op.kind == OpKind::kShuffle)
                        ? profile_.link_bandwidth_gbs
                        : profile_.mem_bandwidth_gbs;
  const double memory_ms = bytes / (bw * 1e9) * 1e3;
  // A fused elementwise op also skips its kernel launch.
  double launch_us = profile_.launch_overhead_us;
  if (op.kind == OpKind::kElementwise) {
    launch_us *= 1.0 - profile_.eltwise_fusion;
  }
  return launch_us * 1e-3 + std::max(compute_ms, memory_ms);
}

double DeviceSimulator::layer_latency_ms(const LayerDesc& layer,
                                         int batch) const {
  double total = 0.0;
  for (const auto& op : layer.ops) total += op_latency_ms(op, batch);
  return total;
}

double DeviceSimulator::communication_ms(const NetworkDesc& net,
                                         int batch) const {
  // Every layer boundary hands its output tensor across the memory
  // hierarchy and pays a scheduler sync; the final layer's output (logits)
  // is negligible but priced uniformly for simplicity. Layers that lower
  // to zero kernels (stride-1 skips) materialize no new tensor and pay
  // nothing — which makes the true communication cost depend on the
  // architecture, i.e. the constant bias B of Eq. 3 is genuinely an
  // approximation here, as it is on real hardware.
  double total = 0.0;
  for (const auto& layer : net) {
    if (layer.ops.empty()) continue;
    const double bytes = layer.output_bytes() * static_cast<double>(batch);
    total += profile_.sync_overhead_us * 1e-3 +
             bytes / (profile_.link_bandwidth_gbs * 1e9) * 1e3;
  }
  return total;
}

double DeviceSimulator::network_latency_ms(const NetworkDesc& net, int batch,
                                           util::Rng* noise) const {
  double total = communication_ms(net, batch);
  for (const auto& layer : net) total += layer_latency_ms(layer, batch);
  if (noise != nullptr) total *= noise->lognormal_jitter(profile_.noise_sigma);
  return total;
}

}  // namespace hsconas::hwsim
