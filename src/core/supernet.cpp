#include "core/supernet.h"

#include "nn/quantize.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/string_util.h"

namespace hsconas::core {

using nn::BlockKind;
using tensor::Tensor;

Supernet::Supernet(const SearchSpace& space, std::uint64_t seed,
                   std::optional<Arch> fixed_arch)
    : space_(space), fixed_arch_(std::move(fixed_arch)) {
  if (fixed_arch_) fixed_arch_->validate(space_);
  util::Rng rng(seed);
  const SearchSpaceConfig& cfg = space_.config();

  stem_ = std::make_unique<nn::Sequential>("stem");
  stem_->add(std::make_unique<nn::Conv2d>(cfg.input_channels,
                                          cfg.stem_channels, 3,
                                          cfg.stem_stride2 ? 2 : 1, 1, 1,
                                          false, rng, "stem.conv"));
  stem_->add(std::make_unique<nn::BatchNorm2d>(cfg.stem_channels, 0.1, 1e-5,
                                               "stem.bn"));
  stem_->add(std::make_unique<nn::ReLU>());

  layers_.resize(static_cast<std::size_t>(space_.num_layers()));
  for (int l = 0; l < space_.num_layers(); ++l) {
    const LayerInfo& info = space_.layer(l);
    auto& choices = layers_[static_cast<std::size_t>(l)];
    if (fixed_arch_) {
      const int op = fixed_arch_->ops[static_cast<std::size_t>(l)];
      choices.push_back(nn::make_family_block(
          cfg.family, op, info.in_channels, info.out_channels, info.stride,
          rng, util::format("layer%d.op%d", l, op)));
    } else {
      for (int op = 0; op < cfg.num_ops; ++op) {
        choices.push_back(nn::make_family_block(
            cfg.family, op, info.in_channels, info.out_channels, info.stride,
            rng, util::format("layer%d.op%d", l, op)));
      }
    }
  }

  head_conv_ = std::make_unique<nn::Sequential>("head");
  head_conv_->add(std::make_unique<nn::Conv2d>(
      cfg.stage_channels.back(), cfg.head_channels, 1, 1, 0, 1, false, rng,
      "head.conv"));
  head_conv_->add(std::make_unique<nn::BatchNorm2d>(cfg.head_channels, 0.1,
                                                    1e-5, "head.bn"));
  head_conv_->add(std::make_unique<nn::ReLU>());

  classifier_ = std::make_unique<nn::Linear>(cfg.head_channels,
                                             cfg.num_classes, rng, "fc");
}

const Arch& Supernet::fixed_arch() const {
  HSCONAS_CHECK_MSG(fixed_arch_.has_value(),
                    "fixed_arch() on a full supernet");
  return *fixed_arch_;
}

void Supernet::check_arch(const Arch& arch) const {
  arch.validate(space_);
  if (fixed_arch_ && !(arch == *fixed_arch_)) {
    throw InvalidArgument(
        "Supernet: standalone network can only run its fixed arch");
  }
}

nn::ChoiceBlock& Supernet::block(int layer, int op) {
  auto& choices = layers_.at(static_cast<std::size_t>(layer));
  if (fixed_arch_) {
    HSCONAS_CHECK_MSG(op == fixed_arch_->ops[static_cast<std::size_t>(layer)],
                      "Supernet::block: op not instantiated");
    return *choices.front();
  }
  return *choices.at(static_cast<std::size_t>(op));
}

Tensor Supernet::forward(const Tensor& images, const Arch& arch) {
  HSCONAS_TRACE_SCOPE("supernet.forward");
  static obs::Counter& forwards = obs::counter("hsconas.supernet.forwards");
  forwards.add();
  check_arch(arch);
  active_path_.clear();
  active_path_.push_back(stem_.get());
  Tensor h = stem_->forward(images);

  for (int l = 0; l < space_.num_layers(); ++l) {
    nn::ChoiceBlock& blk = block(l, arch.ops[static_cast<std::size_t>(l)]);
    blk.set_channel_factor(space_.config().channel_factors.at(
        static_cast<std::size_t>(arch.factors[static_cast<std::size_t>(l)])));
    active_path_.push_back(&blk);
    h = blk.forward(h);
  }

  active_path_.push_back(head_conv_.get());
  h = head_conv_->forward(h);
  active_path_.push_back(&gap_);
  h = gap_.forward(h);
  active_path_.push_back(classifier_.get());
  return classifier_->forward(h);
}

Tensor Supernet::forward(const Tensor& images) {
  HSCONAS_CHECK_MSG(fixed_arch_.has_value(),
                    "forward(images) requires a standalone network");
  return forward(images, *fixed_arch_);
}

void Supernet::backward(const Tensor& logits_grad) {
  HSCONAS_TRACE_SCOPE("supernet.backward");
  static obs::Counter& backwards = obs::counter("hsconas.supernet.backwards");
  backwards.add();
  HSCONAS_CHECK_MSG(!active_path_.empty(),
                    "Supernet::backward before forward");
  Tensor g = logits_grad;
  for (auto it = active_path_.rbegin(); it != active_path_.rend(); ++it) {
    g = (*it)->backward(g);
  }
}

std::vector<nn::Parameter*> Supernet::parameters() {
  std::vector<nn::Parameter*> params;
  stem_->collect_params(params);
  for (auto& choices : layers_) {
    for (auto& blk : choices) blk->collect_params(params);
  }
  head_conv_->collect_params(params);
  classifier_->collect_params(params);
  return params;
}

std::vector<nn::Parameter*> Supernet::path_parameters(const Arch& arch) {
  check_arch(arch);
  std::vector<nn::Parameter*> params;
  stem_->collect_params(params);
  for (int l = 0; l < space_.num_layers(); ++l) {
    block(l, arch.ops[static_cast<std::size_t>(l)]).collect_params(params);
  }
  head_conv_->collect_params(params);
  classifier_->collect_params(params);
  return params;
}

void Supernet::set_training(bool training) {
  stem_->set_training(training);
  for (auto& choices : layers_) {
    for (auto& blk : choices) blk->set_training(training);
  }
  head_conv_->set_training(training);
  gap_.set_training(training);
  classifier_->set_training(training);
}

double Supernet::evaluate(const data::SyntheticDataset& dataset,
                          const Arch& arch, std::size_t batch_size,
                          std::size_t max_batches) {
  check_arch(arch);
  // Batch-statistics BN: keep training mode but never call backward.
  set_training(true);
  data::DataLoader loader(dataset, batch_size, /*train=*/false, /*seed=*/0);
  const std::size_t batches =
      max_batches == 0 ? loader.num_batches()
                       : std::min(max_batches, loader.num_batches());
  std::size_t correct = 0, total = 0;
  for (std::size_t b = 0; b < batches; ++b) {
    data::Batch batch = loader.batch(b);
    const Tensor logits = forward(batch.images, arch);
    const nn::LossResult res = nn::cross_entropy(logits, batch.labels);
    correct += res.correct_top1;
    total += batch.labels.size();
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) /
                          static_cast<double>(total);
}

void Supernet::visit(const std::function<void(nn::Module&)>& fn) {
  stem_->visit(fn);
  for (auto& choices : layers_) {
    for (auto& blk : choices) blk->visit(fn);
  }
  head_conv_->visit(fn);
  gap_.visit(fn);
  classifier_->visit(fn);
}

std::size_t Supernet::calibrate_quant(
    const std::vector<tensor::Tensor>& batches) {
  if (!is_standalone()) {
    throw Error("Supernet::calibrate_quant: int8 calibration needs a "
                "standalone (fixed-arch) network");
  }
  const bool was_training = stem_->training();
  set_training(false);
  std::size_t frozen = 0;
  try {
    frozen = nn::calibrate_with(
        [this](const std::function<void(nn::Module&)>& fn) { visit(fn); },
        [this](const tensor::Tensor& batch) { forward(batch); },
        batches);
  } catch (...) {
    set_training(was_training);
    throw;
  }
  set_training(was_training);
  return frozen;
}

void Supernet::calibrate_bn(const data::SyntheticDataset& dataset,
                            const Arch& arch, std::size_t batch_size,
                            std::size_t calib_batches, std::uint64_t seed) {
  check_arch(arch);
  // Reset every BN's running stats; only the active path's get refreshed,
  // which is fine — evaluate_calibrated only routes through that path.
  visit([](nn::Module& m) {
    if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&m)) {
      bn->reset_running_stats();
    }
  });
  set_training(true);  // BN accumulates batch statistics
  data::DataLoader loader(dataset, batch_size, /*train=*/true, seed ^ 0xB4);
  const std::size_t batches =
      std::min<std::size_t>(std::max<std::size_t>(calib_batches, 1),
                            loader.num_batches());
  for (std::size_t b = 0; b < batches; ++b) {
    const data::Batch batch = loader.batch(b);
    forward(batch.images, arch);  // forward only: statistics, no gradients
  }
}

double Supernet::evaluate_calibrated(const data::SyntheticDataset& dataset,
                                     const Arch& arch,
                                     std::size_t batch_size,
                                     std::size_t max_batches) {
  check_arch(arch);
  set_training(false);
  data::DataLoader loader(dataset, batch_size, /*train=*/false, 0);
  const std::size_t batches =
      max_batches == 0 ? loader.num_batches()
                       : std::min(max_batches, loader.num_batches());
  std::size_t correct = 0, total = 0;
  for (std::size_t b = 0; b < batches; ++b) {
    const data::Batch batch = loader.batch(b);
    const Tensor logits = forward(batch.images, arch);
    const nn::LossResult res = nn::cross_entropy(logits, batch.labels);
    correct += res.correct_top1;
    total += batch.labels.size();
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) /
                          static_cast<double>(total);
}

std::unique_ptr<Supernet> Supernet::extract_subnet(const Arch& arch,
                                                   std::uint64_t seed) {
  check_arch(arch);
  auto subnet = std::make_unique<Supernet>(space_, seed, arch);
  // path_parameters(arch) and the standalone's parameters() enumerate the
  // same module sequence (stem, chosen block per layer, head, classifier),
  // so a positional copy is exact. Shapes are asserted anyway.
  const std::vector<nn::Parameter*> source = path_parameters(arch);
  const std::vector<nn::Parameter*> target = subnet->parameters();
  HSCONAS_CHECK_MSG(source.size() == target.size(),
                    "extract_subnet: parameter count mismatch");
  for (std::size_t i = 0; i < source.size(); ++i) {
    HSCONAS_CHECK_MSG(
        source[i]->value.shape() == target[i]->value.shape(),
        "extract_subnet: shape mismatch at " + source[i]->name);
    target[i]->value = source[i]->value;
  }
  return subnet;
}

long Supernet::param_count() {
  long total = 0;
  for (nn::Parameter* p : parameters()) total += p->numel();
  return total;
}

}  // namespace hsconas::core
