#include "core/space_shrinking.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace hsconas::core {

SpaceShrinker::SpaceShrinker(SearchSpace& space, AccuracyFn accuracy,
                             const LatencyModel& latency, Objective objective,
                             Config config)
    : space_(space),
      accuracy_(std::move(accuracy)),
      latency_(latency),
      objective_(objective),
      config_(config),
      rng_(config.seed) {
  HSCONAS_CHECK_MSG(accuracy_ != nullptr, "SpaceShrinker: null accuracy fn");
  if (config_.samples_per_subspace < 1) {
    throw InvalidArgument("SpaceShrinker: samples_per_subspace must be >= 1");
  }
}

double SpaceShrinker::subspace_quality(int layer, int op) {
  // Q(A_sub) = (1/N) Σ F(arch_i, T),  arch_i ~ U(A_sub)   (Definition 1)
  // Samples are drawn serially (one RNG stream, fixed order), then scored
  // — across the pool when configured — and reduced in index order, so
  // the mean is identical at any worker count.
  static obs::Counter& q_samples = obs::counter("hsconas.shrink.q_samples");
  static obs::Counter& subspaces =
      obs::counter("hsconas.shrink.subspaces_scored");
  const std::size_t n = static_cast<std::size_t>(config_.samples_per_subspace);
  q_samples.add(n);
  subspaces.add();
  std::vector<Arch> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    samples.push_back(Arch::random_with_fixed_op(space_, rng_, layer, op));
  }

  std::vector<double> scores(n);
  const auto score_one = [&](std::size_t i) {
    scores[i] = objective_.score(accuracy_(samples[i]),
                                 latency_.predict_ms(samples[i]));
  };
  util::ThreadPool& pool =
      config_.pool != nullptr ? *config_.pool : util::ThreadPool::global();
  if (config_.parallel_eval && pool.size() > 1) {
    pool.parallel_for(n, score_one);
  } else {
    for (std::size_t i = 0; i < n; ++i) score_one(i);
  }

  double total = 0.0;
  for (double s : scores) total += s;
  ++total_evaluated_;
  return total / static_cast<double>(config_.samples_per_subspace);
}

SpaceShrinker::LayerDecision SpaceShrinker::shrink_layer(int layer) {
  HSCONAS_TRACE_SCOPE("shrink.layer");
  const std::vector<int> candidates = space_.allowed_ops(layer);
  HSCONAS_CHECK_MSG(!candidates.empty(), "shrink_layer: no candidates");

  LayerDecision decision;
  decision.layer = layer;
  decision.quality.reserve(candidates.size());
  double best_q = -1e300;
  for (int op : candidates) {
    const double q = subspace_quality(layer, op);
    decision.quality.push_back(q);
    ++decision.subspaces_evaluated;
    if (q > best_q) {
      best_q = q;
      decision.chosen_op = op;
    }
  }
  space_.fix_op(layer, decision.chosen_op);
  HSCONAS_LOG_DEBUG << "shrink layer " << layer << " -> op "
                    << decision.chosen_op;
  return decision;
}

void SpaceShrinker::export_state(util::ByteWriter& out) const {
  out.rng_state(rng_.state());
  out.i32(total_evaluated_);
}

void SpaceShrinker::import_state(util::ByteReader& in) {
  rng_.set_state(in.rng_state());
  total_evaluated_ = in.i32();
}

std::vector<SpaceShrinker::LayerDecision> SpaceShrinker::shrink_stage(
    int from_layer, int count) {
  HSCONAS_TRACE_SCOPE("shrink.stage");
  if (from_layer < 0 || from_layer >= space_.num_layers() || count < 1 ||
      from_layer - count + 1 < 0) {
    throw InvalidArgument("shrink_stage: bad layer range");
  }
  std::vector<LayerDecision> decisions;
  decisions.reserve(static_cast<std::size_t>(count));
  for (int l = from_layer; l > from_layer - count; --l) {
    decisions.push_back(shrink_layer(l));
  }
  return decisions;
}

}  // namespace hsconas::core
