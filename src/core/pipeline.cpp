#include "core/pipeline.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace hsconas::core {

util::Json pipeline_report_json(const PipelineResult& result,
                                const SearchSpace& space) {
  util::Json report = util::Json::object();
  report["winner"] = result.best_arch.to_json(space);
  report["winner_string"] = result.best_arch.to_string(space);

  util::Json metrics = util::Json::object();
  metrics["score"] = result.best_score;
  metrics["accuracy"] = result.best_accuracy;
  metrics["predicted_latency_ms"] = result.predicted_latency_ms;
  metrics["measured_latency_ms"] = result.measured_latency_ms;
  metrics["constraint_ms"] = result.constraint_ms;
  report["metrics"] = std::move(metrics);

  util::Json shrink = util::Json::object();
  shrink["log10_space_initial"] = result.log10_space_initial;
  shrink["log10_space_after_stage1"] = result.log10_space_after_stage1;
  shrink["log10_space_after_stage2"] = result.log10_space_after_stage2;
  util::Json decisions = util::Json::array();
  for (const auto* stage : {&result.stage1_decisions,
                            &result.stage2_decisions}) {
    for (const auto& d : *stage) {
      util::Json entry = util::Json::object();
      entry["layer"] = d.layer;
      entry["chosen_op"] = space.op_name(d.chosen_op);
      util::Json quality = util::Json::array();
      for (double q : d.quality) quality.push_back(q);
      entry["subspace_quality"] = std::move(quality);
      decisions.push_back(std::move(entry));
    }
  }
  shrink["decisions"] = std::move(decisions);
  report["space_shrinking"] = std::move(shrink);

  util::Json generations = util::Json::array();
  for (const auto& g : result.evolution.per_generation) {
    util::Json entry = util::Json::object();
    entry["generation"] = g.generation;
    entry["best_score"] = g.best_score;
    entry["mean_score"] = g.mean_score;
    entry["best_latency_ms"] = g.best_latency_ms;
    entry["best_accuracy"] = g.best_accuracy;
    generations.push_back(std::move(entry));
  }
  report["evolution"] = std::move(generations);

  util::Json training = util::Json::array();
  for (const auto& e : result.train_history) {
    util::Json entry = util::Json::object();
    entry["epoch"] = e.epoch;
    entry["loss"] = e.loss;
    entry["top1"] = e.top1;
    entry["lr"] = e.lr;
    training.push_back(std::move(entry));
  }
  report["supernet_training"] = std::move(training);
  return report;
}

Pipeline::Pipeline(PipelineConfig config)
    : config_(std::move(config)),
      space_(config_.space),
      device_(config_.custom_device ? *config_.custom_device
                                    : hwsim::device_by_name(config_.device)) {
  if (config_.constraint_ms <= 0.0) {
    if (config_.custom_device) {
      throw InvalidArgument(
          "Pipeline: constraint_ms is required with a custom device");
    }
    config_.constraint_ms = hwsim::default_constraint_ms(config_.device);
  }
  LatencyModel::Config lat_cfg = config_.latency;
  if (lat_cfg.batch == 1) lat_cfg.batch = device_.profile().default_batch;
  lat_cfg.seed ^= config_.seed;
  latency_model_ = std::make_unique<LatencyModel>(space_, device_, lat_cfg);
}

PipelineResult Pipeline::run(const data::SyntheticDataset* dataset) {
  HSCONAS_TRACE_SCOPE("pipeline.run");
  PipelineResult result;
  result.constraint_ms = config_.constraint_ms;
  result.log10_space_initial = space_.log10_size();

  const Objective objective{config_.beta, config_.constraint_ms};

  // ---- accuracy back-end ---------------------------------------------------
  std::unique_ptr<Supernet> supernet;
  std::unique_ptr<SupernetTrainer> trainer;
  std::unique_ptr<AccuracySurrogate> surrogate;
  AccuracyFn accuracy;

  if (config_.use_surrogate) {
    surrogate = std::make_unique<AccuracySurrogate>(space_,
                                                    config_.surrogate);
    accuracy = [&s = *surrogate](const Arch& arch) { return s.accuracy(arch); };
  } else {
    if (dataset == nullptr) {
      throw InvalidArgument(
          "Pipeline: proxy mode requires a dataset (or set use_surrogate)");
    }
    supernet = std::make_unique<Supernet>(space_, config_.seed ^ 0x5e7ull);
    TrainConfig tc = config_.train;
    tc.seed ^= config_.seed;
    tc.verbose = config_.verbose;
    trainer = std::make_unique<SupernetTrainer>(*supernet, *dataset, tc);

    if (config_.verbose) {
      HSCONAS_LOG_INFO << "training supernet for " << config_.initial_epochs
                       << " epochs (" << supernet->param_count()
                       << " params)";
    }
    std::vector<EpochStats> hist;
    {
      HSCONAS_TRACE_SCOPE("pipeline.supernet_train");
      hist = trainer->run(config_.initial_epochs);
    }
    result.train_history.insert(result.train_history.end(), hist.begin(),
                                hist.end());
    accuracy = [&t = *trainer, n = config_.eval_batches](const Arch& arch) {
      return t.evaluate(arch, n);
    };
  }

  // ---- progressive space shrinking (§III-C) --------------------------------
  const int L = space_.num_layers();
  const int per_stage =
      std::clamp(config_.shrink_layers_per_stage, 0, L / 2);
  // The surrogate is a pure function of the arch, so subspace sampling and
  // candidate scoring may fan out across the thread pool; the
  // supernet/trainer functor mutates module state per forward pass and
  // must stay serial.
  SpaceShrinker shrinker(space_, accuracy, *latency_model_, objective,
                         [&] {
                           auto c = config_.shrink;
                           c.seed ^= config_.seed;
                           c.parallel_eval = config_.use_surrogate;
                           return c;
                         }());

  if (per_stage > 0) {
    HSCONAS_TRACE_SCOPE("pipeline.space_shrinking");
    result.stage1_decisions = shrinker.shrink_stage(L - 1, per_stage);
    result.log10_space_after_stage1 = space_.log10_size();
    if (trainer) {
      HSCONAS_TRACE_SCOPE("pipeline.tune_stage1");
      auto hist = trainer->run(config_.tune_epochs, config_.tune_lr_stage1);
      result.train_history.insert(result.train_history.end(), hist.begin(),
                                  hist.end());
    }

    result.stage2_decisions =
        shrinker.shrink_stage(L - 1 - per_stage, per_stage);
    result.log10_space_after_stage2 = space_.log10_size();
    if (trainer) {
      HSCONAS_TRACE_SCOPE("pipeline.tune_stage2");
      auto hist = trainer->run(config_.tune_epochs, config_.tune_lr_stage2);
      result.train_history.insert(result.train_history.end(), hist.begin(),
                                  hist.end());
    }
  } else {
    result.log10_space_after_stage1 = result.log10_space_initial;
    result.log10_space_after_stage2 = result.log10_space_initial;
  }

  // ---- evolutionary search (§III-D) -----------------------------------------
  EvolutionSearch::Config evo_cfg = config_.evolution;
  evo_cfg.seed ^= config_.seed;
  evo_cfg.parallel_eval = config_.use_surrogate;
  EvolutionSearch search(space_, accuracy, *latency_model_, objective,
                         evo_cfg);
  {
    HSCONAS_TRACE_SCOPE("pipeline.evolution");
    result.evolution = search.run();
  }

  result.best_arch = result.evolution.best.arch;
  result.best_score = result.evolution.best.score;
  result.best_accuracy = result.evolution.best.accuracy;
  result.predicted_latency_ms = result.evolution.best.latency_ms;
  result.measured_latency_ms = latency_model_->measure_ms(result.best_arch);

  if (config_.verbose) {
    HSCONAS_LOG_INFO << "winner: " << result.best_arch.to_string(space_);
    HSCONAS_LOG_INFO << util::format(
        "score %.4f acc %.4f lat %.2fms (measured %.2fms, T %.1fms)",
        result.best_score, result.best_accuracy,
        result.predicted_latency_ms, result.measured_latency_ms,
        result.constraint_ms);
  }
  return result;
}

}  // namespace hsconas::core
