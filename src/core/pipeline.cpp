#include "core/pipeline.h"

#include <algorithm>
#include <filesystem>

#include "core/checkpoint.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/serial.h"
#include "util/string_util.h"

namespace hsconas::core {

util::Json pipeline_report_json(const PipelineResult& result,
                                const SearchSpace& space) {
  util::Json report = util::Json::object();
  report["winner"] = result.best_arch.to_json(space);
  report["winner_string"] = result.best_arch.to_string(space);

  util::Json metrics = util::Json::object();
  metrics["score"] = result.best_score;
  metrics["accuracy"] = result.best_accuracy;
  metrics["predicted_latency_ms"] = result.predicted_latency_ms;
  metrics["measured_latency_ms"] = result.measured_latency_ms;
  metrics["constraint_ms"] = result.constraint_ms;
  report["metrics"] = std::move(metrics);

  util::Json shrink = util::Json::object();
  shrink["log10_space_initial"] = result.log10_space_initial;
  shrink["log10_space_after_stage1"] = result.log10_space_after_stage1;
  shrink["log10_space_after_stage2"] = result.log10_space_after_stage2;
  util::Json decisions = util::Json::array();
  for (const auto* stage : {&result.stage1_decisions,
                            &result.stage2_decisions}) {
    for (const auto& d : *stage) {
      util::Json entry = util::Json::object();
      entry["layer"] = d.layer;
      entry["chosen_op"] = space.op_name(d.chosen_op);
      util::Json quality = util::Json::array();
      for (double q : d.quality) quality.push_back(q);
      entry["subspace_quality"] = std::move(quality);
      decisions.push_back(std::move(entry));
    }
  }
  shrink["decisions"] = std::move(decisions);
  report["space_shrinking"] = std::move(shrink);

  util::Json generations = util::Json::array();
  for (const auto& g : result.evolution.per_generation) {
    util::Json entry = util::Json::object();
    entry["generation"] = g.generation;
    entry["best_score"] = g.best_score;
    entry["mean_score"] = g.mean_score;
    entry["best_latency_ms"] = g.best_latency_ms;
    entry["best_accuracy"] = g.best_accuracy;
    generations.push_back(std::move(entry));
  }
  report["evolution"] = std::move(generations);

  util::Json training = util::Json::array();
  for (const auto& e : result.train_history) {
    util::Json entry = util::Json::object();
    entry["epoch"] = e.epoch;
    entry["loss"] = e.loss;
    entry["top1"] = e.top1;
    entry["lr"] = e.lr;
    training.push_back(std::move(entry));
  }
  report["supernet_training"] = std::move(training);
  return report;
}

Pipeline::Pipeline(PipelineConfig config)
    : config_(std::move(config)),
      space_(config_.space),
      device_(config_.custom_device ? *config_.custom_device
                                    : hwsim::device_by_name(config_.device)) {
  if (config_.constraint_ms <= 0.0) {
    if (config_.custom_device) {
      throw InvalidArgument(
          "Pipeline: constraint_ms is required with a custom device");
    }
    config_.constraint_ms = hwsim::default_constraint_ms(config_.device);
  }
  if (config_.checkpoint_every < 1) {
    throw InvalidArgument("Pipeline: checkpoint_every must be >= 1");
  }
  // Config::batch == 0 means "device default"; an explicit batch — 1
  // included — is honored as given. The sentinel is resolved inside
  // LatencyModel. The model itself is built (or restored from a
  // checkpoint) lazily in run().
  latency_cfg_ = config_.latency;
  latency_cfg_.seed ^= config_.seed;
}

const LatencyModel& Pipeline::latency_model() const {
  if (latency_model_ == nullptr) {
    throw Error("Pipeline::latency_model: not built yet — call run() first");
  }
  return *latency_model_;
}

std::string Pipeline::checkpoint_path(const std::string& dir) {
  return (std::filesystem::path(dir) / "pipeline.ckpt").string();
}

namespace {

// v2: evolution candidates carry the Arch::quant gene and the latency
// section may hold an int8 LUT; meta grew the search_quantization flag.
constexpr std::uint32_t kPipelineStateVersion = 2;
constexpr std::size_t kMaxQualityEntries = 4096;
constexpr std::size_t kMaxDecisions = 4096;

void write_decisions(
    util::ByteWriter& out,
    const std::vector<SpaceShrinker::LayerDecision>& decisions) {
  out.u64(decisions.size());
  for (const SpaceShrinker::LayerDecision& d : decisions) {
    out.i32(d.layer);
    out.i32(d.chosen_op);
    out.vec_f64(d.quality);
    out.i32(d.subspaces_evaluated);
  }
}

std::vector<SpaceShrinker::LayerDecision> read_decisions(
    util::ByteReader& in) {
  const std::size_t n = static_cast<std::size_t>(in.u64());
  if (n > kMaxDecisions) {
    throw Error("pipeline checkpoint: implausible shrink decision count");
  }
  std::vector<SpaceShrinker::LayerDecision> decisions;
  decisions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SpaceShrinker::LayerDecision d;
    d.layer = in.i32();
    d.chosen_op = in.i32();
    d.quality = in.vec_f64(kMaxQualityEntries);
    d.subspaces_evaluated = in.i32();
    decisions.push_back(std::move(d));
  }
  return decisions;
}

}  // namespace

PipelineResult Pipeline::run(const data::SyntheticDataset* dataset) {
  HSCONAS_TRACE_SCOPE("pipeline.run");
  PipelineResult result;
  result.constraint_ms = config_.constraint_ms;
  result.log10_space_initial = space_.log10_size();

  const Objective objective{config_.beta, config_.constraint_ms};
  const int L = space_.num_layers();
  const int per_stage =
      std::clamp(config_.shrink_layers_per_stage, 0, L / 2);

  // ---- accuracy back-end ---------------------------------------------------
  std::unique_ptr<Supernet> supernet;
  std::unique_ptr<SupernetTrainer> trainer;
  std::unique_ptr<AccuracySurrogate> surrogate;
  AccuracyFn accuracy;

  if (config_.use_surrogate) {
    surrogate = std::make_unique<AccuracySurrogate>(space_,
                                                    config_.surrogate);
    accuracy = [&s = *surrogate](const Arch& arch) { return s.accuracy(arch); };
  } else {
    if (dataset == nullptr) {
      throw InvalidArgument(
          "Pipeline: proxy mode requires a dataset (or set use_surrogate)");
    }
    supernet = std::make_unique<Supernet>(space_, config_.seed ^ 0x5e7ull);
    TrainConfig tc = config_.train;
    tc.seed ^= config_.seed;
    tc.verbose = config_.verbose;
    trainer = std::make_unique<SupernetTrainer>(*supernet, *dataset, tc);
    accuracy = [&t = *trainer, n = config_.eval_batches](const Arch& arch) {
      return t.evaluate(arch, n);
    };
  }

  // ---- resume: load checkpointed state before building dependents ----------
  const bool checkpointing = !config_.checkpoint_dir.empty();
  const std::string ckpt_path =
      checkpointing ? checkpoint_path(config_.checkpoint_dir) : std::string();

  PipelinePhase phase = PipelinePhase::kInitialTrain;
  int epochs_done = 0;  // completed epochs within the current train phase
  std::unique_ptr<CheckpointReader> restore;

  if (checkpointing && config_.resume &&
      std::filesystem::exists(ckpt_path)) {
    HSCONAS_TRACE_SCOPE("pipeline.restore");
    restore = std::make_unique<CheckpointReader>(ckpt_path);

    util::ByteReader meta(restore->section("meta"));
    const std::uint32_t state_version = meta.u32();
    if (state_version != kPipelineStateVersion) {
      throw Error("pipeline checkpoint: state version " +
                  std::to_string(state_version) + ", expected " +
                  std::to_string(kPipelineStateVersion));
    }
    const std::uint64_t seed = meta.u64();
    const std::string device = meta.str();
    const bool use_surrogate = meta.u8() != 0;
    const int ckpt_layers = meta.i32();
    const int ckpt_per_stage = meta.i32();
    const int ckpt_initial_epochs = meta.i32();
    const int ckpt_tune_epochs = meta.i32();
    const int ckpt_generations = meta.i32();
    const int ckpt_population = meta.i32();
    const double ckpt_constraint = meta.f64();
    const bool ckpt_quant = meta.u8() != 0;
    if (seed != config_.seed || device != config_.device ||
        use_surrogate != config_.use_surrogate || ckpt_layers != L ||
        ckpt_per_stage != per_stage ||
        ckpt_initial_epochs != config_.initial_epochs ||
        ckpt_tune_epochs != config_.tune_epochs ||
        ckpt_generations != config_.evolution.generations ||
        ckpt_population != config_.evolution.population ||
        ckpt_constraint != config_.constraint_ms ||
        ckpt_quant != config_.space.search_quantization) {
      throw Error(
          "pipeline checkpoint: run configuration does not match the "
          "checkpointed run in " + ckpt_path);
    }
    const int phase_value = meta.i32();
    if (phase_value < static_cast<int>(PipelinePhase::kInitialTrain) ||
        phase_value > static_cast<int>(PipelinePhase::kEvolution)) {
      throw Error("pipeline checkpoint: invalid phase " +
                  std::to_string(phase_value));
    }
    phase = static_cast<PipelinePhase>(phase_value);
    epochs_done = meta.i32();
    meta.expect_done();

    util::ByteReader space_state(restore->section("space"));
    space_.import_shrink_state(space_state);
    space_state.expect_done();

    util::ByteReader lat_state(restore->section("latency"));
    latency_model_ =
        LatencyModel::restore(space_, device_, latency_cfg_, lat_state);
    lat_state.expect_done();

    util::ByteReader result_state(restore->section("result"));
    result.stage1_decisions = read_decisions(result_state);
    result.stage2_decisions = read_decisions(result_state);
    result.log10_space_after_stage1 = result_state.f64();
    result.log10_space_after_stage2 = result_state.f64();
    result_state.expect_done();

    if (trainer) {
      util::ByteReader trainer_state(restore->section("trainer"));
      trainer->import_state(trainer_state);
      trainer_state.expect_done();
      util::ByteReader params(restore->section("params"));
      read_parameters_payload(supernet->parameters(), params);
    }
    if (config_.verbose) {
      HSCONAS_LOG_INFO << "resumed from " << ckpt_path << " at phase "
                       << phase_value << " (+" << epochs_done << " epochs)";
    }
  } else {
    HSCONAS_TRACE_SCOPE("pipeline.latency_model");
    latency_model_ =
        std::make_unique<LatencyModel>(space_, device_, latency_cfg_);
  }

  // ---- search components (restored state flows in below) -------------------
  // The surrogate is a pure function of the arch, so subspace sampling and
  // candidate scoring may fan out across the thread pool; the
  // supernet/trainer functor mutates module state per forward pass and
  // must stay serial.
  SpaceShrinker shrinker(space_, accuracy, *latency_model_, objective,
                         [&] {
                           auto c = config_.shrink;
                           c.seed ^= config_.seed;
                           c.parallel_eval = config_.use_surrogate;
                           return c;
                         }());
  EvolutionSearch::Config evo_cfg = config_.evolution;
  evo_cfg.seed ^= config_.seed;
  evo_cfg.parallel_eval = config_.use_surrogate;
  EvolutionSearch search(space_, accuracy, *latency_model_, objective,
                         evo_cfg);

  if (restore) {
    util::ByteReader shrinker_state(restore->section("shrinker"));
    shrinker.import_state(shrinker_state);
    shrinker_state.expect_done();
    util::ByteReader evo_state(restore->section("evolution"));
    search.import_state(evo_state);
    evo_state.expect_done();
    restore.reset();
  }

  // ---- snapshotting --------------------------------------------------------
  int snapshot_index = 0;
  const auto save_snapshot = [&](PipelinePhase at_phase,
                                 int at_epochs_done) {
    if (!checkpointing) return;
    HSCONAS_TRACE_SCOPE("pipeline.snapshot");
    CheckpointWriter writer;

    util::ByteWriter meta;
    meta.u32(kPipelineStateVersion);
    meta.u64(config_.seed);
    meta.str(config_.device);
    meta.u8(config_.use_surrogate ? 1 : 0);
    meta.i32(L);
    meta.i32(per_stage);
    meta.i32(config_.initial_epochs);
    meta.i32(config_.tune_epochs);
    meta.i32(config_.evolution.generations);
    meta.i32(config_.evolution.population);
    meta.f64(config_.constraint_ms);
    meta.u8(config_.space.search_quantization ? 1 : 0);
    meta.i32(static_cast<int>(at_phase));
    meta.i32(at_epochs_done);
    writer.add_section("meta", meta.take());

    util::ByteWriter space_state;
    space_.export_shrink_state(space_state);
    writer.add_section("space", space_state.take());

    util::ByteWriter lat_state;
    latency_model_->export_state(lat_state);
    writer.add_section("latency", lat_state.take());

    util::ByteWriter result_state;
    write_decisions(result_state, result.stage1_decisions);
    write_decisions(result_state, result.stage2_decisions);
    result_state.f64(result.log10_space_after_stage1);
    result_state.f64(result.log10_space_after_stage2);
    writer.add_section("result", result_state.take());

    util::ByteWriter shrinker_state;
    shrinker.export_state(shrinker_state);
    writer.add_section("shrinker", shrinker_state.take());

    util::ByteWriter evo_state;
    search.export_state(evo_state);
    writer.add_section("evolution", evo_state.take());

    if (trainer) {
      util::ByteWriter trainer_state;
      trainer->export_state(trainer_state);
      writer.add_section("trainer", trainer_state.take());
      writer.add_section("params",
                         write_parameters_payload(supernet->parameters()));
    }
    writer.save(ckpt_path);
    if (config_.on_snapshot) config_.on_snapshot(snapshot_index);
    ++snapshot_index;
  };

  if (checkpointing) {
    std::filesystem::create_directories(config_.checkpoint_dir);
  }

  // Mid-phase training snapshots: after every checkpoint_every-th epoch,
  // except the phase's last (the phase-transition snapshot covers it).
  const auto epoch_snapshots = [&](PipelinePhase at_phase, int total) {
    return [&, at_phase, total](int e, const EpochStats&) {
      const int done = e + 1;
      if (done < total && done % config_.checkpoint_every == 0) {
        save_snapshot(at_phase, done);
      }
    };
  };

  // ---- phase machine (Fig. 1 order; each arm falls through to the next) ----
  if (phase == PipelinePhase::kInitialTrain) {
    if (trainer) {
      if (config_.verbose) {
        HSCONAS_LOG_INFO << "training supernet for "
                         << config_.initial_epochs << " epochs ("
                         << supernet->param_count() << " params)";
      }
      HSCONAS_TRACE_SCOPE("pipeline.supernet_train");
      trainer->run(config_.initial_epochs, -1.0, epochs_done,
                   epoch_snapshots(phase, config_.initial_epochs));
    }
    phase = PipelinePhase::kShrinkStage1;
    epochs_done = 0;
    save_snapshot(phase, 0);
  }

  if (per_stage == 0) {
    // No shrink stages: the space is already final.
    result.log10_space_after_stage1 = result.log10_space_initial;
    result.log10_space_after_stage2 = result.log10_space_initial;
    if (phase != PipelinePhase::kEvolution) {
      phase = PipelinePhase::kEvolution;
    }
  }

  if (phase == PipelinePhase::kShrinkStage1) {
    HSCONAS_TRACE_SCOPE("pipeline.space_shrinking");
    result.stage1_decisions = shrinker.shrink_stage(L - 1, per_stage);
    result.log10_space_after_stage1 = space_.log10_size();
    phase = PipelinePhase::kTuneStage1;
    epochs_done = 0;
    save_snapshot(phase, 0);
  }

  if (phase == PipelinePhase::kTuneStage1) {
    if (trainer) {
      HSCONAS_TRACE_SCOPE("pipeline.tune_stage1");
      trainer->run(config_.tune_epochs, config_.tune_lr_stage1, epochs_done,
                   epoch_snapshots(phase, config_.tune_epochs));
    }
    phase = PipelinePhase::kShrinkStage2;
    epochs_done = 0;
    save_snapshot(phase, 0);
  }

  if (phase == PipelinePhase::kShrinkStage2) {
    HSCONAS_TRACE_SCOPE("pipeline.space_shrinking");
    result.stage2_decisions =
        shrinker.shrink_stage(L - 1 - per_stage, per_stage);
    result.log10_space_after_stage2 = space_.log10_size();
    phase = PipelinePhase::kTuneStage2;
    epochs_done = 0;
    save_snapshot(phase, 0);
  }

  if (phase == PipelinePhase::kTuneStage2) {
    if (trainer) {
      HSCONAS_TRACE_SCOPE("pipeline.tune_stage2");
      trainer->run(config_.tune_epochs, config_.tune_lr_stage2, epochs_done,
                   epoch_snapshots(phase, config_.tune_epochs));
    }
    phase = PipelinePhase::kEvolution;
    epochs_done = 0;
    save_snapshot(phase, 0);
  }

  // ---- evolutionary search (§III-D) ----------------------------------------
  {
    HSCONAS_TRACE_SCOPE("pipeline.evolution");
    result.evolution = search.run([&](int generation) {
      // generation == -1: initial population scored. Always snapshot that
      // (it is the most expensive single step to lose), then every
      // checkpoint_every-th completed generation.
      if (generation == -1 ||
          (generation + 1) % config_.checkpoint_every == 0) {
        save_snapshot(PipelinePhase::kEvolution, 0);
      }
    });
  }

  if (trainer) result.train_history = trainer->history();

  result.best_arch = result.evolution.best.arch;
  result.best_score = result.evolution.best.score;
  result.best_accuracy = result.evolution.best.accuracy;
  result.predicted_latency_ms = result.evolution.best.latency_ms;
  result.measured_latency_ms = latency_model_->measure_ms(result.best_arch);

  if (config_.verbose) {
    HSCONAS_LOG_INFO << "winner: " << result.best_arch.to_string(space_);
    HSCONAS_LOG_INFO << util::format(
        "score %.4f acc %.4f lat %.2fms (measured %.2fms, T %.1fms)",
        result.best_score, result.best_accuracy,
        result.predicted_latency_ms, result.measured_latency_ms,
        result.constraint_ms);
  }
  return result;
}

}  // namespace hsconas::core
