#pragma once

#include "core/arch.h"
#include "core/search_space.h"
#include "hwsim/op_descriptor.h"

namespace hsconas::core {

/// Lowering from architecture space to the device simulator's primitive-op
/// descriptors. This mirrors, operator for operator, the nn::
/// ShuffleChoiceBlock structure, so the latency model prices exactly the
/// network the training substrate executes (a unit test asserts the MAC
/// counts of the two paths agree).
///
/// BatchNorm+activation pairs lower to one kElementwise op each (inference
/// runtimes fuse them with at most one extra pass over the tensor);
/// channel shuffles lower to kShuffle. A stride-1 skip lowers to an empty
/// layer — no kernels launched — though it still occupies a layer boundary
/// for communication purposes.

/// One searchable layer under a concrete (operator, channel factor) choice
/// from the ShuffleNetV2 family (the paper's space).
hwsim::LayerDesc lower_layer(const LayerInfo& info, nn::BlockKind kind,
                             double channel_factor);

/// Family-dispatching variant: lowers operator index `op` of `family`.
hwsim::LayerDesc lower_layer(const LayerInfo& info, nn::OpFamily family,
                             int op, double channel_factor);

/// The fixed stem (conv3x3 + BN/ReLU).
hwsim::LayerDesc lower_stem(const SearchSpaceConfig& config);

/// The fixed head (1×1 conv + BN/ReLU + global pool + classifier).
hwsim::LayerDesc lower_head(const SearchSpaceConfig& config,
                            long body_out_size);

/// Whole network: stem + L searchable layers + head.
hwsim::NetworkDesc lower_network(const Arch& arch, const SearchSpace& space);

/// Lowering knobs. Defaults reproduce the classic lowering exactly.
struct LoweringOptions {
  /// Price conv→bn→act as one fused writeback (the nn fused-epilogue
  /// path): each conv's trailing kElementwise op is dropped via
  /// hwsim::fuse_conv_epilogues. MACs are unchanged; the memory-bound op
  /// count and activation traffic shrink.
  bool fuse_conv_epilogues = false;

  /// Force every lowered op to this dtype, regardless of Arch::quant
  /// (which lower_network honors on its own: quant == 1 archs lower to
  /// int8-priced descriptors). kF32 means "no override".
  hwsim::DataType dtype = hwsim::DataType::kF32;
};

/// Whole network with explicit lowering options.
hwsim::NetworkDesc lower_network(const Arch& arch, const SearchSpace& space,
                                 const LoweringOptions& opts);

/// Analytic compute/parameter counters (per sample).
double arch_macs(const Arch& arch, const SearchSpace& space);
double arch_params(const Arch& arch, const SearchSpace& space);

}  // namespace hsconas::core
