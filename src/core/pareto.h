#pragma once

#include <vector>

#include "core/evolution.h"

namespace hsconas::core {

/// Multi-objective extension of the EA: instead of collapsing accuracy and
/// latency into the scalar F of Eq. 1 (which needs a pre-chosen T), evolve
/// the whole accuracy-latency *front* with NSGA-II-style selection
/// (fast non-dominated sorting + crowding distance). One run then serves
/// every latency budget — useful when the deployment constraint is not yet
/// fixed, and a natural companion to the paper's single-T formulation.
class ParetoSearch {
 public:
  struct Config {
    int generations = 20;
    int population = 60;
    double crossover_prob = 0.25;
    double mutation_prob = 0.25;
    double gene_mutation_prob = 0.1;
    std::uint64_t seed = 5150;
  };

  using Candidate = EvolutionSearch::Candidate;  // score field unused

  struct Result {
    /// Final non-dominated front, sorted by latency ascending.
    std::vector<Candidate> front;
    /// Front size per generation (convergence diagnostics).
    std::vector<int> front_size_history;
    /// Hypervolume-ish progress: best accuracy seen below the median
    /// latency of the initial population, per generation.
    std::vector<double> best_acc_below_median;
  };

  ParetoSearch(const SearchSpace& space, AccuracyFn accuracy,
               const LatencyModel& latency, Config config);

  Result run();

  /// a dominates b iff a is no worse in both objectives and strictly
  /// better in at least one (maximize accuracy, minimize latency).
  static bool dominates(const Candidate& a, const Candidate& b);

  /// Indices of the non-dominated subset of `candidates`.
  static std::vector<std::size_t> non_dominated(
      const std::vector<Candidate>& candidates);

 private:
  std::vector<std::vector<std::size_t>> sort_fronts(
      const std::vector<Candidate>& pop) const;
  std::vector<double> crowding(const std::vector<Candidate>& pop,
                               const std::vector<std::size_t>& front) const;
  Candidate evaluate(Arch arch);

  const SearchSpace& space_;
  AccuracyFn accuracy_;
  const LatencyModel& latency_;
  Config config_;
  util::Rng rng_;
};

}  // namespace hsconas::core
