#include "core/arch.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/error.h"
#include "util/string_util.h"

namespace hsconas::core {

std::uint64_t Arch::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a over the genes
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  for (std::size_t i = 0; i < ops.size(); ++i) {
    mix(static_cast<std::uint64_t>(ops[i]) + 1);
    mix((static_cast<std::uint64_t>(factors[i]) + 1) << 8);
  }
  // Mixed only when set, so every pre-quantization fp32 hash — dedup sets
  // in existing checkpoints, the surrogate's hash-seeded residuals — is
  // unchanged by the quant gene's existence.
  if (quant != 0) mix((static_cast<std::uint64_t>(quant) + 1) << 16);
  return h;
}

std::string Arch::to_string(const SearchSpace& space) const {
  std::vector<std::string> parts;
  parts.reserve(ops.size());
  for (std::size_t l = 0; l < ops.size(); ++l) {
    const double factor =
        space.config().channel_factors.at(static_cast<std::size_t>(factors[l]));
    parts.push_back(util::format("%s@%.1f", space.op_name(ops[l]), factor));
  }
  const std::string body = util::join(parts, " | ");
  return quant != 0 ? "int8:: " + body : body;
}

util::Json Arch::to_json(const SearchSpace& space) const {
  util::Json layers = util::Json::array();
  for (std::size_t l = 0; l < ops.size(); ++l) {
    util::Json entry = util::Json::object();
    entry["layer"] = static_cast<long long>(l);
    entry["op"] = space.op_name(ops[l]);
    entry["channel_factor"] =
        space.config().channel_factors.at(static_cast<std::size_t>(factors[l]));
    layers.push_back(std::move(entry));
  }
  util::Json out = util::Json::object();
  out["layers"] = std::move(layers);
  out["dtype"] = std::string(quant != 0 ? "int8" : "f32");
  return out;
}

Arch Arch::random(const SearchSpace& space, util::Rng& rng) {
  Arch arch;
  const int L = space.num_layers();
  arch.ops.reserve(static_cast<std::size_t>(L));
  arch.factors.reserve(static_cast<std::size_t>(L));
  for (int l = 0; l < L; ++l) {
    arch.ops.push_back(rng.choice(space.allowed_ops(l)));
    arch.factors.push_back(rng.choice(space.allowed_factors(l)));
  }
  // Drawn only when the space searches quantization, so seeded streams of
  // quantization-free runs are byte-identical to the pre-quant code.
  if (space.config().search_quantization) {
    arch.quant = rng.bernoulli(0.5) ? 1 : 0;
  }
  return arch;
}

Arch Arch::random_with_fixed_op(const SearchSpace& space, util::Rng& rng,
                                int fixed_layer, int fixed_op) {
  Arch arch = random(space, rng);
  HSCONAS_CHECK_MSG(fixed_layer >= 0 && fixed_layer < arch.num_layers(),
                    "random_with_fixed_op: layer out of range");
  arch.ops[static_cast<std::size_t>(fixed_layer)] = fixed_op;
  return arch;
}

Arch Arch::from_string(const SearchSpace& space, const std::string& s) {
  Arch arch;
  std::string body = util::trim(s);
  constexpr const char kQuantPrefix[] = "int8::";
  if (body.rfind(kQuantPrefix, 0) == 0) {
    arch.quant = 1;
    body = body.substr(sizeof(kQuantPrefix) - 1);
  }
  for (const std::string& raw : util::split(body, '|')) {
    const std::string token = util::trim(raw);
    if (token.empty()) {
      throw InvalidArgument("Arch::from_string: empty layer token");
    }
    const std::size_t at = token.find('@');
    if (at == std::string::npos) {
      throw InvalidArgument("Arch::from_string: token '" + token +
                            "' lacks '@factor'");
    }
    const std::string op_name = util::trim(token.substr(0, at));
    const std::string factor_str = util::trim(token.substr(at + 1));

    int op = -1;
    for (int k = 0; k < space.config().num_ops; ++k) {
      if (op_name == space.op_name(k)) {
        op = k;
        break;
      }
    }
    if (op < 0) {
      throw InvalidArgument("Arch::from_string: unknown operator '" +
                            op_name + "'");
    }

    char* end = nullptr;
    const double factor = std::strtod(factor_str.c_str(), &end);
    if (end == factor_str.c_str() || *end != '\0') {
      throw InvalidArgument("Arch::from_string: bad factor '" + factor_str +
                            "'");
    }
    int factor_idx = -1;
    const auto& factors = space.config().channel_factors;
    for (std::size_t i = 0; i < factors.size(); ++i) {
      if (std::abs(factors[i] - factor) < 1e-9) {
        factor_idx = static_cast<int>(i);
        break;
      }
    }
    if (factor_idx < 0) {
      throw InvalidArgument("Arch::from_string: factor '" + factor_str +
                            "' is not in the space's factor list");
    }
    arch.ops.push_back(op);
    arch.factors.push_back(factor_idx);
  }
  arch.validate(space);
  return arch;
}

void Arch::validate(const SearchSpace& space) const {
  const int L = space.num_layers();
  if (static_cast<int>(ops.size()) != L ||
      static_cast<int>(factors.size()) != L) {
    throw InvalidArgument(util::format(
        "Arch: expected %d layers, got %zu ops / %zu factors", L, ops.size(),
        factors.size()));
  }
  const int K = space.config().num_ops;
  const int F = static_cast<int>(space.config().channel_factors.size());
  for (int l = 0; l < L; ++l) {
    if (ops[static_cast<std::size_t>(l)] < 0 ||
        ops[static_cast<std::size_t>(l)] >= K) {
      throw InvalidArgument("Arch: op index out of range");
    }
    if (factors[static_cast<std::size_t>(l)] < 0 ||
        factors[static_cast<std::size_t>(l)] >= F) {
      throw InvalidArgument("Arch: channel factor index out of range");
    }
  }
  if (quant != 0 && quant != 1) {
    throw InvalidArgument("Arch: quant gene must be 0 (fp32) or 1 (int8)");
  }
}

bool Arch::in_space(const SearchSpace& space) const {
  if (num_layers() != space.num_layers()) return false;
  if (quant != 0 && !space.config().search_quantization) return false;
  for (int l = 0; l < num_layers(); ++l) {
    const auto& ops_l = space.allowed_ops(l);
    const auto& factors_l = space.allowed_factors(l);
    if (std::find(ops_l.begin(), ops_l.end(),
                  ops[static_cast<std::size_t>(l)]) == ops_l.end()) {
      return false;
    }
    if (std::find(factors_l.begin(), factors_l.end(),
                  factors[static_cast<std::size_t>(l)]) == factors_l.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace hsconas::core
