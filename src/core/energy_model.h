#pragma once

#include <vector>

#include "core/arch.h"
#include "core/latency_model.h"
#include "core/lowering.h"
#include "core/search_space.h"
#include "hwsim/energy.h"

namespace hsconas::core {

/// Energy analogue of the Eq. 2–3 latency model, implementing the paper's
/// §V future-work direction: per-(layer, operator, factor) *dynamic*
/// energies profiled in isolation, summed per architecture, plus the
/// static-power draw integrated over the latency model's runtime estimate,
/// plus a scalar bias recovering what neither captures (inter-layer
/// hand-off traffic).
///
/// The static-power coupling matters: on small networks most energy is
/// static_watts × latency, which varies per architecture and therefore
/// cannot live in a constant bias.
class EnergyModel {
 public:
  struct Config {
    int batch = 1;
    int bias_samples = 50;
    std::uint64_t seed = 321;
    bool measurement_noise = true;
  };

  /// `latency` is optional but strongly recommended (see above); pass
  /// nullptr to fall back to a pure LUT + constant-bias model. Referenced
  /// objects must outlive the model.
  EnergyModel(const SearchSpace& space, const hwsim::EnergySimulator& energy,
              Config config, const LatencyModel* latency = nullptr);

  /// LUT sum + bias, millijoules per batch.
  double predict_mj(const Arch& arch) const;
  double predict_uncorrected_mj(const Arch& arch) const;

  /// Simulated "on-device" measurement (advances the noise stream).
  double measure_mj(const Arch& arch);
  double true_mj(const Arch& arch) const;

  double bias_mj() const { return bias_; }
  double lut_mj(int layer, int op, int factor) const;
  const SearchSpace& space() const { return space_; }

 private:
  void build_lut();
  void calibrate_bias();

  const SearchSpace& space_;
  const hwsim::EnergySimulator& energy_;
  const LatencyModel* latency_;
  Config config_;
  util::Rng noise_rng_;
  std::vector<double> lut_;
  double stem_mj_ = 0.0;
  double head_mj_ = 0.0;
  double bias_ = 0.0;
};

}  // namespace hsconas::core
