#include "core/search_space.h"

#include <cmath>

#include "util/error.h"

namespace hsconas::core {

int SearchSpaceConfig::num_layers() const {
  int total = 0;
  for (int b : stage_blocks) total += b;
  return total;
}

double SearchSpaceConfig::log10_space_size() const {
  const double per_layer =
      static_cast<double>(num_ops) *
      static_cast<double>(channel_factors.size());
  return static_cast<double>(num_layers()) * std::log10(per_layer);
}

SearchSpaceConfig SearchSpaceConfig::imagenet_layout_a() {
  SearchSpaceConfig cfg;  // defaults are layout A
  return cfg;
}

SearchSpaceConfig SearchSpaceConfig::imagenet_layout_b() {
  SearchSpaceConfig cfg;
  cfg.stage_channels = {68, 168, 336, 672};
  return cfg;
}

SearchSpaceConfig SearchSpaceConfig::with_family(
    nn::OpFamily new_family) const {
  SearchSpaceConfig cfg = *this;
  cfg.family = new_family;
  cfg.num_ops = nn::family_num_ops(new_family);
  return cfg;
}

SearchSpaceConfig SearchSpaceConfig::proxy(int num_classes, long image_size,
                                           int blocks_per_stage) {
  SearchSpaceConfig cfg;
  cfg.stage_blocks = {blocks_per_stage, blocks_per_stage, blocks_per_stage};
  cfg.stage_channels = {16, 32, 64};
  // Keep the first stage at full resolution: proxy images are small. The
  // stem must then already produce stage-0 width, because stride-1 shuffle
  // blocks cannot change channel counts.
  cfg.stage_downsample = {false, true, true};
  cfg.stem_channels = 16;
  cfg.head_channels = 128;
  cfg.stem_stride2 = false;
  cfg.input_size = image_size;
  cfg.num_classes = num_classes;
  return cfg;
}

void SearchSpaceConfig::validate() const {
  if (stage_blocks.empty() ||
      stage_blocks.size() != stage_channels.size() ||
      stage_blocks.size() != stage_downsample.size()) {
    throw InvalidArgument("SearchSpaceConfig: stage vectors inconsistent");
  }
  for (int b : stage_blocks) {
    if (b < 1) throw InvalidArgument("SearchSpaceConfig: empty stage");
  }
  for (long c : stage_channels) {
    if (c < 2 || c % 2 != 0) {
      throw InvalidArgument(
          "SearchSpaceConfig: stage channels must be even and >= 2");
    }
  }
  if (num_ops < 1 || num_ops > nn::family_num_ops(family)) {
    throw InvalidArgument("SearchSpaceConfig: num_ops out of range");
  }
  if (channel_factors.empty()) {
    throw InvalidArgument("SearchSpaceConfig: no channel factors");
  }
  for (double f : channel_factors) {
    if (f <= 0.0 || f > 1.0) {
      throw InvalidArgument(
          "SearchSpaceConfig: channel factors must be in (0, 1]");
    }
  }
  if (stem_channels < 1 || head_channels < 1 || input_channels < 1 ||
      input_size < 4 || num_classes < 2) {
    throw InvalidArgument("SearchSpaceConfig: degenerate geometry");
  }
}

SearchSpace::SearchSpace(SearchSpaceConfig config)
    : config_(std::move(config)) {
  config_.validate();

  long size = config_.input_size;
  if (config_.stem_stride2) size = (size + 1) / 2;
  body_input_size_ = size;

  long in_ch = config_.stem_channels;
  int index = 0;
  for (std::size_t stage = 0; stage < config_.stage_blocks.size(); ++stage) {
    const long out_ch = config_.stage_channels[stage];
    for (int b = 0; b < config_.stage_blocks[stage]; ++b) {
      LayerInfo info;
      info.index = index;
      info.stage = static_cast<int>(stage);
      const bool down = (b == 0) && config_.stage_downsample[stage];
      info.stride = down ? 2 : 1;
      info.in_channels = (b == 0) ? in_ch : out_ch;
      info.out_channels = out_ch;
      info.in_h = size;
      info.in_w = size;
      if (info.stride == 1 && info.in_channels != info.out_channels) {
        throw InvalidArgument(
            "SearchSpace: stride-1 layers cannot change channel count "
            "(stage entered at width " + std::to_string(info.in_channels) +
            " but wants " + std::to_string(info.out_channels) +
            "); add a downsample or align the widths");
      }
      if (down && size < 2) {
        throw InvalidArgument(
            "SearchSpace: input size too small for the stage layout");
      }
      if (down) size = (size + 1) / 2;
      layers_.push_back(info);
      ++index;
    }
    in_ch = out_ch;
  }

  std::vector<int> all_ops, all_factors;
  for (int op = 0; op < config_.num_ops; ++op) all_ops.push_back(op);
  for (int f = 0; f < static_cast<int>(config_.channel_factors.size()); ++f) {
    all_factors.push_back(f);
  }
  allowed_ops_.assign(layers_.size(), all_ops);
  allowed_factors_.assign(layers_.size(), all_factors);
}

const std::vector<int>& SearchSpace::allowed_ops(int l) const {
  return allowed_ops_.at(static_cast<std::size_t>(l));
}

const std::vector<int>& SearchSpace::allowed_factors(int l) const {
  return allowed_factors_.at(static_cast<std::size_t>(l));
}

void SearchSpace::fix_op(int l, int op) {
  if (!op_allowed(l, op)) {
    throw InvalidArgument("SearchSpace::fix_op: operator not allowed");
  }
  allowed_ops_.at(static_cast<std::size_t>(l)) = {op};
}

bool SearchSpace::is_fixed(int l) const {
  return allowed_ops_.at(static_cast<std::size_t>(l)).size() == 1;
}

double SearchSpace::log10_size() const {
  double log_size = 0.0;
  for (std::size_t l = 0; l < allowed_ops_.size(); ++l) {
    log_size += std::log10(static_cast<double>(allowed_ops_[l].size()) *
                           static_cast<double>(allowed_factors_[l].size()));
  }
  return log_size;
}

bool SearchSpace::op_allowed(int l, int op) const {
  if (l < 0 || l >= num_layers()) return false;
  return op >= 0 && op < config_.num_ops;
}

void SearchSpace::export_shrink_state(util::ByteWriter& out) const {
  out.u32(static_cast<std::uint32_t>(layers_.size()));
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    out.vec_i32(allowed_ops_[l]);
    out.vec_i32(allowed_factors_[l]);
  }
}

void SearchSpace::import_shrink_state(util::ByteReader& in) {
  const std::uint32_t L = in.u32();
  if (L != layers_.size()) {
    throw Error("SearchSpace: checkpoint has " + std::to_string(L) +
                " layers, space has " + std::to_string(layers_.size()));
  }
  const int F = static_cast<int>(config_.channel_factors.size());
  std::vector<std::vector<int>> ops(L), factors(L);
  for (std::uint32_t l = 0; l < L; ++l) {
    ops[l] = in.vec_i32(static_cast<std::size_t>(config_.num_ops));
    factors[l] = in.vec_i32(static_cast<std::size_t>(F));
    if (ops[l].empty() || factors[l].empty()) {
      throw Error("SearchSpace: empty allowed list in checkpoint");
    }
    for (int op : ops[l]) {
      if (op < 0 || op >= config_.num_ops) {
        throw Error("SearchSpace: checkpoint op index out of range");
      }
    }
    for (int f : factors[l]) {
      if (f < 0 || f >= F) {
        throw Error("SearchSpace: checkpoint factor index out of range");
      }
    }
  }
  allowed_ops_ = std::move(ops);
  allowed_factors_ = std::move(factors);
}

}  // namespace hsconas::core
