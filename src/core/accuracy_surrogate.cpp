#include "core/accuracy_surrogate.h"

#include <algorithm>
#include <cmath>

#include "core/lowering.h"
#include "nn/blocks.h"
#include "util/rng.h"

namespace hsconas::core {

AccuracySurrogate::AccuracySurrogate(const SearchSpace& space)
    : AccuracySurrogate(space, Config()) {}

AccuracySurrogate::AccuracySurrogate(const SearchSpace& space, Config config)
    : space_(space), config_(config) {}

double AccuracySurrogate::top1_error(const Arch& arch) const {
  arch.validate(space_);

  const double gmacs = arch_macs(arch, space_) / 1e9;
  double err = config_.base_err +
               config_.scale / std::pow(std::max(gmacs, 1e-4),
                                        config_.exponent);

  // Information-bottleneck penalty: very narrow layers throttle the whole
  // network regardless of total compute.
  int skips = 0;
  for (int l = 0; l < arch.num_layers(); ++l) {
    if (nn::family_op_is_skip(space_.config().family,
                              arch.ops[static_cast<std::size_t>(l)])) {
      ++skips;
      continue;  // skips carry no width of their own
    }
    const double c = space_.config().channel_factors.at(
        static_cast<std::size_t>(arch.factors[static_cast<std::size_t>(l)]));
    err += config_.bottleneck_penalty *
           std::max(0.0, config_.bottleneck_knee - c);
  }

  // Depth loss: a few skips are benign (the space uses them for latency),
  // but gutting the network costs accuracy beyond the compute term.
  err += config_.skip_penalty *
         std::max(0, skips - config_.skip_budget);

  // Post-training quantization gap: a fixed toll, not compute-dependent —
  // per-channel int8 PTQ loses roughly the same fraction of a point across
  // the mobile-network families the paper searches over.
  if (arch.quant != 0) err += config_.int8_error;

  // Deterministic per-arch residual: same arch, same answer.
  util::Rng rng(arch.hash());
  err += config_.noise_sigma * rng.normal();

  return std::clamp(err, 1.0, 95.0);
}

double AccuracySurrogate::top5_from_top1(double top1_error) {
  // Linear fit on the paper's published (top-1, top-5) pairs.
  return std::max(0.5, 0.638 * top1_error - 8.3);
}

}  // namespace hsconas::core
