#pragma once

#include "core/arch.h"
#include "core/search_space.h"

namespace hsconas::core {

/// ImageNet-accuracy surrogate for paper-scale experiments (see DESIGN.md,
/// substitution table): a capacity model mapping an architecture's compute,
/// width profile, and depth to an estimated ImageNet top-1 error.
///
/// The coefficients are calibrated against the published operating points
/// of the Table I networks so that (a) full-width layout-A/B candidates
/// land at the error levels the paper reports for HSCoNets, and (b) the
/// error degrades smoothly as channel scaling and skip operators remove
/// capacity — the monotone relationship every search decision relies on.
///
/// Determinism: the per-architecture residual "noise" is seeded from the
/// arch hash, so repeated queries agree (the EA requires a stable fitness).
class AccuracySurrogate {
 public:
  struct Config {
    double base_err = 20.45;   ///< asymptotic top-1 error offset (%)
    double scale = 1.54;       ///< compute-term coefficient
    double exponent = 0.62;    ///< err ~ scale / gmacs^exponent
    double bottleneck_penalty = 2.0;  ///< per unit of (0.3 − cˡ), summed
    double bottleneck_knee = 0.3;     ///< factors below this start hurting
    double skip_penalty = 0.25;       ///< per skip beyond the budget
    int skip_budget = 4;
    double noise_sigma = 0.15;  ///< deterministic residual stddev (%)
    /// Top-1 error added when the arch runs int8 post-training-quantized
    /// inference (Arch::quant == 1) — the typical PTQ gap of mobile-class
    /// networks with per-channel weight quantization.
    double int8_error = 0.8;
  };

  explicit AccuracySurrogate(const SearchSpace& space);
  AccuracySurrogate(const SearchSpace& space, Config config);

  /// Estimated ImageNet top-1 error, percent.
  double top1_error(const Arch& arch) const;

  /// Estimated top-1 accuracy fraction in [0, 1] — the ACC(·) of Eq. 1.
  double accuracy(const Arch& arch) const {
    return 1.0 - top1_error(arch) / 100.0;
  }

  /// Companion top-5 error from the empirical top1→top5 line fitted on the
  /// published Table I points (e.g. 25.1 → 7.7, 23.5 → 6.7).
  static double top5_from_top1(double top1_error);

 private:
  const SearchSpace& space_;
  Config config_;
};

}  // namespace hsconas::core
