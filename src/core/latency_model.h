#pragma once

#include <vector>

#include "core/arch.h"
#include "core/lowering.h"
#include "core/search_space.h"
#include "hwsim/device.h"

namespace hsconas::core {

/// The paper's hardware performance model (§III-A, Eq. 2–3):
///
///   LAT(arch) = Σ_l lut[l][opˡ][cˡ] + B
///
/// The LUT holds each layer-operator-factor latency profiled *in
/// isolation* on the target device (here: the device simulator), exactly
/// the way the authors profile single ops on hardware — so it misses
/// whatever whole-network effects exist (inter-layer communication,
/// scheduling). The scalar bias B is estimated from M end-to-end
/// measurements (Eq. 3) and recovers that gap on average.
class LatencyModel {
 public:
  struct Config {
    int batch = 1;             ///< batch size for profiling & measurement
    int bias_samples = 50;     ///< M of Eq. 3
    std::uint64_t seed = 123;  ///< RNG for bias sampling + measurement noise
    bool measurement_noise = true;
  };

  /// Builds the LUT (L × K × |C| entries + stem/head constants) and
  /// calibrates B per Eq. 3. The space reference must outlive the model.
  LatencyModel(const SearchSpace& space, const hwsim::DeviceSimulator& device,
               Config config);

  /// Eq. 2: LUT sum + B. O(L) per call.
  double predict_ms(const Arch& arch) const;

  /// LUT sum without the bias correction (the Fig. 3 "before" series).
  double predict_uncorrected_ms(const Arch& arch) const;

  /// "On-device" ground truth from the simulator, with measurement jitter
  /// when enabled. Non-const: advances the noise stream.
  double measure_ms(const Arch& arch);

  /// Noise-free ground truth expectation.
  double true_ms(const Arch& arch) const;

  double bias_ms() const { return bias_; }
  int batch() const { return config_.batch; }
  const hwsim::DeviceSimulator& device() const { return device_; }
  const SearchSpace& space() const { return space_; }

  /// LUT entry for one (layer, op, factor) tuple — exposed for tests and
  /// for the Fig. 3 bench's per-layer breakdown.
  double lut_ms(int layer, int op, int factor) const;
  double stem_ms() const { return stem_ms_; }
  double head_ms() const { return head_ms_; }

 private:
  void build_lut();
  void calibrate_bias();

  const SearchSpace& space_;
  const hwsim::DeviceSimulator& device_;
  Config config_;
  util::Rng noise_rng_;

  // lut_[((l * K) + op) * F + factor]
  std::vector<double> lut_;
  double stem_ms_ = 0.0;
  double head_ms_ = 0.0;
  double bias_ = 0.0;
};

}  // namespace hsconas::core
