#pragma once

#include <memory>
#include <vector>

#include "core/arch.h"
#include "core/lowering.h"
#include "core/search_space.h"
#include "hwsim/device.h"

namespace hsconas::core {

/// The paper's hardware performance model (§III-A, Eq. 2–3):
///
///   LAT(arch) = Σ_l lut[l][opˡ][cˡ] + B
///
/// The LUT holds each layer-operator-factor latency profiled *in
/// isolation* on the target device (here: the device simulator), exactly
/// the way the authors profile single ops on hardware — so it misses
/// whatever whole-network effects exist (inter-layer communication,
/// scheduling). The scalar bias B is estimated from M end-to-end
/// measurements (Eq. 3) and recovers that gap on average.
class LatencyModel {
 public:
  struct Config {
    /// Batch size for profiling & measurement. 0 means "unset": the
    /// constructor resolves it to the device profile's default batch, so
    /// an explicitly requested batch of 1 is honored as 1.
    int batch = 0;
    int bias_samples = 50;     ///< M of Eq. 3
    std::uint64_t seed = 123;  ///< RNG for bias sampling + measurement noise
    bool measurement_noise = true;
  };

  /// Builds the LUT (L × K × |C| entries + stem/head constants) and
  /// calibrates B per Eq. 3. The space reference must outlive the model.
  LatencyModel(const SearchSpace& space, const hwsim::DeviceSimulator& device,
               Config config);

  /// Rebuild a model from checkpointed state (export_state) WITHOUT
  /// re-profiling the LUT or re-running the M bias probes — on real
  /// hardware those device probes are the expensive artifact a resumed run
  /// must not repeat. Dimensions are validated against `space`.
  static std::unique_ptr<LatencyModel> restore(
      const SearchSpace& space, const hwsim::DeviceSimulator& device,
      Config config, util::ByteReader& in);

  /// Serialize the LUT, stem/head constants, calibrated bias B and the
  /// measurement-noise RNG stream.
  void export_state(util::ByteWriter& out) const;

  /// Eq. 2: LUT sum + B. O(L) per call.
  double predict_ms(const Arch& arch) const;

  /// LUT sum without the bias correction (the Fig. 3 "before" series).
  double predict_uncorrected_ms(const Arch& arch) const;

  /// "On-device" ground truth from the simulator, with measurement jitter
  /// when enabled. Non-const: advances the noise stream.
  double measure_ms(const Arch& arch);

  /// Noise-free ground truth expectation.
  double true_ms(const Arch& arch) const;

  double bias_ms() const { return bias_; }
  int batch() const { return config_.batch; }
  const hwsim::DeviceSimulator& device() const { return device_; }
  const SearchSpace& space() const { return space_; }

  /// LUT entry for one (layer, op, factor) tuple — exposed for tests and
  /// for the Fig. 3 bench's per-layer breakdown.
  double lut_ms(int layer, int op, int factor) const;
  double stem_ms() const { return stem_ms_; }
  double head_ms() const { return head_ms_; }

  /// int8 LUT entry — valid only when the space searches quantization
  /// (quantized() is true); throws Error otherwise.
  double lut_i8_ms(int layer, int op, int factor) const;
  /// True when this model also profiled the int8 LUT (the space has
  /// search_quantization set) and can price Arch::quant == 1 candidates.
  bool quantized() const { return !lut_i8_.empty(); }

 private:
  struct FromStateTag {};
  /// Restore path: skips build_lut()/calibrate_bias(); restore() fills in
  /// the state from the checkpoint instead.
  LatencyModel(const SearchSpace& space, const hwsim::DeviceSimulator& device,
               Config config, FromStateTag);

  void build_lut();
  void calibrate_bias();
  void resolve_config(const hwsim::DeviceSimulator& device);

  const SearchSpace& space_;
  const hwsim::DeviceSimulator& device_;
  Config config_;
  util::Rng noise_rng_;

  // lut_[((l * K) + op) * F + factor]
  std::vector<double> lut_;
  double stem_ms_ = 0.0;
  double head_ms_ = 0.0;
  // Second LUT for the int8 datapath; empty unless the space has
  // search_quantization. predict_*_ms selects a LUT by Arch::quant.
  std::vector<double> lut_i8_;
  double stem_i8_ms_ = 0.0;
  double head_i8_ms_ = 0.0;
  double bias_ = 0.0;
};

}  // namespace hsconas::core
