#include "core/analysis.h"

#include <algorithm>

#include "util/error.h"
#include "util/string_util.h"
#include "util/table.h"

namespace hsconas::core {

std::vector<LayerStatistics> analyze_population(
    const std::vector<EvolutionSearch::Candidate>& candidates,
    const SearchSpace& space, std::size_t top_k) {
  if (candidates.empty()) {
    throw InvalidArgument("analyze_population: empty candidate set");
  }
  std::vector<const EvolutionSearch::Candidate*> pool;
  pool.reserve(candidates.size());
  for (const auto& c : candidates) pool.push_back(&c);
  std::sort(pool.begin(), pool.end(),
            [](const auto* a, const auto* b) { return a->score > b->score; });
  if (top_k > 0 && top_k < pool.size()) pool.resize(top_k);

  const int L = space.num_layers();
  const int K = space.config().num_ops;
  std::vector<LayerStatistics> stats(static_cast<std::size_t>(L));
  for (int l = 0; l < L; ++l) {
    LayerStatistics& s = stats[static_cast<std::size_t>(l)];
    s.layer = l;
    s.op_frequency.assign(static_cast<std::size_t>(K), 0.0);
    for (const auto* c : pool) {
      c->arch.validate(space);
      s.op_frequency[static_cast<std::size_t>(
          c->arch.ops[static_cast<std::size_t>(l)])] += 1.0;
      s.mean_channel_factor += space.config().channel_factors.at(
          static_cast<std::size_t>(
              c->arch.factors[static_cast<std::size_t>(l)]));
    }
    const double n = static_cast<double>(pool.size());
    for (double& f : s.op_frequency) f /= n;
    s.mean_channel_factor /= n;
    s.dominant_op = static_cast<int>(
        std::max_element(s.op_frequency.begin(), s.op_frequency.end()) -
        s.op_frequency.begin());
  }
  return stats;
}

std::string render_layer_statistics(
    const std::vector<LayerStatistics>& stats, const SearchSpace& space) {
  std::vector<std::string> header{"layer", "stage", "stride"};
  for (int k = 0; k < space.config().num_ops; ++k) {
    header.push_back(space.op_name(k));
  }
  header.push_back("mean c");
  header.push_back("dominant");
  util::Table table(std::move(header));
  for (const auto& s : stats) {
    const LayerInfo& info = space.layer(s.layer);
    std::vector<std::string> row{util::format("%d", s.layer),
                                 util::format("%d", info.stage),
                                 util::format("%ld", info.stride)};
    for (double f : s.op_frequency) {
      row.push_back(util::format("%.2f", f));
    }
    row.push_back(util::format("%.2f", s.mean_channel_factor));
    row.push_back(space.op_name(s.dominant_op));
    table.add_row(row);
  }
  return table.render();
}

}  // namespace hsconas::core
