#pragma once

#include <string>
#include <vector>

#include "nn/module.h"

namespace hsconas::core {

/// Binary checkpointing for trained parameters (supernet or standalone
/// networks). Format: "HSCK" magic, u32 version, u64 parameter count, then
/// per parameter: name (u32 length + bytes), shape (u32 ndim + i64 dims),
/// raw fp32 data. Little-endian, as every platform this builds on is.
///
/// Loading matches strictly by name and shape — a checkpoint from a
/// different space configuration fails loudly instead of silently
/// misassigning weights.

constexpr std::uint32_t kCheckpointVersion = 1;

/// Serialize `params` (values only; gradients are transient) to `path`.
void save_parameters(const std::vector<nn::Parameter*>& params,
                     const std::string& path);

/// Restore values into `params` from `path`. Every parameter in `params`
/// must be present in the file with a matching shape; extra entries in the
/// file are an error too (the two sets must match exactly).
void load_parameters(const std::vector<nn::Parameter*>& params,
                     const std::string& path);

}  // namespace hsconas::core
