#pragma once

#include <map>
#include <string>
#include <vector>

#include "nn/module.h"
#include "util/serial.h"

namespace hsconas::core {

/// Crash-safe sectioned checkpoint container.
///
/// File layout (version 3, little-endian):
///
///   "HSCK" magic | u32 version | u32 section_count
///   per section:  u32 name_len | name bytes
///                 u64 payload_size | u32 crc32(name + payload)
///                 payload bytes
///
/// From version 3 on, section CRCs are seeded with the header's version
/// field, so a bit flip that turns one accepted version into another still
/// fails every section check (version 2 files keep their unseeded CRCs).
///
/// Integrity: every section carries a CRC over its name and payload, so a
/// bit flip anywhere — header fields included, since a corrupted length
/// desynchronizes the following reads — fails the load with a clean Error.
/// All length fields are bounds-checked against the remaining file size
/// before any allocation, so a corrupt header cannot drive a huge
/// allocation or an out-of-bounds read.
///
/// Durability: CheckpointWriter::save() writes the full image to
/// `path.tmp`, flushes it to disk, and `std::rename`s it over `path`.
/// rename(2) is atomic on POSIX, so a crash at *any* instant leaves either
/// the previous complete checkpoint or the new complete checkpoint —
/// never a torn file. A stale `.tmp` from a killed writer is overwritten
/// by the next save and never read.

/// Version 3 introduces the optional "calibration" section (int8
/// quantization tables). The layout itself is unchanged — sections are
/// self-describing — so the reader accepts version 2 files as well; the
/// writer always emits 3.
constexpr std::uint32_t kCheckpointVersion = 3;
constexpr std::uint32_t kMinCheckpointVersion = 2;

/// Conventional section name for a model's quantization calibration tables
/// (see write_calibration_payload).
inline constexpr const char* kCalibrationSection = "calibration";

/// Accumulates named sections in memory, then writes them atomically.
class CheckpointWriter {
 public:
  /// Adds (or replaces) a section. Name must be non-empty, <= 256 bytes.
  void add_section(const std::string& name, std::string payload);

  /// Atomic, durable write: path.tmp + flush + rename. Throws Error on any
  /// I/O failure (the .tmp is removed; `path` is left untouched).
  void save(const std::string& path) const;

 private:
  // Ordered map: deterministic section order in the file.
  std::map<std::string, std::string> sections_;
};

/// Validate and decode an in-memory checkpoint image (the exact byte
/// sequence CheckpointWriter::save writes to disk): magic, version,
/// bounds, per-section CRC. Returns the verified name -> payload map;
/// throws Error on any malformation. This is the whole parser —
/// CheckpointReader is a thin file-loading wrapper around it — and it is
/// the surface the checkpoint fuzz harness drives (tools/fuzz).
[[nodiscard]] std::map<std::string, std::string> parse_checkpoint_image(
    const std::string& image);

/// Loads and validates a sectioned checkpoint. The constructor performs
/// the full integrity pass (magic, version, bounds, per-section CRC); a
/// successfully constructed reader holds only verified payloads.
class CheckpointReader {
 public:
  explicit CheckpointReader(const std::string& path);

  bool has(const std::string& name) const;
  /// Payload of `name`; throws Error when the section is absent.
  const std::string& section(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  std::string path_;
  std::map<std::string, std::string> sections_;
};

/// Serialize parameter values (names, shapes, fp32 data) into a payload
/// suitable for a checkpoint section; read_parameters_payload restores it
/// with strict name/shape matching (see load_parameters).
std::string write_parameters_payload(
    const std::vector<nn::Parameter*>& params);
void read_parameters_payload(const std::vector<nn::Parameter*>& params,
                             util::ByteReader& in);

/// Serialize `params` (values only; gradients are transient) to `path` as
/// a single-section checkpoint. The write is atomic (tmp + rename).
void save_parameters(const std::vector<nn::Parameter*>& params,
                     const std::string& path);

/// Restore values into `params` from `path`. Every parameter in `params`
/// must be present in the file with a matching shape; extra entries in the
/// file are an error too (the two sets must match exactly).
void load_parameters(const std::vector<nn::Parameter*>& params,
                     const std::string& path);

/// Serialize a model's frozen int8 calibration tables (activation scales /
/// zero points, per-channel weight scales — see nn::export_calibration)
/// into a payload for the kCalibrationSection section. The CRC-32 the
/// container puts on every section covers it like any other payload.
std::string write_calibration_payload(nn::Module& root);

/// Restore calibration tables from a kCalibrationSection payload and
/// re-quantize the model's weights from them (nn::import_calibration).
/// Layer counts and channel shapes are validated against `root`.
void read_calibration_payload(nn::Module& root, const std::string& payload);

}  // namespace hsconas::core
