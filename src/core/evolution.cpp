#include "core/evolution.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/serial.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace hsconas::core {

EvolutionSearch::EvolutionSearch(const SearchSpace& space,
                                 AccuracyFn accuracy,
                                 const LatencyModel& latency,
                                 Objective objective, Config config)
    : space_(space),
      accuracy_(std::move(accuracy)),
      latency_(latency),
      objective_(objective),
      config_(config),
      rng_(config.seed) {
  HSCONAS_CHECK_MSG(accuracy_ != nullptr, "EvolutionSearch: null accuracy");
  if (config_.population < 2 || config_.parents < 1 ||
      config_.parents > config_.population || config_.generations < 1) {
    throw InvalidArgument("EvolutionSearch: bad population configuration");
  }
}

EvolutionSearch::EvolutionSearch(const SearchSpace& space,
                                 AccuracyFn accuracy,
                                 const LatencyModel& latency,
                                 const EnergyModel& energy,
                                 Objective objective, Config config)
    : EvolutionSearch(space, std::move(accuracy), latency, objective,
                      config) {
  if (!objective.energy_aware()) {
    throw InvalidArgument(
        "EvolutionSearch: energy model supplied but Objective has no "
        "energy term (set gamma < 0 and energy_budget_mj > 0)");
  }
  energy_ = &energy;
}

double EvolutionSearch::cached_latency_ms(const Arch& arch) {
  static obs::Counter& hits = obs::counter("hsconas.evolution.memo_hits");
  static obs::Counter& misses = obs::counter("hsconas.evolution.memo_misses");
  const std::uint64_t h = arch.hash();
  {
    std::lock_guard<std::mutex> lock(memo_mutex_);
    double ms = 0.0;
    if (latency_memo_.lookup(h, arch, &ms)) {
      hits.add();
      memo_hits_.fetch_add(1, std::memory_order_relaxed);
      return ms;
    }
  }
  misses.add();
  memo_misses_.fetch_add(1, std::memory_order_relaxed);
  // Compute outside the lock; predict_ms is deterministic, so a racing
  // duplicate computation stores the identical value.
  const double ms = latency_.predict_ms(arch);
  std::lock_guard<std::mutex> lock(memo_mutex_);
  latency_memo_.store(h, arch, ms);
  return ms;
}

EvolutionSearch::Candidate EvolutionSearch::evaluate(Arch arch) {
  static obs::Counter& evaluated =
      obs::counter("hsconas.evolution.candidates_evaluated");
  evaluated.add();
  Candidate c;
  c.arch = std::move(arch);
  c.accuracy = accuracy_(c.arch);
  c.latency_ms = cached_latency_ms(c.arch);
  if (energy_ != nullptr) {
    c.energy_mj = energy_->predict_mj(c.arch);
    c.score = objective_.score(c.accuracy, c.latency_ms, c.energy_mj);
  } else {
    c.score = objective_.score(c.accuracy, c.latency_ms);
  }
  return c;
}

std::vector<EvolutionSearch::Candidate> EvolutionSearch::evaluate_batch(
    std::vector<Arch> archs) {
  std::vector<Candidate> out(archs.size());
  util::ThreadPool& pool =
      config_.pool != nullptr ? *config_.pool : util::ThreadPool::global();
  if (!config_.parallel_eval || pool.size() <= 1 || archs.size() <= 1) {
    for (std::size_t i = 0; i < archs.size(); ++i) {
      out[i] = evaluate(std::move(archs[i]));
    }
    return out;
  }
  // Each index writes only its own slot and evaluation order does not
  // affect any candidate's value, so this is bit-identical to the serial
  // loop above for any worker count.
  pool.parallel_for(archs.size(), [&](std::size_t i) {
    out[i] = evaluate(std::move(archs[i]));
  });
  return out;
}

Arch EvolutionSearch::crossover(const Arch& a, const Arch& b) {
  // Uniform crossover at layer granularity: each layer inherits its whole
  // (op, factor) gene from one parent, which keeps op/width combinations
  // that trained well together.
  Arch child = a;
  for (int l = 0; l < child.num_layers(); ++l) {
    if (rng_.bernoulli(0.5)) {
      child.ops[static_cast<std::size_t>(l)] =
          b.ops[static_cast<std::size_t>(l)];
      child.factors[static_cast<std::size_t>(l)] =
          b.factors[static_cast<std::size_t>(l)];
    }
  }
  // The quant gene crosses over like any other — but only in a
  // quantization-aware space, so classic runs draw the classic RNG stream.
  if (space_.config().search_quantization && rng_.bernoulli(0.5)) {
    child.quant = b.quant;
  }
  return child;
}

Arch EvolutionSearch::mutate(Arch arch) {
  // Resample a few layers' genes — operator level and channel level
  // independently, so the EA explores both axes (§III-D).
  bool changed = false;
  for (int l = 0; l < arch.num_layers(); ++l) {
    if (rng_.bernoulli(config_.gene_mutation_prob)) {
      arch.ops[static_cast<std::size_t>(l)] =
          rng_.choice(space_.allowed_ops(l));
      changed = true;
    }
    if (rng_.bernoulli(config_.gene_mutation_prob)) {
      arch.factors[static_cast<std::size_t>(l)] =
          rng_.choice(space_.allowed_factors(l));
      changed = true;
    }
  }
  if (space_.config().search_quantization &&
      rng_.bernoulli(config_.gene_mutation_prob)) {
    arch.quant ^= 1;
    changed = true;
  }
  if (!changed) {
    // Guarantee progress: force one gene.
    const int l = static_cast<int>(rng_.index(
        static_cast<std::size_t>(arch.num_layers())));
    arch.ops[static_cast<std::size_t>(l)] =
        rng_.choice(space_.allowed_ops(l));
  }
  return arch;
}

void EvolutionSearch::init_population() {
  // Breed-then-score: every generation's genomes are produced serially
  // (so the RNG stream is independent of the evaluation schedule), then
  // scored as one batch — in parallel when Config::parallel_eval is set.
  std::vector<Arch> initial;
  initial.reserve(static_cast<std::size_t>(config_.population));
  while (static_cast<int>(initial.size()) < config_.population) {
    Arch arch = Arch::random(space_, rng_);
    if (!seen_.insert(arch.hash()).second) continue;
    initial.push_back(std::move(arch));
  }
  population_ = evaluate_batch(std::move(initial));
  result_.evaluated.insert(result_.evaluated.end(), population_.begin(),
                           population_.end());
  result_.best = population_.front();
  initialized_ = true;
}

void EvolutionSearch::step_generation() {
  HSCONAS_TRACE_SCOPE("evolution.generation");
  const int gen = next_generation_;
  std::sort(population_.begin(), population_.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score > b.score;
            });
  if (population_.front().score > result_.best.score) {
    result_.best = population_.front();
  }

  std::vector<double> scores;
  scores.reserve(population_.size());
  for (const Candidate& c : population_) scores.push_back(c.score);
  GenerationStats stats;
  stats.generation = gen;
  stats.best_score = population_.front().score;
  stats.mean_score = util::mean(scores);
  stats.best_latency_ms = population_.front().latency_ms;
  stats.best_accuracy = population_.front().accuracy;
  result_.per_generation.push_back(stats);

  // Live search telemetry: last generation wins (these are per-process
  // gauges; the trajectory lives in result.per_generation).
  obs::gauge("hsconas.evolution.generation").set(gen);
  obs::gauge("hsconas.evolution.best_score").set(stats.best_score);
  obs::gauge("hsconas.evolution.best_latency_ms")
      .set(stats.best_latency_ms);
  const double hits = static_cast<double>(
      memo_hits_.load(std::memory_order_relaxed));
  const double misses = static_cast<double>(
      memo_misses_.load(std::memory_order_relaxed));
  if (hits + misses > 0.0) {
    obs::gauge("hsconas.evolution.memo_hit_rate")
        .set(hits / (hits + misses));
  }

  // Top-k parents breed the next generation. Elites survive unchanged.
  const std::vector<Candidate> parents(
      population_.begin(), population_.begin() + config_.parents);
  std::vector<Candidate> next;
  next.reserve(population_.size());
  const int elites = std::max(1, config_.parents / 10);
  for (int e = 0; e < elites; ++e) next.push_back(parents[static_cast<std::size_t>(e)]);

  int stagnation_guard = 0;
  std::vector<Arch> offspring;
  // Duplicates accepted when the space saturates are still scored (the
  // population must reach its size) but are not recorded in
  // result.evaluated, which lists distinct candidates only.
  std::vector<bool> record;
  offspring.reserve(static_cast<std::size_t>(config_.population));
  while (static_cast<int>(next.size() + offspring.size()) <
         config_.population) {
    const Candidate& p1 =
        parents[rng_.index(parents.size())];
    Arch child = p1.arch;
    if (rng_.bernoulli(config_.crossover_prob)) {
      const Candidate& p2 = parents[rng_.index(parents.size())];
      child = crossover(p1.arch, p2.arch);
    }
    if (rng_.bernoulli(config_.mutation_prob)) {
      child = mutate(std::move(child));
    }
    if (!seen_.insert(child.hash()).second) {
      // Duplicate: force a mutation rather than re-evaluating; bail to a
      // fresh random arch if the space is tiny or nearly exhausted.
      if (++stagnation_guard > 20) {
        child = Arch::random(space_, rng_);
        if (!seen_.insert(child.hash()).second) {
          // Space saturated — accept re-evaluating a duplicate.
          offspring.push_back(std::move(child));
          record.push_back(false);
          stagnation_guard = 0;
          continue;
        }
      } else {
        child = mutate(std::move(child));
        if (!seen_.insert(child.hash()).second) continue;
      }
    }
    stagnation_guard = 0;
    offspring.push_back(std::move(child));
    record.push_back(true);
  }
  std::vector<Candidate> scored = evaluate_batch(std::move(offspring));
  for (std::size_t i = 0; i < scored.size(); ++i) {
    if (record[i]) result_.evaluated.push_back(scored[i]);
    next.push_back(std::move(scored[i]));
  }
  population_ = std::move(next);
  ++next_generation_;
}

EvolutionSearch::Result EvolutionSearch::run(
    const GenerationCallback& on_generation) {
  HSCONAS_TRACE_SCOPE("evolution.run");
  if (!initialized_) {
    init_population();
    if (on_generation) on_generation(-1);
  }
  while (next_generation_ < config_.generations) {
    step_generation();
    if (on_generation) on_generation(next_generation_ - 1);
  }
  // Final bookkeeping over the last generation — on a copy, so run() stays
  // idempotent: a resumed search that lands here directly (all generations
  // already completed before the interruption) returns the same Result.
  Result result = result_;
  for (const Candidate& c : population_) {
    if (c.score > result.best.score) result.best = c;
  }
  return result;
}

namespace {

void write_candidate(util::ByteWriter& out,
                     const EvolutionSearch::Candidate& c) {
  out.vec_i32(c.arch.ops);
  out.vec_i32(c.arch.factors);
  out.i32(c.arch.quant);
  out.f64(c.accuracy);
  out.f64(c.latency_ms);
  out.f64(c.energy_mj);
  out.f64(c.score);
}

EvolutionSearch::Candidate read_candidate(util::ByteReader& in,
                                          const SearchSpace& space) {
  EvolutionSearch::Candidate c;
  const std::size_t L = static_cast<std::size_t>(space.num_layers());
  c.arch.ops = in.vec_i32(L);
  c.arch.factors = in.vec_i32(L);
  c.arch.quant = in.i32();
  c.accuracy = in.f64();
  c.latency_ms = in.f64();
  c.energy_mj = in.f64();
  c.score = in.f64();
  c.arch.validate(space);
  return c;
}

}  // namespace

void EvolutionSearch::export_state(util::ByteWriter& out) const {
  out.rng_state(rng_.state());
  out.u8(initialized_ ? 1 : 0);
  out.i32(next_generation_);

  // seen_ sorted for a byte-stable file; set iteration order never affects
  // the search itself (only membership queries do).
  std::vector<std::uint64_t> seen(seen_.begin(), seen_.end());
  std::sort(seen.begin(), seen.end());
  out.vec_u64(seen);

  out.u64(population_.size());
  for (const Candidate& c : population_) write_candidate(out, c);

  // result_.best only exists once the initial population is scored; before
  // that it is a default Candidate whose empty genome would fail
  // validation, so it is simply omitted.
  if (initialized_) write_candidate(out, result_.best);
  out.u64(result_.per_generation.size());
  for (const GenerationStats& s : result_.per_generation) {
    out.i32(s.generation);
    out.f64(s.best_score);
    out.f64(s.mean_score);
    out.f64(s.best_latency_ms);
    out.f64(s.best_accuracy);
  }
  out.u64(result_.evaluated.size());
  for (const Candidate& c : result_.evaluated) write_candidate(out, c);
}

void EvolutionSearch::import_state(util::ByteReader& in) {
  rng_.set_state(in.rng_state());
  initialized_ = in.u8() != 0;
  next_generation_ = in.i32();
  if (next_generation_ < 0 || next_generation_ > config_.generations) {
    throw Error("EvolutionSearch: checkpointed generation " +
                std::to_string(next_generation_) + " out of range [0, " +
                std::to_string(config_.generations) + "]");
  }

  const std::vector<std::uint64_t> seen = in.vec_u64();
  seen_.clear();
  seen_.insert(seen.begin(), seen.end());

  const std::size_t pop_n = static_cast<std::size_t>(in.u64());
  if (initialized_ &&
      pop_n != static_cast<std::size_t>(config_.population)) {
    throw Error("EvolutionSearch: checkpointed population of " +
                std::to_string(pop_n) + ", config wants " +
                std::to_string(config_.population));
  }
  population_.clear();
  population_.reserve(pop_n);
  for (std::size_t i = 0; i < pop_n; ++i) {
    population_.push_back(read_candidate(in, space_));
  }

  result_ = Result{};
  if (initialized_) result_.best = read_candidate(in, space_);
  const std::size_t gen_n = static_cast<std::size_t>(in.u64());
  result_.per_generation.reserve(gen_n);
  for (std::size_t i = 0; i < gen_n; ++i) {
    GenerationStats s;
    s.generation = in.i32();
    s.best_score = in.f64();
    s.mean_score = in.f64();
    s.best_latency_ms = in.f64();
    s.best_accuracy = in.f64();
    result_.per_generation.push_back(s);
  }
  const std::size_t eval_n = static_cast<std::size_t>(in.u64());
  result_.evaluated.reserve(eval_n);
  for (std::size_t i = 0; i < eval_n; ++i) {
    result_.evaluated.push_back(read_candidate(in, space_));
  }
}

}  // namespace hsconas::core
