#include "core/evolution.h"

#include <algorithm>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace hsconas::core {

EvolutionSearch::EvolutionSearch(const SearchSpace& space,
                                 AccuracyFn accuracy,
                                 const LatencyModel& latency,
                                 Objective objective, Config config)
    : space_(space),
      accuracy_(std::move(accuracy)),
      latency_(latency),
      objective_(objective),
      config_(config),
      rng_(config.seed) {
  HSCONAS_CHECK_MSG(accuracy_ != nullptr, "EvolutionSearch: null accuracy");
  if (config_.population < 2 || config_.parents < 1 ||
      config_.parents > config_.population || config_.generations < 1) {
    throw InvalidArgument("EvolutionSearch: bad population configuration");
  }
}

EvolutionSearch::EvolutionSearch(const SearchSpace& space,
                                 AccuracyFn accuracy,
                                 const LatencyModel& latency,
                                 const EnergyModel& energy,
                                 Objective objective, Config config)
    : EvolutionSearch(space, std::move(accuracy), latency, objective,
                      config) {
  if (!objective.energy_aware()) {
    throw InvalidArgument(
        "EvolutionSearch: energy model supplied but Objective has no "
        "energy term (set gamma < 0 and energy_budget_mj > 0)");
  }
  energy_ = &energy;
}

double EvolutionSearch::cached_latency_ms(const Arch& arch) {
  static obs::Counter& hits = obs::counter("hsconas.evolution.memo_hits");
  static obs::Counter& misses = obs::counter("hsconas.evolution.memo_misses");
  const std::uint64_t h = arch.hash();
  {
    std::lock_guard<std::mutex> lock(memo_mutex_);
    const auto it = latency_memo_.find(h);
    if (it != latency_memo_.end()) {
      hits.add();
      memo_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses.add();
  memo_misses_.fetch_add(1, std::memory_order_relaxed);
  // Compute outside the lock; predict_ms is deterministic, so a racing
  // duplicate computation stores the identical value.
  const double ms = latency_.predict_ms(arch);
  std::lock_guard<std::mutex> lock(memo_mutex_);
  latency_memo_.emplace(h, ms);
  return ms;
}

EvolutionSearch::Candidate EvolutionSearch::evaluate(Arch arch) {
  static obs::Counter& evaluated =
      obs::counter("hsconas.evolution.candidates_evaluated");
  evaluated.add();
  Candidate c;
  c.arch = std::move(arch);
  c.accuracy = accuracy_(c.arch);
  c.latency_ms = cached_latency_ms(c.arch);
  if (energy_ != nullptr) {
    c.energy_mj = energy_->predict_mj(c.arch);
    c.score = objective_.score(c.accuracy, c.latency_ms, c.energy_mj);
  } else {
    c.score = objective_.score(c.accuracy, c.latency_ms);
  }
  return c;
}

std::vector<EvolutionSearch::Candidate> EvolutionSearch::evaluate_batch(
    std::vector<Arch> archs) {
  std::vector<Candidate> out(archs.size());
  util::ThreadPool& pool =
      config_.pool != nullptr ? *config_.pool : util::ThreadPool::global();
  if (!config_.parallel_eval || pool.size() <= 1 || archs.size() <= 1) {
    for (std::size_t i = 0; i < archs.size(); ++i) {
      out[i] = evaluate(std::move(archs[i]));
    }
    return out;
  }
  // Each index writes only its own slot and evaluation order does not
  // affect any candidate's value, so this is bit-identical to the serial
  // loop above for any worker count.
  pool.parallel_for(archs.size(), [&](std::size_t i) {
    out[i] = evaluate(std::move(archs[i]));
  });
  return out;
}

Arch EvolutionSearch::crossover(const Arch& a, const Arch& b) {
  // Uniform crossover at layer granularity: each layer inherits its whole
  // (op, factor) gene from one parent, which keeps op/width combinations
  // that trained well together.
  Arch child = a;
  for (int l = 0; l < child.num_layers(); ++l) {
    if (rng_.bernoulli(0.5)) {
      child.ops[static_cast<std::size_t>(l)] =
          b.ops[static_cast<std::size_t>(l)];
      child.factors[static_cast<std::size_t>(l)] =
          b.factors[static_cast<std::size_t>(l)];
    }
  }
  return child;
}

Arch EvolutionSearch::mutate(Arch arch) {
  // Resample a few layers' genes — operator level and channel level
  // independently, so the EA explores both axes (§III-D).
  bool changed = false;
  for (int l = 0; l < arch.num_layers(); ++l) {
    if (rng_.bernoulli(config_.gene_mutation_prob)) {
      arch.ops[static_cast<std::size_t>(l)] =
          rng_.choice(space_.allowed_ops(l));
      changed = true;
    }
    if (rng_.bernoulli(config_.gene_mutation_prob)) {
      arch.factors[static_cast<std::size_t>(l)] =
          rng_.choice(space_.allowed_factors(l));
      changed = true;
    }
  }
  if (!changed) {
    // Guarantee progress: force one gene.
    const int l = static_cast<int>(rng_.index(
        static_cast<std::size_t>(arch.num_layers())));
    arch.ops[static_cast<std::size_t>(l)] =
        rng_.choice(space_.allowed_ops(l));
  }
  return arch;
}

EvolutionSearch::Result EvolutionSearch::run() {
  HSCONAS_TRACE_SCOPE("evolution.run");
  Result result;
  std::unordered_set<std::uint64_t> seen;

  // Breed-then-score: every generation's genomes are produced serially
  // (so the RNG stream is independent of the evaluation schedule), then
  // scored as one batch — in parallel when Config::parallel_eval is set.
  std::vector<Arch> initial;
  initial.reserve(static_cast<std::size_t>(config_.population));
  while (static_cast<int>(initial.size()) < config_.population) {
    Arch arch = Arch::random(space_, rng_);
    if (!seen.insert(arch.hash()).second) continue;
    initial.push_back(std::move(arch));
  }
  std::vector<Candidate> population = evaluate_batch(std::move(initial));
  result.evaluated.insert(result.evaluated.end(), population.begin(),
                          population.end());

  result.best = population.front();

  for (int gen = 0; gen < config_.generations; ++gen) {
    HSCONAS_TRACE_SCOPE("evolution.generation");
    std::sort(population.begin(), population.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.score > b.score;
              });
    if (population.front().score > result.best.score) {
      result.best = population.front();
    }

    std::vector<double> scores;
    scores.reserve(population.size());
    for (const Candidate& c : population) scores.push_back(c.score);
    GenerationStats stats;
    stats.generation = gen;
    stats.best_score = population.front().score;
    stats.mean_score = util::mean(scores);
    stats.best_latency_ms = population.front().latency_ms;
    stats.best_accuracy = population.front().accuracy;
    result.per_generation.push_back(stats);

    // Live search telemetry: last generation wins (these are per-process
    // gauges; the trajectory lives in result.per_generation).
    obs::gauge("hsconas.evolution.generation").set(gen);
    obs::gauge("hsconas.evolution.best_score").set(stats.best_score);
    obs::gauge("hsconas.evolution.best_latency_ms")
        .set(stats.best_latency_ms);
    const double hits = static_cast<double>(
        memo_hits_.load(std::memory_order_relaxed));
    const double misses = static_cast<double>(
        memo_misses_.load(std::memory_order_relaxed));
    if (hits + misses > 0.0) {
      obs::gauge("hsconas.evolution.memo_hit_rate")
          .set(hits / (hits + misses));
    }

    // Top-k parents breed the next generation. Elites survive unchanged.
    const std::vector<Candidate> parents(
        population.begin(), population.begin() + config_.parents);
    std::vector<Candidate> next;
    next.reserve(population.size());
    const int elites = std::max(1, config_.parents / 10);
    for (int e = 0; e < elites; ++e) next.push_back(parents[static_cast<std::size_t>(e)]);

    int stagnation_guard = 0;
    std::vector<Arch> offspring;
    // Duplicates accepted when the space saturates are still scored (the
    // population must reach its size) but are not recorded in
    // result.evaluated, which lists distinct candidates only.
    std::vector<bool> record;
    offspring.reserve(static_cast<std::size_t>(config_.population));
    while (static_cast<int>(next.size() + offspring.size()) <
           config_.population) {
      const Candidate& p1 =
          parents[rng_.index(parents.size())];
      Arch child = p1.arch;
      if (rng_.bernoulli(config_.crossover_prob)) {
        const Candidate& p2 = parents[rng_.index(parents.size())];
        child = crossover(p1.arch, p2.arch);
      }
      if (rng_.bernoulli(config_.mutation_prob)) {
        child = mutate(std::move(child));
      }
      if (!seen.insert(child.hash()).second) {
        // Duplicate: force a mutation rather than re-evaluating; bail to a
        // fresh random arch if the space is tiny or nearly exhausted.
        if (++stagnation_guard > 20) {
          child = Arch::random(space_, rng_);
          if (!seen.insert(child.hash()).second) {
            // Space saturated — accept re-evaluating a duplicate.
            offspring.push_back(std::move(child));
            record.push_back(false);
            stagnation_guard = 0;
            continue;
          }
        } else {
          child = mutate(std::move(child));
          if (!seen.insert(child.hash()).second) continue;
        }
      }
      stagnation_guard = 0;
      offspring.push_back(std::move(child));
      record.push_back(true);
    }
    std::vector<Candidate> scored = evaluate_batch(std::move(offspring));
    for (std::size_t i = 0; i < scored.size(); ++i) {
      if (record[i]) result.evaluated.push_back(scored[i]);
      next.push_back(std::move(scored[i]));
    }
    population = std::move(next);
  }

  // Final bookkeeping over the last generation.
  for (const Candidate& c : population) {
    if (c.score > result.best.score) result.best = c;
  }
  return result;
}

}  // namespace hsconas::core
