#pragma once

#include <string>
#include <vector>

#include "core/evolution.h"

namespace hsconas::core {

/// Post-hoc analysis of a searched population: which operators and channel
/// factors survive at each layer — the qualitative reading the paper does
/// on its discovered HSCoNets (e.g. wide late layers, cheap early ones).
struct LayerStatistics {
  int layer = 0;
  /// Operator frequency among the top candidates, index-aligned with
  /// nn::BlockKind.
  std::vector<double> op_frequency;
  double mean_channel_factor = 0.0;
  int dominant_op = 0;
};

/// Compute per-layer statistics over the `top_k` best-scoring candidates
/// (0 = all). Candidates must all belong to `space`.
std::vector<LayerStatistics> analyze_population(
    const std::vector<EvolutionSearch::Candidate>& candidates,
    const SearchSpace& space, std::size_t top_k = 0);

/// Render the statistics as an ASCII table (one row per layer).
std::string render_layer_statistics(const std::vector<LayerStatistics>& stats,
                                    const SearchSpace& space);

}  // namespace hsconas::core
