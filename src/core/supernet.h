#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/arch.h"
#include "core/search_space.h"
#include "data/loader.h"
#include "nn/activation.h"
#include "nn/batchnorm.h"
#include "nn/blocks.h"
#include "nn/choice_block.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/pooling.h"

namespace hsconas::core {

/// The weight-sharing supernet N (§II-A): a fixed stem and head, plus K
/// candidate ShuffleChoiceBlocks per searchable layer, all resident in
/// memory at their maximum width Sˡ. Evaluating a candidate arch routes the
/// activations through one block per layer with the arch's channel factor
/// applied by masking — weights are shared by construction, never copied.
///
/// Passing a fixed Arch instantiates only that arch's operator per layer —
/// a standalone network for training a discovered architecture from
/// scratch with the identical substrate.
class Supernet {
 public:
  Supernet(const SearchSpace& space, std::uint64_t seed,
           std::optional<Arch> fixed_arch = std::nullopt);

  const SearchSpace& space() const { return space_; }
  bool is_standalone() const { return fixed_arch_.has_value(); }
  const Arch& fixed_arch() const;

  /// Forward the batch through the path selected by `arch` (must equal the
  /// fixed arch for standalone networks). Returns logits (N, classes).
  tensor::Tensor forward(const tensor::Tensor& images, const Arch& arch);

  /// Forward for standalone networks.
  tensor::Tensor forward(const tensor::Tensor& images);

  /// Backward pass through the exact path of the last forward call.
  void backward(const tensor::Tensor& logits_grad);

  /// All trainable parameters (every candidate block's, for the supernet).
  std::vector<nn::Parameter*> parameters();

  /// Parameters on the given arch's path only.
  std::vector<nn::Parameter*> path_parameters(const Arch& arch);

  void set_training(bool training);

  /// Post-training int8 calibration of a *standalone* network: stream
  /// `batches` through the fixed arch in fp32 eval mode with the quant
  /// observers armed, then freeze per-layer activation/weight quantizers
  /// (nn::calibrate protocol). Afterwards eval-mode forwards route through
  /// the int8 GEMM whenever nn::inference_dtype() is kI8. Returns the
  /// number of layers frozen; throws Error on a supernet (shared blocks
  /// would calibrate one path's observers against another path's traffic).
  std::size_t calibrate_quant(const std::vector<tensor::Tensor>& batches);

  /// Top-1 accuracy of `arch` on (a prefix of) the validation split.
  /// Runs with batch-statistics BN (standard one-shot practice: candidate
  /// paths never saw calibrated running stats). max_batches == 0 means the
  /// full split.
  double evaluate(const data::SyntheticDataset& dataset, const Arch& arch,
                  std::size_t batch_size, std::size_t max_batches = 0);

  /// Recalibrate BatchNorm running statistics for `arch`'s path: reset all
  /// BN running stats, then stream `calib_batches` *training* batches
  /// through the path (forward only, no optimizer). Afterwards the path
  /// can be evaluated in eval mode — the higher-fidelity protocol used
  /// when a candidate is about to be reported or deployed.
  void calibrate_bn(const data::SyntheticDataset& dataset, const Arch& arch,
                    std::size_t batch_size, std::size_t calib_batches,
                    std::uint64_t seed = 0);

  /// Like evaluate(), but in eval mode using the (re)calibrated running
  /// statistics. Call calibrate_bn first for meaningful numbers.
  double evaluate_calibrated(const data::SyntheticDataset& dataset,
                             const Arch& arch, std::size_t batch_size,
                             std::size_t max_batches = 0);

  /// Apply `fn` to every module in the network (see nn::Module::visit).
  void visit(const std::function<void(nn::Module&)>& fn);

  /// Extract a standalone network for `arch` with weights *copied* from
  /// this supernet's shared blocks (OFA-style weight inheritance): the
  /// returned network starts from the one-shot-trained weights instead of
  /// a fresh init, so a short fine-tune replaces full from-scratch
  /// training. The supernet is left untouched.
  std::unique_ptr<Supernet> extract_subnet(const Arch& arch,
                                           std::uint64_t seed = 0);

  long param_count();

 private:
  void check_arch(const Arch& arch) const;
  nn::ChoiceBlock& block(int layer, int op);

  const SearchSpace& space_;
  std::optional<Arch> fixed_arch_;

  std::unique_ptr<nn::Sequential> stem_;
  // layers_[l][k]; standalone networks hold exactly one entry per layer.
  std::vector<std::vector<std::unique_ptr<nn::ChoiceBlock>>> layers_;
  std::unique_ptr<nn::Sequential> head_conv_;
  nn::GlobalAvgPool gap_;
  std::unique_ptr<nn::Linear> classifier_;

  std::vector<nn::Module*> active_path_;  // set by forward, used by backward
};

}  // namespace hsconas::core
