#include "core/latency_regression.h"

#include <cmath>

#include "core/lowering.h"
#include "util/error.h"

namespace hsconas::core {

std::vector<double> solve_ridge(std::vector<std::vector<double>> a,
                                std::vector<double> b, double lambda) {
  const std::size_t n = a.size();
  HSCONAS_CHECK_MSG(b.size() == n, "solve_ridge: dimension mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    HSCONAS_CHECK_MSG(a[i].size() == n, "solve_ridge: non-square matrix");
    a[i][i] += lambda;
  }

  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    }
    if (std::abs(a[pivot][col]) < 1e-12) {
      throw InvalidArgument("solve_ridge: singular system (raise lambda)");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    const double inv = 1.0 / a[col][col];
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] * inv;
      if (factor == 0.0) continue;
      for (std::size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t k = i + 1; k < n; ++k) acc -= a[i][k] * x[k];
    x[i] = acc / a[i][i];
  }
  return x;
}

std::vector<double> LatencyRegressor::featurize(const Arch& arch) const {
  const int L = space_.num_layers();
  const int K = space_.config().num_ops;
  std::vector<double> phi(1 + 2 * static_cast<std::size_t>(L) * K, 0.0);
  phi[0] = 1.0;  // intercept
  for (int l = 0; l < L; ++l) {
    const int op = arch.ops[static_cast<std::size_t>(l)];
    const double c = space_.config().channel_factors.at(
        static_cast<std::size_t>(arch.factors[static_cast<std::size_t>(l)]));
    const std::size_t base = 1 + 2 * (static_cast<std::size_t>(l) * K + op);
    phi[base] = 1.0;
    phi[base + 1] = c;
  }
  return phi;
}

LatencyRegressor::LatencyRegressor(const SearchSpace& space,
                                   const hwsim::DeviceSimulator& device,
                                   Config config)
    : space_(space), config_(config) {
  if (config_.train_samples < 2 || config_.batch < 1 ||
      config_.ridge_lambda < 0.0) {
    throw InvalidArgument("LatencyRegressor: bad configuration");
  }

  util::Rng rng(config_.seed);
  std::vector<std::vector<double>> features;
  std::vector<double> targets;
  features.reserve(static_cast<std::size_t>(config_.train_samples));
  for (int i = 0; i < config_.train_samples; ++i) {
    const Arch arch = Arch::random(space_, rng);
    features.push_back(featurize(arch));
    targets.push_back(device.network_latency_ms(
        lower_network(arch, space_), config_.batch,
        config_.measurement_noise ? &rng : nullptr));
  }

  const std::size_t dim = features.front().size();
  std::vector<std::vector<double>> xtx(dim, std::vector<double>(dim, 0.0));
  std::vector<double> xty(dim, 0.0);
  for (std::size_t s = 0; s < features.size(); ++s) {
    const auto& phi = features[s];
    for (std::size_t i = 0; i < dim; ++i) {
      if (phi[i] == 0.0) continue;
      xty[i] += phi[i] * targets[s];
      for (std::size_t j = i; j < dim; ++j) xtx[i][j] += phi[i] * phi[j];
    }
  }
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = 0; j < i; ++j) xtx[i][j] = xtx[j][i];
  }
  weights_ = solve_ridge(std::move(xtx), std::move(xty),
                         config_.ridge_lambda);

  double sq = 0.0;
  for (std::size_t s = 0; s < features.size(); ++s) {
    double pred = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      pred += weights_[i] * features[s][i];
    }
    sq += (pred - targets[s]) * (pred - targets[s]);
  }
  training_rmse_ = std::sqrt(sq / static_cast<double>(features.size()));
}

double LatencyRegressor::predict_ms(const Arch& arch) const {
  arch.validate(space_);
  const auto phi = featurize(arch);
  double pred = 0.0;
  for (std::size_t i = 0; i < phi.size(); ++i) {
    pred += weights_[i] * phi[i];
  }
  return pred;
}

}  // namespace hsconas::core
