#include "core/energy_model.h"

#include "util/error.h"

namespace hsconas::core {

EnergyModel::EnergyModel(const SearchSpace& space,
                         const hwsim::EnergySimulator& energy, Config config,
                         const LatencyModel* latency)
    : space_(space),
      energy_(energy),
      latency_(latency),
      config_(config),
      noise_rng_(config.seed ^ 0x454e4547ull) {
  if (config_.batch < 1 || config_.bias_samples < 1) {
    throw InvalidArgument("EnergyModel: batch and bias_samples must be >= 1");
  }
  build_lut();
  calibrate_bias();
}

void EnergyModel::build_lut() {
  const int L = space_.num_layers();
  const int K = space_.config().num_ops;
  const int F = static_cast<int>(space_.config().channel_factors.size());
  lut_.assign(static_cast<std::size_t>(L) * K * F, 0.0);
  for (int l = 0; l < L; ++l) {
    const LayerInfo& info = space_.layer(l);
    for (int op = 0; op < K; ++op) {
      for (int f = 0; f < F; ++f) {
        const double factor =
            space_.config().channel_factors[static_cast<std::size_t>(f)];
        lut_[(static_cast<std::size_t>(l) * K + op) * F + f] =
            energy_.layer_energy_mj(
                lower_layer(info, space_.config().family, op, factor),
                config_.batch);
      }
    }
  }
  long size = space_.body_input_size();
  for (int l = 0; l < L; ++l) {
    if (space_.layer(l).stride == 2) size = (size + 1) / 2;
  }
  stem_mj_ =
      energy_.layer_energy_mj(lower_stem(space_.config()), config_.batch);
  head_mj_ = energy_.layer_energy_mj(lower_head(space_.config(), size),
                                     config_.batch);
}

void EnergyModel::calibrate_bias() {
  util::Rng rng(config_.seed);
  double gap = 0.0;
  for (int i = 0; i < config_.bias_samples; ++i) {
    const Arch arch = Arch::random(space_, rng);
    const double on_device = energy_.network_energy_mj(
        lower_network(arch, space_), config_.batch,
        config_.measurement_noise ? &rng : nullptr);
    gap += on_device - predict_uncorrected_mj(arch);
  }
  bias_ = gap / static_cast<double>(config_.bias_samples);
}

double EnergyModel::lut_mj(int layer, int op, int factor) const {
  const int K = space_.config().num_ops;
  const int F = static_cast<int>(space_.config().channel_factors.size());
  HSCONAS_CHECK_MSG(layer >= 0 && layer < space_.num_layers() && op >= 0 &&
                        op < K && factor >= 0 && factor < F,
                    "EnergyModel::lut_mj: index out of range");
  return lut_[(static_cast<std::size_t>(layer) * K + op) * F + factor];
}

double EnergyModel::predict_uncorrected_mj(const Arch& arch) const {
  arch.validate(space_);
  const int K = space_.config().num_ops;
  const int F = static_cast<int>(space_.config().channel_factors.size());
  double total = stem_mj_ + head_mj_;
  for (int l = 0; l < space_.num_layers(); ++l) {
    total += lut_[(static_cast<std::size_t>(l) * K +
                   arch.ops[static_cast<std::size_t>(l)]) *
                      F +
                  arch.factors[static_cast<std::size_t>(l)]];
  }
  if (latency_ != nullptr) {
    // Static draw over the predicted runtime: W · ms = mJ.
    total += energy_.profile().static_watts * latency_->predict_ms(arch);
  }
  return total;
}

double EnergyModel::predict_mj(const Arch& arch) const {
  return predict_uncorrected_mj(arch) + bias_;
}

double EnergyModel::measure_mj(const Arch& arch) {
  return energy_.network_energy_mj(
      lower_network(arch, space_), config_.batch,
      config_.measurement_noise ? &noise_rng_ : nullptr);
}

double EnergyModel::true_mj(const Arch& arch) const {
  return energy_.network_energy_mj(lower_network(arch, space_),
                                   config_.batch, nullptr);
}

}  // namespace hsconas::core
