#pragma once

#include <functional>
#include <vector>

#include "core/arch.h"
#include "core/latency_model.h"
#include "core/objective.h"
#include "core/search_space.h"

namespace hsconas::util {
class ThreadPool;
}

namespace hsconas::core {

/// Accuracy oracle used by the search components: the proxy pipeline plugs
/// in supernet evaluation, the paper-scale benches plug in the calibrated
/// surrogate.
using AccuracyFn = std::function<double(const Arch&)>;

/// Progressive space shrinking (§III-C).
///
/// For a target layer l, every allowed operator k defines a subspace
/// A_sub(l, k) = { arch : opˡ = k }. Its quality (Definition 1) is the mean
/// objective F over N uniform samples. The best operator is then *fixed*
/// for that layer, and evaluation proceeds to the previous layer — back to
/// front, so when layer l is scored, all deeper layers are already fixed,
/// exactly as the paper prescribes ("when evaluating the 19-th layer, we
/// fix the operator of the 20-th layer").
class SpaceShrinker {
 public:
  struct Config {
    int samples_per_subspace = 100;  ///< N of Definition 1
    std::uint64_t seed = 77;
    /// Score the N subspace samples concurrently. The archs are drawn
    /// serially first (fixed RNG order) and the mean is reduced in index
    /// order, so the result is bit-identical to serial execution — but
    /// the accuracy functor must be thread-safe (see EvolutionSearch's
    /// parallel_eval for which functors qualify).
    bool parallel_eval = false;
    /// Pool for parallel_eval; nullptr means util::ThreadPool::global().
    util::ThreadPool* pool = nullptr;
  };

  /// The space is mutated in place by shrink operations.
  SpaceShrinker(SearchSpace& space, AccuracyFn accuracy,
                const LatencyModel& latency, Objective objective,
                Config config);

  struct LayerDecision {
    int layer = 0;
    int chosen_op = 0;
    std::vector<double> quality;  ///< Q per candidate op (index-aligned)
    int subspaces_evaluated = 0;
  };

  /// Quality Q(A_sub) of the subspace fixing `op` at `layer` (Def. 1).
  double subspace_quality(int layer, int op);

  /// Shrink one layer: evaluate all allowed ops, fix the best.
  LayerDecision shrink_layer(int layer);

  /// Shrink a back-to-front run of `count` layers starting at `from_layer`
  /// (inclusive, descending) — one paper "stage" is (L-1 .. L-4).
  std::vector<LayerDecision> shrink_stage(int from_layer, int count);

  /// Total subspaces evaluated so far (the §III-C complexity argument:
  /// 5 × 4 per stage instead of 5⁴).
  int total_subspaces_evaluated() const { return total_evaluated_; }

  /// Checkpoint/resume: the shrinker's only cross-stage state is its RNG
  /// stream and the evaluation counter (decisions live in the space and
  /// the pipeline result). Restoring makes the next shrink_stage() draw
  /// the exact samples an uninterrupted run would.
  void export_state(util::ByteWriter& out) const;
  void import_state(util::ByteReader& in);

 private:
  SearchSpace& space_;
  AccuracyFn accuracy_;
  const LatencyModel& latency_;
  Objective objective_;
  Config config_;
  util::Rng rng_;
  int total_evaluated_ = 0;
};

}  // namespace hsconas::core
