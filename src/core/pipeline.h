#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "core/accuracy_surrogate.h"
#include "core/evolution.h"
#include "core/latency_model.h"
#include "core/space_shrinking.h"
#include "core/trainer.h"
#include "hwsim/registry.h"
#include "util/json.h"

namespace hsconas::core {

/// End-to-end HSCoNAS flow (Fig. 1):
///
///   train supernet → shrink stage 1 → tune → shrink stage 2 → tune
///   → evolutionary search under the latency model → winner.
///
/// Two accuracy back-ends:
///  * proxy mode (use_surrogate = false): a real weight-sharing supernet is
///    trained on the synthetic dataset and candidate accuracy comes from
///    shared-weight evaluation — the paper's actual mechanism, at a scale
///    that runs on a laptop CPU;
///  * surrogate mode (use_surrogate = true): the calibrated ImageNet
///    surrogate replaces supernet evaluation, enabling paper-scale (L = 20,
///    224×224) searches for the Table I reproduction.
struct PipelineConfig {
  SearchSpaceConfig space = SearchSpaceConfig::proxy();
  std::string device = "xavier";
  /// When set, overrides `device` with a user-defined profile (custom
  /// hardware); `constraint_ms` must then be given explicitly.
  std::optional<hwsim::DeviceProfile> custom_device;
  double constraint_ms = -1.0;  ///< <= 0: the paper's default for `device`
  double beta = -0.3;

  bool use_surrogate = false;
  AccuracySurrogate::Config surrogate;

  // Supernet training (proxy mode). Paper: 100 epochs, then 15 + 15 tuning
  // at lr 0.01 / 0.0035 (§III-C, §IV-A).
  TrainConfig train;
  int initial_epochs = 8;
  int tune_epochs = 2;
  double tune_lr_stage1 = 0.01;
  double tune_lr_stage2 = 0.0035;
  std::size_t eval_batches = 4;  ///< val batches per candidate evaluation

  int shrink_layers_per_stage = 4;
  SpaceShrinker::Config shrink;
  EvolutionSearch::Config evolution;
  LatencyModel::Config latency;

  std::uint64_t seed = 1;
  bool verbose = false;

  // ---- crash-safe checkpointing (docs/ROBUSTNESS.md) ----------------------
  /// Directory for the run's checkpoint file (`pipeline.ckpt`, written
  /// atomically via tmp-file + rename). Empty disables checkpointing.
  std::string checkpoint_dir;
  /// Snapshot cadence within a phase: every N training epochs / EA
  /// generations. Phase boundaries always snapshot. Must be >= 1.
  int checkpoint_every = 1;
  /// Continue from checkpoint_dir's pipeline.ckpt when it exists (a fresh
  /// run otherwise). The restored run replays the exact remaining work of
  /// the interrupted one — same winner, same score.
  bool resume = false;
  /// Test hook, called after each snapshot is durably on disk (post-rename)
  /// with the 0-based snapshot ordinal. Tests throw from here to simulate a
  /// crash at an arbitrary checkpoint boundary.
  std::function<void(int snapshot_index)> on_snapshot;
};

struct PipelineResult {
  Arch best_arch;
  double best_score = 0.0;
  double best_accuracy = 0.0;
  double predicted_latency_ms = 0.0;
  double measured_latency_ms = 0.0;  ///< on-device check of the winner
  double constraint_ms = 0.0;

  double log10_space_initial = 0.0;
  double log10_space_after_stage1 = 0.0;
  double log10_space_after_stage2 = 0.0;

  std::vector<EpochStats> train_history;
  std::vector<SpaceShrinker::LayerDecision> stage1_decisions;
  std::vector<SpaceShrinker::LayerDecision> stage2_decisions;
  EvolutionSearch::Result evolution;
};

/// Structured JSON report of a finished search (winner, metrics, shrink
/// decisions, per-generation trajectory) for downstream tooling.
util::Json pipeline_report_json(const PipelineResult& result,
                                const SearchSpace& space);

/// Where a checkpointed run is in the Fig. 1 flow. Serialized by value —
/// append only, never renumber.
enum class PipelinePhase : int {
  kInitialTrain = 0,
  kShrinkStage1 = 1,
  kTuneStage1 = 2,
  kShrinkStage2 = 3,
  kTuneStage2 = 4,
  kEvolution = 5,
};

class Pipeline {
 public:
  explicit Pipeline(PipelineConfig config);

  /// Run the full flow. In proxy mode a dataset must be supplied. With
  /// PipelineConfig::checkpoint_dir set, progress snapshots are written at
  /// every epoch/stage/generation boundary; with resume additionally set,
  /// an existing checkpoint is loaded and the run continues from it.
  PipelineResult run(const data::SyntheticDataset* dataset = nullptr);

  const SearchSpace& space() const { return space_; }
  /// Valid only after run() — the model is built (or restored from a
  /// checkpoint) lazily. Throws Error before that.
  const LatencyModel& latency_model() const;

  /// The checkpoint file run() reads/writes: `<dir>/pipeline.ckpt`.
  static std::string checkpoint_path(const std::string& dir);

 private:
  PipelineConfig config_;
  SearchSpace space_;
  hwsim::DeviceSimulator device_;
  LatencyModel::Config latency_cfg_;
  std::unique_ptr<LatencyModel> latency_model_;
};

}  // namespace hsconas::core
