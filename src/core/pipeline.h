#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/accuracy_surrogate.h"
#include "core/evolution.h"
#include "core/latency_model.h"
#include "core/space_shrinking.h"
#include "core/trainer.h"
#include "hwsim/registry.h"
#include "util/json.h"

namespace hsconas::core {

/// End-to-end HSCoNAS flow (Fig. 1):
///
///   train supernet → shrink stage 1 → tune → shrink stage 2 → tune
///   → evolutionary search under the latency model → winner.
///
/// Two accuracy back-ends:
///  * proxy mode (use_surrogate = false): a real weight-sharing supernet is
///    trained on the synthetic dataset and candidate accuracy comes from
///    shared-weight evaluation — the paper's actual mechanism, at a scale
///    that runs on a laptop CPU;
///  * surrogate mode (use_surrogate = true): the calibrated ImageNet
///    surrogate replaces supernet evaluation, enabling paper-scale (L = 20,
///    224×224) searches for the Table I reproduction.
struct PipelineConfig {
  SearchSpaceConfig space = SearchSpaceConfig::proxy();
  std::string device = "xavier";
  /// When set, overrides `device` with a user-defined profile (custom
  /// hardware); `constraint_ms` must then be given explicitly.
  std::optional<hwsim::DeviceProfile> custom_device;
  double constraint_ms = -1.0;  ///< <= 0: the paper's default for `device`
  double beta = -0.3;

  bool use_surrogate = false;
  AccuracySurrogate::Config surrogate;

  // Supernet training (proxy mode). Paper: 100 epochs, then 15 + 15 tuning
  // at lr 0.01 / 0.0035 (§III-C, §IV-A).
  TrainConfig train;
  int initial_epochs = 8;
  int tune_epochs = 2;
  double tune_lr_stage1 = 0.01;
  double tune_lr_stage2 = 0.0035;
  std::size_t eval_batches = 4;  ///< val batches per candidate evaluation

  int shrink_layers_per_stage = 4;
  SpaceShrinker::Config shrink;
  EvolutionSearch::Config evolution;
  LatencyModel::Config latency;

  std::uint64_t seed = 1;
  bool verbose = false;
};

struct PipelineResult {
  Arch best_arch;
  double best_score = 0.0;
  double best_accuracy = 0.0;
  double predicted_latency_ms = 0.0;
  double measured_latency_ms = 0.0;  ///< on-device check of the winner
  double constraint_ms = 0.0;

  double log10_space_initial = 0.0;
  double log10_space_after_stage1 = 0.0;
  double log10_space_after_stage2 = 0.0;

  std::vector<EpochStats> train_history;
  std::vector<SpaceShrinker::LayerDecision> stage1_decisions;
  std::vector<SpaceShrinker::LayerDecision> stage2_decisions;
  EvolutionSearch::Result evolution;
};

/// Structured JSON report of a finished search (winner, metrics, shrink
/// decisions, per-generation trajectory) for downstream tooling.
util::Json pipeline_report_json(const PipelineResult& result,
                                const SearchSpace& space);

class Pipeline {
 public:
  explicit Pipeline(PipelineConfig config);

  /// Run the full flow. In proxy mode a dataset must be supplied.
  PipelineResult run(const data::SyntheticDataset* dataset = nullptr);

  const SearchSpace& space() const { return space_; }
  const LatencyModel& latency_model() const { return *latency_model_; }

 private:
  PipelineConfig config_;
  SearchSpace space_;
  hwsim::DeviceSimulator device_;
  std::unique_ptr<LatencyModel> latency_model_;
};

}  // namespace hsconas::core
