#include "core/latency_model.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace hsconas::core {

namespace {
// §III-A cost accounting: every predict_ms() is a LUT lookup (cheap),
// every device probe is a simulated on-device measurement (expensive on
// real hardware) — the ratio is the quantity "Searching on a Budget"-style
// analyses care about.
obs::Counter& lut_hit_counter() {
  static obs::Counter& c = obs::counter("hsconas.latency.lut_hits");
  return c;
}
obs::Counter& device_probe_counter() {
  static obs::Counter& c = obs::counter("hsconas.latency.device_probes");
  return c;
}
}  // namespace

LatencyModel::LatencyModel(const SearchSpace& space,
                           const hwsim::DeviceSimulator& device,
                           Config config)
    : space_(space),
      device_(device),
      config_(config),
      noise_rng_(config.seed ^ 0x6e6f697365ull) {
  resolve_config(device);
  build_lut();
  calibrate_bias();
}

LatencyModel::LatencyModel(const SearchSpace& space,
                           const hwsim::DeviceSimulator& device,
                           Config config, FromStateTag)
    : space_(space),
      device_(device),
      config_(config),
      noise_rng_(config.seed ^ 0x6e6f697365ull) {
  resolve_config(device);
}

void LatencyModel::resolve_config(const hwsim::DeviceSimulator& device) {
  if (config_.batch == 0) config_.batch = device.profile().default_batch;
  if (config_.batch < 1 || config_.bias_samples < 1) {
    throw InvalidArgument(
        "LatencyModel: batch must be >= 1 (or 0 for the device default) "
        "and bias_samples must be >= 1");
  }
}

void LatencyModel::export_state(util::ByteWriter& out) const {
  out.i32(space_.num_layers());
  out.i32(space_.config().num_ops);
  out.i32(static_cast<std::int32_t>(space_.config().channel_factors.size()));
  out.i32(config_.batch);
  out.vec_f64(lut_);
  out.f64(stem_ms_);
  out.f64(head_ms_);
  out.u8(quantized() ? 1 : 0);
  if (quantized()) {
    out.vec_f64(lut_i8_);
    out.f64(stem_i8_ms_);
    out.f64(head_i8_ms_);
  }
  out.f64(bias_);
  out.rng_state(noise_rng_.state());
}

std::unique_ptr<LatencyModel> LatencyModel::restore(
    const SearchSpace& space, const hwsim::DeviceSimulator& device,
    Config config, util::ByteReader& in) {
  std::unique_ptr<LatencyModel> model(
      new LatencyModel(space, device, config, FromStateTag{}));
  const int L = in.i32();
  const int K = in.i32();
  const int F = in.i32();
  const int batch = in.i32();
  if (L != space.num_layers() || K != space.config().num_ops ||
      F != static_cast<int>(space.config().channel_factors.size())) {
    throw Error("LatencyModel: checkpointed LUT dimensions (" +
                std::to_string(L) + "x" + std::to_string(K) + "x" +
                std::to_string(F) + ") do not match the space");
  }
  if (batch != model->config_.batch) {
    throw Error("LatencyModel: checkpoint profiled batch " +
                std::to_string(batch) + ", config wants " +
                std::to_string(model->config_.batch));
  }
  model->lut_ = in.vec_f64(static_cast<std::size_t>(L) *
                           static_cast<std::size_t>(K) *
                           static_cast<std::size_t>(F));
  if (model->lut_.size() != static_cast<std::size_t>(L) * K * F) {
    throw Error("LatencyModel: checkpointed LUT has " +
                std::to_string(model->lut_.size()) + " entries, expected " +
                std::to_string(static_cast<std::size_t>(L) * K * F));
  }
  model->stem_ms_ = in.f64();
  model->head_ms_ = in.f64();
  const bool has_i8 = in.u8() != 0;
  if (has_i8 != space.config().search_quantization) {
    throw Error(std::string("LatencyModel: checkpoint ") +
                (has_i8 ? "has" : "lacks") +
                " an int8 LUT but the space's search_quantization is " +
                (space.config().search_quantization ? "on" : "off"));
  }
  if (has_i8) {
    model->lut_i8_ = in.vec_f64(static_cast<std::size_t>(L) *
                                static_cast<std::size_t>(K) *
                                static_cast<std::size_t>(F));
    if (model->lut_i8_.size() != model->lut_.size()) {
      throw Error("LatencyModel: checkpointed int8 LUT has " +
                  std::to_string(model->lut_i8_.size()) +
                  " entries, expected " + std::to_string(model->lut_.size()));
    }
    model->stem_i8_ms_ = in.f64();
    model->head_i8_ms_ = in.f64();
  }
  model->bias_ = in.f64();
  model->noise_rng_.set_state(in.rng_state());
  return model;
}

void LatencyModel::build_lut() {
  HSCONAS_TRACE_SCOPE("latency.build_lut");
  const int L = space_.num_layers();
  const int K = space_.config().num_ops;
  const int F = static_cast<int>(space_.config().channel_factors.size());
  // A quantization-aware space profiles each (layer, op, factor) on both
  // datapaths — two LUTs, twice the (simulated) profiling bill, exactly as
  // a real deployment would pay per precision.
  const bool with_i8 = space_.config().search_quantization;
  obs::counter("hsconas.latency.lut_entries_built")
      .add(static_cast<std::uint64_t>(L) * static_cast<std::uint64_t>(K) *
           static_cast<std::uint64_t>(F) * (with_i8 ? 2 : 1));
  lut_.assign(static_cast<std::size_t>(L) * K * F, 0.0);
  if (with_i8) lut_i8_.assign(lut_.size(), 0.0);

  for (int l = 0; l < L; ++l) {
    const LayerInfo& info = space_.layer(l);
    for (int op = 0; op < K; ++op) {
      for (int f = 0; f < F; ++f) {
        const double factor =
            space_.config().channel_factors[static_cast<std::size_t>(f)];
        hwsim::LayerDesc layer =
            lower_layer(info, space_.config().family, op, factor);
        const std::size_t idx =
            (static_cast<std::size_t>(l) * K + op) * F + f;
        lut_[idx] = device_.layer_latency_ms(layer, config_.batch);
        if (with_i8) {
          hwsim::set_layer_dtype(layer, hwsim::DataType::kI8);
          lut_i8_[idx] = device_.layer_latency_ms(layer, config_.batch);
        }
      }
    }
  }

  long size = space_.body_input_size();
  for (int l = 0; l < L; ++l) {
    if (space_.layer(l).stride == 2) size = (size + 1) / 2;
  }
  hwsim::LayerDesc stem = lower_stem(space_.config());
  hwsim::LayerDesc head = lower_head(space_.config(), size);
  stem_ms_ = device_.layer_latency_ms(stem, config_.batch);
  head_ms_ = device_.layer_latency_ms(head, config_.batch);
  if (with_i8) {
    hwsim::set_layer_dtype(stem, hwsim::DataType::kI8);
    hwsim::set_layer_dtype(head, hwsim::DataType::kI8);
    stem_i8_ms_ = device_.layer_latency_ms(stem, config_.batch);
    head_i8_ms_ = device_.layer_latency_ms(head, config_.batch);
  }
}

void LatencyModel::calibrate_bias() {
  HSCONAS_TRACE_SCOPE("latency.calibrate_bias");
  // Eq. 3: B = mean over M sampled archs of (on-device latency − LUT sum).
  util::Rng rng(config_.seed);
  double gap = 0.0;
  for (int i = 0; i < config_.bias_samples; ++i) {
    const Arch arch = Arch::random(space_, rng);
    device_probe_counter().add();
    const double on_device = device_.network_latency_ms(
        lower_network(arch, space_), config_.batch,
        config_.measurement_noise ? &rng : nullptr);
    gap += on_device - predict_uncorrected_ms(arch);
  }
  bias_ = gap / static_cast<double>(config_.bias_samples);
}

double LatencyModel::lut_ms(int layer, int op, int factor) const {
  const int K = space_.config().num_ops;
  const int F = static_cast<int>(space_.config().channel_factors.size());
  HSCONAS_CHECK_MSG(layer >= 0 && layer < space_.num_layers() && op >= 0 &&
                        op < K && factor >= 0 && factor < F,
                    "LatencyModel::lut_ms: index out of range");
  return lut_[(static_cast<std::size_t>(layer) * K + op) * F + factor];
}

double LatencyModel::lut_i8_ms(int layer, int op, int factor) const {
  if (!quantized()) {
    throw Error(
        "LatencyModel::lut_i8_ms: model built without quantization "
        "(enable SearchSpaceConfig::search_quantization)");
  }
  const int K = space_.config().num_ops;
  const int F = static_cast<int>(space_.config().channel_factors.size());
  HSCONAS_CHECK_MSG(layer >= 0 && layer < space_.num_layers() && op >= 0 &&
                        op < K && factor >= 0 && factor < F,
                    "LatencyModel::lut_i8_ms: index out of range");
  return lut_i8_[(static_cast<std::size_t>(layer) * K + op) * F + factor];
}

double LatencyModel::predict_uncorrected_ms(const Arch& arch) const {
  arch.validate(space_);
  const bool i8 = arch.quant != 0;
  if (i8 && !quantized()) {
    throw Error(
        "LatencyModel: cannot price an int8 arch — the model was built "
        "without quantization (enable "
        "SearchSpaceConfig::search_quantization)");
  }
  const std::vector<double>& lut = i8 ? lut_i8_ : lut_;
  const int K = space_.config().num_ops;
  const int F = static_cast<int>(space_.config().channel_factors.size());
  double total = i8 ? stem_i8_ms_ + head_i8_ms_ : stem_ms_ + head_ms_;
  for (int l = 0; l < space_.num_layers(); ++l) {
    total += lut[(static_cast<std::size_t>(l) * K +
                  arch.ops[static_cast<std::size_t>(l)]) *
                     F +
                 arch.factors[static_cast<std::size_t>(l)]];
  }
  return total;
}

double LatencyModel::predict_ms(const Arch& arch) const {
  lut_hit_counter().add();
  return predict_uncorrected_ms(arch) + bias_;
}

double LatencyModel::measure_ms(const Arch& arch) {
  device_probe_counter().add();
  return device_.network_latency_ms(
      lower_network(arch, space_), config_.batch,
      config_.measurement_noise ? &noise_rng_ : nullptr);
}

double LatencyModel::true_ms(const Arch& arch) const {
  return device_.network_latency_ms(lower_network(arch, space_),
                                    config_.batch, nullptr);
}

}  // namespace hsconas::core
