#pragma once

#include <vector>

#include "core/arch.h"
#include "core/energy_model.h"
#include "core/latency_model.h"
#include "core/objective.h"
#include "core/space_shrinking.h"  // AccuracyFn

namespace hsconas::core {

/// Evolutionary architecture search (§III-D, Eq. 5): generational EA over
/// {opˡ, cˡ} genomes with top-k parent selection, uniform crossover and
/// per-layer mutation at both the operator and the channel level. Paper
/// defaults: 20 generations, population 50, 20 parents, pc = pm = 0.25.
class EvolutionSearch {
 public:
  struct Config {
    int generations = 20;
    int population = 50;
    int parents = 20;
    double crossover_prob = 0.25;
    double mutation_prob = 0.25;
    /// Per-layer gene resample probability once an arch is selected for
    /// mutation (so mutation changes a couple of layers, not all 20).
    double gene_mutation_prob = 0.1;
    std::uint64_t seed = 99;
  };

  struct Candidate {
    Arch arch;
    double accuracy = 0.0;
    double latency_ms = 0.0;
    double energy_mj = 0.0;  ///< 0 unless an EnergyModel was supplied
    double score = -1e300;   ///< F(arch, T)
  };

  struct GenerationStats {
    int generation = 0;
    double best_score = 0.0;
    double mean_score = 0.0;
    double best_latency_ms = 0.0;  ///< latency of the best candidate
    double best_accuracy = 0.0;
  };

  struct Result {
    Candidate best;
    std::vector<GenerationStats> per_generation;
    /// Every distinct candidate evaluated during the search (for the
    /// Fig. 6 latency histogram).
    std::vector<Candidate> evaluated;
  };

  EvolutionSearch(const SearchSpace& space, AccuracyFn accuracy,
                  const LatencyModel& latency, Objective objective,
                  Config config);

  /// Energy-aware variant (§V extension): candidates are additionally
  /// priced by the energy model and scored with the γ term of Objective.
  EvolutionSearch(const SearchSpace& space, AccuracyFn accuracy,
                  const LatencyModel& latency, const EnergyModel& energy,
                  Objective objective, Config config);

  Result run();

 private:
  Candidate evaluate(Arch arch);
  Arch crossover(const Arch& a, const Arch& b);
  Arch mutate(Arch arch);

  const SearchSpace& space_;
  AccuracyFn accuracy_;
  const LatencyModel& latency_;
  const EnergyModel* energy_ = nullptr;  ///< optional, non-owning
  Objective objective_;
  Config config_;
  util::Rng rng_;
};

}  // namespace hsconas::core
