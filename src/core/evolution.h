#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/arch.h"
#include "core/energy_model.h"
#include "core/latency_model.h"
#include "core/objective.h"
#include "core/space_shrinking.h"  // AccuracyFn

namespace hsconas::util {
class ThreadPool;
}

namespace hsconas::core {

/// Latency memo keyed by Arch::hash(), made collision-safe by storing the
/// genome each value was computed for: lookup() verifies the stored arch
/// matches, so a hash collision falls through to a fresh prediction
/// instead of silently returning another architecture's latency.
class ArchLatencyMemo {
 public:
  /// True (and *ms set) only when `key` maps to exactly `arch`.
  bool lookup(std::uint64_t key, const Arch& arch, double* ms) const {
    const auto it = map_.find(key);
    if (it == map_.end() || !(it->second.first == arch)) return false;
    *ms = it->second.second;
    return true;
  }
  /// First writer wins on collision (the colliding arch just stays
  /// unmemoized — correctness over hit rate).
  void store(std::uint64_t key, const Arch& arch, double ms) {
    map_.emplace(key, std::make_pair(arch, ms));
  }
  std::size_t size() const { return map_.size(); }

 private:
  std::unordered_map<std::uint64_t, std::pair<Arch, double>> map_;
};

/// Evolutionary architecture search (§III-D, Eq. 5): generational EA over
/// {opˡ, cˡ} genomes with top-k parent selection, uniform crossover and
/// per-layer mutation at both the operator and the channel level. Paper
/// defaults: 20 generations, population 50, 20 parents, pc = pm = 0.25.
///
/// Candidate evaluation is batched per generation: offspring genomes are
/// bred serially (all RNG decisions happen on one thread, in a fixed
/// order) and then scored either inline or across a thread pool. Because
/// scoring touches no shared mutable state, the parallel schedule is
/// bit-identical to serial execution for a fixed seed — same Result.best,
/// same per_generation stats — regardless of worker count.
class EvolutionSearch {
 public:
  struct Config {
    int generations = 20;
    int population = 50;
    int parents = 20;
    double crossover_prob = 0.25;
    double mutation_prob = 0.25;
    /// Per-layer gene resample probability once an arch is selected for
    /// mutation (so mutation changes a couple of layers, not all 20).
    double gene_mutation_prob = 0.1;
    std::uint64_t seed = 99;
    /// Score candidates concurrently via the thread pool. Requires the
    /// accuracy functor (and energy model, when present) to be safe to
    /// call from multiple threads at once — true for the pure
    /// AccuracySurrogate, NOT true for supernet/trainer-backed functors,
    /// which mutate module state on every forward pass.
    bool parallel_eval = false;
    /// Pool for parallel_eval; nullptr means util::ThreadPool::global().
    util::ThreadPool* pool = nullptr;
  };

  struct Candidate {
    Arch arch;
    double accuracy = 0.0;
    double latency_ms = 0.0;
    double energy_mj = 0.0;  ///< 0 unless an EnergyModel was supplied
    double score = -1e300;   ///< F(arch, T)
  };

  struct GenerationStats {
    int generation = 0;
    double best_score = 0.0;
    double mean_score = 0.0;
    double best_latency_ms = 0.0;  ///< latency of the best candidate
    double best_accuracy = 0.0;
  };

  struct Result {
    Candidate best;
    std::vector<GenerationStats> per_generation;
    /// Every distinct candidate evaluated during the search (for the
    /// Fig. 6 latency histogram).
    std::vector<Candidate> evaluated;
  };

  EvolutionSearch(const SearchSpace& space, AccuracyFn accuracy,
                  const LatencyModel& latency, Objective objective,
                  Config config);

  /// Energy-aware variant (§V extension): candidates are additionally
  /// priced by the energy model and scored with the γ term of Objective.
  EvolutionSearch(const SearchSpace& space, AccuracyFn accuracy,
                  const LatencyModel& latency, const EnergyModel& energy,
                  Objective objective, Config config);

  /// Called after the initial population is scored (generation == -1) and
  /// after every completed generation (0-based index) — the checkpoint
  /// hook: at each call the search's exported state is a consistent
  /// boundary a resumed run can continue from deterministically.
  using GenerationCallback = std::function<void(int generation)>;

  /// Run (or, after import_state, continue) the search to completion.
  /// Bit-identical to an uninterrupted run for a fixed seed regardless of
  /// how many export/import cycles happened at generation boundaries.
  Result run(const GenerationCallback& on_generation = nullptr);

  /// Generations fully completed so far (resume progress indicator).
  int generations_completed() const { return next_generation_; }

  /// Serialize/restore the full search state: RNG stream, dedup set,
  /// current population, and the result-so-far. The latency memo is NOT
  /// serialized — predictions are deterministic, so it refills on demand.
  void export_state(util::ByteWriter& out) const;
  void import_state(util::ByteReader& in);

 private:
  void init_population();
  void step_generation();
  Candidate evaluate(Arch arch);
  /// Score a bred batch, preserving index order; parallel when configured.
  std::vector<Candidate> evaluate_batch(std::vector<Arch> archs);
  /// LatencyModel::predict_ms memoized via ArchLatencyMemo — repeat
  /// genotypes (elites, re-bred duplicates) never re-walk the LUT, and a
  /// hash collision falls through to a fresh prediction.
  double cached_latency_ms(const Arch& arch);
  Arch crossover(const Arch& a, const Arch& b);
  Arch mutate(Arch arch);

  const SearchSpace& space_;
  AccuracyFn accuracy_;
  const LatencyModel& latency_;
  const EnergyModel* energy_ = nullptr;  ///< optional, non-owning
  Objective objective_;
  Config config_;
  util::Rng rng_;

  // ---- resumable run state (serialized by export_state) -------------------
  bool initialized_ = false;   ///< initial population bred & scored
  int next_generation_ = 0;    ///< generations completed so far
  std::vector<Candidate> population_;
  std::unordered_set<std::uint64_t> seen_;
  Result result_;

  ArchLatencyMemo latency_memo_;
  std::mutex memo_mutex_;
  /// This search's own memo statistics (the registry counters aggregate
  /// across all searches in the process); atomics because evaluate() runs
  /// across the pool. Feeds the per-generation memo-hit-rate gauge.
  std::atomic<std::uint64_t> memo_hits_{0};
  std::atomic<std::uint64_t> memo_misses_{0};
};

}  // namespace hsconas::core
