#pragma once

#include <vector>

#include "core/arch.h"
#include "core/search_space.h"
#include "hwsim/device.h"

namespace hsconas::core {

/// Learned alternative to the Eq. 2–3 LUT model: ridge regression over
/// per-(layer, operator) indicator features, trained on end-to-end
/// measurements. This is the style of predictor used by several
/// hardware-aware NAS systems (layer-wise regression a la nn-Meter); the
/// `bench_ablation_predictors` harness compares it against the paper's
/// LUT + bias approach at equal measurement budgets.
///
/// Features per architecture (dimension 2·L·K + 1):
///   [1] ∪ { 1{opˡ = k} } ∪ { 1{opˡ = k} · cˡ }  for every layer l, op k.
/// The factor-scaled indicator captures the (roughly linear) width
/// dependence of each operator's latency.
class LatencyRegressor {
 public:
  struct Config {
    int train_samples = 200;   ///< end-to-end measurements to fit on
    double ridge_lambda = 1e-2;
    int batch = 1;
    std::uint64_t seed = 1234;
    bool measurement_noise = true;
  };

  /// Samples `train_samples` archs uniformly, measures each end-to-end on
  /// the simulator, and fits the ridge system (normal equations +
  /// Gaussian elimination — the design matrix is tiny).
  LatencyRegressor(const SearchSpace& space,
                   const hwsim::DeviceSimulator& device, Config config);

  double predict_ms(const Arch& arch) const;

  int num_features() const { return static_cast<int>(weights_.size()); }
  double training_rmse_ms() const { return training_rmse_; }
  int training_samples() const { return config_.train_samples; }

 private:
  std::vector<double> featurize(const Arch& arch) const;

  const SearchSpace& space_;
  Config config_;
  std::vector<double> weights_;
  double training_rmse_ = 0.0;
};

/// Solve (A + λI) x = b in place for symmetric positive-definite A via
/// Gaussian elimination with partial pivoting. Exposed for tests.
std::vector<double> solve_ridge(std::vector<std::vector<double>> a,
                                std::vector<double> b, double lambda);

}  // namespace hsconas::core
