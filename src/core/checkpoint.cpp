#include "core/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "nn/quantize.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/timer.h"

namespace hsconas::core {

namespace {

constexpr char kMagic[4] = {'H', 'S', 'C', 'K'};
constexpr std::size_t kMaxSectionName = 256;
constexpr std::size_t kMaxSections = 1024;
constexpr std::size_t kMaxParamName = 4096;
constexpr std::size_t kMaxParamDims = 8;

obs::Counter& save_counter() {
  static obs::Counter& c = obs::counter("hsconas.checkpoint.saves");
  return c;
}
obs::Counter& load_counter() {
  static obs::Counter& c = obs::counter("hsconas.checkpoint.loads");
  return c;
}
obs::Counter& load_failure_counter() {
  static obs::Counter& c = obs::counter("hsconas.checkpoint.load_failures");
  return c;
}
obs::Counter& bytes_written_counter() {
  static obs::Counter& c = obs::counter("hsconas.checkpoint.bytes_written");
  return c;
}
obs::Histogram& save_histogram() {
  static obs::Histogram& h = obs::histogram("hsconas.checkpoint.save_ms");
  return h;
}
obs::Histogram& load_histogram() {
  static obs::Histogram& h = obs::histogram("hsconas.checkpoint.load_ms");
  return h;
}

/// Section CRC seed. Version 3 folds the header's version field into every
/// section CRC: the version byte itself is not CRC-protected, and with two
/// accepted versions a bit flip between them (3 ↔ 2) would otherwise parse
/// cleanly — seeding the CRCs with the version makes any such flip fail
/// every section check. Version 2 files keep their original unseeded CRCs.
std::uint32_t crc_seed(std::uint32_t version) {
  if (version < 3) return 0;
  unsigned char v[4] = {static_cast<unsigned char>(version & 0xff),
                        static_cast<unsigned char>((version >> 8) & 0xff),
                        static_cast<unsigned char>((version >> 16) & 0xff),
                        static_cast<unsigned char>((version >> 24) & 0xff)};
  return util::crc32(v, sizeof(v));
}

/// RAII FILE handle so error paths cannot leak the descriptor.
struct File {
  std::FILE* f = nullptr;
  explicit File(std::FILE* handle) : f(handle) {}
  ~File() {
    if (f != nullptr) std::fclose(f);
  }
  /// Close eagerly (flushing libc buffers); returns false on failure.
  bool close() {
    std::FILE* h = f;
    f = nullptr;
    return std::fclose(h) == 0;
  }
};

}  // namespace

void CheckpointWriter::add_section(const std::string& name,
                                   std::string payload) {
  if (name.empty() || name.size() > kMaxSectionName) {
    throw InvalidArgument("checkpoint: bad section name '" + name + "'");
  }
  sections_[name] = std::move(payload);
}

void CheckpointWriter::save(const std::string& path) const {
  HSCONAS_TRACE_SCOPE("checkpoint.save");
  util::Timer timer;
  if (sections_.size() > kMaxSections) {
    throw InvalidArgument("checkpoint: too many sections");
  }

  util::ByteWriter image;
  image.bytes(kMagic, sizeof(kMagic));
  image.u32(kCheckpointVersion);
  image.u32(static_cast<std::uint32_t>(sections_.size()));
  for (const auto& [name, payload] : sections_) {
    image.str(name);
    image.u64(payload.size());
    const std::uint32_t crc = util::crc32(
        payload.data(), payload.size(),
        util::crc32(name.data(), name.size(),
                    crc_seed(kCheckpointVersion)));
    image.u32(crc);
    image.bytes(payload.data(), payload.size());
  }

  const std::string tmp = path + ".tmp";
  {
    File out(std::fopen(tmp.c_str(), "wb"));
    if (out.f == nullptr) {
      throw Error("checkpoint: cannot open " + tmp + " for writing");
    }
    const std::string& buf = image.data();
    const bool ok =
        std::fwrite(buf.data(), 1, buf.size(), out.f) == buf.size() &&
        std::fflush(out.f) == 0;
#if defined(__unix__) || defined(__APPLE__)
    // Push the data to the device before the rename makes it the live
    // checkpoint; otherwise a power loss could publish an empty file.
    const bool synced = ok && ::fsync(::fileno(out.f)) == 0;
#else
    const bool synced = ok;
#endif
    if (!synced || !out.close()) {
      std::remove(tmp.c_str());
      throw Error("checkpoint: write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("checkpoint: rename " + tmp + " -> " + path + " failed");
  }
  save_counter().add();
  bytes_written_counter().add(image.size());
  save_histogram().record(timer.millis());
}

std::map<std::string, std::string> parse_checkpoint_image(
    const std::string& image) {
  std::map<std::string, std::string> sections;
  util::ByteReader r(image);
  char magic[4];
  r.bytes(magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw Error("bad magic");
  }
  const std::uint32_t version = r.u32();
  if (version < kMinCheckpointVersion || version > kCheckpointVersion) {
    throw Error("unsupported version " + std::to_string(version));
  }
  const std::uint32_t count = r.u32();
  if (count > kMaxSections) {
    throw Error("section count " + std::to_string(count) + " too large");
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string name = r.str(kMaxSectionName);
    if (name.empty()) throw Error("empty section name");
    const std::uint64_t size = r.u64();
    const std::uint32_t crc = r.u32();
    if (size > r.remaining()) {
      throw Error("section '" + name + "' exceeds file size");
    }
    std::string payload(static_cast<std::size_t>(size), '\0');
    r.bytes(payload.data(), payload.size());
    const std::uint32_t actual = util::crc32(
        payload.data(), payload.size(),
        util::crc32(name.data(), name.size(), crc_seed(version)));
    if (actual != crc) {
      throw Error("CRC mismatch in section '" + name + "'");
    }
    if (!sections.emplace(name, std::move(payload)).second) {
      throw Error("duplicate section '" + name + "'");
    }
  }
  r.expect_done();
  return sections;
}

CheckpointReader::CheckpointReader(const std::string& path) : path_(path) {
  HSCONAS_TRACE_SCOPE("checkpoint.load");
  util::Timer timer;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    load_failure_counter().add();
    throw Error("checkpoint: cannot open " + path);
  }
  std::ostringstream os;
  os << in.rdbuf();

  try {
    sections_ = parse_checkpoint_image(os.str());
  } catch (const Error& e) {
    load_failure_counter().add();
    throw Error("checkpoint: " + std::string(e.what()) + " in " + path);
  }
  load_counter().add();
  load_histogram().record(timer.millis());
}

bool CheckpointReader::has(const std::string& name) const {
  return sections_.count(name) != 0;
}

const std::string& CheckpointReader::section(const std::string& name) const {
  const auto it = sections_.find(name);
  if (it == sections_.end()) {
    throw Error("checkpoint: missing section '" + name + "' in " + path_);
  }
  return it->second;
}

std::vector<std::string> CheckpointReader::names() const {
  std::vector<std::string> out;
  out.reserve(sections_.size());
  for (const auto& [name, payload] : sections_) out.push_back(name);
  return out;
}

std::string write_parameters_payload(
    const std::vector<nn::Parameter*>& params) {
  util::ByteWriter out;
  out.u64(params.size());
  for (const nn::Parameter* p : params) {
    HSCONAS_CHECK_MSG(p != nullptr, "write_parameters_payload: null param");
    out.str(p->name);
    const auto& shape = p->value.shape();
    out.u32(static_cast<std::uint32_t>(shape.size()));
    for (long d : shape) out.i64(d);
    out.vec_f32(p->value.data(),
                static_cast<std::size_t>(p->value.numel()));
  }
  return out.take();
}

void read_parameters_payload(const std::vector<nn::Parameter*>& params,
                             util::ByteReader& in) {
  const std::uint64_t count = in.u64();
  if (count != params.size()) {
    throw Error("checkpoint: file has " + std::to_string(count) +
                " parameters, model expects " +
                std::to_string(params.size()));
  }

  std::map<std::string, nn::Parameter*> by_name;
  for (nn::Parameter* p : params) {
    HSCONAS_CHECK_MSG(p != nullptr, "read_parameters_payload: null param");
    if (!by_name.emplace(p->name, p).second) {
      throw Error("checkpoint: duplicate parameter name '" + p->name + "'");
    }
  }

  for (std::uint64_t i = 0; i < count; ++i) {
    // str() and the dim cap bound every size before it is allocated, so a
    // corrupt header fails cleanly instead of requesting gigabytes.
    const std::string name = in.str(kMaxParamName);
    const std::uint32_t ndim = in.u32();
    if (ndim > kMaxParamDims) {
      throw Error("checkpoint: parameter '" + name + "' claims " +
                  std::to_string(ndim) + " dimensions");
    }
    std::vector<long> shape(ndim);
    for (auto& d : shape) d = static_cast<long>(in.i64());

    const auto it = by_name.find(name);
    if (it == by_name.end()) {
      throw Error("checkpoint: unexpected parameter '" + name + "'");
    }
    nn::Parameter* p = it->second;
    if (p->value.shape() != shape) {
      throw Error("checkpoint: shape mismatch for '" + name + "'");
    }
    in.vec_f32_into(p->value.data(),
                    static_cast<std::size_t>(p->value.numel()));
    by_name.erase(it);
  }
  if (!by_name.empty()) {
    throw Error("checkpoint: parameter '" + by_name.begin()->first +
                "' missing from file");
  }
}

void save_parameters(const std::vector<nn::Parameter*>& params,
                     const std::string& path) {
  CheckpointWriter writer;
  writer.add_section("params", write_parameters_payload(params));
  writer.save(path);
}

void load_parameters(const std::vector<nn::Parameter*>& params,
                     const std::string& path) {
  const CheckpointReader reader(path);
  util::ByteReader in(reader.section("params"));
  read_parameters_payload(params, in);
  in.expect_done();
}

std::string write_calibration_payload(nn::Module& root) {
  util::ByteWriter out;
  nn::export_calibration(root, out);
  return out.take();
}

void read_calibration_payload(nn::Module& root, const std::string& payload) {
  util::ByteReader in(payload);
  nn::import_calibration(root, in);
  in.expect_done();
}

}  // namespace hsconas::core
