#include "core/checkpoint.h"

#include <cstring>
#include <fstream>
#include <map>

#include "util/error.h"

namespace hsconas::core {

namespace {

constexpr char kMagic[4] = {'H', 'S', 'C', 'K'};

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw Error("checkpoint: truncated file");
  return value;
}

}  // namespace

void save_parameters(const std::vector<nn::Parameter*>& params,
                     const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("checkpoint: cannot open " + path + " for writing");

  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kCheckpointVersion);
  write_pod(out, static_cast<std::uint64_t>(params.size()));

  for (const nn::Parameter* p : params) {
    HSCONAS_CHECK_MSG(p != nullptr, "save_parameters: null parameter");
    write_pod(out, static_cast<std::uint32_t>(p->name.size()));
    out.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    const auto& shape = p->value.shape();
    write_pod(out, static_cast<std::uint32_t>(shape.size()));
    for (long d : shape) write_pod(out, static_cast<std::int64_t>(d));
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(
                  static_cast<std::size_t>(p->value.numel()) *
                  sizeof(float)));
  }
  if (!out) throw Error("checkpoint: write failed for " + path);
}

void load_parameters(const std::vector<nn::Parameter*>& params,
                     const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("checkpoint: cannot open " + path);

  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw Error("checkpoint: bad magic in " + path);
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kCheckpointVersion) {
    throw Error("checkpoint: unsupported version " +
                std::to_string(version));
  }
  const auto count = read_pod<std::uint64_t>(in);
  if (count != params.size()) {
    throw Error("checkpoint: file has " + std::to_string(count) +
                " parameters, model expects " +
                std::to_string(params.size()));
  }

  std::map<std::string, nn::Parameter*> by_name;
  for (nn::Parameter* p : params) {
    HSCONAS_CHECK_MSG(p != nullptr, "load_parameters: null parameter");
    if (!by_name.emplace(p->name, p).second) {
      throw Error("checkpoint: duplicate parameter name '" + p->name + "'");
    }
  }

  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name_len = read_pod<std::uint32_t>(in);
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    const auto ndim = read_pod<std::uint32_t>(in);
    std::vector<long> shape(ndim);
    for (auto& d : shape) d = static_cast<long>(read_pod<std::int64_t>(in));

    const auto it = by_name.find(name);
    if (it == by_name.end()) {
      throw Error("checkpoint: unexpected parameter '" + name + "'");
    }
    nn::Parameter* p = it->second;
    if (p->value.shape() != shape) {
      throw Error("checkpoint: shape mismatch for '" + name + "'");
    }
    in.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(
                static_cast<std::size_t>(p->value.numel()) * sizeof(float)));
    if (!in) throw Error("checkpoint: truncated data for '" + name + "'");
    by_name.erase(it);
  }
  if (!by_name.empty()) {
    throw Error("checkpoint: parameter '" + by_name.begin()->first +
                "' missing from file");
  }
}

}  // namespace hsconas::core
