#include "core/trainer.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/serial.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {
hsconas::obs::Counter& step_counter() {
  static hsconas::obs::Counter& c =
      hsconas::obs::counter("hsconas.train.steps");
  return c;
}
hsconas::obs::Histogram& step_histogram() {
  static hsconas::obs::Histogram& h =
      hsconas::obs::histogram("hsconas.train.step_ms");
  return h;
}
}  // namespace

namespace hsconas::core {

SupernetTrainer::SupernetTrainer(Supernet& supernet,
                                 const data::SyntheticDataset& dataset,
                                 TrainConfig config)
    : supernet_(supernet),
      dataset_(dataset),
      config_(config),
      optimizer_(supernet.parameters(),
                 nn::SGD::Config{config.lr, config.momentum,
                                 config.weight_decay, config.grad_clip}),
      train_loader_(dataset, config.batch_size, /*train=*/true,
                    config.seed ^ 0x10adull),
      arch_rng_(config.seed ^ 0xa5c4ull) {}

double SupernetTrainer::step(const data::Batch& batch, const Arch& arch,
                             double lr) {
  util::Timer timer;
  step_counter().add();
  supernet_.set_training(true);
  optimizer_.set_lr(lr);
  optimizer_.zero_grad();
  const tensor::Tensor logits = supernet_.forward(batch.images, arch);
  const nn::LossResult res =
      nn::cross_entropy(logits, batch.labels, config_.label_smoothing);
  supernet_.backward(res.grad);
  optimizer_.step();
  step_histogram().record(timer.millis());
  return res.loss;
}

double SupernetTrainer::step_fair(const data::Batch& batch, double lr,
                                  std::vector<Arch>* sampled) {
  util::Timer timer;
  step_counter().add();
  HSCONAS_CHECK_MSG(!supernet_.is_standalone(),
                    "step_fair: standalone networks have a single path");
  const SearchSpace& space = supernet_.space();
  const int L = space.num_layers();
  const int K = space.config().num_ops;

  // One operator permutation per layer, drawn from the layer's *allowed*
  // list (shrunk layers simply repeat their surviving op).
  std::vector<std::vector<int>> perms(static_cast<std::size_t>(L));
  for (int l = 0; l < L; ++l) {
    std::vector<int> perm;
    const auto& allowed = space.allowed_ops(l);
    // Cycle the allowed list up to K entries after shuffling.
    std::vector<int> pool = allowed;
    arch_rng_.shuffle(pool);
    for (int k = 0; k < K; ++k) {
      perm.push_back(pool[static_cast<std::size_t>(k) % pool.size()]);
    }
    perms[static_cast<std::size_t>(l)] = std::move(perm);
  }

  supernet_.set_training(true);
  optimizer_.set_lr(lr);
  optimizer_.zero_grad();
  double loss_sum = 0.0;
  for (int k = 0; k < K; ++k) {
    Arch arch;
    arch.ops.reserve(static_cast<std::size_t>(L));
    arch.factors.reserve(static_cast<std::size_t>(L));
    for (int l = 0; l < L; ++l) {
      arch.ops.push_back(perms[static_cast<std::size_t>(l)]
                              [static_cast<std::size_t>(k)]);
      arch.factors.push_back(arch_rng_.choice(space.allowed_factors(l)));
    }
    if (sampled != nullptr) sampled->push_back(arch);
    const tensor::Tensor logits = supernet_.forward(batch.images, arch);
    const nn::LossResult res =
        nn::cross_entropy(logits, batch.labels, config_.label_smoothing);
    supernet_.backward(res.grad);  // accumulates into shared grads
    loss_sum += res.loss;
  }
  optimizer_.step();
  step_histogram().record(timer.millis());
  return loss_sum / static_cast<double>(K);
}

std::vector<EpochStats> SupernetTrainer::run(int epochs, double lr) {
  return run(epochs, lr, /*start_epoch=*/0, /*on_epoch=*/nullptr);
}

std::vector<EpochStats> SupernetTrainer::run(int epochs, double lr,
                                             int start_epoch,
                                             const EpochCallback& on_epoch) {
  HSCONAS_TRACE_SCOPE("train.run");
  HSCONAS_CHECK_MSG(start_epoch >= 0 && start_epoch <= epochs,
                    "SupernetTrainer::run: start_epoch out of range");
  const double base_lr = lr >= 0.0 ? lr : config_.lr;
  const long steps_per_epoch =
      static_cast<long>(train_loader_.num_batches());
  // The schedule spans the full run: a resume at start_epoch > 0 lands on
  // the same point of the cosine curve the uninterrupted run would be at.
  const nn::CosineSchedule schedule(
      base_lr, static_cast<long>(epochs) * steps_per_epoch,
      static_cast<long>(config_.warmup_epochs) * steps_per_epoch,
      config_.final_lr);

  std::vector<EpochStats> stats;
  long step_index = static_cast<long>(start_epoch) * steps_per_epoch;
  for (int e = start_epoch; e < epochs; ++e) {
    HSCONAS_TRACE_SCOPE("train.epoch");
    train_loader_.start_epoch();
    double loss_sum = 0.0;
    std::size_t correct = 0, total = 0;
    for (std::size_t b = 0; b < train_loader_.num_batches(); ++b) {
      data::Batch batch = train_loader_.batch(b);
      const double cur_lr = schedule.lr_at(step_index++);
      if (config_.fair_sampling && !supernet_.is_standalone()) {
        const double loss = step_fair(batch, cur_lr);
        loss_sum += loss * static_cast<double>(batch.labels.size());
        // Training accuracy under fair sampling: use the last micro-step's
        // statistics via a cheap re-evaluation pass? Not worth K more
        // forwards — report loss-only epochs (top1 stays 0 here).
        total += batch.labels.size();
        continue;
      }
      // Single-path uniform sampling from the current (shrunk) space.
      const Arch arch = supernet_.is_standalone()
                            ? supernet_.fixed_arch()
                            : Arch::random(supernet_.space(), arch_rng_);
      util::Timer step_timer;
      step_counter().add();
      supernet_.set_training(true);
      optimizer_.set_lr(cur_lr);
      optimizer_.zero_grad();
      const tensor::Tensor logits = supernet_.forward(batch.images, arch);
      const nn::LossResult res =
          nn::cross_entropy(logits, batch.labels, config_.label_smoothing);
      supernet_.backward(res.grad);
      optimizer_.step();
      step_histogram().record(step_timer.millis());

      loss_sum += res.loss * static_cast<double>(batch.labels.size());
      correct += res.correct_top1;
      total += batch.labels.size();
    }
    EpochStats ep;
    ep.epoch = static_cast<int>(history_.size());
    ep.loss = loss_sum / static_cast<double>(total);
    ep.top1 = static_cast<double>(correct) / static_cast<double>(total);
    ep.lr = schedule.lr_at(std::max<long>(0, step_index - 1));
    history_.push_back(ep);
    stats.push_back(ep);
    if (config_.verbose) {
      HSCONAS_LOG_INFO << "epoch " << ep.epoch << " loss "
                       << util::format("%.4f", ep.loss) << " top1 "
                       << util::format("%.3f", ep.top1) << " lr "
                       << util::format("%.4f", ep.lr);
    }
    if (on_epoch) on_epoch(e, ep);
  }
  return stats;
}

void SupernetTrainer::export_state(util::ByteWriter& out) const {
  out.rng_state(arch_rng_.state());
  train_loader_.export_state(out);
  optimizer_.export_state(out);
  out.u64(history_.size());
  for (const EpochStats& ep : history_) {
    out.i32(ep.epoch);
    out.f64(ep.loss);
    out.f64(ep.top1);
    out.f64(ep.lr);
  }
}

void SupernetTrainer::import_state(util::ByteReader& in) {
  arch_rng_.set_state(in.rng_state());
  train_loader_.import_state(in);
  optimizer_.import_state(in);
  const std::size_t n = static_cast<std::size_t>(in.u64());
  history_.clear();
  history_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    EpochStats ep;
    ep.epoch = in.i32();
    ep.loss = in.f64();
    ep.top1 = in.f64();
    ep.lr = in.f64();
    history_.push_back(ep);
  }
}

double SupernetTrainer::evaluate(const Arch& arch,
                                 std::size_t eval_batches) {
  return supernet_.evaluate(dataset_, arch, config_.batch_size,
                            eval_batches);
}

FromScratchResult train_from_scratch(const SearchSpace& space,
                                     const Arch& arch,
                                     const data::SyntheticDataset& dataset,
                                     const TrainConfig& config) {
  Supernet net(space, config.seed ^ 0x5c7a7cull, arch);
  SupernetTrainer trainer(net, dataset, config);
  FromScratchResult result;
  result.history = trainer.run(config.epochs);
  result.val_top1 = net.evaluate(dataset, arch, config.batch_size);
  return result;
}

FromScratchResult fine_tune_subnet(Supernet& supernet, const Arch& arch,
                                   const data::SyntheticDataset& dataset,
                                   const TrainConfig& config) {
  std::unique_ptr<Supernet> subnet =
      supernet.extract_subnet(arch, config.seed ^ 0xf17eull);
  SupernetTrainer trainer(*subnet, dataset, config);
  FromScratchResult result;
  result.history = trainer.run(config.epochs);
  result.val_top1 = subnet->evaluate(dataset, arch, config.batch_size);
  return result;
}

}  // namespace hsconas::core
