#pragma once

#include <string>
#include <vector>

#include "nn/blocks.h"
#include "util/rng.h"
#include "util/serial.h"

namespace hsconas::core {

/// Static description of the HSCoNAS search space (§II-A, §III-B):
/// a supernet of L layers, K = 5 candidate operators per layer, and a list
/// C of channel scaling factors applied per layer. With the paper's
/// defaults (L = 20, K = 5, |C| = 10) the space holds (K·|C|)^L ≈ 9.5e33
/// candidates — the size quoted in §III-A.
struct SearchSpaceConfig {
  /// Operator family the K candidates are drawn from. The default is the
  /// paper's ShuffleNetV2 family; kMbConv gives a ProxylessNAS/FBNet-style
  /// inverted-residual space with the same K = 5 and therefore the same
  /// |A| arithmetic.
  nn::OpFamily family = nn::OpFamily::kShuffleV2;

  // Macro-architecture (SPOS-style backbone).
  std::vector<int> stage_blocks = {4, 4, 8, 4};
  std::vector<long> stage_channels = {48, 128, 256, 512};  ///< layout A
  std::vector<bool> stage_downsample = {true, true, true, true};
  long stem_channels = 16;
  long head_channels = 1024;
  bool stem_stride2 = true;

  // Task geometry.
  long input_channels = 3;
  long input_size = 224;
  int num_classes = 1000;

  // Searchable dimensions.
  int num_ops = nn::kNumBlockKinds;  ///< K
  std::vector<double> channel_factors = {0.1, 0.2, 0.3, 0.4, 0.5,
                                         0.6, 0.7, 0.8, 0.9, 1.0};

  /// Add a network-level quantization gene (Arch::quant) to the space:
  /// candidates may run int8 post-training-quantized inference, trading a
  /// small accuracy drop for the device's narrow-datapath speedup. Off by
  /// default — samplers draw no extra RNG when disabled, so existing
  /// seeded streams are unchanged.
  bool search_quantization = false;

  int num_layers() const;  ///< L = sum of stage_blocks

  /// log10 of |A| = (num_ops · |C|)^L.
  double log10_space_size() const;

  /// Paper channel layouts (§IV-B).
  static SearchSpaceConfig imagenet_layout_a();
  static SearchSpaceConfig imagenet_layout_b();

  /// Copy of this config using the given operator family.
  SearchSpaceConfig with_family(nn::OpFamily new_family) const;

  /// Small-scale config for the synthetic proxy task: trains in seconds on
  /// a laptop CPU while preserving the search structure (multiple stages,
  /// stride-2 layers, per-layer op + channel choices).
  static SearchSpaceConfig proxy(int num_classes = 10, long image_size = 16,
                                 int blocks_per_stage = 2);

  void validate() const;  ///< throws InvalidArgument on nonsense
};

/// Geometry of one supernet layer, derived from the config.
struct LayerInfo {
  int index = 0;       ///< 0-based layer index
  int stage = 0;
  long in_channels = 0;
  long out_channels = 0;
  long stride = 1;
  long in_h = 0;       ///< input spatial size (square)
  long in_w = 0;
};

/// Resolved view of the search space: per-layer geometry plus the
/// per-layer *allowed* choice lists, which progressive space shrinking
/// (§III-C) narrows in place.
class SearchSpace {
 public:
  explicit SearchSpace(SearchSpaceConfig config);

  const SearchSpaceConfig& config() const { return config_; }
  int num_layers() const { return static_cast<int>(layers_.size()); }
  const LayerInfo& layer(int l) const { return layers_.at(static_cast<std::size_t>(l)); }

  /// Spatial size entering the first searchable layer.
  long body_input_size() const { return body_input_size_; }

  /// Display name of operator index `op` under this space's family.
  const char* op_name(int op) const {
    return nn::family_op_name(config_.family, op);
  }

  // ---- shrinking state -----------------------------------------------------
  const std::vector<int>& allowed_ops(int l) const;
  const std::vector<int>& allowed_factors(int l) const;

  /// Restrict layer l to a single operator (space shrinking's decision).
  void fix_op(int l, int op);

  /// True if layer l has been fixed to one operator.
  bool is_fixed(int l) const;

  /// log10 of the *current* (possibly shrunk) space size.
  double log10_size() const;

  /// Whether an operator index makes sense at layer l. (All K ops are legal
  /// everywhere by construction — skip lowers to a projection at stride-2
  /// layers — so this only bounds-checks; kept as an extension point.)
  bool op_allowed(int l, int op) const;

  /// Serialize the shrinking state (per-layer allowed op/factor lists) for
  /// checkpoint/resume. import_shrink_state validates layer count and
  /// every index before touching the space.
  void export_shrink_state(util::ByteWriter& out) const;
  void import_shrink_state(util::ByteReader& in);

 private:
  SearchSpaceConfig config_;
  std::vector<LayerInfo> layers_;
  std::vector<std::vector<int>> allowed_ops_;
  std::vector<std::vector<int>> allowed_factors_;
  long body_input_size_ = 0;
};

}  // namespace hsconas::core
