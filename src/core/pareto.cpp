#include "core/pareto.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "util/error.h"
#include "util/stats.h"

namespace hsconas::core {

ParetoSearch::ParetoSearch(const SearchSpace& space, AccuracyFn accuracy,
                           const LatencyModel& latency, Config config)
    : space_(space),
      accuracy_(std::move(accuracy)),
      latency_(latency),
      config_(config),
      rng_(config.seed) {
  HSCONAS_CHECK_MSG(accuracy_ != nullptr, "ParetoSearch: null accuracy");
  if (config_.population < 4 || config_.generations < 1) {
    throw InvalidArgument("ParetoSearch: bad configuration");
  }
}

bool ParetoSearch::dominates(const Candidate& a, const Candidate& b) {
  const bool no_worse =
      a.accuracy >= b.accuracy && a.latency_ms <= b.latency_ms;
  const bool strictly_better =
      a.accuracy > b.accuracy || a.latency_ms < b.latency_ms;
  return no_worse && strictly_better;
}

std::vector<std::size_t> ParetoSearch::non_dominated(
    const std::vector<Candidate>& candidates) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < candidates.size() && !dominated; ++j) {
      if (j != i && dominates(candidates[j], candidates[i])) {
        dominated = true;
      }
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

std::vector<std::vector<std::size_t>> ParetoSearch::sort_fronts(
    const std::vector<Candidate>& pop) const {
  // Classic fast non-dominated sort.
  const std::size_t n = pop.size();
  std::vector<int> domination_count(n, 0);
  std::vector<std::vector<std::size_t>> dominated_by(n);
  std::vector<std::vector<std::size_t>> fronts(1);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (dominates(pop[i], pop[j])) {
        dominated_by[i].push_back(j);
      } else if (dominates(pop[j], pop[i])) {
        ++domination_count[i];
      }
    }
    if (domination_count[i] == 0) fronts[0].push_back(i);
  }

  std::size_t current = 0;
  while (current < fronts.size() && !fronts[current].empty()) {
    std::vector<std::size_t> next;
    for (std::size_t i : fronts[current]) {
      for (std::size_t j : dominated_by[i]) {
        if (--domination_count[j] == 0) next.push_back(j);
      }
    }
    if (!next.empty()) fronts.push_back(std::move(next));
    ++current;
  }
  return fronts;
}

std::vector<double> ParetoSearch::crowding(
    const std::vector<Candidate>& pop,
    const std::vector<std::size_t>& front) const {
  std::vector<double> distance(pop.size(), 0.0);
  if (front.size() <= 2) {
    for (std::size_t i : front) {
      distance[i] = std::numeric_limits<double>::infinity();
    }
    return distance;
  }
  const auto accumulate_axis = [&](auto value_of) {
    std::vector<std::size_t> order = front;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                return value_of(pop[a]) < value_of(pop[b]);
              });
    const double span =
        value_of(pop[order.back()]) - value_of(pop[order.front()]);
    distance[order.front()] = std::numeric_limits<double>::infinity();
    distance[order.back()] = std::numeric_limits<double>::infinity();
    if (span <= 0.0) return;
    for (std::size_t k = 1; k + 1 < order.size(); ++k) {
      distance[order[k]] += (value_of(pop[order[k + 1]]) -
                             value_of(pop[order[k - 1]])) /
                            span;
    }
  };
  accumulate_axis([](const Candidate& c) { return c.accuracy; });
  accumulate_axis([](const Candidate& c) { return c.latency_ms; });
  return distance;
}

ParetoSearch::Candidate ParetoSearch::evaluate(Arch arch) {
  Candidate c;
  c.arch = std::move(arch);
  c.accuracy = accuracy_(c.arch);
  c.latency_ms = latency_.predict_ms(c.arch);
  c.score = c.accuracy;  // informational only
  return c;
}

ParetoSearch::Result ParetoSearch::run() {
  Result result;
  std::unordered_set<std::uint64_t> seen;

  std::vector<Candidate> population;
  while (static_cast<int>(population.size()) < config_.population) {
    Arch arch = Arch::random(space_, rng_);
    if (!seen.insert(arch.hash()).second) continue;
    population.push_back(evaluate(std::move(arch)));
  }

  // Reference latency for the convergence diagnostic.
  std::vector<double> initial_latencies;
  for (const Candidate& c : population) {
    initial_latencies.push_back(c.latency_ms);
  }
  const double median_latency = util::percentile(initial_latencies, 50.0);

  for (int gen = 0; gen < config_.generations; ++gen) {
    // Offspring: binary tournament on (front rank implicit via dominance,
    // fall back to crowding-free random pick), then variation.
    std::vector<Candidate> offspring;
    int guard = 0;
    while (static_cast<int>(offspring.size()) < config_.population &&
           guard < config_.population * 50) {
      ++guard;
      const Candidate& p1 = population[rng_.index(population.size())];
      const Candidate& p2 = population[rng_.index(population.size())];
      const Candidate& winner = dominates(p2, p1) ? p2 : p1;
      Arch child = winner.arch;
      if (rng_.bernoulli(config_.crossover_prob)) {
        const Candidate& other = population[rng_.index(population.size())];
        for (int l = 0; l < child.num_layers(); ++l) {
          if (rng_.bernoulli(0.5)) {
            child.ops[static_cast<std::size_t>(l)] =
                other.arch.ops[static_cast<std::size_t>(l)];
            child.factors[static_cast<std::size_t>(l)] =
                other.arch.factors[static_cast<std::size_t>(l)];
          }
        }
        // Quant gene crossover — gated so quantization-free runs keep
        // their classic RNG stream.
        if (space_.config().search_quantization && rng_.bernoulli(0.5)) {
          child.quant = other.arch.quant;
        }
      }
      bool mutated = false;
      if (rng_.bernoulli(config_.mutation_prob)) {
        for (int l = 0; l < child.num_layers(); ++l) {
          if (rng_.bernoulli(config_.gene_mutation_prob)) {
            child.ops[static_cast<std::size_t>(l)] =
                rng_.choice(space_.allowed_ops(l));
            mutated = true;
          }
          if (rng_.bernoulli(config_.gene_mutation_prob)) {
            child.factors[static_cast<std::size_t>(l)] =
                rng_.choice(space_.allowed_factors(l));
            mutated = true;
          }
        }
        if (space_.config().search_quantization &&
            rng_.bernoulli(config_.gene_mutation_prob)) {
          child.quant ^= 1;
          mutated = true;
        }
      }
      if (!mutated && seen.count(child.hash()) > 0) {
        // duplicate of an evaluated arch and unmutated: nudge one gene
        const int l = static_cast<int>(
            rng_.index(static_cast<std::size_t>(child.num_layers())));
        child.factors[static_cast<std::size_t>(l)] =
            rng_.choice(space_.allowed_factors(l));
      }
      if (!seen.insert(child.hash()).second) continue;
      offspring.push_back(evaluate(std::move(child)));
    }

    // Environmental selection: NSGA-II elitist truncation.
    std::vector<Candidate> merged = population;
    merged.insert(merged.end(), offspring.begin(), offspring.end());
    const auto fronts = sort_fronts(merged);

    std::vector<Candidate> next;
    for (const auto& front : fronts) {
      if (static_cast<int>(next.size() + front.size()) <=
          config_.population) {
        for (std::size_t i : front) next.push_back(merged[i]);
      } else {
        const auto distance = crowding(merged, front);
        std::vector<std::size_t> order = front;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                    return distance[a] > distance[b];
                  });
        for (std::size_t i : order) {
          if (static_cast<int>(next.size()) >= config_.population) break;
          next.push_back(merged[i]);
        }
        break;
      }
    }
    population = std::move(next);

    const auto nd = non_dominated(population);
    result.front_size_history.push_back(static_cast<int>(nd.size()));
    double best_acc = 0.0;
    for (const Candidate& c : population) {
      if (c.latency_ms <= median_latency) {
        best_acc = std::max(best_acc, c.accuracy);
      }
    }
    result.best_acc_below_median.push_back(best_acc);
  }

  const auto nd = non_dominated(population);
  for (std::size_t i : nd) result.front.push_back(population[i]);
  std::sort(result.front.begin(), result.front.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.latency_ms < b.latency_ms;
            });
  return result;
}

}  // namespace hsconas::core
