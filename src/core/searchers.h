#pragma once

#include <deque>

#include "core/evolution.h"

namespace hsconas::core {

/// Uniform random search — the null hypothesis every NAS method must beat
/// at equal evaluation budget.
class RandomSearch {
 public:
  struct Config {
    int evaluations = 1000;
    std::uint64_t seed = 71;
  };

  RandomSearch(const SearchSpace& space, AccuracyFn accuracy,
               const LatencyModel& latency, Objective objective,
               Config config);

  struct Result {
    EvolutionSearch::Candidate best;
    std::vector<EvolutionSearch::Candidate> evaluated;
    /// Best score after each evaluation (anytime curve).
    std::vector<double> best_curve;
  };

  Result run();

 private:
  const SearchSpace& space_;
  AccuracyFn accuracy_;
  const LatencyModel& latency_;
  Objective objective_;
  Config config_;
  util::Rng rng_;
};

/// Regularized ("aging") evolution — Real et al., AAAI 2019, the paper's
/// reference [12] for why EA is preferred over RL. A sliding population:
/// each step tournament-selects a parent, mutates one gene, evaluates the
/// child, and retires the *oldest* member (not the worst), which keeps
/// exploration alive. Provided alongside the paper's generational EA so
/// the two selection schemes can be ablated against each other.
class AgingEvolution {
 public:
  struct Config {
    int evaluations = 1000;   ///< total children evaluated
    int population = 50;
    int tournament = 10;      ///< sample size per parent selection
    double gene_mutation_prob = 0.1;
    std::uint64_t seed = 72;
  };

  AgingEvolution(const SearchSpace& space, AccuracyFn accuracy,
                 const LatencyModel& latency, Objective objective,
                 Config config);

  struct Result {
    EvolutionSearch::Candidate best;
    std::vector<EvolutionSearch::Candidate> evaluated;
    std::vector<double> best_curve;
  };

  Result run();

 private:
  EvolutionSearch::Candidate evaluate(Arch arch);
  Arch mutate(Arch arch);

  const SearchSpace& space_;
  AccuracyFn accuracy_;
  const LatencyModel& latency_;
  Objective objective_;
  Config config_;
  util::Rng rng_;
};

}  // namespace hsconas::core
