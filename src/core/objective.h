#pragma once

#include <cmath>

namespace hsconas::core {

/// The multi-objective score of Eq. 1:
///
///   F(arch, T) = ACC(arch) + β · |LAT(arch)/T − 1|,  β < 0.
///
/// ACC is a fraction in [0, 1]; the latency term penalizes any deviation
/// from the constraint T (the absolute value is taken exactly as the paper
/// writes it — this is why the EA's population concentrates *around* T in
/// Fig. 6 rather than merely below it).
/// The extension hook of §V ("incorporate different hardware constraints
/// like power consumption") adds an optional energy term of the same form:
///
///   F = ACC + β·|LAT/T − 1| + γ·|E/E_budget − 1|,  β, γ ≤ 0.
///
/// γ = 0 (default) reduces exactly to the paper's Eq. 1.
struct Objective {
  double beta = -0.3;
  double constraint_ms = 34.0;  ///< T

  double gamma = 0.0;            ///< energy trade-off coefficient (<= 0)
  double energy_budget_mj = 0.0; ///< required when gamma != 0

  double score(double accuracy, double latency_ms) const {
    return accuracy + beta * std::abs(latency_ms / constraint_ms - 1.0);
  }

  double score(double accuracy, double latency_ms, double energy_mj) const {
    double f = score(accuracy, latency_ms);
    if (gamma != 0.0 && energy_budget_mj > 0.0) {
      f += gamma * std::abs(energy_mj / energy_budget_mj - 1.0);
    }
    return f;
  }

  bool energy_aware() const {
    return gamma != 0.0 && energy_budget_mj > 0.0;
  }
};

}  // namespace hsconas::core
