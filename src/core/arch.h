#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/search_space.h"
#include "util/json.h"

namespace hsconas::core {

/// An architecture candidate: arch = {opˡ, cˡ} for l = 1..L (§III-B).
/// `ops[l]` indexes nn::BlockKind; `factors[l]` indexes
/// SearchSpaceConfig::channel_factors.
struct Arch {
  std::vector<int> ops;
  std::vector<int> factors;
  /// Network-level quantization gene: 0 = fp32 inference, 1 = int8
  /// post-training-quantized inference. Only sampled/mutated when
  /// SearchSpaceConfig::search_quantization is set; always representable
  /// so externally specified int8 archs can be priced.
  int quant = 0;

  int num_layers() const { return static_cast<int>(ops.size()); }

  bool operator==(const Arch& other) const = default;

  /// Stable hash for dedup sets during search.
  std::uint64_t hash() const;

  /// Compact human-readable form, e.g. "k3@0.5 | skip@1.0 | ...".
  /// Quantized archs carry an "int8:: " prefix.
  std::string to_string(const SearchSpace& space) const;

  util::Json to_json(const SearchSpace& space) const;

  /// Uniform sample respecting the space's current (possibly shrunk)
  /// allowed lists.
  static Arch random(const SearchSpace& space, util::Rng& rng);

  /// Uniform sample with layer `fixed_layer` forced to `fixed_op`
  /// (the subspace sampler of Definition 1).
  static Arch random_with_fixed_op(const SearchSpace& space, util::Rng& rng,
                                   int fixed_layer, int fixed_op);

  /// Parse the to_string() format back into an Arch:
  /// "shuffle_k3@0.5 | skip@1.0 | ...". Factors must match one of the
  /// space's channel factors (within 1e-9). Throws InvalidArgument on any
  /// malformed or unknown token.
  [[nodiscard]] static Arch from_string(const SearchSpace& space,
                                        const std::string& s);

  /// Throws InvalidArgument unless the arch is well-formed for the space
  /// (right length, indices in range). Does NOT require it to respect the
  /// shrunk allowed lists — pre-shrink archs remain representable.
  void validate(const SearchSpace& space) const;

  /// True if every gene is inside the space's current allowed lists.
  bool in_space(const SearchSpace& space) const;
};

}  // namespace hsconas::core
