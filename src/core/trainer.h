#pragma once

#include <functional>
#include <vector>

#include "core/supernet.h"
#include "data/loader.h"
#include "nn/optimizer.h"

namespace hsconas::core {

/// Training hyper-parameters (§IV-A defaults, scaled-down values are used
/// by tests/benches via the proxy configs).
struct TrainConfig {
  int epochs = 10;
  std::size_t batch_size = 64;
  double lr = 0.5;
  double final_lr = 0.0;
  int warmup_epochs = 0;
  double momentum = 0.9;
  double weight_decay = 3e-5;
  double grad_clip = 5.0;
  double label_smoothing = 0.0;
  std::uint64_t seed = 2024;
  bool verbose = false;

  /// Strict-fair operator sampling (FairNAS-style): instead of one uniform
  /// path per step, every step runs K micro-steps whose per-layer operators
  /// form a random permutation of the K candidates, accumulating gradients
  /// before a single optimizer update — each operator receives exactly one
  /// gradient contribution per step. Channel factors stay uniform-random.
  /// Ignored for standalone (fixed-arch) networks. K× cost per step.
  bool fair_sampling = false;
};

struct EpochStats {
  int epoch = 0;
  double loss = 0.0;
  double top1 = 0.0;       ///< training accuracy
  double lr = 0.0;
};

/// Single-path uniform-sampling trainer for the weight-sharing supernet:
/// each step samples one arch uniformly from the *current* (possibly
/// shrunk) space, so supernet tuning after a shrink stage (§III-C)
/// automatically concentrates on the surviving subspace.
class SupernetTrainer {
 public:
  SupernetTrainer(Supernet& supernet, const data::SyntheticDataset& dataset,
                  TrainConfig config);

  /// Called after each completed epoch with its 0-based index *within this
  /// run* and the epoch's stats — the checkpoint hook: at every call the
  /// trainer (plus the supernet's parameters) is at a clean epoch boundary.
  using EpochCallback = std::function<void(int epoch, const EpochStats&)>;

  /// Run `epochs` epochs with a cosine schedule from `lr` (overrides the
  /// config value when >= 0) down to final_lr. Appends to history().
  std::vector<EpochStats> run(int epochs, double lr = -1.0);

  /// Resumable variant: the cosine schedule always spans the *full*
  /// `epochs` run, but execution starts at `start_epoch` (epochs before it
  /// are assumed already done by the run this trainer was restored from).
  /// Combined with import_state + restored supernet parameters, this
  /// replays the exact remaining steps an uninterrupted run would take.
  std::vector<EpochStats> run(int epochs, double lr, int start_epoch,
                              const EpochCallback& on_epoch);

  /// One optimizer step on one batch with the given arch; exposed so tests
  /// can drive training deterministically.
  double step(const data::Batch& batch, const Arch& arch, double lr);

  /// One strict-fair step: K accumulated micro-steps (see
  /// TrainConfig::fair_sampling), one optimizer update. Returns the mean
  /// micro-step loss and reports the sampled op matrix through `sampled`
  /// when non-null (K rows of L operator indices).
  double step_fair(const data::Batch& batch, double lr,
                   std::vector<Arch>* sampled = nullptr);

  const std::vector<EpochStats>& history() const { return history_; }

  /// Mean validation top-1 over `eval_batches` batches for one arch.
  double evaluate(const Arch& arch, std::size_t eval_batches = 0);

  /// Checkpoint/resume: both RNG streams (path sampling + loader
  /// shuffle/augment), the optimizer's momentum buffers, and the epoch
  /// history. Supernet *parameters* are serialized separately (they belong
  /// to the net, not the trainer).
  void export_state(util::ByteWriter& out) const;
  void import_state(util::ByteReader& in);

 private:
  Supernet& supernet_;
  const data::SyntheticDataset& dataset_;
  TrainConfig config_;
  nn::SGD optimizer_;
  data::DataLoader train_loader_;
  util::Rng arch_rng_;
  std::vector<EpochStats> history_;
};

/// Train a standalone (fixed-arch) network from scratch and report final
/// validation accuracy — the "trained from scratch for fair comparison"
/// protocol of §IV-A. Returns (val_top1, history).
struct FromScratchResult {
  double val_top1 = 0.0;
  std::vector<EpochStats> history;
};
FromScratchResult train_from_scratch(const SearchSpace& space,
                                     const Arch& arch,
                                     const data::SyntheticDataset& dataset,
                                     const TrainConfig& config);

/// Fine-tune `arch` starting from the supernet's shared weights
/// (OFA-style inheritance via Supernet::extract_subnet) instead of a fresh
/// initialization. Typically reaches from-scratch accuracy in a fraction
/// of the epochs — see the weight-inheritance rows of the Fig. 5 bench.
FromScratchResult fine_tune_subnet(Supernet& supernet, const Arch& arch,
                                   const data::SyntheticDataset& dataset,
                                   const TrainConfig& config);

}  // namespace hsconas::core
