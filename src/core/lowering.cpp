#include "core/lowering.h"

#include <algorithm>
#include <cmath>

#include "nn/mask.h"
#include "util/error.h"
#include "util/string_util.h"

namespace hsconas::core {

using hwsim::LayerDesc;
using hwsim::NetworkDesc;
using hwsim::OpDescriptor;
using nn::BlockKind;

namespace {

void push_conv_bn(LayerDesc& layer, long in_ch, long out_ch, long h, long w,
                  long kernel, long stride, long groups) {
  if (groups == in_ch && in_ch == out_ch) {
    layer.ops.push_back(OpDescriptor::depthwise(in_ch, h, w, kernel, stride));
  } else {
    layer.ops.push_back(
        OpDescriptor::conv(in_ch, out_ch, h, w, kernel, stride, groups));
  }
  const OpDescriptor& conv = layer.ops.back();
  layer.ops.push_back(
      OpDescriptor::elementwise(out_ch, conv.out_h(), conv.out_w()));
}

}  // namespace

LayerDesc lower_layer(const LayerInfo& info, BlockKind kind,
                      double channel_factor) {
  LayerDesc layer;
  layer.name = util::format("layer%d.%s", info.index,
                            nn::block_kind_name(kind));
  const long h = info.in_h, w = info.in_w;
  const long out_h = (info.stride == 2) ? (h + 1) / 2 : h;
  const long out_w = (info.stride == 2) ? (w + 1) / 2 : w;
  layer.out_channels = info.out_channels;
  layer.out_h = out_h;
  layer.out_w = out_w;

  if (kind == BlockKind::kSkip) {
    if (info.stride == 1) return layer;  // pure identity: zero kernels
    // Reduction skip: minimal projection branch on the full input.
    push_conv_bn(layer, info.in_channels, info.in_channels, h, w, 3, 2,
                 info.in_channels);
    push_conv_bn(layer, info.in_channels, info.out_channels, out_h, out_w, 1,
                 1, 1);
    return layer;
  }

  const long branch_out = info.out_channels / 2;
  const long mid = nn::scaled_channels(branch_out, channel_factor);
  const long kernel = nn::block_kernel(kind);

  if (info.stride == 1) {
    const long branch_in = info.in_channels / 2;
    if (kind == BlockKind::kXception) {
      push_conv_bn(layer, branch_in, branch_in, h, w, 3, 1, branch_in);
      push_conv_bn(layer, branch_in, mid, h, w, 1, 1, 1);
      push_conv_bn(layer, mid, mid, h, w, 3, 1, mid);
      push_conv_bn(layer, mid, mid, h, w, 1, 1, 1);
      push_conv_bn(layer, mid, mid, h, w, 3, 1, mid);
      push_conv_bn(layer, mid, branch_out, h, w, 1, 1, 1);
    } else {
      push_conv_bn(layer, branch_in, mid, h, w, 1, 1, 1);
      push_conv_bn(layer, mid, mid, h, w, kernel, 1, mid);
      push_conv_bn(layer, mid, branch_out, h, w, 1, 1, 1);
    }
  } else {
    // Main branch.
    if (kind == BlockKind::kXception) {
      push_conv_bn(layer, info.in_channels, info.in_channels, h, w, 3, 2,
                   info.in_channels);
      push_conv_bn(layer, info.in_channels, mid, out_h, out_w, 1, 1, 1);
      push_conv_bn(layer, mid, mid, out_h, out_w, 3, 1, mid);
      push_conv_bn(layer, mid, mid, out_h, out_w, 1, 1, 1);
      push_conv_bn(layer, mid, mid, out_h, out_w, 3, 1, mid);
      push_conv_bn(layer, mid, branch_out, out_h, out_w, 1, 1, 1);
    } else {
      push_conv_bn(layer, info.in_channels, mid, h, w, 1, 1, 1);
      push_conv_bn(layer, mid, mid, h, w, kernel, 2, mid);
      push_conv_bn(layer, mid, branch_out, out_h, out_w, 1, 1, 1);
    }
    // Projection branch.
    push_conv_bn(layer, info.in_channels, info.in_channels, h, w, 3, 2,
                 info.in_channels);
    push_conv_bn(layer, info.in_channels, branch_out, out_h, out_w, 1, 1, 1);
  }

  layer.ops.push_back(
      OpDescriptor::shuffle(info.out_channels, out_h, out_w));
  return layer;
}

namespace {

/// MBConv family lowering — mirrors nn::MbConvChoiceBlock op for op.
LayerDesc lower_mbconv_layer(const LayerInfo& info, double expansion,
                             long kernel, double channel_factor) {
  LayerDesc layer;
  const long h = info.in_h, w = info.in_w;
  const long out_h = (info.stride == 2) ? (h + 1) / 2 : h;
  const long out_w = (info.stride == 2) ? (w + 1) / 2 : w;
  layer.out_channels = info.out_channels;
  layer.out_h = out_h;
  layer.out_w = out_w;

  if (expansion <= 0.0) {  // skip
    layer.name = util::format("layer%d.skip", info.index);
    if (info.stride == 1) return layer;
    push_conv_bn(layer, info.in_channels, info.in_channels, h, w, 3, 2,
                 info.in_channels);
    push_conv_bn(layer, info.in_channels, info.out_channels, out_h, out_w, 1,
                 1, 1);
    return layer;
  }

  const long mid_max = std::max<long>(
      1, static_cast<long>(std::llround(
             expansion * static_cast<double>(info.in_channels))));
  const long mid = nn::scaled_channels(mid_max, channel_factor);
  layer.name = util::format("layer%d.mb_e%.0fk%ld", info.index, expansion,
                            kernel);
  push_conv_bn(layer, info.in_channels, mid, h, w, 1, 1, 1);
  push_conv_bn(layer, mid, mid, h, w, kernel, info.stride, mid);
  push_conv_bn(layer, mid, info.out_channels, out_h, out_w, 1, 1, 1);
  if (info.stride == 1 && info.in_channels == info.out_channels) {
    layer.ops.push_back(
        OpDescriptor::elementwise(info.out_channels, out_h, out_w));
  }
  return layer;
}

}  // namespace

LayerDesc lower_layer(const LayerInfo& info, nn::OpFamily family, int op,
                      double channel_factor) {
  switch (family) {
    case nn::OpFamily::kShuffleV2:
      return lower_layer(info, static_cast<nn::BlockKind>(op),
                         channel_factor);
    case nn::OpFamily::kMbConv: {
      // Keep this table in sync with nn/choice_block.cpp's kMbConvOps.
      static constexpr struct {
        double e;
        long k;
      } kOps[] = {{3, 3}, {6, 3}, {3, 5}, {6, 5}, {0, 3}};
      HSCONAS_CHECK_MSG(op >= 0 && op < 5, "lower_layer: mbconv op range");
      return lower_mbconv_layer(info, kOps[op].e, kOps[op].k,
                                channel_factor);
    }
  }
  throw InvalidArgument("lower_layer: unknown family");
}

LayerDesc lower_stem(const SearchSpaceConfig& config) {
  LayerDesc stem;
  stem.name = "stem";
  const long stride = config.stem_stride2 ? 2 : 1;
  push_conv_bn(stem, config.input_channels, config.stem_channels,
               config.input_size, config.input_size, 3, stride, 1);
  const OpDescriptor& conv = stem.ops.front();
  stem.out_channels = config.stem_channels;
  stem.out_h = conv.out_h();
  stem.out_w = conv.out_w();
  return stem;
}

LayerDesc lower_head(const SearchSpaceConfig& config, long body_out_size) {
  LayerDesc head;
  head.name = "head";
  const long in_ch = config.stage_channels.back();
  push_conv_bn(head, in_ch, config.head_channels, body_out_size,
               body_out_size, 1, 1, 1);
  // Global average pool to 1×1 (explicit zero padding).
  OpDescriptor gap = OpDescriptor::pool(config.head_channels, body_out_size,
                                        body_out_size, body_out_size,
                                        body_out_size);
  gap.pad = 0;
  head.ops.push_back(gap);
  head.ops.push_back(
      OpDescriptor::linear(config.head_channels, config.num_classes));
  head.out_channels = config.num_classes;
  head.out_h = 1;
  head.out_w = 1;
  return head;
}

NetworkDesc lower_network(const Arch& arch, const SearchSpace& space,
                          const LoweringOptions& opts) {
  NetworkDesc net = lower_network(arch, space);
  if (opts.fuse_conv_epilogues) hwsim::fuse_conv_epilogues(net);
  if (opts.dtype != hwsim::DataType::kF32) {
    hwsim::set_network_dtype(net, opts.dtype);
  }
  return net;
}

NetworkDesc lower_network(const Arch& arch, const SearchSpace& space) {
  arch.validate(space);
  NetworkDesc net;
  net.reserve(static_cast<std::size_t>(space.num_layers()) + 2);
  net.push_back(lower_stem(space.config()));

  long size = space.body_input_size();
  for (int l = 0; l < space.num_layers(); ++l) {
    const LayerInfo& info = space.layer(l);
    HSCONAS_CHECK_MSG(info.in_h == size, "lower_network: geometry drift");
    const double factor = space.config().channel_factors.at(
        static_cast<std::size_t>(arch.factors[static_cast<std::size_t>(l)]));
    net.push_back(lower_layer(info, space.config().family,
                              arch.ops[static_cast<std::size_t>(l)], factor));
    if (info.stride == 2) size = (size + 1) / 2;
  }

  net.push_back(lower_head(space.config(), size));
  // The quant gene applies network-wide: the whole graph (stem and head
  // included) runs int8, matching the nn-layer calibration which quantizes
  // every conv/linear. MAC counters are dtype-invariant, so arch_macs /
  // arch_params are unchanged by this.
  if (arch.quant != 0) {
    hwsim::set_network_dtype(net, hwsim::DataType::kI8);
  }
  return net;
}

double arch_macs(const Arch& arch, const SearchSpace& space) {
  return hwsim::network_macs(lower_network(arch, space));
}

double arch_params(const Arch& arch, const SearchSpace& space) {
  return hwsim::network_params(lower_network(arch, space));
}

}  // namespace hsconas::core
