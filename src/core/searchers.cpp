#include "core/searchers.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace hsconas::core {

RandomSearch::RandomSearch(const SearchSpace& space, AccuracyFn accuracy,
                           const LatencyModel& latency, Objective objective,
                           Config config)
    : space_(space),
      accuracy_(std::move(accuracy)),
      latency_(latency),
      objective_(objective),
      config_(config),
      rng_(config.seed) {
  HSCONAS_CHECK_MSG(accuracy_ != nullptr, "RandomSearch: null accuracy");
  if (config_.evaluations < 1) {
    throw InvalidArgument("RandomSearch: evaluations must be >= 1");
  }
}

RandomSearch::Result RandomSearch::run() {
  HSCONAS_TRACE_SCOPE("random_search.run");
  static obs::Counter& evaluated =
      obs::counter("hsconas.random_search.candidates_evaluated");
  Result result;
  result.best.score = -1e300;
  for (int i = 0; i < config_.evaluations; ++i) {
    evaluated.add();
    EvolutionSearch::Candidate c;
    c.arch = Arch::random(space_, rng_);
    c.accuracy = accuracy_(c.arch);
    c.latency_ms = latency_.predict_ms(c.arch);
    c.score = objective_.score(c.accuracy, c.latency_ms);
    if (c.score > result.best.score) result.best = c;
    result.evaluated.push_back(std::move(c));
    result.best_curve.push_back(result.best.score);
  }
  return result;
}

AgingEvolution::AgingEvolution(const SearchSpace& space, AccuracyFn accuracy,
                               const LatencyModel& latency,
                               Objective objective, Config config)
    : space_(space),
      accuracy_(std::move(accuracy)),
      latency_(latency),
      objective_(objective),
      config_(config),
      rng_(config.seed) {
  HSCONAS_CHECK_MSG(accuracy_ != nullptr, "AgingEvolution: null accuracy");
  if (config_.population < 2 || config_.tournament < 1 ||
      config_.tournament > config_.population ||
      config_.evaluations < config_.population) {
    throw InvalidArgument("AgingEvolution: bad configuration");
  }
}

EvolutionSearch::Candidate AgingEvolution::evaluate(Arch arch) {
  static obs::Counter& evaluated =
      obs::counter("hsconas.aging_evolution.candidates_evaluated");
  evaluated.add();
  EvolutionSearch::Candidate c;
  c.arch = std::move(arch);
  c.accuracy = accuracy_(c.arch);
  c.latency_ms = latency_.predict_ms(c.arch);
  c.score = objective_.score(c.accuracy, c.latency_ms);
  return c;
}

Arch AgingEvolution::mutate(Arch arch) {
  // REA's canonical mutation: change exactly one thing. We flip either one
  // layer's operator or one layer's channel factor — the paper's two
  // exploration axes.
  const int l = static_cast<int>(
      rng_.index(static_cast<std::size_t>(arch.num_layers())));
  if (rng_.bernoulli(0.5)) {
    arch.ops[static_cast<std::size_t>(l)] = rng_.choice(space_.allowed_ops(l));
  } else {
    arch.factors[static_cast<std::size_t>(l)] =
        rng_.choice(space_.allowed_factors(l));
  }
  return arch;
}

AgingEvolution::Result AgingEvolution::run() {
  HSCONAS_TRACE_SCOPE("aging_evolution.run");
  Result result;
  result.best.score = -1e300;
  std::deque<EvolutionSearch::Candidate> population;

  const auto admit = [&](EvolutionSearch::Candidate c) {
    if (c.score > result.best.score) result.best = c;
    result.evaluated.push_back(c);
    result.best_curve.push_back(result.best.score);
    population.push_back(std::move(c));
  };

  for (int i = 0; i < config_.population; ++i) {
    admit(evaluate(Arch::random(space_, rng_)));
  }

  for (int i = config_.population; i < config_.evaluations; ++i) {
    // Tournament: best of `tournament` uniformly sampled members.
    const EvolutionSearch::Candidate* parent = nullptr;
    for (int t = 0; t < config_.tournament; ++t) {
      const auto& contender = population[rng_.index(population.size())];
      if (parent == nullptr || contender.score > parent->score) {
        parent = &contender;
      }
    }
    admit(evaluate(mutate(parent->arch)));
    population.pop_front();  // retire the oldest, never the worst
  }
  return result;
}

}  // namespace hsconas::core
