#include "serve/batch_server.h"

#include <algorithm>

#include "core/supernet.h"
#include "nn/fused_conv.h"
#include "obs/metrics.h"
#include "obs/timing.h"
#include "tensor/pool_allocator.h"
#include "tensor/tensor.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/rng.h"

namespace hsconas::serve {

namespace {

obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::gauge("hsconas.serve.queue_depth");
  return g;
}

obs::Gauge& queue_depth_peak_gauge() {
  static obs::Gauge& g = obs::gauge("hsconas.serve.queue_depth_peak");
  return g;
}

}  // namespace

/// One in-flight request. Lives on the submitting thread's stack for the
/// whole exchange — the queue holds only pointers — so the request path
/// allocates nothing.
struct BatchServer::Request {
  std::span<const float> input;
  std::span<float> output;
  std::uint64_t ticket = 0;
  std::uint64_t enqueue_ns = 0;
  std::uint64_t batch = 0;
  std::size_t batch_index = 0;
  bool done = false;                ///< guarded by BatchServer::mutex_
  std::exception_ptr error;         ///< set if the lane forward threw
};

BatchServer::BatchServer(const core::SearchSpace& space,
                         const core::Arch& arch, const ServerConfig& config)
    : config_(config), lanes_(std::max<std::size_t>(1, config.workers)) {
  if (config_.batch_max == 0) {
    throw InvalidArgument("BatchServer: batch_max must be >= 1");
  }
  if (config_.workers == 0) config_.workers = 1;
  if (config_.queue_capacity < config_.batch_max) {
    config_.queue_capacity = config_.batch_max;
  }

  const core::SearchSpaceConfig& sc = space.config();
  channels_ = sc.input_channels;
  height_ = sc.input_size;
  width_ = sc.input_size;
  input_size_ = static_cast<std::size_t>(channels_ * height_ * width_);
  output_size_ = static_cast<std::size_t>(sc.num_classes);

  prev_fusion_ = nn::inference_fusion_enabled();
  nn::set_inference_fusion(config_.fuse);
  prev_dtype_ = nn::inference_dtype();

  nets_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    // Same seed for every replica: all lanes hold bit-identical weights,
    // which is what makes "batched == sequential" hold across lanes too.
    nets_.push_back(
        std::make_unique<core::Supernet>(space, config_.seed, arch));
    nets_.back()->set_training(false);
  }

  if (config_.dtype == nn::InferenceDType::kI8) {
    // Identical weights + identical synthetic batches => every replica
    // freezes bit-identical quantizers, preserving the cross-lane
    // determinism contract of the fp32 path.
    if (config_.calibration_batches == 0) config_.calibration_batches = 1;
    util::Rng calib_rng(config_.seed ^ 0xCA11B);
    std::vector<tensor::Tensor> batches;
    batches.reserve(config_.calibration_batches);
    const long n = static_cast<long>(config_.batch_max);
    for (std::size_t b = 0; b < config_.calibration_batches; ++b) {
      batches.push_back(tensor::Tensor::uniform(
          {n, channels_, height_, width_}, -1.0f, 1.0f, calib_rng));
    }
    for (auto& net : nets_) net->calibrate_quant(batches);
    nn::set_inference_dtype(nn::InferenceDType::kI8);
  }

  ring_.assign(config_.queue_capacity, nullptr);

  HSCONAS_LOG_INFO << "serve: batch server up"
      << " batch_max=" << config_.batch_max
      << " deadline_us=" << config_.deadline_us
      << " workers=" << config_.workers
      << " queue=" << config_.queue_capacity
      << " fused=" << (config_.fuse ? 1 : 0)
      << " dtype=" << nn::inference_dtype_name(config_.dtype);

  for (std::size_t i = 0; i < config_.workers; ++i) {
    lanes_.submit([this, i] { lane(i); });
  }
}

BatchServer::~BatchServer() {
  shutdown();
  nn::set_inference_dtype(prev_dtype_);
  nn::set_inference_fusion(prev_fusion_);
}

void BatchServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  cv_space_.notify_all();
  // Lanes drain every queued request before exiting; wait() returns once
  // the last lane task has finished.
  lanes_.wait();
}

BatchServer::Request* BatchServer::pop_front_locked() {
  Request* r = ring_[head_];
  ring_[head_] = nullptr;
  head_ = (head_ + 1) % ring_.size();
  --queued_;
  return r;
}

Receipt BatchServer::infer(std::span<const float> input,
                           std::span<float> output) {
  static obs::Counter& requests = obs::counter("hsconas.serve.requests");
  static obs::Counter& rejected = obs::counter("hsconas.serve.rejected");
  static obs::Histogram& latency =
      obs::histogram("hsconas.serve.latency_ms");

  if (input.size() != input_size_) {
    throw InvalidArgument("BatchServer::infer: input span has " +
                          std::to_string(input.size()) + " floats, expected " +
                          std::to_string(input_size_));
  }
  if (output.size() != output_size_) {
    throw InvalidArgument("BatchServer::infer: output span has " +
                          std::to_string(output.size()) +
                          " floats, expected " + std::to_string(output_size_));
  }

  Request req;
  req.input = input;
  req.output = output;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_space_.wait(lock,
                   [&] { return stopping_ || queued_ < ring_.size(); });
    if (stopping_) {
      rejected.add();
      throw Error("BatchServer::infer: server is shutting down");
    }
    req.ticket = next_ticket_++;
    req.enqueue_ns = obs::monotonic_ns();
    ring_[(head_ + queued_) % ring_.size()] = &req;
    ++queued_;
    const double depth = static_cast<double>(queued_);
    queue_depth_gauge().set(depth);
    queue_depth_peak_gauge().update_max(depth);
  }
  cv_work_.notify_one();

  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&] { return req.done; });
  }
  if (req.error) std::rethrow_exception(req.error);

  Receipt receipt;
  receipt.ticket = req.ticket;
  receipt.batch = req.batch;
  receipt.batch_index = req.batch_index;
  receipt.latency_ms =
      static_cast<double>(obs::monotonic_ns() - req.enqueue_ns) / 1e6;
  latency.record(receipt.latency_ms);
  requests.add();
  return receipt;
}

void BatchServer::lane(std::size_t lane_id) {
  // Lane-thread opt-in to the recycling tensor pool: every batch/
  // activation tensor constructed below is pooled, which is what makes
  // steady-state serving heap-allocation-free.
  tensor::ScopedTensorPool pool_scope;
  core::Supernet& net = *nets_[lane_id];

  std::vector<Request*> claimed;
  claimed.reserve(config_.batch_max);

  for (;;) {
    std::uint64_t batch_id = 0;
    claimed.clear();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      for (;;) {
        cv_work_.wait(lock, [&] { return stopping_ || queued_ > 0; });
        if (queued_ == 0) {
          if (stopping_) return;
          continue;
        }
        // Dynamic batching window: wait for batch_max occupancy, but no
        // longer than deadline_us past the oldest request's arrival.
        // During shutdown, flush immediately to drain.
        const std::uint64_t flush_ns =
            ring_[head_]->enqueue_ns + config_.deadline_us * 1000;
        while (!stopping_ && queued_ > 0 && queued_ < config_.batch_max) {
          const std::uint64_t now = obs::monotonic_ns();
          if (now >= flush_ns) break;
          obs::wait_for_ns(cv_work_, lock, flush_ns - now);
        }
        if (queued_ == 0) continue;  // another lane claimed the window
        break;
      }
      const std::size_t k = std::min(config_.batch_max, queued_);
      batch_id = next_batch_++;
      for (std::size_t i = 0; i < k; ++i) {
        Request* r = pop_front_locked();
        r->batch = batch_id;
        r->batch_index = i;
        claimed.push_back(r);
      }
      queue_depth_gauge().set(static_cast<double>(queued_));
    }
    cv_space_.notify_all();

    run_batch(net, claimed, batch_id);

    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (Request* r : claimed) r->done = true;
    }
    cv_done_.notify_all();
  }
}

void BatchServer::run_batch(core::Supernet& net,
                            std::span<Request* const> batch,
                            std::uint64_t batch_id) {
  static obs::Counter& batches = obs::counter("hsconas.serve.batches");
  static obs::Histogram& occupancy =
      obs::histogram("hsconas.serve.batch_occupancy");
  static obs::Histogram& forward_ms =
      obs::histogram("hsconas.serve.forward_ms");

  const long n = static_cast<long>(batch.size());
  try {
    tensor::Tensor images({n, channels_, height_, width_});
    float* dst = images.data();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      std::copy(batch[i]->input.begin(), batch[i]->input.end(),
                dst + i * input_size_);
    }

    const std::uint64_t t0 = obs::monotonic_ns();
    const tensor::Tensor logits = net.forward(images);
    forward_ms.record(static_cast<double>(obs::monotonic_ns() - t0) / 1e6);

    if (logits.numel() !=
        n * static_cast<long>(output_size_)) {
      throw Error("BatchServer: unexpected logits geometry " +
                  logits.shape_str());
    }
    const float* src = logits.data();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      std::copy(src + i * output_size_, src + (i + 1) * output_size_,
                batch[i]->output.begin());
    }
    batches.add();
    occupancy.record(static_cast<double>(n));
  } catch (...) {
    HSCONAS_LOG_WARN << "serve: batch " << batch_id
                     << " failed; propagating to " << batch.size()
                     << " callers";
    for (Request* r : batch) r->error = std::current_exception();
  }
}

}  // namespace hsconas::serve
