#include "serve/load_gen.h"

#include <atomic>
#include <cmath>
#include <vector>

#include "obs/metrics.h"
#include "obs/timing.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace hsconas::serve {

namespace {

/// Deterministic input for (client, request): reproducible runs, and the
/// response check below can at least pin finiteness.
void synthesize_input(std::vector<float>& input, std::uint64_t seed,
                      std::size_t client, std::size_t request) {
  util::Rng rng(seed + client * 1000003 + request);
  for (float& v : input) {
    v = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
}

bool all_finite(const std::vector<float>& xs) {
  for (float v : xs) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace

util::Json LoadGenReport::to_json() const {
  util::Json doc = util::Json::object();
  doc["schema"] = "hsconas.serving.v1";

  util::Json srv = util::Json::object();
  srv["batch_max"] = static_cast<double>(server.batch_max);
  srv["deadline_us"] = static_cast<double>(server.deadline_us);
  srv["workers"] = static_cast<double>(server.workers);
  srv["queue_capacity"] = static_cast<double>(server.queue_capacity);
  srv["fused"] = server.fuse;
  doc["server"] = std::move(srv);

  util::Json lg = util::Json::object();
  lg["clients"] = static_cast<double>(load.clients);
  lg["requests_per_client"] = static_cast<double>(load.requests_per_client);
  lg["warmup_per_client"] = static_cast<double>(load.warmup_per_client);
  doc["load"] = std::move(lg);

  util::Json res = util::Json::object();
  res["total_requests"] = static_cast<double>(total_requests);
  res["errors"] = static_cast<double>(errors);
  res["duration_ms"] = duration_ms;
  res["throughput_rps"] = throughput_rps;
  res["latency_mean_ms"] = latency_mean_ms;
  res["latency_p50_ms"] = latency_p50_ms;
  res["latency_p95_ms"] = latency_p95_ms;
  res["latency_p99_ms"] = latency_p99_ms;
  res["latency_max_ms"] = latency_max_ms;
  res["batches"] = batches;
  res["batch_occupancy_mean"] = batch_occupancy_mean;
  res["queue_depth_peak"] = queue_depth_peak;
  res["pool_heap_allocs"] = pool_heap_allocs;
  res["pool_hits"] = pool_hits;
  doc["results"] = std::move(res);
  return doc;
}

LoadGenReport run_load(BatchServer& server, const LoadGenConfig& config) {
  if (config.clients == 0) {
    throw InvalidArgument("run_load: need at least one client");
  }
  if (config.requests_per_client == 0) {
    throw InvalidArgument("run_load: need at least one request per client");
  }

  LoadGenReport report;
  report.load = config;
  report.server = server.config();

  util::ThreadPool clients(config.clients);
  std::atomic<std::size_t> errors{0};

  // Per-client latency pools, preallocated so the measured loop only
  // writes into existing storage.
  std::vector<std::vector<double>> latencies(config.clients);
  for (auto& v : latencies) v.assign(config.requests_per_client, 0.0);

  const auto client_wave = [&](std::size_t per_client, bool measured) {
    for (std::size_t c = 0; c < config.clients; ++c) {
      clients.submit([&, c, per_client, measured] {
        std::vector<float> input(server.input_size());
        std::vector<float> output(server.output_size());
        for (std::size_t r = 0; r < per_client; ++r) {
          synthesize_input(input, config.seed, c,
                           measured ? 1000000 + r : r);
          try {
            const Receipt receipt = server.infer(input, output);
            if (!all_finite(output)) {
              errors.fetch_add(1, std::memory_order_relaxed);
            } else if (measured) {
              latencies[c][r] = receipt.latency_ms;
            }
          } catch (const std::exception&) {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    clients.wait();
  };

  // Warm-up wave: populate the tensor/scratch pools and fault in every
  // code path, all outside the measured window.
  if (config.warmup_per_client > 0) {
    client_wave(config.warmup_per_client, /*measured=*/false);
  }

  // Counter snapshot marks the steady-state window boundary.
  obs::Counter& batches_ctr = obs::counter("hsconas.serve.batches");
  obs::Histogram& occupancy = obs::histogram("hsconas.serve.batch_occupancy");
  obs::Counter& pool_heap =
      obs::counter("hsconas.tensor.pool.heap_allocs");
  obs::Counter& pool_hits = obs::counter("hsconas.tensor.pool.hits");
  const std::uint64_t batches0 = batches_ctr.value();
  const std::uint64_t occ_count0 = occupancy.count();
  const double occ_sum0 = occupancy.sum_ms();
  const std::uint64_t heap0 = pool_heap.value();
  const std::uint64_t hits0 = pool_hits.value();

  const std::uint64_t t0 = obs::monotonic_ns();
  client_wave(config.requests_per_client, /*measured=*/true);
  const std::uint64_t t1 = obs::monotonic_ns();

  report.total_requests = config.clients * config.requests_per_client;
  report.errors = errors.load();
  report.duration_ms = static_cast<double>(t1 - t0) / 1e6;
  report.throughput_rps =
      report.duration_ms > 0.0
          ? static_cast<double>(report.total_requests - report.errors) *
                1e3 / report.duration_ms
          : 0.0;

  std::vector<double> all;
  all.reserve(report.total_requests);
  double sum = 0.0, mx = 0.0;
  for (const auto& per_client : latencies) {
    for (double ms : per_client) {
      if (ms <= 0.0) continue;  // errored or unmeasured slot
      all.push_back(ms);
      sum += ms;
      if (ms > mx) mx = ms;
    }
  }
  if (!all.empty()) {
    report.latency_mean_ms = sum / static_cast<double>(all.size());
    report.latency_p50_ms = util::percentile(all, 50.0);
    report.latency_p95_ms = util::percentile(all, 95.0);
    report.latency_p99_ms = util::percentile(all, 99.0);
    report.latency_max_ms = mx;
  }

  report.batches = static_cast<double>(batches_ctr.value() - batches0);
  const std::uint64_t occ_count = occupancy.count() - occ_count0;
  report.batch_occupancy_mean =
      occ_count > 0
          ? (occupancy.sum_ms() - occ_sum0) / static_cast<double>(occ_count)
          : 0.0;
  report.queue_depth_peak =
      obs::gauge("hsconas.serve.queue_depth_peak").value();
  report.pool_heap_allocs =
      static_cast<double>(pool_heap.value() - heap0);
  report.pool_hits = static_cast<double>(pool_hits.value() - hits0);
  return report;
}

}  // namespace hsconas::serve
