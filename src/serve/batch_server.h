#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/arch.h"
#include "core/search_space.h"
#include "nn/quantize.h"
#include "util/thread_pool.h"

namespace hsconas::core {
class Supernet;
}

namespace hsconas::serve {

/// Knobs for the batch-scheduled model server (mirrors the
/// `hsconas serve` flags; see docs/SERVING.md).
struct ServerConfig {
  /// Flush a batch as soon as this many requests are queued.
  std::size_t batch_max = 8;
  /// ... or when the oldest queued request has waited this long.
  std::uint64_t deadline_us = 2000;
  /// Concurrent worker lanes, each with its own network replica.
  std::size_t workers = 2;
  /// Bounded request queue; submitters block (backpressure) when full.
  std::size_t queue_capacity = 256;
  /// Run lane forwards with the fused conv/BN/activation inference path.
  bool fuse = true;
  /// Weight-init seed; every lane replica uses the same seed, so all
  /// lanes hold bit-identical weights.
  std::uint64_t seed = 42;
  /// Numeric type lane forwards compute in. kI8 calibrates every replica
  /// at construction (synthetic batches, seed-derived, identical across
  /// lanes) and serves through the int8 GEMM; kF32 is the bit-for-bit
  /// status quo.
  nn::InferenceDType dtype = nn::InferenceDType::kF32;
  /// Calibration batches fed to each replica when dtype == kI8.
  std::size_t calibration_batches = 2;
};

/// Where a request ended up, returned by BatchServer::infer. Tickets are
/// assigned in arrival (mutex-acquisition) order; batch ids in claim
/// order. FIFO scheduling means that when receipts are sorted by ticket,
/// (batch, batch_index) is lexicographically non-decreasing — the
/// property tests/serve pins.
struct Receipt {
  std::uint64_t ticket = 0;       ///< FIFO position at enqueue (0-based)
  std::uint64_t batch = 0;        ///< id of the batch that served it
  std::size_t batch_index = 0;    ///< row within that batch
  double latency_ms = 0.0;        ///< enqueue -> response, client-observed
};

/// Batch-scheduled inference server over a standalone (fixed-arch)
/// Supernet: requests from any number of client threads are collected
/// into batches — flushed at `batch_max` occupancy or when the oldest
/// request has waited `deadline_us` — and executed by `workers` lanes,
/// each owning a private network replica so forwards run concurrently.
///
/// Memory discipline: each lane runs under a tensor::ScopedTensorPool, so
/// after the first few batches every activation/batch tensor comes from
/// recycled blocks and steady-state serving performs zero heap
/// allocations (verified by hsconas.tensor.pool.heap_allocs staying
/// flat; see docs/SERVING.md). Request bookkeeping lives on the caller's
/// stack and in a ring buffer pre-sized at construction.
///
/// Metrics (hsconas.serve.*): requests, rejected, batches, latency_ms,
/// forward_ms, batch_occupancy, queue_depth(+_peak).
class BatchServer {
 public:
  /// Builds `workers` standalone replicas of `arch` (same seed => same
  /// weights), switches them to eval mode, and starts the lanes.
  BatchServer(const core::SearchSpace& space, const core::Arch& arch,
              const ServerConfig& config);
  ~BatchServer();  ///< graceful: drains queued requests, then joins lanes

  BatchServer(const BatchServer&) = delete;
  BatchServer& operator=(const BatchServer&) = delete;

  /// Floats per request sample (C*H*W of the space's task geometry).
  std::size_t input_size() const { return input_size_; }
  /// Floats per response (num_classes logits).
  std::size_t output_size() const { return output_size_; }

  /// Synchronous inference: enqueue one sample, block until its batch
  /// completes, copy the logits row into `output`. Thread-safe; callers
  /// are served FIFO. Throws InvalidArgument on span-size mismatch,
  /// Error once shutdown has begun, and rethrows any exception the lane
  /// forward raised for this request's batch.
  Receipt infer(std::span<const float> input, std::span<float> output);

  /// Stop accepting requests, serve everything already queued, join the
  /// lanes. Idempotent; the destructor calls it.
  void shutdown();

  const ServerConfig& config() const { return config_; }

 private:
  struct Request;

  void lane(std::size_t lane_id);
  void run_batch(core::Supernet& net, std::span<Request* const> batch,
                 std::uint64_t batch_id);
  Request* pop_front_locked();

  ServerConfig config_;
  std::size_t input_size_ = 0;
  std::size_t output_size_ = 0;
  long channels_ = 0, height_ = 0, width_ = 0;
  bool prev_fusion_ = false;
  nn::InferenceDType prev_dtype_ = nn::InferenceDType::kF32;

  std::vector<std::unique_ptr<core::Supernet>> nets_;

  std::mutex mutex_;
  std::condition_variable cv_work_;   ///< lanes: work available / stopping
  std::condition_variable cv_space_;  ///< submitters: queue has room
  std::condition_variable cv_done_;   ///< submitters: request completed
  std::vector<Request*> ring_;        ///< fixed-capacity FIFO (guarded)
  std::size_t head_ = 0;              ///< index of oldest queued request
  std::size_t queued_ = 0;            ///< live entries in ring_
  std::uint64_t next_ticket_ = 0;
  std::uint64_t next_batch_ = 0;
  bool stopping_ = false;

  /// Owns the lane threads. Declared last so its destructor (join) runs
  /// before the state above is torn down.
  util::ThreadPool lanes_;
};

}  // namespace hsconas::serve
