#pragma once

#include <cstddef>
#include <cstdint>

#include "serve/batch_server.h"
#include "util/json.h"

namespace hsconas::serve {

/// Closed-loop load generator: `clients` concurrent callers, each holding
/// exactly one request in flight (issue -> wait -> issue). Offered load is
/// therefore bounded by clients / latency, the standard closed-loop model.
struct LoadGenConfig {
  std::size_t clients = 8;
  std::size_t requests_per_client = 50;
  /// Per-client requests issued (and measured into warm-up pools/caches)
  /// before the measured window starts.
  std::size_t warmup_per_client = 5;
  std::uint64_t seed = 7;  ///< input-synthesis seed
};

/// Aggregate of one load-generation run (the measured window only).
struct LoadGenReport {
  LoadGenConfig load;
  ServerConfig server;

  std::size_t total_requests = 0;
  std::size_t errors = 0;
  double duration_ms = 0.0;
  double throughput_rps = 0.0;

  // Client-observed latency over every measured request.
  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;

  // Scheduler behavior during the window (from hsconas.serve.* deltas).
  double batches = 0.0;
  double batch_occupancy_mean = 0.0;
  double queue_depth_peak = 0.0;

  // Memory discipline during the window: heap allocations observed by
  // opted-in lane threads (hsconas.tensor.pool.heap_allocs delta). A
  // steady-state window reports 0 here.
  double pool_heap_allocs = 0.0;
  double pool_hits = 0.0;

  /// Serialize under schema "hsconas.serving.v1" (BENCH_serving.json).
  util::Json to_json() const;
};

/// Drive `server` closed-loop and measure the steady-state window.
/// Synthesizes deterministic inputs per (client, request) so runs are
/// reproducible; responses are checked for finiteness, anything else
/// counts into `errors`.
LoadGenReport run_load(BatchServer& server, const LoadGenConfig& config);

}  // namespace hsconas::serve
