#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace hsconas::obs {

/// The sanctioned clocks for kernel and library code. Timing in
/// src/tensor and src/nn must go through these helpers (or through the
/// TraceScope / OpScope RAII wrappers built on them) instead of touching
/// std::chrono directly — the `timing-discipline` lint rule enforces it.
/// Centralizing the clock reads keeps the overhead model auditable (one
/// steady_clock read per call, no duration_cast chains scattered through
/// hot loops) and gives the profiler a single place to swap clock sources.

/// Monotonic wall-clock nanoseconds since an arbitrary process-local
/// epoch. Comparable across threads; never goes backwards.
std::uint64_t monotonic_ns();

/// CPU time consumed by the whole process (all threads), in milliseconds.
/// Falls back to std::clock() resolution where the POSIX per-process
/// clock is unavailable.
double process_cpu_ms();

/// CPU time consumed by the calling thread, in milliseconds. Returns 0
/// on platforms without a per-thread CPU clock.
double thread_cpu_ms();

/// Timed condition wait in the monotonic_ns() time base, so timing-
/// disciplined code (src/serve batching windows) never touches
/// std::chrono directly. Returns true if the wait was notified, false on
/// timeout; spurious wakeups are possible either way — callers must
/// re-check their predicate, exactly as with condition_variable::wait_for.
bool wait_for_ns(std::condition_variable& cv,
                 std::unique_lock<std::mutex>& lock, std::uint64_t ns);

}  // namespace hsconas::obs
