#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hsconas::obs {

/// Process-wide metrics registry: named counters, gauges and fixed-bucket
/// latency histograms. Registration (name lookup) takes a mutex once;
/// the returned handles are stable for the life of the process and every
/// update on them is a lock-free relaxed atomic, so hot paths pay one
/// cache-line write per event. The conventional pattern is a
/// function-local static reference:
///
///   static obs::Counter& calls = obs::counter("hsconas.gemm.calls");
///   calls.add();
///
/// Metric names follow `hsconas.<subsystem>.<name>` (see
/// docs/OBSERVABILITY.md). Values aggregate across all threads; use
/// snapshot() to read a consistent-enough view and reset_all_metrics() to
/// zero values between test cases (handles stay valid).

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar, with add/update_max variants for accumulators
/// and high-water marks.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double v) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
  }
  /// Monotone: keeps the maximum of all observed values.
  void update_max(double v) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<double> value_{0.0};
};

/// Latency histogram with fixed logarithmic bucket edges (milliseconds,
/// 1 µs … 1 s decades in a 1-2-5 progression; the last bucket is +inf).
/// Also tracks count/sum/min/max so means and extremes survive bucketing.
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 20;

  /// Upper bucket edges in ms; bucket i counts samples <= edge i, the
  /// final bucket everything larger.
  static const std::array<double, kNumBuckets - 1>& edges();

  void record(double ms) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum_ms() const noexcept {
    return sum_ms_.load(std::memory_order_relaxed);
  }
  double min_ms() const noexcept;  ///< 0 when empty
  double max_ms() const noexcept;  ///< 0 when empty
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_ms_{0.0};
  std::atomic<double> min_ms_{1e300};
  std::atomic<double> max_ms_{-1e300};
};

/// Look up (registering on first use) a metric by name. References remain
/// valid forever; the registry is never destroyed, so handles may be used
/// from static destructors.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

/// Stable small ordinal for the calling thread (0, 1, 2, … in first-call
/// order), for naming per-thread metrics such as
/// `hsconas.gemm.a_panels.t<id>` or `hsconas.workspace.peak_bytes.t<id>`.
/// Ordinals are never reused within a process, so a long-lived pool
/// thread keeps one identity across its whole life.
std::size_t thread_ordinal();

/// Point-in-time copy of every registered metric, sorted by name. Values
/// read with relaxed atomics — per-metric exact, cross-metric slightly
/// racy, which is fine for reporting.
struct MetricsSnapshot {
  struct HistogramData {
    std::string name;
    std::uint64_t count = 0;
    double sum_ms = 0.0;
    double min_ms = 0.0;
    double max_ms = 0.0;
    std::array<std::uint64_t, Histogram::kNumBuckets> buckets{};

    double mean_ms() const {
      return count == 0 ? 0.0 : sum_ms / static_cast<double>(count);
    }
    /// Percentile estimate from the bucket counts (upper edge of the
    /// bucket containing quantile q in [0,1]); max_ms for the last bucket.
    double percentile_ms(double q) const;
  };
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramData> histograms;

  /// Value lookup helpers for tests/tools; 0 when absent.
  std::uint64_t counter_value(const std::string& name) const;
  double gauge_value(const std::string& name) const;
};

MetricsSnapshot metrics_snapshot();

/// Zero every registered metric (tests; handles stay registered & valid).
void reset_all_metrics();

}  // namespace hsconas::obs
