#include "obs/timing.h"

#include <chrono>
#include <ctime>

namespace hsconas::obs {

namespace {

std::chrono::steady_clock::time_point process_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

#if defined(CLOCK_PROCESS_CPUTIME_ID) || defined(CLOCK_THREAD_CPUTIME_ID)
double clock_ms(clockid_t id) {
  timespec ts{};
  if (clock_gettime(id, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) / 1e6;
}
#endif

}  // namespace

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - process_epoch())
          .count());
}

double process_cpu_ms() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  return clock_ms(CLOCK_PROCESS_CPUTIME_ID);
#else
  return static_cast<double>(std::clock()) * 1e3 /
         static_cast<double>(CLOCKS_PER_SEC);
#endif
}

double thread_cpu_ms() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  return clock_ms(CLOCK_THREAD_CPUTIME_ID);
#else
  return 0.0;
#endif
}

bool wait_for_ns(std::condition_variable& cv,
                 std::unique_lock<std::mutex>& lock, std::uint64_t ns) {
  return cv.wait_for(lock, std::chrono::nanoseconds(ns)) ==
         std::cv_status::no_timeout;
}

}  // namespace hsconas::obs
