#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hsconas::obs {

/// Per-operator profiler, layered on the span tracer's switch model:
///
///  - runtime:      Profiler::enable()/disable(); a disabled OpScope is a
///                  single relaxed atomic load — the describe callback is
///                  never invoked, no clock is read.
///  - compile-time: with -DHSCONAS_ENABLE_TRACING=OFF the OpScope class
///                  collapses to an empty object and every hook carries
///                  zero instructions (same HSCONAS_TRACING_DISABLED
///                  define as the tracer).
///
/// nn leaf modules (conv/linear/bn/act/pool/shuffle — including the fused
/// conv+BN+act epilogue path) open an OpScope around their forward and
/// backward bodies, describing the op's geometry, FLOPs and bytes moved.
/// The profiler aggregates wall time, process-CPU time and the calling
/// thread's Workspace scratch high-water mark per *op signature* (geometry
/// string), so N identical layers across M iterations collapse into one
/// row. Warm-up exclusion is the runner's job: run warm-up iterations with
/// the profiler disabled (or call clear() before the counted ones).
///
/// This layer sits below util (stdlib-only), so hwsim/eval can consume
/// snapshots and kernels can host hooks without dependency cycles.

/// Geometry identity of one operator instance. `op` names the module-level
/// path ("conv2d", "conv2d.fused", "conv2d.bwd", "bn", "relu", ...);
/// `kind` is the hwsim pricing category ("conv" | "dwconv" | "linear" |
/// "pool" | "eltwise" | "shuffle" | "other").
struct OpKey {
  std::string op;
  std::string kind;
  long batch = 0;
  long in_ch = 0;
  long out_ch = 0;
  long in_h = 0;
  long in_w = 0;
  long kernel = 1;
  long stride = 1;
  long groups = 1;

  /// Stable aggregation key, e.g.
  /// "conv2d(cin=32,cout=64,k=3,s=1,g=1,in=56x56,b=8)".
  std::string signature() const;
};

/// What a hook reports when its scope opens: the op identity plus analytic
/// work totals for the whole call (all samples in the batch).
struct OpInfo {
  OpKey key;
  double flops = 0.0;  ///< floating-point ops per call (2·MACs for GEMM ops)
  double bytes = 0.0;  ///< activation + weight bytes touched per call
};

/// Aggregated measurements for one op signature.
struct OpStats {
  OpKey key;
  std::string signature;
  std::uint64_t calls = 0;
  double flops_per_call = 0.0;
  double bytes_per_call = 0.0;
  double wall_ms_total = 0.0;
  double wall_ms_min = 0.0;
  double wall_ms_max = 0.0;
  double cpu_ms_total = 0.0;  ///< process CPU (includes pool workers)
  double workspace_peak_bytes = 0.0;  ///< max calling-thread scratch HWM
  /// Per-call wall samples for percentiles (first kMaxSamples calls).
  std::vector<double> wall_ms_samples;

  double wall_ms_mean() const;
  /// q in [0, 1], linear interpolation over the retained samples.
  double wall_ms_percentile(double q) const;
  /// FLOPs per byte moved (roofline x-axis).
  double arithmetic_intensity() const;
  /// Achieved GFLOP/s at the mean wall time.
  double achieved_gflops() const;
  /// Achieved GB/s at the mean wall time.
  double achieved_gbs() const;
};

class Profiler {
 public:
  static constexpr std::size_t kMaxSamples = 1024;

#if defined(HSCONAS_TRACING_DISABLED)
  static constexpr bool compiled_in() noexcept { return false; }
  static constexpr bool enabled() noexcept { return false; }
#else
  static constexpr bool compiled_in() noexcept { return true; }
  static bool enabled() noexcept;
#endif
  static void enable();
  static void disable();

  /// Drop all aggregated stats (does not change the enabled state).
  static void clear();

  /// Copy out every signature's aggregate, heaviest wall total first.
  static std::vector<OpStats> snapshot();
};

/// Dependency inversion for scratch-arena attribution: obs sits below
/// tensor, so tensor/workspace.cpp registers these probes at static-init
/// time and the profiler calls through them. Null probes (tensor not
/// linked) report a zero Workspace peak.
struct WorkspaceProbe {
  void (*reset_scope_peak)() = nullptr;        ///< open a watermark window
  std::uint64_t (*scope_peak_bytes)() = nullptr;  ///< max since the reset
};
void set_workspace_probe(WorkspaceProbe probe);

namespace detail {
void profiler_record(const OpInfo& info, double wall_ms, double cpu_ms,
                     double workspace_peak_bytes);
}  // namespace detail

#if defined(HSCONAS_TRACING_DISABLED)

/// Compiled out: an empty object; the describe callback is never
/// instantiated into a call.
class OpScope {
 public:
  template <typename DescribeFn>
  explicit OpScope(DescribeFn&&) noexcept {}
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;
};

#else

/// RAII hook. The describe callback builds the OpInfo and runs only when
/// the profiler is enabled, so geometry/FLOP computation costs nothing on
/// the normal path:
///
///   obs::OpScope prof([&] { return obs::OpInfo{...}; });
///
/// When the span tracer is also enabled, the scope additionally records a
/// trace span named by the op signature, so profiled ops line up with the
/// Perfetto timeline.
class OpScope {
 public:
  template <typename DescribeFn>
  explicit OpScope(DescribeFn&& describe) noexcept {
    if (!Profiler::enabled()) return;
    begin(describe());
  }
  ~OpScope() {
    if (active_) end();
  }
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

 private:
  void begin(OpInfo info) noexcept;
  void end() noexcept;

  bool active_ = false;
  bool traced_ = false;
  OpInfo info_;
  std::uint64_t wall0_ns_ = 0;
  std::uint64_t trace0_ns_ = 0;
  double cpu0_ms_ = 0.0;
};

#endif  // HSCONAS_TRACING_DISABLED

}  // namespace hsconas::obs
