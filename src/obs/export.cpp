#include "obs/export.h"

#include "util/string_util.h"

namespace hsconas::obs {

util::Json metrics_to_json(const MetricsSnapshot& snap) {
  util::Json doc = util::Json::object();

  util::Json counters = util::Json::object();
  for (const auto& [name, value] : snap.counters) {
    counters[name] = static_cast<unsigned long long>(value);
  }
  doc["counters"] = std::move(counters);

  util::Json gauges = util::Json::object();
  for (const auto& [name, value] : snap.gauges) gauges[name] = value;
  doc["gauges"] = std::move(gauges);

  util::Json histograms = util::Json::object();
  for (const auto& h : snap.histograms) {
    util::Json entry = util::Json::object();
    entry["count"] = static_cast<unsigned long long>(h.count);
    entry["sum_ms"] = h.sum_ms;
    entry["min_ms"] = h.min_ms;
    entry["max_ms"] = h.max_ms;
    entry["mean_ms"] = h.mean_ms();
    entry["p50_ms"] = h.percentile_ms(0.5);
    entry["p95_ms"] = h.percentile_ms(0.95);
    entry["p99_ms"] = h.percentile_ms(0.99);
    util::Json buckets = util::Json::array();
    const auto& edges = Histogram::edges();
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      util::Json b = util::Json::object();
      b["le_ms"] = i < edges.size() ? util::Json(edges[i]) : util::Json("inf");
      b["count"] = static_cast<unsigned long long>(h.buckets[i]);
      buckets.push_back(std::move(b));
    }
    entry["buckets"] = std::move(buckets);
    histograms[h.name] = std::move(entry);
  }
  doc["histograms"] = std::move(histograms);
  return doc;
}

void save_metrics(const std::string& path) {
  metrics_to_json(metrics_snapshot()).save(path);
}

util::Json trace_to_json(const std::vector<TraceEvent>& events,
                         std::uint64_t dropped) {
  // Chrome trace-event format: "X" (complete) events with microsecond
  // timestamps. Perfetto and chrome://tracing reconstruct nesting from
  // ts/dur overlap per (pid, tid) track.
  util::Json trace_events = util::Json::array();
  for (const TraceEvent& ev : events) {
    util::Json e = util::Json::object();
    e["name"] = std::string(ev.name);
    e["cat"] = "hsconas";
    e["ph"] = "X";
    e["ts"] = static_cast<double>(ev.start_ns) / 1e3;
    e["dur"] = static_cast<double>(ev.dur_ns) / 1e3;
    e["pid"] = 1;
    e["tid"] = static_cast<unsigned long long>(ev.tid);
    trace_events.push_back(std::move(e));
  }
  util::Json doc = util::Json::object();
  doc["traceEvents"] = std::move(trace_events);
  doc["displayTimeUnit"] = "ms";
  doc["droppedEvents"] = static_cast<unsigned long long>(dropped);
  return doc;
}

void save_trace(const std::string& path) {
  trace_to_json(Tracer::snapshot(), Tracer::dropped()).save(path);
}

MetricsSnapshot metrics_from_json(const util::Json& doc) {
  MetricsSnapshot snap;
  if (const util::Json* counters = doc.find("counters")) {
    for (const auto& [name, v] : counters->fields()) {
      snap.counters.emplace_back(
          name, static_cast<std::uint64_t>(v.as_double()));
    }
  }
  if (const util::Json* gauges = doc.find("gauges")) {
    for (const auto& [name, v] : gauges->fields()) {
      snap.gauges.emplace_back(name, v.as_double());
    }
  }
  if (const util::Json* histograms = doc.find("histograms")) {
    for (const auto& [name, v] : histograms->fields()) {
      MetricsSnapshot::HistogramData h;
      h.name = name;
      if (const util::Json* f = v.find("count")) {
        h.count = static_cast<std::uint64_t>(f->as_double());
      }
      if (const util::Json* f = v.find("sum_ms")) h.sum_ms = f->as_double();
      if (const util::Json* f = v.find("min_ms")) h.min_ms = f->as_double();
      if (const util::Json* f = v.find("max_ms")) h.max_ms = f->as_double();
      if (const util::Json* f = v.find("buckets")) {
        const auto& items = f->items();
        for (std::size_t i = 0; i < items.size() && i < h.buckets.size();
             ++i) {
          if (const util::Json* c = items[i].find("count")) {
            h.buckets[i] = static_cast<std::uint64_t>(c->as_double());
          }
        }
      }
      snap.histograms.push_back(std::move(h));
    }
  }
  return snap;
}

std::string render_metrics_report(const MetricsSnapshot& snap) {
  std::string out;

  if (!snap.counters.empty()) {
    util::Table table({"counter", "value"});
    for (const auto& [name, value] : snap.counters) {
      table.add_row({name, util::format("%llu",
                                        static_cast<unsigned long long>(value))});
    }
    out += "counters:\n" + table.render();
  }

  if (!snap.gauges.empty()) {
    util::Table table({"gauge", "value"});
    for (const auto& [name, value] : snap.gauges) {
      table.add_row({name, util::format("%.6g", value)});
    }
    out += "\ngauges:\n" + table.render();
  }

  if (!snap.histograms.empty()) {
    util::Table table({"histogram", "count", "mean (ms)", "p50 (ms)",
                       "p95 (ms)", "p99 (ms)", "min (ms)", "max (ms)"});
    for (const auto& h : snap.histograms) {
      table.add_row({h.name,
                     util::format("%llu",
                                  static_cast<unsigned long long>(h.count)),
                     util::format("%.4g", h.mean_ms()),
                     util::format("%.4g", h.percentile_ms(0.5)),
                     util::format("%.4g", h.percentile_ms(0.95)),
                     util::format("%.4g", h.percentile_ms(0.99)),
                     util::format("%.4g", h.min_ms),
                     util::format("%.4g", h.max_ms)});
    }
    out += "\nlatency histograms:\n" + table.render();
  }

  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

}  // namespace hsconas::obs
