#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>

namespace hsconas::obs {

namespace {

std::atomic<bool> g_enabled{false};

/// Common epoch for all threads: first use of the clock.
std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

/// Fixed-capacity overwrite-oldest event ring. Each thread owns one; the
/// per-ring mutex is uncontended on the record path (only a snapshot/clear
/// from another thread ever takes it concurrently).
struct ThreadRing {
  std::mutex mutex;
  std::vector<TraceEvent> events;  // grows to kRingCapacity, then wraps
  std::size_t head = 0;            // next write position once full
  bool full = false;
  std::uint64_t dropped = 0;
  std::uint32_t tid = 0;
};

struct RingDirectory {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadRing>> rings;
};

RingDirectory& directory() {
  static RingDirectory* d = new RingDirectory;  // leak: see metrics registry
  return *d;
}

ThreadRing& tls_ring() {
  // The shared_ptr keeps the ring alive in the directory after the thread
  // exits, so short-lived pool threads' spans survive into the export.
  thread_local std::shared_ptr<ThreadRing> ring = [] {
    auto r = std::make_shared<ThreadRing>();
    RingDirectory& d = directory();
    std::lock_guard<std::mutex> lock(d.mutex);
    r->tid = static_cast<std::uint32_t>(d.rings.size() + 1);
    d.rings.push_back(r);
    return r;
  }();
  return *ring;
}

}  // namespace

void Tracer::enable() {
  trace_epoch();  // pin the epoch no later than the first enable
  g_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { g_enabled.store(false, std::memory_order_relaxed); }

bool Tracer::enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

std::vector<TraceEvent> Tracer::snapshot() {
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    RingDirectory& d = directory();
    std::lock_guard<std::mutex> lock(d.mutex);
    rings = d.rings;
  }
  std::vector<TraceEvent> out;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mutex);
    if (!ring->full) {
      out.insert(out.end(), ring->events.begin(), ring->events.end());
    } else {
      // Oldest-first: [head, end) then [0, head).
      out.insert(out.end(), ring->events.begin() + static_cast<std::ptrdiff_t>(ring->head),
                 ring->events.end());
      out.insert(out.end(), ring->events.begin(),
                 ring->events.begin() + static_cast<std::ptrdiff_t>(ring->head));
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

std::uint64_t Tracer::dropped() {
  RingDirectory& d = directory();
  std::lock_guard<std::mutex> lock(d.mutex);
  std::uint64_t total = 0;
  for (const auto& ring : d.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    total += ring->dropped;
  }
  return total;
}

void Tracer::clear() {
  RingDirectory& d = directory();
  std::lock_guard<std::mutex> lock(d.mutex);
  for (const auto& ring : d.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    ring->events.clear();
    ring->head = 0;
    ring->full = false;
    ring->dropped = 0;
  }
}

namespace detail {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

std::uint32_t& thread_depth() {
  thread_local std::uint32_t depth = 0;
  return depth;
}

void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns, std::uint32_t depth) {
  ThreadRing& ring = tls_ring();
  TraceEvent ev;
  std::strncpy(ev.name, name, TraceEvent::kNameCapacity - 1);
  ev.name[TraceEvent::kNameCapacity - 1] = '\0';
  ev.start_ns = start_ns;
  ev.dur_ns = dur_ns;
  ev.tid = ring.tid;
  ev.depth = depth;

  std::lock_guard<std::mutex> lock(ring.mutex);
  if (ring.events.size() < Tracer::kRingCapacity) {
    ring.events.push_back(ev);
    return;
  }
  ring.events[ring.head] = ev;
  ring.head = (ring.head + 1) % Tracer::kRingCapacity;
  ring.full = true;
  ++ring.dropped;
}

}  // namespace detail

}  // namespace hsconas::obs
