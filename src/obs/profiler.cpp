#include "obs/profiler.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/timing.h"
#include "obs/trace.h"

namespace hsconas::obs {

namespace {

void append_field(std::string& s, const char* name, long v) {
  s += name;
  s += '=';
  s += std::to_string(v);
}

struct ProfilerRegistry {
  std::mutex mu;
  std::unordered_map<std::string, OpStats> stats;
};

ProfilerRegistry& registry() {
  static ProfilerRegistry* reg = new ProfilerRegistry();  // never destroyed
  return *reg;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

/// Registered by tensor/workspace.cpp; written once during static init,
/// read on every profiled scope. Plain pointers: constant-initialized, so
/// there is no init-order hazard with the registering TU.
WorkspaceProbe& workspace_probe() {
  static WorkspaceProbe probe;
  return probe;
}

}  // namespace

std::string OpKey::signature() const {
  std::string s = op;
  s += '(';
  append_field(s, "cin", in_ch);
  s += ',';
  append_field(s, "cout", out_ch);
  s += ',';
  append_field(s, "k", kernel);
  s += ',';
  append_field(s, "s", stride);
  s += ',';
  append_field(s, "g", groups);
  s += ",in=";
  s += std::to_string(in_h);
  s += 'x';
  s += std::to_string(in_w);
  s += ',';
  append_field(s, "b", batch);
  s += ')';
  return s;
}

double OpStats::wall_ms_mean() const {
  return calls == 0 ? 0.0 : wall_ms_total / static_cast<double>(calls);
}

double OpStats::wall_ms_percentile(double q) const {
  if (wall_ms_samples.empty()) return 0.0;
  std::vector<double> sorted = wall_ms_samples;
  std::sort(sorted.begin(), sorted.end());
  q = std::min(1.0, std::max(0.0, q));
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double OpStats::arithmetic_intensity() const {
  return bytes_per_call > 0.0 ? flops_per_call / bytes_per_call : 0.0;
}

double OpStats::achieved_gflops() const {
  const double ms = wall_ms_mean();
  return ms > 0.0 ? flops_per_call / (ms * 1e6) : 0.0;
}

double OpStats::achieved_gbs() const {
  const double ms = wall_ms_mean();
  return ms > 0.0 ? bytes_per_call / (ms * 1e6) : 0.0;
}

#if !defined(HSCONAS_TRACING_DISABLED)
bool Profiler::enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}
#endif

void Profiler::enable() {
  enabled_flag().store(true, std::memory_order_relaxed);
}

void Profiler::disable() {
  enabled_flag().store(false, std::memory_order_relaxed);
}

void Profiler::clear() {
  ProfilerRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.stats.clear();
}

std::vector<OpStats> Profiler::snapshot() {
  std::vector<OpStats> out;
  {
    ProfilerRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    out.reserve(reg.stats.size());
    for (const auto& [sig, st] : reg.stats) out.push_back(st);
  }
  std::sort(out.begin(), out.end(), [](const OpStats& a, const OpStats& b) {
    if (a.wall_ms_total != b.wall_ms_total) {
      return a.wall_ms_total > b.wall_ms_total;
    }
    return a.signature < b.signature;  // deterministic tie-break
  });
  return out;
}

void set_workspace_probe(WorkspaceProbe probe) { workspace_probe() = probe; }

namespace detail {

void profiler_record(const OpInfo& info, double wall_ms, double cpu_ms,
                     double workspace_peak_bytes) {
  static Counter& recorded = counter("hsconas.profiler.ops_recorded");
  recorded.add();
  const std::string sig = info.key.signature();
  ProfilerRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  OpStats& st = reg.stats[sig];
  if (st.calls == 0) {
    st.key = info.key;
    st.signature = sig;
    st.flops_per_call = info.flops;
    st.bytes_per_call = info.bytes;
    st.wall_ms_min = wall_ms;
    st.wall_ms_max = wall_ms;
  }
  ++st.calls;
  st.wall_ms_total += wall_ms;
  st.wall_ms_min = std::min(st.wall_ms_min, wall_ms);
  st.wall_ms_max = std::max(st.wall_ms_max, wall_ms);
  st.cpu_ms_total += std::max(0.0, cpu_ms);
  st.workspace_peak_bytes =
      std::max(st.workspace_peak_bytes, workspace_peak_bytes);
  if (st.wall_ms_samples.size() < Profiler::kMaxSamples) {
    st.wall_ms_samples.push_back(wall_ms);
  }
}

}  // namespace detail

#if !defined(HSCONAS_TRACING_DISABLED)

void OpScope::begin(OpInfo info) noexcept {
  active_ = true;
  info_ = std::move(info);
  const WorkspaceProbe& probe = workspace_probe();
  if (probe.reset_scope_peak != nullptr) probe.reset_scope_peak();
  if (Tracer::enabled()) {
    // Mirror TraceScope so profiled ops land on the Perfetto timeline at
    // the right nesting depth, named by their signature.
    traced_ = true;
    trace0_ns_ = detail::now_ns();
    ++detail::thread_depth();
  }
  cpu0_ms_ = process_cpu_ms();
  wall0_ns_ = monotonic_ns();
}

void OpScope::end() noexcept {
  const std::uint64_t wall1_ns = monotonic_ns();
  const double cpu1_ms = process_cpu_ms();
  const WorkspaceProbe& probe = workspace_probe();
  const double ws_peak =
      probe.scope_peak_bytes != nullptr
          ? static_cast<double>(probe.scope_peak_bytes())
          : 0.0;
  detail::profiler_record(
      info_, static_cast<double>(wall1_ns - wall0_ns_) / 1e6,
      cpu1_ms - cpu0_ms_, ws_peak);
  if (traced_) {
    const std::uint64_t t1 = detail::now_ns();
    --detail::thread_depth();
    detail::record_span(info_.key.signature().c_str(), trace0_ns_,
                        t1 - trace0_ns_, detail::thread_depth());
  }
}

#endif  // !HSCONAS_TRACING_DISABLED

}  // namespace hsconas::obs
