#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json.h"
#include "util/table.h"

namespace hsconas::obs {

/// Serializers for the metrics registry and the span tracer. These live
/// in their own library (hsconas_obs_export) layered above hsconas_util,
/// because the recording core (metrics.h/trace.h) must stay dependency-free
/// so util/tensor hot paths can link it.

/// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum_ms,
///  min_ms, max_ms, mean_ms, p50_ms, p95_ms, p99_ms,
///  buckets: [{le, count}...]}}}
util::Json metrics_to_json(const MetricsSnapshot& snap);

/// metrics_snapshot() -> JSON file at `path`.
void save_metrics(const std::string& path);

/// Chrome trace-event JSON ("X" complete events, µs timestamps) loadable
/// in chrome://tracing and https://ui.perfetto.dev. `dropped` is the
/// ring-overflow count, emitted as top-level "droppedEvents" so a viewer
/// (and obs_report) can tell a quiet run from a saturated ring.
util::Json trace_to_json(const std::vector<TraceEvent>& events,
                         std::uint64_t dropped = 0);

/// Tracer::snapshot() + Tracer::dropped() -> trace.json at `path`.
void save_trace(const std::string& path);

/// Inverse of metrics_to_json — lets tools/obs_report re-render a saved
/// metrics file. Throws hsconas::Error if the document shape is wrong.
MetricsSnapshot metrics_from_json(const util::Json& doc);

/// Human-readable rendering of a metrics snapshot: a counters/gauges table
/// followed by a histogram summary table (used by tools/obs_report).
std::string render_metrics_report(const MetricsSnapshot& snap);

}  // namespace hsconas::obs
