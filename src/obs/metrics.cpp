#include "obs/metrics.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

namespace hsconas::obs {

const std::array<double, Histogram::kNumBuckets - 1>& Histogram::edges() {
  // 1 µs … 1 s in a 1-2-5 progression (ms units). Covers everything from a
  // single GEMM microkernel dispatch to a full supernet training epoch.
  static const std::array<double, kNumBuckets - 1> kEdges = {
      0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1,  0.2,   0.5,  1.0,
      2.0,   5.0,   10.0,  20.0, 50.0, 100.0, 200.0, 500.0, 1000.0};
  return kEdges;
}

void Histogram::record(double ms) noexcept {
  const auto& e = edges();
  const std::size_t b = static_cast<std::size_t>(
      std::lower_bound(e.begin(), e.end(), ms) - e.begin());
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_ms_.load(std::memory_order_relaxed);
  while (!sum_ms_.compare_exchange_weak(cur, cur + ms,
                                        std::memory_order_relaxed)) {
  }
  cur = min_ms_.load(std::memory_order_relaxed);
  while (ms < cur && !min_ms_.compare_exchange_weak(
                         cur, ms, std::memory_order_relaxed)) {
  }
  cur = max_ms_.load(std::memory_order_relaxed);
  while (ms > cur && !max_ms_.compare_exchange_weak(
                         cur, ms, std::memory_order_relaxed)) {
  }
}

double Histogram::min_ms() const noexcept {
  return count() == 0 ? 0.0 : min_ms_.load(std::memory_order_relaxed);
}

double Histogram::max_ms() const noexcept {
  return count() == 0 ? 0.0 : max_ms_.load(std::memory_order_relaxed);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ms_.store(0.0, std::memory_order_relaxed);
  min_ms_.store(1e300, std::memory_order_relaxed);
  max_ms_.store(-1e300, std::memory_order_relaxed);
}

double MetricsSnapshot::HistogramData::percentile_ms(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cum += buckets[i];
    if (static_cast<double>(cum) >= target && cum > 0) {
      return i < Histogram::edges().size() ? Histogram::edges()[i] : max_ms;
    }
  }
  return max_ms;
}

std::uint64_t MetricsSnapshot::counter_value(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double MetricsSnapshot::gauge_value(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0.0;
}

namespace {

/// All three metric families share one registry so snapshot/reset see a
/// single consistent namespace. unique_ptr keeps handle addresses stable
/// across map rehash-free growth; the registry itself is leaked on
/// purpose so handles stay valid during static destruction.
struct Registry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

}  // namespace

std::size_t thread_ordinal() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Counter& counter(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto& slot = r.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& gauge(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto& slot = r.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& histogram(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto& slot = r.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot metrics_snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  MetricsSnapshot snap;
  snap.counters.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(r.gauges.size());
  for (const auto& [name, g] : r.gauges) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(r.histograms.size());
  for (const auto& [name, h] : r.histograms) {
    MetricsSnapshot::HistogramData d;
    d.name = name;
    d.count = h->count();
    d.sum_ms = h->sum_ms();
    d.min_ms = h->min_ms();
    d.max_ms = h->max_ms();
    for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      d.buckets[i] = h->bucket(i);
    }
    snap.histograms.push_back(std::move(d));
  }
  return snap;  // std::map iteration is already name-sorted
}

void reset_all_metrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& [name, c] : r.counters) c->reset();
  for (auto& [name, g] : r.gauges) g->reset();
  for (auto& [name, h] : r.histograms) h->reset();
}

}  // namespace hsconas::obs
