#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hsconas::obs {

/// Span tracer: RAII scopes record (name, thread, start, duration, depth)
/// events into fixed-capacity per-thread ring buffers, exportable as a
/// Chrome `chrome://tracing` / Perfetto-compatible trace.json (see
/// obs/export.h). Two kill switches:
///
///  - runtime:      Tracer::enable()/disable(); a disabled TraceScope is a
///                  single relaxed atomic load and touches nothing else —
///                  no clock read, no allocation, no buffer registration.
///  - compile-time: configure with -DHSCONAS_ENABLE_TRACING=OFF and
///                  HSCONAS_TRACE_SCOPE expands to `((void)0)`, so traced
///                  code carries zero instructions.
///
/// Rings overwrite their oldest events when full (dropped() reports how
/// many), so tracing long runs is safe — you keep the most recent window.

/// One completed span. `name` is copied (truncated) at scope exit, so
/// dynamic names (util::format(...)) are safe.
struct TraceEvent {
  static constexpr std::size_t kNameCapacity = 48;
  char name[kNameCapacity];
  std::uint64_t start_ns = 0;  ///< steady-clock ns since process start
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;       ///< small per-process thread index (from 1)
  std::uint32_t depth = 0;     ///< nesting depth within the thread
};

class Tracer {
 public:
  static void enable();
  static void disable();
  static bool enabled() noexcept;

  /// Copy out every recorded event (all threads), sorted by start time.
  static std::vector<TraceEvent> snapshot();

  /// Total events overwritten by full rings since the last clear().
  static std::uint64_t dropped();

  /// Drop all recorded events and the dropped count (thread rings stay
  /// registered). Does not change the enabled state.
  static void clear();

  /// Ring capacity in events, per thread.
  static constexpr std::size_t kRingCapacity = 4096;
};

namespace detail {
std::uint64_t now_ns();
void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns, std::uint32_t depth);
std::uint32_t& thread_depth();
}  // namespace detail

/// RAII span. Construct with a literal or a std::string; the name is read
/// at scope exit, so pass temporaries via the std::string overload (which
/// stores a copy) rather than keeping char pointers alive yourself.
class TraceScope {
 public:
  explicit TraceScope(const char* name) noexcept {
    if (!Tracer::enabled()) return;
    begin(name);
  }
  explicit TraceScope(const std::string& name) noexcept {
    if (!Tracer::enabled()) return;
    owned_ = name;  // keep the chars alive until the destructor
    begin(owned_.c_str());
  }
  ~TraceScope() {
    if (!active_) return;
    const std::uint64_t end = detail::now_ns();
    --detail::thread_depth();
    detail::record_span(name_, start_ns_, end - start_ns_,
                        detail::thread_depth());
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  void begin(const char* name) noexcept {
    active_ = true;
    name_ = name;
    start_ns_ = detail::now_ns();
    ++detail::thread_depth();
  }

  bool active_ = false;
  const char* name_ = "";
  std::string owned_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace hsconas::obs

#if defined(HSCONAS_TRACING_DISABLED)
#define HSCONAS_TRACE_SCOPE(...) ((void)0)
#else
#define HSCONAS_TRACE_CONCAT2_(a, b) a##b
#define HSCONAS_TRACE_CONCAT_(a, b) HSCONAS_TRACE_CONCAT2_(a, b)
#define HSCONAS_TRACE_SCOPE(...)                               \
  ::hsconas::obs::TraceScope HSCONAS_TRACE_CONCAT_(            \
      hsconas_trace_scope_, __LINE__)(__VA_ARGS__)
#endif
