#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace hsconas::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;
const auto g_start = std::chrono::steady_clock::now();

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    g_start)
          .count();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s %8.2fs] %s\n", level_name(level), elapsed,
               msg.c_str());
}

}  // namespace hsconas::util
