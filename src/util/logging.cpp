#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>

#include "util/error.h"
#include "util/json.h"

namespace hsconas::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;  // guards stderr AND the sink: records never interleave
std::ofstream g_sink;
const auto g_start = std::chrono::steady_clock::now();

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    default: return "off";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

LogLevel parse_log_level(const std::string& name) {
  std::string lower;
  for (char c : name) {
    lower += static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off") return LogLevel::kOff;
  throw Error("parse_log_level: unknown level '" + name +
              "' (want debug|info|warn|error|off)");
}

void log_message(LogLevel level, const std::string& msg,
                 const LogFields& fields) {
  if (level < g_level.load()) return;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    g_start)
          .count();

  std::string text = msg;
  for (const auto& [key, value] : fields) {
    text += ' ';
    text += key;
    text += '=';
    text += value;
  }

  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s %8.2fs] %s\n", level_name(level), elapsed,
               text.c_str());
  if (g_sink.is_open()) {
    Json record = Json::object();
    record["ts_s"] = elapsed;
    record["level"] = level_tag(level);
    record["msg"] = msg;
    if (!fields.empty()) {
      Json obj = Json::object();
      for (const auto& [key, value] : fields) obj[key] = value;
      record["fields"] = std::move(obj);
    }
    g_sink << record.dump(/*indent=*/0) << '\n';
    g_sink.flush();
  }
}

void set_log_sink(const std::string& path) {
  std::ofstream sink(path, std::ios::app);
  if (!sink) throw Error("set_log_sink: cannot open " + path);
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

void clear_log_sink() {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink.is_open()) g_sink.close();
}

}  // namespace hsconas::util
