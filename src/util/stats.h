#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace hsconas::util {

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator); 0 if fewer than 2 elements.
double variance(std::span<const double> xs);

/// Sample standard deviation.
double stddev(std::span<const double> xs);

/// Root-mean-squared error between two equal-length series.
double rmse(std::span<const double> a, std::span<const double> b);

/// Mean absolute error between two equal-length series.
double mae(std::span<const double> a, std::span<const double> b);

/// Pearson linear correlation coefficient; 0 if degenerate.
double pearson(std::span<const double> a, std::span<const double> b);

/// Spearman rank correlation (Pearson on fractional ranks, average ties).
double spearman(std::span<const double> a, std::span<const double> b);

/// Kendall's tau-a rank correlation — robust ranking-quality metric used to
/// validate the latency predictor's ordering of architectures.
double kendall_tau(std::span<const double> a, std::span<const double> b);

double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// p-th percentile (p in [0,100]) with linear interpolation; copies +
/// sorts. An empty input yields quiet NaN (an empty latency window must
/// not kill a server); p outside [0,100] still throws InternalError.
double percentile(std::span<const double> xs, double p);

/// Fractional ranks with average tie-handling (1-based ranks).
std::vector<double> ranks(std::span<const double> xs);

/// Ordinary least squares fit y = slope*x + intercept; also reports R^2.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};
LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

/// Fixed-width histogram over [lo, hi]; values outside are clamped into the
/// first/last bin. Used for the Fig. 6 latency-distribution plot.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  double bin_center(std::size_t bin) const;

  /// ASCII bar-chart rendering (one row per bin), for bench stdout.
  std::string render(std::size_t max_width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  ///< unbiased; 0 if n < 2
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace hsconas::util
