#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "util/error.h"

namespace hsconas::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double rmse(std::span<const double> a, std::span<const double> b) {
  HSCONAS_CHECK_MSG(a.size() == b.size(), "rmse: size mismatch");
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

double mae(std::span<const double> a, std::span<const double> b) {
  HSCONAS_CHECK_MSG(a.size() == b.size(), "mae: size mismatch");
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::abs(a[i] - b[i]);
  return acc / static_cast<double>(a.size());
}

double pearson(std::span<const double> a, std::span<const double> b) {
  HSCONAS_CHECK_MSG(a.size() == b.size(), "pearson: size mismatch");
  if (a.size() < 2) return 0.0;
  const double ma = mean(a), mb = mean(b);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma, db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  if (saa <= 0.0 || sbb <= 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

std::vector<double> ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return xs[i] < xs[j]; });
  std::vector<double> rk(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average rank for the tie-group [i, j], 1-based.
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) rk[order[k]] = avg;
    i = j + 1;
  }
  return rk;
}

double spearman(std::span<const double> a, std::span<const double> b) {
  HSCONAS_CHECK_MSG(a.size() == b.size(), "spearman: size mismatch");
  if (a.size() < 2) return 0.0;
  const auto ra = ranks(a);
  const auto rb = ranks(b);
  return pearson(ra, rb);
}

double kendall_tau(std::span<const double> a, std::span<const double> b) {
  HSCONAS_CHECK_MSG(a.size() == b.size(), "kendall_tau: size mismatch");
  const std::size_t n = a.size();
  if (n < 2) return 0.0;
  long long concordant = 0, discordant = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double da = a[i] - a[j];
      const double db = b[i] - b[j];
      const double prod = da * db;
      if (prod > 0) ++concordant;
      else if (prod < 0) ++discordant;
    }
  }
  const double pairs = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  return static_cast<double>(concordant - discordant) / pairs;
}

double min_of(std::span<const double> xs) {
  HSCONAS_CHECK_MSG(!xs.empty(), "min_of: empty");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  HSCONAS_CHECK_MSG(!xs.empty(), "max_of: empty");
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  HSCONAS_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile: p out of [0,100]");
  // An empty window is a normal runtime condition for serving/metrics
  // paths (e.g. a histogram snapshot taken before the first request), not
  // a library bug — degrade to quiet NaN instead of aborting the server.
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  const double pos = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  HSCONAS_CHECK_MSG(x.size() == y.size(), "linear_fit: size mismatch");
  LinearFit fit;
  if (x.size() < 2) return fit;
  const double mx = mean(x), my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy <= 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  HSCONAS_CHECK_MSG(bins > 0, "Histogram: bins must be > 0");
  HSCONAS_CHECK_MSG(hi > lo, "Histogram: hi must be > lo");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<long long>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<long long>(bin, 0,
                              static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}
double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }
double Histogram::bin_center(std::size_t bin) const {
  return 0.5 * (bin_lo(bin) + bin_hi(bin));
}

std::string Histogram::render(std::size_t max_width) const {
  const std::size_t peak =
      *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t w =
        peak == 0 ? 0 : counts_[b] * max_width / std::max<std::size_t>(peak, 1);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "[%8.2f, %8.2f) %6zu ", bin_lo(b),
                  bin_hi(b), counts_[b]);
    os << buf << std::string(w, '#') << "\n";
  }
  return os.str();
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}
double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace hsconas::util
