#pragma once

#include <map>
#include <string>
#include <vector>

namespace hsconas::util {

/// Minimal `--key=value` / `--flag` argument parser for the bench and
/// example binaries. Unknown keys raise InvalidArgument so typos fail loud.
class Cli {
 public:
  Cli(std::string program_description);

  /// Declare an option with a default value and help text (all values are
  /// stored as strings; typed getters convert).
  void add_option(const std::string& key, const std::string& default_value,
                  const std::string& help);
  void add_flag(const std::string& key, const std::string& help);

  /// Parse argv. Returns false (after printing usage) when --help was given.
  /// Throws InvalidArgument on unknown keys or malformed input.
  bool parse(int argc, char** argv);

  std::string get(const std::string& key) const;
  long long get_int(const std::string& key) const;
  double get_double(const std::string& key) const;
  bool get_bool(const std::string& key) const;

  std::string usage() const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };
  std::string description_;
  std::map<std::string, Option> options_;
  std::map<std::string, std::string> values_;
};

}  // namespace hsconas::util
