#pragma once

#include <string>
#include <vector>

namespace hsconas::util {

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Split `s` on `sep`, keeping empty fields.
std::vector<std::string> split(const std::string& s, char sep);

/// Join with separator.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Strip ASCII whitespace from both ends.
std::string trim(const std::string& s);

/// Lower-case ASCII copy.
std::string to_lower(std::string s);

/// True if `s` starts with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

/// Human-readable count: 1234567 -> "1.23M", 2048 -> "2.05K".
std::string human_count(double v);

}  // namespace hsconas::util
