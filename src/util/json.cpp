#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>

#include "util/error.h"

namespace hsconas::util {

Json& Json::operator[](const std::string& key) {
  if (std::holds_alternative<std::nullptr_t>(value_)) value_ = Object{};
  HSCONAS_CHECK_MSG(is_object(), "Json::operator[] on non-object");
  return std::get<Object>(value_)[key];
}

void Json::push_back(Json v) {
  if (std::holds_alternative<std::nullptr_t>(value_)) value_ = Array{};
  HSCONAS_CHECK_MSG(is_array(), "Json::push_back on non-array");
  std::get<Array>(value_).push_back(std::move(v));
}

void Json::append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent * (depth + 1)), ' ');
  const std::string pad_close(static_cast<std::size_t>(indent * depth), ' ');
  const char* nl = indent > 0 ? "\n" : "";

  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const bool* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const double* d = std::get_if<double>(&value_)) {
    if (!std::isfinite(*d)) {
      // JSON has no NaN/Inf tokens and Json::parse rejects them; emitting
      // null keeps every dump() round-trippable.
      out += "null";
    } else if (*d == std::floor(*d) && std::abs(*d) < 1e15) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(*d));
      out += buf;
    } else {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.10g", *d);
      out += buf;
    }
  } else if (const std::string* s = std::get_if<std::string>(&value_)) {
    append_escaped(out, *s);
  } else if (const Array* a = std::get_if<Array>(&value_)) {
    if (a->empty()) {
      out += "[]";
      return;
    }
    out += '[';
    out += nl;
    for (std::size_t i = 0; i < a->size(); ++i) {
      out += pad;
      (*a)[i].dump_to(out, indent, depth + 1);
      if (i + 1 < a->size()) out += ',';
      out += nl;
    }
    out += pad_close;
    out += ']';
  } else if (const Object* o = std::get_if<Object>(&value_)) {
    if (o->empty()) {
      out += "{}";
      return;
    }
    out += '{';
    out += nl;
    std::size_t i = 0;
    for (const auto& [k, v] : *o) {
      out += pad;
      append_escaped(out, k);
      out += ": ";
      v.dump_to(out, indent, depth + 1);
      if (++i < o->size()) out += ',';
      out += nl;
    }
    out += pad_close;
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Json::save(const std::string& path, int indent) const {
  std::ofstream f(path);
  if (!f) throw Error("Json::save: cannot open " + path);
  f << dump(indent) << '\n';
}

bool Json::as_bool() const {
  HSCONAS_CHECK_MSG(is_bool(), "Json::as_bool on non-bool");
  return std::get<bool>(value_);
}

double Json::as_double() const {
  HSCONAS_CHECK_MSG(is_number(), "Json::as_double on non-number");
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  HSCONAS_CHECK_MSG(is_string(), "Json::as_string on non-string");
  return std::get<std::string>(value_);
}

const Json::Array& Json::items() const {
  HSCONAS_CHECK_MSG(is_array(), "Json::items on non-array");
  return std::get<Array>(value_);
}

const Json::Object& Json::fields() const {
  HSCONAS_CHECK_MSG(is_object(), "Json::fields on non-object");
  return std::get<Object>(value_);
}

const Json* Json::find(const std::string& key) const {
  const Object* o = std::get_if<Object>(&value_);
  if (o == nullptr) return nullptr;
  const auto it = o->find(key);
  return it == o->end() ? nullptr : &it->second;
}

namespace {

/// Recursive-descent parser over standard (RFC 8259) JSON, including
/// \uXXXX escapes and UTF-16 surrogate pairs (decoded to UTF-8).
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw Error("Json::parse: " + why + " at offset " +
                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(obj));
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(arr));
    }
  }

  /// Exactly four hex digits at pos_ (strict: no sign, no whitespace,
  /// unlike strtol). Returns the code unit and advances past it.
  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("bad \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      unsigned digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<unsigned>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<unsigned>(c - 'A') + 10;
      } else {
        fail("bad hex digit in \\u escape");
      }
      code = code * 16 + digit;
    }
    return code;
  }

  /// Encode one Unicode scalar value (surrogates already resolved) as
  /// UTF-8.
  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("lone low surrogate in \\u escape");
          }
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: RFC 8259 requires an immediately following
            // \uXXXX low surrogate; together they name one supplementary
            // code point.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("high surrogate not followed by \\u low surrogate");
            }
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("high surrogate followed by non-low-surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          append_utf8(out, code);
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string tok = text_.substr(start, pos_ - start);
    // Enforce the JSON number grammar rather than trusting strtod, which
    // also accepts "nan"/"inf"/hex and locale forms: metrics and LUT
    // files are parsed by tools that trust every number they read, so
    // non-finite and malformed values must die here.
    if (!matches_number_grammar(tok)) fail("bad number '" + tok + "'");
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail("bad number '" + tok + "'");
    if (!std::isfinite(v)) fail("non-finite number '" + tok + "'");
    return Json(v);
  }

  /// RFC 8259: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][-+]?[0-9]+)? — no
  /// leading '+', no bare '.', no "nan"/"inf", no hex.
  static bool matches_number_grammar(const std::string& tok) {
    std::size_t i = 0;
    const auto digit = [&](std::size_t j) {
      return j < tok.size() &&
             std::isdigit(static_cast<unsigned char>(tok[j])) != 0;
    };
    if (i < tok.size() && tok[i] == '-') ++i;
    if (!digit(i)) return false;
    if (tok[i] == '0') {
      ++i;  // a leading zero must stand alone ("0", "0.5"; not "01")
    } else {
      while (digit(i)) ++i;
    }
    if (i < tok.size() && tok[i] == '.') {
      ++i;
      if (!digit(i)) return false;
      while (digit(i)) ++i;
    }
    if (i < tok.size() && (tok[i] == 'e' || tok[i] == 'E')) {
      ++i;
      if (i < tok.size() && (tok[i] == '+' || tok[i] == '-')) ++i;
      if (!digit(i)) return false;
      while (digit(i)) ++i;
    }
    return i == tok.size();
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

Json Json::load(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw Error("Json::load: cannot open " + path);
  std::string text((std::istreambuf_iterator<char>(f)),
                   std::istreambuf_iterator<char>());
  return parse(text);
}

}  // namespace hsconas::util
