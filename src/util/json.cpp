#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/error.h"

namespace hsconas::util {

Json& Json::operator[](const std::string& key) {
  if (std::holds_alternative<std::nullptr_t>(value_)) value_ = Object{};
  HSCONAS_CHECK_MSG(is_object(), "Json::operator[] on non-object");
  return std::get<Object>(value_)[key];
}

void Json::push_back(Json v) {
  if (std::holds_alternative<std::nullptr_t>(value_)) value_ = Array{};
  HSCONAS_CHECK_MSG(is_array(), "Json::push_back on non-array");
  std::get<Array>(value_).push_back(std::move(v));
}

void Json::append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent * (depth + 1)), ' ');
  const std::string pad_close(static_cast<std::size_t>(indent * depth), ' ');
  const char* nl = indent > 0 ? "\n" : "";

  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const bool* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const double* d = std::get_if<double>(&value_)) {
    if (std::isfinite(*d) && *d == std::floor(*d) &&
        std::abs(*d) < 1e15) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(*d));
      out += buf;
    } else {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.10g", *d);
      out += buf;
    }
  } else if (const std::string* s = std::get_if<std::string>(&value_)) {
    append_escaped(out, *s);
  } else if (const Array* a = std::get_if<Array>(&value_)) {
    if (a->empty()) {
      out += "[]";
      return;
    }
    out += '[';
    out += nl;
    for (std::size_t i = 0; i < a->size(); ++i) {
      out += pad;
      (*a)[i].dump_to(out, indent, depth + 1);
      if (i + 1 < a->size()) out += ',';
      out += nl;
    }
    out += pad_close;
    out += ']';
  } else if (const Object* o = std::get_if<Object>(&value_)) {
    if (o->empty()) {
      out += "{}";
      return;
    }
    out += '{';
    out += nl;
    std::size_t i = 0;
    for (const auto& [k, v] : *o) {
      out += pad;
      append_escaped(out, k);
      out += ": ";
      v.dump_to(out, indent, depth + 1);
      if (++i < o->size()) out += ',';
      out += nl;
    }
    out += pad_close;
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Json::save(const std::string& path, int indent) const {
  std::ofstream f(path);
  if (!f) throw Error("Json::save: cannot open " + path);
  f << dump(indent) << '\n';
}

}  // namespace hsconas::util
