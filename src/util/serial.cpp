#include "util/serial.h"

#include <cstring>

#include "util/error.h"

namespace hsconas::util {

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

void ByteWriter::vec_i32(const std::vector<int>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (int x : v) i32(x);
}

void ByteWriter::vec_f64(const std::vector<double>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (double x : v) f64(x);
}

void ByteWriter::vec_u64(const std::vector<std::uint64_t>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (std::uint64_t x : v) u64(x);
}

void ByteWriter::vec_f32(const float* data, std::size_t n) {
  u32(static_cast<std::uint32_t>(n));
  bytes(data, n * sizeof(float));
}

std::uint8_t ByteReader::u8() {
  if (remaining() < 1) throw Error("serial: truncated buffer");
  return static_cast<std::uint8_t>(data_[pos_++]);
}

void ByteReader::bytes(void* out, std::size_t n) {
  if (remaining() < n) throw Error("serial: truncated buffer");
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
}

std::size_t ByteReader::checked_count(std::size_t max_elems,
                                      std::size_t elem_size,
                                      const char* what) {
  const std::uint32_t n = u32();
  if (n > max_elems) {
    throw Error(std::string("serial: ") + what + " count " +
                std::to_string(n) + " exceeds cap " +
                std::to_string(max_elems));
  }
  if (static_cast<std::size_t>(n) * elem_size > remaining()) {
    throw Error(std::string("serial: ") + what + " count " +
                std::to_string(n) + " exceeds remaining bytes");
  }
  return n;
}

std::string ByteReader::str(std::size_t max_len) {
  const std::size_t n = checked_count(max_len, 1, "string");
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

std::vector<int> ByteReader::vec_i32(std::size_t max_elems) {
  const std::size_t n = checked_count(max_elems, sizeof(std::int32_t), "i32");
  std::vector<int> v(n);
  for (auto& x : v) x = i32();
  return v;
}

std::vector<double> ByteReader::vec_f64(std::size_t max_elems) {
  const std::size_t n = checked_count(max_elems, sizeof(double), "f64");
  std::vector<double> v(n);
  for (auto& x : v) x = f64();
  return v;
}

std::vector<std::uint64_t> ByteReader::vec_u64(std::size_t max_elems) {
  const std::size_t n =
      checked_count(max_elems, sizeof(std::uint64_t), "u64");
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = u64();
  return v;
}

void ByteReader::vec_f32_into(float* out, std::size_t expect_n) {
  const std::size_t n = checked_count(kMaxElements, sizeof(float), "f32");
  if (n != expect_n) {
    throw Error("serial: f32 count " + std::to_string(n) + ", expected " +
                std::to_string(expect_n));
  }
  bytes(out, n * sizeof(float));
}

std::array<std::uint64_t, 4> ByteReader::rng_state() {
  std::array<std::uint64_t, 4> s{};
  for (auto& w : s) w = u64();
  return s;
}

void ByteReader::expect_done() const {
  if (!done()) {
    throw Error("serial: " + std::to_string(remaining()) +
                " trailing bytes in payload");
  }
}

namespace {

struct Crc32Table {
  std::uint32_t t[256];
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) {
  static const Crc32Table table;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table.t[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace hsconas::util
