#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace hsconas::util {

double Rng::normal() {
  // Box–Muller; draw u1 away from 0 to keep log finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  HSCONAS_CHECK_MSG(k <= n, "sample_indices: k must be <= n");
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + index(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace hsconas::util
