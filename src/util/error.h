#pragma once

#include <stdexcept>
#include <string>

namespace hsconas {

/// Base exception for all errors raised by the HSCoNAS library.
///
/// API boundaries throw `Error` (or a subclass) on contract violations such
/// as shape mismatches, unknown device names, or invalid configurations.
/// Internal invariants that indicate library bugs use HSCONAS_CHECK, which
/// throws InternalError with file/line context.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a caller-supplied value is out of contract (bad shape,
/// unknown enum string, negative size, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Raised when an internal invariant is violated; indicates a library bug.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  throw InternalError(std::string("check failed: ") + expr + " at " + file +
                      ":" + std::to_string(line) +
                      (msg.empty() ? "" : (" — " + msg)));
}
}  // namespace detail

/// Invariant check that stays on in release builds; throws InternalError.
#define HSCONAS_CHECK(expr)                                              \
  do {                                                                   \
    if (!(expr))                                                         \
      ::hsconas::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (false)

#define HSCONAS_CHECK_MSG(expr, msg)                                     \
  do {                                                                   \
    if (!(expr))                                                         \
      ::hsconas::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

}  // namespace hsconas
