#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hsconas::util {

/// Fixed-size worker pool with a parallel_for helper. Used by the tensor
/// GEMM and by batch evaluation of architecture populations. Work items must
/// not throw; exceptions escaping a task terminate (tasks wrap their own
/// error handling where needed).
class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; fire-and-forget (pair with wait()).
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have completed.
  void wait();

  /// Run fn(i) for i in [0, n) across the pool, blocking until done.
  /// Falls back to inline execution for n <= 1 or single-worker pools.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace hsconas::util
