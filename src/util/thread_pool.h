#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hsconas::util {

/// Fixed-size worker pool with a parallel_for helper. Used by the tensor
/// GEMM, the Conv2d im2col packing loops, and batch evaluation of
/// architecture populations. Raw submit() tasks must not throw (an
/// exception escaping one terminates); parallel_for bodies MAY throw —
/// see below.
///
/// parallel_for is re-entrant: a task running on a pool thread may itself
/// call parallel_for on the same pool (e.g. a GEMM inside a parallel
/// candidate evaluation). The calling thread always participates in the
/// loop's work and only waits for chunks that are actively executing on
/// other threads, so nested calls can never deadlock on pool capacity.
///
/// Exception safety: if fn throws on any participating thread, no further
/// chunks are handed out, every in-flight iteration finishes, and the
/// first exception is rethrown on the calling thread once the loop has
/// fully quiesced. The pool itself stays healthy: workers never die, and
/// the destructor joins each worker exactly once regardless of how many
/// loops failed.
class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// True while the pool has work in flight: queued or running submitted
  /// tasks, or a parallel_for that has not yet quiesced. Instantaneous —
  /// new work may arrive right after it returns false — so it is a
  /// precondition check (see configure_global), not a synchronization
  /// primitive.
  bool busy();

  /// Enqueue a task; fire-and-forget (pair with wait()). On a pool that
  /// has been shut down the task runs inline on the calling thread
  /// instead of being silently parked in a queue no worker will drain —
  /// the degradation mode for stale global() references held across a
  /// configure_global().
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have completed. Must not be called
  /// from a pool thread (the calling task is still in flight, so it would
  /// wait on itself) — use parallel_for for nested joins.
  void wait();

  /// Run fn(i) for i in [0, n) across the pool, blocking until done.
  /// Falls back to inline execution for n <= 1, single-worker pools, or a
  /// pool that has been shut down (a stale global() reference degrades to
  /// caller-inline execution instead of dangling or deadlocking).
  /// `fn` must be safe to invoke concurrently from multiple threads; the
  /// iteration-to-thread assignment is nondeterministic but every index
  /// runs at most once (exactly once when no iteration throws). Rethrows
  /// the first exception any iteration raised, after the loop quiesces.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Stop accepting queued work and join every worker. Idempotent and
  /// safe to call concurrently; the destructor calls it, so a pool that
  /// was shut down explicitly destructs without a second join.
  void shutdown();

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

  /// Replace the process-wide pool with a fresh one of `threads` workers
  /// (0 = hardware_concurrency). For benches and tests that sweep thread
  /// counts. Mid-flight reconfiguration is rejected: if the current
  /// global pool has work in flight (busy()), this throws hsconas::Error
  /// and leaves the pool untouched — long-lived concurrent pool users
  /// (the serving lanes) must be stopped before resizing. The previous
  /// pool is shut down but kept alive until process exit, so a stale
  /// global() reference degrades to inline execution instead of
  /// dangling.
  static void configure_global(std::size_t threads);

 private:
  struct Task {
    std::function<void()> fn;
    /// submit()ed by a caller (counts toward busy()) vs an internal
    /// parallel_for helper (wind-down is covered by shutdown's join).
    bool external = true;
  };

  void worker_loop();
  void enqueue(std::function<void()> task, bool external);

  std::vector<std::thread> workers_;
  std::queue<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  bool joined_ = false;  ///< workers_ already joined (guarded by mutex_)
  /// parallel_for calls currently between first chunk handout and full
  /// quiescence (any participating thread). Feeds busy().
  std::atomic<std::size_t> active_loops_{0};
  /// Queued or running submit()ed tasks (guarded by mutex_). Loop helper
  /// tasks are excluded: they outlive their loop by microseconds at most
  /// and are joined by shutdown(), so they must not make a quiesced pool
  /// look busy.
  std::size_t external_in_flight_ = 0;
};

}  // namespace hsconas::util
