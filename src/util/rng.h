#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/error.h"

namespace hsconas::util {

/// SplitMix64 — used to seed Xoshiro and as a cheap stateless mixer.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Deterministic, fast PRNG (xoshiro256**). Every stochastic component of
/// the library takes an explicit Rng (or seed) so searches are reproducible
/// bit-for-bit across runs; tests rely on this.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDF00Dull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derive an independent child stream; used to give each parallel worker
  /// or pipeline stage its own deterministic sequence.
  Rng fork() { return Rng(next() ^ 0xA5A5A5A5DEADBEEFull); }

  /// Raw xoshiro256** state, for checkpoint/resume: restoring via
  /// set_state() continues the stream exactly where state() captured it.
  std::array<std::uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (std::size_t i = 0; i < 4; ++i) state_[i] = s[i];
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface, so <algorithm> shuffles work too.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::size_t index(std::size_t n) {
    HSCONAS_CHECK_MSG(n > 0, "Rng::index called with n == 0");
    // Lemire's multiply-shift rejection-free-enough variant: fine for NAS use.
    return static_cast<std::size_t>(
        (static_cast<unsigned __int128>(next()) * n) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t randint(std::int64_t lo, std::int64_t hi) {
    HSCONAS_CHECK_MSG(lo <= hi, "Rng::randint requires lo <= hi");
    return lo + static_cast<std::int64_t>(
                    index(static_cast<std::size_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Box–Muller (cached second value discarded for
  /// simplicity; throughput is irrelevant at NAS scale).
  double normal();

  /// Normal with given mean and stddev.
  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Log-normal such that the *multiplicative* jitter has median 1 and the
  /// given sigma in log-space; used for measurement noise in hwsim.
  double lognormal_jitter(double sigma) {
    return sigma <= 0.0 ? 1.0 : std::exp(0.0 + sigma * normal());
  }

  /// Sample one element uniformly from a non-empty vector.
  template <typename T>
  const T& choice(const std::vector<T>& v) {
    HSCONAS_CHECK_MSG(!v.empty(), "Rng::choice on empty vector");
    return v[index(v.size())];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// k distinct indices from [0, n), in random order (partial Fisher–Yates).
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace hsconas::util
