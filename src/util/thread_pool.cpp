#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace hsconas::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.size() <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Chunked dynamic scheduling via a shared atomic counter.
  auto counter = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t chunk = std::max<std::size_t>(1, n / (workers_.size() * 4));
  const std::size_t tasks = std::min(workers_.size(), (n + chunk - 1) / chunk);
  for (std::size_t t = 0; t < tasks; ++t) {
    submit([counter, chunk, n, &fn] {
      for (;;) {
        const std::size_t begin = counter->fetch_add(chunk);
        if (begin >= n) break;
        const std::size_t end = std::min(begin + chunk, n);
        for (std::size_t i = begin; i < end; ++i) fn(i);
      }
    });
  }
  wait();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace hsconas::util
